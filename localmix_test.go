package localmix

import (
	"math"
	"testing"
)

const eps = 1.0 / (8 * math.E)

// TestDistributedSweepFacade exercises the public sweep API: graph-wide
// distributed local-mixing and mixing-time sweeps with sampling and
// aggregate cost accounting.
func TestDistributedSweepFacade(t *testing.T) {
	g, err := RingOfCliques(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := DistributedGraphLocalMixingTime(g, 4, 0.1, SweepOptions{Workers: 2}, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Results) != g.N() || multi.Tau < 1 {
		t.Fatalf("sweep: %d results, τ=%d", len(multi.Results), multi.Tau)
	}
	if multi.TotalRounds <= 0 || multi.TotalMessages <= 0 || multi.TotalBits <= 0 {
		t.Errorf("sweep cost accounting incomplete: %+v", multi)
	}
	single, err := DistributedLocalMixingTime(g, multi.ArgMax, 4, 0.1, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if single.Tau != multi.Tau {
		t.Errorf("argmax source recomputed τ=%d, sweep says %d", single.Tau, multi.Tau)
	}

	mix, err := DistributedGraphMixingTime(g, 0.25, SweepOptions{Sample: 6}, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(mix.Sources) != 6 {
		t.Fatalf("sampled %d sources, want 6", len(mix.Sources))
	}
	exactSweep, err := DistributedGraphExactLocalMixingTime(g, 4, 0.1, SweepOptions{Sources: []int{0, 7}}, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(exactSweep.Results) != 2 {
		t.Fatalf("explicit-source sweep: %d results", len(exactSweep.Results))
	}
}

// TestFacadeEndToEnd walks the whole public API exactly as the README
// advertises: generate, oracle, distributed, gossip, coverage.
func TestFacadeEndToEnd(t *testing.T) {
	g, err := Barbell(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 96 {
		t.Fatalf("n=%d", g.N())
	}

	tauMix, err := MixingTime(g, 0, eps, false, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	local, err := LocalMixingTime(g, 0, 8, eps, LocalMixingOptions{MaxT: 1 << 20, Grid: true})
	if err != nil {
		t.Fatal(err)
	}
	if local.T >= tauMix {
		t.Errorf("local %d should be far below global %d", local.T, tauMix)
	}

	dist, err := DistributedLocalMixingTime(g, 0, 8, eps, WithIrregular(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if dist.Tau < 1 || dist.Tau > 2*local.T {
		t.Errorf("distributed τ̂=%d outside (0, 2·%d]", dist.Tau, local.T)
	}
	if dist.Stats.Rounds <= 0 {
		t.Error("no rounds accounted")
	}

	exactRes, err := DistributedExactLocalMixingTime(g, 0, 8, eps, WithIrregular(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if exactRes.Tau < 1 {
		t.Error("exact variant returned nothing")
	}

	sp, err := PushPull(g, SpreadConfig{Beta: 8, Seed: 5, StopAtPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if sp.RoundsToPartial <= 0 {
		t.Error("push–pull incomplete")
	}

	rng := NewRand(7)
	inst, err := RandomCoverageInstance(g.N(), g.N(), 5, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := DistributedMaxCoverage(g, inst, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Ratio < 0.5 {
		t.Errorf("coverage ratio %v implausibly low", cov.Ratio)
	}

	rounds, err := LeaderElection(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 1 {
		t.Error("leader election trivial")
	}
}

// TestFacadeEstimate runs Algorithm 1 through the façade and checks the
// distribution shape.
func TestFacadeEstimate(t *testing.T) {
	g, err := RingOfCliques(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateRWProbability(g, 0, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalMass() != est.Scale.One {
		t.Error("mass not conserved")
	}
	p := est.Float()
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σp = %v", sum)
	}
}

// TestGeneratorsExported spot-checks every re-exported generator.
func TestGeneratorsExported(t *testing.T) {
	rng := NewRand(1)
	checks := []struct {
		name string
		f    func() (*Graph, error)
	}{
		{"complete", func() (*Graph, error) { return Complete(8) }},
		{"path", func() (*Graph, error) { return Path(8) }},
		{"cycle", func() (*Graph, error) { return Cycle(8) }},
		{"star", func() (*Graph, error) { return Star(8) }},
		{"torus", func() (*Graph, error) { return Torus(3, 3) }},
		{"grid", func() (*Graph, error) { return Grid(3, 3) }},
		{"hypercube", func() (*Graph, error) { return Hypercube(3) }},
		{"lollipop", func() (*Graph, error) { return Lollipop(4, 3) }},
		{"dumbbell", func() (*Graph, error) { return Dumbbell(4, 1) }},
		{"barbell", func() (*Graph, error) { return Barbell(3, 4) }},
		{"ringcliques", func() (*Graph, error) { return RingOfCliques(3, 4) }},
		{"randomregular", func() (*Graph, error) { return RandomRegular(12, 3, rng) }},
		{"ringexpanders", func() (*Graph, error) { return RingOfExpanders(3, 10, 4, rng) }},
		{"erdosrenyi", func() (*Graph, error) { return ErdosRenyi(16, 0.4, rng) }},
	}
	for _, c := range checks {
		g, err := c.f()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if !g.IsConnected() {
			t.Errorf("%s: disconnected", c.name)
		}
	}
}

// TestBuilderExported exercises the re-exported Builder.
func TestBuilderExported(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("built n=%d m=%d", g.N(), g.M())
	}
}
