package localmix

import (
	"math/rand"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/dyngraph"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/spread"
)

// call routes a facade invocation through the service registry — the same
// runners cmd/lmt and cmd/lmtd dispatch to — over an uncached DirectEnv,
// so the facade stays a thin veneer with exactly one code path per task
// kind and byte-identical results to a service.Run of the equivalent spec.
func call[R any](kind spec.Kind, inv *service.Invocation) (R, error) {
	inv.Task.Kind = kind
	res, err := service.Call(kind, inv)
	if err != nil {
		var zero R
		return zero, err
	}
	return res.(R), nil
}

// Graph is an immutable simple undirected graph (CSR adjacency).
type Graph = graph.Graph

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// NewBuilder creates a builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// Generators (paper §2.3 families and friends).
var (
	// Complete returns K_n (§2.3 a: both mixing times are Θ(1)).
	Complete = gen.Complete
	// Path returns P_n (§2.3 c: τ_mix = Θ(n²), τ_s(β) = Θ((n/β)²)).
	Path = gen.Path
	// Cycle returns C_n.
	Cycle = gen.Cycle
	// Star returns K_{1,n-1} (irregular; for testing).
	Star = gen.Star
	// Torus returns the rows×cols torus (4-regular).
	Torus = gen.Torus
	// Grid returns the rows×cols grid.
	Grid = gen.Grid
	// Hypercube returns the 2^dim hypercube (bipartite: use lazy walks).
	Hypercube = gen.Hypercube
	// Lollipop returns the clique+path lollipop.
	Lollipop = gen.Lollipop
	// Dumbbell returns two cliques joined by a path.
	Dumbbell = gen.Dumbbell
	// Barbell returns the Figure 1 β-barbell: a path of β cliques
	// (§2.3 d: τ_mix = Ω(β²), τ_s(β) = O(1)).
	Barbell = gen.Barbell
	// RingOfCliques returns the exactly-regular ring variant of the
	// barbell.
	RingOfCliques = gen.RingOfCliques
	// RandomRegular returns a connected random d-regular graph (an
	// expander w.h.p., §2.3 b).
	RandomRegular = gen.RandomRegular
	// RingOfExpanders returns β expander blocks arranged in a ring,
	// exactly d-regular.
	RingOfExpanders = gen.RingOfExpanders
	// ErdosRenyi returns a connected G(n,p) sample.
	ErdosRenyi = gen.ErdosRenyi
)

// NewRand returns a deterministic RNG for the randomized generators.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// MixingTime computes τ_mix_s(ε) = min{t : ‖p_t − π‖₁ < ε} exactly
// (centralized oracle; Definition 1).
func MixingTime(g *Graph, source int, eps float64, lazy bool, maxT int) (int, error) {
	r, err := call[*service.TauResult](spec.KindOracleMixing, &service.Invocation{
		Env:  service.DirectEnv(g),
		Task: spec.TaskSpec{Source: source, Eps: eps, Lazy: lazy, MaxT: maxT},
	})
	if err != nil {
		return 0, err
	}
	return r.Tau, nil
}

// GraphMixingTime computes τ_mix(ε) = max_s τ_mix_s(ε) over every source,
// evolving sources in 16-lane batches on the shared walk kernel (one edge
// pass advances a whole batch) instead of n serial walks.
func GraphMixingTime(g *Graph, eps float64, lazy bool, maxT int) (int, error) {
	return GraphMixingTimeWorkers(g, eps, lazy, maxT, 0)
}

// GraphMixingTimeWorkers is GraphMixingTime with an explicit oracle worker
// count (≤ 0 means GOMAXPROCS). Like LocalMixingOptions.Workers, the count
// only changes the schedule: oracle results are bit-identical for every
// worker count.
func GraphMixingTimeWorkers(g *Graph, eps float64, lazy bool, maxT, workers int) (int, error) {
	r, err := call[*service.TauResult](spec.KindOracleGraphMixing, &service.Invocation{
		Env:  service.DirectEnv(g),
		Task: spec.TaskSpec{Eps: eps, Lazy: lazy, MaxT: maxT, Workers: workers},
	})
	if err != nil {
		return 0, err
	}
	return r.Tau, nil
}

// LocalMixingResult is the centralized local-mixing oracle output.
type LocalMixingResult = exact.LocalResult

// LocalMixingOptions configures the centralized local-mixing oracle. The
// Workers field sets the walk-kernel parallelism (≤ 0 means GOMAXPROCS);
// results never depend on it.
type LocalMixingOptions = exact.LocalOptions

// LocalMixingTime computes τ_s(β, ε) exactly (centralized oracle;
// Definition 2 with the uniform 1/|S| target) and returns a witness
// local-mixing set.
func LocalMixingTime(g *Graph, source int, beta, eps float64, o LocalMixingOptions) (*LocalMixingResult, error) {
	return call[*LocalMixingResult](spec.KindOracleLocal, &service.Invocation{
		Env:   service.DirectEnv(g),
		Task:  spec.TaskSpec{Source: source, Beta: beta, Eps: eps},
		Local: &o,
	})
}

// DistributedResult is the output of the CONGEST algorithms: the computed
// time, the witness set size, and the engine's round/message/bit counters.
type DistributedResult = core.Result

// DistributedOption tweaks a distributed run (WithLazy, WithSeed, WithC,
// WithMaxLength, WithIrregular, WithWorkers, WithTopology,
// WithRetryBudget).
type DistributedOption = core.Option

// Re-exported distributed options.
var (
	WithLazy        = core.WithLazy
	WithSeed        = core.WithSeed
	WithC           = core.WithC
	WithMaxLength   = core.WithMaxLength
	WithIrregular   = core.WithIrregular
	WithWorkers     = core.WithWorkers
	WithTopology    = core.WithTopology
	WithRetryBudget = core.WithRetryBudget
)

// ErrRetryBudget is returned by DynamicWalk when the cumulative count of
// churn-forced retries (bounces plus crash restarts) exceeds the
// WithRetryBudget bound — the walk fails fast instead of grinding against
// an adversary that keeps destroying its progress.
var ErrRetryBudget = core.ErrRetryBudget

// DistributedLocalMixingTime runs the paper's Algorithm 2 (LOCAL-MIXING-
// TIME) in a simulated CONGEST network: a 2-approximation of τ_s(β, ε) in
// O(τ_s log²n log_{1+ε}β) rounds (Theorem 1).
func DistributedLocalMixingTime(g *Graph, source int, beta, eps float64, opts ...DistributedOption) (*DistributedResult, error) {
	return call[*DistributedResult](spec.KindLocal, &service.Invocation{
		Env:  service.DirectEnv(g),
		Task: spec.TaskSpec{Source: source, Beta: beta, Eps: eps},
		Opts: opts,
	})
}

// DistributedExactLocalMixingTime runs the §3.2 exact variant:
// O(τ_s·D̃·log n·log_{1+ε}β) rounds, no assumptions (Theorem 2).
func DistributedExactLocalMixingTime(g *Graph, source int, beta, eps float64, opts ...DistributedOption) (*DistributedResult, error) {
	return call[*DistributedResult](spec.KindLocal, &service.Invocation{
		Env:  service.DirectEnv(g),
		Task: spec.TaskSpec{Source: source, Beta: beta, Eps: eps, Exact: true},
		Opts: opts,
	})
}

// DistributedMixingTime runs the baseline distributed mixing-time
// computation ([18]; O(τ_mix log n) rounds).
func DistributedMixingTime(g *Graph, source int, eps float64, opts ...DistributedOption) (*DistributedResult, error) {
	return call[*DistributedResult](spec.KindMixing, &service.Invocation{
		Env:  service.DirectEnv(g),
		Task: spec.TaskSpec{Source: source, Eps: eps},
		Opts: opts,
	})
}

// SweepOptions selects the sources and parallelism of a distributed
// multi-source sweep: Workers concurrent per-source runs (0 = GOMAXPROCS),
// each on its own reusable CONGEST network; Sources an explicit list (nil =
// every vertex); Sample a deterministic random subset of that many vertices
// (the paper's footnote 6 mitigation) when Sources is nil. Results are
// identical for every worker count, and per-source engine seeds are derived
// from the base seed (WithSeed) with splitmix64, so sweeps are reproducible
// with uncorrelated per-source randomness.
type SweepOptions = core.SweepOptions

// DistributedSweepResult aggregates a multi-source distributed sweep: the
// graph-wide maximum, each per-source result in canonical order, and the
// summed round/message/bit accounting.
type DistributedSweepResult = core.MultiResult

// DistributedGraphLocalMixingTime sweeps the paper's Algorithm 2 over many
// sources in parallel: the distributed analogue of Definition 2's
// graph-wide τ(β,ε) = max_v τ_v(β,ε), with the n-factor sweep cost
// (footnote 6) spread across o.Workers reusable networks.
func DistributedGraphLocalMixingTime(g *Graph, beta, eps float64, o SweepOptions, opts ...DistributedOption) (*DistributedSweepResult, error) {
	return call[*DistributedSweepResult](spec.KindSweep, &service.Invocation{
		Env:       service.DirectEnv(g),
		Task:      spec.TaskSpec{Beta: beta, Eps: eps, Mode: "approx"},
		SweepOpts: &o,
		Opts:      opts,
	})
}

// DistributedGraphExactLocalMixingTime is DistributedGraphLocalMixingTime
// with the §3.2 exact per-source variant (Theorem 2).
func DistributedGraphExactLocalMixingTime(g *Graph, beta, eps float64, o SweepOptions, opts ...DistributedOption) (*DistributedSweepResult, error) {
	return call[*DistributedSweepResult](spec.KindSweep, &service.Invocation{
		Env:       service.DirectEnv(g),
		Task:      spec.TaskSpec{Beta: beta, Eps: eps, Mode: "exact"},
		SweepOpts: &o,
		Opts:      opts,
	})
}

// DistributedGraphMixingTime sweeps the [18]-style distributed mixing-time
// computation over many sources in parallel: the graph-wide
// τ_mix(ε) = max_s τ_mix_s(ε) with full round/message/bit accounting.
func DistributedGraphMixingTime(g *Graph, eps float64, o SweepOptions, opts ...DistributedOption) (*DistributedSweepResult, error) {
	return call[*DistributedSweepResult](spec.KindSweep, &service.Invocation{
		Env:       service.DirectEnv(g),
		Task:      spec.TaskSpec{Eps: eps, Mode: "mixing"},
		SweepOpts: &o,
		Opts:      opts,
	})
}

// TopologyProvider drives per-round edge churn on a dynamic network: the
// engine consults it at every round boundary to activate/deactivate edges
// of the static superset graph. See the churn-model constructors below and
// internal/dyngraph for the determinism contract.
type TopologyProvider = congest.TopologyProvider

// Seeded deterministic churn models (internal/dyngraph). All of them
// protect a BFS spanning backbone (the adversaries until WithoutBackbone
// lifts it; the crash model via its protect list) so every round's topology
// stays connected — the standing assumption of the dynamic-network
// literature — and derive every round's decisions from (model seed, round,
// published state) alone, so one model instance is shareable across the
// worker networks of a sweep.
var (
	// EdgeMarkovChurn builds the edge-Markovian evolving graph: each edge
	// flips on→off with probability pOff and off→on with pOn, per round.
	EdgeMarkovChurn = dyngraph.NewEdgeMarkov
	// IntervalChurn resamples the active edge set every `every` rounds
	// (each non-backbone edge kept with probability keep) and holds it
	// fixed in between — a T-interval-stable topology.
	IntervalChurn = dyngraph.NewInterval
	// SnapshotChurn cycles through explicit generator snapshots (subgraphs
	// of the superset), switching every `period` rounds.
	SnapshotChurn = dyngraph.NewSnapshots
	// GraphUnion builds the superset of several same-vertex-set graphs —
	// the static graph a snapshot-churned network is sized for.
	GraphUnion = dyngraph.Union

	// TokenChaserChurn builds the adaptive token-chasing adversary: each
	// round it reads the protocol-published token position and spends its
	// edge budget cutting the holder's incident edges. The strongest
	// walk-slowing adversary in the suite.
	TokenChaserChurn = dyngraph.NewTokenChaser
	// UniformCutterChurn is the rate-matched oblivious control for the
	// chaser: the same per-round budget, spent on uniformly random edges
	// with no knowledge of protocol state.
	UniformCutterChurn = dyngraph.NewUniformCutter
	// BoundaryAttackerChurn targets the sparse-cut boundary around the
	// source's neighborhood, attacking the conductance the local mixing
	// time measures.
	BoundaryAttackerChurn = dyngraph.NewBoundaryAttacker
	// CrashRestartChurn builds the crash-stop/restart vertex-fault model:
	// each unprotected vertex crashes with probability pCrash per round
	// (dropping all incident edges) and restarts after down rounds.
	CrashRestartChurn = dyngraph.NewCrashRestart

	// VerifyTInterval checks the Kuhn–Lynch–Oshman property: a provider
	// satisfies T-interval connectivity over `rounds` rounds if every
	// window of T consecutive topologies shares a stable connected
	// spanning subgraph.
	VerifyTInterval = dyngraph.VerifyTInterval
	// MaxTInterval reports the largest T for which the provider is
	// T-interval connected over the horizon (0 if some single round is
	// already disconnected).
	MaxTInterval = dyngraph.MaxTInterval
)

// DynamicLocalMixingTime runs Algorithm 2 on a dynamic network: the walk
// mass floods over the per-round topology chosen by the churn model while
// the control plane rides the static superset. The result is the earliest ℓ
// at which the ℓ-step dynamic walk passes the 4ε local-mixing test; with a
// churn-free model it equals DistributedLocalMixingTime's answer. Results
// are byte-identical for every worker count.
func DynamicLocalMixingTime(g *Graph, source int, beta, eps float64, churn TopologyProvider, opts ...DistributedOption) (*DistributedResult, error) {
	return call[*DistributedResult](spec.KindDynamic, &service.Invocation{
		Env:   service.DirectEnv(g),
		Task:  spec.TaskSpec{Source: source, Beta: beta, Eps: eps, Mode: "local"},
		Churn: churn,
		Opts:  opts,
	})
}

// DynamicMixingTime is the [18]-style distributed mixing-time computation
// under churn, measured against the superset's stationary distribution —
// the fixed reference for how far churn displaces the walk. (Experiment E18
// makes the analogous static-vs-churned comparison for the local τ of
// Algorithm 2.)
func DynamicMixingTime(g *Graph, source int, eps float64, churn TopologyProvider, opts ...DistributedOption) (*DistributedResult, error) {
	return call[*DistributedResult](spec.KindDynamic, &service.Invocation{
		Env:   service.DirectEnv(g),
		Task:  spec.TaskSpec{Source: source, Eps: eps, Mode: "mixing"},
		Churn: churn,
		Opts:  opts,
	})
}

// DynamicWalkResult reports a token walk: endpoint, rounds, and the
// edge-loss retries the churn forced.
type DynamicWalkResult = core.TokenWalkResult

// DynamicWalk performs one ℓ-step random walk by token forwarding, one hop
// per round — the Das Sarma–Molla–Pandurangan dynamic-walk primitive. The
// walker picks uniformly among its superset neighbors without advance
// knowledge of the round's edges; a hop over a vanished edge bounces back
// and is restarted, and a crash of the holder restarts the walk from its
// last checkpoint. Combine with WithTopology for churn and WithRetryBudget
// to bound how much adversarial interference the walk tolerates before
// failing fast with ErrRetryBudget; on a static graph it is the classical
// ℓ-round walk with zero retries.
func DynamicWalk(g *Graph, source, steps int, opts ...DistributedOption) (*DynamicWalkResult, error) {
	return call[*DynamicWalkResult](spec.KindWalk, &service.Invocation{
		Env:  service.DirectEnv(g),
		Task: spec.TaskSpec{Source: source, Steps: steps},
		Opts: opts,
	})
}

// EstimateRWProbability runs Algorithm 1 standalone: the fixed-point
// estimate of the length-ℓ walk distribution, computed distributed in ℓ+1
// CONGEST rounds.
func EstimateRWProbability(g *Graph, source, ell int, lazy bool) (*core.RWEstimate, error) {
	return call[*core.RWEstimate](spec.KindEstimate, &service.Invocation{
		Env:  service.DirectEnv(g),
		Task: spec.TaskSpec{Source: source, Steps: ell, Lazy: lazy},
	})
}

// SpreadConfig configures the push–pull gossip run (§4).
type SpreadConfig = spread.Config

// SpreadResult reports a push–pull run.
type SpreadResult = spread.Result

// PushPull runs synchronous push–pull gossip and reports when (·, β)-partial
// and full information spreading were reached (Definition 3, Theorem 3).
func PushPull(g *Graph, cfg SpreadConfig) (*SpreadResult, error) {
	return call[*SpreadResult](spec.KindSpread, &service.Invocation{
		Env:    service.DirectEnv(g),
		Task:   spec.TaskSpec{Transport: "local"},
		Spread: &cfg,
	})
}

// EngineStats exposes the congest engine counters type.
type EngineStats = congest.Stats

// CoverageInstance is a distributed maximum-coverage instance (§1/§4
// application: each node owns a subset of a ground set).
type CoverageInstance = coverage.Instance

// CoverageResult reports a distributed maximum-coverage run.
type CoverageResult = coverage.Result

// RandomCoverageInstance builds a coverage instance with per-node random
// element sets.
func RandomCoverageInstance(n, universe, perNode, k int, rng *rand.Rand) (*CoverageInstance, error) {
	return coverage.RandomInstance(n, universe, perNode, k, rng)
}

// DistributedMaxCoverage solves maximum coverage via partial information
// spreading followed by local greedy, and reports quality against the
// centralized greedy baseline.
func DistributedMaxCoverage(g *Graph, inst *CoverageInstance, beta float64, seed int64) (*CoverageResult, error) {
	return call[*CoverageResult](spec.KindCoverage, &service.Invocation{
		Env:      service.DirectEnv(g),
		Task:     spec.TaskSpec{Beta: beta, Seed: seed},
		Instance: inst,
	})
}

// LeaderElection runs min-id gossip until every node knows the global
// minimum id, returning the round count.
func LeaderElection(g *Graph, seed int64, maxRounds int) (int, error) {
	r, err := call[*service.RoundsResult](spec.KindLeader, &service.Invocation{
		Env:  service.DirectEnv(g),
		Task: spec.TaskSpec{Seed: seed, MaxRounds: maxRounds},
	})
	if err != nil {
		return 0, err
	}
	return r.Rounds, nil
}

// PushPullCongest runs push–pull under the CONGEST constraint — one
// O(log n)-bit token id per message — realizing the paper's footnote 10
// regime with bound Õ(τ(β,ε) + n/β).
func PushPullCongest(g *Graph, cfg SpreadConfig) (*SpreadResult, error) {
	return call[*SpreadResult](spec.KindSpread, &service.Invocation{
		Env:    service.DirectEnv(g),
		Task:   spec.TaskSpec{Transport: "congest"},
		Spread: &cfg,
	})
}

// PushPullEngine runs LOCAL-model push–pull on the sharded round engine:
// full token sets per exchange, carried as typed payload slabs with honest
// bit accounting and parallel stepping (cfg.Workers). Results attach the
// engine's Stats counters.
func PushPullEngine(g *Graph, cfg SpreadConfig) (*SpreadResult, error) {
	return call[*SpreadResult](spec.KindSpread, &service.Invocation{
		Env:    service.DirectEnv(g),
		Task:   spec.TaskSpec{Transport: "engine"},
		Spread: &cfg,
	})
}

// DistributedMaxCoverageEngine is DistributedMaxCoverage with the spreading
// phase executed on the round engine (see PushPullEngine).
func DistributedMaxCoverageEngine(g *Graph, inst *CoverageInstance, beta float64, seed int64) (*CoverageResult, error) {
	return call[*CoverageResult](spec.KindCoverage, &service.Invocation{
		Env:      service.DirectEnv(g),
		Task:     spec.TaskSpec{Beta: beta, Seed: seed, Coverage: &spec.CoverageSpec{Engine: true}},
		Instance: inst,
	})
}

// GraphLocalMixingResult reports the graph-wide local mixing time
// τ(β,ε) = max_v τ_v(β,ε).
type GraphLocalMixingResult = exact.GraphLocalResult

// GraphLocalMixingTime computes τ(β,ε) over all vertices (sources == nil)
// or a sampled subset (the paper's footnote 6 mitigation), in parallel.
func GraphLocalMixingTime(g *Graph, beta, eps float64, o LocalMixingOptions, sources []int) (*GraphLocalMixingResult, error) {
	return call[*GraphLocalMixingResult](spec.KindOracleGraphLocal, &service.Invocation{
		Env:   service.DirectEnv(g),
		Task:  spec.TaskSpec{Beta: beta, Eps: eps, Sources: sources},
		Local: &o,
	})
}
