// Benchmark harness: one testing.B benchmark per experiment in the paper
// index (DESIGN.md §4, EXPERIMENTS.md), plus micro-benchmarks of the
// substrates. Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute the Small-scale workloads; use
// cmd/paperbench -scale full for the paper-shaped tables.
package localmix

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/exact"
	"repro/internal/fixedpoint"
	"repro/internal/gen"
	"repro/internal/spread"
	"repro/internal/sweep"
	"repro/internal/walkkernel"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(bench.Small); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkE1BarbellGap(b *testing.B)        { benchExperiment(b, "E1") }
func BenchmarkE2GraphClasses(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3ApproxRounds(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4ExactRounds(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5PartialSpreading(b *testing.B)  { benchExperiment(b, "E5") }
func BenchmarkE6LocalVsGlobalCost(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7RoundingError(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8EscapeBound(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9SamplingGreyArea(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10SpectralBounds(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11WeakConductance(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12MaxCoverage(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkA1DoublingAblation(b *testing.B)  { benchExperiment(b, "A1") }
func BenchmarkA2EpsilonRelaxation(b *testing.B) { benchExperiment(b, "A2") }
func BenchmarkA3TieBreak(b *testing.B)          { benchExperiment(b, "A3") }
func BenchmarkA4Laziness(b *testing.B)          { benchExperiment(b, "A4") }

// ---- substrate micro-benchmarks ----

// BenchmarkFloodingStep measures one centralized fixed-point walk step
// (the per-round work Algorithm 1 induces at every node).
func BenchmarkFloodingStep(b *testing.B) {
	for _, k := range []int{8, 16, 32} {
		g, err := gen.RingOfCliques(8, k)
		if err != nil {
			b.Fatal(err)
		}
		scale := fixedpoint.MustScaleFor(g.N(), fixedpoint.DefaultC)
		b.Run(fmt.Sprintf("n=%d", g.N()), func(b *testing.B) {
			fw, err := exact.NewFixedWalk(g, 0, scale, false)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fw.Step()
			}
		})
	}
}

// BenchmarkCongestAlgorithm2 measures a complete distributed Algorithm 2
// run, engine overhead included.
func BenchmarkCongestAlgorithm2(b *testing.B) {
	for _, k := range []int{8, 16} {
		g, err := gen.RingOfCliques(8, k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", g.N()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ApproxLocalMixingTime(g, 0, 8, 0.15); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateRW measures the distributed Algorithm 1 at several walk
// lengths (ℓ+1 CONGEST rounds each), reporting engine throughput.
func BenchmarkEstimateRW(b *testing.B) {
	g, err := gen.RingOfCliques(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	for _, ell := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("ell=%d", ell), func(b *testing.B) {
			var rounds, msgs int64
			for i := 0; i < b.N; i++ {
				res, err := core.EstimateRWProbability(g, 0, ell, core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				rounds += int64(res.Stats.Rounds)
				msgs += res.Stats.Messages
			}
			reportThroughput(b, rounds, msgs)
		})
	}
}

// reportThroughput attaches rounds/sec and messages/sec to a benchmark that
// accumulated engine statistics, giving future PRs a perf trajectory beyond
// ns/op.
func reportThroughput(b *testing.B, rounds, msgs int64) {
	sec := b.Elapsed().Seconds()
	if sec <= 0 {
		return
	}
	b.ReportMetric(float64(rounds)/sec, "rounds/sec")
	b.ReportMetric(float64(msgs)/sec, "msgs/sec")
}

// BenchmarkEngineThroughput drives the round engine with a pure flooding
// workload (every node broadcasts every round) on a 4096-node torus — the
// engine-bound upper envelope, dominated by Send/deliver — at 1 worker and
// at GOMAXPROCS.
func BenchmarkEngineThroughput(b *testing.B) {
	g, err := gen.Torus(64, 64)
	if err != nil {
		b.Fatal(err)
	}
	const horizon = 64
	for _, workers := range []int{1, 0} {
		name := "workers=max"
		if workers == 1 {
			name = "workers=1"
		}
		b.Run(name, func(b *testing.B) {
			var rounds, msgs int64
			for i := 0; i < b.N; i++ {
				// Network construction (slot hash, arenas) is setup, not
				// the round loop this benchmark tracks.
				b.StopTimer()
				net, err := congest.NewNetwork(g, congest.Config{Workers: workers, MaxRounds: horizon + 4})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				st, err := net.Run(func(int) congest.Process { return &floodBench{horizon: horizon} })
				if err != nil {
					b.Fatal(err)
				}
				rounds += int64(st.Rounds)
				msgs += st.Messages
			}
			reportThroughput(b, rounds, msgs)
		})
	}
}

// floodBench broadcasts every round until its horizon.
type floodBench struct{ horizon int }

func (p *floodBench) Init(ctx *congest.Context) {}
func (p *floodBench) Step(ctx *congest.Context) {
	if ctx.Round() >= p.horizon {
		ctx.Halt()
		return
	}
	ctx.Broadcast(congest.Message{Kind: 1, Value: int64(ctx.Round()), Bits: 16})
}

// BenchmarkPushPullEngine measures the engine-backed LOCAL gossip (payload
// slabs) against the barbell workload of BenchmarkPushPull.
func BenchmarkPushPullEngine(b *testing.B) {
	g, err := gen.Barbell(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	var rounds, msgs int64
	for i := 0; i < b.N; i++ {
		res, err := spread.RunOnEngine(g, spread.Config{Beta: 8, Seed: int64(i), StopAtPartial: true})
		if err != nil {
			b.Fatal(err)
		}
		rounds += int64(res.Stats.Rounds)
		msgs += res.Stats.Messages
	}
	reportThroughput(b, rounds, msgs)
}

// BenchmarkPushPull measures the gossip engine per full partial-spreading
// run on the barbell.
func BenchmarkPushPull(b *testing.B) {
	g, err := gen.Barbell(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := spread.Run(g, spread.Config{Beta: 8, Seed: int64(i), StopAtPartial: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleLocalMixing measures the centralized oracle (grid mode).
func BenchmarkOracleLocalMixing(b *testing.B) {
	g, err := gen.Barbell(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := exact.LocalMixing(g, 0, 8, bench.PaperEps, exact.LocalOptions{MaxT: 1 << 16, Grid: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphMixingTime measures the all-sources τ_mix(ε) oracle — the
// many-source batched-walk workload of Das Sarma et al. The torus64 case is
// the BENCH trajectory anchor for oracle perf (skipped under -short: it is
// minutes at the pre-kernel serial baseline).
func BenchmarkGraphMixingTime(b *testing.B) {
	for _, c := range []struct {
		name       string
		rows, cols int
	}{
		{"torus32", 32, 32},
		{"torus64", 64, 64},
	} {
		g, err := gen.Torus(c.rows, c.cols)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			if c.rows >= 64 && testing.Short() {
				b.Skip("torus64 takes minutes at the serial baseline; run without -short")
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := exact.GraphMixingTime(g, 0.5, true, 1<<14); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLocalMixingOracle measures a single-source local-mixing oracle
// run (grid mode) on the two workload shapes the paper's experiments lean
// on: a large torus and the ring of cliques.
func BenchmarkLocalMixingOracle(b *testing.B) {
	torus, err := gen.Torus(64, 64)
	if err != nil {
		b.Fatal(err)
	}
	roc, err := gen.RingOfCliques(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		run  func() error
	}{
		{"torus64", func() error {
			_, err := exact.LocalMixing(torus, 0, 8, 0.25, exact.LocalOptions{MaxT: 1 << 18, Grid: true, Lazy: true})
			return err
		}},
		{"ringcliques", func() error {
			_, err := exact.LocalMixing(roc, 0, 8, bench.PaperEps, exact.LocalOptions{MaxT: 1 << 16, Grid: true})
			return err
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributedSweep measures the all-sources distributed
// GraphLocalMixingTime sweep (graph-wide τ(β,ε) via Algorithm 2 from every
// vertex) on the parallel sweep engine. "serial" is the seed path it
// replaced — one core.Run per source, each building a fresh CONGEST
// network — with the same splitmix64-derived per-source seeds, so every
// variant must compute the identical MultiResult; the workersN variants
// track the wall-clock win (≈ linear in cores on multi-core hosts, plus
// the network-construction amortization even on one core). torus16 is the
// heavier anchor, skipped under -short.
func BenchmarkDistributedSweep(b *testing.B) {
	roc, err := gen.RingOfCliques(4, 8)
	if err != nil {
		b.Fatal(err)
	}
	torus, err := gen.Torus(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	const base = 1
	cfgFor := func(beta float64) core.Config {
		cfg := core.Config{Mode: core.ApproxLocal, Beta: beta, Eps: bench.PaperEps, Lazy: true, AllowIrregular: true}
		cfg.Engine.Seed = base
		return cfg
	}
	graphs := []struct {
		name  string
		g     *Graph
		beta  float64
		heavy bool
	}{
		{"ringcliques", roc, 4, false},
		{"torus16", torus, 4, true},
	}
	for _, gr := range graphs {
		cfg := cfgFor(gr.beta)
		b.Run(gr.name+"/serial", func(b *testing.B) {
			if gr.heavy && testing.Short() {
				b.Skip("torus16 all-sources serial sweep is slow; run without -short")
			}
			for i := 0; i < b.N; i++ {
				tau := -1
				for s := 0; s < gr.g.N(); s++ {
					runCfg := cfg
					runCfg.Source = s
					runCfg.Engine.Seed = sweep.DeriveSeed(base, s)
					res, err := core.Run(gr.g, runCfg)
					if err != nil {
						b.Fatal(err)
					}
					if res.Tau > tau {
						tau = res.Tau
					}
				}
			}
		})
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers%d", gr.name, workers), func(b *testing.B) {
				if gr.heavy && testing.Short() {
					b.Skip("torus16 all-sources sweep is slow; run without -short")
				}
				for i := 0; i < b.N; i++ {
					if _, err := core.GraphLocalMixingTimeSweep(gr.g, cfg, core.SweepOptions{Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRandomRegularGen measures the repaired pairing-model generator.
func BenchmarkRandomRegularGen(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if _, err := gen.RandomRegular(256, 6, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13CongestSpreading(b *testing.B)    { benchExperiment(b, "E13") }
func BenchmarkE14GraphLocalMixing(b *testing.B)    { benchExperiment(b, "E14") }
func BenchmarkE15EngineCounters(b *testing.B)      { benchExperiment(b, "E15") }
func BenchmarkE16OracleKernel(b *testing.B)        { benchExperiment(b, "E16") }
func BenchmarkE18DynamicChurn(b *testing.B)        { benchExperiment(b, "E18") }
func BenchmarkE19AdaptiveAdversaries(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkDynamicWalk measures the dynamic-aware token-walk protocol
// (core.TokenWalk): a 256-step walk by token forwarding, one hop per round,
// on a static torus and under edge-Markov churn at two intensities. The
// rounds/op metric tracks the hop+retry round count (≥ steps; the excess is
// churn-induced restarts), retries/op the edge-loss restarts themselves.
// Like every engine workload, results are worker-count invariant.
func BenchmarkDynamicWalk(b *testing.B) {
	g, err := gen.Torus(32, 32)
	if err != nil {
		b.Fatal(err)
	}
	const steps = 256
	variants := []struct {
		name string
		rate float64
	}{
		{"torus32/static", 0},
		{"torus32/markov05", 0.05},
		{"torus32/markov20", 0.20},
	}
	for _, v := range variants {
		opts := []core.Option{core.WithSeed(1)}
		if v.rate > 0 {
			churn, err := dyngraph.NewEdgeMarkov(g, 7, v.rate, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			opts = append(opts, core.WithTopology(churn))
		}
		b.Run(v.name, func(b *testing.B) {
			var rounds, retries int64
			for i := 0; i < b.N; i++ {
				res, err := core.TokenWalk(g, 0, steps, opts...)
				if err != nil {
					b.Fatal(err)
				}
				rounds += int64(res.Rounds)
				retries += res.Retries
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(retries)/float64(b.N), "retries/op")
		})
	}
}

// BenchmarkScaleAnchor is the million-node smoke anchor (ROADMAP "Scale
// anchors"): a 1000×1000 torus pushed through the walk kernel and the round
// engine, reporting steady-state heap bytes and rounds/sec (steps/sec for
// the kernel) via ReportMetric, so the CI artifact catches O(n) regressions
// the default graph sizes cannot see. Skipped under -short — the full
// anchor builds a 10⁶-vertex network.
func BenchmarkScaleAnchor(b *testing.B) {
	if testing.Short() {
		b.Skip("million-node scale anchor skipped under -short")
	}
	const side = 1000 // 10⁶ vertices, 2·10⁶ edges
	g, err := gen.Torus(side, side)
	if err != nil {
		b.Fatal(err)
	}

	steadyMB := func(b *testing.B) {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		b.ReportMetric(float64(ms.HeapAlloc)/1e6, "heap-MB")
		b.ReportMetric(float64(ms.Sys)/1e6, "sys-MB") // peak footprint incl. freed slabs
	}

	b.Run("kernel", func(b *testing.B) {
		// Dense SpMV passes over a uniform distribution — the O(m) path a
		// regression would hit, not the sparse single-source frontier.
		k := walkkernel.New(g, 0)
		n := g.N()
		src := make([]float64, n)
		dst := make([]float64, n)
		for i := range src {
			src[i] = 1 / float64(n)
		}
		const steps = 8
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for s := 0; s < steps; s++ {
				k.Apply(dst, src, true)
				src, dst = dst, src
			}
		}
		b.StopTimer()
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(steps*b.N)/sec, "steps/sec")
		}
		steadyMB(b)
	})

	b.Run("engine", func(b *testing.B) {
		const ell = 4 // ℓ+1 engine rounds per estimate
		var rounds int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			est, err := core.EstimateRWProbability(g, 0, ell, core.Config{Lazy: true})
			if err != nil {
				b.Fatal(err)
			}
			rounds += int64(est.Stats.Rounds)
		}
		b.StopTimer()
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(rounds)/sec, "rounds/sec")
		}
		steadyMB(b)
	})
}
