// Package localmix is the public API of this repository: a full
// implementation of "Local Mixing Time: Distributed Computation and
// Applications" (Molla & Pandurangan, IPDPS 2018).
//
// The local mixing time τ_s(β, ε) of a vertex s is the earliest time at
// which the random-walk distribution from s is ε-close (in L1) to the
// stationary distribution restricted to *some* set S ∋ s of size ≥ n/β
// (Definition 2 of the paper). It refines the classical mixing time: on a
// β-barbell graph the mixing time is Ω(β²) while the local mixing time is
// O(1).
//
// Four layers are exposed:
//
//   - Graph construction: Builder and the generator functions (Barbell,
//     RingOfCliques, RandomRegular, Path, Complete, Torus, Hypercube, …).
//   - Centralized oracles: MixingTime, LocalMixingTime, GraphMixingTime —
//     exact float64 computations for analysis and ground truth, running on
//     the shared batched walk kernel.
//   - Distributed algorithms: DistributedLocalMixingTime (Algorithm 2,
//     Theorem 1), DistributedExactLocalMixingTime (§3.2, Theorem 2),
//     DistributedMixingTime (the [18] baseline), the multi-source sweep
//     variants (DistributedGraphLocalMixingTime and friends, SweepOptions)
//     — CONGEST-model simulations with honest round/message/bandwidth
//     accounting — and PushPull (§4, Theorem 3) for partial information
//     spreading.
//   - Dynamic networks: DynamicLocalMixingTime, DynamicMixingTime and
//     DynamicWalk run the same computations under deterministic per-round
//     edge churn (EdgeMarkovChurn, IntervalChurn, SnapshotChurn), the
//     regime of the dynamic-network follow-on work of Das Sarma, Molla and
//     Pandurangan.
//
// Everything is deterministic from explicit seeds, and every parallel
// subsystem — the round engine, the walk kernel, the sweep pool — produces
// identical results for every worker count, so parallelism is purely a
// throughput knob.
//
// See examples/quickstart for a five-minute tour, examples/dynamic for the
// churn modes, and docs/ARCHITECTURE.md for the layer map and the
// paper-notation glossary.
package localmix
