// Command doccheck is the repository's documentation gate: it fails when a
// package lacks a package comment or an exported top-level identifier
// (function, method, type, const, var) lacks a doc comment. CI runs it over
// the whole module, so a new exported symbol cannot land undocumented.
//
// Usage:
//
//	go run ./tools/doccheck ./...
//	go run ./tools/doccheck ./internal/congest ./internal/core
//
// A "./..." argument walks every Go package under the current directory
// (skipping testdata and hidden directories). Test files are ignored. Doc
// comments on a grouped declaration (`// comment` above `const (...)`) are
// accepted for every spec in the group.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	addDir := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, a := range args {
		if strings.HasSuffix(a, "/...") {
			root := filepath.Clean(strings.TrimSuffix(a, "/..."))
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					addDir(path)
				}
				return nil
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "doccheck:", err)
				os.Exit(2)
			}
			continue
		}
		addDir(a)
	}
	sort.Strings(dirs)

	var problems []string
	for _, dir := range dirs {
		problems = append(problems, checkDir(dir)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", len(problems))
		os.Exit(1)
	}
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// checkDir parses one package directory and returns its violations.
func checkDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse error: %v", dir, err)}
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
				break
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment (add a doc.go)", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			out = append(out, checkFile(fset, name, f)...)
		}
	}
	sort.Strings(out)
	return out
}

func checkFile(fset *token.FileSet, name string, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what, ident string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, ident))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			what := "function"
			ident := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				recv := receiverName(d.Recv.List[0].Type)
				if recv == "" || !ast.IsExported(recv) {
					continue // method on an unexported type: not API surface
				}
				what = "method"
				ident = recv + "." + d.Name.Name
			}
			report(d.Pos(), what, ident)
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc on the group or on the spec covers every name;
					// grouped consts/vars conventionally share one comment.
					if groupDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), kindWord(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// receiverName extracts the type identifier of a method receiver.
func receiverName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return receiverName(t.X)
	case *ast.IndexListExpr:
		return receiverName(t.X)
	}
	return ""
}
