// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one object per benchmark line with every reported
// metric keyed by its unit — the shape CI stores as BENCH_*.json artifacts
// so the perf trajectory (req/sec of the serving path, ns/op of the
// kernels) is machine-readable across commits.
//
// Usage:
//
//	go test -run xxx -bench . ./cmd/lmtd | go run ./tools/benchjson > BENCH_serve.json
//
// A benchmark line has the form
//
//	BenchmarkLoadGenerator/warm-4   41599   57447 ns/op   17407 req/sec
//
// i.e. a name, an iteration count, then (value, unit) pairs. Non-benchmark
// lines (the goos/pkg header, PASS/ok trailers) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	// Name is the full benchmark name including the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every (value, unit) pair on the line
	// (ns/op, req/sec, B/op, allocs/op, ...).
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	var out []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if out == nil {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one "Benchmark... N v unit v unit ..." line; ok is false
// for anything else.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
