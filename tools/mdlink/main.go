// Command mdlink is the markdown half of the docs gate: it checks that
// every relative link or image target in the given markdown files resolves
// to an existing file or directory, so README/ARCHITECTURE references can
// not rot silently. External links (http, https, mailto) and pure
// in-page anchors (#section) are ignored; a fragment on a relative link
// (FILE.md#section) is checked for the file part only.
//
// Usage:
//
//	go run ./tools/mdlink README.md docs/ARCHITECTURE.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Reference-style links are rare in this repository and
// out of scope.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mdlink FILE.md ...")
		os.Exit(2)
	}
	broken := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdlink:", err)
			os.Exit(2)
		}
		base := filepath.Dir(file)
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skip(target) {
					continue
				}
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
					if target == "" {
						continue
					}
				}
				resolved := filepath.Join(base, target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Fprintf(os.Stderr, "%s:%d: broken link %q (%s does not exist)\n",
						file, lineNo+1, m[1], resolved)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlink: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// skip reports whether the target is external or otherwise out of scope.
func skip(target string) bool {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"),
		strings.HasPrefix(target, "#"):
		return true
	}
	return false
}
