// Gossip: partial information spreading with the Theorem 3 termination rule.
//
// The paper's §4 application: every node has a token; push–pull gossip must
// deliver every token to ≥ n/β nodes and every node must collect ≥ n/β
// tokens (Definition 3). Theorem 3 says Θ(τ(β,ε)·log n) rounds suffice —
// and because τ is *computable* distributed (Theorem 1), the network can
// derive its own stopping time. This example does exactly that, then shows
// leader election riding on the same mechanism.
//
//	go run ./examples/gossip
package main

import (
	"fmt"
	"log"
	"math"

	localmix "repro"
)

func main() {
	const beta, cliqueSize = 8, 16
	g, err := localmix.Barbell(beta, cliqueSize)
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	fmt.Printf("graph %s: n=%d\n", g.Name(), n)

	// Step 1 — the network computes its own termination time:
	// τ̂(β,ε) by Algorithm 2, then budget = 3·τ̂·log₂ n.
	const eps = 1.0 / 21.746
	tau, err := localmix.DistributedLocalMixingTime(g, 0, beta, eps,
		localmix.WithIrregular(), localmix.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	budget := int(3 * float64(tau.Tau) * math.Log2(float64(n)))
	fmt.Printf("τ̂(β=%d) = %d → termination rule: %d push–pull rounds\n", beta, tau.Tau, budget)

	// Step 2 — run push–pull for exactly that budget.
	res, err := localmix.PushPull(g, localmix.SpreadConfig{
		Beta:        beta,
		Seed:        42,
		FixedRounds: budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	target := int(math.Ceil(float64(n) / beta))
	fmt.Printf("after %d rounds: every node holds ≥ %d tokens (target %d), every token reached ≥ %d nodes\n",
		res.Rounds, res.MinTokensPerNode, target, res.MinNodesPerToken)
	if res.MinTokensPerNode >= target && res.MinNodesPerToken >= target {
		fmt.Println("⇒ (δ,β)-partial information spreading achieved within the self-computed budget")
	} else {
		fmt.Println("⇒ budget insufficient (increase the constant)")
	}

	// Step 3 — contrast with full information spreading, which needs the
	// token to cross every bridge of the barbell.
	full, err := localmix.PushPull(g, localmix.SpreadConfig{Beta: 1, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full spreading takes %d rounds — %.1f× the partial budget\n",
		full.RoundsToFull, float64(full.RoundsToFull)/float64(budget))

	// Step 4 — leader election via the same gossip substrate.
	rounds, err := localmix.LeaderElection(g, 7, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leader election (min-id gossip): everyone knows the leader after %d rounds\n", rounds)
}
