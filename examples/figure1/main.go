// Figure 1: the β-barbell sweep — the paper's defining separation.
//
// Reproduces the §2.3(d) discussion quantitatively: as β grows (more
// cliques), the mixing time grows like β² while the local mixing time
// stays constant, so the gap is unbounded. Also prints the walk's
// restricted-distance profile on the source clique, exhibiting the
// non-monotonicity that forces Algorithm 2 to double rather than
// binary-search (§3, "Doubling the length ℓ").
//
//	go run ./examples/figure1
package main

import (
	"fmt"
	"log"

	localmix "repro"
)

func main() {
	const cliqueSize = 12
	const eps = 1.0 / 21.746

	fmt.Println("β-barbell sweep (clique size 12):")
	fmt.Println("beta   n    τ_local  τ_mix    gap")
	for _, beta := range []int{2, 4, 8, 16} {
		g, err := localmix.Barbell(beta, cliqueSize)
		if err != nil {
			log.Fatal(err)
		}
		local, err := localmix.LocalMixingTime(g, 0, float64(beta), eps,
			localmix.LocalMixingOptions{MaxT: 1 << 22, Grid: true})
		if err != nil {
			log.Fatal(err)
		}
		mix, err := localmix.MixingTime(g, 0, eps, false, 1<<22)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5d  %-4d %-8d %-8d %.0f×\n", beta, g.N(), local.T, mix, float64(mix)/float64(local.T))
	}

	// The restricted distance on the *witness set* is non-monotone: it dips
	// below ε while the walk saturates the source clique, then rises as
	// probability mass leaks across the bridge. This is why τ_local is not
	// binary-searchable (Lemma 1 fails for restricted distributions).
	g, err := localmix.Barbell(8, cliqueSize)
	if err != nil {
		log.Fatal(err)
	}
	local, err := localmix.LocalMixingTime(g, 0, 8, eps,
		localmix.LocalMixingOptions{MaxT: 1 << 22, Grid: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwitness set at τ=%d has %d vertices; restricted L1 over time:\n", local.T, local.R)
	for _, t := range []int{1, 2, 4, 16, 64, 256, 1024} {
		e, err := localmix.EstimateRWProbability(g, 0, t, false)
		if err != nil {
			log.Fatal(err)
		}
		p := e.Float()
		sum := 0.0
		for _, v := range local.Set {
			d := p[v] - 1/float64(local.R)
			if d < 0 {
				d = -d
			}
			sum += d
		}
		marker := ""
		if sum < eps {
			marker = "  ← locally mixed"
		}
		fmt.Printf("  t=%-5d ‖p_t,S − 1/|S|‖₁ = %.4f%s\n", t, sum, marker)
	}
	fmt.Println("\nthe distance dips below ε early and then rises — local mixing is transient, global mixing is far away")
}
