// Quickstart: five minutes with the localmix library.
//
// Builds the paper's Figure 1 graph (a β-barbell), computes its mixing time
// and local mixing time with the centralized oracle, then runs the paper's
// distributed Algorithm 2 in a simulated CONGEST network and compares.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	localmix "repro"
)

func main() {
	// The β-barbell of Figure 1: 8 cliques of 16 vertices in a path.
	// Its mixing time is Ω(β²); its local mixing time is O(1).
	const beta, cliqueSize = 8, 16
	g, err := localmix.Barbell(beta, cliqueSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph %s: n=%d, m=%d\n", g.Name(), g.N(), g.M())

	const (
		source = 0
		eps    = 1.0 / 21.746 // ≈ 1/8e, the paper's running choice
	)

	// Centralized ground truth (Definition 1 and Definition 2).
	tauMix, err := localmix.MixingTime(g, source, eps, false, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	local, err := localmix.LocalMixingTime(g, source, beta, eps,
		localmix.LocalMixingOptions{MaxT: 1 << 20, Grid: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle:  τ_mix = %d,  τ_local(β=%d) = %d  (gap %.0f×), witness set |S| = %d\n",
		tauMix, beta, local.T, float64(tauMix)/float64(local.T), local.R)

	// The paper's distributed Algorithm 2 (Theorem 1): a 2-approximation of
	// the local mixing time, computed by message passing in the CONGEST
	// model. The barbell is near-regular (ports have one extra edge), which
	// WithIrregular admits, exactly as the paper treats Figure 1.
	res, err := localmix.DistributedLocalMixingTime(g, source, beta, eps,
		localmix.WithIrregular(), localmix.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed: τ̂ = %d (R=%d) in %d CONGEST rounds, %d messages, ≤%d bits/edge/round\n",
		res.Tau, res.R, res.Stats.Rounds, res.Stats.Messages, res.Stats.MaxEdgeBits)

	// For contrast: computing the *global* mixing time distributed ([18])
	// costs rounds proportional to τ_mix — thousands of times more here.
	mix, err := localmix.DistributedMixingTime(g, source, eps, localmix.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:    τ_mix = %d in %d CONGEST rounds (%.0f× the local cost)\n",
		mix.Tau, mix.Stats.Rounds, float64(mix.Stats.Rounds)/float64(res.Stats.Rounds))
}
