// Command dynamic demonstrates the dynamic-network mode: the same
// ring-of-cliques graph is solved by the distributed Algorithm 2 on a
// static network and under two seeded churn models, and a token walk shows
// the per-hop cost of edge loss. Everything is deterministic: rerunning
// prints the same numbers.
package main

import (
	"fmt"
	"log"

	localmix "repro"
)

func main() {
	g, err := localmix.RingOfCliques(8, 12) // exactly 11-regular
	if err != nil {
		log.Fatal(err)
	}
	const (
		beta = 8
		eps  = 0.15
		seed = 1
	)
	opts := []localmix.DistributedOption{localmix.WithSeed(seed), localmix.WithLazy()}

	static, err := localmix.DistributedLocalMixingTime(g, 0, beta, eps, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static       τ=%d  rounds=%d\n", static.Tau, static.Stats.Rounds)

	// Edge-Markov churn: each non-backbone edge flips on→off with
	// probability 0.2 and off→on with 0.5, independently per round. A BFS
	// backbone keeps every round's topology connected.
	markov, err := localmix.EdgeMarkovChurn(g, seed, 0.2, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	churned, err := localmix.DynamicLocalMixingTime(g, 0, beta, eps, markov, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge-markov  τ=%d  rounds=%d  toggles=%d\n",
		churned.Tau, churned.Stats.Rounds, churned.Stats.TopologyChanges)

	// T-interval resampling: every 8 rounds, keep each non-backbone edge
	// with probability 0.7 and hold the topology fixed in between.
	interval, err := localmix.IntervalChurn(g, seed, 8, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	held, err := localmix.DynamicLocalMixingTime(g, 0, beta, eps, interval, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interval     τ=%d  rounds=%d  toggles=%d\n",
		held.Tau, held.Stats.Rounds, held.Stats.TopologyChanges)

	// A single 64-step walk by token forwarding under the Markov churn: the
	// walker picks superset neighbors blindly, and every hop that lands on
	// a vanished edge bounces back and is retried next round.
	walk, err := localmix.DynamicWalk(g, 0, 64,
		localmix.WithSeed(seed), localmix.WithTopology(markov))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("token walk   end=%d  rounds=%d  retries=%d\n", walk.End, walk.Rounds, walk.Retries)
}
