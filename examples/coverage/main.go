// Coverage: distributed maximum coverage over partial information spreading.
//
// The paper's motivating application chain (§1, following Censor-Hillel &
// Shachnai): partial information spreading → maximum coverage. Every node
// owns a set of elements (think: a sensor's observed area, a machine's
// runnable jobs); the network must pick k nodes maximizing the union. Full
// dissemination would cost Ω(full spreading); partial spreading of the n/β
// strongest candidates is enough to get within a few percent of the
// centralized greedy.
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"log"

	localmix "repro"
)

func main() {
	const beta = 4
	g, err := localmix.RingOfCliques(8, 16) // n = 128, exactly 15-regular
	if err != nil {
		log.Fatal(err)
	}
	// A tight universe (n/2 elements, 6 per node) forces heavy overlap, so
	// *which* k sets are picked matters and the candidate pool size shows.
	rng := localmix.NewRand(11)
	inst, err := localmix.RandomCoverageInstance(g.N(), g.N()/2, 6, 6, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph %s: n=%d; universe of %d elements, %d sets to pick\n",
		g.Name(), g.N(), inst.Universe, inst.K)

	for _, b := range []float64{2, 4, 8, 16} {
		res, err := localmix.DistributedMaxCoverage(g, inst, b, 23)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("β=%-3.0f spread %2d rounds, min sets seen %3d → covered %d/%d (%.1f%% of centralized greedy)\n",
			b, res.SpreadRounds, res.MinSetsSeen, res.BestCovered, res.CentralCovered, 100*res.Ratio)
	}
	fmt.Println("larger β spreads less and is cheaper; quality degrades gracefully — the paper's §4 trade-off")
}
