package localmix_test

import (
	"fmt"

	localmix "repro"
)

// The Figure 1 separation: mixing time grows with β², local mixing stays
// constant.
func ExampleLocalMixingTime() {
	g, _ := localmix.Barbell(8, 12) // 8 cliques of 12 vertices
	eps := 1.0 / 21.746
	local, _ := localmix.LocalMixingTime(g, 0, 8, eps,
		localmix.LocalMixingOptions{MaxT: 1 << 20, Grid: true})
	mix, _ := localmix.MixingTime(g, 0, eps, false, 1<<20)
	fmt.Printf("local mixing time: %d (witness set size %d)\n", local.T, local.R)
	fmt.Printf("mixing time: %d\n", mix)
	// Output:
	// local mixing time: 2 (witness set size 12)
	// mixing time: 3382
}

// Running the paper's distributed Algorithm 2 in a simulated CONGEST
// network.
func ExampleDistributedLocalMixingTime() {
	g, _ := localmix.RingOfCliques(8, 12) // exactly 11-regular
	res, _ := localmix.DistributedLocalMixingTime(g, 0, 8, 0.15, localmix.WithSeed(1))
	fmt.Printf("tau = %d with witness size %d\n", res.Tau, res.R)
	fmt.Printf("all nodes halted: %v\n", res.Stats.HaltedAll)
	// Output:
	// tau = 1 with witness size 12
	// all nodes halted: true
}

// Algorithm 1 standalone: the fixed-point estimate of p_ℓ conserves mass
// exactly.
func ExampleEstimateRWProbability() {
	g, _ := localmix.Complete(16)
	est, _ := localmix.EstimateRWProbability(g, 0, 3, false)
	fmt.Printf("rounds used: %d\n", est.Stats.Rounds)
	fmt.Printf("mass conserved: %v\n", est.TotalMass() == est.Scale.One)
	// Output:
	// rounds used: 4
	// mass conserved: true
}

// Partial information spreading with the Theorem 3 termination rule.
func ExamplePushPull() {
	g, _ := localmix.Barbell(8, 16)
	res, _ := localmix.PushPull(g, localmix.SpreadConfig{Beta: 8, Seed: 42, FixedRounds: 21})
	target := g.N() / 8
	fmt.Printf("after %d rounds, every node holds at least n/beta = %d tokens: %v\n",
		res.Rounds, target, res.MinTokensPerNode >= target)
	// Output:
	// after 21 rounds, every node holds at least n/beta = 16 tokens: true
}
