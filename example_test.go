package localmix_test

import (
	"fmt"

	localmix "repro"
)

// The Figure 1 separation: mixing time grows with β², local mixing stays
// constant.
func ExampleLocalMixingTime() {
	g, _ := localmix.Barbell(8, 12) // 8 cliques of 12 vertices
	eps := 1.0 / 21.746
	local, _ := localmix.LocalMixingTime(g, 0, 8, eps,
		localmix.LocalMixingOptions{MaxT: 1 << 20, Grid: true})
	mix, _ := localmix.MixingTime(g, 0, eps, false, 1<<20)
	fmt.Printf("local mixing time: %d (witness set size %d)\n", local.T, local.R)
	fmt.Printf("mixing time: %d\n", mix)
	// Output:
	// local mixing time: 2 (witness set size 12)
	// mixing time: 3382
}

// Running the paper's distributed Algorithm 2 in a simulated CONGEST
// network.
func ExampleDistributedLocalMixingTime() {
	g, _ := localmix.RingOfCliques(8, 12) // exactly 11-regular
	res, _ := localmix.DistributedLocalMixingTime(g, 0, 8, 0.15, localmix.WithSeed(1))
	fmt.Printf("tau = %d with witness size %d\n", res.Tau, res.R)
	fmt.Printf("all nodes halted: %v\n", res.Stats.HaltedAll)
	// Output:
	// tau = 1 with witness size 12
	// all nodes halted: true
}

// Algorithm 1 standalone: the fixed-point estimate of p_ℓ conserves mass
// exactly.
func ExampleEstimateRWProbability() {
	g, _ := localmix.Complete(16)
	est, _ := localmix.EstimateRWProbability(g, 0, 3, false)
	fmt.Printf("rounds used: %d\n", est.Stats.Rounds)
	fmt.Printf("mass conserved: %v\n", est.TotalMass() == est.Scale.One)
	// Output:
	// rounds used: 4
	// mass conserved: true
}

// A multi-source sweep: the graph-wide τ(β,ε) = max_v τ_v of Definition 2,
// computed from every vertex on the parallel sweep engine. Results are
// identical for every SweepOptions.Workers value, so the output is stable.
func ExampleDistributedGraphLocalMixingTime() {
	g, _ := localmix.RingOfCliques(8, 12)
	multi, _ := localmix.DistributedGraphLocalMixingTime(g, 8, 0.15,
		localmix.SweepOptions{Workers: 2}, localmix.WithSeed(1))
	fmt.Printf("graph-wide tau = %d over %d sources\n", multi.Tau, len(multi.Sources))
	fmt.Printf("argmax source: %d\n", multi.ArgMax)
	// Output:
	// graph-wide tau = 1 over 96 sources
	// argmax source: 0
}

// Footnote-6 sampling: a deterministic subset of sources instead of all n.
func ExampleDistributedGraphMixingTime() {
	g, _ := localmix.RingOfCliques(6, 8)
	multi, _ := localmix.DistributedGraphMixingTime(g, 0.15,
		localmix.SweepOptions{Sample: 8, Workers: 2}, localmix.WithSeed(1), localmix.WithLazy())
	fmt.Printf("sampled %d of %d sources, tau_mix = %d\n", len(multi.Sources), g.N(), multi.Tau)
	// Output:
	// sampled 8 of 48 sources, tau_mix = 319
}

// The dynamic-network mode: Algorithm 2 with the walk evolving under
// seeded edge-Markov churn. A churn-free model reproduces the static
// answer; real churn can only displace the walk, never break determinism.
func ExampleDynamicLocalMixingTime() {
	g, _ := localmix.RingOfCliques(8, 12)
	churn, _ := localmix.EdgeMarkovChurn(g, 1, 0.2, 0.5)
	res, _ := localmix.DynamicLocalMixingTime(g, 0, 8, 0.15, churn,
		localmix.WithSeed(1), localmix.WithLazy())
	fmt.Printf("tau under churn = %d with witness size %d\n", res.Tau, res.R)
	fmt.Printf("edges toggled: %v\n", res.Stats.TopologyChanges > 0)
	// Output:
	// tau under churn = 1 with witness size 12
	// edges toggled: true
}

// A single random walk by token forwarding under churn: hops over vanished
// edges bounce and are restarted (Das Sarma et al.), visible as Retries.
func ExampleDynamicWalk() {
	g, _ := localmix.RingOfCliques(8, 12)
	churn, _ := localmix.EdgeMarkovChurn(g, 1, 0.2, 0.5)
	walk, _ := localmix.DynamicWalk(g, 0, 64,
		localmix.WithSeed(1), localmix.WithTopology(churn))
	fmt.Printf("64-step walk: %d rounds, %d churn retries\n", walk.Rounds, walk.Retries)
	// Output:
	// 64-step walk: 95 rounds, 18 churn retries
}

// Partial information spreading with the Theorem 3 termination rule.
func ExamplePushPull() {
	g, _ := localmix.Barbell(8, 16)
	res, _ := localmix.PushPull(g, localmix.SpreadConfig{Beta: 8, Seed: 42, FixedRounds: 21})
	target := g.N() / 8
	fmt.Printf("after %d rounds, every node holds at least n/beta = %d tokens: %v\n",
		res.Rounds, target, res.MinTokensPerNode >= target)
	// Output:
	// after 21 rounds, every node holds at least n/beta = 16 tokens: true
}
