package localmix

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/service"
	"repro/internal/spec"
)

// The job-layer equivalence contract: for every registered task kind,
// service.Run over a spec must return a result byte-identical
// (reflect.DeepEqual) to the corresponding direct facade call on the same
// graph. The facade delegates through the same runners, so any divergence
// here means the cache or the spec normalization changed a computation.
func TestServiceRunMatchesFacadeEveryKind(t *testing.T) {
	gs := spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5}
	svc := service.New(service.Options{})
	g, _, err := svc.Graph(gs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	run := func(t *testing.T, task spec.TaskSpec) *service.Response {
		t.Helper()
		resp, err := svc.Run(ctx, service.Request{Graph: gs, Task: task})
		if err != nil {
			t.Fatalf("service.Run: %v", err)
		}
		return resp
	}
	const (
		eps  = 0.05
		beta = 4.0
		seed = int64(5)
	)
	maxT := 8 * g.N() * g.N()
	oracleOpts := LocalMixingOptions{MaxT: maxT, Grid: true}

	checks := []struct {
		name   string
		task   spec.TaskSpec
		facade func() (any, error)
	}{
		{"oracle-mixing",
			spec.TaskSpec{Kind: spec.KindOracleMixing, Eps: eps},
			func() (any, error) {
				tau, err := MixingTime(g, 0, eps, false, maxT)
				return &service.TauResult{Tau: tau}, err
			}},
		{"oracle-local",
			spec.TaskSpec{Kind: spec.KindOracleLocal, Beta: beta, Eps: eps},
			func() (any, error) { return LocalMixingTime(g, 0, beta, eps, oracleOpts) }},
		{"oracle-graph-mixing",
			spec.TaskSpec{Kind: spec.KindOracleGraphMixing, Eps: eps},
			func() (any, error) {
				tau, err := GraphMixingTime(g, eps, false, maxT)
				return &service.TauResult{Tau: tau}, err
			}},
		{"oracle-graph-local",
			spec.TaskSpec{Kind: spec.KindOracleGraphLocal, Beta: beta, Eps: eps},
			func() (any, error) { return GraphLocalMixingTime(g, beta, eps, oracleOpts, nil) }},
		{"mixing",
			spec.TaskSpec{Kind: spec.KindMixing, Eps: eps, Seed: seed},
			func() (any, error) { return DistributedMixingTime(g, 0, eps, WithSeed(seed)) }},
		{"local",
			spec.TaskSpec{Kind: spec.KindLocal, Beta: beta, Eps: eps, Seed: seed},
			func() (any, error) { return DistributedLocalMixingTime(g, 0, beta, eps, WithSeed(seed)) }},
		{"local-exact",
			spec.TaskSpec{Kind: spec.KindLocal, Beta: beta, Eps: eps, Seed: seed, Exact: true},
			func() (any, error) { return DistributedExactLocalMixingTime(g, 0, beta, eps, WithSeed(seed)) }},
		{"sweep",
			spec.TaskSpec{Kind: spec.KindSweep, Mode: "approx", Beta: beta, Eps: eps, Seed: seed, Sample: 4, SweepWorkers: 2},
			func() (any, error) {
				return DistributedGraphLocalMixingTime(g, beta, eps, SweepOptions{Workers: 2, Sample: 4}, WithSeed(seed))
			}},
		{"sweep-mixing",
			spec.TaskSpec{Kind: spec.KindSweep, Mode: "mixing", Eps: eps, Seed: seed, Sources: []int{0, 7, 13}},
			func() (any, error) {
				return DistributedGraphMixingTime(g, eps, SweepOptions{Sources: []int{0, 7, 13}}, WithSeed(seed))
			}},
		{"dynamic",
			spec.TaskSpec{Kind: spec.KindDynamic, Mode: "local", Beta: beta, Eps: eps, Seed: seed,
				Churn: &spec.ChurnSpec{Model: "markov", Rate: 0.05, On: 0.5, Seed: 3}},
			func() (any, error) {
				churn, err := EdgeMarkovChurn(g, 3, 0.05, 0.5)
				if err != nil {
					return nil, err
				}
				return DynamicLocalMixingTime(g, 0, beta, eps, churn, WithSeed(seed))
			}},
		{"walk",
			spec.TaskSpec{Kind: spec.KindWalk, Steps: 16, Seed: seed},
			func() (any, error) { return DynamicWalk(g, 0, 16, WithSeed(seed)) }},
		{"estimate",
			spec.TaskSpec{Kind: spec.KindEstimate, Steps: 8},
			func() (any, error) { return EstimateRWProbability(g, 0, 8, false) }},
		{"spread",
			spec.TaskSpec{Kind: spec.KindSpread, Beta: beta, Seed: seed},
			func() (any, error) { return PushPull(g, SpreadConfig{Beta: beta, Seed: seed}) }},
		{"spread-congest",
			spec.TaskSpec{Kind: spec.KindSpread, Transport: "congest", Beta: beta, Seed: seed},
			func() (any, error) { return PushPullCongest(g, SpreadConfig{Beta: beta, Seed: seed}) }},
		{"spread-engine",
			spec.TaskSpec{Kind: spec.KindSpread, Transport: "engine", Beta: beta, Seed: seed},
			func() (any, error) { return PushPullEngine(g, SpreadConfig{Beta: beta, Seed: seed}) }},
		{"leader",
			spec.TaskSpec{Kind: spec.KindLeader, Seed: seed},
			func() (any, error) {
				rounds, err := LeaderElection(g, seed, 0)
				return &service.RoundsResult{Rounds: rounds}, err
			}},
		{"coverage",
			spec.TaskSpec{Kind: spec.KindCoverage, Beta: beta, Seed: seed,
				Coverage: &spec.CoverageSpec{Universe: 50, PerNode: 4, K: 3, Seed: 9}},
			func() (any, error) {
				inst, err := RandomCoverageInstance(g.N(), 50, 4, 3, NewRand(9))
				if err != nil {
					return nil, err
				}
				return DistributedMaxCoverage(g, inst, beta, seed)
			}},
		{"coverage-engine",
			spec.TaskSpec{Kind: spec.KindCoverage, Beta: beta, Seed: seed,
				Coverage: &spec.CoverageSpec{Universe: 50, PerNode: 4, K: 3, Seed: 9, Engine: true}},
			func() (any, error) {
				inst, err := RandomCoverageInstance(g.N(), 50, 4, 3, NewRand(9))
				if err != nil {
					return nil, err
				}
				return DistributedMaxCoverageEngine(g, inst, beta, seed)
			}},
	}

	covered := map[spec.Kind]bool{}
	for _, c := range checks {
		c := c
		t.Run(c.name, func(t *testing.T) {
			resp := run(t, c.task)
			want, err := c.facade()
			if err != nil {
				t.Fatalf("facade: %v", err)
			}
			if !reflect.DeepEqual(resp.Result, want) {
				t.Fatalf("service result differs from the facade:\n  svc    %#v\n  facade %#v", resp.Result, want)
			}
			// And a warm repeat must be byte-stable too — served from the
			// result cache, with no second computation behind it.
			again := run(t, c.task)
			if !reflect.DeepEqual(again.Result, want) {
				t.Fatal("warm-cache repeat diverged from the facade result")
			}
			if !again.ResultHit {
				t.Fatal("identical repeat was not a result-cache hit")
			}
		})
		covered[c.task.Kind] = true
	}
	for _, k := range spec.Kinds() {
		if !covered[k] {
			t.Errorf("kind %s has no facade-equivalence check", k)
		}
	}
}

// The service promises that repeated requests on a warm cache allocate no
// new graph or kernel; the facade promises the same sharing never changes
// results. Spot-check the counters across a mixed request sequence.
func TestServiceWarmCacheCounters(t *testing.T) {
	gs := spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5}
	svc := service.New(service.Options{})
	ctx := context.Background()
	tasks := []spec.TaskSpec{
		{Kind: spec.KindOracleMixing, Eps: 0.1},
		{Kind: spec.KindOracleLocal, Beta: 4, Eps: 0.05},
		{Kind: spec.KindOracleGraphMixing, Eps: 0.1},
		{Kind: spec.KindOracleGraphLocal, Beta: 4, Eps: 0.05},
	}
	for rep := 0; rep < 2; rep++ {
		for _, task := range tasks {
			if _, err := svc.Run(ctx, service.Request{Graph: gs, Task: task}); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := svc.Metrics()
	if m.GraphMisses != 1 {
		t.Fatalf("8 requests built the graph %d times, want 1", m.GraphMisses)
	}
	if m.KernelBuilds != 1 {
		t.Fatalf("8 oracle requests built %d kernels, want 1", m.KernelBuilds)
	}
	if m.GraphHits != 7 {
		t.Fatalf("graph hits %d, want 7", m.GraphHits)
	}
}
