package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/spec"
)

// post submits one request and returns the raw response with its decoded
// JSON body; safe to call from helper goroutines (no t.Fatal).
func post(url string, req service.Request) (status int, header http.Header, out map[string]any, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, resp.Header, nil, err
	}
	return resp.StatusCode, resp.Header, out, nil
}

// TestServerPanicIsolationEndToEnd is the crash-safety acceptance path: a
// runner panic under one leader plus 8 singleflight waiters must yield nine
// 500s naming the panic, poison no cache, leave the process serving, and
// let the identical next request compute cleanly.
func TestServerPanicIsolationEndToEnd(t *testing.T) {
	inj := &service.FaultInjector{Hold: make(chan struct{})}
	svc := service.New(service.Options{Fault: inj})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	req := service.Request{Graph: spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5},
		Task: spec.TaskSpec{Kind: spec.KindWalk, Steps: 12, Seed: 3}}
	inj.ArmPanic(1)

	type reply struct {
		status int
		out    map[string]any
		err    error
	}
	const waiters = 8
	replies := make(chan reply, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the leader: pinned inside the injector until released
		defer wg.Done()
		status, _, out, err := post(ts.URL, req)
		replies <- reply{status, out, err}
	}()
	for inj.Calls() < 1 {
		time.Sleep(time.Millisecond) // leader's flight is now registered
	}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, out, err := post(ts.URL, req)
			replies <- reply{status, out, err}
		}()
	}
	for svc.Metrics().SingleflightShared < waiters {
		time.Sleep(time.Millisecond)
	}
	close(inj.Hold) // the pinned leader now panics
	wg.Wait()
	close(replies)

	for r := range replies {
		if r.err != nil {
			t.Fatalf("request failed at the transport level: %v", r.err)
		}
		if r.status != http.StatusInternalServerError {
			t.Errorf("client got %d, want 500 for a panicked runner", r.status)
		}
		if msg, _ := r.out["error"].(string); !strings.Contains(msg, "panic") {
			t.Errorf("error body %v does not name the panic", r.out)
		}
	}
	if m := svc.Metrics(); m.RunnerPanics != 1 || m.CachedResults != 0 {
		t.Fatalf("after panic: RunnerPanics=%d CachedResults=%d, want 1/0", m.RunnerPanics, m.CachedResults)
	}

	// Same request, no armed fault: the flight map is clean, so it leads
	// fresh, computes, and serves 200.
	status, _, out, err := post(ts.URL, req)
	if err != nil || status != http.StatusOK {
		t.Fatalf("clean request after panic: status=%d err=%v body=%v", status, err, out)
	}
	if out["result"] == nil {
		t.Fatal("clean request after panic served a nil result")
	}
}

// TestServerReadyzSheddingAndDraining: /readyz flips to 503 while the
// admission queue is full and while draining, /healthz stays 200 throughout
// (alive, just not ready), and a shed request is a fast 503 carrying
// Retry-After.
func TestServerReadyzSheddingAndDraining(t *testing.T) {
	inj := &service.FaultInjector{Hold: make(chan struct{})}
	svc := service.New(service.Options{MaxInFlight: 1, MaxQueued: 1, Fault: inj})
	d := newDaemon(svc)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}
	if status, _ := get("/readyz"); status != http.StatusOK {
		t.Fatalf("idle /readyz returned %d, want 200", status)
	}

	mk := func(seed int64) service.Request {
		return service.Request{Graph: spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5},
			Task: spec.TaskSpec{Kind: spec.KindWalk, Steps: 5, Seed: seed}}
	}
	done := make(chan error, 2)
	go func() { _, _, _, err := post(ts.URL, mk(1)); done <- err }()
	for svc.Metrics().InFlight < 1 {
		time.Sleep(time.Millisecond)
	}
	go func() { _, _, _, err := post(ts.URL, mk(2)); done <- err }()
	for svc.Metrics().Queued < 1 {
		time.Sleep(time.Millisecond)
	}

	if status, _ := get("/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("/readyz with a full queue returned %d, want 503", status)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Errorf("/healthz while shedding returned %d; liveness must not fail on overload", status)
	}
	status, header, out, err := post(ts.URL, mk(3))
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("shed request returned %d (%v), want 503", status, out)
	}
	if header.Get("Retry-After") == "" {
		t.Error("shed 503 carries no Retry-After header")
	}
	if svc.Metrics().ShedRequests != 1 {
		t.Errorf("ShedRequests = %d, want 1", svc.Metrics().ShedRequests)
	}

	close(inj.Hold)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("held request failed after release: %v", err)
		}
	}
	if status, _ := get("/readyz"); status != http.StatusOK {
		t.Errorf("/readyz after drain of the queue returned %d, want 200", status)
	}

	d.draining.Store(true)
	if status, _ := get("/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining returned %d, want 503", status)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Errorf("/healthz while draining returned %d; draining is not dead", status)
	}
}

// TestServerFaultMetricsExposed: the fault counters appear on /metrics.
func TestServerFaultMetricsExposed(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	for _, name := range []string{
		"lmtd_runner_panics_total", "lmtd_shed_requests_total",
		"lmtd_token_retries_total", "lmtd_queued",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics lacks %s", name)
		}
	}
}
