// Command lmtd serves the spec-driven job layer over HTTP/JSON: the same
// service.Run path cmd/lmt dispatches to, kept warm across requests — the
// graph cache, walk kernels, and sweep pools amortize across every client,
// and a semaphore admission-controls concurrent runs.
//
// Endpoints:
//
//	POST /v1/run    {"graph": {...GraphSpec...}, "task": {...TaskSpec...}}
//	                → service.Response JSON (result under "result")
//	POST /v1/batch  {"graph": {...GraphSpec...}, "tasks": [{...TaskSpec...}, ...]}
//	                → {"items": [...], "summary": {...}} — many tasks against
//	                one graph; identical tasks compute once (result cache)
//	GET  /v1/tasks  registered task kinds with descriptions
//	GET  /healthz   liveness probe (200 while the process serves at all)
//	GET  /readyz    readiness probe (503 while draining or shedding load)
//	GET  /metrics   Prometheus-style counters (cache hit/miss, in-flight,
//	                fault counters: runner panics, shed requests, retries)
//
// Example:
//
//	lmtd -addr :8080 &
//	curl -s localhost:8080/v1/run -d '{
//	  "graph": {"family": "ringcliques", "blocks": 8, "k": 16},
//	  "task":  {"kind": "mixing", "seed": 1, "irregular": true}
//	}' | jq .result.Tau
//
// The answer is byte-identical to `lmt -graph ringcliques -beta 8 -k 16
// -mode mixing` — both are one service.Run of the same spec.
//
// Cluster mode splits one CONGEST run across processes: a coordinator
// (`lmtd -addr :8080 -cluster :9090`) serves HTTP as usual and additionally
// accepts compute peers (`lmtd -peer host:9090`, no HTTP server). A request
// whose task carries `"cluster": {}` is sharded across the registered peers,
// which exchange per-round message frames over a TCP mesh; the determinism
// contract of internal/cluster guarantees the answer is DeepEqual to the
// single-process run, so cluster and in-process results share one cache.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/spec"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	clusterAddr := flag.String("cluster", "", "coordinator listen address for cluster mode (empty = off); tasks carrying a cluster spec run across the registered peers")
	peerAddr := flag.String("peer", "", "run as a compute peer of the cluster coordinator at this address (no HTTP server)")
	cache := flag.Int("cache", 16, "graph-cache capacity (entries)")
	resultCache := flag.Int("resultcache", 256, "result-cache capacity (memoized responses)")
	inflight := flag.Int("maxinflight", 0, "admission cap on concurrently executing requests (0 = max(8, GOMAXPROCS))")
	maxQueued := flag.Int("maxqueued", 0, "admission wait-queue bound; past it requests are shed with a fast 503 (0 = unbounded)")
	seed := flag.Int64("seed", 1, "base seed for per-request derived seeds (requests that omit task.seed)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain timeout")
	chaosPanic := flag.Int64("chaospanic", 0, "chaos testing: panic inside every Nth runner invocation (0 = off)")
	chaosError := flag.Int64("chaoserror", 0, "chaos testing: fail every Nth runner invocation with an injected error (0 = off)")
	chaosLatency := flag.Duration("chaoslatency", 0, "chaos testing: add this latency to every runner invocation (0 = off)")
	flag.Parse()

	if *peerAddr != "" {
		// Peer mode: no HTTP surface at all — just the cluster control
		// connection. The peer computes shards of jobs the coordinator
		// dispatches until signaled (or the coordinator goes away).
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		log.Printf("lmtd: peer mode, registering with coordinator at %s", *peerAddr)
		// A refused dial usually means the coordinator is still coming up
		// (or restarting) — keep knocking for a while before giving up, so
		// peer and coordinator processes can be launched in any order.
		var err error
		for i := 0; i < 40; i++ {
			err = cluster.Serve(ctx, *peerAddr)
			if err == nil || ctx.Err() != nil || !errors.Is(err, syscall.ECONNREFUSED) {
				break
			}
			time.Sleep(250 * time.Millisecond)
		}
		if err != nil {
			log.Fatalf("lmtd: peer: %v", err)
		}
		log.Printf("lmtd: peer shut down cleanly")
		return
	}

	var inj *service.FaultInjector
	if *chaosPanic > 0 || *chaosError > 0 || *chaosLatency > 0 {
		inj = &service.FaultInjector{PanicEvery: *chaosPanic, ErrorEvery: *chaosError, Latency: *chaosLatency}
		log.Printf("lmtd: CHAOS MODE: panic every %d, error every %d, latency %s", *chaosPanic, *chaosError, *chaosLatency)
	}
	opts := service.Options{
		CacheSize:       *cache,
		ResultCacheSize: *resultCache,
		MaxInFlight:     *inflight,
		MaxQueued:       *maxQueued,
		BaseSeed:        *seed,
		Fault:           inj,
	}
	var coord *cluster.Coordinator
	if *clusterAddr != "" {
		var err error
		coord, err = cluster.NewCoordinator(*clusterAddr)
		if err != nil {
			log.Fatalf("lmtd: cluster coordinator: %v", err)
		}
		defer coord.Close()
		opts.Cluster = coord
		log.Printf("lmtd: cluster coordinator on %s (peers register with -peer %s)", coord.Addr(), coord.Addr())
	}
	svc := service.New(opts)
	d := newDaemon(svc)
	d.cluster = coord
	srv := &http.Server{Addr: *addr, Handler: d.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("lmtd listening on %s (admission cap %d, cache %d graphs)", *addr, svc.MaxInFlight(), *cache)

	select {
	case err := <-errc:
		log.Fatalf("lmtd: %v", err)
	case <-ctx.Done():
	}
	// Flip readiness before draining: a load balancer polling /readyz stops
	// routing new traffic while in-flight requests finish.
	d.draining.Store(true)
	log.Printf("lmtd: shutting down (drain %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("lmtd: shutdown: %v", err)
	}
}

// daemon bundles the service with the process-level serving state the
// health endpoints report: liveness is the process being up at all,
// readiness additionally requires not draining (graceful shutdown in
// progress) and not shedding (admission queue full).
type daemon struct {
	svc      *service.Service
	cluster  *cluster.Coordinator // nil unless -cluster was given
	draining atomic.Bool
}

func newDaemon(svc *service.Service) *daemon { return &daemon{svc: svc} }

// newHandler builds the route table over one Service with no drain state —
// the in-process form tests and the load-generator benchmark serve.
func newHandler(svc *service.Service) http.Handler { return newDaemon(svc).handler() }

// handler builds the lmtd route table.
func (d *daemon) handler() http.Handler {
	svc := d.svc
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		var req service.Request
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		resp, err := svc.Run(r.Context(), req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		if len(req.Tasks) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("batch needs at least one task"))
			return
		}
		reqs := make([]service.Request, len(req.Tasks))
		for i, t := range req.Tasks {
			reqs[i] = service.Request{Graph: req.Graph, Task: t}
		}
		items, sum := svc.RunBatch(r.Context(), reqs)
		writeJSON(w, http.StatusOK, batchResponse{Items: items, Summary: sum})
	})
	mux.HandleFunc("GET /v1/tasks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"tasks": svc.Tasks()})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: true as long as the process can answer at all.
		// Orchestrators restart on liveness failure, so a merely-overloaded
		// or draining instance must still pass here.
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case d.draining.Load():
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
		case svc.Shedding():
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "shedding"})
		default:
			writeJSON(w, http.StatusOK, map[string]any{"ready": true})
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetrics(w, svc.Metrics())
		if d.cluster != nil {
			metricGauge(w, "lmtd_cluster_peers", "Compute peers currently registered with the coordinator.", int64(d.cluster.Peers()))
			metricCounter(w, "lmtd_cluster_sweep_chunks_total", "Source chunks dispatched to peers by distributed sweeps.", d.cluster.SweepChunks())
			metricCounter(w, "lmtd_cluster_sync_batches_total", "Control-plane sync barriers folded by the coordinator (one per RoundsPerSync window).", d.cluster.SyncBatches())
			metricCounter(w, "lmtd_cluster_round_wait_ns_total", "Nanoseconds peer engines spent blocked on inbound round frames, summed across peers and jobs.", d.cluster.RoundWaitNs())
			writePeerResident(w, d.cluster.PeerResidentBytes())
		}
	})
	return mux
}

// batchRequest is the POST /v1/batch body: one graph, many tasks.
type batchRequest struct {
	Graph spec.GraphSpec  `json:"graph"`
	Tasks []spec.TaskSpec `json:"tasks"`
}

// batchResponse is the POST /v1/batch reply.
type batchResponse struct {
	Items   []service.BatchItem  `json:"items"`
	Summary service.BatchSummary `json:"summary"`
}

// statusFor maps service errors to HTTP statuses: malformed specs are the
// client's fault, shed or cancelled requests are retryable 503s, a
// recovered runner panic is a plain 500 (the request is poisoned — clients
// should not retry it), and the rest are run failures.
func statusFor(err error) int {
	switch {
	case errors.Is(err, service.ErrInvalidRequest):
		return http.StatusBadRequest
	case errors.Is(err, service.ErrRunnerPanic):
		return http.StatusInternalServerError
	case errors.Is(err, service.ErrOverloaded),
		errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		// Every 503 — shed, draining, or timed out — tells well-behaved
		// clients when to come back (cmd/lmt's -retry honors it).
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		log.Printf("lmtd: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// metricGauge and metricCounter emit one metric in the Prometheus text
// exposition format.
func metricGauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

func metricCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// writePeerResident emits one labeled gauge line per cluster peer with the
// CSR bytes it reported resident for the most recent job — the observable
// for the sharded-build memory contract (≈ full/P on shardable families).
func writePeerResident(w io.Writer, resident []int64) {
	if len(resident) == 0 {
		return
	}
	const name = "lmtd_cluster_peer_resident_graph_bytes"
	fmt.Fprintf(w, "# HELP %s Graph bytes resident on each peer for the last cluster job.\n# TYPE %s gauge\n", name, name)
	for p, r := range resident {
		fmt.Fprintf(w, "%s{peer=\"%d\"} %d\n", name, p, r)
	}
}

// writeMetrics renders the service counters in the Prometheus text
// exposition format.
func writeMetrics(w http.ResponseWriter, m service.Metrics) {
	gauge := func(name, help string, v int64) { metricGauge(w, name, help, v) }
	counter := func(name, help string, v int64) { metricCounter(w, name, help, v) }
	counter("lmtd_requests_total", "Requests received by service.Run.", m.Requests)
	counter("lmtd_errors_total", "Requests that failed.", m.Errors)
	gauge("lmtd_in_flight", "Requests currently executing.", m.InFlight)
	gauge("lmtd_in_flight_peak", "High-water mark of concurrently executing requests.", m.PeakInFlight)
	counter("lmtd_graph_cache_hits_total", "Graph-cache hits.", m.GraphHits)
	counter("lmtd_graph_cache_misses_total", "Graph-cache misses (graph builds).", m.GraphMisses)
	counter("lmtd_kernel_builds_total", "Walk-kernel constructions.", m.KernelBuilds)
	counter("lmtd_pool_builds_total", "Warm sweep-pool constructions.", m.PoolBuilds)
	counter("lmtd_pool_hits_total", "Warm sweep-pool reuses.", m.PoolHits)
	counter("lmtd_churn_builds_total", "Churn-model constructions.", m.ChurnBuilds)
	counter("lmtd_result_cache_hits_total", "Result-cache hits (responses served without a runner invocation).", m.ResultHits)
	counter("lmtd_result_cache_misses_total", "Result-cache misses (runner invocations started).", m.ResultMisses)
	counter("lmtd_singleflight_shared_total", "Requests that waited on an identical in-flight computation.", m.SingleflightShared)
	counter("lmtd_result_cache_evictions_total", "Result-cache LRU evictions.", m.ResultEvictions)
	counter("lmtd_batches_total", "Batch requests received.", m.Batches)
	counter("lmtd_runner_panics_total", "Runner invocations that panicked and were recovered into 500s.", m.RunnerPanics)
	counter("lmtd_shed_requests_total", "Requests shed at admission with a fast 503 (wait queue full).", m.ShedRequests)
	counter("lmtd_token_retries_total", "Cumulative token-walk edge-loss retries across completed walk tasks.", m.TokenRetries)
	counter("lmtd_cluster_runs_total", "Tasks dispatched to the attached peer cluster.", m.ClusterRuns)
	counter("lmtd_transport_wire_bytes_total", "Frame bytes moved over cluster transports, both directions (zero for loopback runs).", m.WireBytes)
	counter("lmtd_transport_frames_sent_total", "Message frames written to cluster transports.", m.FramesSent)
	counter("lmtd_transport_frames_recv_total", "Message frames read from cluster transports.", m.FramesRecv)
	gauge("lmtd_queued", "Requests waiting at admission.", m.Queued)
	gauge("lmtd_result_cache_bytes", "JSON-encoded size of the memoized results.", m.ResultBytes)
	gauge("lmtd_cached_results", "Results currently memoized.", int64(m.CachedResults))
	gauge("lmtd_cached_graphs", "Graphs currently cached.", int64(m.CachedGraphs))
}
