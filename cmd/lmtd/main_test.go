package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/spec"
)

// postRun submits one request body and decodes the JSON reply.
func postRun(t *testing.T, url string, req service.Request) (map[string]any, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

func TestServerEndToEnd(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	gs := spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5}
	req := service.Request{Graph: gs,
		Task: spec.TaskSpec{Kind: spec.KindMixing, Eps: 0.1, Seed: 1, Irregular: true}}
	out, status := postRun(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/run returned %d: %v", status, out)
	}
	result, ok := out["result"].(map[string]any)
	if !ok {
		t.Fatalf("response has no result object: %v", out)
	}
	g, err := gs.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MixingTime(g, 0, 0.1, core.WithSeed(1), core.WithIrregular())
	if err != nil {
		t.Fatal(err)
	}
	if got := int(result["Tau"].(float64)); got != want.Tau {
		t.Fatalf("served Tau=%d, direct run says %d", got, want.Tau)
	}
	if hit := out["cacheHit"].(bool); hit {
		t.Fatal("first request reported a cache hit")
	}
	if out2, _ := postRun(t, ts.URL, req); !out2["cacheHit"].(bool) {
		t.Fatal("second request missed the cache")
	} else if !reflect.DeepEqual(out["result"], out2["result"]) {
		t.Fatal("repeated request changed the served result")
	}
}

func TestServerTasksHealthzMetrics(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	get := func(path string) (string, int) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.StatusCode
	}

	body, status := get("/v1/tasks")
	if status != http.StatusOK {
		t.Fatalf("/v1/tasks returned %d", status)
	}
	var tasks struct {
		Tasks []service.TaskInfo `json:"tasks"`
	}
	if err := json.Unmarshal([]byte(body), &tasks); err != nil {
		t.Fatal(err)
	}
	if len(tasks.Tasks) != len(spec.Kinds()) {
		t.Fatalf("/v1/tasks lists %d kinds, want %d", len(tasks.Tasks), len(spec.Kinds()))
	}

	if body, status := get("/healthz"); status != http.StatusOK || !strings.Contains(body, "true") {
		t.Fatalf("/healthz returned %d %q", status, body)
	}

	body, status = get("/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics returned %d", status)
	}
	for _, name := range []string{
		"lmtd_requests_total", "lmtd_in_flight", "lmtd_graph_cache_hits_total",
		"lmtd_graph_cache_misses_total", "lmtd_pool_hits_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics lacks %s", name)
		}
	}
}

func TestServerErrorStatuses(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	cases := []struct {
		name   string
		req    service.Request
		status int
	}{
		{"unknown family",
			service.Request{Graph: spec.GraphSpec{Family: "moebius"}, Task: spec.TaskSpec{Kind: spec.KindMixing}},
			http.StatusBadRequest},
		{"unknown kind",
			service.Request{Graph: spec.GraphSpec{Family: "path", N: 8}, Task: spec.TaskSpec{Kind: "teleport"}},
			http.StatusBadRequest},
		{"run failure (bipartite non-lazy)",
			service.Request{Graph: spec.GraphSpec{Family: "cycle", N: 8}, Task: spec.TaskSpec{Kind: spec.KindMixing, Seed: 1}},
			http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		out, status := postRun(t, ts.URL, c.req)
		if status != c.status {
			t.Errorf("%s: status %d, want %d (%v)", c.name, status, c.status, out)
		}
		if out["error"] == "" {
			t.Errorf("%s: error body missing", c.name)
		}
	}

	// Malformed JSON is a 400 too.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON returned %d, want 400", resp.StatusCode)
	}
}

// The acceptance bar: the server answers a burst of ≥ 8 concurrent
// requests under a smaller admission cap, each deterministically.
func TestServerConcurrentBurstDeterministic(t *testing.T) {
	svc := service.New(service.Options{MaxInFlight: 3})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	req := service.Request{
		Graph: spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5},
		Task:  spec.TaskSpec{Kind: spec.KindWalk, Steps: 16, Seed: 9},
	}
	const burst = 8
	results := make([]map[string]any, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, status := postRun(t, ts.URL, req)
			if status != http.StatusOK {
				t.Errorf("request %d: status %d (%v)", i, status, out)
				return
			}
			results[i] = out["result"].(map[string]any)
		}(i)
	}
	wg.Wait()
	for i := 1; i < burst; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("request %d diverged from request 0 under concurrency", i)
		}
	}
	m := svc.Metrics()
	if m.PeakInFlight > 3 {
		t.Fatalf("peak in-flight %d exceeded the admission cap 3", m.PeakInFlight)
	}
	if m.Requests < burst {
		t.Fatalf("served %d requests, want ≥ %d", m.Requests, burst)
	}
}

// BenchmarkLoadGenerator is the lmtd load generator: parallel clients
// hammering one warm mixing request through the full HTTP path. req/sec is
// the headline metric; the first iteration pays the graph build, the rest
// measure the warm path.
func BenchmarkLoadGenerator(b *testing.B) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	body, err := json.Marshal(service.Request{
		Graph: spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5},
		Task:  spec.TaskSpec{Kind: spec.KindWalk, Steps: 16, Seed: 9},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
		}
	})
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "req/sec")
	}
	m := svc.Metrics()
	if m.GraphMisses != 1 {
		b.Fatalf("load run rebuilt the graph %d times", m.GraphMisses)
	}
}
