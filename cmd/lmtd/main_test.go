package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/spec"
)

// postRun submits one request body and decodes the JSON reply.
func postRun(t *testing.T, url string, req service.Request) (map[string]any, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

func TestServerEndToEnd(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	gs := spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5}
	req := service.Request{Graph: gs,
		Task: spec.TaskSpec{Kind: spec.KindMixing, Eps: 0.1, Seed: 1, Irregular: true}}
	out, status := postRun(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/run returned %d: %v", status, out)
	}
	result, ok := out["result"].(map[string]any)
	if !ok {
		t.Fatalf("response has no result object: %v", out)
	}
	g, err := gs.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MixingTime(g, 0, 0.1, core.WithSeed(1), core.WithIrregular())
	if err != nil {
		t.Fatal(err)
	}
	if got := int(result["Tau"].(float64)); got != want.Tau {
		t.Fatalf("served Tau=%d, direct run says %d", got, want.Tau)
	}
	if hit := out["cacheHit"].(bool); hit {
		t.Fatal("first request reported a cache hit")
	}
	if out2, _ := postRun(t, ts.URL, req); !out2["cacheHit"].(bool) {
		t.Fatal("second request missed the cache")
	} else if !reflect.DeepEqual(out["result"], out2["result"]) {
		t.Fatal("repeated request changed the served result")
	}
}

func TestServerTasksHealthzMetrics(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	get := func(path string) (string, int) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.StatusCode
	}

	body, status := get("/v1/tasks")
	if status != http.StatusOK {
		t.Fatalf("/v1/tasks returned %d", status)
	}
	var tasks struct {
		Tasks []service.TaskInfo `json:"tasks"`
	}
	if err := json.Unmarshal([]byte(body), &tasks); err != nil {
		t.Fatal(err)
	}
	if len(tasks.Tasks) != len(spec.Kinds()) {
		t.Fatalf("/v1/tasks lists %d kinds, want %d", len(tasks.Tasks), len(spec.Kinds()))
	}

	if body, status := get("/healthz"); status != http.StatusOK || !strings.Contains(body, "true") {
		t.Fatalf("/healthz returned %d %q", status, body)
	}

	body, status = get("/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics returned %d", status)
	}
	for _, name := range []string{
		"lmtd_requests_total", "lmtd_in_flight", "lmtd_graph_cache_hits_total",
		"lmtd_graph_cache_misses_total", "lmtd_pool_hits_total",
		"lmtd_result_cache_hits_total", "lmtd_result_cache_misses_total",
		"lmtd_singleflight_shared_total", "lmtd_result_cache_evictions_total",
		"lmtd_result_cache_bytes", "lmtd_cached_results", "lmtd_batches_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics lacks %s", name)
		}
	}
}

// TestServerClusterSweepMetrics drives a distributed sweep through the HTTP
// surface with a real loopback cluster attached and checks the coordinator's
// scheduling observables — registered peers, dispatched chunks, per-peer
// resident graph bytes — appear on /metrics.
func TestServerClusterSweepMetrics(t *testing.T) {
	coord, err := cluster.NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const peers = 2
	errs := make(chan error, peers)
	for i := 0; i < peers; i++ {
		go func() { errs <- cluster.Serve(context.Background(), coord.Addr()) }()
	}
	t.Cleanup(func() {
		coord.Close()
		for i := 0; i < peers; i++ {
			if err := <-errs; err != nil {
				t.Errorf("peer serve: %v", err)
			}
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitForPeers(ctx, peers); err != nil {
		t.Fatal(err)
	}

	d := newDaemon(service.New(service.Options{Cluster: coord}))
	d.cluster = coord
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	gs := spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5}
	out, status := postRun(t, ts.URL, service.Request{Graph: gs,
		Task: spec.TaskSpec{Kind: spec.KindSweep, Beta: 4, Eps: 0.05, Seed: 5,
			Cluster: &spec.ClusterSpec{}}})
	if status != http.StatusOK {
		t.Fatalf("cluster sweep returned %d: %v", status, out)
	}
	// An engine task barriers per speculation window, so the sync-batch and
	// round-wait counters move off zero (sweeps never touch them).
	out, status = postRun(t, ts.URL, service.Request{Graph: gs,
		Task: spec.TaskSpec{Kind: spec.KindWalk, Source: 0, Steps: 16, Seed: 5,
			Cluster: &spec.ClusterSpec{RoundsPerSync: 4}}})
	if status != http.StatusOK {
		t.Fatalf("cluster walk returned %d: %v", status, out)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	// n = 20 sources on the ChunkSize = 8 grid is exactly 3 chunks.
	for _, line := range []string{
		"lmtd_cluster_peers 2",
		"lmtd_cluster_runs_total 2",
		"lmtd_cluster_sweep_chunks_total 3",
		`lmtd_cluster_peer_resident_graph_bytes{peer="0"} `,
		`lmtd_cluster_peer_resident_graph_bytes{peer="1"} `,
		"lmtd_cluster_sync_batches_total ",
		"lmtd_cluster_round_wait_ns_total ",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("/metrics lacks %q", line)
		}
	}
	for _, zero := range []string{
		"lmtd_cluster_sync_batches_total 0\n",
		"lmtd_cluster_round_wait_ns_total 0\n",
	} {
		if strings.Contains(body, zero) {
			t.Errorf("/metrics counter stuck at zero after an engine run: %q", zero)
		}
	}
}

func TestServerBatch(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	walk := spec.TaskSpec{Kind: spec.KindWalk, Steps: 16, Seed: 9}
	mix := spec.TaskSpec{Kind: spec.KindMixing, Eps: 0.1, Seed: 1, Irregular: true}
	body, err := json.Marshal(batchRequest{
		Graph: spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5},
		Tasks: []spec.TaskSpec{walk, walk, mix},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/batch returned %d", resp.StatusCode)
	}
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 3 {
		t.Fatalf("batch returned %d items, want 3", len(out.Items))
	}
	for i, item := range out.Items {
		if item.Error != "" || item.Response == nil {
			t.Fatalf("item %d failed: %q", i, item.Error)
		}
	}
	// The duplicate walk entry is served from the result cache, not
	// recomputed; the summary is the contract the CI smoke asserts too.
	want := service.BatchSummary{Tasks: 3, Computed: 2, ResultHits: 1}
	if out.Summary != want {
		t.Fatalf("batch summary %+v, want %+v", out.Summary, want)
	}
	if !out.Items[1].Response.ResultHit {
		t.Fatal("duplicate batch entry did not report a result-cache hit")
	}
	if !reflect.DeepEqual(out.Items[0].Response.Result, out.Items[1].Response.Result) {
		t.Fatal("duplicate batch entries returned different results")
	}
	if m := svc.Metrics(); m.Batches != 1 {
		t.Fatalf("metrics report %d batches, want 1", m.Batches)
	}

	// A failing item stays item-local: the rest of the batch completes.
	body, err = json.Marshal(batchRequest{
		Graph: spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5},
		Tasks: []spec.TaskSpec{{Kind: "teleport"}, walk},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Items[0].Error == "" || out.Items[1].Response == nil {
		t.Fatalf("mixed batch: items %+v", out.Items)
	}
	if out.Summary.Errors != 1 || out.Summary.ResultHits != 1 {
		t.Fatalf("mixed batch summary %+v, want 1 error and 1 hit", out.Summary)
	}
}

func TestServerErrorStatuses(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	cases := []struct {
		name   string
		req    service.Request
		status int
	}{
		{"unknown family",
			service.Request{Graph: spec.GraphSpec{Family: "moebius"}, Task: spec.TaskSpec{Kind: spec.KindMixing}},
			http.StatusBadRequest},
		{"unknown kind",
			service.Request{Graph: spec.GraphSpec{Family: "path", N: 8}, Task: spec.TaskSpec{Kind: "teleport"}},
			http.StatusBadRequest},
		{"run failure (bipartite non-lazy)",
			service.Request{Graph: spec.GraphSpec{Family: "cycle", N: 8}, Task: spec.TaskSpec{Kind: spec.KindMixing, Seed: 1}},
			http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		out, status := postRun(t, ts.URL, c.req)
		if status != c.status {
			t.Errorf("%s: status %d, want %d (%v)", c.name, status, c.status, out)
		}
		if out["error"] == "" {
			t.Errorf("%s: error body missing", c.name)
		}
	}

	// Malformed JSON is a 400 too.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON returned %d, want 400", resp.StatusCode)
	}
}

// The acceptance bar: the server answers a burst of ≥ 8 concurrent
// requests under a smaller admission cap, each deterministically.
func TestServerConcurrentBurstDeterministic(t *testing.T) {
	svc := service.New(service.Options{MaxInFlight: 3})
	ts := httptest.NewServer(newHandler(svc))
	defer ts.Close()

	req := service.Request{
		Graph: spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5},
		Task:  spec.TaskSpec{Kind: spec.KindWalk, Steps: 16, Seed: 9},
	}
	const burst = 8
	results := make([]map[string]any, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, status := postRun(t, ts.URL, req)
			if status != http.StatusOK {
				t.Errorf("request %d: status %d (%v)", i, status, out)
				return
			}
			results[i] = out["result"].(map[string]any)
		}(i)
	}
	wg.Wait()
	for i := 1; i < burst; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("request %d diverged from request 0 under concurrency", i)
		}
	}
	m := svc.Metrics()
	if m.PeakInFlight > 3 {
		t.Fatalf("peak in-flight %d exceeded the admission cap 3", m.PeakInFlight)
	}
	if m.Requests < burst {
		t.Fatalf("served %d requests, want ≥ %d", m.Requests, burst)
	}
}

// benchGraph and benchTask are the load-generator workload: a distributed
// mixing run (~1ms of compute) on the standard ring-of-cliques, heavy
// enough that the compute path and the memoized path are clearly separated.
var benchGraph = spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5}
var benchTask = spec.TaskSpec{Kind: spec.KindMixing, Eps: 0.1, Seed: 9, Irregular: true}

// hammer drives parallel clients posting bodies produced by mkBody (called
// per request with a request ordinal) and reports req/sec.
func hammer(b *testing.B, url string, mkBody func(i int64) []byte) {
	var seq int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := mkBody(atomic.AddInt64(&seq, 1))
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
		}
	})
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "req/sec")
	}
}

// BenchmarkLoadGenerator is the lmtd load generator: parallel clients
// hammering the full HTTP path. req/sec is the headline metric of each
// variant; warm/cold is the memoization ratio the perf trajectory tracks
// (warm must not rebuild the graph, the kernel, or run any oracle).
func BenchmarkLoadGenerator(b *testing.B) {
	b.Run("warm", func(b *testing.B) {
		// Identical requests: the first computes, the rest are result-cache
		// hits — two map lookups plus HTTP.
		svc := service.New(service.Options{})
		ts := httptest.NewServer(newHandler(svc))
		defer ts.Close()
		body, err := json.Marshal(service.Request{Graph: benchGraph, Task: benchTask})
		if err != nil {
			b.Fatal(err)
		}
		hammer(b, ts.URL+"/v1/run", func(int64) []byte { return body })
		m := svc.Metrics()
		if m.GraphMisses != 1 {
			b.Fatalf("warm run rebuilt the graph %d times", m.GraphMisses)
		}
		if m.ResultMisses != 1 {
			b.Fatalf("warm run computed %d times, want 1", m.ResultMisses)
		}
	})
	b.Run("cold", func(b *testing.B) {
		// Unique seed per request: the graph and kernel stay warm but every
		// request runs the oracle — PR 5's compute path, the warm variant's
		// baseline.
		svc := service.New(service.Options{})
		ts := httptest.NewServer(newHandler(svc))
		defer ts.Close()
		hammer(b, ts.URL+"/v1/run", func(i int64) []byte {
			task := benchTask
			task.Seed = 1000 + i
			body, err := json.Marshal(service.Request{Graph: benchGraph, Task: task})
			if err != nil {
				b.Fatal(err)
			}
			return body
		})
		if m := svc.Metrics(); m.GraphMisses != 1 {
			b.Fatalf("cold run rebuilt the graph %d times", m.GraphMisses)
		}
	})
	b.Run("batch", func(b *testing.B) {
		// One POST carrying 16 tasks: HTTP and JSON overhead amortize over
		// the batch; tasks/sec is the comparable metric.
		svc := service.New(service.Options{})
		ts := httptest.NewServer(newHandler(svc))
		defer ts.Close()
		const batchSize = 16
		tasks := make([]spec.TaskSpec, batchSize)
		for i := range tasks {
			tasks[i] = benchTask
			tasks[i].Seed = int64(9 + i%4) // 4 distinct specs, 4 duplicates each
		}
		body, err := json.Marshal(batchRequest{Graph: benchGraph, Tasks: tasks})
		if err != nil {
			b.Fatal(err)
		}
		hammer(b, ts.URL+"/v1/batch", func(int64) []byte { return body })
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)*batchSize/sec, "tasks/sec")
		}
		if m := svc.Metrics(); m.ResultMisses > 4 {
			b.Fatalf("batch run computed %d distinct tasks, want ≤ 4", m.ResultMisses)
		}
	})
}
