package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update rewrites the README flag block from the live flag set instead of
// failing on a mismatch.
var update = flag.Bool("update", false, "rewrite the README lmt-flags block")

const (
	beginMark = "<!-- lmt-flags:begin -->"
	endMark   = "<!-- lmt-flags:end -->"
)

// renderFlagBlock produces the canonical README flag block: the exact
// flag.PrintDefaults output of lmt's flag set inside a fenced code block,
// wrapped in the sync markers. Because it is generated from registerFlags,
// the README can never silently drift from the binary again.
func renderFlagBlock() string {
	fs := flag.NewFlagSet("lmt", flag.ContinueOnError)
	registerFlags(fs)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.PrintDefaults()
	return beginMark + "\n```text\n" + buf.String() + "```\n" + endMark
}

// TestREADMEFlagsInSync requires the README's flag block to equal the
// PrintDefaults output of the current flag set.
func TestREADMEFlagsInSync(t *testing.T) {
	path := filepath.Join("..", "..", "README.md")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	i := strings.Index(s, beginMark)
	j := strings.Index(s, endMark)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the %s / %s markers", beginMark, endMark)
	}
	current := s[i : j+len(endMark)]
	want := renderFlagBlock()
	if current == want {
		return
	}
	if *update {
		if err := os.WriteFile(path, []byte(s[:i]+want+s[j+len(endMark):]), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote the README flag block")
		return
	}
	t.Errorf("README flag table drifted from cmd/lmt; regenerate with:\n\tgo test ./cmd/lmt -run TestREADMEFlags -update\n--- README ---\n%s\n--- flags ---\n%s", current, want)
}
