// Command lmt computes mixing quantities of a generated graph: the exact
// (centralized) mixing and local mixing times, and the distributed
// CONGEST-model computations of the paper with full round/message
// accounting.
//
// Usage examples:
//
//	lmt -graph barbell -beta 8 -k 16                 # Figure 1 graph
//	lmt -graph ringcliques -beta 8 -k 16 -mode all
//	lmt -graph expander -n 256 -d 6 -mode approx
//	lmt -graph path -n 128 -lazy -mode exact
//	lmt -graph ringcliques -beta 8 -k 16 -mode approx -all     # graph-wide sweep
//	lmt -graph torus -dim 16 -mode mixing -lazy -sample 32 -sweepworkers 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		graphFlag   = flag.String("graph", "barbell", "family: barbell|ringcliques|complete|path|cycle|torus|hypercube|expander|lollipop|dumbbell")
		nFlag       = flag.Int("n", 128, "vertex count (complete, path, cycle, expander)")
		kFlag       = flag.Int("k", 16, "clique/block size (barbell, ringcliques, lollipop, dumbbell)")
		betaFlag    = flag.Float64("beta", 8, "β: local mixing set size is ≥ n/β; also the clique count for barbell/ringcliques")
		dFlag       = flag.Int("d", 6, "degree (expander)")
		dimFlag     = flag.Int("dim", 7, "dimension (hypercube, torus side)")
		epsFlag     = flag.Float64("eps", 1.0/21.746, "accuracy parameter ε (default ≈ 1/8e)")
		srcFlag     = flag.Int("source", 0, "source vertex s")
		lazyFlag    = flag.Bool("lazy", false, "use the lazy walk (required on bipartite graphs)")
		modeFlag    = flag.String("mode", "all", "what to compute: oracle|approx|exact|mixing|all")
		seedFlag    = flag.Int64("seed", 1, "random seed (generators and engine)")
		workersFlag = flag.Int("workers", 0, "engine worker goroutines (0 = GOMAXPROCS; never changes results)")
		statsFlag   = flag.Bool("enginestats", false, "print the engine's liveness/allocation counters per run")
		dotFlag     = flag.String("dot", "", "write a Graphviz file with the oracle's witness local-mixing set highlighted")
		allFlag     = flag.Bool("all", false, "sweep every vertex as source: graph-wide τ(β,ε)=max_v τ_v (distributed modes)")
		sampleFlag  = flag.Int("sample", 0, "sweep a deterministic sample of this many sources (footnote 6; implies a sweep)")
		sweepWFlag  = flag.Int("sweepworkers", 0, "sweep worker pool size (0 = GOMAXPROCS; never changes results)")
	)
	flag.Parse()

	g, err := build(*graphFlag, *nFlag, *kFlag, int(*betaFlag), *dFlag, *dimFlag, *seedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("graph: %s  n=%d m=%d", g.Name(), g.N(), g.M())
	if d, ok := g.Regular(); ok {
		fmt.Printf("  %d-regular", d)
	}
	if diam, err := g.DiameterApprox(); err == nil {
		fmt.Printf("  diam≈%d", diam)
	}
	fmt.Println()

	opts := []core.Option{core.WithSeed(*seedFlag), core.WithIrregular(), core.WithWorkers(*workersFlag)}
	if *lazyFlag {
		opts = append(opts, core.WithLazy())
	}

	run := func(label string, f func() error) {
		if err := f(); err != nil {
			fmt.Printf("%-22s ERROR: %v\n", label, err)
		}
	}
	engineStats := func(st *congest.Stats) {
		if *statsFlag && st != nil {
			fmt.Printf("%-22s steps=%d sleepSkips=%d wakeups=%d ffRounds=%d stepGrows=%d dlvGrows=%d payloadWords=%d\n",
				"  engine", st.ActiveSteps, st.SleepSkips, st.Wakeups, st.SkippedRounds, st.StepGrows, st.DeliverGrows, st.PayloadWords)
		}
	}

	// Multi-source sweep mode (-all / -sample): the distributed modes
	// compute the graph-wide max over sources on the parallel sweep engine
	// instead of a single-source run.
	sweeping := *allFlag || *sampleFlag > 0
	sweepOpts := core.SweepOptions{Workers: *sweepWFlag, Sample: *sampleFlag}
	sweepCfg := func(m core.Mode) core.Config {
		cfg := core.Config{Mode: m, Beta: *betaFlag, Eps: *epsFlag}
		for _, o := range opts { // same option set as the single-source runs
			o(&cfg)
		}
		return cfg
	}
	printSweep := func(label string, multi *core.MultiResult) {
		fmt.Printf("%-22s τ=%d  argmax=%d  sources=%d  Σrounds=%d  Σmsgs=%d  Σbits=%d\n",
			label, multi.Tau, multi.ArgMax, len(multi.Sources),
			multi.TotalRounds, multi.TotalMessages, multi.TotalBits)
	}

	mode := *modeFlag
	if mode == "oracle" || mode == "all" {
		run("oracle", func() error {
			tm, err := exact.MixingTime(g, *srcFlag, *epsFlag, *lazyFlag, 8*g.N()*g.N())
			if err != nil {
				return err
			}
			lr, err := exact.LocalMixing(g, *srcFlag, *betaFlag, *epsFlag,
				exact.LocalOptions{MaxT: 8 * g.N() * g.N(), Grid: true, Lazy: *lazyFlag})
			if err != nil {
				return err
			}
			fmt.Printf("%-22s τ_mix=%d  τ_local(β=%g)=%d  witness |S|=%d  gap=%.1f×\n",
				"oracle (centralized)", tm, *betaFlag, lr.T, lr.R, float64(tm)/float64(maxi(1, lr.T)))
			if *dotFlag != "" {
				f, err := os.Create(*dotFlag)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := g.WriteDOT(f, lr.Set); err != nil {
					return err
				}
				fmt.Printf("%-22s wrote %s (witness set highlighted)\n", "", *dotFlag)
			}
			return nil
		})
	}
	if mode == "approx" || mode == "all" {
		run("approx", func() error {
			if sweeping {
				multi, err := core.GraphLocalMixingTimeSweep(g, sweepCfg(core.ApproxLocal), sweepOpts)
				if err != nil {
					return err
				}
				printSweep("Alg 2 sweep (Thm 1)", multi)
				return nil
			}
			res, err := core.ApproxLocalMixingTime(g, *srcFlag, *betaFlag, *epsFlag, opts...)
			if err != nil {
				return err
			}
			fmt.Printf("%-22s τ̂=%d  R=%d  Σ=%.4f  rounds=%d  msgs=%d  maxEdgeBits=%d\n",
				"Algorithm 2 (Thm 1)", res.Tau, res.R, res.Sum, res.Stats.Rounds, res.Stats.Messages, res.Stats.MaxEdgeBits)
			engineStats(res.Stats)
			return nil
		})
	}
	if mode == "exact" || mode == "all" {
		run("exact", func() error {
			if sweeping {
				multi, err := core.GraphLocalMixingTimeSweep(g, sweepCfg(core.ExactLocal), sweepOpts)
				if err != nil {
					return err
				}
				printSweep("exact sweep (Thm 2)", multi)
				return nil
			}
			res, err := core.ExactLocalMixingTime(g, *srcFlag, *betaFlag, *epsFlag, opts...)
			if err != nil {
				return err
			}
			fmt.Printf("%-22s τ=%d  R=%d  Σ=%.4f  rounds=%d  msgs=%d\n",
				"exact variant (Thm 2)", res.Tau, res.R, res.Sum, res.Stats.Rounds, res.Stats.Messages)
			engineStats(res.Stats)
			return nil
		})
	}
	if mode == "mixing" || mode == "all" {
		run("mixing", func() error {
			if sweeping {
				multi, err := core.GraphMixingTime(g, sweepCfg(core.MixTime), sweepOpts)
				if err != nil {
					return err
				}
				printSweep("mixing sweep [18]", multi)
				return nil
			}
			res, err := core.MixingTime(g, *srcFlag, *epsFlag, opts...)
			if err != nil {
				return err
			}
			fmt.Printf("%-22s τ_mix=%d  rounds=%d  msgs=%d\n",
				"mixing baseline [18]", res.Tau, res.Stats.Rounds, res.Stats.Messages)
			engineStats(res.Stats)
			return nil
		})
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func build(family string, n, k, beta, d, dim int, seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch family {
	case "barbell":
		return gen.Barbell(beta, k)
	case "ringcliques":
		return gen.RingOfCliques(beta, k)
	case "complete":
		return gen.Complete(n)
	case "path":
		return gen.Path(n)
	case "cycle":
		return gen.Cycle(n)
	case "torus":
		return gen.Torus(dim, dim)
	case "hypercube":
		return gen.Hypercube(dim)
	case "expander":
		return gen.RandomRegular(n, d, rng)
	case "lollipop":
		return gen.Lollipop(k, k)
	case "dumbbell":
		return gen.Dumbbell(k, 1)
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}
