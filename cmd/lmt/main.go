// Command lmt computes mixing quantities of a generated graph: the exact
// (centralized) mixing and local mixing times, and the distributed
// CONGEST-model computations of the paper with full round/message
// accounting — on static networks or under deterministic edge churn.
//
// Usage examples:
//
//	lmt -graph barbell -beta 8 -k 16                 # Figure 1 graph
//	lmt -graph ringcliques -beta 8 -k 16 -mode all
//	lmt -graph expander -n 256 -d 6 -mode approx
//	lmt -graph path -n 128 -lazy -mode exact
//	lmt -graph ringcliques -beta 8 -k 16 -mode approx -all     # graph-wide sweep
//	lmt -graph torus -dim 16 -mode mixing -lazy -sample 32 -sweepworkers 4
//	lmt -graph ringcliques -beta 8 -k 16 -mode approx -lazy -churn markov -churnrate 0.1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
)

// cliFlags bundles every lmt flag. Registration lives in registerFlags so
// the README's flag table can be regenerated (and is test-enforced) from
// flag.PrintDefaults output.
type cliFlags struct {
	graph        *string
	n            *int
	k            *int
	beta         *float64
	d            *int
	dim          *int
	eps          *float64
	source       *int
	lazy         *bool
	mode         *string
	seed         *int64
	workers      *int
	stats        *bool
	dot          *string
	all          *bool
	sample       *int
	sweepWorkers *int
	churn        *string
	churnRate    *float64
	churnOn      *float64
	churnEvery   *int
	churnSeed    *int64
}

// registerFlags declares every lmt flag on fs. cmd/lmt's flags_test.go
// renders fs.PrintDefaults() and requires the README flag block to match.
func registerFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		graph:        fs.String("graph", "barbell", "family: barbell|ringcliques|complete|path|cycle|torus|hypercube|expander|lollipop|dumbbell"),
		n:            fs.Int("n", 128, "vertex count (complete, path, cycle, expander)"),
		k:            fs.Int("k", 16, "clique/block size (barbell, ringcliques, lollipop, dumbbell)"),
		beta:         fs.Float64("beta", 8, "β: local mixing set size is ≥ n/β; also the clique count for barbell/ringcliques"),
		d:            fs.Int("d", 6, "degree (expander)"),
		dim:          fs.Int("dim", 7, "dimension (hypercube, torus side)"),
		eps:          fs.Float64("eps", 1.0/21.746, "accuracy parameter ε (≈ 1/8e)"),
		source:       fs.Int("source", 0, "source vertex s"),
		lazy:         fs.Bool("lazy", false, "use the lazy walk (required on bipartite graphs)"),
		mode:         fs.String("mode", "all", "what to compute: oracle|approx|exact|mixing|all"),
		seed:         fs.Int64("seed", 1, "random seed (generators and engine)"),
		workers:      fs.Int("workers", 0, "engine worker goroutines (0 = GOMAXPROCS; never changes results)"),
		stats:        fs.Bool("enginestats", false, "print the engine's liveness/allocation/churn counters per run"),
		dot:          fs.String("dot", "", "write a Graphviz file with the oracle's witness local-mixing set highlighted"),
		all:          fs.Bool("all", false, "sweep every vertex as source: graph-wide τ(β,ε)=max_v τ_v (distributed modes)"),
		sample:       fs.Int("sample", 0, "sweep a deterministic sample of this many sources (footnote 6; implies a sweep)"),
		sweepWorkers: fs.Int("sweepworkers", 0, "sweep worker pool size (0 = GOMAXPROCS; never changes results)"),
		churn:        fs.String("churn", "none", "dynamic-network churn model for the distributed modes: none|markov|interval"),
		churnRate:    fs.Float64("churnrate", 0.1, "churn intensity: markov P(on→off); interval fraction of non-backbone edges down per window"),
		churnOn:      fs.Float64("churnon", 0.5, "markov P(off→on) reactivation probability"),
		churnEvery:   fs.Int("churnevery", 8, "interval model: rounds between topology resamples"),
		churnSeed:    fs.Int64("churnseed", 0, "churn model seed (0 = use -seed)"),
	}
}

// churnProvider builds the selected churn model over g, or nil for "none".
func churnProvider(f *cliFlags, g *graph.Graph) (congest.TopologyProvider, error) {
	seed := *f.churnSeed
	if seed == 0 {
		seed = *f.seed
	}
	switch *f.churn {
	case "", "none":
		return nil, nil
	case "markov":
		return dyngraph.NewEdgeMarkov(g, seed, *f.churnRate, *f.churnOn)
	case "interval":
		return dyngraph.NewInterval(g, seed, *f.churnEvery, 1-*f.churnRate)
	default:
		return nil, fmt.Errorf("unknown churn model %q (want none, markov or interval)", *f.churn)
	}
}

func main() {
	f := registerFlags(flag.CommandLine)
	flag.Parse()

	g, err := build(*f.graph, *f.n, *f.k, int(*f.beta), *f.d, *f.dim, *f.seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("graph: %s  n=%d m=%d", g.Name(), g.N(), g.M())
	if d, ok := g.Regular(); ok {
		fmt.Printf("  %d-regular", d)
	}
	if diam, err := g.DiameterApprox(); err == nil {
		fmt.Printf("  diam≈%d", diam)
	}
	fmt.Println()

	churn, err := churnProvider(f, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := []core.Option{core.WithSeed(*f.seed), core.WithIrregular(), core.WithWorkers(*f.workers)}
	if *f.lazy {
		opts = append(opts, core.WithLazy())
	}
	if churn != nil {
		opts = append(opts, core.WithTopology(churn))
		fmt.Printf("churn: %s (rate=%g; distributed modes run on the dynamic network, the oracle stays static)\n",
			*f.churn, *f.churnRate)
	}

	run := func(label string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Printf("%-22s ERROR: %v\n", label, err)
		}
	}
	engineStats := func(st *congest.Stats) {
		if *f.stats && st != nil {
			fmt.Printf("%-22s steps=%d sleepSkips=%d wakeups=%d ffRounds=%d stepGrows=%d dlvGrows=%d payloadWords=%d topoChanges=%d drops=%d\n",
				"  engine", st.ActiveSteps, st.SleepSkips, st.Wakeups, st.SkippedRounds, st.StepGrows, st.DeliverGrows, st.PayloadWords,
				st.TopologyChanges, st.DroppedSends)
		}
	}

	// Multi-source sweep mode (-all / -sample): the distributed modes
	// compute the graph-wide max over sources on the parallel sweep engine
	// instead of a single-source run.
	sweeping := *f.all || *f.sample > 0
	sweepOpts := core.SweepOptions{Workers: *f.sweepWorkers, Sample: *f.sample}
	sweepCfg := func(m core.Mode) core.Config {
		cfg := core.Config{Mode: m, Beta: *f.beta, Eps: *f.eps}
		for _, o := range opts { // same option set as the single-source runs
			o(&cfg)
		}
		return cfg
	}
	printSweep := func(label string, multi *core.MultiResult) {
		fmt.Printf("%-22s τ=%d  argmax=%d  sources=%d  Σrounds=%d  Σmsgs=%d  Σbits=%d\n",
			label, multi.Tau, multi.ArgMax, len(multi.Sources),
			multi.TotalRounds, multi.TotalMessages, multi.TotalBits)
	}

	mode := *f.mode
	if mode == "oracle" || mode == "all" {
		run("oracle", func() error {
			tm, err := exact.MixingTime(g, *f.source, *f.eps, *f.lazy, 8*g.N()*g.N())
			if err != nil {
				return err
			}
			lr, err := exact.LocalMixing(g, *f.source, *f.beta, *f.eps,
				exact.LocalOptions{MaxT: 8 * g.N() * g.N(), Grid: true, Lazy: *f.lazy})
			if err != nil {
				return err
			}
			fmt.Printf("%-22s τ_mix=%d  τ_local(β=%g)=%d  witness |S|=%d  gap=%.1f×\n",
				"oracle (centralized)", tm, *f.beta, lr.T, lr.R, float64(tm)/float64(maxi(1, lr.T)))
			if *f.dot != "" {
				out, err := os.Create(*f.dot)
				if err != nil {
					return err
				}
				defer out.Close()
				if err := g.WriteDOT(out, lr.Set); err != nil {
					return err
				}
				fmt.Printf("%-22s wrote %s (witness set highlighted)\n", "", *f.dot)
			}
			return nil
		})
	}
	if mode == "approx" || mode == "all" {
		run("approx", func() error {
			if sweeping {
				multi, err := core.GraphLocalMixingTimeSweep(g, sweepCfg(core.ApproxLocal), sweepOpts)
				if err != nil {
					return err
				}
				printSweep("Alg 2 sweep (Thm 1)", multi)
				return nil
			}
			res, err := core.ApproxLocalMixingTime(g, *f.source, *f.beta, *f.eps, opts...)
			if err != nil {
				return err
			}
			fmt.Printf("%-22s τ̂=%d  R=%d  Σ=%.4f  rounds=%d  msgs=%d  maxEdgeBits=%d\n",
				"Algorithm 2 (Thm 1)", res.Tau, res.R, res.Sum, res.Stats.Rounds, res.Stats.Messages, res.Stats.MaxEdgeBits)
			engineStats(res.Stats)
			return nil
		})
	}
	if mode == "exact" || mode == "all" {
		run("exact", func() error {
			if sweeping {
				multi, err := core.GraphLocalMixingTimeSweep(g, sweepCfg(core.ExactLocal), sweepOpts)
				if err != nil {
					return err
				}
				printSweep("exact sweep (Thm 2)", multi)
				return nil
			}
			res, err := core.ExactLocalMixingTime(g, *f.source, *f.beta, *f.eps, opts...)
			if err != nil {
				return err
			}
			fmt.Printf("%-22s τ=%d  R=%d  Σ=%.4f  rounds=%d  msgs=%d\n",
				"exact variant (Thm 2)", res.Tau, res.R, res.Sum, res.Stats.Rounds, res.Stats.Messages)
			engineStats(res.Stats)
			return nil
		})
	}
	if mode == "mixing" || mode == "all" {
		run("mixing", func() error {
			if sweeping {
				multi, err := core.GraphMixingTime(g, sweepCfg(core.MixTime), sweepOpts)
				if err != nil {
					return err
				}
				printSweep("mixing sweep [18]", multi)
				return nil
			}
			res, err := core.MixingTime(g, *f.source, *f.eps, opts...)
			if err != nil {
				return err
			}
			fmt.Printf("%-22s τ_mix=%d  rounds=%d  msgs=%d\n",
				"mixing baseline [18]", res.Tau, res.Stats.Rounds, res.Stats.Messages)
			engineStats(res.Stats)
			return nil
		})
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func build(family string, n, k, beta, d, dim int, seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch family {
	case "barbell":
		return gen.Barbell(beta, k)
	case "ringcliques":
		return gen.RingOfCliques(beta, k)
	case "complete":
		return gen.Complete(n)
	case "path":
		return gen.Path(n)
	case "cycle":
		return gen.Cycle(n)
	case "torus":
		return gen.Torus(dim, dim)
	case "hypercube":
		return gen.Hypercube(dim)
	case "expander":
		return gen.RandomRegular(n, d, rng)
	case "lollipop":
		return gen.Lollipop(k, k)
	case "dumbbell":
		return gen.Dumbbell(k, 1)
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}
