// Command lmt computes mixing quantities of a generated graph: the exact
// (centralized) mixing and local mixing times, and the distributed
// CONGEST-model computations of the paper with full round/message
// accounting — on static networks or under deterministic edge churn.
//
// lmt is a thin client of the spec-driven job layer (internal/service): it
// renders its flags as a GraphSpec plus one TaskSpec per computation and
// submits them through service.Run — exactly the code path cmd/lmtd serves
// over HTTP, so a CLI answer and a server answer for the same spec are the
// same bytes.
//
// Usage examples:
//
//	lmt -graph barbell -beta 8 -k 16                 # Figure 1 graph
//	lmt -graph ringcliques -beta 8 -k 16 -mode all
//	lmt -graph expander -n 256 -d 6 -mode approx
//	lmt -graph path -n 128 -lazy -mode exact
//	lmt -graph ringcliques -beta 8 -k 16 -mode approx -all     # graph-wide sweep
//	lmt -graph torus -dim 16 -mode mixing -lazy -sample 32 -sweepworkers 4
//	lmt -graph ringcliques -beta 8 -k 16 -mode approx -lazy -churn markov -churnrate 0.1
//	lmt -graph cycle -n 64 -mode mixing -lazy -churn snapshot -churnsnaps 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/service"
	"repro/internal/spec"
)

// cliFlags bundles every lmt flag. Registration lives in registerFlags so
// the README's flag table can be regenerated (and is test-enforced) from
// flag.PrintDefaults output.
type cliFlags struct {
	graph        *string
	n            *int
	k            *int
	beta         *float64
	d            *int
	dim          *int
	eps          *float64
	source       *int
	lazy         *bool
	mode         *string
	seed         *int64
	workers      *int
	stats        *bool
	dot          *string
	all          *bool
	sample       *int
	sweepWorkers *int
	churn        *string
	churnRate    *float64
	churnOn      *float64
	churnEvery   *int
	churnSnaps   *int
	churnBudget  *int
	churnDown    *int
	churnSeed    *int64
	deadline     *time.Duration
	repeat       *int
	retry        *int
	peers        *int
}

// registerFlags declares every lmt flag on fs. cmd/lmt's flags_test.go
// renders fs.PrintDefaults() and requires the README flag block to match.
func registerFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		graph:        fs.String("graph", "barbell", "family: barbell|ringcliques|complete|path|cycle|torus|hypercube|expander|lollipop|dumbbell"),
		n:            fs.Int("n", 128, "vertex count (complete, path, cycle, expander)"),
		k:            fs.Int("k", 16, "clique/block size (barbell, ringcliques, lollipop, dumbbell)"),
		beta:         fs.Float64("beta", 8, "β: local mixing set size is ≥ n/β; also the clique count for barbell/ringcliques"),
		d:            fs.Int("d", 6, "degree (expander; snapshot-churn samples)"),
		dim:          fs.Int("dim", 7, "dimension (hypercube, torus side)"),
		eps:          fs.Float64("eps", 1.0/21.746, "accuracy parameter ε (≈ 1/8e)"),
		source:       fs.Int("source", 0, "source vertex s"),
		lazy:         fs.Bool("lazy", false, "use the lazy walk (required on bipartite graphs)"),
		mode:         fs.String("mode", "all", "what to compute: oracle|approx|exact|mixing|all"),
		seed:         fs.Int64("seed", 1, "random seed (generators and engine)"),
		workers:      fs.Int("workers", 0, "engine worker goroutines (0 = GOMAXPROCS; never changes results)"),
		stats:        fs.Bool("enginestats", false, "print the engine's liveness/allocation/churn counters per run"),
		dot:          fs.String("dot", "", "write a Graphviz file with the oracle's witness local-mixing set highlighted"),
		all:          fs.Bool("all", false, "sweep every vertex as source: graph-wide τ(β,ε)=max_v τ_v (distributed modes)"),
		sample:       fs.Int("sample", 0, "sweep a deterministic sample of this many sources (footnote 6; implies a sweep)"),
		sweepWorkers: fs.Int("sweepworkers", 0, "sweep worker pool size (0 = GOMAXPROCS; never changes results)"),
		churn:        fs.String("churn", "none", "dynamic-network churn model for the distributed modes: none|markov|interval|snapshot|chaser|cutter|crash"),
		churnRate:    fs.Float64("churnrate", 0.1, "churn intensity: markov P(on→off); interval fraction of non-backbone edges down per window; crash per-vertex per-round crash probability"),
		churnOn:      fs.Float64("churnon", 0.5, "markov P(off→on) reactivation probability"),
		churnEvery:   fs.Int("churnevery", 8, "interval model: rounds between topology resamples; snapshot switch period"),
		churnSnaps:   fs.Int("churnsnaps", 3, "snapshot model: rotating random -d-regular samples in the cycle"),
		churnBudget:  fs.Int("churnbudget", 2, "chaser/cutter adversaries: per-round edge-cut budget"),
		churnDown:    fs.Int("churndown", 8, "crash model: outage length in rounds per crash"),
		churnSeed:    fs.Int64("churnseed", 0, "churn model seed (0 = use -seed)"),
		deadline:     fs.Duration("deadline", 0, "per-computation deadline (0 = none); runs exceeding it abort with a timeout error"),
		repeat:       fs.Int("repeat", 1, "submit each computation as a batch of this many identical requests (> 1 prints the batch cache summary; repeats are result-cache hits)"),
		retry:        fs.Int("retry", 0, "retry budget for 503-class failures (shed or timed-out requests): exponential backoff with jitter, the same discipline lmtd's Retry-After advertises (0 = fail fast)"),
		peers:        fs.Int("peers", 0, "run the distributed modes over this many cluster peers on localhost TCP: single-source runs shard the engine, -all/-sample sweeps fan source chunks out (0 = in-process; results are identical either way — oracle and churn stay in-process)"),
	}
}

// graphSpec renders the -graph flags as the job layer's GraphSpec.
func graphSpec(f *cliFlags) (spec.GraphSpec, error) {
	switch *f.graph {
	case "barbell", "ringcliques":
		return spec.GraphSpec{Family: *f.graph, Blocks: int(*f.beta), K: *f.k}, nil
	case "complete", "path", "cycle":
		return spec.GraphSpec{Family: *f.graph, N: *f.n}, nil
	case "torus", "hypercube":
		return spec.GraphSpec{Family: *f.graph, Dim: *f.dim}, nil
	case "expander":
		return spec.GraphSpec{Family: "expander", N: *f.n, D: *f.d, Seed: *f.seed}, nil
	case "lollipop":
		return spec.GraphSpec{Family: "lollipop", K: *f.k, Bridge: *f.k}, nil
	case "dumbbell":
		return spec.GraphSpec{Family: "dumbbell", K: *f.k, Bridge: 1}, nil
	default:
		return spec.GraphSpec{}, fmt.Errorf("unknown graph family %q", *f.graph)
	}
}

// churnSpec renders the -churn flags, or nil for "none".
func churnSpec(f *cliFlags) (*spec.ChurnSpec, error) {
	switch *f.churn {
	case "", "none":
		return nil, nil
	case "markov":
		return &spec.ChurnSpec{Model: "markov", Rate: *f.churnRate, On: *f.churnOn, Seed: *f.churnSeed}, nil
	case "interval":
		return &spec.ChurnSpec{Model: "interval", Rate: *f.churnRate, Every: *f.churnEvery, Seed: *f.churnSeed}, nil
	case "snapshot":
		return &spec.ChurnSpec{Model: "snapshot", Snapshots: *f.churnSnaps, Every: *f.churnEvery, Degree: *f.d, Seed: *f.churnSeed}, nil
	case "chaser", "cutter":
		return &spec.ChurnSpec{Model: *f.churn, Budget: *f.churnBudget, Seed: *f.churnSeed}, nil
	case "crash":
		return &spec.ChurnSpec{Model: "crash", Rate: *f.churnRate, Down: *f.churnDown, Seed: *f.churnSeed}, nil
	default:
		return nil, fmt.Errorf("unknown churn model %q (want none, markov, interval, snapshot, chaser, cutter or crash)", *f.churn)
	}
}

// baseTask renders the flags shared by every distributed task kind.
func baseTask(f *cliFlags, churn *spec.ChurnSpec) spec.TaskSpec {
	return spec.TaskSpec{
		Source:    *f.source,
		Beta:      *f.beta,
		Eps:       *f.eps,
		Lazy:      *f.lazy,
		Seed:      *f.seed,
		Workers:   *f.workers,
		Irregular: true,
		Churn:     churn,
	}
}

func main() {
	f := registerFlags(flag.CommandLine)
	flag.Parse()
	if err := run(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// run executes the selected modes through the job layer, printing one line
// per computation.
func run(f *cliFlags) error {
	gs, err := graphSpec(f)
	if err != nil {
		return err
	}
	churn, err := churnSpec(f)
	if err != nil {
		return err
	}
	ctx := context.Background()
	opts := service.Options{CacheSize: 4}
	if *f.peers > 0 {
		// -peers stands up a real localhost cluster — coordinator plus N
		// peer runtimes exchanging message frames over TCP — and routes the
		// single-source distributed modes through it. The determinism
		// contract makes this a pure schedule change: every τ below is the
		// same number the in-process run prints.
		if *f.peers < 2 {
			return fmt.Errorf("-peers %d: a cluster needs at least 2 peers", *f.peers)
		}
		coord, err := cluster.NewCoordinator("127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("start cluster coordinator: %w", err)
		}
		defer coord.Close()
		for i := 0; i < *f.peers; i++ {
			go cluster.Serve(ctx, coord.Addr())
		}
		waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err = coord.WaitForPeers(waitCtx, *f.peers)
		cancel()
		if err != nil {
			return fmt.Errorf("cluster peers never registered: %w", err)
		}
		opts.Cluster = coord
		fmt.Printf("cluster: %d peers over localhost TCP (coordinator %s)\n", *f.peers, coord.Addr())
	}
	svc := service.New(opts)

	g, _, err := svc.Graph(gs)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s  n=%d m=%d", g.Name(), g.N(), g.M())
	if d, ok := g.Regular(); ok {
		fmt.Printf("  %d-regular", d)
	}
	if diam, err := g.DiameterApprox(); err == nil {
		fmt.Printf("  diam≈%d", diam)
	}
	fmt.Println()
	if churn != nil {
		switch churn.Model {
		case "snapshot":
			fmt.Printf("churn: snapshot (snaps=%d every=%d d=%d; distributed modes run on the rotating random-regular superset, the oracle stays static)\n",
				churn.Snapshots, churn.Every, churn.Degree)
		case "chaser":
			fmt.Printf("churn: chaser (budget=%d; adaptive adversary cuts edges around the node that last published state)\n", churn.Budget)
		case "cutter":
			fmt.Printf("churn: cutter (budget=%d; oblivious rate-matched baseline for the chaser)\n", churn.Budget)
		case "crash":
			fmt.Printf("churn: crash (rate=%g down=%d; vertices crash-stop with all incident edges down, then restart)\n",
				churn.Rate, churn.Down)
		default:
			fmt.Printf("churn: %s (rate=%g; distributed modes run on the dynamic network, the oracle stays static)\n",
				churn.Model, churn.Rate)
		}
	}

	attempt := func(task spec.TaskSpec) (*service.Response, error) {
		task.DeadlineMS = f.deadline.Milliseconds()
		if *f.repeat > 1 {
			reqs := make([]service.Request, *f.repeat)
			for i := range reqs {
				reqs[i] = service.Request{Graph: gs, Task: task}
			}
			items, sum := svc.RunBatch(ctx, reqs)
			fmt.Printf("%-22s tasks=%d computed=%d resultHits=%d shared=%d errors=%d\n",
				"  batch", sum.Tasks, sum.Computed, sum.ResultHits, sum.Shared, sum.Errors)
			for _, it := range items {
				if it.Error != "" {
					return nil, fmt.Errorf("%s", it.Error)
				}
			}
			return items[0].Response, nil
		}
		return svc.Run(ctx, service.Request{Graph: gs, Task: task})
	}
	jitter := rand.New(rand.NewSource(*f.seed))
	submit := func(task spec.TaskSpec) (*service.Response, error) {
		resp, err := attempt(task)
		for tries := 0; err != nil && tries < *f.retry && retryable(err); tries++ {
			d := backoff(tries, jitter)
			fmt.Printf("%-22s attempt %d/%d failed (%v); backing off %s\n",
				"  retry", tries+1, *f.retry+1, err, d.Truncate(time.Millisecond))
			time.Sleep(d)
			resp, err = attempt(task)
		}
		return resp, err
	}
	report := func(label string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Printf("%-22s ERROR: %v\n", label, err)
		}
	}
	engineStats := func(st *congest.Stats) {
		if *f.stats && st != nil {
			fmt.Printf("%-22s steps=%d sleepSkips=%d wakeups=%d ffRounds=%d stepGrows=%d dlvGrows=%d payloadWords=%d topoChanges=%d drops=%d\n",
				"  engine", st.ActiveSteps, st.SleepSkips, st.Wakeups, st.SkippedRounds, st.StepGrows, st.DeliverGrows, st.PayloadWords,
				st.TopologyChanges, st.DroppedSends)
		}
	}

	// clusterize routes a single-source distributed task over the -peers
	// cluster. Churned tasks stay in-process (cluster v1 is static-topology
	// only), as the flag help promises.
	clusterize := func(t spec.TaskSpec) spec.TaskSpec {
		if *f.peers > 0 && t.Churn == nil {
			t.Cluster = &spec.ClusterSpec{}
		}
		return t
	}

	// Multi-source sweep mode (-all / -sample): the distributed modes
	// compute the graph-wide max over sources on the warm sweep pools
	// instead of a single-source run.
	sweeping := *f.all || *f.sample > 0
	sweepTask := func(mode string, churn *spec.ChurnSpec) spec.TaskSpec {
		t := baseTask(f, churn)
		t.Kind = spec.KindSweep
		t.Mode = mode
		t.Sample = *f.sample
		t.SweepWorkers = *f.sweepWorkers
		// Sweeps distribute too: the coordinator fans source chunks across
		// the peers' warm pools (same chunk grid, same per-source seeds).
		return clusterize(t)
	}
	printSweep := func(label string, multi *core.MultiResult) {
		fmt.Printf("%-22s τ=%d  argmax=%d  sources=%d  Σrounds=%d  Σmsgs=%d  Σbits=%d\n",
			label, multi.Tau, multi.ArgMax, len(multi.Sources),
			multi.TotalRounds, multi.TotalMessages, multi.TotalBits)
	}

	mode := *f.mode
	if mode == "oracle" || mode == "all" {
		report("oracle", func() error {
			t := spec.TaskSpec{Kind: spec.KindOracleMixing, Source: *f.source, Eps: *f.eps, Lazy: *f.lazy}
			resp, err := submit(t)
			if err != nil {
				return err
			}
			tm := resp.Result.(*service.TauResult).Tau
			t = spec.TaskSpec{Kind: spec.KindOracleLocal, Source: *f.source, Beta: *f.beta, Eps: *f.eps, Lazy: *f.lazy}
			resp, err = submit(t)
			if err != nil {
				return err
			}
			lr := resp.Result.(*exact.LocalResult)
			fmt.Printf("%-22s τ_mix=%d  τ_local(β=%g)=%d  witness |S|=%d  gap=%.1f×\n",
				"oracle (centralized)", tm, *f.beta, lr.T, lr.R, float64(tm)/float64(maxi(1, lr.T)))
			if *f.dot != "" {
				out, err := os.Create(*f.dot)
				if err != nil {
					return err
				}
				defer out.Close()
				if err := g.WriteDOT(out, lr.Set); err != nil {
					return err
				}
				fmt.Printf("%-22s wrote %s (witness set highlighted)\n", "", *f.dot)
			}
			return nil
		})
	}
	if mode == "approx" || mode == "all" {
		report("approx", func() error {
			if sweeping {
				resp, err := submit(sweepTask("approx", churn))
				if err != nil {
					return err
				}
				printSweep("Alg 2 sweep (Thm 1)", resp.Result.(*core.MultiResult))
				return nil
			}
			t := clusterize(baseTask(f, churn))
			t.Kind = spec.KindLocal
			resp, err := submit(t)
			if err != nil {
				return err
			}
			res := resp.Result.(*core.Result)
			fmt.Printf("%-22s τ̂=%d  R=%d  Σ=%.4f  rounds=%d  msgs=%d  maxEdgeBits=%d\n",
				"Algorithm 2 (Thm 1)", res.Tau, res.R, res.Sum, res.Stats.Rounds, res.Stats.Messages, res.Stats.MaxEdgeBits)
			engineStats(res.Stats)
			return nil
		})
	}
	if mode == "exact" || mode == "all" {
		report("exact", func() error {
			if sweeping {
				resp, err := submit(sweepTask("exact", churn))
				if err != nil {
					return err
				}
				printSweep("exact sweep (Thm 2)", resp.Result.(*core.MultiResult))
				return nil
			}
			t := clusterize(baseTask(f, churn))
			t.Kind = spec.KindLocal
			t.Exact = true
			resp, err := submit(t)
			if err != nil {
				return err
			}
			res := resp.Result.(*core.Result)
			fmt.Printf("%-22s τ=%d  R=%d  Σ=%.4f  rounds=%d  msgs=%d\n",
				"exact variant (Thm 2)", res.Tau, res.R, res.Sum, res.Stats.Rounds, res.Stats.Messages)
			engineStats(res.Stats)
			return nil
		})
	}
	if mode == "mixing" || mode == "all" {
		report("mixing", func() error {
			if sweeping {
				resp, err := submit(sweepTask("mixing", churn))
				if err != nil {
					return err
				}
				printSweep("mixing sweep [18]", resp.Result.(*core.MultiResult))
				return nil
			}
			t := clusterize(baseTask(f, churn))
			t.Kind = spec.KindMixing
			resp, err := submit(t)
			if err != nil {
				return err
			}
			res := resp.Result.(*core.Result)
			fmt.Printf("%-22s τ_mix=%d  rounds=%d  msgs=%d\n",
				"mixing baseline [18]", res.Tau, res.Stats.Rounds, res.Stats.Messages)
			engineStats(res.Stats)
			return nil
		})
	}
	return nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// retryable reports whether an error is worth retrying under -retry: the
// 503 class — shed (overloaded) or timed-out requests, the ones lmtd
// answers with Retry-After. Invalid requests and poisoned (panicked) ones
// never are: they fail identically on every attempt.
func retryable(err error) bool {
	return errors.Is(err, service.ErrOverloaded) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// backoff returns the nth retry delay: exponential from a 100ms base to a
// 5s cap, with equal jitter (uniform in [d/2, d)) so synchronized clients
// spread out. Deterministic under -seed like everything else in lmt.
func backoff(n int, r *rand.Rand) time.Duration {
	d := 100 * time.Millisecond << uint(n)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	half := d / 2
	return half + time.Duration(r.Int63n(int64(half)))
}
