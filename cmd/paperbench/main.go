// Command paperbench regenerates every table and figure-equivalent of the
// paper's evaluation (see DESIGN.md §4 and EXPERIMENTS.md). Each experiment
// prints an aligned table; absolute numbers are simulator-specific, the
// shapes (who wins, growth rates, approximation factors) are the
// reproduction targets.
//
// Usage:
//
//	paperbench                  # run everything at small scale
//	paperbench -scale full      # paper-shaped workloads (minutes)
//	paperbench -exp E1,E5,A3    # selected experiments
//	paperbench -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "small", "workload scale: small or full")
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids (E1..E12, A1..A4) or 'all'")
		listFlag  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return
	}

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var selected []bench.Experiment
	if strings.EqualFold(*expFlag, "all") {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.ID, err)
			failed++
			continue
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
