// Command paperbench regenerates every table and figure-equivalent of the
// paper's evaluation (see DESIGN.md §4 and EXPERIMENTS.md). Each experiment
// prints an aligned table; absolute numbers are simulator-specific, the
// shapes (who wins, growth rates, approximation factors) are the
// reproduction targets.
//
// Usage:
//
//	paperbench                  # run everything at small scale
//	paperbench -scale full      # paper-shaped workloads (minutes)
//	paperbench -exp E1,E5,A3    # selected experiments
//	paperbench -list            # list experiment ids
//
// Profiling the oracle and engine hot paths without editing code:
//
//	paperbench -exp E14 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

// run holds the real main so profile-writing defers execute before the
// process exits (os.Exit skips defers).
func run() int {
	var (
		scaleFlag = flag.String("scale", "small", "workload scale: small or full")
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids (E1..E12, A1..A4) or 'all'")
		listFlag  = flag.Bool("list", false, "list experiments and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (taken after all experiments) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *listFlag {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return 0
	}

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var selected []bench.Experiment
	if strings.EqualFold(*expFlag, "all") {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.ID, err)
			failed++
			continue
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		return 1
	}
	return 0
}
