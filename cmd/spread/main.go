// Command spread runs push–pull partial information spreading (paper §4)
// and demonstrates the Theorem 3 termination rule: compute τ(β,ε) with the
// distributed local-mixing algorithm, run push–pull for c·τ·log n rounds,
// and verify (δ,β)-partial spreading holds.
//
// Usage examples:
//
//	spread -graph barbell -beta 8 -k 16
//	spread -graph expander -n 256 -beta 4 -c 4
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spread"
)

func main() {
	var (
		graphFlag = flag.String("graph", "barbell", "family: barbell|ringcliques|expander|complete|torus")
		nFlag     = flag.Int("n", 128, "vertex count (expander, complete)")
		kFlag     = flag.Int("k", 16, "clique size (barbell, ringcliques)")
		betaFlag  = flag.Float64("beta", 8, "β: every token must reach ≥ n/β nodes and vice versa")
		cFlag     = flag.Float64("c", 3, "termination-rule constant: run c·τ̂·log₂n rounds")
		epsFlag   = flag.Float64("eps", 1.0/21.746, "ε for the τ̂ computation")
		seedFlag  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	g, err := build(*graphFlag, *nFlag, *kFlag, int(*betaFlag), *seedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("graph: %s  n=%d m=%d\n", g.Name(), g.N(), g.M())

	// Step 1: τ̂(β,ε) via the distributed Algorithm 2 (the paper's
	// termination condition for push–pull, §4).
	res, err := core.ApproxLocalMixingTime(g, 0, *betaFlag, *epsFlag,
		core.WithSeed(*seedFlag), core.WithIrregular())
	if err != nil {
		fmt.Fprintln(os.Stderr, "local mixing time:", err)
		os.Exit(1)
	}
	budget := int(*cFlag * float64(res.Tau) * math.Log2(float64(g.N())))
	if budget < 1 {
		budget = 1
	}
	fmt.Printf("τ̂(β=%g) = %d (Algorithm 2, %d CONGEST rounds)\n", *betaFlag, res.Tau, res.Stats.Rounds)
	fmt.Printf("termination rule: run %g·τ̂·log₂n = %d push–pull rounds\n", *cFlag, budget)

	// Step 2: run push–pull for exactly that many rounds.
	sp, err := spread.Run(g, spread.Config{Beta: *betaFlag, Seed: *seedFlag, FixedRounds: budget})
	if err != nil {
		fmt.Fprintln(os.Stderr, "push–pull:", err)
		os.Exit(1)
	}
	target := int(math.Ceil(float64(g.N()) / *betaFlag))
	ok := sp.MinTokensPerNode >= target && sp.MinNodesPerToken >= target
	fmt.Printf("after %d rounds: min tokens/node = %d, min nodes/token = %d (target %d) → partial spreading %v\n",
		sp.Rounds, sp.MinTokensPerNode, sp.MinNodesPerToken, target, ok)
	if sp.RoundsToPartial > 0 {
		fmt.Printf("partial spreading was first reached at round %d\n", sp.RoundsToPartial)
	}

	// Step 3: for contrast, how long full spreading takes.
	full, err := spread.Run(g, spread.Config{Beta: 1, Seed: *seedFlag, MaxRounds: 1 << 16})
	if err != nil {
		fmt.Fprintln(os.Stderr, "full spreading:", err)
		os.Exit(1)
	}
	fmt.Printf("full information spreading takes %d rounds (%.1f× the partial budget)\n",
		full.RoundsToFull, float64(full.RoundsToFull)/float64(budget))
	if !ok {
		os.Exit(1)
	}
}

func build(family string, n, k, beta int, seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch family {
	case "barbell":
		return gen.Barbell(beta, k)
	case "ringcliques":
		return gen.RingOfCliques(beta, k)
	case "expander":
		return gen.RandomRegular(n, 6, rng)
	case "complete":
		return gen.Complete(n)
	case "torus":
		side := int(math.Sqrt(float64(n)))
		return gen.Torus(side, side)
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}
