package cluster

import (
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns a connected loopback TCP pair (the kernel socket buffers
// make writes complete without a concurrent reader, unlike net.Pipe).
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type acc struct {
		c   net.Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := ln.Accept()
		ch <- acc{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		client.Close()
		t.Fatal(a.err)
	}
	t.Cleanup(func() { client.Close(); a.c.Close() })
	return client, a.c
}

// TestDelayConnDelaysAndPreservesOrder: every write arrives at least the
// one-way latency late, bytes arrive in write order, and a burst of writes
// is pipelined (delays overlap) rather than serialized (delays add up).
func TestDelayConnDelaysAndPreservesOrder(t *testing.T) {
	const oneWay = 30 * time.Millisecond
	const writes = 20
	raw, peer := tcpPair(t)
	dc := delayWrites(raw, oneWay)
	defer dc.Close()

	start := time.Now()
	for i := 0; i < writes; i++ {
		if _, err := dc.Write([]byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	buf := make([]byte, writes)
	if _, err := io.ReadFull(peer, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	for i := range buf {
		if buf[i] != byte(i) {
			t.Fatalf("write %d arrived as %d: reordered", i, buf[i])
		}
	}
	if elapsed < oneWay {
		t.Fatalf("burst arrived after %v, before the %v one-way delay", elapsed, oneWay)
	}
	// Serialized delays would need ≥ writes·oneWay = 600ms; generous
	// headroom below that still proves the pipeline overlaps them.
	if limit := time.Duration(writes) * oneWay * 2 / 3; elapsed > limit {
		t.Fatalf("burst took %v; delays are stacking instead of overlapping (limit %v)", elapsed, limit)
	}
}

// TestDelayConnReadsPassThrough: the wrapper delays only its own writes;
// inbound traffic is untouched.
func TestDelayConnReadsPassThrough(t *testing.T) {
	raw, peer := tcpPair(t)
	dc := delayWrites(raw, time.Minute) // a delay the test would never survive
	defer dc.Close()
	if _, err := peer.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	dc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(dc, buf); err != nil {
		t.Fatalf("read through wrapper: %v", err)
	}
	if string(buf) != "pong" {
		t.Fatalf("read %q, want %q", buf, "pong")
	}
}

// TestDelayConnCloseUnblocks: Close releases writers blocked on a full
// queue and later writes fail instead of hanging.
func TestDelayConnCloseUnblocks(t *testing.T) {
	raw, _ := tcpPair(t)
	dc := delayWrites(raw, time.Minute)
	dc.Close()
	if _, err := dc.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}
