package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/congest"
	"repro/internal/spec"
)

// Control-plane message types. Per job, the coordinator and each peer
// exchange:
//
//	peer → coord   hello                       once, on connect
//	coord → peer   prepare{peer, peers, graph, task}
//	peer → coord   ready{mesh}                 mesh listener address, or err
//	coord → peer   start{addrs} | abort        abort when any peer's ready failed
//	peer → coord   sync{report}                once per engine round
//	coord → peer   round{report}               the MergeReports fold
//	peer → coord   result{result, stats, authoritative} or result{err}
//
// Every message is one JSON object; the stream framing is encoding/json's
// value boundaries (newline-delimited in practice).
const (
	msgHello   = "hello"
	msgPrepare = "prepare"
	msgReady   = "ready"
	msgStart   = "start"
	msgAbort   = "abort"
	msgSync    = "sync"
	msgRound   = "round"
	msgResult  = "result"
)

// ctrlMsg is the control-plane envelope; Type selects which fields are
// meaningful (see the message table above).
type ctrlMsg struct {
	Type  string `json:"type"`
	Peer  int    `json:"peer,omitempty"`
	Peers int    `json:"peers,omitempty"`
	// Mesh is the peer's freshly opened data-plane listener (ready).
	Mesh string `json:"mesh,omitempty"`
	// Addrs lists every peer's mesh address, indexed by peer (start).
	Addrs []string `json:"addrs,omitempty"`
	// Graph and Task describe the job (prepare).
	Graph *spec.GraphSpec `json:"graph,omitempty"`
	Task  *spec.TaskSpec  `json:"task,omitempty"`
	// Report is one peer's round report (sync) or the merged fold (round).
	Report *congest.RoundReport `json:"report,omitempty"`
	// Result is the kind-specific result JSON, sent only by the
	// authoritative (source-owning) peer.
	Result json.RawMessage `json:"result,omitempty"`
	// Stats are the peer's engine counters (result).
	Stats         *congest.Stats `json:"stats,omitempty"`
	Authoritative bool           `json:"authoritative,omitempty"`
	// Err reports a peer-local failure (ready, result).
	Err string `json:"err,omitempty"`
}

// Connection-establishment budgets. Once a job is running, rounds have no
// deadline — the engine computes as long as it computes — but setup steps
// against unreachable peers must fail instead of hanging the job.
const (
	ctrlDialTimeout = 10 * time.Second
	meshDialTimeout = 10 * time.Second
	meshSetupBudget = 30 * time.Second
)

// writeMeshPreamble identifies the dialing peer on a fresh mesh connection:
// a 4-byte little-endian peer index, the only non-frame bytes the data
// plane ever carries.
func writeMeshPreamble(c net.Conn, peer int) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(peer))
	_, err := c.Write(b[:])
	return err
}

func readMeshPreamble(c net.Conn) (int, error) {
	var b [4]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return 0, err
	}
	return int(int32(binary.LittleEndian.Uint32(b[:]))), nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// validateJob enforces the cluster-computable envelope shared by the
// coordinator's fast path and every peer's own check: a distributable kind,
// no churn (providers are service-internal), and a sane peer count.
func validateJob(ts *spec.TaskSpec, peers int) error {
	if !spec.ClusterKinds[ts.Kind] {
		return fmt.Errorf("cluster: kind %s does not distribute (want %s, %s or %s)",
			ts.Kind, spec.KindLocal, spec.KindMixing, spec.KindWalk)
	}
	if ts.Churn != nil {
		return fmt.Errorf("cluster: churn models are not supported over the wire yet")
	}
	if peers < 2 {
		return fmt.Errorf("cluster: need at least 2 peers, have %d", peers)
	}
	return nil
}
