package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/congest"
	"repro/internal/spec"
)

// Control-plane message types. Per job, the coordinator and each peer
// exchange:
//
//	peer → coord   hello                       once, on connect
//	coord → peer   prepare{peer, peers, graph, task, sync}
//	peer → coord   ready{mesh}                 mesh listener address, or err
//	coord → peer   start{addrs} | abort        abort when any peer's ready failed
//	peer → coord   sync{reports}               once per speculation window (≤ sync rounds)
//	coord → peer   round{reports}              the MergeReportBatch fold
//	peer → coord   result{result, stats, waitNs, authoritative} or result{err}
//
// Sweep jobs replace the sync/round/result phase with a chunk loop — no
// data-plane mesh, just source fan-out on the control connection:
//
//	coord → peer   chunk{sources}              one canonical source chunk
//	peer → coord   chunkres{result} or chunkres{err}
//	coord → peer   done                        sweep over; peer back to idle
//
// Every message is one newline-terminated JSON object (the encoding/json
// Encoder framing); the decoding side is the line-based ctrlReader, which
// tags every malformed, truncated, or oversized message with ErrCtrl.
const (
	msgHello    = "hello"
	msgPrepare  = "prepare"
	msgReady    = "ready"
	msgStart    = "start"
	msgAbort    = "abort"
	msgSync     = "sync"
	msgRound    = "round"
	msgResult   = "result"
	msgChunk    = "chunk"
	msgChunkRes = "chunkres"
	msgDone     = "done"
)

// ctrlMsg is the control-plane envelope; Type selects which fields are
// meaningful (see the message table above).
type ctrlMsg struct {
	Type  string `json:"type"`
	Peer  int    `json:"peer,omitempty"`
	Peers int    `json:"peers,omitempty"`
	// Mesh is the peer's freshly opened data-plane listener (ready).
	Mesh string `json:"mesh,omitempty"`
	// Addrs lists every peer's mesh address, indexed by peer (start).
	Addrs []string `json:"addrs,omitempty"`
	// Graph and Task describe the job (prepare).
	Graph *spec.GraphSpec `json:"graph,omitempty"`
	Task  *spec.TaskSpec  `json:"task,omitempty"`
	// Sync is the job's rounds-per-sync barrier cadence (prepare).
	Sync int `json:"sync,omitempty"`
	// Reports is one peer's report batch for a speculation window (sync) or
	// the merged fold of every peer's batch (round).
	Reports []congest.RoundReport `json:"reports,omitempty"`
	// Result is the kind-specific result JSON: the authoritative peer's
	// answer (result), or one chunk's []*core.Result (chunkres).
	Result json.RawMessage `json:"result,omitempty"`
	// Stats are the peer's engine counters (result).
	Stats         *congest.Stats `json:"stats,omitempty"`
	Authoritative bool           `json:"authoritative,omitempty"`
	// WaitNs is the time the peer spent blocked on inbound frames during
	// the run (result) — the lmtd_cluster_round_wait_ns_total metric.
	WaitNs int64 `json:"waitNs,omitempty"`
	// Sources is one sweep chunk's source list (chunk).
	Sources []int `json:"sources,omitempty"`
	// Resident is the peer's resident graph bytes for the prepared job
	// (ready) — graph.ResidentBytes of the full build or the CSR shard.
	Resident int64 `json:"resident,omitempty"`
	// Err reports a peer-local failure (ready, result, chunkres).
	Err string `json:"err,omitempty"`
}

// ErrCtrl tags every control-plane decoding failure: malformed JSON,
// truncated streams, oversized or type-less messages. Transport-level
// failures (clean EOF, closed connections) pass through untagged so callers
// can distinguish "the peer hung up" from "the peer spoke garbage".
var ErrCtrl = errors.New("cluster: control protocol error")

// maxCtrlLine bounds one control message. Prepare messages carry the task
// spec (explicit source lists included) and chunkres messages carry up to
// ChunkSize full results, all far below this; anything larger is a corrupt
// or hostile stream.
const maxCtrlLine = 16 << 20

// ctrlReader decodes newline-delimited JSON control messages with a hard
// per-message size cap. It is the single decoding path of the control
// plane — coordinator and peer both read through it — so the ErrCtrl
// tagging contract (and the FuzzControlPlane guarantees) hold everywhere.
type ctrlReader struct {
	r    *bufio.Reader
	line []byte
}

func newCtrlReader(r io.Reader) *ctrlReader {
	return &ctrlReader{r: bufio.NewReader(r)}
}

// next decodes one message into m. It returns io.EOF only on a clean
// boundary (no partial message buffered); every malformed, truncated, or
// oversized message yields an error wrapping ErrCtrl. Transport errors
// (closed connections) pass through untouched.
func (c *ctrlReader) next(m *ctrlMsg) error {
	c.line = c.line[:0]
	for {
		frag, err := c.r.ReadSlice('\n')
		c.line = append(c.line, frag...)
		if len(c.line) > maxCtrlLine {
			return fmt.Errorf("%w: message exceeds %d bytes", ErrCtrl, maxCtrlLine)
		}
		if err == nil {
			break
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			continue
		}
		if errors.Is(err, io.EOF) {
			if len(c.line) == 0 {
				return io.EOF
			}
			return fmt.Errorf("%w: truncated message at EOF", ErrCtrl)
		}
		return err
	}
	*m = ctrlMsg{}
	if err := json.Unmarshal(c.line, m); err != nil {
		return fmt.Errorf("%w: %v", ErrCtrl, err)
	}
	if m.Type == "" {
		return fmt.Errorf("%w: message without a type", ErrCtrl)
	}
	return nil
}

// Connection-establishment budgets. Once a job is running, rounds have no
// deadline — the engine computes as long as it computes — but setup steps
// against unreachable peers must fail instead of hanging the job.
const (
	ctrlDialTimeout = 10 * time.Second
	meshDialTimeout = 10 * time.Second
	meshSetupBudget = 30 * time.Second
)

// writeMeshPreamble identifies the dialing peer on a fresh mesh connection:
// a 4-byte little-endian peer index, the only non-frame bytes the data
// plane ever carries.
func writeMeshPreamble(c net.Conn, peer int) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(peer))
	_, err := c.Write(b[:])
	return err
}

func readMeshPreamble(c net.Conn) (int, error) {
	var b [4]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return 0, err
	}
	return int(int32(binary.LittleEndian.Uint32(b[:]))), nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// validateJob enforces the cluster-computable envelope shared by the
// coordinator's fast path and every peer's own check: a distributable kind,
// no churn (providers are service-internal), and a sane peer count. Engine
// kinds shard one run and need at least 2 peers; sweeps fan whole source
// chunks out, so a single peer is legal.
func validateJob(ts *spec.TaskSpec, peers int) error {
	if !spec.ClusterKinds[ts.Kind] {
		return fmt.Errorf("cluster: kind %s does not distribute (want %s, %s, %s or %s)",
			ts.Kind, spec.KindLocal, spec.KindMixing, spec.KindWalk, spec.KindSweep)
	}
	if ts.Churn != nil {
		return fmt.Errorf("cluster: churn models are not supported over the wire yet")
	}
	if min := minPeers(ts.Kind); peers < min {
		return fmt.Errorf("cluster: need at least %d peers, have %d", min, peers)
	}
	return nil
}

// minPeers is the smallest legal cluster for a kind.
func minPeers(k spec.Kind) int {
	if k == spec.KindSweep {
		return 1
	}
	return 2
}
