package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/spec"
)

// Coordinator accepts peer registrations and executes cluster jobs over
// them: it dispatches the job spec, folds the per-round reports
// (congest.MergeReports), collects the per-peer results, and assembles the
// single-process-equivalent answer. One job runs at a time; concurrent Run
// calls serialize.
type Coordinator struct {
	ln net.Listener

	mu     sync.Mutex
	cond   *sync.Cond
	peers  []*peerConn
	closed bool

	runMu sync.Mutex

	// chunks counts sweep chunks dispatched to peers, cumulatively across
	// jobs (the lmtd_cluster_sweep_chunks_total metric).
	chunks atomic.Int64
	// syncBatches counts barrier folds — one per speculation window, so
	// RoundsPerSync=8 folds ~1/8th as often as every-round syncing
	// (the lmtd_cluster_sync_batches_total metric).
	syncBatches atomic.Int64
	// roundWait accumulates the nanoseconds peers reported blocked on
	// inbound frames (the lmtd_cluster_round_wait_ns_total metric).
	roundWait atomic.Int64
	// resident holds the per-peer resident graph bytes reported in the last
	// job's ready messages, guarded by statMu.
	statMu   sync.Mutex
	resident []int64
}

// peerConn is one registered peer's control connection.
type peerConn struct {
	conn net.Conn
	enc  *json.Encoder
	rd   *ctrlReader
}

// NewCoordinator listens on addr (e.g. ":9300", "127.0.0.1:0") and starts
// accepting peer registrations.
func NewCoordinator(addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator listen on %s: %w", addr, err)
	}
	c := &Coordinator{ln: ln}
	c.cond = sync.NewCond(&c.mu)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the coordinator's listen address — what peers dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Peers returns the number of currently registered peers.
func (c *Coordinator) Peers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.peers)
}

// WaitForPeers blocks until at least n peers are registered, the context
// expires, or the coordinator closes.
func (c *Coordinator) WaitForPeers(ctx context.Context, n int) error {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.peers) < n && !c.closed && ctx.Err() == nil {
		c.cond.Wait()
	}
	if c.closed {
		return errors.New("cluster: coordinator closed")
	}
	return ctx.Err()
}

// Close stops accepting registrations and drops every peer (their Serve
// loops return).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	c.closed = true
	peers := c.peers
	c.peers = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	err := c.ln.Close()
	for _, pc := range peers {
		pc.conn.Close()
	}
	return err
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.admit(conn)
	}
}

// admit registers one peer after its hello. Registration order assigns the
// peer indices of subsequent jobs.
func (c *Coordinator) admit(conn net.Conn) {
	conn = wrapConn(conn)
	rd := newCtrlReader(conn)
	var m ctrlMsg
	if err := rd.next(&m); err != nil || m.Type != msgHello {
		conn.Close()
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return
	}
	c.peers = append(c.peers, &peerConn{conn: conn, enc: json.NewEncoder(conn), rd: rd})
	c.cond.Broadcast()
}

// SweepChunks returns the number of sweep chunks dispatched to peers since
// the coordinator started, across all jobs.
func (c *Coordinator) SweepChunks() int64 { return c.chunks.Load() }

// SyncBatches returns the number of round-barrier folds performed since
// the coordinator started: one per speculation window, across all jobs.
func (c *Coordinator) SyncBatches() int64 { return c.syncBatches.Load() }

// RoundWaitNs returns the cumulative nanoseconds peers reported blocked on
// inbound frames, across all jobs — the coarse measure of how much wire
// latency the pipelined exchange failed to hide.
func (c *Coordinator) RoundWaitNs() int64 { return c.roundWait.Load() }

// PeerResidentBytes returns the per-peer resident graph bytes the last
// job's ready messages reported (index = peer index of that job): the CSR
// footprint of each peer's build — the full graph, or ~1/P of it when the
// family shards. Nil before the first job.
func (c *Coordinator) PeerResidentBytes() []int64 {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return append([]int64(nil), c.resident...)
}

func (c *Coordinator) setResident(r []int64) {
	c.statMu.Lock()
	c.resident = r
	c.statMu.Unlock()
}

// drop removes a failed peer from the registry and closes its connection.
func (c *Coordinator) drop(pc *peerConn) {
	c.mu.Lock()
	for i, p := range c.peers {
		if p == pc {
			c.peers = append(c.peers[:i], c.peers[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	pc.conn.Close()
}

// foldBarrier is the coordinator half of the round barrier: each runPeer
// goroutine submits its peer's report batch (one speculation window); the
// last arrival folds the generation with congest.MergeReportBatch and
// releases the rest. fail breaks the barrier permanently — current and
// future waiters receive a batch carrying the failure, which every healthy
// peer turns into a clean abort.
type foldBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	peers   int
	batches [][]congest.RoundReport
	merged  []congest.RoundReport
	gen     int
	broken  string
	// folds counts completed generations into the coordinator's
	// syncBatches metric.
	folds *atomic.Int64
}

func newFoldBarrier(peers int, folds *atomic.Int64) *foldBarrier {
	b := &foldBarrier{peers: peers, folds: folds}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// poisoned mirrors the submitted batch with every report carrying the
// breakage, so the engine aborts at the window's first round. Callers hold
// b.mu.
func (b *foldBarrier) poisoned(batch []congest.RoundReport) []congest.RoundReport {
	out := make([]congest.RoundReport, len(batch))
	for i := range out {
		out[i] = congest.RoundReport{Round: batch[i].Round, MinWake: congest.NoWake, Err: b.broken}
	}
	return out
}

func (b *foldBarrier) sync(batch []congest.RoundReport) []congest.RoundReport {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken != "" {
		return b.poisoned(batch)
	}
	gen := b.gen
	b.batches = append(b.batches, batch)
	if len(b.batches) == b.peers {
		b.merged = congest.MergeReportBatch(b.batches)
		b.batches = b.batches[:0]
		b.gen++
		b.folds.Add(1)
		b.cond.Broadcast()
		return b.merged
	}
	for b.gen == gen && b.broken == "" {
		b.cond.Wait()
	}
	if b.gen == gen { // released by fail, not by the fold
		return b.poisoned(batch)
	}
	return b.merged
}

func (b *foldBarrier) fail(msg string) {
	b.mu.Lock()
	if b.broken == "" {
		b.broken = msg
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// peerOutcome is what one runPeer goroutine collected.
type peerOutcome struct {
	result json.RawMessage
	stats  *congest.Stats
	auth   bool
	errS   string // peer-reported run error
	err    error  // control-transport error
}

// Run executes one cluster job: the task over the graph, sharded across the
// first ts.Cluster.Peers registered peers (or all of them when the field is
// nil or zero). The returned value is exactly what the in-process runner
// family returns — *core.Result for local and mixing, *core.TokenWalkResult
// for walk, *core.MultiResult for sweeps — with engine kinds' Stats swapped
// for the congest.MergeStats fold of every peer's counters; the cluster
// determinism contract makes the rest of the result identical to the
// single-process run with the same seed.
//
// Cancelling ctx aborts an engine job at its next round barrier and a sweep
// job at its next chunk boundary (peers stay registered); peer-side errors
// and dropped peers abort it the same way.
func (c *Coordinator) Run(ctx context.Context, gs spec.GraphSpec, ts spec.TaskSpec) (any, error) {
	c.runMu.Lock()
	defer c.runMu.Unlock()

	want, rps := 0, 0
	if ts.Cluster != nil {
		want, rps = ts.Cluster.Peers, ts.Cluster.RoundsPerSync
	}
	ts.Cluster = nil // peers run the task directly; the routing fields are spent
	c.mu.Lock()
	peers := append([]*peerConn(nil), c.peers...)
	c.mu.Unlock()
	if want == 0 {
		want = len(peers)
	}
	if min := minPeers(ts.Kind); len(peers) < want || want < min {
		return nil, fmt.Errorf("cluster: job wants %d peers, %d registered", max(want, min), len(peers))
	}
	peers = peers[:want]
	if err := validateJob(&ts, want); err != nil {
		return nil, err
	}
	// Resolve the vertex count here too: a bad graph spec (or more peers
	// than vertices) fails fast with a direct error instead of a peer's
	// relayed one. Shardable families answer from the sharder — the
	// coordinator never materializes their graphs.
	var n int
	if sh, err := gs.Sharder(); err != nil {
		return nil, err
	} else if sh != nil {
		n = sh.N
	} else {
		g, err := gs.Build()
		if err != nil {
			return nil, err
		}
		n = g.N()
		if ts.Kind != spec.KindSweep {
			// One line per job here; the peers themselves only warn the
			// first time they meet the family.
			log.Printf("cluster: graph family %q has no sharded builder; peers build it in full", gs.Normalized().Family)
		}
	}
	if ts.Kind == spec.KindSweep {
		return c.runSweep(ctx, gs, ts, peers, n)
	}
	if want > n {
		return nil, fmt.Errorf("cluster: %d peers over %d vertices: every peer must own a vertex", want, n)
	}

	// Prepare/ready/start handshake, sequentially: dispatch the job, gather
	// every peer's fresh mesh listener, then release them into the mesh.
	var firstErr error
	prepared := 0
	for p, pc := range peers {
		if err := pc.enc.Encode(ctrlMsg{Type: msgPrepare, Peer: p, Peers: want, Graph: &gs, Task: &ts, Sync: rps}); err != nil {
			firstErr = fmt.Errorf("cluster: peer %d: send prepare: %w", p, err)
			c.drop(pc)
			break
		}
		prepared++
	}
	addrs := make([]string, prepared)
	resident := make([]int64, prepared)
	alive := make([]bool, prepared)
	for p, pc := range peers[:prepared] {
		var m ctrlMsg
		if err := pc.rd.next(&m); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: peer %d: await ready: %w", p, err)
			}
			c.drop(pc)
			continue
		}
		alive[p] = true
		if m.Type != msgReady {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: peer %d: unexpected %q awaiting ready", p, m.Type)
			}
			continue
		}
		if m.Err != "" && firstErr == nil {
			firstErr = fmt.Errorf("cluster: peer %d: %s", p, m.Err)
		}
		addrs[p] = m.Mesh
		resident[p] = m.Resident
	}
	c.setResident(resident)
	if firstErr != nil {
		for p, pc := range peers[:prepared] {
			if alive[p] {
				pc.enc.Encode(ctrlMsg{Type: msgAbort}) // best effort; job is dead
			}
		}
		return nil, firstErr
	}

	bar := newFoldBarrier(want, &c.syncBatches)
	started := 0
	for p, pc := range peers {
		if err := pc.enc.Encode(ctrlMsg{Type: msgStart, Addrs: addrs}); err != nil {
			firstErr = fmt.Errorf("cluster: peer %d: send start: %w", p, err)
			c.drop(pc)
			// Peers 0..p-1 are already meshing; break the barrier so they
			// abort at round 0, and abort the unstarted rest outright.
			bar.fail(firstErr.Error())
			for _, rest := range peers[p+1:] {
				rest.enc.Encode(ctrlMsg{Type: msgAbort})
			}
			break
		}
		started++
	}

	// Collection: one goroutine per started peer answers its round syncs
	// with the barrier fold and terminates on its result message. Every
	// failure path — dropped peer, peer-reported error, ctx cancellation —
	// converges through bar.fail, which the healthy peers observe at their
	// next barrier and abort cleanly.
	stopCancel := context.AfterFunc(ctx, func() {
		bar.fail("cluster: run canceled: " + context.Cause(ctx).Error())
	})
	defer stopCancel()
	outs := make([]peerOutcome, started)
	var wg sync.WaitGroup
	for p, pc := range peers[:started] {
		wg.Add(1)
		go func(p int, pc *peerConn) {
			defer wg.Done()
			c.runPeer(p, pc, bar, &outs[p])
		}(p, pc)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return assemble(ts, outs)
}

// runPeer drives one peer's control connection through a job: fold each
// sync into the barrier, reply with the merged round report, stop at the
// peer's result. A peer-reported result error breaks the barrier too, so
// peers still mid-run (e.g. when this one failed mesh setup before its
// first report) abort instead of waiting for its reports forever.
func (c *Coordinator) runPeer(p int, pc *peerConn, bar *foldBarrier, out *peerOutcome) {
	fail := func(err error) {
		bar.fail(fmt.Sprintf("peer %d: %v", p, err))
		c.drop(pc)
		out.err = err
	}
	for {
		var m ctrlMsg
		if err := pc.rd.next(&m); err != nil {
			fail(fmt.Errorf("control connection: %w", err))
			return
		}
		switch m.Type {
		case msgSync:
			if len(m.Reports) == 0 {
				fail(errors.New("sync without reports"))
				return
			}
			merged := bar.sync(m.Reports)
			if err := pc.enc.Encode(ctrlMsg{Type: msgRound, Reports: merged}); err != nil {
				fail(fmt.Errorf("send merged reports: %w", err))
				return
			}
		case msgResult:
			out.result = m.Result
			out.stats = m.Stats
			out.auth = m.Authoritative
			out.errS = m.Err
			c.roundWait.Add(m.WaitNs)
			if m.Err != "" {
				bar.fail(fmt.Sprintf("peer %d: %s", p, m.Err))
			}
			return
		default:
			fail(fmt.Errorf("unexpected control message %q mid-run", m.Type))
			return
		}
	}
}

// assemble folds the per-peer outcomes into the single-process-equivalent
// result: the authoritative (source-owning) peer's result JSON, with the
// stats — and, for walks, the stats-derived fields — replaced by the
// cluster-wide merge.
func assemble(ts spec.TaskSpec, outs []peerOutcome) (any, error) {
	// Error precedence: the authoritative peer's own failure is the run's
	// error (it matches the single-process error text); any other peer's
	// failure aborts with attribution.
	for p := range outs {
		if outs[p].auth && outs[p].errS != "" {
			return nil, fmt.Errorf("cluster: %s", outs[p].errS)
		}
	}
	for p := range outs {
		o := &outs[p]
		switch {
		case o.err != nil:
			return nil, fmt.Errorf("cluster: peer %d: %w", p, o.err)
		case o.errS != "":
			return nil, fmt.Errorf("cluster: peer %d: %s", p, o.errS)
		case o.stats == nil:
			return nil, fmt.Errorf("cluster: peer %d returned no engine stats", p)
		}
	}
	sts := make([]congest.Stats, len(outs))
	var auth json.RawMessage
	for p := range outs {
		sts[p] = *outs[p].stats
		if outs[p].auth {
			auth = outs[p].result
		}
	}
	if auth == nil {
		return nil, errors.New("cluster: no peer claimed the source (protocol bug)")
	}
	merged := congest.MergeStats(sts)
	if ts.Kind == spec.KindWalk {
		var r core.TokenWalkResult
		if err := json.Unmarshal(auth, &r); err != nil {
			return nil, fmt.Errorf("cluster: decode walk result: %w", err)
		}
		// Rounds is lockstep-identical everywhere, but Retries counts
		// bounced volatile sends wherever they happened — sum over peers.
		r.Rounds = merged.Rounds
		r.Retries = merged.DroppedSends
		r.Stats = &merged
		return &r, nil
	}
	var r core.Result
	if err := json.Unmarshal(auth, &r); err != nil {
		return nil, fmt.Errorf("cluster: decode %s result: %w", ts.Kind, err)
	}
	r.Stats = &merged
	return &r, nil
}
