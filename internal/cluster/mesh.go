package cluster

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/congest/frame"
)

// meshLink is one open data-plane connection to a remote peer: buffered
// writes (one explicit flush per round) and a frame reader whose buffers are
// reused across rounds.
type meshLink struct {
	conn net.Conn
	bw   *bufio.Writer
	w    *frame.Writer
	r    *frame.Reader
}

func newMeshLink(conn net.Conn) *meshLink {
	bw := bufio.NewWriter(conn)
	return &meshLink{
		conn: conn,
		bw:   bw,
		w:    frame.NewWriter(bw),
		r:    frame.NewReader(bufio.NewReader(conn)),
	}
}

func closeLinks(links []*meshLink) {
	for _, l := range links {
		if l != nil {
			l.conn.Close()
		}
	}
}

// setupMesh establishes this peer's full mesh: dial every lower-indexed
// peer (identifying ourselves with the preamble), then accept every
// higher-indexed one (identified by theirs). Dials succeed as soon as the
// remote listener exists — the TCP handshake does not wait for Accept — so
// the sequential dial-then-accept order cannot deadlock across peers.
func setupMesh(self int, addrs []string, ln net.Listener) ([]*meshLink, error) {
	links := make([]*meshLink, len(addrs))
	fail := func(err error) ([]*meshLink, error) {
		closeLinks(links)
		return nil, err
	}
	for q := 0; q < self; q++ {
		conn, err := net.DialTimeout("tcp", addrs[q], meshDialTimeout)
		if err != nil {
			return fail(fmt.Errorf("cluster: peer %d: dial mesh peer %d at %s: %w", self, q, addrs[q], err))
		}
		if err := writeMeshPreamble(conn, self); err != nil {
			conn.Close()
			return fail(fmt.Errorf("cluster: peer %d: mesh preamble to peer %d: %w", self, q, err))
		}
		links[q] = newMeshLink(conn)
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(meshSetupBudget))
	}
	for q := self + 1; q < len(addrs); q++ {
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("cluster: peer %d: accept mesh connection: %w", self, err))
		}
		id, err := readMeshPreamble(conn)
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("cluster: peer %d: read mesh preamble: %w", self, err))
		}
		if id <= self || id >= len(addrs) || links[id] != nil {
			conn.Close()
			return fail(fmt.Errorf("cluster: peer %d: unexpected mesh preamble id %d", self, id))
		}
		links[id] = newMeshLink(conn)
	}
	return links, nil
}

// meshExchanger is the congest.Exchanger over the TCP mesh: one frame per
// remote peer per round, each way. A goroutine writes (and flushes) every
// outbound frame while the caller reads one inbound frame per link — the
// concurrent write/read split that keeps two peers pushing large frames at
// each other from deadlocking on full TCP buffers.
type meshExchanger struct {
	self  int
	links []*meshLink // indexed by peer; nil at self
	in    [][]frame.Record
}

func (e *meshExchanger) Exchange(round int, out [][]frame.Record) ([][]frame.Record, error) {
	done := make(chan error, 1)
	go func() {
		for q, l := range e.links {
			if l == nil {
				continue
			}
			if _, err := l.w.WriteFrame(round, e.self, out[q]); err != nil {
				done <- fmt.Errorf("to peer %d: %w", q, err)
				return
			}
			if err := l.bw.Flush(); err != nil {
				done <- fmt.Errorf("to peer %d: flush: %w", q, err)
				return
			}
		}
		done <- nil
	}()
	if e.in == nil {
		e.in = make([][]frame.Record, len(e.links))
	}
	fail := func(err error) ([][]frame.Record, error) {
		// Unblock the writer goroutine (its Write fails once the conns
		// close) before surfacing the read-side error.
		closeLinks(e.links)
		<-done
		return nil, err
	}
	for q, l := range e.links {
		if l == nil {
			e.in[q] = nil
			continue
		}
		r, p, recs, _, err := l.r.ReadFrame()
		if err != nil {
			return fail(fmt.Errorf("cluster: read frame from peer %d: %w", q, err))
		}
		if r != round || p != q {
			return fail(fmt.Errorf("cluster: peer %d sent frame (round %d, peer %d), want (round %d, peer %d)", q, r, p, round, q))
		}
		// recs aliases the link reader's buffer: valid until the next
		// ReadFrame on this link, i.e. until the next round's exchange —
		// exactly the congest.Exchanger lifetime contract.
		e.in[q] = recs
	}
	if err := <-done; err != nil {
		return nil, fmt.Errorf("cluster: mesh write: %w", err)
	}
	return e.in, nil
}
