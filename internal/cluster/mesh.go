package cluster

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/congest/frame"
)

// meshBufBytes sizes each link's buffered writer and reader: large enough
// that a typical round's frame reaches the kernel in one syscall, small
// enough to be irrelevant against the graph itself.
const meshBufBytes = 64 << 10

// meshLink is one open data-plane connection to a remote peer: buffered
// writes (one explicit flush per round) and a frame reader whose buffers
// are reused across rounds.
type meshLink struct {
	conn net.Conn
	bw   *bufio.Writer
	r    *frame.Reader
}

func newMeshLink(conn net.Conn) *meshLink {
	if tc, ok := conn.(interface{ SetNoDelay(bool) error }); ok {
		// Go's default, but set explicitly: frames flush exactly once per
		// round and the next round blocks on their arrival, so Nagle-style
		// coalescing could only ever add latency.
		tc.SetNoDelay(true)
	}
	return &meshLink{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, meshBufBytes),
		r:    frame.NewReader(bufio.NewReaderSize(conn, meshBufBytes)),
	}
}

func closeLinks(links []*meshLink) {
	for _, l := range links {
		if l != nil {
			l.conn.Close()
		}
	}
}

// setupMesh establishes this peer's full mesh: dial every lower-indexed
// peer (identifying ourselves with the preamble), then accept every
// higher-indexed one (identified by theirs). Dials succeed as soon as the
// remote listener exists — the TCP handshake does not wait for Accept — so
// the sequential dial-then-accept order cannot deadlock across peers.
func setupMesh(self int, addrs []string, ln net.Listener) ([]*meshLink, error) {
	links := make([]*meshLink, len(addrs))
	fail := func(err error) ([]*meshLink, error) {
		closeLinks(links)
		return nil, err
	}
	for q := 0; q < self; q++ {
		conn, err := net.DialTimeout("tcp", addrs[q], meshDialTimeout)
		if err != nil {
			return fail(fmt.Errorf("cluster: peer %d: dial mesh peer %d at %s: %w", self, q, addrs[q], err))
		}
		conn = wrapConn(conn)
		if err := writeMeshPreamble(conn, self); err != nil {
			conn.Close()
			return fail(fmt.Errorf("cluster: peer %d: mesh preamble to peer %d: %w", self, q, err))
		}
		links[q] = newMeshLink(conn)
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(meshSetupBudget))
	}
	for q := self + 1; q < len(addrs); q++ {
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("cluster: peer %d: accept mesh connection: %w", self, err))
		}
		conn = wrapConn(conn)
		id, err := readMeshPreamble(conn)
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("cluster: peer %d: read mesh preamble: %w", self, err))
		}
		if id <= self || id >= len(addrs) || links[id] != nil {
			conn.Close()
			return fail(fmt.Errorf("cluster: peer %d: unexpected mesh preamble id %d", self, id))
		}
		links[id] = newMeshLink(conn)
	}
	return links, nil
}

// inFrame is one decoded inbound frame, handed from a link's reader
// goroutine to the engine.
type inFrame struct {
	round, peer int
	recs        []frame.Record
	err         error
}

// linkWriter owns the write side of one link. The engine encodes a round's
// frame synchronously — the source records are reused the moment Exchange
// returns — then hands the bytes to the goroutine, which pushes them onto
// the wire while the engine moves on to reading inbound frames and
// stepping the next round. At most one write is in flight per link; its
// ack is collected before the encode buffer is reused.
type linkWriter struct {
	ch      chan []byte
	ack     chan error
	pending bool
	buf     []byte
}

// linkReader owns the read side of one link: the goroutine decodes frames
// ahead of the engine into three rotating record buffers. Three suffice —
// at any moment one buffer is held by the engine, one sits decoded in the
// channel, and one is being filled off the wire.
type linkReader struct {
	ch   chan inFrame
	bufs [3][]frame.Record
}

// meshExchanger is the pipelined congest.Exchanger over the TCP mesh: one
// frame per remote peer per round, each way, with per-link writer and
// reader goroutines so serialization, syscalls and wire latency overlap
// the engine's compute. Outbound frames start flowing the moment the step
// phase ends; inbound frames for the next round are read off the wire
// while the engine is still delivering the current one.
type meshExchanger struct {
	self   int
	links  []*meshLink // indexed by peer; nil at self
	wr     []*linkWriter
	rd     []*linkReader
	in     [][]frame.Record
	done   chan struct{}
	closed bool
	// waitNs accumulates the time Exchange spent blocked on inbound frames
	// (the lmtd_cluster_round_wait_ns_total metric): near zero when the
	// pipeline hides the wire, one RTT per round when it cannot.
	waitNs int64
}

func newMeshExchanger(self int, links []*meshLink) *meshExchanger {
	e := &meshExchanger{
		self:  self,
		links: links,
		wr:    make([]*linkWriter, len(links)),
		rd:    make([]*linkReader, len(links)),
		in:    make([][]frame.Record, len(links)),
		done:  make(chan struct{}),
	}
	for q, l := range links {
		if l == nil {
			continue
		}
		w := &linkWriter{ch: make(chan []byte, 1), ack: make(chan error, 1)}
		e.wr[q] = w
		go writeLoop(l, w, e.done)
		r := &linkReader{ch: make(chan inFrame, 1)}
		e.rd[q] = r
		go readLoop(l, r, e.done)
	}
	return e
}

func writeLoop(l *meshLink, w *linkWriter, done chan struct{}) {
	for {
		select {
		case b := <-w.ch:
			_, err := l.bw.Write(b)
			if err == nil {
				err = l.bw.Flush()
			}
			w.ack <- err // cap 1 and at most one write in flight: never blocks
			if err != nil {
				return
			}
		case <-done:
			return
		}
	}
}

func readLoop(l *meshLink, r *linkReader, done chan struct{}) {
	for i := 0; ; i++ {
		slot := i % len(r.bufs)
		round, peer, recs, _, err := l.r.ReadFrameAppend(r.bufs[slot][:0])
		r.bufs[slot] = recs
		select {
		case r.ch <- inFrame{round: round, peer: peer, recs: recs, err: err}:
		case <-done:
			return
		}
		if err != nil {
			return
		}
	}
}

// Exchange launches this round's writes, then collects one inbound frame
// per link in ascending peer order. The returned slices are the reader
// goroutines' rotating buffers: the slot handed out for round r is not
// refilled before the engine takes round r+1's frame — exactly the
// congest.Exchanger lifetime contract.
func (e *meshExchanger) Exchange(round int, out [][]frame.Record) ([][]frame.Record, error) {
	for q, w := range e.wr {
		if w == nil {
			continue
		}
		if w.pending {
			if err := <-w.ack; err != nil {
				return e.fail(fmt.Errorf("cluster: mesh write to peer %d: %w", q, err))
			}
		}
		w.buf = frame.Append(w.buf[:0], round, e.self, out[q])
		w.ch <- w.buf // cap 1, writer idle after the ack: never blocks
		w.pending = true
	}
	start := time.Now()
	for q, r := range e.rd {
		if r == nil {
			e.in[q] = nil
			continue
		}
		f := <-r.ch
		if f.err != nil {
			return e.fail(fmt.Errorf("cluster: read frame from peer %d: %w", q, f.err))
		}
		if f.round != round || f.peer != q {
			return e.fail(fmt.Errorf("cluster: peer %d sent frame (round %d, peer %d), want (round %d, peer %d)", q, f.round, f.peer, round, q))
		}
		e.in[q] = f.recs
	}
	e.waitNs += time.Since(start).Nanoseconds()
	return e.in, nil
}

func (e *meshExchanger) fail(err error) ([][]frame.Record, error) {
	e.Close()
	return nil, err
}

// Close tears down the mesh: stops the per-link goroutines and closes the
// connections. Idempotent; the exchanger is unusable afterwards. Must be
// called from the engine's goroutine (like Exchange).
func (e *meshExchanger) Close() {
	if !e.closed {
		e.closed = true
		close(e.done)
	}
	closeLinks(e.links)
}
