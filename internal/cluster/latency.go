package cluster

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// testConnWrap, when set, wraps every connection the cluster package opens
// or accepts — control and mesh, both directions — before any bytes flow.
// Benchmarks install a delayWrites factory to simulate long-haul links;
// outside tests it stays unset. Install and clear it only while no cluster
// is running.
var testConnWrap atomic.Value // of func(net.Conn) net.Conn

func setTestConnWrap(f func(net.Conn) net.Conn) {
	testConnWrap.Store(f)
}

func wrapConn(c net.Conn) net.Conn {
	if f, _ := testConnWrap.Load().(func(net.Conn) net.Conn); f != nil {
		return f(c)
	}
	return c
}

// delayConn delays every Write by a fixed one-way latency while preserving
// write order — a deterministic long-haul link for benchmarks and tests:
// no jitter, no reordering, no loss. Reads pass through untouched, so
// wrapping both ends of a connection pair yields a symmetric round trip of
// 2×oneWay. Writes are acknowledged immediately (the bytes are queued, as
// in a real send buffer); a forwarder goroutine releases each chunk onto
// the underlying connection once its delay elapses.
type delayConn struct {
	net.Conn
	oneWay time.Duration
	ch     chan delayedWrite
	done   chan struct{}
	once   sync.Once
	err    atomic.Value // of error: the first forwarder write failure
}

type delayedWrite struct {
	b  []byte
	at time.Time
}

// delayQueueCap bounds the in-flight chunk queue; a full queue applies
// backpressure to Write, like a full send buffer would.
const delayQueueCap = 256

// delayWrites wraps c so every write arrives oneWay later.
func delayWrites(c net.Conn, oneWay time.Duration) net.Conn {
	d := &delayConn{
		Conn:   c,
		oneWay: oneWay,
		ch:     make(chan delayedWrite, delayQueueCap),
		done:   make(chan struct{}),
	}
	go d.forward()
	return d
}

func (d *delayConn) forward() {
	for {
		select {
		case w := <-d.ch:
			if wait := time.Until(w.at); wait > 0 {
				time.Sleep(wait)
			}
			if d.err.Load() == nil {
				if _, err := d.Conn.Write(w.b); err != nil {
					// Keep draining so blocked writers unwedge; they see
					// the error on their next Write.
					d.err.Store(err)
				}
			}
		case <-d.done:
			return
		}
	}
}

func (d *delayConn) Write(p []byte) (int, error) {
	if err, _ := d.err.Load().(error); err != nil {
		return 0, err
	}
	select {
	case <-d.done:
		return 0, net.ErrClosed
	default:
	}
	w := delayedWrite{b: append([]byte(nil), p...), at: time.Now().Add(d.oneWay)}
	select {
	case d.ch <- w:
		return len(p), nil
	case <-d.done:
		return 0, net.ErrClosed
	}
}

func (d *delayConn) Close() error {
	d.once.Do(func() { close(d.done) })
	return d.Conn.Close()
}
