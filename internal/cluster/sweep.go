package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// Distributed sweeps. A sweep job has no data-plane mesh: each per-source
// run fits on one peer (which executes it on its warm core.SweepPool), so
// the cluster only fans sources out. The coordinator resolves the canonical
// source list exactly as the single-process sweep does, partitions it on
// the same fixed sweep.ChunkSize grid, dispatches chunks to peers
// dynamically (a shared counter — fast peers take more chunks), slots each
// chunk's results back at its canonical indices, and folds them with
// core.MergeSweep. Per-source seeds depend only on (base seed, source), so
// the assembled MultiResult is reflect.DeepEqual to the single-process
// sweep for every peer count, including a single peer.

// runSweep executes one sweep job over the registered peers. The peers
// receive the task with Sources/Sample cleared — the source selection lives
// only in the chunks — so every chunk of one sweep hits the same warm pool.
func (c *Coordinator) runSweep(ctx context.Context, gs spec.GraphSpec, ts spec.TaskSpec, peers []*peerConn, n int) (any, error) {
	sources, err := sweep.ResolveSources(n, ts.Seed, ts.Sources, ts.Sample)
	if err != nil {
		return nil, err
	}
	pts := ts
	pts.Sources, pts.Sample = nil, 0
	want := len(peers)

	// Prepare/ready/start handshake, as in the engine path but meshless:
	// ready carries no listener address, only the resident graph bytes.
	var firstErr error
	prepared := 0
	for p, pc := range peers {
		if err := pc.enc.Encode(ctrlMsg{Type: msgPrepare, Peer: p, Peers: want, Graph: &gs, Task: &pts}); err != nil {
			firstErr = fmt.Errorf("cluster: peer %d: send prepare: %w", p, err)
			c.drop(pc)
			break
		}
		prepared++
	}
	resident := make([]int64, prepared)
	alive := make([]bool, prepared)
	for p, pc := range peers[:prepared] {
		var m ctrlMsg
		if err := pc.rd.next(&m); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: peer %d: await ready: %w", p, err)
			}
			c.drop(pc)
			continue
		}
		alive[p] = true
		if m.Type != msgReady {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: peer %d: unexpected %q awaiting ready", p, m.Type)
			}
			continue
		}
		if m.Err != "" && firstErr == nil {
			firstErr = fmt.Errorf("cluster: peer %d: %s", p, m.Err)
		}
		resident[p] = m.Resident
	}
	c.setResident(resident)
	if firstErr != nil {
		for p, pc := range peers[:prepared] {
			if alive[p] {
				pc.enc.Encode(ctrlMsg{Type: msgAbort}) // best effort; job is dead
			}
		}
		return nil, firstErr
	}
	started := 0
	for p, pc := range peers {
		if err := pc.enc.Encode(ctrlMsg{Type: msgStart}); err != nil {
			firstErr = fmt.Errorf("cluster: peer %d: send start: %w", p, err)
			c.drop(pc)
			for _, rest := range peers[p+1:] {
				rest.enc.Encode(ctrlMsg{Type: msgAbort})
			}
			break
		}
		started++
	}

	// Chunk dispatch: one goroutine per started peer claims chunk indices
	// from the shared counter and writes results into the canonical slots.
	// Any failure — a dropped peer, a peer-reported chunk error, ctx
	// cancellation — stops further dispatch; in-flight chunks drain first.
	nchunks := (len(sources) + sweep.ChunkSize - 1) / sweep.ChunkSize
	results := make([]*core.Result, len(sources))
	errs := make([]error, nchunks)
	var next atomic.Int64
	var failed atomic.Bool
	stopCancel := context.AfterFunc(ctx, func() { failed.Store(true) })
	defer stopCancel()
	var wg sync.WaitGroup
	for p, pc := range peers[:started] {
		wg.Add(1)
		go func(p int, pc *peerConn) {
			defer wg.Done()
			c.sweepPeer(p, pc, sources, results, errs, &next, &failed)
		}(p, pc)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// Error precedence mirrors sweep.Pool: the lowest-index failed chunk
	// reports, so the error text is peer-count invariant modulo attribution.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return core.MergeSweep(sources, results), nil
}

// sweepPeer drives one peer through the chunk loop: claim a chunk, send it,
// decode the per-source results into the canonical slots, repeat until the
// sources run out or the job fails; then release the peer with done.
// Transport failures drop the peer; a peer-reported chunk error leaves it
// registered (it answered — the job failed, not the peer).
func (c *Coordinator) sweepPeer(p int, pc *peerConn, sources []int, results []*core.Result, errs []error, next *atomic.Int64, failed *atomic.Bool) {
	fail := func(ci int, err error, dead bool) {
		errs[ci] = err
		failed.Store(true)
		if dead {
			c.drop(pc)
		}
	}
	for !failed.Load() {
		ci := int(next.Add(1) - 1)
		lo := ci * sweep.ChunkSize
		if lo >= len(sources) {
			break
		}
		hi := min(lo+sweep.ChunkSize, len(sources))
		if err := pc.enc.Encode(ctrlMsg{Type: msgChunk, Sources: sources[lo:hi]}); err != nil {
			fail(ci, fmt.Errorf("cluster: peer %d: send chunk: %w", p, err), true)
			return
		}
		var m ctrlMsg
		if err := pc.rd.next(&m); err != nil {
			fail(ci, fmt.Errorf("cluster: peer %d: await chunk result: %w", p, err), true)
			return
		}
		if m.Type != msgChunkRes {
			fail(ci, fmt.Errorf("cluster: peer %d: unexpected %q awaiting chunk result", p, m.Type), true)
			return
		}
		if m.Err != "" {
			fail(ci, fmt.Errorf("cluster: peer %d: %s", p, m.Err), false)
			break
		}
		var rs []*core.Result
		if err := json.Unmarshal(m.Result, &rs); err != nil {
			fail(ci, fmt.Errorf("cluster: peer %d: decode chunk result: %w", p, err), true)
			return
		}
		if len(rs) != hi-lo {
			fail(ci, fmt.Errorf("cluster: peer %d: chunk of %d sources answered with %d results", p, hi-lo, len(rs)), true)
			return
		}
		copy(results[lo:hi], rs)
		c.chunks.Add(1)
	}
	pc.enc.Encode(ctrlMsg{Type: msgDone}) // best effort: back to idle
}

// sweepMode resolves the sweep task's per-source algorithm — kept in sync
// with the internal/service mapping so a peer's pool computes exactly what
// the single-process runner would.
func sweepMode(mode string) (core.Mode, error) {
	switch mode {
	case "", "approx":
		return core.ApproxLocal, nil
	case "exact":
		return core.ExactLocal, nil
	case "mixing":
		return core.MixTime, nil
	default:
		return 0, fmt.Errorf("cluster: unknown sweep mode %q", mode)
	}
}

// sweepConfig renders the task as the pool's core.Config exactly as the
// service's sweep runner does: the mode/β/ε literals plus every engine knob
// from taskOptions, with the service's ε default replicated. Equal configs
// here and in-process are what make per-source runs byte-identical.
func sweepConfig(t spec.TaskSpec) (core.Config, error) {
	if t.Eps == 0 {
		t.Eps = spec.DefaultEps
	}
	mode, err := sweepMode(t.Mode)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{Mode: mode, Beta: t.Beta, Eps: t.Eps}
	for _, op := range taskOptions(t) {
		op(&cfg)
	}
	return cfg, nil
}

// serveSweep is the peer half of the chunk loop: answer each chunk with the
// pool's results for exactly those sources, until done (or abortive
// failure). Chunk-local failures are reported in the chunkres message and
// keep the loop serving — the coordinator decides whether to continue.
func serveSweep(enc *json.Encoder, rd *ctrlReader, pool *core.SweepPool, poolErr error) error {
	for {
		var m ctrlMsg
		if err := rd.next(&m); err != nil {
			return fmt.Errorf("cluster: await chunk: %w", err)
		}
		switch m.Type {
		case msgDone:
			return nil
		case msgChunk:
			res := ctrlMsg{Type: msgChunkRes}
			switch {
			case poolErr != nil:
				res.Err = poolErr.Error()
			case len(m.Sources) == 0:
				res.Err = "cluster: chunk without sources"
			default:
				out, err := pool.Sweep(core.SweepOptions{Sources: m.Sources})
				if err != nil {
					res.Err = err.Error()
				} else if b, err := json.Marshal(out.Results); err != nil {
					res.Err = fmt.Sprintf("cluster: encode chunk result: %v", err)
				} else {
					res.Result = b
				}
			}
			if err := enc.Encode(res); err != nil {
				return fmt.Errorf("cluster: send chunk result: %w", err)
			}
		default:
			return fmt.Errorf("cluster: unexpected control message %q serving sweep chunks", m.Type)
		}
	}
}
