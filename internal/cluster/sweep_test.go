package cluster

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// refSweep computes the single-process reference sweep with exactly the
// config a peer derives from the task spec (see sweepConfig).
func refSweep(t *testing.T, beta, eps float64, seed int64, o core.SweepOptions) *core.MultiResult {
	t.Helper()
	g, err := graphSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Mode: core.ApproxLocal, Beta: beta, Eps: eps}
	core.WithSeed(seed)(&cfg)
	want, err := core.GraphLocalMixingTimeSweep(g, cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestClusterSweepMatchesSingleProcess is the distributed-sweep determinism
// contract over real TCP: for every peer count, the coordinator's chunked
// fan-out assembles a MultiResult DeepEqual to the single-process sweep —
// all sources, a footnote-6 sample, and an explicit source subset.
func TestClusterSweepMatchesSingleProcess(t *testing.T) {
	for _, peers := range []int{1, 2, 3} {
		c := startCluster(t, peers)
		ctx := testCtx(t)

		// RoundsPerSync is inert for sweeps (chunks carry no barrier), but
		// the spec must be accepted at every cadence with identical output.
		want := refSweep(t, 4, 0.05, 5, core.SweepOptions{})
		for _, rps := range []int{0, 1, 4, 8} {
			got, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindSweep, Beta: 4, Eps: 0.05, Seed: 5,
				Cluster: &spec.ClusterSpec{RoundsPerSync: rps}})
			if err != nil {
				t.Fatalf("%d peers rps=%d: %v", peers, rps, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%d-peer rps=%d sweep differs from single-process:\n  cluster %+v\n  direct  %+v", peers, rps, got, want)
			}
		}

		got, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindSweep, Beta: 4, Eps: 0.05, Seed: 5, Sample: 7})
		if err != nil {
			t.Fatalf("%d peers, sample: %v", peers, err)
		}
		want = refSweep(t, 4, 0.05, 5, core.SweepOptions{Sample: 7})
		if len(want.Sources) != 7 {
			t.Fatalf("sample reference drew %d sources, want 7", len(want.Sources))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d-peer sampled sweep differs from single-process", peers)
		}

		srcs := []int{2, 9, 17}
		got, err = c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindSweep, Beta: 4, Eps: 0.05, Seed: 5, Sources: srcs})
		if err != nil {
			t.Fatalf("%d peers, explicit sources: %v", peers, err)
		}
		want = refSweep(t, 4, 0.05, 5, core.SweepOptions{Sources: srcs})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d-peer explicit-source sweep differs from single-process", peers)
		}
	}
}

// TestClusterSweepCounters: the coordinator accounts dispatched chunks on
// the sweep.ChunkSize grid and records each peer's resident graph bytes
// (the full build — sweep peers never shard).
func TestClusterSweepCounters(t *testing.T) {
	c := startCluster(t, 2)
	ctx := testCtx(t)
	if _, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindSweep, Beta: 4, Eps: 0.05, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	// n = 20 sources on the ChunkSize = 8 grid is exactly 3 chunks.
	if got := c.SweepChunks(); got != 3 {
		t.Fatalf("SweepChunks = %d, want 3", got)
	}
	g, err := graphSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := c.PeerResidentBytes()
	if len(res) != 2 {
		t.Fatalf("PeerResidentBytes reported %d peers, want 2", len(res))
	}
	for p, r := range res {
		if r != g.ResidentBytes() {
			t.Errorf("peer %d resident = %d, want the full build's %d", p, r, g.ResidentBytes())
		}
	}
}

// TestClusterSweepErrorPropagates: a sweep whose per-source runs cannot even
// configure (β < 1) fails with the peer's error and leaves the cluster
// serving.
func TestClusterSweepErrorPropagates(t *testing.T) {
	c := startCluster(t, 2)
	ctx := testCtx(t)
	_, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindSweep, Beta: 0.2, Eps: 0.05, Seed: 5})
	if err == nil || !strings.Contains(err.Error(), "β") {
		t.Fatalf("error %v, want a β validation failure", err)
	}
	if _, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindSweep, Beta: 4, Eps: 0.05, Seed: 5}); err != nil {
		t.Fatalf("cluster unusable after failed sweep: %v", err)
	}
}

// TestClusterShardResidentBytes: on a shardable family at an anchor size,
// each engine peer builds only its CSR shard, and the resident bytes it
// reports stay within 2× of full-build/P — while the sharded run's result
// remains DeepEqual to the single-process one.
func TestClusterShardResidentBytes(t *testing.T) {
	const peers = 3
	torus := spec.GraphSpec{Family: "torus", Rows: 64, Cols: 64}
	c := startCluster(t, peers)
	ctx := testCtx(t)
	got, err := c.Run(ctx, torus, spec.TaskSpec{Kind: spec.KindWalk, Source: 70, Steps: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g, err := torus.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.TokenWalk(g, 70, 8, core.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	maskStats(got.(*core.TokenWalkResult).Stats)
	maskStats(want.Stats)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shard-built walk differs from single-process:\n  cluster %+v\n  direct  %+v", got, want)
	}
	full := g.ResidentBytes()
	res := c.PeerResidentBytes()
	if len(res) != peers {
		t.Fatalf("PeerResidentBytes reported %d peers, want %d", len(res), peers)
	}
	for p, r := range res {
		if r <= 0 || r >= full {
			t.Errorf("peer %d resident = %d bytes, want in (0, %d)", p, r, full)
		}
		if cap := 2 * full / peers; r > cap {
			t.Errorf("peer %d resident = %d bytes, want ≤ 2·full/P = %d", p, r, cap)
		}
	}
}

// TestClusterSweepWarmPool: repeated sweeps of one spec reuse the peers'
// warm pools and graphs, and repeat results stay identical.
func TestClusterSweepWarmPool(t *testing.T) {
	c := startCluster(t, 2)
	ctx := testCtx(t)
	var prev any
	for i := 0; i < 3; i++ {
		got, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindSweep, Beta: 4, Eps: 0.05, Seed: 5, Sample: 9})
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
		if prev != nil && !reflect.DeepEqual(got, prev) {
			t.Fatalf("sweep %d result drifted", i)
		}
		prev = got
	}
	if got, want := c.SweepChunks(), int64(6); got != want {
		t.Fatalf("SweepChunks = %d, want %d (3 sweeps × 2 chunks of 9 sources)", got, want)
	}
}

// TestServiceClusterSweepSharesCache: a ClusterSpec-carrying sweep through
// the service matches the in-process run, and — Cluster being schedule-only
// — the identical plain request is served from the shared result cache.
func TestServiceClusterSweepSharesCache(t *testing.T) {
	c := startCluster(t, 2)
	svc := service.New(service.Options{Cluster: c})
	ctx := testCtx(t)
	req := service.Request{Graph: graphSpec,
		Task: spec.TaskSpec{Kind: spec.KindSweep, Beta: 4, Eps: 0.05, Seed: 5,
			Cluster: &spec.ClusterSpec{}}}
	resp, err := svc.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want := refSweep(t, 4, 0.05, 5, core.SweepOptions{})
	if !reflect.DeepEqual(resp.Result, want) {
		t.Fatalf("service cluster sweep differs from direct sweep:\n  svc  %+v\n  core %+v", resp.Result, want)
	}
	req.Task.Cluster = nil
	resp2, err := svc.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.ResultHit {
		t.Fatal("in-process repeat of a cluster-computed sweep missed the result cache")
	}
	if m := svc.Metrics(); m.ClusterRuns != 1 {
		t.Fatalf("ClusterRuns = %d, want 1", m.ClusterRuns)
	}
}

// TestClusterSweepSinglePeerSpec: a sweep may name a single-peer cluster
// explicitly, while engine kinds still need two.
func TestClusterSweepSinglePeerSpec(t *testing.T) {
	c := startCluster(t, 2)
	ctx := testCtx(t)
	got, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindSweep, Beta: 4, Eps: 0.05, Seed: 5,
		Sources: []int{0, 11}, Cluster: &spec.ClusterSpec{Peers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := refSweep(t, 4, 0.05, 5, core.SweepOptions{Sources: []int{0, 11}})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("1-of-2-peer sweep differs from single-process")
	}
	if _, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindWalk, Steps: 4,
		Cluster: &spec.ClusterSpec{Peers: 1}}); err == nil || !strings.Contains(err.Error(), "peers") {
		t.Fatalf("1-peer walk: error %v, want a peer-count rejection", err)
	}
}

// TestResolveSourcesMatchesPool pins the exported resolution the
// coordinator partitions on to the one sweep.Pool uses internally: same
// explicit copy, same deterministic sample.
func TestResolveSourcesMatchesPool(t *testing.T) {
	all, err := sweep.ResolveSources(20, 5, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 || all[0] != 0 || all[19] != 19 {
		t.Fatalf("all-vertices resolution = %v", all)
	}
	s1, err := sweep.ResolveSources(20, 5, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sweep.ResolveSources(20, 5, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) || len(s1) != 7 {
		t.Fatalf("sample resolution not deterministic: %v vs %v", s1, s2)
	}
	if _, err := sweep.ResolveSources(20, 5, []int{25}, 0); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}
