package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/spec"
)

// Serve registers this process as one cluster peer and serves jobs until
// the coordinator closes the connection (returns nil) or the context is
// canceled (returns the context error). Each prepared engine job opens a
// fresh data-plane listener, meshes with the other peers, drives the engine
// over this peer's vertex shard, and reports the result back on the control
// connection; sweep jobs skip the mesh and serve source chunks from a warm
// sweep pool instead. Graphs and sweep pools stay cached across jobs, so
// repeated jobs on one graph pay construction once.
func Serve(ctx context.Context, coordAddr string) error {
	d := net.Dialer{Timeout: ctrlDialTimeout}
	conn, err := d.DialContext(ctx, "tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("cluster: dial coordinator %s: %w", coordAddr, err)
	}
	conn = wrapConn(conn)
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	enc, rd := json.NewEncoder(conn), newCtrlReader(conn)
	if err := enc.Encode(ctrlMsg{Type: msgHello}); err != nil {
		return fmt.Errorf("cluster: register with coordinator: %w", err)
	}
	ps := &peerState{graphs: map[string]*graph.Graph{}, pools: map[string]*core.SweepPool{}, warned: map[string]bool{}}
	for {
		var m ctrlMsg
		if err := rd.next(&m); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // coordinator shut down: a clean exit
			}
			return fmt.Errorf("cluster: control connection: %w", err)
		}
		if m.Type != msgPrepare {
			return fmt.Errorf("cluster: unexpected control message %q awaiting a job", m.Type)
		}
		if err := runJob(conn, enc, rd, ps, &m); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
	}
}

// peerState is one peer's job-to-job warm state: built graphs (full or this
// peer's shard) and sweep pools, keyed by the specs that produced them.
// Both caches are small and bounded — a peer serving many distinct specs
// resets them rather than growing without limit.
type peerState struct {
	graphs map[string]*graph.Graph
	pools  map[string]*core.SweepPool
	// warned remembers graph families already reported as non-shardable, so
	// the full-build fallback logs once per family, not once per job.
	warned map[string]bool
}

// peerCacheCap bounds each warm cache; exceeding it clears the cache (the
// next job rebuilds — correctness never depends on a warm hit).
const peerCacheCap = 8

// graphFor returns the job's graph: the full build for sweep jobs (chunks
// run from any source), this peer's CSR shard when the family shards, and
// the full build — with a logged reason — when it does not.
func (ps *peerState) graphFor(gs *spec.GraphSpec, self, peers int, kind spec.Kind) (*graph.Graph, error) {
	key := gs.Key() + "|full"
	build := gs.Build
	if kind != spec.KindSweep {
		sh, err := gs.Sharder()
		if err != nil {
			return nil, err
		}
		if sh == nil {
			if fam := gs.Normalized().Family; !ps.warned[fam] {
				ps.warned[fam] = true
				log.Printf("cluster: peer %d: graph family %q has no sharded builder; building the full graph", self, fam)
			}
		} else {
			key = fmt.Sprintf("%s|shard=%d/%d", gs.Key(), self, peers)
			build = func() (*graph.Graph, error) { return graph.BuildShard(*sh, self, peers) }
		}
	}
	if g := ps.graphs[key]; g != nil {
		return g, nil
	}
	g, err := build()
	if err != nil {
		return nil, err
	}
	if len(ps.graphs) >= peerCacheCap {
		ps.graphs = map[string]*graph.Graph{}
	}
	ps.graphs[key] = g
	return g, nil
}

// sweepPoolFor returns the warm sweep pool for (graph, task), building it
// like the service's sweep runner does. The cache key strips the per-sweep
// source selection (already cleared by the coordinator) so every chunk and
// every repeat sweep of one spec hits the same pool.
func (ps *peerState) sweepPoolFor(graphKey string, g *graph.Graph, t spec.TaskSpec) (*core.SweepPool, error) {
	cfg, err := sweepConfig(t)
	if err != nil {
		return nil, err
	}
	t.Cluster = nil
	key := graphKey + "|" + t.Key()
	if p := ps.pools[key]; p != nil {
		return p, nil
	}
	p, err := core.NewSweepPool(g, cfg, t.SweepWorkers)
	if err != nil {
		return nil, err
	}
	if len(ps.pools) >= peerCacheCap {
		ps.pools = map[string]*core.SweepPool{}
	}
	ps.pools[key] = p
	return p, nil
}

// ctrlBarrier is the peer half of the round barrier, riding the control
// connection: one sync up, one merged batch down, per speculation window
// (one window = up to RoundsPerSync engine rounds). The engine calls Sync
// from exactly one goroutine, and nothing else uses the connection during
// a run.
type ctrlBarrier struct {
	enc *json.Encoder
	rd  *ctrlReader
}

func (b *ctrlBarrier) Sync(batch []congest.RoundReport) ([]congest.RoundReport, error) {
	if err := b.enc.Encode(ctrlMsg{Type: msgSync, Reports: batch}); err != nil {
		return nil, fmt.Errorf("cluster: send round reports: %w", err)
	}
	var m ctrlMsg
	if err := b.rd.next(&m); err != nil {
		return nil, fmt.Errorf("cluster: await merged reports: %w", err)
	}
	if m.Type != msgRound || len(m.Reports) == 0 {
		return nil, fmt.Errorf("cluster: unexpected control message %q awaiting merged reports", m.Type)
	}
	return m.Reports, nil
}

// runJob executes one prepare→result (or prepare→chunks→done) cycle. The
// returned error is a control-transport failure (the peer cannot continue);
// job-local failures — bad spec, mesh trouble, engine errors — are reported
// to the coordinator in the ready, result, or chunkres message and leave
// the peer serving.
func runJob(conn net.Conn, enc *json.Encoder, rd *ctrlReader, ps *peerState, m *ctrlMsg) error {
	self, peers := m.Peer, m.Peers
	sweepJob := m.Task != nil && m.Task.Kind == spec.KindSweep

	// Validate and stand up the job-scoped mesh listener; a failure still
	// answers ready (with Err) so the coordinator's handshake never stalls.
	var g *graph.Graph
	var jobErr error
	switch {
	case m.Graph == nil || m.Task == nil:
		jobErr = errors.New("cluster: prepare carried no graph or task")
	case self < 0 || self >= peers:
		jobErr = fmt.Errorf("cluster: prepare names peer %d of %d", self, peers)
	default:
		if jobErr = validateJob(m.Task, peers); jobErr == nil {
			g, jobErr = ps.graphFor(m.Graph, self, peers, m.Task.Kind)
		}
	}
	var ln net.Listener
	mesh := ""
	if jobErr == nil && !sweepJob {
		// Listen on the interface the coordinator reached us through, so
		// the advertised address is dialable by the other peers.
		host := "127.0.0.1"
		if ta, ok := conn.LocalAddr().(*net.TCPAddr); ok {
			host = ta.IP.String()
		}
		if ln, jobErr = net.Listen("tcp", net.JoinHostPort(host, "0")); jobErr == nil {
			defer ln.Close()
			mesh = ln.Addr().String()
		}
	}
	var resident int64
	if g != nil {
		resident = g.ResidentBytes()
	}
	if err := enc.Encode(ctrlMsg{Type: msgReady, Peer: self, Mesh: mesh, Resident: resident, Err: errString(jobErr)}); err != nil {
		return fmt.Errorf("cluster: send ready: %w", err)
	}

	var sm ctrlMsg
	if err := rd.next(&sm); err != nil {
		return fmt.Errorf("cluster: await start: %w", err)
	}
	switch sm.Type {
	case msgAbort:
		return nil // another peer's prepare failed; back to idle
	case msgStart:
	default:
		return fmt.Errorf("cluster: unexpected control message %q awaiting start", sm.Type)
	}
	if sweepJob {
		var pool *core.SweepPool
		if jobErr == nil {
			pool, jobErr = ps.sweepPoolFor(m.Graph.Key(), g, *m.Task)
		}
		return serveSweep(enc, rd, pool, jobErr)
	}
	res := ctrlMsg{Type: msgResult, Peer: self}
	if jobErr != nil {
		// A coordinator bug: it started a job we reported unready. Answer
		// with the error rather than meshing.
		res.Err = jobErr.Error()
		return sendResult(enc, &res)
	}

	links, err := setupMesh(self, sm.Addrs, ln)
	if err != nil {
		res.Err = err.Error()
		return sendResult(enc, &res)
	}
	ex := newMeshExchanger(self, links)
	defer ex.Close()
	out, stats, auth, runErr := runClusterTask(g, *m.Task, &congest.ClusterConfig{
		Peer:          self,
		Peers:         peers,
		Exchange:      ex,
		Barrier:       &ctrlBarrier{enc: enc, rd: rd},
		RoundsPerSync: m.Sync,
	})
	res.Stats = stats
	res.Authoritative = auth
	res.WaitNs = ex.waitNs
	if runErr != nil {
		res.Err = runErr.Error()
	} else if auth {
		b, err := json.Marshal(out)
		if err != nil {
			res.Err = fmt.Sprintf("cluster: encode result: %v", err)
		} else {
			res.Result = b
		}
	}
	return sendResult(enc, &res)
}

func sendResult(enc *json.Encoder, res *ctrlMsg) error {
	if err := enc.Encode(res); err != nil {
		return fmt.Errorf("cluster: send result: %w", err)
	}
	return nil
}

// runClusterTask runs the task as this peer's shard through the same core
// entry points the in-process service runners use, plus the cluster config.
// authoritative reports whether this peer owns the source vertex — its
// result carries the answer; the other peers contribute engine statistics.
func runClusterTask(g *graph.Graph, t spec.TaskSpec, cl *congest.ClusterConfig) (out any, stats *congest.Stats, authoritative bool, err error) {
	if t.Eps == 0 {
		t.Eps = spec.DefaultEps // the service normalization, replicated identically on every peer
	}
	lo, hi := graph.ShardRange(g.N(), cl.Peer, cl.Peers)
	authoritative = t.Source >= lo && t.Source < hi
	opts := append(taskOptions(t), core.WithCluster(cl))
	switch t.Kind {
	case spec.KindWalk:
		var r *core.TokenWalkResult
		r, err = core.TokenWalk(g, t.Source, t.Steps, opts...)
		if r != nil {
			out, stats = r, r.Stats
		}
	case spec.KindMixing:
		var r *core.Result
		r, err = core.MixingTime(g, t.Source, t.Eps, opts...)
		if r != nil {
			out, stats = r, r.Stats
		}
	case spec.KindLocal:
		var r *core.Result
		if t.Exact {
			r, err = core.ExactLocalMixingTime(g, t.Source, t.Beta, t.Eps, opts...)
		} else {
			r, err = core.ApproxLocalMixingTime(g, t.Source, t.Beta, t.Eps, opts...)
		}
		if r != nil {
			out, stats = r, r.Stats
		}
	default:
		err = fmt.Errorf("cluster: kind %s does not distribute", t.Kind)
	}
	return out, stats, authoritative, err
}

// taskOptions renders the spec's engine knobs as core options — the
// cluster-relevant subset of the service's option mapping (kept in sync
// with internal/service taskOptions for the ClusterKinds fields).
func taskOptions(t spec.TaskSpec) []core.Option {
	var o []core.Option
	if t.Lazy {
		o = append(o, core.WithLazy())
	}
	if t.Seed != 0 {
		o = append(o, core.WithSeed(t.Seed))
	}
	if t.C != 0 {
		o = append(o, core.WithC(t.C))
	}
	if t.MaxLength != 0 {
		o = append(o, core.WithMaxLength(t.MaxLength))
	}
	if t.Irregular {
		o = append(o, core.WithIrregular())
	}
	if t.Workers != 0 {
		o = append(o, core.WithWorkers(t.Workers))
	}
	if t.TieBreakBits != 0 {
		o = append(o, core.WithRandomTieBreak(t.TieBreakBits))
	}
	if t.MaxRounds != 0 {
		o = append(o, core.WithMaxRounds(t.MaxRounds))
	}
	if t.RetryBudget != 0 {
		o = append(o, core.WithRetryBudget(t.RetryBudget))
	}
	return o
}
