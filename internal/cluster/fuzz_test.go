package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/spec"
)

// FuzzControlPlane throws arbitrary byte streams at the newline-JSON
// control-plane decoder — the single path every coordinator and peer read
// goes through. The contract under fuzzing: next either decodes a typed
// message or returns a tagged error — clean io.EOF at a message boundary,
// ErrCtrl for everything malformed, truncated, type-less, or oversized —
// and it never panics or loops forever on finite input.
func FuzzControlPlane(f *testing.F) {
	mustJSON := func(m ctrlMsg) []byte {
		b, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		return append(b, '\n')
	}
	gs := spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5}
	ts := spec.TaskSpec{Kind: spec.KindSweep, Beta: 4, Eps: 0.05, Seed: 5}
	f.Add([]byte(nil))
	f.Add([]byte("\n"))
	f.Add(mustJSON(ctrlMsg{Type: msgHello}))
	f.Add(mustJSON(ctrlMsg{Type: msgPrepare, Peer: 1, Peers: 3, Graph: &gs, Task: &ts}))
	f.Add(mustJSON(ctrlMsg{Type: msgChunk, Sources: []int{0, 5, 9}}))
	f.Add(mustJSON(ctrlMsg{Type: msgReady, Mesh: "127.0.0.1:9", Resident: 1 << 20}))
	f.Add([]byte(`{"type":"chunkres","result":[{"tau":3}]}` + "\n"))
	f.Add([]byte(`{}` + "\n"))                           // type-less
	f.Add([]byte(`{"type":"hello"`))                     // truncated mid-object
	f.Add([]byte(`{"type":"sync","peer":"NaN"}` + "\n")) // wrong field type
	f.Add([]byte("garbage\nmore garbage\n"))
	f.Add(bytes.Repeat([]byte{'['}, 4096))

	f.Fuzz(func(t *testing.T, b []byte) {
		rd := newCtrlReader(bytes.NewReader(b))
		var m ctrlMsg
		// One message per newline at most, so len(b)+1 iterations always
		// reach EOF — a longer loop means the reader failed to make progress.
		for i := 0; i <= len(b); i++ {
			err := rd.next(&m)
			if err == nil {
				if m.Type == "" {
					t.Fatal("decoder accepted a message without a type")
				}
				continue
			}
			if errors.Is(err, io.EOF) || errors.Is(err, ErrCtrl) {
				return
			}
			t.Fatalf("error neither io.EOF nor ErrCtrl-tagged: %v", err)
		}
		t.Fatalf("decoder made no progress over %d bytes", len(b))
	})
}

// TestCtrlReaderOversized: a single line beyond maxCtrlLine is rejected
// with a tagged error instead of being buffered without bound — the
// hostile-stream cap FuzzControlPlane cannot practically reach.
func TestCtrlReaderOversized(t *testing.T) {
	huge := io.MultiReader(
		strings.NewReader(`{"type":"hello","mesh":"`),
		strings.NewReader(strings.Repeat("a", maxCtrlLine+2)),
		strings.NewReader(`"}`+"\n"),
	)
	var m ctrlMsg
	err := newCtrlReader(huge).next(&m)
	if !errors.Is(err, ErrCtrl) || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized line: error %v, want an ErrCtrl size rejection", err)
	}
}

// TestCtrlReaderTruncation: bytes after the last newline are a tagged
// truncation error, not a silent EOF — the coordinator must be able to tell
// a clean hangup from a peer dying mid-message.
func TestCtrlReaderTruncation(t *testing.T) {
	rd := newCtrlReader(strings.NewReader(`{"type":"hello"}` + "\n" + `{"type":"re`))
	var m ctrlMsg
	if err := rd.next(&m); err != nil || m.Type != msgHello {
		t.Fatalf("first message: %v / %+v", err, m)
	}
	err := rd.next(&m)
	if !errors.Is(err, ErrCtrl) || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("partial trailing message: error %v, want an ErrCtrl truncation", err)
	}
}
