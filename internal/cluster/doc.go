// Package cluster runs one CONGEST computation across N lmtd processes: a
// coordinator that owns job dispatch, the per-round control barrier and
// result collection, and peer runtimes that each drive the congest engine
// over a contiguous vertex shard, exchanging per-round halo traffic
// directly with each other as binary frames (internal/congest/frame).
//
// Two planes, two codecs. The control plane — registration, job dispatch,
// round reports and directives, results — is newline-delimited JSON between
// each peer and the coordinator: low rate, debuggable with a pipe. The data
// plane — every cross-shard message of every round — is the length-prefixed
// binary frame codec over a full peer-to-peer TCP mesh (peer i dials every
// j < i, accepts every j > i), one frame per (peer, round), never relayed
// through the coordinator.
//
// Per round, each peer: steps its shard; exchanges frames with every other
// peer (congest.Exchanger); delivers, merging inbound frames around its
// local mailbox matrix in ascending peer order; then submits a
// congest.RoundReport to the coordinator (congest.Barrier), which folds the
// N reports with congest.MergeReports and broadcasts the merged report.
// Every peer replicates the global decision — stop, error abort,
// fast-forward — from the same merged values, so round counters advance in
// lockstep with no decision logic in the coordinator at all.
//
// The determinism contract is inherited from the engine (see
// internal/congest cluster mode): a job's results are DeepEqual to the
// single-process run with the same seed, for any peer count. The
// coordinator therefore returns the source-owning peer's result verbatim,
// swapping in the congest.MergeStats fold of all peers' engine statistics.
//
// Supported task kinds are the distributed single-source ones whose state
// is message-driven end to end: local, mixing, and walk.
package cluster
