// Package cluster runs one CONGEST computation across N lmtd processes: a
// coordinator that owns job dispatch, the control barrier and result
// collection, and peer runtimes that each drive the congest engine over a
// contiguous vertex shard, exchanging per-round halo traffic directly with
// each other as binary frames (internal/congest/frame).
//
// Two planes, two codecs. The control plane — registration, job dispatch,
// round reports and directives, results — is newline-delimited JSON between
// each peer and the coordinator: low rate, debuggable with a pipe. The data
// plane — every cross-shard message of every round — is the length-prefixed
// binary frame codec over a full peer-to-peer TCP mesh (peer i dials every
// j < i, accepts every j > i), one frame per (peer, round), never relayed
// through the coordinator.
//
// Per round, each peer: steps its shard; exchanges frames with every other
// peer (congest.Exchanger); delivers, merging inbound frames around its
// local mailbox matrix in ascending peer order; and records a
// congest.RoundReport. The frame I/O is pipelined (meshExchanger): a writer
// and a reader goroutine per link overlap outbound flushes and inbound
// decodes with the engine's compute, so the engine blocks only when a
// frame genuinely has not arrived — that residual wait is measured and
// exported as lmtd_cluster_round_wait_ns_total. Once per speculation
// window of RoundsPerSync rounds, the reports are submitted to the
// coordinator (congest.Barrier), which folds them per round with
// congest.MergeReportBatch and broadcasts the merge. Every peer replicates
// the global decisions — stop, error abort, fast-forward — from the same
// merged values, so round counters advance in lockstep with no decision
// logic in the coordinator at all; rounds speculated past a global
// decision point are inert and are reconciled exactly (see
// internal/congest's cluster mode).
//
// The determinism contract is inherited from the engine (see
// internal/congest cluster mode): a job's results are DeepEqual to the
// single-process run with the same seed, for any peer count and any
// RoundsPerSync cadence. The
// coordinator therefore returns the source-owning peer's result verbatim,
// swapping in the congest.MergeStats fold of all peers' engine statistics.
//
// Supported task kinds are the distributed single-source ones whose state
// is message-driven end to end: local, mixing, and walk.
package cluster
