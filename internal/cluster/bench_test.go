package cluster

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/spec"
)

// BenchmarkTransportLoopbackVsTCP runs the same flooding task through the
// in-process loopback transport and through a 2-peer localhost TCP cluster,
// reporting rounds/sec (the barrier + frame-exchange cost per round) and
// bytes/round (the halo traffic the frame codec batches). The computed
// result is identical on every path — the determinism contract — so the
// delta is pure transport overhead.
//
// The tcp variants sweep injected RTT × sync cadence: rtt0 is raw localhost;
// rtt1ms/rtt5ms wrap every cluster connection in a symmetric delay. sync1
// barriers every round (the pre-pipelining wire protocol's cadence); sync8
// batches eight rounds per control round-trip. The sync8/sync1 ratio at
// nonzero RTT is the pipelining win this transport exists to buy.
func BenchmarkTransportLoopbackVsTCP(b *testing.B) {
	bgs := spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 8} // n = 32
	g, err := bgs.Build()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("loopback", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			res, err := core.ApproxLocalMixingTime(g, 0, 4, 0.05, core.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			rounds += int64(res.Stats.Rounds)
		}
		b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/sec")
		b.ReportMetric(0, "bytes/round") // loopback moves no wire bytes
	})

	for _, rtt := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond} {
		for _, rps := range []int{1, 8} {
			b.Run(fmt.Sprintf("tcp-rtt%s-sync%d", rtt, rps), func(b *testing.B) {
				if rtt > 0 {
					oneWay := rtt / 2
					setTestConnWrap(func(c net.Conn) net.Conn { return delayWrites(c, oneWay) })
					defer setTestConnWrap(nil)
				}
				c := startCluster(b, 2)
				ctx := context.Background()
				task := spec.TaskSpec{Kind: spec.KindLocal, Beta: 4, Eps: 0.05, Seed: 1,
					Cluster: &spec.ClusterSpec{RoundsPerSync: rps}}
				b.ResetTimer()
				var rounds, wire int64
				for i := 0; i < b.N; i++ {
					got, err := c.Run(ctx, bgs, task)
					if err != nil {
						b.Fatal(err)
					}
					res := got.(*core.Result)
					rounds += int64(res.Stats.Rounds)
					wire += res.Stats.WireBytes
				}
				b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/sec")
				b.ReportMetric(float64(wire)/float64(rounds), "bytes/round")
			})
		}
	}
}

// BenchmarkClusterSweep runs the same all-sources sweep in-process and over
// a 2-peer localhost TCP cluster, reporting per-source throughput and the
// chunk count the coordinator dispatched. Results are DeepEqual on both
// paths, so the delta is chunk fan-out overhead: one control round-trip per
// sweep.ChunkSize sources.
func BenchmarkClusterSweep(b *testing.B) {
	bgs := spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 8} // n = 32
	g, err := bgs.Build()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("inprocess", func(b *testing.B) {
		cfg := core.Config{Mode: core.ApproxLocal, Beta: 4, Eps: 0.05}
		core.WithSeed(1)(&cfg)
		pool, err := core.NewSweepPool(g, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var sources int64
		for i := 0; i < b.N; i++ {
			res, err := pool.Sweep(core.SweepOptions{})
			if err != nil {
				b.Fatal(err)
			}
			sources += int64(len(res.Sources))
		}
		b.ReportMetric(float64(sources)/b.Elapsed().Seconds(), "sources/sec")
	})

	b.Run("tcp", func(b *testing.B) {
		c := startCluster(b, 2)
		ctx := context.Background()
		task := spec.TaskSpec{Kind: spec.KindSweep, Beta: 4, Eps: 0.05, Seed: 1}
		b.ResetTimer()
		var sources int64
		for i := 0; i < b.N; i++ {
			got, err := c.Run(ctx, bgs, task)
			if err != nil {
				b.Fatal(err)
			}
			sources += int64(len(got.(*core.MultiResult).Sources))
		}
		b.ReportMetric(float64(sources)/b.Elapsed().Seconds(), "sources/sec")
		b.ReportMetric(float64(c.SweepChunks())/float64(b.N), "chunks/sweep")
	})
}
