package cluster

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
)

// BenchmarkTransportLoopbackVsTCP runs the same flooding task through the
// in-process loopback transport and through a 2-peer localhost TCP cluster,
// reporting rounds/sec (the barrier + frame-exchange cost per round) and
// bytes/round (the halo traffic the frame codec batches). The computed
// result is identical on both paths — the determinism contract — so the
// delta is pure transport overhead.
func BenchmarkTransportLoopbackVsTCP(b *testing.B) {
	bgs := spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 8} // n = 32
	g, err := bgs.Build()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("loopback", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			res, err := core.ApproxLocalMixingTime(g, 0, 4, 0.05, core.WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			rounds += int64(res.Stats.Rounds)
		}
		b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/sec")
		b.ReportMetric(0, "bytes/round") // loopback moves no wire bytes
	})

	b.Run("tcp", func(b *testing.B) {
		c := startCluster(b, 2)
		ctx := context.Background()
		task := spec.TaskSpec{Kind: spec.KindLocal, Beta: 4, Eps: 0.05, Seed: 1}
		b.ResetTimer()
		var rounds, wire int64
		for i := 0; i < b.N; i++ {
			got, err := c.Run(ctx, bgs, task)
			if err != nil {
				b.Fatal(err)
			}
			res := got.(*core.Result)
			rounds += int64(res.Stats.Rounds)
			wire += res.Stats.WireBytes
		}
		b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/sec")
		b.ReportMetric(float64(wire)/float64(rounds), "bytes/round")
	})
}
