package cluster

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/spec"
)

// graphSpec is the shared test graph: 4 cliques of 5 on a ring, n = 20 —
// small enough for fast rounds, lumpy enough that τ is nontrivial. The
// family shards, so every engine-kind test here also exercises the
// shard-built CSR path on the peers.
var graphSpec = spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5}

// testCtx caps every cluster exchange in this suite with a deadline, so a
// wedged barrier or handshake fails the test instead of hanging it.
func testCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// startCluster stands up a coordinator on loopback with n Serve goroutines
// registered against it, and tears everything down (asserting clean peer
// exits) at test cleanup.
func startCluster(t testing.TB, n int) *Coordinator {
	t.Helper()
	c, err := NewCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errs <- Serve(context.Background(), c.Addr()) }()
	}
	t.Cleanup(func() {
		c.Close()
		for i := 0; i < n; i++ {
			if err := <-errs; err != nil {
				t.Errorf("peer serve: %v", err)
			}
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.WaitForPeers(ctx, n); err != nil {
		t.Fatalf("peers never registered: %v", err)
	}
	return c
}

// maskStats zeroes the execution-artifact counters — buffer warmup and the
// wire itself — that legitimately differ between a cluster run and the
// single-process reference (see congest.MergeStats).
func maskStats(s *congest.Stats) {
	if s == nil {
		return
	}
	s.StepGrows, s.DeliverGrows = 0, 0
	s.WireBytes, s.FramesSent, s.FramesRecv = 0, 0, 0
}

// TestClusterRunMatchesSingleProcess is the end-to-end determinism
// contract over real TCP: a 3-peer run of each distributable kind returns
// results DeepEqual to the direct core call with the same seed.
func TestClusterRunMatchesSingleProcess(t *testing.T) {
	c := startCluster(t, 3)
	g, err := graphSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)

	t.Run("local", func(t *testing.T) {
		got, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindLocal, Beta: 4, Eps: 0.05, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.ApproxLocalMixingTime(g, 0, 4, 0.05, core.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		res := got.(*core.Result)
		if res.Stats.FramesSent == 0 || res.Stats.WireBytes == 0 {
			t.Fatalf("cluster run reports no wire traffic: %+v", res.Stats)
		}
		maskStats(res.Stats)
		maskStats(want.Stats)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cluster local result differs from single-process:\n  cluster %+v\n  direct  %+v", got, want)
		}
	})

	t.Run("mixing", func(t *testing.T) {
		got, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindMixing, Eps: 0.05, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.MixingTime(g, 0, 0.05, core.WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		maskStats(got.(*core.Result).Stats)
		maskStats(want.Stats)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cluster mixing result differs from single-process:\n  cluster %+v\n  direct  %+v", got, want)
		}
	})

	t.Run("walk", func(t *testing.T) {
		// Source 13 lives in the last peer's shard, so the authoritative
		// result crosses the wire from a nonzero peer.
		got, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindWalk, Source: 13, Steps: 16, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.TokenWalk(g, 13, 16, core.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		maskStats(got.(*core.TokenWalkResult).Stats)
		maskStats(want.Stats)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cluster walk result differs from single-process:\n  cluster %+v\n  direct  %+v", got, want)
		}
	})

	t.Run("sync-batch", func(t *testing.T) {
		// The any-R determinism contract over real TCP: batching the
		// control barrier must not change a byte of the result, for every
		// distributable kind, peer subset and cadence.
		wantLocal, err := core.ApproxLocalMixingTime(g, 0, 4, 0.05, core.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		wantMixing, err := core.MixingTime(g, 0, 0.05, core.WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		wantWalk, err := core.TokenWalk(g, 13, 16, core.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		maskStats(wantLocal.Stats)
		maskStats(wantMixing.Stats)
		maskStats(wantWalk.Stats)
		for _, rps := range []int{1, 4, 8} {
			for _, peers := range []int{2, 3} {
				cl := &spec.ClusterSpec{Peers: peers, RoundsPerSync: rps}
				for kind, want := range map[string]any{"local": wantLocal, "mixing": wantMixing, "walk": wantWalk} {
					var task spec.TaskSpec
					switch kind {
					case "local":
						task = spec.TaskSpec{Kind: spec.KindLocal, Beta: 4, Eps: 0.05, Seed: 5, Cluster: cl}
					case "mixing":
						task = spec.TaskSpec{Kind: spec.KindMixing, Eps: 0.05, Seed: 7, Cluster: cl}
					case "walk":
						task = spec.TaskSpec{Kind: spec.KindWalk, Source: 13, Steps: 16, Seed: 5, Cluster: cl}
					}
					got, err := c.Run(ctx, graphSpec, task)
					if err != nil {
						t.Fatalf("rps=%d peers=%d %s: %v", rps, peers, kind, err)
					}
					switch r := got.(type) {
					case *core.Result:
						maskStats(r.Stats)
					case *core.TokenWalkResult:
						maskStats(r.Stats)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("rps=%d peers=%d: %s result differs from single-process:\n  cluster %+v\n  direct  %+v",
							rps, peers, kind, got, want)
					}
				}
			}
		}
		if c.SyncBatches() == 0 {
			t.Error("coordinator recorded no barrier folds")
		}
	})

	t.Run("peer-subset", func(t *testing.T) {
		got, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindLocal, Beta: 4, Eps: 0.05, Seed: 5,
			Cluster: &spec.ClusterSpec{Peers: 2}})
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.ApproxLocalMixingTime(g, 0, 4, 0.05, core.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		maskStats(got.(*core.Result).Stats)
		maskStats(want.Stats)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("2-of-3-peer result differs from single-process:\n  cluster %+v\n  direct  %+v", got, want)
		}
	})
}

// TestClusterSequentialJobs reuses one registered peer set across jobs: the
// per-job mesh teardown/rebuild must leave the control plane serving.
func TestClusterSequentialJobs(t *testing.T) {
	c := startCluster(t, 2)
	ctx := testCtx(t)
	var prev *core.TokenWalkResult
	for i := 0; i < 3; i++ {
		got, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindWalk, Source: 3, Steps: 8, Seed: 11})
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		r := got.(*core.TokenWalkResult)
		if prev != nil && !reflect.DeepEqual(r, prev) {
			t.Fatalf("job %d result drifted:\n  got  %+v\n  prev %+v", i, r, prev)
		}
		prev = r
	}
}

// TestClusterRejectsBadJobs: every rejection fires before (or cleanly
// instead of) a run, and the peer set survives to serve the next job.
func TestClusterRejectsBadJobs(t *testing.T) {
	c := startCluster(t, 2)
	ctx := testCtx(t)
	for name, tc := range map[string]struct {
		graph spec.GraphSpec
		task  spec.TaskSpec
		want  string
	}{
		"kind":  {graphSpec, spec.TaskSpec{Kind: spec.KindEstimate, Steps: 4}, "does not distribute"},
		"churn": {graphSpec, spec.TaskSpec{Kind: spec.KindWalk, Steps: 4, Churn: &spec.ChurnSpec{Model: "markov", Rate: 0.1}}, "churn"},
		"graph": {spec.GraphSpec{Family: "moebius"}, spec.TaskSpec{Kind: spec.KindWalk, Steps: 4}, "unknown graph family"},
		"width": {spec.GraphSpec{Family: "path", N: 20}, spec.TaskSpec{Kind: spec.KindWalk, Steps: 4,
			Cluster: &spec.ClusterSpec{Peers: 3}}, "peers"},
	} {
		_, err := c.Run(ctx, tc.graph, tc.task)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want %q", name, err, tc.want)
		}
	}
	// The rejections must not have consumed the peers.
	if _, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindWalk, Source: 1, Steps: 4, Seed: 2}); err != nil {
		t.Fatalf("cluster unusable after rejected jobs: %v", err)
	}
}

// TestClusterRunErrorPropagates: a run that fails inside the engine on
// every peer (walk-length budget exhaustion via MaxRounds) surfaces the
// authoritative peer's error and leaves the cluster serving.
func TestClusterRunErrorPropagates(t *testing.T) {
	c := startCluster(t, 2)
	ctx := testCtx(t)
	_, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindWalk, Source: 0, Steps: 1 << 20, Seed: 3, MaxRounds: 50})
	if err == nil || !strings.Contains(err.Error(), "round limit") {
		t.Fatalf("error %v, want a round-limit failure", err)
	}
	if _, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindWalk, Source: 0, Steps: 8, Seed: 3}); err != nil {
		t.Fatalf("cluster unusable after failed run: %v", err)
	}
}

// TestServiceClusterDispatch runs a ClusterSpec-carrying request through
// the service layer: the response must match the in-process run of the same
// request (the schedule-only contract), a repeat without the ClusterSpec
// must be served from the shared result cache, and the transport counters
// must surface in the service metrics.
func TestServiceClusterDispatch(t *testing.T) {
	c := startCluster(t, 3)
	svc := service.New(service.Options{Cluster: c})
	ctx := testCtx(t)
	req := service.Request{Graph: graphSpec,
		Task: spec.TaskSpec{Kind: spec.KindLocal, Beta: 4, Eps: 0.05, Seed: 5,
			Cluster: &spec.ClusterSpec{}}}
	resp, err := svc.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graphSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ApproxLocalMixingTime(g, 0, 4, 0.05, core.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Result.(*core.Result)
	maskStats(got.Stats)
	maskStats(want.Stats)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("service cluster result differs from direct core call:\n  svc  %+v\n  core %+v", got, want)
	}

	// Cluster is schedule-only: the identical request computed in-process
	// shares the memoized result — no second run anywhere.
	req.Task.Cluster = nil
	resp2, err := svc.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.ResultHit {
		t.Fatal("in-process repeat of a cluster-computed request missed the result cache")
	}
	m := svc.Metrics()
	if m.ClusterRuns != 1 {
		t.Fatalf("ClusterRuns = %d, want 1", m.ClusterRuns)
	}
	if m.WireBytes == 0 || m.FramesSent == 0 || m.FramesSent != m.FramesRecv {
		t.Fatalf("transport counters not accumulated: %+v", m)
	}

	// Without an attached cluster the field is an invalid-request error.
	lone := service.New(service.Options{})
	req.Task.Cluster = &spec.ClusterSpec{}
	req.Task.Seed = 6 // dodge the shared result-cache key
	if _, err := lone.Run(ctx, req); err == nil || !strings.Contains(err.Error(), "no peer cluster") {
		t.Fatalf("cluster request without a cluster: %v", err)
	}
}

// TestClusterCancellation: a canceled context aborts the job at the next
// round barrier without wedging the coordinator.
func TestClusterCancellation(t *testing.T) {
	c := startCluster(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Run(ctx, graphSpec, spec.TaskSpec{Kind: spec.KindWalk, Source: 0, Steps: 1 << 16, Seed: 3})
	if err == nil {
		t.Fatal("canceled run returned a result")
	}
}
