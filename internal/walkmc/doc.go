// Package walkmc implements the sampling-based mixing estimation in the
// style of Das Sarma et al. [10] that the paper compares against: perform K
// independent random-walk tokens of length ℓ from the source, estimate
// p_ℓ(u) by the fraction of tokens ending at u, and compare the empirical
// distribution against the stationary distribution.
//
// The point the paper makes (§1.2) is the "grey area": with K samples the
// empirical L1 distance to π carries Θ(√(n/K)) sampling noise, so
// thresholds ε below that floor cannot be certified — unlike the
// deterministic flooding of Algorithm 1. Experiment E9 measures exactly
// this floor.
//
// Sampling uses an explicit seeded RNG, so a fixed (seed, K, ℓ) triple
// reproduces the estimate exactly; bipartite graphs fail fast unless the
// lazy walk is selected (shared guard with the exact oracles).
package walkmc
