package walkmc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/exact"
	"repro/internal/graph"
)

// Estimate holds an empirical length-ℓ distribution from K token walks.
type Estimate struct {
	// P is the empirical distribution: count(u)/K.
	P []float64
	// K is the number of walks.
	K int
	// Ell is the walk length.
	Ell int
}

// Sample runs K independent simple (or lazy) random walks of length ell
// from source and returns the empirical end-point distribution. The walks
// are simulated exactly (token moves, not flooding): this is what [10]'s
// sub-linear-walk framework provides.
func Sample(g *graph.Graph, source, ell, k int, lazy bool, rng *rand.Rand) (*Estimate, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("walkmc: source %d out of range", source)
	}
	if k <= 0 || ell < 0 {
		return nil, errors.New("walkmc: need k > 0 and ell ≥ 0")
	}
	// Token moves index the raw CSR directly: the per-move cost is one RNG
	// draw and one flat slice load, with no per-row slice header.
	offsets, edges := g.CSR()
	counts := make([]int, g.N())
	for i := 0; i < k; i++ {
		u := int32(source)
		for t := 0; t < ell; t++ {
			if lazy && rng.Intn(2) == 0 {
				continue
			}
			lo, hi := offsets[u], offsets[u+1]
			u = edges[lo+int32(rng.Intn(int(hi-lo)))]
		}
		counts[u]++
	}
	p := make([]float64, g.N())
	invK := 1 / float64(k)
	for u, c := range counts {
		p[u] = float64(c) * invK
	}
	return &Estimate{P: p, K: k, Ell: ell}, nil
}

// L1ToStationary returns ‖p̂_ℓ − π‖₁ for the estimate.
func (e *Estimate) L1ToStationary(g *graph.Graph) float64 {
	return exact.L1(e.P, exact.Stationary(g))
}

// MixingTimeMC estimates τ_mix_s(ε) by doubling ℓ until the empirical
// distance falls below ε. Because of sampling noise the estimate is only
// meaningful for ε well above the Θ(√(n/K)) floor; below the floor the
// search fails (returns an error), which is precisely the grey area.
func MixingTimeMC(g *graph.Graph, source int, eps float64, k int, lazy bool, maxT int, rng *rand.Rand) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("walkmc: need ε ∈ (0,1), got %g", eps)
	}
	// Fail fast on the footnote-5 structural impossibility instead of
	// sampling K·maxT token moves and misreporting a sampling-floor failure.
	if !lazy && g.IsBipartite() {
		return 0, fmt.Errorf("walkmc: %w", exact.ErrBipartiteNonLazy)
	}
	pi := exact.Stationary(g) // hoisted: one π for the whole doubling search
	for ell := 1; ell <= maxT; ell *= 2 {
		est, err := Sample(g, source, ell, k, lazy, rng)
		if err != nil {
			return 0, err
		}
		if exact.L1(est.P, pi) < eps {
			return ell, nil
		}
	}
	return 0, fmt.Errorf("walkmc: no ℓ ≤ %d reached ε=%g with K=%d (sampling floor ≈ √(n/K)=%.3f)",
		maxT, eps, k, samplingFloor(g.N(), k))
}

func samplingFloor(n, k int) float64 {
	return math.Sqrt(float64(n) / float64(k))
}

// NoiseFloor measures the empirical sampling noise directly: the L1
// distance between the empirical and the exact distribution at length ell,
// averaged over trials. E9 sweeps K and shows the Θ(√(n/K)) scaling.
func NoiseFloor(g *graph.Graph, source, ell, k, trials int, lazy bool, rng *rand.Rand) (float64, error) {
	w, err := exact.NewWalk(g, source, lazy)
	if err != nil {
		return 0, err
	}
	w.StepN(ell)
	truth := w.P()
	total := 0.0
	for i := 0; i < trials; i++ {
		est, err := Sample(g, source, ell, k, lazy, rng)
		if err != nil {
			return 0, err
		}
		total += exact.L1(est.P, truth)
	}
	return total / float64(trials), nil
}
