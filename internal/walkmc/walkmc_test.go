package walkmc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/exact"
	"repro/internal/gen"
)

func TestSampleIsDistribution(t *testing.T) {
	g, _ := gen.Complete(16)
	rng := rand.New(rand.NewSource(1))
	est, err := Sample(g, 0, 5, 1000, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range est.P {
		if p < 0 {
			t.Fatal("negative empirical probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("empirical sum %v", sum)
	}
}

func TestSampleZeroLength(t *testing.T) {
	g, _ := gen.Complete(8)
	rng := rand.New(rand.NewSource(2))
	est, err := Sample(g, 3, 0, 50, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	if est.P[3] != 1 {
		t.Error("length-0 walk should stay at the source")
	}
}

func TestSampleValidation(t *testing.T) {
	g, _ := gen.Complete(8)
	rng := rand.New(rand.NewSource(3))
	if _, err := Sample(g, -1, 1, 10, false, rng); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := Sample(g, 0, 1, 0, false, rng); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestEmpiricalConvergesToExact: with many samples the empirical
// distribution approaches the exact p_ℓ at the expected √(n/K) rate.
func TestEmpiricalConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := gen.RandomRegular(32, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	const ell = 8
	w, _ := exact.NewWalk(g, 0, false)
	w.StepN(ell)
	small, err := Sample(g, 0, ell, 100, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Sample(g, 0, ell, 40_000, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	dSmall := exact.L1(small.P, w.P())
	dBig := exact.L1(big.P, w.P())
	if dBig >= dSmall {
		t.Errorf("more samples should reduce error: K=100 → %v, K=40000 → %v", dSmall, dBig)
	}
	if dBig > 0.2 {
		t.Errorf("40k-sample error %v too large", dBig)
	}
}

// TestGreyArea is the [10]-vs-[18] comparison (§1.2): with few samples, a
// small ε cannot be certified — MixingTimeMC fails — while a loose ε
// succeeds.
func TestGreyArea(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := gen.RandomRegular(64, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Loose ε with plenty of samples: fine.
	if _, err := MixingTimeMC(g, 0, 0.5, 20_000, false, 1<<12, rng); err != nil {
		t.Errorf("loose ε failed: %v", err)
	}
	// ε far below the sampling floor √(n/K) ≈ 0.8: must fail.
	if _, err := MixingTimeMC(g, 0, 0.05, 100, false, 1<<10, rng); err == nil {
		t.Error("ε below the sampling floor was certified — grey area not reproduced")
	}
}

func TestNoiseFloorShrinksWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := gen.RandomRegular(32, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := NoiseFloor(g, 0, 10, 200, 4, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NoiseFloor(g, 0, 10, 20_000, 4, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	if f2 >= f1 {
		t.Errorf("noise floor should shrink with K: %v → %v", f1, f2)
	}
	// Scaling ≈ √(K₂/K₁) = 10; allow wide slack.
	if f1/f2 < 3 {
		t.Errorf("noise ratio %v, want ≈ 10", f1/f2)
	}
}

func TestMixingTimeMCValidation(t *testing.T) {
	g, _ := gen.Complete(8)
	rng := rand.New(rand.NewSource(7))
	if _, err := MixingTimeMC(g, 0, 0, 10, false, 100, rng); err == nil {
		t.Error("ε=0 accepted")
	}
}

// TestBipartiteNonLazyFastFail: MixingTimeMC must reject the simple walk on
// a bipartite graph immediately (footnote 5) instead of sampling K·maxT
// token moves and blaming the sampling floor.
func TestBipartiteNonLazyFastFail(t *testing.T) {
	g, _ := gen.Hypercube(4)
	rng := rand.New(rand.NewSource(3))
	start := time.Now()
	_, err := MixingTimeMC(g, 0, 0.1, 100_000, false, 1<<20, rng)
	if err == nil {
		t.Fatal("non-lazy walk on a bipartite graph accepted")
	}
	if !errors.Is(err, exact.ErrBipartiteNonLazy) {
		t.Fatalf("error is %v, want exact.ErrBipartiteNonLazy", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("fast-fail took %v — token budget was burned before rejecting", d)
	}
	// The lazy chain still works.
	if _, err := MixingTimeMC(g, 0, 0.5, 20_000, true, 1<<12, rng); err != nil {
		t.Errorf("lazy MixingTimeMC on hypercube: %v", err)
	}
}

func TestLazySampling(t *testing.T) {
	// On a bipartite graph the lazy empirical distribution approaches π.
	g, _ := gen.Hypercube(3)
	rng := rand.New(rand.NewSource(8))
	est, err := Sample(g, 0, 200, 30_000, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := est.L1ToStationary(g); d > 0.2 {
		t.Errorf("lazy sampling distance to π = %v", d)
	}
}
