package protocol

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/fixedpoint"
	"repro/internal/graph"
)

func lineGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func starGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// treeProc runs one BFS epoch with census and halts once the census is done
// (root) or sent (others). It exercises Tree end to end.
type treeProc struct {
	id    int
	cap   int64
	tree  Tree
	sizes Sizes
}

func (p *treeProc) Init(ctx *congest.Context) {
	if p.id == 0 {
		p.tree.StartRoot(ctx, p.sizes, 1, p.cap)
	}
}

func (p *treeProc) Step(ctx *congest.Context) {
	for _, m := range ctx.Inbox() {
		switch m.Kind {
		case KindBFS:
			p.tree.OnBFS(ctx, p.sizes, m)
		case KindJoin:
			p.tree.OnJoin(m)
		case KindCensus:
			p.tree.OnCensus(m)
		}
	}
	p.tree.Advance(ctx, p.sizes)
	if p.tree.CensusDone || ctx.Round() > 6*ctx.N()+20 {
		ctx.Halt()
		return
	}
	if !p.tree.IsRoot && p.tree.InTree && ctx.Round() > 4*ctx.N() {
		ctx.Halt()
	}
}

func runTree(t *testing.T, g *graph.Graph, cap int64) []*treeProc {
	t.Helper()
	scale := fixedpoint.MustScaleFor(g.N(), 4)
	sizes := NewSizes(g.N(), scale)
	net, err := congest.NewNetwork(g, congest.Config{MaxRounds: 10*g.N() + 100})
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*treeProc, g.N())
	_, err = net.Run(func(id int) congest.Process {
		procs[id] = &treeProc{id: id, cap: cap, sizes: sizes}
		return procs[id]
	})
	if err != nil {
		t.Fatal(err)
	}
	return procs
}

func TestBFSTreeOnLine(t *testing.T) {
	const n = 9
	procs := runTree(t, lineGraph(n), int64(n))
	root := procs[0]
	if !root.tree.CensusDone {
		t.Fatal("census did not complete")
	}
	if root.tree.TreeSize != n {
		t.Errorf("tree size %d, want %d", root.tree.TreeSize, n)
	}
	if root.tree.MaxDepth != n-1 {
		t.Errorf("max depth %d, want %d", root.tree.MaxDepth, n-1)
	}
	for i := 1; i < n; i++ {
		if !procs[i].tree.InTree {
			t.Fatalf("node %d not in tree", i)
		}
		if procs[i].tree.Parent != int32(i-1) {
			t.Errorf("node %d parent %d, want %d", i, procs[i].tree.Parent, i-1)
		}
		if procs[i].tree.Depth != int64(i) {
			t.Errorf("node %d depth %d, want %d", i, procs[i].tree.Depth, i)
		}
	}
}

func TestBFSTreeDepthCap(t *testing.T) {
	const n = 9
	procs := runTree(t, lineGraph(n), 3)
	root := procs[0]
	if root.tree.TreeSize != 4 { // depths 0..3
		t.Errorf("capped tree size %d, want 4", root.tree.TreeSize)
	}
	if root.tree.MaxDepth != 3 {
		t.Errorf("capped max depth %d, want 3", root.tree.MaxDepth)
	}
	if procs[5].tree.InTree {
		t.Error("node beyond cap joined the tree")
	}
}

func TestBFSTreeOnStar(t *testing.T) {
	const n = 12
	procs := runTree(t, starGraph(n), int64(n))
	root := procs[0]
	if root.tree.TreeSize != n || root.tree.MaxDepth != 1 {
		t.Errorf("star census: size=%d depth=%d", root.tree.TreeSize, root.tree.MaxDepth)
	}
	if len(root.tree.Children) != n-1 {
		t.Errorf("root has %d children, want %d", len(root.tree.Children), n-1)
	}
}

// TestBFSParentTieBreak: with multiple same-round BFS offers the lowest
// sender id wins (engine inbox order).
func TestBFSParentTieBreak(t *testing.T) {
	// Diamond: 0-1, 0-2, 1-3, 2-3. Node 3 hears from 1 and 2 simultaneously.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	procs := runTree(t, b.Build(), 4)
	if procs[3].tree.Parent != 1 {
		t.Errorf("node 3 parent %d, want 1 (lowest id)", procs[3].tree.Parent)
	}
	if procs[0].tree.TreeSize != 4 {
		t.Errorf("census %d", procs[0].tree.TreeSize)
	}
}

func TestAggSetRMinMax(t *testing.T) {
	var a Agg
	a.Open(KindSetR, 7, 2, 10, 0)
	if a.Complete() {
		t.Fatal("pending children ignored")
	}
	if !a.Merge(congest.Message{Kind: KindMinMax, Seq: 7, Value: 3, Aux: 20}) {
		t.Fatal("merge rejected")
	}
	a.Merge(congest.Message{Kind: KindMinMax, Seq: 7, Value: 15, Aux: 16})
	if !a.Complete() {
		t.Fatal("not complete after all children")
	}
	if a.Min != 3 || a.Max != 20 {
		t.Errorf("min=%d max=%d", a.Min, a.Max)
	}
}

func TestAggQueryCountSum(t *testing.T) {
	var a Agg
	a.Open(KindQuery, 3, 1, 5, 7) // own x=5 ≤ mid=7 → counts
	if a.Sum != 5 || a.Count != 1 {
		t.Fatalf("own contribution sum=%d count=%d", a.Sum, a.Count)
	}
	a.Merge(congest.Message{Kind: KindReply, Seq: 3, Value: 11, Aux: 2})
	if a.Sum != 16 || a.Count != 3 {
		t.Errorf("merged sum=%d count=%d", a.Sum, a.Count)
	}
	// Own x above mid does not count.
	var b Agg
	b.Open(KindQuery, 4, 0, 9, 7)
	if b.Sum != 0 || b.Count != 0 {
		t.Errorf("x>mid contributed: sum=%d count=%d", b.Sum, b.Count)
	}
}

func TestAggRejectsMismatches(t *testing.T) {
	var a Agg
	a.Open(KindQuery, 5, 1, 1, 10)
	if a.Merge(congest.Message{Kind: KindReply, Seq: 6, Value: 1, Aux: 1}) {
		t.Error("wrong seq accepted")
	}
	if a.Merge(congest.Message{Kind: KindMinMax, Seq: 5, Value: 1, Aux: 1}) {
		t.Error("wrong kind accepted")
	}
	if a.Merge(congest.Message{Kind: KindCheckReply, Seq: 5, Value: 1}) {
		t.Error("check reply accepted by query agg")
	}
}

func TestAggCheck(t *testing.T) {
	var a Agg
	a.Open(KindCheck, 9, 1, 42, 0)
	if a.Sum != 42 {
		t.Fatalf("check own sum %d", a.Sum)
	}
	a.Merge(congest.Message{Kind: KindCheckReply, Seq: 9, Value: 8})
	if !a.Complete() || a.Sum != 50 {
		t.Errorf("check sum %d", a.Sum)
	}
}

func TestKindNames(t *testing.T) {
	kinds := []uint8{KindBFS, KindJoin, KindCensus, KindFloodStart, KindWalk,
		KindSetR, KindMinMax, KindQuery, KindReply, KindCheck, KindCheckReply, KindStop}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := KindName(k)
		if name == "UNKNOWN" || seen[name] {
			t.Errorf("kind %d name %q", k, name)
		}
		seen[name] = true
	}
	if KindName(200) != "UNKNOWN" {
		t.Error("unknown kind should say so")
	}
}

func TestSizesAreLogN(t *testing.T) {
	scale := fixedpoint.MustScaleFor(1024, 4)
	sz := NewSizes(1024, scale)
	if sz.Control() <= 0 || sz.Value() <= sz.Control()-8 || sz.Sum(1024) <= sz.Value() {
		t.Errorf("sizes inconsistent: ctl=%d val=%d sum=%d", sz.Control(), sz.Value(), sz.Sum(1024))
	}
	// Everything must fit in the default CONGEST budget.
	budget := congest.DefaultBandwidth(1024)
	if int(sz.Sum(1024)) > budget {
		t.Errorf("sum payload %d exceeds default budget %d", sz.Sum(1024), budget)
	}
}

// mustScaleQuiet builds a default scale for property tests.
func mustScaleQuiet(n int) fixedpoint.Scale {
	return fixedpoint.MustScaleFor(n, 4)
}
