package protocol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/congest"
	"repro/internal/graph"
)

// TestCensusMatchesBFSBall property-checks the tree protocol on random
// connected graphs with random depth caps: the census must report exactly
// the number of vertices within the cap distance of the root, and the tree
// depth must equal the true eccentricity capped at the budget.
func TestCensusMatchesBFSBall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ { // random spanning tree for connectivity
			b.AddEdge(i, rng.Intn(i))
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		cap := int64(1 + rng.Intn(n))
		procs := runTreeQuiet(t, g, cap)
		root := procs[0]
		if !root.tree.CensusDone {
			return false
		}
		dist := g.BFSLimited(0, int(cap))
		wantSize, wantDepth := 0, 0
		for _, d := range dist {
			if d != graph.Unreachable {
				wantSize++
				if d > wantDepth {
					wantDepth = d
				}
			}
		}
		if root.tree.TreeSize != int64(wantSize) || root.tree.MaxDepth != int64(wantDepth) {
			t.Logf("seed %d: census (size=%d depth=%d) vs BFS ball (size=%d depth=%d), cap=%d",
				seed, root.tree.TreeSize, root.tree.MaxDepth, wantSize, wantDepth, cap)
			return false
		}
		// Every in-ball node must be in the tree at its true distance.
		for v, d := range dist {
			if d == graph.Unreachable {
				if procs[v].tree.InTree {
					return false
				}
				continue
			}
			if !procs[v].tree.InTree || procs[v].tree.Depth != int64(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// runTreeQuiet is runTree without fatal-on-error semantics suitable for
// property checks.
func runTreeQuiet(t *testing.T, g *graph.Graph, cap int64) []*treeProc {
	t.Helper()
	scale := mustScaleQuiet(g.N())
	sizes := NewSizes(g.N(), scale)
	net, err := congest.NewNetwork(g, congest.Config{MaxRounds: 10*g.N() + 100})
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*treeProc, g.N())
	if _, err := net.Run(func(id int) congest.Process {
		procs[id] = &treeProc{id: id, cap: cap, sizes: sizes}
		return procs[id]
	}); err != nil {
		t.Fatal(err)
	}
	return procs
}
