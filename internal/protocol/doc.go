// Package protocol provides the reusable CONGEST building blocks the
// paper's algorithms are assembled from (§3.1): BFS-tree construction with
// child discovery, a census convergecast (subtree size and depth), reactive
// broadcast/convergecast aggregation, and the message vocabulary shared by
// the source "driver" and the responder nodes of internal/core.
//
// All protocols here are reactive and self-clocking: nodes act on message
// receipt plus the globally known round counter, never on hidden global
// state, so every exchanged bit is accounted for by the congest engine.
// They are also deterministic: ties (e.g. BFS parent choice) are broken by
// node id, so tree shape and aggregation results are identical for every
// engine worker count and across network reuse.
package protocol
