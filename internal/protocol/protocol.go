package protocol

import (
	"math/bits"

	"repro/internal/congest"
	"repro/internal/fixedpoint"
)

// Message kinds used by the local-mixing protocol family.
const (
	// KindBFS grows the BFS tree: Seq=epoch, Value=depth cap (ℓ),
	// Aux=sender depth.
	KindBFS uint8 = 1 + iota
	// KindJoin registers a child with its chosen parent: Seq=epoch.
	KindJoin
	// KindCensus convergecasts subtree statistics: Seq=epoch,
	// Value=subtree size, Aux=subtree max depth.
	KindCensus
	// KindFloodStart announces the flooding window: Seq=epoch,
	// Value=absolute start round F0, Aux=walk length ℓ.
	KindFloodStart
	// KindWalk carries one flooding share: Seq=epoch, Value=fixed-point
	// share.
	KindWalk
	// KindSetR broadcasts a candidate set size and requests a (min,max)
	// convergecast of the local differences x_u: Seq=query id, Value=R.
	KindSetR
	// KindMinMax replies to KindSetR: Seq=query id, Value=min, Aux=max.
	KindMinMax
	// KindQuery broadcasts a binary-search probe: Seq=query id, Value=mid.
	KindQuery
	// KindReply replies to KindQuery: Seq=query id, Value=Σ x_u ≤ mid,
	// Aux=#{x_u ≤ mid} over the subtree.
	KindReply
	// KindCheck broadcasts the [18] global mixing test request: Seq=query
	// id.
	KindCheck
	// KindCheckReply replies to KindCheck: Seq=query id,
	// Value=Σ|w−π| over the subtree.
	KindCheckReply
	// KindStop floods the final result and halts the network: Value=result.
	KindStop
)

// KindName returns a human-readable kind label for traces and errors.
func KindName(k uint8) string {
	switch k {
	case KindBFS:
		return "BFS"
	case KindJoin:
		return "JOIN"
	case KindCensus:
		return "CENSUS"
	case KindFloodStart:
		return "FLOODSTART"
	case KindWalk:
		return "WALK"
	case KindSetR:
		return "SETR"
	case KindMinMax:
		return "MINMAX"
	case KindQuery:
		return "QUERY"
	case KindReply:
		return "REPLY"
	case KindCheck:
		return "CHECK"
	case KindCheckReply:
		return "CHECKREPLY"
	case KindStop:
		return "STOP"
	default:
		return "UNKNOWN"
	}
}

// Sizes groups the bit-accounting helpers for one deployment. Every message
// size is O(log n) bits: ids and counters are ⌈log₂ n⌉-bit words, fixed-point
// values are F+1 = O(log n) bits (Lemma 2's c·log n), and sums get the extra
// ⌈log₂ n⌉ bits they need.
type Sizes struct {
	LogN int
	// TieBits is the number of sub-grid randomized tie-breaking bits
	// appended to x values (0 when the deterministic resolution is used).
	TieBits int
	Scale   fixedpoint.Scale
}

// NewSizes builds the size table for an n-node network.
func NewSizes(n int, scale fixedpoint.Scale) Sizes {
	l := bits.Len(uint(n - 1))
	if l < 4 {
		l = 4
	}
	return Sizes{LogN: l, Scale: scale}
}

// Control returns the size of a control message (kind tag + epoch + one
// counter-sized field).
func (s Sizes) Control() int32 { return int32(8 + 2*s.LogN) }

// Value returns the size of a message carrying one fixed-point probability
// (plus tie bits if enabled).
func (s Sizes) Value() int32 { return int32(8 + s.LogN + s.Scale.ValueBits() + s.TieBits) }

// Sum returns the size of a message carrying a sum of up to n fixed-point
// values plus a count.
func (s Sizes) Sum(n int) int32 {
	return int32(8 + s.LogN + s.Scale.SumBits(n) + s.TieBits + s.LogN + 1)
}

// Tree is the per-node BFS-tree state for one epoch, including the census
// convergecast. It is embedded in the responder process of internal/core and
// reused by every algorithm variant.
type Tree struct {
	Epoch    int32
	InTree   bool
	IsRoot   bool
	Parent   int32
	Depth    int64
	Children []int32

	// Census bookkeeping.
	joinDeadline  int // round at which the children list is final
	childrenFinal bool
	censusSent    bool
	gotCensus     int
	sizeAcc       int64 // subtree size accumulated (self + reported children)
	depthAcc      int64 // subtree max depth accumulated

	// Root-side census results, valid once CensusDone.
	CensusDone bool
	TreeSize   int64
	MaxDepth   int64
}

// Reset prepares the tree for a new epoch.
func (t *Tree) Reset(epoch int32, isRoot bool) {
	*t = Tree{Epoch: epoch, IsRoot: isRoot, Parent: -1}
	if isRoot {
		t.InTree = true
		t.Depth = 0
		t.sizeAcc = 1
		t.depthAcc = 0
	}
}

// StartRoot is called by the driver when it initiates a BFS epoch: the root
// broadcasts the BFS message and opens its own census.
func (t *Tree) StartRoot(ctx *congest.Context, sz Sizes, epoch int32, depthCap int64) {
	t.Reset(epoch, true)
	ctx.Broadcast(congest.Message{
		Kind:  KindBFS,
		Seq:   epoch,
		Value: depthCap,
		Aux:   0, // sender depth
		Bits:  sz.Control(),
	})
	t.joinDeadline = ctx.Round() + 2
}

// OnBFS processes a BFS message at a non-root node. The first BFS of a new
// epoch adopts the sender as parent (ties broken by the engine's
// deterministic inbox order: lowest sender id first), joins, and forwards if
// the depth cap allows. Returns true when the node joined a new epoch
// (callers reset their per-epoch state).
func (t *Tree) OnBFS(ctx *congest.Context, sz Sizes, m congest.Message) bool {
	if m.Seq < t.Epoch || (m.Seq == t.Epoch && t.InTree) {
		return false // stale epoch or already joined
	}
	t.Reset(m.Seq, false)
	t.InTree = true
	t.Parent = m.From
	t.Depth = m.Aux + 1
	t.sizeAcc = 1
	t.depthAcc = t.Depth
	ctx.Send(int(m.From), congest.Message{Kind: KindJoin, Seq: m.Seq, Bits: sz.Control()})
	if t.Depth < m.Value { // below the depth cap: keep flooding
		for i, v := range ctx.Neighbors() {
			if v != m.From {
				ctx.SendNbr(i, congest.Message{
					Kind:  KindBFS,
					Seq:   m.Seq,
					Value: m.Value,
					Aux:   t.Depth,
					Bits:  sz.Control(),
				})
			}
		}
	}
	t.joinDeadline = ctx.Round() + 2
	return true
}

// OnJoin records a child.
func (t *Tree) OnJoin(m congest.Message) {
	if m.Seq != t.Epoch || !t.InTree {
		return
	}
	t.Children = append(t.Children, m.From)
}

// OnCensus merges a child's census report.
func (t *Tree) OnCensus(m congest.Message) {
	if m.Seq != t.Epoch || !t.InTree {
		return
	}
	t.gotCensus++
	t.sizeAcc += m.Value
	if m.Aux > t.depthAcc {
		t.depthAcc = m.Aux
	}
}

// Advance runs the census schedule; the responder calls it every round after
// processing its inbox. When the subtree is complete it reports up (or, at
// the root, publishes CensusDone/TreeSize/MaxDepth).
func (t *Tree) Advance(ctx *congest.Context, sz Sizes) {
	if !t.InTree || t.censusSent {
		return
	}
	if !t.childrenFinal {
		if ctx.Round() < t.joinDeadline {
			return
		}
		t.childrenFinal = true
	}
	if t.gotCensus < len(t.Children) {
		return
	}
	t.censusSent = true
	if t.IsRoot {
		t.CensusDone = true
		t.TreeSize = t.sizeAcc
		t.MaxDepth = t.depthAcc
		return
	}
	ctx.Send(int(t.Parent), congest.Message{
		Kind:  KindCensus,
		Seq:   t.Epoch,
		Value: t.sizeAcc,
		Aux:   t.depthAcc,
		Bits:  sz.Sum(ctx.N()),
	})
}

// Agg tracks one reactive convergecast (SETR→MINMAX, QUERY→REPLY or
// CHECK→CHECKREPLY). The node opens an Agg when the request arrives from its
// parent (or, at the root, when the driver issues it), merges its own
// contribution immediately, and replies upward once every child has replied.
type Agg struct {
	Active  bool
	Kind    uint8 // the *request* kind
	Seq     int32
	Pending int
	Sum     int64
	Count   int64
	Min     int64
	Max     int64

	// Root-side completion flag; valid when the root's Agg closes.
	Done bool
}

// Open starts an aggregation with this node's own contribution.
func (a *Agg) Open(kind uint8, seq int32, children int, x int64, mid int64) {
	*a = Agg{Active: true, Kind: kind, Seq: seq, Pending: children, Min: x, Max: x}
	switch kind {
	case KindSetR:
		// min/max only
	case KindQuery:
		if x <= mid {
			a.Sum = x
			a.Count = 1
		}
	case KindCheck:
		a.Sum = x
	}
}

// Merge folds a child reply in; returns true if the reply matched.
func (a *Agg) Merge(m congest.Message) bool {
	if !a.Active || m.Seq != a.Seq {
		return false
	}
	switch m.Kind {
	case KindMinMax:
		if a.Kind != KindSetR {
			return false
		}
		if m.Value < a.Min {
			a.Min = m.Value
		}
		if m.Aux > a.Max {
			a.Max = m.Aux
		}
	case KindReply:
		if a.Kind != KindQuery {
			return false
		}
		a.Sum += m.Value
		a.Count += m.Aux
	case KindCheckReply:
		if a.Kind != KindCheck {
			return false
		}
		a.Sum += m.Value
	default:
		return false
	}
	a.Pending--
	return true
}

// Complete reports whether every child has replied.
func (a *Agg) Complete() bool { return a.Active && a.Pending <= 0 }

// ReplyUp sends the aggregate to the parent and closes the Agg. The root
// instead marks Done for its driver.
func (a *Agg) ReplyUp(ctx *congest.Context, sz Sizes, t *Tree) {
	if t.IsRoot {
		a.Active = false
		a.Done = true
		return
	}
	var m congest.Message
	switch a.Kind {
	case KindSetR:
		m = congest.Message{Kind: KindMinMax, Seq: a.Seq, Value: a.Min, Aux: a.Max, Bits: sz.Sum(ctx.N())}
	case KindQuery:
		m = congest.Message{Kind: KindReply, Seq: a.Seq, Value: a.Sum, Aux: a.Count, Bits: sz.Sum(ctx.N())}
	case KindCheck:
		m = congest.Message{Kind: KindCheckReply, Seq: a.Seq, Value: a.Sum, Bits: sz.Sum(ctx.N())}
	}
	ctx.Send(int(t.Parent), m)
	a.Active = false
	a.Done = false
}
