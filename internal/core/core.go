package core
