package core

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/congest"
	"repro/internal/graph"
)

// This file implements the dynamic-aware random-walk token protocol in the
// style of Das Sarma, Molla and Pandurangan ("Fast Distributed Computation
// in Dynamic Networks via Random Walks"): a single ℓ-step walk performed by
// forwarding a token, one hop per round. The walker has no advance
// knowledge of the current round's edges — it picks a uniformly random
// superset neighbor and sends the token as a volatile message. When the
// chosen edge is inactive in that round the engine bounces the token back
// (the link-layer loss notification of the dynamic model) and the holder
// restarts the hop next round with a fresh draw; Result.Retries counts
// these restarts. On a static network the protocol degenerates to the
// classical ℓ-round walk with zero retries.
//
// Two hardening layers address adversarial churn:
//
//   - Adaptive adversaries (congest.IsAdaptive): the walk switches to a
//     two-phase hop. The holder first spends one announce round publishing
//     its position via Context.Publish and sending nothing; the adversary
//     reads it at the next round boundary — exactly the round-start state
//     the adaptive model grants — and only then does the holder draw a
//     neighbor and hop. Bounce retries do not re-announce (the position is
//     unchanged), so each retry still costs one round.
//
//   - Retry budget (Config.RetryBudget > 0): the token carries its
//     cumulative bounce count in Message.Aux, surviving holder changes.
//     A holder that bounces ~2·degree consecutive times is stuck — under a
//     backbone-free chaser or a vertex crash it may be fully isolated — and
//     checkpoints the walk: it floods a restart on the non-volatile control
//     plane (which rides the superset, so it escapes even an isolated
//     vertex) and the source begins a fresh attempt with the full step
//     count; TokenWalkResult.Restarts counts these attempts. When the
//     cumulative bounce count exceeds the budget the holder floods an
//     abort instead and the run fails fast with ErrRetryBudget — bounded
//     degradation instead of burning MaxRounds. With RetryBudget == 0 the
//     legacy infinite-patience behavior is preserved exactly.

// Token-protocol message kinds, disjoint from the internal/protocol kinds
// (the token processes never share a network with the census machinery).
const (
	kindToken   uint8 = 0xF0 + iota // the walk token: Value = remaining steps after this hop, Aux = cumulative bounces, Seq = restart generation
	kindDone                        // termination flood: Value = endpoint vertex id
	kindRestart                     // checkpoint-restart flood: Seq = new generation, Aux = cumulative bounces
	kindAbort                       // retry-budget-exhaustion flood: Aux = cumulative bounces
)

// tokenIdleSleep parks non-holders; message arrival wakes them.
const tokenIdleSleep = 1 << 28

// ErrRetryBudget is returned by TokenWalk when the cumulative edge-loss
// retries exceed Config.RetryBudget: the dynamic adversary (or crash
// schedule) defeated the walk within the allotted patience.
var ErrRetryBudget = errors.New("core: token walk retry budget exhausted")

// tokenShared holds the immutable run parameters of the token protocol.
type tokenShared struct {
	lazy     bool
	announce bool // two-phase hops: publish position before hopping (adaptive adversary)
	bits     int32
	steps    int32
	source   int32
	budget   int64 // cumulative bounce budget; 0 = unlimited (legacy)
}

// tokenProc is the per-node token-walk process.
type tokenProc struct {
	sh        *tokenShared
	id        int32
	holder    bool
	awaiting  bool // a hop is in flight; a bounce next round returns the token
	announced bool // this holder has already published its position
	done      bool
	aborted   bool
	remaining int32
	endpoint  int32
	gen       int32 // restart generation carried by the token and its floods
	stuck     int32 // consecutive bounces at this holder (stuck detector)
	restarts  int32 // source only: checkpoint restarts performed
	bounces   int64 // token's cumulative bounce count (travels in Aux)
}

func (p *tokenProc) Init(ctx *congest.Context) {}

func (p *tokenProc) Step(ctx *congest.Context) {
	for _, m := range ctx.Inbox() {
		switch {
		case m.Kind == kindToken && m.Bounced():
			// The edge under our hop vanished: take the token back —
			// restoring the step count the failed hop would have consumed —
			// and restart the hop below.
			p.holder = true
			p.awaiting = false
			p.remaining = int32(m.Value) + 1
			p.bounces = m.Aux + 1
			p.stuck++
		case m.Kind == kindToken:
			p.holder = true
			p.remaining = int32(m.Value)
			p.bounces = m.Aux
			p.gen = m.Seq
			p.stuck = 0
			p.announced = false
		case m.Kind == kindRestart:
			p.onRestart(ctx, m)
		case m.Kind == kindAbort:
			p.onAbort(ctx, m)
			return
		case m.Kind == kindDone:
			p.onDone(ctx, m)
			return
		}
	}
	if p.awaiting {
		// No bounce: last round's hop was delivered; go idle.
		p.awaiting = false
		ctx.Sleep(tokenIdleSleep)
		return
	}
	if !p.holder {
		ctx.Sleep(tokenIdleSleep)
		return
	}
	p.act(ctx)
}

// stuckAfter is the consecutive-bounce threshold declaring a holder stuck:
// after ~2·degree fresh uniform draws all bouncing, the holder is with high
// probability isolated (or nearly so) rather than unlucky.
func stuckAfter(degree int) int32 { return int32(2*degree + 4) }

// act performs one walk step: finish, a budget check, a checkpoint restart
// when stuck, an announce round (adaptive mode), a lazy self-loop, or a
// token hop to a uniformly random superset neighbor (volatile — the walker
// does not know the current round's edges in advance).
func (p *tokenProc) act(ctx *congest.Context) {
	if p.remaining == 0 {
		p.finish(ctx)
		return
	}
	if p.sh.budget > 0 {
		if p.bounces > p.sh.budget {
			p.abort(ctx)
			return
		}
		if p.stuck >= stuckAfter(ctx.Degree()) {
			p.checkpointRestart(ctx)
			return
		}
	}
	if p.sh.announce && !p.announced {
		// Announce round: expose the position the adaptive adversary is
		// entitled to, hop next round against the topology it then picks.
		ctx.Publish(int64(p.id))
		p.announced = true
		return
	}
	if p.sh.lazy && ctx.Rand().Intn(2) == 0 {
		p.remaining-- // lazy self-loop: consumes the round, no message
		if p.remaining == 0 {
			p.finish(ctx)
		}
		return
	}
	i := ctx.Rand().Intn(ctx.Degree())
	ctx.SendNbr(i, congest.Message{
		Kind: kindToken, Flags: congest.FlagVolatile,
		Value: int64(p.remaining - 1), Aux: p.bounces, Seq: p.gen, Bits: p.sh.bits,
	})
	p.holder = false
	p.awaiting = true
}

// checkpointRestart gives up on the current position and returns the walk
// to its checkpoint, the source, for a fresh attempt with the full step
// count. The restart flood is non-volatile — it rides the superset control
// plane, so it escapes a holder whose active edges are all down. The
// cumulative bounce count travels with it: attempts share one budget.
func (p *tokenProc) checkpointRestart(ctx *congest.Context) {
	p.stuck = 0
	p.gen++
	if p.id == p.sh.source {
		// Already at the checkpoint: restart in place.
		p.remaining = p.sh.steps
		p.restarts++
		p.announced = false
		return
	}
	p.holder = false
	p.announced = false
	ctx.Broadcast(congest.Message{Kind: kindRestart, Seq: p.gen, Aux: p.bounces, Bits: p.sh.bits})
}

// onRestart forwards a checkpoint-restart flood once (deduplicated by
// generation) and, at the source, re-creates the token.
func (p *tokenProc) onRestart(ctx *congest.Context, m congest.Message) {
	if m.Seq <= p.gen || p.done || p.aborted {
		return
	}
	p.gen = m.Seq
	for i, v := range ctx.Neighbors() {
		if v != m.From {
			ctx.SendNbr(i, congest.Message{Kind: kindRestart, Seq: m.Seq, Aux: m.Aux, Bits: p.sh.bits})
		}
	}
	if p.id == p.sh.source {
		p.holder = true
		p.awaiting = false
		p.announced = false
		p.stuck = 0
		p.remaining = p.sh.steps
		p.bounces = m.Aux
		p.restarts++
	}
}

// abort declares the retry budget exhausted: flood the failure on the
// control plane and halt. TokenWalk maps it to ErrRetryBudget.
func (p *tokenProc) abort(ctx *congest.Context) {
	p.aborted = true
	p.holder = false
	ctx.Broadcast(congest.Message{Kind: kindAbort, Aux: p.bounces, Bits: p.sh.bits})
	ctx.Halt()
}

// onAbort records the failure, forwards the flood once, and halts.
func (p *tokenProc) onAbort(ctx *congest.Context, m congest.Message) {
	if p.aborted || p.done {
		return
	}
	p.aborted = true
	p.bounces = m.Aux
	for i, v := range ctx.Neighbors() {
		if v != m.From {
			ctx.SendNbr(i, congest.Message{Kind: kindAbort, Aux: m.Aux, Bits: p.sh.bits})
		}
	}
	ctx.Halt()
}

// finish announces the walk endpoint with a superset flood and halts.
func (p *tokenProc) finish(ctx *congest.Context) {
	p.endpoint = p.id
	p.done = true
	ctx.Broadcast(congest.Message{Kind: kindDone, Value: int64(p.id), Bits: p.sh.bits})
	ctx.Halt()
}

// onDone records the endpoint, forwards the flood once, and halts.
func (p *tokenProc) onDone(ctx *congest.Context, m congest.Message) {
	if p.done {
		return
	}
	p.done = true
	p.endpoint = int32(m.Value)
	for i, v := range ctx.Neighbors() {
		if v != m.From {
			ctx.SendNbr(i, congest.Message{Kind: kindDone, Value: m.Value, Bits: p.sh.bits})
		}
	}
	ctx.Halt()
}

// TokenWalkResult reports a completed token walk.
type TokenWalkResult struct {
	// End is the walk's endpoint vertex.
	End int
	// Steps is the requested walk length ℓ.
	Steps int
	// Rounds is the engine round count: ℓ + Retries hop rounds plus the
	// termination flood (under an adaptive adversary, plus one announce
	// round per hop).
	Rounds int
	// Retries counts hop restarts after edge-loss bounces (0 on static
	// networks) — the dynamic model's overhead, equal to
	// Stats.DroppedSends.
	Retries int64
	// Restarts counts checkpoint restarts: walk attempts abandoned at a
	// stuck holder and re-begun at the source (0 unless WithRetryBudget).
	Restarts int
	// Stats are the engine counters.
	Stats *congest.Stats
}

// TokenWalk performs one ℓ-step random walk from source by token
// forwarding, one hop per round, and returns the endpoint. With
// WithTopology the walk runs on a dynamic network and restarts any hop
// whose edge vanished under the token (see the file comment); WithLazy
// selects the lazy walk (self-loop with probability 1/2, consuming a round
// without a message). Under an adaptive adversary each hop is pre-announced
// (two-phase); with WithRetryBudget the walk checkpoint-restarts when stuck
// and fails fast with ErrRetryBudget when the budget is exhausted.
// Deterministic for a fixed seed and any worker count.
func TokenWalk(g *graph.Graph, source, steps int, opts ...Option) (*TokenWalkResult, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	if g.N() < 2 {
		return nil, errors.New("core: token walk needs at least 2 vertices")
	}
	if !g.IsConnected() {
		return nil, graph.ErrNotConnected
	}
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", source, g.N())
	}
	if steps < 0 {
		return nil, fmt.Errorf("core: negative walk length %d", steps)
	}
	if cfg.RetryBudget < 0 {
		return nil, fmt.Errorf("core: negative retry budget %d", cfg.RetryBudget)
	}
	engCfg := cfg.Engine
	if engCfg.MaxRounds == 0 {
		// ℓ hop rounds plus retry and flood headroom. Adversarial churn can
		// exceed any fixed budget; the run then fails with ErrRoundLimit
		// (or, with a retry budget, much earlier with ErrRetryBudget).
		engCfg.MaxRounds = 16*steps + 64*g.N() + 1_000_000
	}
	logn := bits.Len(uint(g.N() - 1))
	sh := &tokenShared{
		lazy:     cfg.Lazy,
		announce: congest.IsAdaptive(engCfg.Topology),
		bits:     int32(8 + 2*logn),
		steps:    int32(steps),
		source:   int32(source),
		budget:   int64(cfg.RetryBudget),
	}
	net, err := congest.NewNetwork(g, engCfg)
	if err != nil {
		return nil, err
	}
	procs := make([]tokenProc, g.N())
	stats, err := net.Run(func(id int) congest.Process {
		p := &procs[id]
		*p = tokenProc{sh: sh, id: int32(id)}
		if id == source {
			p.holder = true
			p.remaining = int32(steps)
		}
		return p
	})
	if err != nil {
		return nil, fmt.Errorf("core: token walk failed: %w", err)
	}
	src := &procs[source]
	if src.sh == nil {
		// Cluster peer that does not own the source (the engine constructs
		// processes only for its vertex range): every halted node learned
		// the outcome from the termination/abort flood, so report from any
		// local process. Restarts are source-side knowledge; the source
		// owner's result is authoritative (internal/cluster merges).
		for i := range procs {
			if procs[i].sh != nil {
				src = &procs[i]
				break
			}
		}
		if src.sh == nil {
			return nil, errors.New("core: token walk constructed no local processes")
		}
	}
	if src.aborted {
		return nil, fmt.Errorf("core: token walk gave up after %d edge-loss retries and %d restarts (budget %d): %w",
			src.bounces, src.restarts, cfg.RetryBudget, ErrRetryBudget)
	}
	return &TokenWalkResult{
		End:      int(src.endpoint),
		Steps:    steps,
		Rounds:   stats.Rounds,
		Retries:  stats.DroppedSends,
		Restarts: int(src.restarts),
		Stats:    stats,
	}, nil
}
