package core

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/congest"
	"repro/internal/graph"
)

// This file implements the dynamic-aware random-walk token protocol in the
// style of Das Sarma, Molla and Pandurangan ("Fast Distributed Computation
// in Dynamic Networks via Random Walks"): a single ℓ-step walk performed by
// forwarding a token, one hop per round. The walker has no advance
// knowledge of the current round's edges — it picks a uniformly random
// superset neighbor and sends the token as a volatile message. When the
// chosen edge is inactive in that round the engine bounces the token back
// (the link-layer loss notification of the dynamic model) and the holder
// restarts the hop next round with a fresh draw; Result.Retries counts
// these restarts. On a static network the protocol degenerates to the
// classical ℓ-round walk with zero retries.

// Token-protocol message kinds, disjoint from the internal/protocol kinds
// (the token processes never share a network with the census machinery).
const (
	kindToken uint8 = 0xF0 + iota // the walk token: Value = remaining steps after this hop
	kindDone                      // termination flood: Value = endpoint vertex id
)

// tokenIdleSleep parks non-holders; message arrival wakes them.
const tokenIdleSleep = 1 << 28

// tokenShared holds the immutable run parameters of the token protocol.
type tokenShared struct {
	lazy bool
	bits int32
}

// tokenProc is the per-node token-walk process.
type tokenProc struct {
	sh        *tokenShared
	id        int32
	holder    bool
	awaiting  bool // a hop is in flight; a bounce next round returns the token
	remaining int32
	endpoint  int32
	done      bool
}

func (p *tokenProc) Init(ctx *congest.Context) {}

func (p *tokenProc) Step(ctx *congest.Context) {
	for _, m := range ctx.Inbox() {
		switch {
		case m.Kind == kindToken && m.Bounced():
			// The edge under our hop vanished: take the token back —
			// restoring the step count the failed hop would have consumed —
			// and restart the hop below.
			p.holder = true
			p.awaiting = false
			p.remaining = int32(m.Value) + 1
		case m.Kind == kindToken:
			p.holder = true
			p.remaining = int32(m.Value)
		case m.Kind == kindDone:
			p.onDone(ctx, m)
			return
		}
	}
	if p.awaiting {
		// No bounce: last round's hop was delivered; go idle.
		p.awaiting = false
		ctx.Sleep(tokenIdleSleep)
		return
	}
	if !p.holder {
		ctx.Sleep(tokenIdleSleep)
		return
	}
	p.act(ctx)
}

// act performs one walk step: finish, a lazy self-loop, or a token hop to a
// uniformly random superset neighbor (volatile — the walker does not know
// the current round's edges in advance).
func (p *tokenProc) act(ctx *congest.Context) {
	if p.remaining == 0 {
		p.finish(ctx)
		return
	}
	if p.sh.lazy && ctx.Rand().Intn(2) == 0 {
		p.remaining-- // lazy self-loop: consumes the round, no message
		if p.remaining == 0 {
			p.finish(ctx)
		}
		return
	}
	i := ctx.Rand().Intn(ctx.Degree())
	ctx.SendNbr(i, congest.Message{
		Kind: kindToken, Flags: congest.FlagVolatile,
		Value: int64(p.remaining - 1), Bits: p.sh.bits,
	})
	p.holder = false
	p.awaiting = true
}

// finish announces the walk endpoint with a superset flood and halts.
func (p *tokenProc) finish(ctx *congest.Context) {
	p.endpoint = p.id
	p.done = true
	ctx.Broadcast(congest.Message{Kind: kindDone, Value: int64(p.id), Bits: p.sh.bits})
	ctx.Halt()
}

// onDone records the endpoint, forwards the flood once, and halts.
func (p *tokenProc) onDone(ctx *congest.Context, m congest.Message) {
	if p.done {
		return
	}
	p.done = true
	p.endpoint = int32(m.Value)
	for i, v := range ctx.Neighbors() {
		if v != m.From {
			ctx.SendNbr(i, congest.Message{Kind: kindDone, Value: m.Value, Bits: p.sh.bits})
		}
	}
	ctx.Halt()
}

// TokenWalkResult reports a completed token walk.
type TokenWalkResult struct {
	// End is the walk's endpoint vertex.
	End int
	// Steps is the requested walk length ℓ.
	Steps int
	// Rounds is the engine round count: ℓ + Retries hop rounds plus the
	// termination flood.
	Rounds int
	// Retries counts hop restarts after edge-loss bounces (0 on static
	// networks) — the dynamic model's overhead, equal to
	// Stats.DroppedSends.
	Retries int64
	// Stats are the engine counters.
	Stats *congest.Stats
}

// TokenWalk performs one ℓ-step random walk from source by token
// forwarding, one hop per round, and returns the endpoint. With
// WithTopology the walk runs on a dynamic network and restarts any hop
// whose edge vanished under the token (see the file comment); WithLazy
// selects the lazy walk (self-loop with probability 1/2, consuming a round
// without a message). Deterministic for a fixed seed and any worker count.
func TokenWalk(g *graph.Graph, source, steps int, opts ...Option) (*TokenWalkResult, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	if g.N() < 2 {
		return nil, errors.New("core: token walk needs at least 2 vertices")
	}
	if !g.IsConnected() {
		return nil, graph.ErrNotConnected
	}
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", source, g.N())
	}
	if steps < 0 {
		return nil, fmt.Errorf("core: negative walk length %d", steps)
	}
	engCfg := cfg.Engine
	if engCfg.MaxRounds == 0 {
		// ℓ hop rounds plus retry and flood headroom. Adversarial churn can
		// exceed any fixed budget; the run then fails with ErrRoundLimit.
		engCfg.MaxRounds = 16*steps + 64*g.N() + 1_000_000
	}
	logn := bits.Len(uint(g.N() - 1))
	sh := &tokenShared{lazy: cfg.Lazy, bits: int32(8 + 2*logn)}
	net, err := congest.NewNetwork(g, engCfg)
	if err != nil {
		return nil, err
	}
	procs := make([]tokenProc, g.N())
	stats, err := net.Run(func(id int) congest.Process {
		p := &procs[id]
		*p = tokenProc{sh: sh, id: int32(id)}
		if id == source {
			p.holder = true
			p.remaining = int32(steps)
		}
		return p
	})
	if err != nil {
		return nil, fmt.Errorf("core: token walk failed: %w", err)
	}
	return &TokenWalkResult{
		End:     int(procs[source].endpoint),
		Steps:   steps,
		Rounds:  stats.Rounds,
		Retries: stats.DroppedSends,
		Stats:   stats,
	}, nil
}
