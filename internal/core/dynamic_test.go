package core

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/gen"
	"repro/internal/graph"
)

const dynEps = 0.15

func ringCliques(t testing.TB, cliques, size int) *graph.Graph {
	t.Helper()
	g, err := gen.RingOfCliques(cliques, size)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// scrubGrows zeroes the execution-dependent allocation counters so results
// can be compared across worker counts.
func scrubGrows(r *Result) {
	r.Stats.StepGrows, r.Stats.DeliverGrows = 0, 0
}

// TestDynamicLocalMixingTimeDeterministic: the acceptance criterion —
// byte-identical results for Workers ∈ {1, 2, GOMAXPROCS} under churn.
func TestDynamicLocalMixingTimeDeterministic(t *testing.T) {
	g := ringCliques(t, 4, 6)
	churn, err := dyngraph.NewEdgeMarkov(g, 7, 0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		res, err := DynamicLocalMixingTime(g, 0, 4, dynEps, churn,
			WithSeed(3), WithLazy(), WithIrregular(), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		scrubGrows(res)
		return res
	}
	ref := run(1)
	if ref.Stats.TopologyChanges == 0 {
		t.Fatal("churn model never toggled an edge")
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: dynamic result diverged:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}

// TestDynamicChurnFreeMatchesStatic: a provider that never churns must
// reproduce the static algorithm's answer exactly (the dynamic flooding
// path divides by the same degrees and reaches the same neighbors).
func TestDynamicChurnFreeMatchesStatic(t *testing.T) {
	g := ringCliques(t, 4, 6)
	still, err := dyngraph.NewEdgeMarkov(g, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := DynamicLocalMixingTime(g, 0, 4, dynEps, still, WithSeed(3), WithLazy(), WithIrregular())
	if err != nil {
		t.Fatal(err)
	}
	stat, err := ApproxLocalMixingTime(g, 0, 4, dynEps, WithSeed(3), WithLazy(), WithIrregular())
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Tau != stat.Tau || dyn.R != stat.R || dyn.Sum != stat.Sum {
		t.Errorf("churn-free dynamic run: tau=%d R=%d sum=%g, static tau=%d R=%d sum=%g",
			dyn.Tau, dyn.R, dyn.Sum, stat.Tau, stat.R, stat.Sum)
	}
	if dyn.Stats.DroppedSends != 0 {
		t.Errorf("churn-free run dropped %d sends", dyn.Stats.DroppedSends)
	}
}

// TestDynamicMixingTime: the [18] baseline under interval churn completes
// and is worker-invariant.
func TestDynamicMixingTime(t *testing.T) {
	g, err := gen.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	churn, err := dyngraph.NewInterval(g, 9, 4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		res, err := DynamicMixingTime(g, 0, dynEps, churn, WithSeed(5), WithLazy(), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		scrubGrows(res)
		return res
	}
	ref := run(1)
	if ref.Tau <= 0 {
		t.Fatalf("dynamic mixing time %d, want > 0", ref.Tau)
	}
	if got := run(2); !reflect.DeepEqual(got, ref) {
		t.Errorf("workers=2: dynamic mixing result diverged")
	}
}

// TestDynamicRejectsNilProvider: the Dynamic entry points demand a churn
// model.
func TestDynamicRejectsNilProvider(t *testing.T) {
	g := ringCliques(t, 4, 6)
	if _, err := DynamicLocalMixingTime(g, 0, 4, dynEps, nil, WithIrregular()); err == nil {
		t.Error("nil provider accepted by DynamicLocalMixingTime")
	}
	if _, err := DynamicMixingTime(g, 0, dynEps, nil); err == nil {
		t.Error("nil provider accepted by DynamicMixingTime")
	}
}

// TestChurnedSweepDeterministic: a multi-source sweep over a dynamic
// network — one immutable provider shared by every worker network — is
// byte-identical for every sweep worker count.
func TestChurnedSweepDeterministic(t *testing.T) {
	g := ringCliques(t, 4, 5)
	churn, err := dyngraph.NewEdgeMarkov(g, 11, 0.15, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ApproxLocal, Beta: 4, Eps: dynEps, Lazy: true, AllowIrregular: true}
	cfg.Engine.Seed = 2
	cfg.Engine.Topology = churn
	run := func(workers int) *MultiResult {
		multi, err := GraphLocalMixingTimeSweep(g, cfg, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return multi
	}
	ref := run(1)
	if ref.Results[0].Stats.TopologyChanges == 0 {
		t.Fatal("churned sweep applied no topology changes")
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: churned sweep diverged", workers)
		}
	}
}

// TestTokenWalkStatic: on a static network the token walk takes exactly one
// hop per round with zero retries, and is reproducible.
func TestTokenWalkStatic(t *testing.T) {
	g, err := gen.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 25
	res, err := TokenWalk(g, 0, steps, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Errorf("static walk retries=%d, want 0", res.Retries)
	}
	if res.End < 0 || res.End >= g.N() {
		t.Fatalf("endpoint %d out of range", res.End)
	}
	if res.Rounds < steps {
		t.Errorf("rounds=%d < steps=%d", res.Rounds, steps)
	}
	if !res.Stats.HaltedAll {
		t.Error("token walk left nodes running")
	}
	again, err := TokenWalk(g, 0, steps, WithSeed(4), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if again.End != res.End || again.Rounds != res.Rounds {
		t.Errorf("reseeded walk diverged: end %d/%d rounds %d/%d", again.End, res.End, again.Rounds, res.Rounds)
	}
	other, err := TokenWalk(g, 0, steps, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if other.End == res.End && other.Rounds == res.Rounds {
		t.Log("note: different seed reached the same endpoint (possible, but suspicious if persistent)")
	}
}

// TestTokenWalkDynamicRetries: under heavy churn the walker must lose hops
// to vanished edges, restart them (per Das Sarma et al.), and still finish
// the exact requested number of steps — deterministically for every worker
// count.
func TestTokenWalkDynamicRetries(t *testing.T) {
	g := ringCliques(t, 4, 6)
	churn, err := dyngraph.NewEdgeMarkov(g, 13, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 40
	run := func(workers int) *TokenWalkResult {
		res, err := TokenWalk(g, 0, steps, WithSeed(8), WithTopology(churn), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	ref := run(1)
	if ref.Retries == 0 {
		t.Error("EdgeMarkov(0.5, 0.3) walk saw no edge-loss retries")
	}
	if ref.Rounds < steps+int(ref.Retries) {
		t.Errorf("rounds=%d, want ≥ steps+retries = %d", ref.Rounds, steps+int(ref.Retries))
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		if got.End != ref.End || got.Rounds != ref.Rounds || got.Retries != ref.Retries {
			t.Errorf("workers=%d: walk diverged: %+v vs %+v", workers, got, ref)
		}
	}
}

// TestTokenWalkLazy: the lazy walk's self-loops consume rounds without
// messages; the walk still completes all steps.
func TestTokenWalkLazy(t *testing.T) {
	g, err := gen.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TokenWalk(g, 3, 30, WithSeed(6), WithLazy())
	if err != nil {
		t.Fatal(err)
	}
	if res.End < 0 || res.End >= g.N() {
		t.Fatalf("endpoint %d out of range", res.End)
	}
}

// TestTokenWalkValidation covers the error paths.
func TestTokenWalkValidation(t *testing.T) {
	g, _ := gen.Torus(4, 4)
	if _, err := TokenWalk(g, -1, 5); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := TokenWalk(g, 0, -1); err == nil {
		t.Error("negative length accepted")
	}
	disc := graph.NewBuilder(4).Build()
	if _, err := TokenWalk(disc, 0, 5); err == nil {
		t.Error("disconnected graph accepted")
	}
}

// TestDynamicEstimateConservesMass: Algorithm 1 on a churned network still
// conserves the fixed-point mass exactly — the dynamic flooding only
// redirects shares, it never leaks them.
func TestDynamicEstimateConservesMass(t *testing.T) {
	g := ringCliques(t, 4, 6)
	churn, err := dyngraph.NewEdgeMarkov(g, 17, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Lazy: true}
	cfg.Engine.Topology = churn
	cfg.Engine.Seed = 1
	est, err := EstimateRWProbability(g, 0, 12, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalMass() != est.Scale.One {
		t.Errorf("dynamic flooding leaked mass: Σw=%d, want %d", est.TotalMass(), est.Scale.One)
	}
	if est.Stats.TopologyChanges == 0 {
		t.Error("churn model never toggled an edge during the estimate")
	}
}
