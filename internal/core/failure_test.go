package core

import (
	"errors"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
)

// Failure-injection tests: the distributed runs must fail loudly and with
// typed errors when the model or resource limits are violated.

func TestBandwidthTooSmallFailsLoudly(t *testing.T) {
	g, _ := gen.RingOfCliques(4, 8)
	cfg := Config{Mode: ApproxLocal, Source: 0, Beta: 4, Eps: 0.1}
	cfg.Engine.BandwidthBits = 4 // absurd: below one control word
	_, err := Run(g, cfg)
	var be *congest.BandwidthError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want BandwidthError", err)
	}
}

func TestRoundLimitSurfaces(t *testing.T) {
	g, _ := gen.RingOfCliques(4, 8)
	cfg := Config{Mode: ApproxLocal, Source: 0, Beta: 4, Eps: 0.1}
	cfg.Engine.MaxRounds = 3 // cannot even finish BFS
	_, err := Run(g, cfg)
	if !errors.Is(err, congest.ErrRoundLimit) {
		t.Fatalf("got %v, want ErrRoundLimit", err)
	}
}

func TestMaxLengthExhaustion(t *testing.T) {
	// A path locally mixes slowly at strict ε; with a tiny length cap the
	// run must abort with ErrNoConvergence — and still halt the network
	// cleanly (no round-limit error, all nodes stopped).
	g, _ := gen.Path(64)
	cfg := Config{Mode: ExactLocal, Source: 0, Beta: 4, Eps: 0.05, Lazy: true,
		AllowIrregular: true, MaxLength: 3}
	res, err := Run(g, cfg)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("got %v, want ErrNoConvergence", err)
	}
	if res == nil || res.Stats == nil || !res.Stats.HaltedAll {
		t.Error("network did not halt cleanly after abort")
	}
}

func TestMixingModeMaxLength(t *testing.T) {
	g, _ := gen.Path(64)
	cfg := Config{Mode: MixTime, Source: 0, Eps: 0.05, Lazy: true, MaxLength: 8}
	_, err := Run(g, cfg)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("got %v, want ErrNoConvergence", err)
	}
}

// TestStatsAccounting sanity-checks the engine counters exposed through
// Result: messages, bits and rounds are all positive and consistent.
func TestStatsAccounting(t *testing.T) {
	g, _ := gen.RingOfCliques(4, 8)
	res, err := ApproxLocalMixingTime(g, 0, 4, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Rounds <= 0 || st.Messages <= 0 || st.Bits <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.Bits < st.Messages { // every message is ≥ 1 bit
		t.Error("bits < messages")
	}
	if st.MaxEdgeBits <= 0 || st.MaxEdgeBits > congest.DefaultBandwidth(g.N()) {
		t.Errorf("max edge bits %d outside (0, budget]", st.MaxEdgeBits)
	}
	if !st.HaltedAll {
		t.Error("run ended without halting everyone")
	}
	if len(res.Phases) == 0 {
		t.Error("no phase trace recorded")
	}
	for i, ph := range res.Phases {
		if ph.Ell <= 0 {
			t.Errorf("phase %d has ℓ=%d", i, ph.Ell)
		}
	}
}

// TestDeterministicDistributedRuns: identical seeds give identical results
// and traces across repeated runs and worker counts.
func TestDeterministicDistributedRuns(t *testing.T) {
	g, _ := gen.RingOfCliques(4, 8)
	run := func(workers int) *Result {
		res, err := ApproxLocalMixingTime(g, 0, 4, 0.15, WithSeed(9), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(1), run(1), run(4)
	for _, other := range []*Result{b, c} {
		if a.Tau != other.Tau || a.R != other.R || a.Stats.Rounds != other.Stats.Rounds ||
			a.Stats.Messages != other.Stats.Messages || a.Stats.Bits != other.Stats.Bits {
			t.Fatalf("nondeterministic run: %+v vs %+v", a.Stats, other.Stats)
		}
	}
}
