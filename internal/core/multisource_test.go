package core

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/exact"
	"repro/internal/fixedpoint"
	"repro/internal/gen"
	"repro/internal/sweep"
)

func TestGraphLocalMixingTimeAllSources(t *testing.T) {
	g, err := gen.RingOfCliques(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ExactLocal, Beta: 3, Eps: 0.1}
	multi, err := GraphLocalMixingTime(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Results) != g.N() {
		t.Fatalf("results for %d sources, want %d", len(multi.Results), g.N())
	}
	// The distributed max must equal the max of per-source twins.
	scale := fixedpoint.MustScaleFor(g.N(), fixedpoint.DefaultC)
	want := -1
	for s := 0; s < g.N(); s++ {
		twin, err := exact.FixedLocalMixing(g, s, scale, 3, 0.1, false, exact.Units(4*g.N()*g.N()))
		if err != nil {
			t.Fatal(err)
		}
		if twin.Tau > want {
			want = twin.Tau
		}
	}
	if multi.Tau != want {
		t.Errorf("graph-wide τ = %d, twin max %d", multi.Tau, want)
	}
	if multi.TotalRounds < g.N() {
		t.Error("total rounds suspiciously small")
	}
}

func TestGraphLocalMixingTimeSampled(t *testing.T) {
	g, err := gen.RingOfCliques(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ApproxLocal, Beta: 3, Eps: 0.1}
	multi, err := GraphLocalMixingTime(g, cfg, []int{0, 7, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Results) != 3 {
		t.Fatalf("results %d", len(multi.Results))
	}
	full, err := GraphLocalMixingTime(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling under-approximates but never exceeds the full max, and on
	// this symmetric graph should match it.
	if multi.Tau > full.Tau {
		t.Errorf("sampled τ %d exceeds full τ %d", multi.Tau, full.Tau)
	}
	if multi.Tau != full.Tau {
		t.Logf("note: sampled %d vs full %d (symmetric graph, usually equal)", multi.Tau, full.Tau)
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the acceptance invariant: the
// full MultiResult — per-source Tau/R/Sum/Phases/Stats, canonical order,
// aggregate counters — is identical for Workers ∈ {1, 2, GOMAXPROCS}, with
// randomized tie-breaking enabled so the per-source RNG streams actually
// matter.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	g, err := gen.RingOfCliques(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ApproxLocal, Beta: 3, Eps: 0.1, TieBreakBits: 4}
	cfg.Engine.Seed = 1234
	ref, err := GraphLocalMixingTimeSweep(g, cfg, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Results) != g.N() || len(ref.Sources) != g.N() {
		t.Fatalf("sweep covered %d sources, want %d", len(ref.Results), g.N())
	}
	if ref.TotalMessages == 0 || ref.TotalBits == 0 {
		t.Fatalf("aggregate counters missing: %+v", ref)
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		got, err := GraphLocalMixingTimeSweep(g, cfg, SweepOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: MultiResult diverged from workers=1", w)
		}
	}
}

// TestSweepMatchesSerialDerivedSeeds pins the seed-derivation contract
// end-to-end: each sweep slot must equal a fresh serial Run whose engine
// seed is sweep.DeriveSeed(base, source) — and per-source seeds must no
// longer be the base seed verbatim (the old correlated-seed bug).
func TestSweepMatchesSerialDerivedSeeds(t *testing.T) {
	g, err := gen.RingOfCliques(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	const base = 77
	cfg := Config{Mode: ExactLocal, Beta: 3, Eps: 0.1, TieBreakBits: 3}
	cfg.Engine.Seed = base
	multi, err := GraphLocalMixingTime(g, cfg, []int{0, 5, 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range multi.Sources {
		seed := sweep.DeriveSeed(base, s)
		if seed == base {
			t.Fatalf("source %d derived the base seed verbatim", s)
		}
		runCfg := cfg
		runCfg.Source = s
		runCfg.Engine.Seed = seed
		want, err := Run(g, runCfg)
		if err != nil {
			t.Fatal(err)
		}
		got := multi.Results[i]
		if got.Tau != want.Tau || got.R != want.R || got.Sum != want.Sum {
			t.Errorf("source %d: sweep (τ=%d R=%d Σ=%v) vs serial derived-seed run (τ=%d R=%d Σ=%v)",
				s, got.Tau, got.R, got.Sum, want.Tau, want.R, want.Sum)
		}
		ws := *want.Stats
		gs := *got.Stats
		ws.StepGrows, ws.DeliverGrows = 0, 0 // execution-, not simulation-level
		gs.StepGrows, gs.DeliverGrows = 0, 0
		if gs != ws {
			t.Errorf("source %d: sweep stats %+v, serial stats %+v", s, gs, ws)
		}
	}
	// End-to-end reproducibility of the whole sweep under a fixed base seed.
	again, err := GraphLocalMixingTime(g, cfg, []int{0, 5, 11})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(multi, again) {
		t.Error("fixed-base-seed sweep is not reproducible end-to-end")
	}
}

// TestSweepPoolBackToBack reuses one pool for consecutive sweeps: warm
// networks and responder slabs must not leak state between sweeps.
func TestSweepPoolBackToBack(t *testing.T) {
	g, err := gen.RingOfCliques(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ApproxLocal, Beta: 3, Eps: 0.1, TieBreakBits: 2}
	cfg.Engine.Seed = 5
	pool, err := NewSweepPool(g, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	first, err := pool.Sweep(SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := pool.Sweep(SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("back-to-back sweeps on one pool diverged")
	}
	// A sampled sweep on the warm pool matches the full sweep's slots.
	sampled, err := pool.Sweep(SweepOptions{Sample: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled.Sources) != 5 {
		t.Fatalf("sampled %d sources, want 5", len(sampled.Sources))
	}
	for i, s := range sampled.Sources {
		if !reflect.DeepEqual(sampled.Results[i], first.Results[s]) {
			t.Errorf("sampled result for source %d diverged from full sweep", s)
		}
	}
	if sampled.Tau > first.Tau {
		t.Errorf("sampled τ %d exceeds full τ %d", sampled.Tau, first.Tau)
	}
}

// TestGraphMixingTimeSweep checks the distributed mixing-time sweep: the
// graph-wide max must match per-source serial MixTime runs, and the
// aggregate counters must sum the per-source engine counters.
func TestGraphMixingTimeSweep(t *testing.T) {
	g, err := gen.RingOfCliques(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Eps: 0.25}
	cfg.Engine.Seed = 9
	multi, err := GraphMixingTime(g, cfg, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Results) != g.N() {
		t.Fatalf("results for %d sources, want %d", len(multi.Results), g.N())
	}
	want, wantArg := -1, -1
	var rounds int
	var msgs, bits int64
	for _, s := range multi.Sources {
		runCfg := cfg
		runCfg.Mode = MixTime
		runCfg.Source = s
		runCfg.Engine.Seed = sweep.DeriveSeed(9, s)
		res, err := Run(g, runCfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tau > want {
			want, wantArg = res.Tau, s
		}
		rounds += res.Stats.Rounds
		msgs += res.Stats.Messages
		bits += res.Stats.Bits
	}
	if multi.Tau != want || multi.ArgMax != wantArg {
		t.Errorf("sweep τ_mix=%d argmax=%d, serial twin τ_mix=%d argmax=%d", multi.Tau, multi.ArgMax, want, wantArg)
	}
	if multi.TotalRounds != rounds || multi.TotalMessages != msgs || multi.TotalBits != bits {
		t.Errorf("aggregates (%d, %d, %d) do not sum the per-source counters (%d, %d, %d)",
			multi.TotalRounds, multi.TotalMessages, multi.TotalBits, rounds, msgs, bits)
	}
}

func TestGraphLocalMixingTimeValidation(t *testing.T) {
	g, _ := gen.Complete(8)
	if _, err := GraphLocalMixingTime(g, Config{Mode: MixTime, Eps: 0.1}, nil); err == nil {
		t.Error("MixTime mode accepted")
	}
	if _, err := GraphLocalMixingTime(g, Config{Mode: ExactLocal, Beta: 2, Eps: 0.1}, []int{}); err == nil {
		t.Error("empty sources accepted")
	}
	if _, err := GraphLocalMixingTime(g, Config{Mode: ExactLocal, Beta: 2, Eps: 0.1}, []int{99}); err == nil {
		t.Error("bad source accepted")
	}
}
