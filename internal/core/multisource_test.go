package core

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/fixedpoint"
	"repro/internal/gen"
)

func TestGraphLocalMixingTimeAllSources(t *testing.T) {
	g, err := gen.RingOfCliques(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ExactLocal, Beta: 3, Eps: 0.1}
	multi, err := GraphLocalMixingTime(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Results) != g.N() {
		t.Fatalf("results for %d sources, want %d", len(multi.Results), g.N())
	}
	// The distributed max must equal the max of per-source twins.
	scale := fixedpoint.MustScaleFor(g.N(), fixedpoint.DefaultC)
	want := -1
	for s := 0; s < g.N(); s++ {
		twin, err := exact.FixedLocalMixing(g, s, scale, 3, 0.1, false, exact.Units(4*g.N()*g.N()))
		if err != nil {
			t.Fatal(err)
		}
		if twin.Tau > want {
			want = twin.Tau
		}
	}
	if multi.Tau != want {
		t.Errorf("graph-wide τ = %d, twin max %d", multi.Tau, want)
	}
	if multi.TotalRounds < g.N() {
		t.Error("total rounds suspiciously small")
	}
}

func TestGraphLocalMixingTimeSampled(t *testing.T) {
	g, err := gen.RingOfCliques(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ApproxLocal, Beta: 3, Eps: 0.1}
	multi, err := GraphLocalMixingTime(g, cfg, []int{0, 7, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Results) != 3 {
		t.Fatalf("results %d", len(multi.Results))
	}
	full, err := GraphLocalMixingTime(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling under-approximates but never exceeds the full max, and on
	// this symmetric graph should match it.
	if multi.Tau > full.Tau {
		t.Errorf("sampled τ %d exceeds full τ %d", multi.Tau, full.Tau)
	}
	if multi.Tau != full.Tau {
		t.Logf("note: sampled %d vs full %d (symmetric graph, usually equal)", multi.Tau, full.Tau)
	}
}

func TestGraphLocalMixingTimeValidation(t *testing.T) {
	g, _ := gen.Complete(8)
	if _, err := GraphLocalMixingTime(g, Config{Mode: MixTime, Eps: 0.1}, nil); err == nil {
		t.Error("MixTime mode accepted")
	}
	if _, err := GraphLocalMixingTime(g, Config{Mode: ExactLocal, Beta: 2, Eps: 0.1}, []int{}); err == nil {
		t.Error("empty sources accepted")
	}
	if _, err := GraphLocalMixingTime(g, Config{Mode: ExactLocal, Beta: 2, Eps: 0.1}, []int{99}); err == nil {
		t.Error("bad source accepted")
	}
}
