package core

import (
	"errors"
	"fmt"

	"repro/internal/congest"
	"repro/internal/fixedpoint"
	"repro/internal/graph"
)

// Mode selects which of the paper's algorithms to run.
type Mode int

const (
	// ApproxLocal is Algorithm 2: doubling lengths, 2-approximation of
	// τ_s(β, ε) under the assumption τ_s·φ(S) = o(1) (Theorem 1).
	ApproxLocal Mode = iota
	// ExactLocal is the §3.2 variant: unit length increments, exact
	// τ_s(β, ε) with no assumptions (Theorem 2).
	ExactLocal
	// MixTime is the baseline distributed mixing-time computation in the
	// style of Molla–Pandurangan [18]: doubling plus binary-search
	// refinement, O(τ_mix log n) rounds.
	MixTime
)

// String returns the mode's human-readable name.
func (m Mode) String() string {
	switch m {
	case ApproxLocal:
		return "approx-local"
	case ExactLocal:
		return "exact-local"
	case MixTime:
		return "mixing-time"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes one distributed run.
type Config struct {
	// Mode selects the algorithm.
	Mode Mode
	// Source is the vertex s the walk starts from.
	Source int
	// Beta is the set-size parameter β ≥ 1: local mixing is sought over
	// sets of size at least n/β. Ignored by MixTime.
	Beta float64
	// Eps is the accuracy parameter ε ∈ (0,1). The paper's running example
	// is ε = 1/8e ≈ 0.046. Algorithm 2 tests against 4ε (Lemma 3) and uses
	// (1+ε) as the set-size grid ratio.
	Eps float64
	// Lazy selects the lazy walk (required on bipartite graphs).
	Lazy bool
	// C is the fixed-point exponent: probabilities are exchanged on a grid
	// of ≈ n^-C (Algorithm 1's rounding). Defaults to fixedpoint.DefaultC.
	C int
	// MaxLength aborts the search when the walk length exceeds it.
	// Defaults to 8·n².
	MaxLength int
	// AllowIrregular permits non-regular graphs in the local modes. The
	// paper's Algorithm 2 assumes regular graphs (targets 1/|S|); on
	// near-regular graphs such as the Figure 1 barbell the same targets
	// remain meaningful, so the flag exists for exactly that use.
	AllowIrregular bool
	// RetryBudget bounds the cumulative edge-loss retries of a TokenWalk on
	// a dynamic network: a stuck holder checkpoint-restarts the walk at the
	// source, and once the budget is exhausted the run fails fast with
	// ErrRetryBudget instead of burning MaxRounds. Zero (the default) keeps
	// the legacy unlimited-patience behavior. Ignored by the Run modes.
	RetryBudget int
	// TieBreakBits enables the paper's §3.1 randomized tie-breaking: each
	// node perturbs x_u by a private random value below 2^-TieBreakBits of
	// the value grid, making all x_u distinct w.h.p. so the binary search
	// can isolate exactly R values. Zero (the default) selects the
	// deterministic alternative implemented here: the source resolves ties
	// arithmetically from (count, sum) at the R-th smallest value, with no
	// randomness and zero failure probability. Both must return the same τ
	// (ablation A3).
	TieBreakBits int
	// Engine carries the congest engine knobs (seed, workers, bandwidth,
	// round limit).
	Engine congest.Config
}

func (c *Config) withDefaults(g *graph.Graph) (Config, error) {
	out := *c
	n := g.N()
	if n < 2 {
		return out, errors.New("core: need at least 2 vertices")
	}
	if !g.IsConnected() {
		return out, graph.ErrNotConnected
	}
	if out.Source < 0 || out.Source >= n {
		return out, fmt.Errorf("core: source %d out of range [0,%d)", out.Source, n)
	}
	if out.Eps <= 0 || out.Eps >= 1 {
		return out, fmt.Errorf("core: need ε ∈ (0,1), got %g", out.Eps)
	}
	if out.Mode != MixTime {
		if out.Beta < 1 {
			return out, fmt.Errorf("core: need β ≥ 1, got %g", out.Beta)
		}
		if _, regular := g.Regular(); !regular && !out.AllowIrregular {
			return out, errors.New("core: local-mixing modes assume a regular graph (set AllowIrregular to override)")
		}
	}
	if !out.Lazy && g.IsBipartite() {
		return out, errors.New("core: simple walk does not mix on a bipartite graph; set Lazy")
	}
	if out.C == 0 {
		out.C = fixedpoint.DefaultC
	}
	if out.TieBreakBits < 0 || out.TieBreakBits > 16 {
		return out, fmt.Errorf("core: TieBreakBits must be in [0,16], got %d", out.TieBreakBits)
	}
	if out.MaxLength == 0 {
		out.MaxLength = 8 * n * n
	}
	return out, nil
}

// PhaseTrace records one epoch (one walk length ℓ) of a run.
type PhaseTrace struct {
	Ell          int   // walk length examined
	StartRound   int   // engine round at which the phase began
	TreeRebuilt  bool  // whether BFS ran this phase
	TreeSize     int64 // census: nodes within the depth cap
	MaxDepth     int64 // census: tree depth
	SizesChecked int   // how many R values were examined
	Queries      int   // binary-search probes issued
}

// Result reports a completed distributed run.
type Result struct {
	Mode Mode
	// Tau is the computed walk length: the (2-approximate or exact) local
	// mixing time, or the mixing time in MixTime mode.
	Tau int
	// R is the witness set size for the local modes (0 in MixTime mode).
	R int
	// Sum is the achieved L1 test value, in probability units.
	Sum float64
	// Scale is the fixed-point grid used on the wire.
	Scale fixedpoint.Scale
	// Phases traces every epoch.
	Phases []PhaseTrace
	// Stats are the engine's round/message/bit counters.
	Stats *congest.Stats
}

// ErrNoConvergence is returned when MaxLength was reached without the test
// passing.
var ErrNoConvergence = errors.New("core: walk length limit reached without mixing")
