package core

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/fixedpoint"
	"repro/internal/graph"
	"repro/internal/protocol"
)

// rwProc is the standalone Algorithm 1 process: every node knows the length
// ℓ up front (it is an input of ESTIMATE-RW-PROBABILITY), floods for exactly
// ℓ steps and halts. Step t sends during round t and is ingested during
// round t+1.
type rwProc struct {
	sh  *shared
	ell int
	w   int64
}

func (p *rwProc) Init(ctx *congest.Context) {}

func (p *rwProc) Step(ctx *congest.Context) {
	var in int64
	for _, m := range ctx.Inbox() {
		if m.Kind == protocol.KindWalk {
			in += m.Value
		}
	}
	p.w += in
	r := ctx.Round()
	if r <= p.ell && p.w > 0 {
		emitShares(ctx, &p.w, p.sh.cfg.Lazy, 0, p.sh.sizes.Value())
	}
	if r >= p.ell+1 {
		ctx.Halt()
	}
}

// RWEstimate is the output of the standalone Algorithm 1 run.
type RWEstimate struct {
	// W holds each node's fixed-point estimate of p_ℓ(u).
	W []int64
	// Scale is the grid the estimates live on.
	Scale fixedpoint.Scale
	// Stats are the engine counters (Rounds is ℓ+1: ℓ flooding steps plus
	// the final ingestion round).
	Stats *congest.Stats
}

// Float converts the estimates to probabilities.
func (e *RWEstimate) Float() []float64 {
	p := make([]float64, len(e.W))
	for i, v := range e.W {
		p[i] = e.Scale.Float(v)
	}
	return p
}

// TotalMass returns Σw; the flooding conserves it exactly (= Scale.One).
func (e *RWEstimate) TotalMass() int64 {
	var s int64
	for _, v := range e.W {
		s += v
	}
	return s
}

// EstimateRWProbability runs Algorithm 1 (ESTIMATE-RW-PROBABILITY, §2.4)
// distributed: it computes the fixed-point estimate of the length-ℓ walk
// distribution from source in ℓ+1 rounds of the CONGEST model. It matches
// exact.FixedWalk bit for bit.
func EstimateRWProbability(g *graph.Graph, source, ell int, cfg Config) (*RWEstimate, error) {
	cfg.Mode = ApproxLocal // irrelevant; reuse validation
	cfg.Source = source
	if cfg.Beta == 0 {
		cfg.Beta = 1
	}
	if cfg.Eps == 0 {
		cfg.Eps = 0.1
	}
	cfg.AllowIrregular = true
	full, err := cfg.withDefaults(g)
	if err != nil {
		return nil, err
	}
	if ell < 0 {
		return nil, fmt.Errorf("core: negative walk length %d", ell)
	}
	scale, err := fixedpoint.ScaleFor(g.N(), full.C)
	if err != nil {
		return nil, err
	}
	sh := &shared{cfg: full, scale: scale, sizes: protocol.NewSizes(g.N(), scale), twoM: int64(2 * g.M())}
	engCfg := full.Engine
	if engCfg.MaxRounds == 0 {
		engCfg.MaxRounds = ell + 16
	}
	net, err := congest.NewNetwork(g, engCfg)
	if err != nil {
		return nil, err
	}
	procs := make([]rwProc, g.N())
	stats, err := net.Run(func(id int) congest.Process {
		p := &procs[id]
		*p = rwProc{sh: sh, ell: ell}
		if id == source {
			p.w = scale.One
		}
		return p
	})
	if err != nil {
		return nil, err
	}
	out := &RWEstimate{W: make([]int64, g.N()), Scale: scale, Stats: stats}
	for i := range procs {
		out.W[i] = procs[i].w
	}
	return out, nil
}
