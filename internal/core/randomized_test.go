package core

import (
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/fixedpoint"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestTwinEquivalenceRandomizedSweep is the flagship property test: across
// randomly generated regular graphs, random sources and both chains, the
// distributed exact algorithm must return precisely the centralized
// fixed-point twin's answer, and the approx algorithm must match the twin
// at doubling checkpoints. Any protocol bug — timing, aggregation, virtual
// node accounting, binary search — breaks this equality.
func TestTwinEquivalenceRandomizedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep")
	}
	const eps = 0.1
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		var g *graph.Graph
		var err error
		switch seed % 4 {
		case 0:
			n := 12 + 2*rng.Intn(10)
			g, err = gen.RandomRegular(n, 4, rng)
		case 1:
			n := 16 + 2*rng.Intn(12)
			g, err = gen.RandomRegular(n, 6, rng)
		case 2:
			g, err = gen.RingOfCliques(3+rng.Intn(3), 5+rng.Intn(4))
		case 3:
			g, err = gen.Torus(3+rng.Intn(3), 3+rng.Intn(4))
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		source := rng.Intn(g.N())
		lazy := g.IsBipartite()
		beta := []float64{2, 3, 5}[rng.Intn(3)]
		scale := fixedpoint.MustScaleFor(g.N(), fixedpoint.DefaultC)

		twinExact, err := exact.FixedLocalMixing(g, source, scale, beta, eps, lazy, exact.Units(8*g.N()*g.N()))
		if err != nil {
			t.Fatalf("seed %d twin: %v", seed, err)
		}
		distExact, err := ExactLocalMixingTime(g, source, beta, eps, WithLazyIf(lazy), WithSeed(seed))
		if err != nil {
			t.Fatalf("seed %d %s src=%d: %v", seed, g.Name(), source, err)
		}
		if distExact.Tau != twinExact.Tau || distExact.R != twinExact.R {
			t.Errorf("seed %d %s src=%d β=%g: exact distributed (τ=%d,R=%d) != twin (τ=%d,R=%d)",
				seed, g.Name(), source, beta, distExact.Tau, distExact.R, twinExact.Tau, twinExact.R)
		}

		twinApprox, err := exact.FixedLocalMixing(g, source, scale, beta, eps, lazy, exact.Doublings(8*g.N()*g.N()))
		if err != nil {
			t.Fatalf("seed %d twin approx: %v", seed, err)
		}
		distApprox, err := ApproxLocalMixingTime(g, source, beta, eps, WithLazyIf(lazy), WithSeed(seed))
		if err != nil {
			t.Fatalf("seed %d approx: %v", seed, err)
		}
		if distApprox.Tau != twinApprox.Tau || distApprox.R != twinApprox.R {
			t.Errorf("seed %d %s src=%d β=%g: approx distributed (τ=%d,R=%d) != twin (τ=%d,R=%d)",
				seed, g.Name(), source, beta, distApprox.Tau, distApprox.R, twinApprox.Tau, twinApprox.R)
		}
	}
}

// TestEstimateRandomizedSweep: Algorithm 1 vs the fixed walk on random
// graphs, random lengths, random sources — bit-exact.
func TestEstimateRandomizedSweep(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		n := 10 + 2*rng.Intn(15)
		g, err := gen.RandomRegular(n, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		source := rng.Intn(n)
		ell := rng.Intn(30)
		lazy := seed%2 == 0
		scale := fixedpoint.MustScaleFor(n, fixedpoint.DefaultC)
		fw, err := exact.NewFixedWalk(g, source, scale, lazy)
		if err != nil {
			t.Fatal(err)
		}
		fw.StepN(ell)
		est, err := EstimateRWProbability(g, source, ell, Config{Lazy: lazy})
		if err != nil {
			t.Fatal(err)
		}
		for u, want := range fw.W() {
			if est.W[u] != want {
				t.Fatalf("seed %d node %d: %d != %d", seed, u, est.W[u], want)
			}
		}
	}
}

// TestMixingRefinementMatchesOracle: the [18] baseline's binary-search
// refinement must land on the exact fixed-point mixing time across random
// graphs (monotonicity makes the refinement sound; this guards it).
func TestMixingRefinementMatchesOracle(t *testing.T) {
	const eps = 0.2
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(3000 + seed))
		n := 12 + 2*rng.Intn(10)
		g, err := gen.RandomRegular(n, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		scale := fixedpoint.MustScaleFor(n, fixedpoint.DefaultC)
		fw, _ := exact.NewFixedWalk(g, 0, scale, false)
		threshold := scale.FromFloat(eps)
		want := -1
		for tt := 0; tt <= 8*n*n; tt++ {
			if _, ok := exact.FixedMixingCheck(g, fw.W(), scale, threshold); ok {
				want = tt
				break
			}
			fw.Step()
		}
		if want == 0 {
			want = 1 // the distributed search starts at ℓ=1
		}
		got, err := MixingTime(g, 0, eps, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if got.Tau != want {
			t.Errorf("seed %d n=%d: distributed τ_mix=%d, oracle %d", seed, n, got.Tau, want)
		}
	}
}
