package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/fixedpoint"
	"repro/internal/gen"
	"repro/internal/graph"
)

// testGraphs returns a family of small connected graphs with a designated
// source, spanning regular, near-regular and irregular topologies.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	gs := make(map[string]*graph.Graph)
	add := func(name string, g *graph.Graph, err error) {
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		gs[name] = g
	}
	g, err := gen.Complete(16)
	add("complete16", g, err)
	g, err = gen.Cycle(17)
	add("cycle17", g, err)
	g, err = gen.RingOfCliques(4, 8)
	add("ringcliques4x8", g, err)
	g, err = gen.RandomRegular(24, 4, rng)
	add("regular24x4", g, err)
	g, err = gen.Torus(4, 5)
	add("torus4x5", g, err)
	return gs
}

// TestEstimateMatchesFixedWalk checks that the distributed Algorithm 1
// produces bit-identical mass vectors to the centralized fixed-point twin,
// for several lengths, both chains.
func TestEstimateMatchesFixedWalk(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, lazy := range []bool{false, true} {
			scale := fixedpoint.MustScaleFor(g.N(), fixedpoint.DefaultC)
			fw, err := exact.NewFixedWalk(g, 0, scale, lazy)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, ell := range []int{0, 1, 2, 3, 5, 8, 13} {
				fw.StepN(ell - fw.T())
				est, err := EstimateRWProbability(g, 0, ell, Config{Lazy: lazy})
				if err != nil {
					t.Fatalf("%s ℓ=%d lazy=%v: %v", name, ell, lazy, err)
				}
				if est.TotalMass() != scale.One {
					t.Errorf("%s ℓ=%d lazy=%v: mass %d, want %d", name, ell, lazy, est.TotalMass(), scale.One)
				}
				for u, want := range fw.W() {
					if est.W[u] != want {
						t.Fatalf("%s ℓ=%d lazy=%v node %d: got %d want %d", name, ell, lazy, u, est.W[u], want)
					}
				}
			}
		}
	}
}

// TestExactLocalMatchesTwin checks that the distributed exact algorithm
// (Theorem 2) returns exactly the value computed by the centralized
// fixed-point twin with unit length increments.
func TestExactLocalMatchesTwin(t *testing.T) {
	const beta, eps = 3.0, 1 / (8 * 2.718281828459045)
	for name, g := range testGraphs(t) {
		scale := fixedpoint.MustScaleFor(g.N(), fixedpoint.DefaultC)
		lazy := g.IsBipartite()
		want, err := exact.FixedLocalMixing(g, 0, scale, beta, eps, lazy, exact.Units(4*g.N()*g.N()))
		if err != nil {
			t.Fatalf("%s twin: %v", name, err)
		}
		cfg := Config{Mode: ExactLocal, Source: 0, Beta: beta, Eps: eps, Lazy: lazy, AllowIrregular: true}
		got, err := Run(g, cfg)
		if err != nil {
			t.Fatalf("%s distributed: %v", name, err)
		}
		if got.Tau != want.Tau || got.R != want.R {
			t.Errorf("%s: distributed (τ=%d R=%d) != twin (τ=%d R=%d)", name, got.Tau, got.R, want.Tau, want.R)
		}
		if got.Sum != scale.Float(want.Sum) {
			t.Errorf("%s: distributed sum %g != twin sum %g", name, got.Sum, scale.Float(want.Sum))
		}
	}
}

// TestApproxLocalMatchesTwin checks the doubling algorithm (Theorem 1)
// against the twin evaluated at the same doubling schedule.
func TestApproxLocalMatchesTwin(t *testing.T) {
	const beta, eps = 3.0, 0.046
	for name, g := range testGraphs(t) {
		scale := fixedpoint.MustScaleFor(g.N(), fixedpoint.DefaultC)
		lazy := g.IsBipartite()
		want, err := exact.FixedLocalMixing(g, 0, scale, beta, eps, lazy, exact.Doublings(4*g.N()*g.N()))
		if err != nil {
			t.Fatalf("%s twin: %v", name, err)
		}
		cfg := Config{Mode: ApproxLocal, Source: 0, Beta: beta, Eps: eps, Lazy: lazy, AllowIrregular: true}
		got, err := Run(g, cfg)
		if err != nil {
			t.Fatalf("%s distributed: %v", name, err)
		}
		if got.Tau != want.Tau || got.R != want.R {
			t.Errorf("%s: distributed (τ=%d R=%d) != twin (τ=%d R=%d)", name, got.Tau, got.R, want.Tau, want.R)
		}
	}
}

// TestMixingTimeMatchesFixedOracle checks the [18] baseline against a
// centralized scan of the fixed-point walk with the same global test.
func TestMixingTimeMatchesFixedOracle(t *testing.T) {
	const eps = 0.125
	for name, g := range testGraphs(t) {
		scale := fixedpoint.MustScaleFor(g.N(), fixedpoint.DefaultC)
		lazy := g.IsBipartite()
		threshold := scale.FromFloat(eps)
		fw, err := exact.NewFixedWalk(g, 0, scale, lazy)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := -1
		for tt := 0; tt <= 4*g.N()*g.N(); tt++ {
			if _, ok := exact.FixedMixingCheck(g, fw.W(), scale, threshold); ok {
				want = tt
				break
			}
			fw.Step()
		}
		if want < 0 {
			t.Fatalf("%s: oracle did not mix", name)
		}
		got, err := MixingTime(g, 0, eps, WithLazyIf(lazy))
		if err != nil {
			t.Fatalf("%s distributed: %v", name, err)
		}
		// The distributed algorithm starts at ℓ=1, so τ=0 (already mixed at
		// start) is reported as 1.
		if want == 0 {
			want = 1
		}
		if got.Tau != want {
			t.Errorf("%s: distributed τ_mix=%d, oracle %d", name, got.Tau, want)
		}
	}
}

// WithLazyIf conditionally enables laziness (test helper).
func WithLazyIf(lazy bool) Option {
	return func(c *Config) { c.Lazy = lazy }
}

// TestRejectsBadInputs exercises the validation paths.
func TestRejectsBadInputs(t *testing.T) {
	g, _ := gen.Cycle(8) // bipartite (even cycle)
	if _, err := ApproxLocalMixingTime(g, 0, 2, 0.05); err == nil {
		t.Error("bipartite + simple walk should be rejected")
	}
	if _, err := ApproxLocalMixingTime(g, 99, 2, 0.05, WithLazy()); err == nil {
		t.Error("out-of-range source should be rejected")
	}
	if _, err := ApproxLocalMixingTime(g, 0, 0.5, 0.05, WithLazy()); err == nil {
		t.Error("β < 1 should be rejected")
	}
	if _, err := ApproxLocalMixingTime(g, 0, 2, 1.5, WithLazy()); err == nil {
		t.Error("ε ≥ 1 should be rejected")
	}
	star, _ := gen.Star(8)
	if _, err := ApproxLocalMixingTime(star, 0, 2, 0.05, WithLazy()); err == nil {
		t.Error("irregular graph should be rejected without AllowIrregular")
	}
	// Disconnected graph.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := ApproxLocalMixingTime(b.Build(), 0, 2, 0.05, WithLazy()); !errors.Is(err, graph.ErrNotConnected) {
		t.Errorf("disconnected graph: got %v, want ErrNotConnected", err)
	}
}

// TestPathLocalVsGlobal reproduces the §2.3(c) separation on a small path:
// the local mixing time is much smaller than the mixing time.
func TestPathLocalVsGlobal(t *testing.T) {
	g, err := gen.Path(64)
	if err != nil {
		t.Fatal(err)
	}
	local, err := ExactLocalMixingTime(g, 0, 8, 0.125, WithLazy(), WithIrregular())
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	global, err := MixingTime(g, 0, 0.125, WithLazy())
	if err != nil {
		t.Fatalf("global: %v", err)
	}
	if local.Tau >= global.Tau {
		t.Errorf("path: local τ=%d should be ≪ global τ=%d", local.Tau, global.Tau)
	}
}
