package core

import (
	"testing"

	"repro/internal/gen"
)

// TestPhaseTraceDoubling: the approx algorithm's phase trace must show the
// doubling schedule ℓ = 1, 2, 4, … and monotone start rounds.
func TestPhaseTraceDoubling(t *testing.T) {
	g, err := gen.Cycle(48) // slow local mixing forces several epochs
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApproxLocalMixingTime(g, 0, 8, 0.05, WithLazy())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) < 3 {
		t.Fatalf("expected several epochs, got %d", len(res.Phases))
	}
	for i, ph := range res.Phases {
		if want := 1 << uint(i); ph.Ell != want {
			t.Errorf("phase %d: ℓ=%d, want %d", i, ph.Ell, want)
		}
		if i > 0 && ph.StartRound <= res.Phases[i-1].StartRound {
			t.Errorf("phase %d starts at %d, not after %d", i, ph.StartRound, res.Phases[i-1].StartRound)
		}
		if ph.SizesChecked < 1 {
			t.Errorf("phase %d checked no sizes", i)
		}
	}
	// The final phase's ℓ is the answer.
	if last := res.Phases[len(res.Phases)-1]; last.Ell != res.Tau {
		t.Errorf("final phase ℓ=%d but τ̂=%d", last.Ell, res.Tau)
	}
}

// TestPhaseTraceUnitIncrements: the exact variant walks ℓ = 1, 2, 3, ….
func TestPhaseTraceUnitIncrements(t *testing.T) {
	g, err := gen.Cycle(32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExactLocalMixingTime(g, 0, 8, 0.05, WithLazy())
	if err != nil {
		t.Fatal(err)
	}
	for i, ph := range res.Phases {
		if ph.Ell != i+1 {
			t.Errorf("phase %d: ℓ=%d, want %d", i, ph.Ell, i+1)
		}
	}
	if len(res.Phases) != res.Tau {
		t.Errorf("phases %d but τ=%d", len(res.Phases), res.Tau)
	}
}

// TestPhaseTraceTreeReuse: once the BFS tree spans the graph, later phases
// must not rebuild it (the footnote 8 optimization).
func TestPhaseTraceTreeReuse(t *testing.T) {
	g, err := gen.Cycle(32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExactLocalMixingTime(g, 0, 8, 0.05, WithLazy())
	if err != nil {
		t.Fatal(err)
	}
	n := int64(g.N())
	sawComplete := false
	for i, ph := range res.Phases {
		if sawComplete && ph.TreeRebuilt {
			t.Errorf("phase %d rebuilt the tree after it spanned the graph", i)
		}
		if ph.TreeSize == n {
			sawComplete = true
		}
	}
	if !sawComplete {
		t.Skip("tree never spanned the graph within τ — cannot exercise reuse here")
	}
}

// TestWitnessSemantics: the reported witness size respects β, and the
// reported sum is below the 4ε threshold.
func TestWitnessSemantics(t *testing.T) {
	for name, g := range testGraphs(t) {
		lazy := g.IsBipartite()
		const beta, eps = 3.0, 0.1
		res, err := ExactLocalMixingTime(g, 0, beta, eps, WithLazyIf(lazy), WithIrregular())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		minR := int(float64(g.N())/beta + 0.999)
		if res.R < minR {
			t.Errorf("%s: witness R=%d below ⌈n/β⌉=%d", name, res.R, minR)
		}
		if res.Sum >= 4*eps {
			t.Errorf("%s: reported sum %v ≥ 4ε", name, res.Sum)
		}
		if res.Sum < 0 {
			t.Errorf("%s: negative sum %v", name, res.Sum)
		}
	}
}
