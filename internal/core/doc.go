// Package core implements the paper's distributed algorithms on top of the
// congest engine and protocol toolkit:
//
//   - Algorithm 1, ESTIMATE-RW-PROBABILITY: deterministic flooding of the
//     random-walk distribution in fixed point (§2.4).
//   - Algorithm 2, LOCAL-MIXING-TIME: the doubling 2-approximation of
//     τ_s(β, ε) with the (1+ε)-grid of set sizes and 4ε test (§3, Theorem 1).
//   - The exact variant with unit length increments (§3.2, Theorem 2).
//   - The [18]-style distributed mixing-time computation used as the
//     baseline the paper compares against (O(τ_mix log n) rounds).
//   - The dynamic-network extensions (DynamicLocalMixingTime,
//     DynamicMixingTime, TokenWalk): the same computations with the walk
//     evolving on a churned topology, following the dynamic-network
//     random-walk line of Das Sarma, Molla and Pandurangan.
//
// Each algorithm is realized by two congest.Process implementations: a
// generic responder (node.go) run by every vertex, and a driver (driver.go)
// run by the source s that orchestrates epochs and makes the stopping
// decision, exactly as in the paper where s collects the R smallest
// differences via distributed binary search over the BFS tree.
//
// # Dynamic networks
//
// With a congest.TopologyProvider attached (Config.Engine.Topology,
// WithTopology), the flooding of Algorithm 1 evolves on the per-round
// active topology: each node divides its mass by its *active* degree and
// sends shares only over active edges, holding everything when isolated, so
// mass is conserved exactly under arbitrary churn. The control plane — BFS
// tree, census, SETR/QUERY/CHECK aggregations, STOP — rides the static
// superset out of band; the measured τ is the earliest length at which the
// *dynamic* walk passes the paper's test against the static targets
// (uniform 1/R for the local modes, the superset's π for MixTime). The
// token protocol in token.go additionally realizes single-walk hops with
// edge-loss restarts (bounce + resend), the dynamic model's per-hop cost.
//
// # Determinism
//
// Every run is reproducible from (graph, Config): per-node randomness comes
// from the engine's seeded RNGs, churn from the provider's seeded per-round
// streams, and results — including multi-source sweeps, which derive
// per-source seeds via sweep.DeriveSeed — are byte-identical for every
// engine and sweep worker count (regression-tested).
package core
