package core

import (
	"errors"
	"runtime"
	"testing"

	"repro/internal/dyngraph"
	"repro/internal/gen"
)

// TestTokenWalkChaserDeterministic: the adaptive token-chaser forces
// edge-loss retries via two-phase (announce, hop) rounds, the walk still
// completes all steps, and the result is byte-identical for every worker
// count.
func TestTokenWalkChaserDeterministic(t *testing.T) {
	g := ringCliques(t, 4, 6)
	chaser, err := dyngraph.NewTokenChaser(g, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 40
	run := func(workers int) *TokenWalkResult {
		res, err := TokenWalk(g, 0, steps, WithSeed(8), WithTopology(chaser), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	ref := run(1)
	if ref.Retries == 0 {
		t.Error("token chaser never hit the walk with an edge loss")
	}
	// Two-phase hops: at least one announce round per successful hop on top
	// of the hop rounds themselves.
	if ref.Rounds < 2*steps {
		t.Errorf("adaptive walk took %d rounds, want ≥ %d (announce + hop per step)", ref.Rounds, 2*steps)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		if got.End != ref.End || got.Rounds != ref.Rounds || got.Retries != ref.Retries || got.Restarts != ref.Restarts {
			t.Errorf("workers=%d: chaser walk diverged: %+v vs %+v", workers, got, ref)
		}
	}
}

// TestTokenWalkCrashRestartDeterministic: a crash-stop/restart schedule
// strands the token on downed holders; with a retry budget the walk
// checkpoint-restarts at the source and still terminates — deterministically
// across worker counts.
func TestTokenWalkCrashRestartDeterministic(t *testing.T) {
	g, err := gen.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	crash, err := dyngraph.NewCrashRestart(g, 31, 0.02, 40)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 60
	run := func(workers int) *TokenWalkResult {
		res, err := TokenWalk(g, 0, steps, WithSeed(12), WithTopology(crash),
			WithRetryBudget(5000), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	ref := run(1)
	if ref.Retries == 0 {
		t.Error("crash schedule never cost the walk a retry")
	}
	if ref.Restarts == 0 {
		t.Error("no checkpoint restart despite 40-round crash outages (stuck detector never fired)")
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		if got.End != ref.End || got.Rounds != ref.Rounds || got.Retries != ref.Retries || got.Restarts != ref.Restarts {
			t.Errorf("workers=%d: crash walk diverged: %+v vs %+v", workers, got, ref)
		}
	}
}

// TestTokenWalkRetryBudgetExhausted: an unrestricted chaser with budget ≥
// degree isolates the holder permanently; the walk must fail fast with
// ErrRetryBudget — not grind to ErrRoundLimit.
func TestTokenWalkRetryBudgetExhausted(t *testing.T) {
	g := ringCliques(t, 3, 5)
	base, err := dyngraph.NewTokenChaser(g, 5, g.N())
	if err != nil {
		t.Fatal(err)
	}
	chaser := base.WithoutBackbone()
	_, err = TokenWalk(g, 0, 30, WithSeed(8), WithTopology(chaser),
		WithRetryBudget(60), WithMaxRounds(50_000))
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("isolating chaser: err = %v, want ErrRetryBudget", err)
	}
	// Legacy mode (budget 0) must still be the old infinite-patience walk:
	// same adversary, bounded rounds → round-limit failure, not a hang.
	_, err = TokenWalk(g, 0, 30, WithSeed(8), WithTopology(chaser), WithMaxRounds(2_000))
	if err == nil || errors.Is(err, ErrRetryBudget) {
		t.Fatalf("budget-0 walk under isolation: err = %v, want round-limit failure", err)
	}
}

// TestTokenWalkRetryBudgetValidation: negative budgets are rejected.
func TestTokenWalkRetryBudgetValidation(t *testing.T) {
	g, err := gen.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TokenWalk(g, 0, 5, WithRetryBudget(-1)); err == nil {
		t.Error("negative retry budget accepted")
	}
}

// TestDynamicEstimateConservesMassUnderCrashes: vertex crashes isolate
// nodes mid-flood; isolated nodes hold their mass for the outage, so the
// fixed-point total is still conserved exactly.
func TestDynamicEstimateConservesMassUnderCrashes(t *testing.T) {
	g := ringCliques(t, 4, 6)
	crash, err := dyngraph.NewCrashRestart(g, 19, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Lazy: true}
	cfg.Engine.Topology = crash
	cfg.Engine.Seed = 1
	est, err := EstimateRWProbability(g, 0, 15, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalMass() != est.Scale.One {
		t.Errorf("crash churn leaked mass: Σw=%d, want %d", est.TotalMass(), est.Scale.One)
	}
	if est.Stats.DroppedSends != 0 {
		// emitShares only sends over active edges, so crashes must never
		// bounce a share — they only change the divisor.
		t.Errorf("dynamic flooding bounced %d shares; active-edge sends never bounce", est.Stats.DroppedSends)
	}
	if est.Stats.TopologyChanges == 0 {
		t.Error("crash schedule never toggled an edge during the estimate")
	}
}

// TestDynamicLocalMixingUnderBoundaryAttack: Algorithm 2 publishes its mass
// (emitShares) for the witness-boundary adversary to read; the run must
// still complete and stay worker-invariant with the adversary reacting to
// published state.
func TestDynamicLocalMixingUnderBoundaryAttack(t *testing.T) {
	// A torus, not a ring of cliques: a clique witness set's only boundary
	// edges would be the ring bridges, which are backbone and uncuttable.
	g, err := gen.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	attack, err := dyngraph.NewBoundaryAttacker(g, 23, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	// β = 2 so the walk is long enough for mass to spread beyond the source
	// within a flood window: with τ = 1 only the source would ever publish,
	// and a singleton witness set at the backbone root has no cuttable
	// boundary.
	run := func(workers int) *Result {
		res, err := DynamicLocalMixingTime(g, 0, 2, dynEps, attack,
			WithSeed(3), WithLazy(), WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		scrubGrows(res)
		return res
	}
	ref := run(1)
	if ref.Tau <= 0 {
		t.Fatalf("tau=%d under boundary attack, want > 0", ref.Tau)
	}
	if ref.Stats.TopologyChanges == 0 {
		t.Fatal("boundary attacker never cut an edge (is the mass being published?)")
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		if got.Tau != ref.Tau || got.Sum != ref.Sum || got.Stats.Rounds != ref.Stats.Rounds {
			t.Errorf("workers=%d: boundary-attacked run diverged", workers)
		}
	}
}
