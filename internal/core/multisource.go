package core

import (
	"fmt"

	"repro/internal/graph"
)

// MultiResult aggregates distributed runs from several sources: the
// graph-wide local mixing time τ(β,ε) = max_s τ_s(β,ε) of Definition 2.
// The paper notes computing it from every vertex costs an n-factor
// (footnote 6) and suggests sampling sources; Sources controls exactly
// that.
type MultiResult struct {
	// Tau is the maximum over the examined sources.
	Tau int
	// ArgMax is a source attaining it.
	ArgMax int
	// Results holds each source's full result, in Sources order.
	Results []*Result
	// TotalRounds sums the engine rounds across the sequential runs (the
	// n-factor overhead the paper describes, made visible).
	TotalRounds int
}

// GraphLocalMixingTime runs the configured local-mixing algorithm from each
// given source in sequence (every vertex when sources is nil) and returns
// the maximum — the distributed analogue of Definition 2's τ(β,ε). cfg.Mode
// must be ApproxLocal or ExactLocal; cfg.Source is ignored.
func GraphLocalMixingTime(g *graph.Graph, cfg Config, sources []int) (*MultiResult, error) {
	if cfg.Mode == MixTime {
		return nil, fmt.Errorf("core: GraphLocalMixingTime needs a local-mixing mode, got %s", cfg.Mode)
	}
	if sources == nil {
		sources = make([]int, g.N())
		for i := range sources {
			sources[i] = i
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: GraphLocalMixingTime needs at least one source")
	}
	out := &MultiResult{Tau: -1}
	for _, s := range sources {
		runCfg := cfg
		runCfg.Source = s
		res, err := Run(g, runCfg)
		if err != nil {
			return nil, fmt.Errorf("core: source %d: %w", s, err)
		}
		out.Results = append(out.Results, res)
		out.TotalRounds += res.Stats.Rounds
		if res.Tau > out.Tau {
			out.Tau = res.Tau
			out.ArgMax = s
		}
	}
	return out, nil
}
