package core

import (
	"fmt"
	"runtime"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/sweep"
)

// SweepOptions selects the sources and the parallelism of a multi-source
// sweep (see internal/sweep): Workers sweep workers, each owning one
// reusable network; Sources explicit (nil = every vertex); Sample a
// deterministic footnote-6 subsample when Sources is nil.
type SweepOptions = sweep.Options

// MultiResult aggregates distributed runs from several sources: the
// graph-wide local mixing time τ(β,ε) = max_s τ_s(β,ε) of Definition 2, or
// the graph-wide mixing time max_s τ_mix_s(ε) in MixTime mode. The paper
// notes computing it from every vertex costs an n-factor (footnote 6) and
// suggests sampling sources; SweepOptions controls exactly that.
//
// All fields are identical for every sweep worker count: results are merged
// in canonical source order, and each per-source run is seeded from (base
// seed, source) alone. The per-source Stats have their StepGrows /
// DeliverGrows allocation counters zeroed — under network reuse those count
// pool warm-up, not the simulation (congest.Stats documents them as
// execution-dependent).
type MultiResult struct {
	// Tau is the maximum over the examined sources.
	Tau int
	// ArgMax is the first source (in Sources order) attaining it.
	ArgMax int
	// Sources lists the examined sources, in result order.
	Sources []int
	// Results holds each source's full result, in Sources order.
	Results []*Result
	// TotalRounds, TotalMessages and TotalBits sum the engine counters
	// across the per-source runs — the n-factor overhead the paper
	// describes, made visible in the paper's round/message accounting.
	TotalRounds   int
	TotalMessages int64
	TotalBits     int64
}

// SweepPool runs multi-source sweeps of one distributed algorithm on one
// graph, keeping its worker networks and responder slabs warm across calls:
// repeated sweeps (different source subsets, samples, or the same sweep
// again) pay network construction once per worker, ever.
type SweepPool struct {
	prep *prepared
	pool *sweep.Pool[*Result]
}

// NewSweepPool validates the config (cfg.Source is ignored; cfg.Mode may be
// any mode, including MixTime) and builds a pool of the given number of
// workers (≤ 0 means GOMAXPROCS). cfg.Engine.Seed is the sweep's base seed:
// each per-source run derives its own engine seed from it via
// sweep.DeriveSeed, so runs are reproducible and uncorrelated.
func NewSweepPool(g *graph.Graph, cfg Config, workers int) (*SweepPool, error) {
	cfg.Source = 0 // per-source override; keep validation independent of the field
	p, err := prepare(g, cfg)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 && p.engCfg.Workers <= 0 {
		// Divide the cores between the two parallelism layers: with W sweep
		// workers, a defaulted engine config would give each of the W
		// networks GOMAXPROCS stepping shards — W·P goroutines contending
		// for P cores. Engine results are worker-count invariant, so capping
		// the inner width is free. An explicit Engine.Workers is respected.
		ew := runtime.GOMAXPROCS(0) / workers
		if ew < 1 {
			ew = 1
		}
		p.engCfg.Workers = ew
	}
	newRunner := func(net *congest.Network) (sweep.Runner[*Result], error) {
		nodes := make([]node, g.N()) // worker-owned responder slab
		return func(net *congest.Network, source int, seed int64) (*Result, error) {
			return p.runOn(net, source, seed, nodes)
		}, nil
	}
	return &SweepPool{prep: p, pool: sweep.NewPool(g, p.engCfg, workers, newRunner)}, nil
}

// Sweep runs the pool's algorithm from every selected source and merges the
// results (o.Workers is ignored — the pool's size rules).
func (sp *SweepPool) Sweep(o SweepOptions) (*MultiResult, error) {
	out, err := sp.pool.Sweep(o)
	if err != nil {
		return nil, err // already sweep:/core:-prefixed by the scheduler/runner
	}
	return mergeSweep(out), nil
}

// MergeSweep folds per-source results, already in canonical source order,
// into a MultiResult — the exact fold Sweep performs. The cluster
// coordinator uses it to assemble a distributed sweep from per-chunk results
// so the merged answer is DeepEqual to the single-process sweep. Each
// result's StepGrows/DeliverGrows counters are zeroed (they count pool
// warm-up, which is execution-dependent).
func MergeSweep(sources []int, results []*Result) *MultiResult {
	return mergeSweep(&sweep.Outcome[*Result]{Sources: sources, Results: results})
}

// mergeSweep folds a sweep outcome into a MultiResult in canonical source
// order.
func mergeSweep(out *sweep.Outcome[*Result]) *MultiResult {
	m := &MultiResult{Tau: -1, Sources: out.Sources, Results: out.Results}
	for i, r := range out.Results {
		r.Stats.StepGrows, r.Stats.DeliverGrows = 0, 0
		m.TotalRounds += r.Stats.Rounds
		m.TotalMessages += r.Stats.Messages
		m.TotalBits += r.Stats.Bits
		if r.Tau > m.Tau {
			m.Tau = r.Tau
			m.ArgMax = out.Sources[i]
		}
	}
	return m
}

// GraphLocalMixingTime runs the configured local-mixing algorithm from each
// given source (every vertex when sources is nil) in parallel and returns
// the maximum — the distributed analogue of Definition 2's τ(β,ε). cfg.Mode
// must be ApproxLocal or ExactLocal; cfg.Source is ignored. It is shorthand
// for GraphLocalMixingTimeSweep with default sweep options.
func GraphLocalMixingTime(g *graph.Graph, cfg Config, sources []int) (*MultiResult, error) {
	return GraphLocalMixingTimeSweep(g, cfg, SweepOptions{Sources: sources})
}

// GraphLocalMixingTimeSweep is GraphLocalMixingTime with full sweep control
// (worker count, source sampling). One-shot; repeated sweeps should hold a
// SweepPool.
func GraphLocalMixingTimeSweep(g *graph.Graph, cfg Config, o SweepOptions) (*MultiResult, error) {
	if cfg.Mode == MixTime {
		return nil, fmt.Errorf("core: GraphLocalMixingTime needs a local-mixing mode, got %s", cfg.Mode)
	}
	return runSweep(g, cfg, o)
}

// GraphMixingTime sweeps the [18]-style distributed mixing-time computation
// over the selected sources: the graph-wide τ_mix(ε) = max_s τ_mix_s(ε)
// with full round/message/bit accounting. cfg.Mode is forced to MixTime;
// cfg.Beta and cfg.Source are ignored.
func GraphMixingTime(g *graph.Graph, cfg Config, o SweepOptions) (*MultiResult, error) {
	cfg.Mode = MixTime
	return runSweep(g, cfg, o)
}

func runSweep(g *graph.Graph, cfg Config, o SweepOptions) (*MultiResult, error) {
	sp, err := NewSweepPool(g, cfg, o.Workers)
	if err != nil {
		return nil, err
	}
	return sp.Sweep(o)
}
