package core

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/fixedpoint"
	"repro/internal/graph"
	"repro/internal/protocol"
)

// prepared bundles a validated Config with the derived protocol parameters
// (fixed-point scale, wire sizes, resolved engine config). It is computed
// once per sweep and shared by every per-source run; only Source and
// Engine.Seed vary between runs.
type prepared struct {
	g      *graph.Graph
	cfg    Config // defaults applied; Source/Engine.Seed overridden per run
	scale  fixedpoint.Scale
	sizes  protocol.Sizes
	engCfg congest.Config
}

// prepare validates the config against the graph and derives the run
// parameters shared by every source.
func prepare(g *graph.Graph, cfg Config) (*prepared, error) {
	full, err := cfg.withDefaults(g)
	if err != nil {
		return nil, err
	}
	scale, err := fixedpoint.ScaleForHeadroom(g.N(), full.C, full.TieBreakBits)
	if err != nil {
		return nil, err
	}
	sizes := protocol.NewSizes(g.N(), scale)
	sizes.TieBits = full.TieBreakBits
	engCfg := full.Engine
	if engCfg.MaxRounds == 0 {
		// Generous default: every epoch costs O(ℓ + D·log·log); bound the
		// whole run by the length cap times a polylog cushion.
		engCfg.MaxRounds = 400*full.MaxLength + 200*g.N() + 2_000_000
	}
	return &prepared{g: g, cfg: full, scale: scale, sizes: sizes, engCfg: engCfg}, nil
}

// runOn executes one per-source computation on the given network — freshly
// built by Run, or a sweep worker's reused one (already reset and reseeded
// by congest.Network.Run; seed is recorded in the run's config). nodes is
// the caller's responder slab: one slab for all responder processes makes
// node creation O(1) allocations for the whole network instead of one per
// vertex, and sweep workers reuse it across sources.
func (p *prepared) runOn(net *congest.Network, source int, seed int64, nodes []node) (*Result, error) {
	if source < 0 || source >= p.g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", source, p.g.N())
	}
	cfg := p.cfg
	cfg.Source = source
	cfg.Engine.Seed = seed
	sh := &shared{
		cfg:   cfg,
		scale: p.scale,
		sizes: p.sizes,
		twoM:  int64(2 * p.g.M()),
	}
	var drv *driver
	stats, err := net.Run(func(id int) congest.Process {
		if id == source {
			drv = newDriver(sh)
			return drv
		}
		nd := &nodes[id]
		*nd = *newNode(sh)
		return nd
	})
	if drv != nil {
		drv.res.Stats = stats
	}
	if err != nil {
		return nil, fmt.Errorf("core: %s run failed: %w", cfg.Mode, err)
	}
	if drv == nil {
		// Cluster peer that does not own the source: the engine constructs
		// processes only for this peer's vertex range, so no driver ran
		// here. The peer contributes its engine statistics; the source
		// owner's result carries the answer (internal/cluster merges).
		return &Result{Mode: cfg.Mode, Stats: stats}, nil
	}
	if drv.failErr != nil {
		return &drv.res, drv.failErr
	}
	return &drv.res, nil
}

// Run executes one distributed algorithm on the graph per the Config and
// returns the source's result together with the engine statistics. The run
// fails if the engine detects a model violation, the round limit elapses, or
// the walk-length cap is reached without the test passing.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	p, err := prepare(g, cfg)
	if err != nil {
		return nil, err
	}
	net, err := congest.NewNetwork(g, p.engCfg)
	if err != nil {
		return nil, err
	}
	return p.runOn(net, p.cfg.Source, p.cfg.Engine.Seed, make([]node, g.N()))
}

// ApproxLocalMixingTime runs Algorithm 2 (LOCAL-MIXING-TIME, Theorem 1): a
// 2-approximation of τ_s(β, ε) via doubling walk lengths, valid when
// τ_s·φ(S) = o(1).
func ApproxLocalMixingTime(g *graph.Graph, source int, beta, eps float64, opts ...Option) (*Result, error) {
	cfg := Config{Mode: ApproxLocal, Source: source, Beta: beta, Eps: eps}
	for _, o := range opts {
		o(&cfg)
	}
	return Run(g, cfg)
}

// ExactLocalMixingTime runs the §3.2 variant (Theorem 2): unit length
// increments with a persistent walk; exact τ_s(β, ε) without assumptions.
func ExactLocalMixingTime(g *graph.Graph, source int, beta, eps float64, opts ...Option) (*Result, error) {
	cfg := Config{Mode: ExactLocal, Source: source, Beta: beta, Eps: eps}
	for _, o := range opts {
		o(&cfg)
	}
	return Run(g, cfg)
}

// MixingTime runs the baseline distributed mixing-time computation in the
// style of Molla–Pandurangan [18]: doubling plus binary-search refinement
// over lengths, O(τ_mix log n) rounds, returning the exact τ_mix_s(ε) on
// the fixed-point grid.
func MixingTime(g *graph.Graph, source int, eps float64, opts ...Option) (*Result, error) {
	cfg := Config{Mode: MixTime, Source: source, Eps: eps}
	for _, o := range opts {
		o(&cfg)
	}
	return Run(g, cfg)
}

// DynamicLocalMixingTime runs Algorithm 2 on a dynamic network: the walk
// mass floods over the per-round active topology chosen by the churn
// provider (see internal/dyngraph), while the control plane — BFS tree,
// census, aggregations — rides the static superset out of band. The
// computed τ is the earliest ℓ at which the ℓ-step *dynamic* walk passes
// the paper's 4ε local-mixing test against the uniform 1/R targets; with a
// churn-free provider it coincides with the static τ_s(β, ε). Deterministic
// for fixed (engine seed, provider seed) and any worker count.
func DynamicLocalMixingTime(g *graph.Graph, source int, beta, eps float64, churn congest.TopologyProvider, opts ...Option) (*Result, error) {
	return dynamicRun(g, Config{Mode: ApproxLocal, Source: source, Beta: beta, Eps: eps}, churn, opts)
}

// DynamicMixingTime is the [18]-style mixing-time computation on a dynamic
// network: the walk evolves on the churned topology while the ε test
// compares against the *superset's* stationary distribution π — the natural
// fixed reference for measuring how churn displaces the walk. (Experiment
// E18 makes the analogous static-vs-churned comparison for Algorithm 2's
// local τ.)
func DynamicMixingTime(g *graph.Graph, source int, eps float64, churn congest.TopologyProvider, opts ...Option) (*Result, error) {
	return dynamicRun(g, Config{Mode: MixTime, Source: source, Eps: eps}, churn, opts)
}

func dynamicRun(g *graph.Graph, cfg Config, churn congest.TopologyProvider, opts []Option) (*Result, error) {
	if churn == nil {
		return nil, fmt.Errorf("core: dynamic %s run needs a topology provider", cfg.Mode)
	}
	for _, o := range opts {
		o(&cfg)
	}
	cfg.Engine.Topology = churn
	return Run(g, cfg)
}

// Option mutates a Config in the convenience constructors.
type Option func(*Config)

// WithLazy selects the lazy walk.
func WithLazy() Option { return func(c *Config) { c.Lazy = true } }

// WithSeed seeds the engine RNGs.
func WithSeed(seed int64) Option { return func(c *Config) { c.Engine.Seed = seed } }

// WithC sets the fixed-point exponent (the paper's c in 1/n^c).
func WithC(cc int) Option { return func(c *Config) { c.C = cc } }

// WithMaxLength caps the walk length searched.
func WithMaxLength(n int) Option { return func(c *Config) { c.MaxLength = n } }

// WithIrregular permits near-regular graphs (e.g. the Figure 1 barbell) in
// the local modes.
func WithIrregular() Option { return func(c *Config) { c.AllowIrregular = true } }

// WithWorkers sets the engine's stepping parallelism.
func WithWorkers(w int) Option { return func(c *Config) { c.Engine.Workers = w } }

// WithMaxRounds caps the engine's round budget (congest.Config.MaxRounds);
// zero keeps the mode's generous default.
func WithMaxRounds(n int) Option { return func(c *Config) { c.Engine.MaxRounds = n } }

// WithTopology runs the algorithm on a dynamic network driven by the given
// churn provider (see internal/dyngraph): the walk evolves on the per-round
// active topology while the control plane rides the static superset.
// Providers following the congest.TopologyProvider statelessness contract
// work in multi-source sweeps too, shared across all worker networks.
func WithTopology(p congest.TopologyProvider) Option {
	return func(c *Config) { c.Engine.Topology = p }
}

// WithRetryBudget bounds a TokenWalk's cumulative edge-loss retries on a
// dynamic network: stuck holders checkpoint-restart the walk at the source,
// and exhausting the budget fails the run fast with ErrRetryBudget. Zero
// (the default) keeps unlimited patience.
func WithRetryBudget(n int) Option { return func(c *Config) { c.RetryBudget = n } }

// WithRandomTieBreak enables the paper's §3.1 randomized tie-breaking with
// the given number of sub-grid bits (the deterministic threshold resolution
// is the default).
func WithRandomTieBreak(bits int) Option {
	return func(c *Config) { c.TieBreakBits = bits }
}

// WithCluster makes the run one peer of a multi-process cluster
// (congest.ClusterConfig): this process computes only the peer's vertex
// range and exchanges round traffic through the config's fabric. The peer
// owning the source returns the full Result; the others return a Result
// carrying only their engine statistics. The determinism contract makes
// the merged outcome identical to the single-process run with the same
// seed. Used by the internal/cluster peer runtime.
func WithCluster(cl *congest.ClusterConfig) Option {
	return func(c *Config) { c.Engine.Cluster = cl }
}
