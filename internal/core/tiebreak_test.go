package core

import (
	"testing"
)

// TestTieBreakVariantsAgree (ablation A3): the paper's randomized
// perturbation and the deterministic threshold accounting must compute the
// same local mixing time — the perturbation is designed to vanish inside
// the 4ε margin.
func TestTieBreakVariantsAgree(t *testing.T) {
	const beta, eps = 3.0, 0.046
	for name, g := range testGraphs(t) {
		lazy := g.IsBipartite()
		det, err := ExactLocalMixingTime(g, 0, beta, eps, WithLazyIf(lazy), WithIrregular())
		if err != nil {
			t.Fatalf("%s deterministic: %v", name, err)
		}
		for _, bits := range []int{4, 8} {
			rnd, err := ExactLocalMixingTime(g, 0, beta, eps,
				WithLazyIf(lazy), WithIrregular(), WithRandomTieBreak(bits), WithSeed(77))
			if err != nil {
				t.Fatalf("%s randomized(%d): %v", name, bits, err)
			}
			if rnd.Tau != det.Tau || rnd.R != det.R {
				t.Errorf("%s bits=%d: randomized (τ=%d R=%d) != deterministic (τ=%d R=%d)",
					name, bits, rnd.Tau, rnd.R, det.Tau, det.R)
			}
		}
	}
}

// TestTieBreakSeedIndependence: different seeds for the perturbation give
// the same τ (the result may not depend on the randomness, only the
// internal search path may).
func TestTieBreakSeedIndependence(t *testing.T) {
	g := testGraphs(t)["ringcliques4x8"]
	var taus []int
	for _, seed := range []int64{1, 2, 3} {
		res, err := ApproxLocalMixingTime(g, 0, 3, 0.046, WithRandomTieBreak(6), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		taus = append(taus, res.Tau)
	}
	if taus[0] != taus[1] || taus[1] != taus[2] {
		t.Errorf("τ varies with perturbation seed: %v", taus)
	}
}

func TestTieBreakValidation(t *testing.T) {
	g := testGraphs(t)["complete16"]
	if _, err := ApproxLocalMixingTime(g, 0, 2, 0.05, WithRandomTieBreak(99)); err == nil {
		t.Error("absurd tie bits accepted")
	}
	if _, err := ApproxLocalMixingTime(g, 0, 2, 0.05, WithRandomTieBreak(-1)); err == nil {
		t.Error("negative tie bits accepted")
	}
}
