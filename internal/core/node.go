package core

import (
	"repro/internal/congest"
	"repro/internal/fixedpoint"
	"repro/internal/protocol"
)

// shared holds the immutable per-run parameters every process sees. All
// fields are public inputs of the algorithm (the CONGEST model gives every
// node n, m and the protocol parameters up front, §1.1).
type shared struct {
	cfg   Config
	scale fixedpoint.Scale
	sizes protocol.Sizes
	twoM  int64
}

// node is the responder process run by every non-source vertex (and
// embedded by the source's driver): it maintains the BFS tree, floods walk
// mass, answers SETR/QUERY/CHECK aggregations, and halts on STOP.
type node struct {
	sh   *shared
	tree protocol.Tree
	agg  protocol.Agg

	// Walk state. phase identifies the current flooding window; in
	// ApproxLocal and MixTime modes the walk restarts every phase, in
	// ExactLocal it persists across phases and advances one step per phase.
	phase int32
	f0    int   // absolute round at which the window opens
	flen  int   // number of flooding steps in the window
	w     int64 // current fixed-point mass

	// Aggregation contribution state.
	targetVal int64 // ⌊One/R⌋ after SETR (or π_u·One during CHECK)
	x         int64 // |w − targetVal|

	// Final output, for inspection after the run.
	stopValue int64
	stopSeen  bool
}

func newNode(sh *shared) *node {
	return &node{sh: sh, phase: -1}
}

// Init implements congest.Process.
func (nd *node) Init(ctx *congest.Context) {}

// Step implements congest.Process.
func (nd *node) Step(ctx *congest.Context) {
	nd.processRound(ctx)
}

// processRound runs the responder logic for one round: ingest the inbox,
// advance the census schedule, and emit flooding shares if the round lies in
// the current window. The driver calls this too before its own logic.
func (nd *node) processRound(ctx *congest.Context) {
	sz := nd.sh.sizes
	var walkIn int64
	for _, m := range ctx.Inbox() {
		switch m.Kind {
		case protocol.KindBFS:
			if nd.tree.OnBFS(ctx, sz, m) {
				nd.agg = protocol.Agg{}
			}
		case protocol.KindJoin:
			nd.tree.OnJoin(m)
		case protocol.KindCensus:
			nd.tree.OnCensus(m)
		case protocol.KindFloodStart:
			nd.onFloodStart(ctx, m)
		case protocol.KindWalk:
			if m.Seq == nd.phase {
				walkIn += m.Value
			}
		case protocol.KindSetR:
			nd.onSetR(ctx, m)
		case protocol.KindQuery:
			nd.onQuery(ctx, m)
		case protocol.KindCheck:
			nd.onCheck(ctx, m)
		case protocol.KindMinMax, protocol.KindReply, protocol.KindCheckReply:
			if nd.agg.Merge(m) && nd.agg.Complete() {
				nd.agg.ReplyUp(ctx, sz, &nd.tree)
			}
		case protocol.KindStop:
			nd.onStop(ctx, m)
			return
		}
	}
	if walkIn != 0 {
		nd.w += walkIn
	}
	nd.tree.Advance(ctx, sz)
	nd.maybeFlood(ctx)
}

// onFloodStart opens a flooding window: Value=F0, Aux=ℓ, Seq=phase.
// In the restarting modes the walk state is cleared; the source re-seeds its
// own mass in the driver.
func (nd *node) onFloodStart(ctx *congest.Context, m congest.Message) {
	if m.Seq <= nd.phase {
		return // stale or duplicate
	}
	nd.phase = m.Seq
	nd.f0 = int(m.Value)
	nd.flen = int(m.Aux)
	if nd.sh.cfg.Mode != ExactLocal {
		nd.w = 0
	}
	for _, c := range nd.tree.Children {
		ctx.Send(int(c), congest.Message{
			Kind: protocol.KindFloodStart, Seq: m.Seq,
			Value: m.Value, Aux: m.Aux, Bits: nd.sh.sizes.Control(),
		})
	}
}

// maybeFlood emits this round's walk shares when the round lies in the
// window [F0, F0+ℓ).
func (nd *node) maybeFlood(ctx *congest.Context) {
	if nd.phase < 0 || nd.w == 0 {
		return
	}
	r := ctx.Round()
	if r < nd.f0 || r >= nd.f0+nd.flen {
		return
	}
	emitShares(ctx, &nd.w, nd.sh.cfg.Lazy, nd.phase, nd.sh.sizes.Value())
}

// emitShares is Algorithm 1's per-round flooding action in fixed point:
// send ⌊w/d⌋ (lazy: hold ⌈w/2⌉ first) per neighbor and keep the remainder.
// On a dynamic network the walk evolves on the current round's topology
// G_r: the divisor is the *active* degree, shares go only over active edges
// (marked volatile — sent over active edges they can never bounce, but the
// marking keeps the walk honest about which plane it rides), and an
// isolated node holds all its mass for the round. Mass is conserved exactly
// in both modes.
func emitShares(ctx *congest.Context, w *int64, lazy bool, seq int32, bits int32) {
	// Expose the held mass to state-aware adversaries (a witness-boundary
	// attacker ranks nodes by it); a no-op on static networks, and never
	// read by oblivious churn.
	ctx.Publish(*w)
	dyn := ctx.Dynamic()
	d := int64(ctx.Degree())
	if dyn {
		d = int64(ctx.ActiveDegree())
	}
	if d == 0 {
		return
	}
	avail := *w
	var hold int64
	if lazy {
		hold = avail - avail/2
		avail /= 2
	}
	share := avail / d
	*w = hold + (avail - d*share)
	if share == 0 {
		return
	}
	msg := congest.Message{
		Kind: protocol.KindWalk, Seq: seq,
		Value: share, Bits: bits,
	}
	if !dyn {
		ctx.Broadcast(msg)
		return
	}
	msg.Flags = congest.FlagVolatile
	for i := range ctx.Neighbors() {
		if ctx.EdgeActive(i) {
			ctx.SendNbr(i, msg)
		}
	}
}

// onSetR handles a set-size announcement: recompute x and convergecast
// (min, max) of x over the subtree. With randomized tie-breaking enabled
// (§3.1), x is shifted up and a private random value fills the low bits, so
// all x are distinct w.h.p.; the perturbation adds at most R·2^-TieBits grid
// units to the final sum, which is absorbed by the 4ε margin exactly as the
// paper's r_u ∈ [1/n⁸, 1/n⁴] is.
func (nd *node) onSetR(ctx *congest.Context, m congest.Message) {
	nd.targetVal = nd.sh.scale.One / m.Value
	x := fixedpoint.Abs(nd.w, nd.targetVal)
	if tb := nd.sh.cfg.TieBreakBits; tb > 0 {
		x = x<<uint(tb) | ctx.Rand().Int63n(1<<uint(tb))
	}
	nd.x = x
	nd.openAgg(ctx, protocol.KindSetR, m.Seq, 0, m)
}

// onQuery handles a binary-search probe: convergecast (Σ x ≤ mid, #x ≤ mid).
func (nd *node) onQuery(ctx *congest.Context, m congest.Message) {
	nd.openAgg(ctx, protocol.KindQuery, m.Seq, m.Value, m)
}

// onCheck handles the global mixing test: x = |w − π_u·One|, convergecast Σ.
func (nd *node) onCheck(ctx *congest.Context, m congest.Message) {
	nd.targetVal = nd.sh.scale.One * int64(ctx.Degree()) / nd.sh.twoM
	nd.x = fixedpoint.Abs(nd.w, nd.targetVal)
	nd.openAgg(ctx, protocol.KindCheck, m.Seq, 0, m)
}

// openAgg starts an aggregation with this node's contribution, forwards the
// request down the tree, and replies immediately when the node is a leaf.
func (nd *node) openAgg(ctx *congest.Context, kind uint8, seq int32, mid int64, m congest.Message) {
	sz := nd.sh.sizes
	nd.agg.Open(kind, seq, len(nd.tree.Children), nd.x, mid)
	fwd := congest.Message{Kind: kind, Seq: seq, Value: m.Value, Aux: m.Aux, Bits: sz.Control()}
	if kind == protocol.KindQuery {
		fwd.Bits = sz.Value()
	}
	for _, c := range nd.tree.Children {
		ctx.Send(int(c), fwd)
	}
	if nd.agg.Complete() {
		nd.agg.ReplyUp(ctx, sz, &nd.tree)
	}
}

// onStop floods the final result and halts.
func (nd *node) onStop(ctx *congest.Context, m congest.Message) {
	if nd.stopSeen {
		return
	}
	nd.stopSeen = true
	nd.stopValue = m.Value
	for i, v := range ctx.Neighbors() {
		if v != m.From {
			ctx.SendNbr(i, congest.Message{Kind: protocol.KindStop, Value: m.Value, Bits: nd.sh.sizes.Control()})
		}
	}
	ctx.Halt()
}
