package core

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/exact"
	"repro/internal/protocol"
)

// driver is the process run by the source vertex s. It embeds the responder
// (the source participates in the tree, the flooding and the aggregations
// like any node) and adds the orchestration: epochs over walk lengths ℓ,
// the loop over candidate set sizes R, the distributed binary search for
// the sum of the R smallest differences, and the stopping decision (§3.1).
type driver struct {
	node

	state     dstate
	phaseNo   int32 // epoch counter (tags BFS/FLOODSTART/WALK messages)
	ell       int   // current walk length
	prevEll   int   // previous (failing) length, for MixTime refinement
	treeDone  bool  // tree spans the whole graph; BFS rebuilds can stop
	treeSize  int64
	maxDepth  int64
	virtCount int64 // nodes outside the depth-capped tree (all have w=0)

	// R loop.
	rGrid []int
	rIdx  int
	curR  int64

	// Binary search state.
	qseq      int32
	lo, hi    int64
	lastMid   int64
	lastCnt   int64
	lastSum   int64
	haveEval  bool
	finalEval bool

	// MixTime refinement (binary search over lengths once doubling passes).
	refining  bool
	refLo     int
	refHi     int
	passedSum int64

	// Outcome.
	res     Result
	failErr error
	done    bool
}

type dstate int

const (
	dsCensus dstate = iota
	dsFloodWait
	dsMinMax
	dsSearch
	dsDone
)

func newDriver(sh *shared) *driver {
	d := &driver{node: node{sh: sh, phase: -1}}
	d.res.Mode = sh.cfg.Mode
	d.res.Scale = sh.scale
	return d
}

// Init starts epoch 1 with ℓ = 1.
func (d *driver) Init(ctx *congest.Context) {
	if d.sh.cfg.Mode != MixTime {
		d.rGrid = exact.CandidateSizes(ctx.N(), d.sh.cfg.Beta, true, d.sh.cfg.Eps)
	}
	d.ell = 1
	d.phaseNo = 0
	d.startEpoch(ctx)
}

// Step implements congest.Process: responder duties first, then driving.
func (d *driver) Step(ctx *congest.Context) {
	d.processRound(ctx)
	if d.done {
		return
	}
	switch d.state {
	case dsCensus:
		if d.tree.CensusDone {
			d.treeSize = d.tree.TreeSize
			d.maxDepth = d.tree.MaxDepth
			d.virtCount = int64(ctx.N()) - d.treeSize
			if d.treeSize == int64(ctx.N()) {
				d.treeDone = true
			}
			d.tracePhase().TreeSize = d.treeSize
			d.tracePhase().MaxDepth = d.maxDepth
			d.issueFloodStart(ctx)
		}
	case dsFloodWait:
		if ctx.Round() >= d.f0+d.flen {
			d.beginChecks(ctx)
		}
	case dsMinMax:
		if d.agg.Done {
			d.agg.Done = false
			d.onMinMax(ctx)
		}
	case dsSearch:
		if d.agg.Done {
			d.agg.Done = false
			d.onProbe(ctx)
		}
	}
}

// tracePhase returns the current phase's trace entry.
func (d *driver) tracePhase() *PhaseTrace {
	return &d.res.Phases[len(d.res.Phases)-1]
}

// startEpoch begins the epoch for the current ℓ: BFS (if the tree does not
// yet span the graph) or directly the flooding window.
func (d *driver) startEpoch(ctx *congest.Context) {
	d.phaseNo++
	d.res.Phases = append(d.res.Phases, PhaseTrace{
		Ell:        d.ell,
		StartRound: ctx.Round(),
	})
	if !d.treeDone {
		cap := int64(d.ell)
		if d.sh.cfg.Mode == MixTime {
			cap = int64(ctx.N()) // [18] checks a global sum: span everything
		}
		d.tracePhase().TreeRebuilt = true
		d.tree.StartRoot(ctx, d.sh.sizes, d.phaseNo, cap)
		d.state = dsCensus
		return
	}
	d.tracePhase().TreeSize = d.treeSize
	d.tracePhase().MaxDepth = d.maxDepth
	d.issueFloodStart(ctx)
}

// issueFloodStart schedules the flooding window and seeds the source mass.
func (d *driver) issueFloodStart(ctx *congest.Context) {
	flen := d.ell
	if d.sh.cfg.Mode == ExactLocal {
		flen = 1 // the walk persists; each epoch advances one step
	}
	f0 := ctx.Round() + int(d.maxDepth) + 2
	d.phase = d.phaseNo
	d.f0 = f0
	d.flen = flen
	switch d.sh.cfg.Mode {
	case ExactLocal:
		if d.ell == 1 {
			d.w = d.sh.scale.One
		}
	default:
		d.w = d.sh.scale.One // restart
	}
	for _, c := range d.tree.Children {
		ctx.Send(int(c), congest.Message{
			Kind: protocol.KindFloodStart, Seq: d.phaseNo,
			Value: int64(f0), Aux: int64(flen), Bits: d.sh.sizes.Control(),
		})
	}
	d.state = dsFloodWait
}

// beginChecks starts the per-length testing: the R loop for the local modes,
// or the single global check for MixTime.
func (d *driver) beginChecks(ctx *congest.Context) {
	if d.sh.cfg.Mode == MixTime {
		d.qseq++
		d.curR = 0
		// The driver contributes through the same path as everyone else.
		d.onCheck(ctx, congest.Message{Seq: d.qseq})
		d.state = dsSearch // completion handled in onProbe's MixTime branch
		return
	}
	d.rIdx = 0
	d.issueSetR(ctx)
}

// issueSetR announces the next candidate size R and collects (min,max).
func (d *driver) issueSetR(ctx *congest.Context) {
	r := d.rGrid[d.rIdx]
	d.curR = int64(r)
	d.qseq++
	d.tracePhase().SizesChecked++
	d.onSetR(ctx, congest.Message{Seq: d.qseq, Value: int64(r)})
	d.state = dsMinMax
}

// virtValue is the x value of every out-of-tree node: they hold w = 0, so
// x = ⌊One/R⌋, shifted when randomized tie-breaking is on (virtual nodes
// get zero tie bits — they are indistinguishable anyway and are resolved as
// a block by the threshold arithmetic).
func (d *driver) virtValue() int64 {
	return (d.sh.scale.One / d.curR) << uint(d.sh.cfg.TieBreakBits)
}

// onMinMax folds the virtual (out-of-tree) nodes into the bounds and starts
// the binary search for the R-th smallest difference.
func (d *driver) onMinMax(ctx *congest.Context) {
	d.lo, d.hi = d.agg.Min, d.agg.Max
	if d.virtCount > 0 {
		v := d.virtValue()
		if v < d.lo {
			d.lo = v
		}
		if v > d.hi {
			d.hi = v
		}
	}
	d.haveEval = false
	d.finalEval = false
	d.stepSearch(ctx)
}

// stepSearch issues the next probe, or finishes the current R.
func (d *driver) stepSearch(ctx *congest.Context) {
	if d.lo < d.hi {
		mid := d.lo + (d.hi-d.lo)/2
		d.issueQuery(ctx, mid, false)
		return
	}
	// lo == hi == T, the R-th smallest value. Reuse the cached evaluation
	// at T when the final probe already landed there.
	if d.haveEval && d.lastMid == d.lo {
		d.finishR(ctx, d.lastCnt, d.lastSum)
		return
	}
	d.issueQuery(ctx, d.lo, true)
}

// issueQuery broadcasts one binary-search probe.
func (d *driver) issueQuery(ctx *congest.Context, mid int64, final bool) {
	d.qseq++
	d.finalEval = final
	d.lastMid = mid
	d.tracePhase().Queries++
	d.onQuery(ctx, congest.Message{Seq: d.qseq, Value: mid})
	d.state = dsSearch
}

// onProbe handles a completed aggregation in dsSearch: either a MixTime
// decision, a binary-search step, or the final evaluation at T.
func (d *driver) onProbe(ctx *congest.Context) {
	if d.sh.cfg.Mode == MixTime {
		d.decideMixing(ctx, d.agg.Sum)
		return
	}
	cnt, sum := d.agg.Count, d.agg.Sum
	if d.virtCount > 0 {
		v := d.virtValue()
		if v <= d.lastMid {
			cnt += d.virtCount
			sum += d.virtCount * v
		}
	}
	d.haveEval = true
	d.lastCnt = cnt
	d.lastSum = sum
	if d.finalEval {
		d.finishR(ctx, cnt, sum)
		return
	}
	if cnt >= d.curR {
		d.hi = d.lastMid
	} else {
		d.lo = d.lastMid + 1
	}
	d.stepSearch(ctx)
}

// finishR applies Algorithm 2's test: Σ of the R smallest differences < 4ε.
func (d *driver) finishR(ctx *congest.Context, cntAtT, sumAtT int64) {
	t := d.lo
	sumR := sumAtT - (cntAtT-d.curR)*t
	tb := uint(d.sh.cfg.TieBreakBits)
	threshold := d.sh.scale.FromFloat(4*d.sh.cfg.Eps) << tb
	if sumR < threshold {
		d.res.Tau = d.ell
		d.res.R = int(d.curR)
		d.res.Sum = d.sh.scale.Float(sumR >> tb)
		d.finish(ctx, int64(d.ell))
		return
	}
	d.rIdx++
	if d.rIdx < len(d.rGrid) {
		d.issueSetR(ctx)
		return
	}
	// Every size failed at this ℓ: advance the length.
	next := d.ell + 1
	if d.sh.cfg.Mode == ApproxLocal {
		next = d.ell * 2
	}
	d.advanceLength(ctx, next)
}

// decideMixing handles the [18] baseline decision: global Σ|w−π| < ε.
func (d *driver) decideMixing(ctx *congest.Context, sum int64) {
	threshold := d.sh.scale.FromFloat(d.sh.cfg.Eps)
	pass := sum < threshold
	if !d.refining {
		if pass {
			if d.ell == 1 {
				d.res.Tau = 1
				d.res.Sum = d.sh.scale.Float(sum)
				d.finish(ctx, 1)
				return
			}
			// Monotonicity (Lemma 1): τ ∈ (ℓ/2, ℓ]. Refine by binary search
			// over lengths, restarting the walk for each probe.
			d.refining = true
			d.refLo = d.prevEll + 1
			d.refHi = d.ell
			d.passedSum = sum
			d.refineStep(ctx)
			return
		}
		d.prevEll = d.ell
		d.advanceLength(ctx, d.ell*2)
		return
	}
	// Refinement probe at d.ell.
	if pass {
		d.refHi = d.ell
		d.passedSum = sum
	} else {
		d.refLo = d.ell + 1
	}
	d.refineStep(ctx)
}

// refineStep continues the length binary search or finishes.
func (d *driver) refineStep(ctx *congest.Context) {
	if d.refLo >= d.refHi {
		d.res.Tau = d.refHi
		d.res.Sum = d.sh.scale.Float(d.passedSum)
		d.finish(ctx, int64(d.refHi))
		return
	}
	mid := d.refLo + (d.refHi-d.refLo)/2
	d.advanceLength(ctx, mid)
}

// advanceLength moves to the next epoch with the given walk length, or
// aborts when the cap is exceeded.
func (d *driver) advanceLength(ctx *congest.Context, next int) {
	if next > d.sh.cfg.MaxLength {
		d.failErr = fmt.Errorf("%w (cap %d, mode %s)", ErrNoConvergence, d.sh.cfg.MaxLength, d.sh.cfg.Mode)
		d.finish(ctx, -1)
		return
	}
	d.ell = next
	d.startEpoch(ctx)
}

// finish floods STOP and halts the source.
func (d *driver) finish(ctx *congest.Context, value int64) {
	d.state = dsDone
	d.done = true
	ctx.Broadcast(congest.Message{Kind: protocol.KindStop, Value: value, Bits: d.sh.sizes.Control()})
	ctx.Halt()
}
