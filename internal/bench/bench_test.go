package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunSmall executes every registered experiment at small
// scale; this is the integration test that keeps the harness from rotting.
func TestAllExperimentsRunSmall(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(Small)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tab.ID != e.ID {
				t.Errorf("table id %q, want %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows")
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tab.Header))
				}
			}
		})
	}
}

func TestRegistryIdsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("e1"); !ok {
		t.Error("case-insensitive Find failed")
	}
	if _, ok := Find("E999"); ok {
		t.Error("phantom experiment found")
	}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"small": Small, "S": Small, "full": Full, "LARGE": Full} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("medium"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "T", Title: "test", Header: []string{"a", "bb"}}
	tab.Add(1, 3.14159)
	tab.Add("xyz", 0.00001)
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "== T: test ==") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float formatting: %q", out)
	}
	if !strings.Contains(out, "1.00e-05") {
		t.Errorf("small float formatting: %q", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345:   "12345",
		42.5:    "42.5",
		0.5:     "0.500",
		0.0001:  "1.00e-04",
		1691.25: "1691",
	}
	for in, want := range cases {
		if got := fmtFloat(in); got != want {
			t.Errorf("fmtFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
