package bench

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/spread"
)

// E15EngineCounters surfaces the round engine's liveness and allocation
// counters across representative workloads: one CONGEST algorithm run
// (Algorithm 2), one pure flooding run (Algorithm 1), and the two
// engine-backed gossip variants. The grow counters are the observable form
// of the engine's zero-allocation property: in the steady state they stay
// flat no matter how many messages move, so a per-message allocation
// regression shows up here (and in the congest package's regression test)
// before it shows up in wall-clock time.
func E15EngineCounters(sc Scale) (*Table, error) {
	k := 12
	ell := 64
	if sc == Full {
		k = 32
		ell = 256
	}
	t := &Table{
		ID:    "E15",
		Title: "Engine telemetry: liveness and allocation counters per workload",
		Note: "steps = Step invocations (O(active), not O(n·rounds)); skips/wakes/ff = sleep machinery; " +
			"grows = buffer growth events (flat in steady state = zero-allocation round loop); payload_w = arena []int32 words",
		Header: []string{"workload", "n", "rounds", "msgs", "steps", "skips", "wakes", "ff_rounds", "step_grows", "dlv_grows", "payload_w"},
	}
	add := func(name string, n int, st *congest.Stats) {
		t.Add(name, n, st.Rounds, st.Messages, st.ActiveSteps, st.SleepSkips, st.Wakeups,
			st.SkippedRounds, st.StepGrows, st.DeliverGrows, st.PayloadWords)
	}

	g, err := gen.RingOfCliques(8, k)
	if err != nil {
		return nil, err
	}
	res, err := core.ApproxLocalMixingTime(g, 0, 8, 0.15)
	if err != nil {
		return nil, err
	}
	add(fmt.Sprintf("algo2/ringcliques(8,%d)", k), g.N(), res.Stats)

	est, err := core.EstimateRWProbability(g, 0, ell, core.Config{})
	if err != nil {
		return nil, err
	}
	add(fmt.Sprintf("estimate-rw(ℓ=%d)", ell), g.N(), est.Stats)

	bb, err := gen.Barbell(8, k)
	if err != nil {
		return nil, err
	}
	pc, err := spread.RunCongest(bb, spread.Config{Beta: 8, Seed: 11, StopAtPartial: true})
	if err != nil {
		return nil, err
	}
	add("pushpull-congest/barbell", bb.N(), pc.Stats)

	pe, err := spread.RunOnEngine(bb, spread.Config{Beta: 8, Seed: 11, StopAtPartial: true})
	if err != nil {
		return nil, err
	}
	add("pushpull-local-engine/barbell", bb.N(), pe.Stats)
	return t, nil
}
