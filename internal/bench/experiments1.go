package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spectral"
)

// PaperEps is ε = 1/8e, the accuracy parameter the paper suggests (§3).
var PaperEps = 1.0 / (8 * math.E)

// E1BarbellGap reproduces Figure 1's family and the §2.3(d) claim: on the
// β-barbell the local mixing time stays O(1) while the mixing time grows
// like β² — the defining separation of the paper.
func E1BarbellGap(sc Scale) (*Table, error) {
	k := 12
	betas := []int{2, 4, 8}
	if sc == Full {
		k = 16
		betas = []int{2, 4, 8, 16}
	}
	t := &Table{
		ID:     "E1",
		Title:  "β-barbell (Figure 1): local vs global mixing",
		Note:   fmt.Sprintf("clique size k=%d, ε=1/8e; τ_s from the exact oracle, τ̂_s from the distributed Algorithm 2", k),
		Header: []string{"beta", "n", "diam", "tau_local", "tau_mix", "gap", "dist_tau", "dist_rounds"},
	}
	for _, beta := range betas {
		g, err := gen.Barbell(beta, k)
		if err != nil {
			return nil, err
		}
		diam, err := g.DiameterApprox()
		if err != nil {
			return nil, err
		}
		local, err := exact.LocalMixing(g, 0, float64(beta), PaperEps, exact.LocalOptions{MaxT: 1 << 22, Grid: true})
		if err != nil {
			return nil, err
		}
		mix, err := exact.MixingTime(g, 0, PaperEps, false, 1<<22)
		if err != nil {
			return nil, err
		}
		dist, err := core.ApproxLocalMixingTime(g, 0, float64(beta), PaperEps, core.WithIrregular())
		if err != nil {
			return nil, err
		}
		t.Add(beta, g.N(), diam, local.T, mix, float64(mix)/float64(max(1, local.T)),
			dist.Tau, dist.Stats.Rounds)
	}
	return t, nil
}

// E2GraphClasses reproduces the §2.3 qualitative table across graph
// families: complete (both Θ(1)), expander (both Θ(log n)), path
// (n² vs (n/β)²), barbell (Ω(β²) vs O(1)), plus torus and hypercube.
func E2GraphClasses(sc Scale) (*Table, error) {
	nBase := 128
	if sc == Full {
		nBase = 512
	}
	beta := 8.0
	rng := rand.New(rand.NewSource(1))
	type entry struct {
		g    *graph.Graph
		lazy bool
	}
	var entries []entry
	gc, err := gen.Complete(nBase)
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{gc, false})
	ge, err := gen.RandomRegular(nBase, 6, rng)
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{ge, false})
	gp, err := gen.Path(nBase / 2) // paths mix in Θ(n²): keep n moderate
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{gp, true})
	gb, err := gen.Barbell(8, nBase/16)
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{gb, false})
	gr, err := gen.RingOfCliques(8, nBase/16)
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{gr, false})
	side := int(math.Sqrt(float64(nBase)))
	gt, err := gen.Torus(side, side)
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{gt, true})
	gh, err := gen.Hypercube(int(math.Log2(float64(nBase))))
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{gh, true})

	t := &Table{
		ID:    "E2",
		Title: "graph classes (§2.3): τ_mix vs τ_s(β=8), spectra",
		Note: "ε=1/8e; lazy chain where the graph is bipartite; λ₂ and Φ̂ for the lazy chain.\n" +
			"Note the assumption boundary: the barbell clique leaks through one port (τ_s·φ(S) ≪ 1 ⇒ huge gap),\n" +
			"while the ring-of-cliques clique leaks through two — with small k that violates τ_s·φ(S) = o(1)\n" +
			"and no strict-ε local mixing set smaller than the whole graph exists.",
		Header: []string{"graph", "n", "diam", "lambda2", "phi_hat", "tau_mix", "tau_local", "gap"},
	}
	for _, e := range entries {
		g := e.g
		diam, err := g.DiameterApprox()
		if err != nil {
			return nil, err
		}
		l2, err := spectral.SecondEigenvalue(g, spectral.Options{Lazy: true})
		if err != nil {
			return nil, err
		}
		phi, err := spectral.Conductance(g, spectral.Options{Lazy: true})
		if err != nil {
			return nil, err
		}
		mix, err := exact.MixingTime(g, 0, PaperEps, e.lazy, 1<<24)
		if err != nil {
			return nil, err
		}
		local, err := exact.LocalMixing(g, 0, beta, PaperEps, exact.LocalOptions{MaxT: 1 << 24, Grid: true, Lazy: e.lazy})
		if err != nil {
			return nil, err
		}
		t.Add(g.Name(), g.N(), diam, l2, phi, mix, local.T, float64(mix)/float64(max(1, local.T)))
	}
	return t, nil
}

// E3ApproxRounds measures Theorem 1: the distributed Algorithm 2's round
// count against the τ̂·log²n·log_{1+ε}β formula, and its approximation
// quality against the centralized oracle.
func E3ApproxRounds(sc Scale) (*Table, error) {
	eps := 0.15 // coarser grid keeps log_{1+ε}β moderate; same for all rows
	type wl struct {
		name string
		g    *graph.Graph
		beta float64
	}
	var wls []wl
	sizes := []int{8, 12, 16}
	if sc == Full {
		sizes = []int{8, 12, 16, 24, 32}
	}
	for _, k := range sizes {
		g, err := gen.RingOfCliques(8, k)
		if err != nil {
			return nil, err
		}
		wls = append(wls, wl{fmt.Sprintf("ringcliques(8,%d)", k), g, 8})
	}
	rng := rand.New(rand.NewSource(2))
	expSizes := []int{64, 128}
	if sc == Full {
		expSizes = []int{64, 128, 256}
	}
	for _, n := range expSizes {
		g, err := gen.RandomRegular(n, 6, rng)
		if err != nil {
			return nil, err
		}
		wls = append(wls, wl{fmt.Sprintf("expander(%d,6)", n), g, 8})
	}
	t := &Table{
		ID:    "E3",
		Title: "Theorem 1: Algorithm 2 rounds vs τ̂·log²n·log_{1+ε}β",
		Note: fmt.Sprintf("ε=%.2f; the oracle τ uses the algorithm's own semantics (grid sizes, 4ε test), so the"+
			" guarantee is τ ≤ τ̂ ≤ 2τ; ratio = measured rounds / formula (constant ⇒ Theorem 1's shape holds)", eps),
		Header: []string{"workload", "n", "tau_hat", "tau_4eps", "approx", "within_2x?", "rounds", "formula", "ratio"},
	}
	for _, w := range wls {
		res, err := core.ApproxLocalMixingTime(w.g, 0, w.beta, eps)
		if err != nil {
			return nil, err
		}
		oracle, err := exact.LocalMixing(w.g, 0, w.beta, eps,
			exact.LocalOptions{MaxT: 1 << 20, Grid: true, ThresholdMult: 4})
		if err != nil {
			return nil, err
		}
		n := float64(w.g.N())
		approx := float64(res.Tau) / float64(max(1, oracle.T))
		formula := float64(res.Tau) * math.Log2(n) * math.Log2(n) * (math.Log(w.beta) / math.Log(1+eps))
		t.Add(w.name, w.g.N(), res.Tau, oracle.T, approx, approx <= 2.0,
			res.Stats.Rounds, formula, float64(res.Stats.Rounds)/formula)
	}
	return t, nil
}

// E4ExactRounds measures Theorem 2: the exact variant's rounds against
// τ·D̃·log n·log_{1+ε}β and its agreement with the centralized twin.
func E4ExactRounds(sc Scale) (*Table, error) {
	eps := 0.15
	sizes := []int{8, 12}
	if sc == Full {
		sizes = []int{8, 12, 16, 24}
	}
	t := &Table{
		ID:     "E4",
		Title:  "Theorem 2: exact algorithm rounds vs τ·D̃·log n·log_{1+ε}β",
		Note:   fmt.Sprintf("ε=%.2f; exact? compares the distributed result to the centralized fixed-point twin", eps),
		Header: []string{"workload", "n", "tau", "twin_tau", "exact?", "rounds", "formula", "ratio"},
	}
	for _, k := range sizes {
		g, err := gen.RingOfCliques(8, k)
		if err != nil {
			return nil, err
		}
		res, err := core.ExactLocalMixingTime(g, 0, 8, eps)
		if err != nil {
			return nil, err
		}
		scale := res.Scale
		twin, err := exact.FixedLocalMixing(g, 0, scale, 8, eps, false, exact.Units(4*g.N()*g.N()))
		if err != nil {
			return nil, err
		}
		diam, err := g.DiameterApprox()
		if err != nil {
			return nil, err
		}
		dTilde := float64(min(res.Tau, diam))
		n := float64(g.N())
		formula := float64(res.Tau) * math.Max(1, dTilde) * math.Log2(n) * (math.Log(8) / math.Log(1+eps))
		t.Add(fmt.Sprintf("ringcliques(8,%d)", k), g.N(), res.Tau, twin.Tau,
			res.Tau == twin.Tau, res.Stats.Rounds, formula,
			float64(res.Stats.Rounds)/formula)
	}
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
