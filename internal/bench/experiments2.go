package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/spread"
	"repro/internal/walkmc"
)

// E5PartialSpreading measures Theorem 3: push–pull achieves (δ,β)-partial
// information spreading in O(τ(β,ε)·log n) rounds. On barbells τ is O(1),
// so partial spreading finishes in O(log n) rounds while full spreading is
// slower by roughly the mixing/local-mixing gap.
func E5PartialSpreading(sc Scale) (*Table, error) {
	k := 16
	betas := []int{2, 4, 8}
	if sc == Full {
		betas = []int{2, 4, 8, 16}
	}
	t := &Table{
		ID:     "E5",
		Title:  "Theorem 3: push–pull partial vs full information spreading",
		Note:   fmt.Sprintf("β-barbell, k=%d; τ_local from the oracle (max over a clique-interior and a port source); bound = τ_local·log₂n", k),
		Header: []string{"beta", "n", "tau_local", "partial_rounds", "bound", "ratio", "full_rounds", "full/partial"},
	}
	for _, beta := range betas {
		g, err := gen.Barbell(beta, k)
		if err != nil {
			return nil, err
		}
		// τ(β,ε) is the max over all sources; by symmetry, probing an
		// interior vertex and the worst port suffices on the barbell.
		tau := 0
		for _, s := range []int{0, k - 1} {
			r, err := exact.LocalMixing(g, s, float64(beta), PaperEps, exact.LocalOptions{MaxT: 1 << 20, Grid: true})
			if err != nil {
				return nil, err
			}
			if r.T > tau {
				tau = r.T
			}
		}
		res, err := spread.Run(g, spread.Config{Beta: float64(beta), Seed: 11, MaxRounds: 1 << 16})
		if err != nil {
			return nil, err
		}
		bound := float64(max(1, tau)) * math.Log2(float64(g.N()))
		t.Add(beta, g.N(), tau, res.RoundsToPartial, bound,
			float64(res.RoundsToPartial)/bound,
			res.RoundsToFull, float64(res.RoundsToFull)/float64(max(1, res.RoundsToPartial)))
	}
	return t, nil
}

// E6LocalVsGlobalCost is the paper's headline comparison: the CONGEST round
// cost of *computing* the local mixing time (Algorithm 2) versus computing
// the mixing time ([18]) on graphs with a large gap. The local computation's
// cost is flat in β while the global computation's grows with the β²
// mixing time.
func E6LocalVsGlobalCost(sc Scale) (*Table, error) {
	k := 8
	betas := []int{4, 8}
	if sc == Full {
		betas = []int{4, 8, 16}
	}
	eps := 0.25
	t := &Table{
		ID:     "E6",
		Title:  "computing τ_s (Algorithm 2) vs computing τ_mix ([18])",
		Note:   fmt.Sprintf("ring of cliques, k=%d, ε=%.2f; rounds are CONGEST rounds of each distributed algorithm", k, eps),
		Header: []string{"beta", "n", "local_tau", "local_rounds", "mix_tau", "mix_rounds", "speedup"},
	}
	for _, beta := range betas {
		g, err := gen.RingOfCliques(beta, k)
		if err != nil {
			return nil, err
		}
		local, err := core.ApproxLocalMixingTime(g, 0, float64(beta), eps)
		if err != nil {
			return nil, err
		}
		mix, err := core.MixingTime(g, 0, eps)
		if err != nil {
			return nil, err
		}
		t.Add(beta, g.N(), local.Tau, local.Stats.Rounds, mix.Tau, mix.Stats.Rounds,
			float64(mix.Stats.Rounds)/float64(local.Stats.Rounds))
	}
	return t, nil
}

// E7RoundingError measures Lemma 2's analogue: the deviation of the
// fixed-point flooding estimate from the true distribution, against the
// t·d·2^-F bound.
func E7RoundingError(sc Scale) (*Table, error) {
	n := 64
	if sc == Full {
		n = 256
	}
	rng := rand.New(rand.NewSource(3))
	g, err := gen.RandomRegular(n, 6, rng)
	if err != nil {
		return nil, err
	}
	scale := mustScale(n)
	fw, err := exact.NewFixedWalk(g, 0, scale, false)
	if err != nil {
		return nil, err
	}
	w, err := exact.NewWalk(g, 0, false)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E7",
		Title:  "Lemma 2: fixed-point flooding error |p̃_t − p_t|",
		Note:   fmt.Sprintf("random 6-regular graph, n=%d, grid 2^-%d; bound = t·d·2^-F", n, scale.F),
		Header: []string{"t", "max_err", "bound", "used_fraction", "mass_conserved?"},
	}
	checkpoints := []int{1, 4, 16, 64, 256}
	for _, cp := range checkpoints {
		fw.StepN(cp - fw.T())
		w.StepN(cp - w.T())
		maxErr := 0.0
		for u, p := range w.P() {
			if e := math.Abs(scale.Float(fw.W()[u]) - p); e > maxErr {
				maxErr = e
			}
		}
		bound := float64(cp) * 6 * scale.Ulp()
		t.Add(cp, maxErr, bound, maxErr/bound, fw.TotalMass() == scale.One)
	}
	return t, nil
}

// E8EscapeBound measures Lemma 4 on barbells: the restricted distance at 2ℓ
// against the ℓ·φ(S)+ε guarantee, plus the actual escaped mass.
func E8EscapeBound(sc Scale) (*Table, error) {
	ks := []int{8, 16}
	if sc == Full {
		ks = []int{8, 16, 32}
	}
	t := &Table{
		ID:     "E8",
		Title:  "Lemma 4: probability escape from the local mixing set",
		Note:   "β-barbell, β=8, source 0; S = oracle witness set; bound = ℓ·φ(S)+ε",
		Header: []string{"k", "n", "ell", "phi(S)", "dist@ell", "dist@2ell", "bound", "escaped_mass"},
	}
	for _, k := range ks {
		g, err := gen.Barbell(8, k)
		if err != nil {
			return nil, err
		}
		rep, err := exact.Lemma4Measure(g, 0, 8, PaperEps, exact.LocalOptions{MaxT: 1 << 18})
		if err != nil {
			return nil, err
		}
		t.Add(k, g.N(), rep.L, rep.Phi, rep.DistAtL, rep.DistAt2L, rep.Bound, rep.EscapedMass)
	}
	return t, nil
}

// E9SamplingGreyArea reproduces the [10]-vs-deterministic comparison: the
// sampling estimator's L1 noise floor scales as √(n/K), so small ε cannot
// be certified by sampling while the deterministic Algorithm 1 resolves it.
func E9SamplingGreyArea(sc Scale) (*Table, error) {
	n := 64
	trials := 3
	ks := []int{100, 1000, 10_000}
	if sc == Full {
		n = 128
		trials = 5
		ks = []int{100, 1000, 10_000, 100_000}
	}
	rng := rand.New(rand.NewSource(4))
	g, err := gen.RandomRegular(n, 6, rng)
	if err != nil {
		return nil, err
	}
	ell, err := exact.MixingTime(g, 0, PaperEps, false, 1<<16)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E9",
		Title:  "sampling grey area: empirical L1 noise floor vs K walks",
		Note:   fmt.Sprintf("expander n=%d at ℓ=τ_mix=%d; prediction ≈ √(n/K); deterministic flooding error is ~10⁻¹⁴ at the same ℓ", n, ell),
		Header: []string{"K", "noise_floor", "sqrt(n/K)", "floor/pred", "certifies ε=1/8e?"},
	}
	for _, k := range ks {
		floor, err := walkmc.NoiseFloor(g, 0, ell, k, trials, false, rng)
		if err != nil {
			return nil, err
		}
		pred := math.Sqrt(float64(n) / float64(k))
		t.Add(k, floor, pred, floor/pred, floor < PaperEps)
	}
	return t, nil
}

// E12MaxCoverage runs the distributed maximum-coverage application over
// partial information spreading and compares against centralized greedy.
func E12MaxCoverage(sc Scale) (*Table, error) {
	beta := []float64{2, 4, 8}
	k := 8
	if sc == Full {
		k = 16
	}
	g, err := gen.RingOfCliques(8, k)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(5))
	// A tight universe (heavy set overlap) makes the choice of k sets
	// matter, so restricted candidate pools show a measurable quality cost.
	inst, err := coverage.RandomInstance(g.N(), g.N()/2, 5, 5, rng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E12",
		Title: "maximum coverage via partial information spreading",
		Note: fmt.Sprintf("ring of cliques n=%d, universe=%d, k=5 sets; ratio vs centralized greedy"+
			" (greedy is a 1−1/e approximation, so a lucky subset pool can exceed 1)", g.N(), g.N()/2),
		Header: []string{"beta", "spread_rounds", "min_sets_seen", "covered", "central", "ratio"},
	}
	for _, b := range beta {
		res, err := coverage.Distributed(g, inst, b, 13)
		if err != nil {
			return nil, err
		}
		t.Add(b, res.SpreadRounds, res.MinSetsSeen, res.BestCovered, res.CentralCovered, res.Ratio)
	}
	return t, nil
}
