package bench

import (
	"time"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
)

// E16OracleKernel measures the batched walk kernel against the serial
// per-source oracle loop it replaced: τ_mix(ε) over all sources computed
// (a) as n independent MixingTime calls (the pre-kernel formulation, still
// the reference oracle) and (b) as the GraphMixingTime batched sweep
// (walkkernel.MultiWalk, 16 lanes per edge pass). Both must agree exactly;
// the speedup column is the point. This is the many-source workload of
// Das Sarma et al. that motivates batching.
func E16OracleKernel(sc Scale) (*Table, error) {
	type work struct {
		name string
		g    *graph.Graph
		eps  float64
	}
	var works []work
	add := func(name string, g *graph.Graph, err error, eps float64) error {
		if err != nil {
			return err
		}
		works = append(works, work{name, g, eps})
		return nil
	}
	torusSide := 16
	cliques, cliqueSize := 6, 8
	if sc == Full {
		torusSide = 32
		cliques, cliqueSize = 8, 16
	}
	tg, err := gen.Torus(torusSide, torusSide)
	if err := add("torus", tg, err, 0.5); err != nil {
		return nil, err
	}
	rg, err := gen.RingOfCliques(cliques, cliqueSize)
	if err := add("ringcliques", rg, err, 0.5); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "E16",
		Title:  "Oracle kernel: serial per-source walks vs batched MultiWalk",
		Note:   "serial = n MixingTime calls; batched = GraphMixingTime (16-lane kernel); identical τ required",
		Header: []string{"graph", "n", "τ_mix", "serial_ms", "batched_ms", "speedup"},
	}
	for _, w := range works {
		lazy := true
		serialStart := time.Now()
		worst := 0
		for s := 0; s < w.g.N(); s++ {
			ts, err := exact.MixingTime(w.g, s, w.eps, lazy, 1<<18)
			if err != nil {
				return nil, err
			}
			if ts > worst {
				worst = ts
			}
		}
		serial := time.Since(serialStart)

		batchStart := time.Now()
		batched, err := exact.GraphMixingTime(w.g, w.eps, lazy, 1<<18)
		if err != nil {
			return nil, err
		}
		batch := time.Since(batchStart)
		tau := batched
		if batched != worst {
			t.Note += "; MISMATCH between serial and batched τ!"
		}
		t.Add(w.name, w.g.N(), tau,
			float64(serial.Microseconds())/1000,
			float64(batch.Microseconds())/1000,
			float64(serial.Nanoseconds())/float64(batch.Nanoseconds()))
	}
	return t, nil
}
