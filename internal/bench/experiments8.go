package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/gen"
	"repro/internal/graph"
)

// E18DynamicChurn measures how round-by-round edge churn displaces the
// distributed local-mixing computation: the same graph is solved by
// Algorithm 2 on a static network and on dynamic networks driven by the
// internal/dyngraph models (edge-Markov at two intensities, T-interval
// resampling), all from the same source with the same engine seed. The
// paper's algorithms assume a static CONGEST network; the dynamic rows are
// the follow-on-work regime of Das Sarma–Molla–Pandurangan, with the
// control plane riding the static superset and only the walk churned. The
// dynamic τ is measured against the same uniform 1/R targets, so the
// tau_churn/tau_static ratio is the round-count price of churn; toggles
// reports the churn volume the engine processed, and walk_retries is the
// number of hop restarts a 64-step token walk (core.TokenWalk) suffers
// under the same churn — the per-hop cost of edge loss made visible.
func E18DynamicChurn(sc Scale) (*Table, error) {
	type work struct {
		name string
		g    *graph.Graph
		beta float64
	}
	var works []work
	add := func(g *graph.Graph, err error, beta float64) error {
		if err != nil {
			return err
		}
		works = append(works, work{g.Name(), g, beta})
		return nil
	}
	cliques, cliqueSize := 4, 6
	torusSide := 6
	if sc == Full {
		cliques, cliqueSize = 6, 8
		torusSide = 10
	}
	rg, err := gen.RingOfCliques(cliques, cliqueSize)
	if err := add(rg, err, float64(cliques)); err != nil {
		return nil, err
	}
	tg, err := gen.Torus(torusSide, torusSide)
	if err := add(tg, err, 4); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "E18",
		Title: "dynamic networks: τ under edge churn vs the static graph",
		Note: "Algorithm 2 from source 0, engine seed 1, churn seed 7; markov = per-round edge-Markov churn " +
			"(P(on→off)=rate, P(off→on)=0.5), interval = resample every 8 rounds keeping 1-rate; " +
			"a BFS backbone keeps every round connected",
		Header: []string{"graph", "model", "rate", "tau_static", "tau_churn", "ratio", "walk_retries", "toggles", "rounds"},
	}
	const churnSeed = 7
	const walkSteps = 64
	for _, w := range works {
		opts := []core.Option{core.WithSeed(1), core.WithLazy(), core.WithIrregular()}
		static, err := core.ApproxLocalMixingTime(w.g, 0, w.beta, PaperEps, opts...)
		if err != nil {
			return nil, err
		}
		t.Add(w.name, "static", 0.0, static.Tau, static.Tau, 1.0,
			int64(0), int64(0), static.Stats.Rounds)

		type model struct {
			name string
			rate float64
			prov core.Option
			err  error
		}
		var models []model
		for _, rate := range []float64{0.05, 0.2} {
			prov, err := dyngraph.NewEdgeMarkov(w.g, churnSeed, rate, 0.5)
			models = append(models, model{"markov", rate, core.WithTopology(prov), err})
		}
		{
			prov, err := dyngraph.NewInterval(w.g, churnSeed, 8, 0.8)
			models = append(models, model{"interval", 0.2, core.WithTopology(prov), err})
		}
		for _, m := range models {
			if m.err != nil {
				return nil, m.err
			}
			dynOpts := append(opts[:len(opts):len(opts)], m.prov)
			res, err := core.ApproxLocalMixingTime(w.g, 0, w.beta, PaperEps, dynOpts...)
			if err != nil {
				return nil, err
			}
			walk, err := core.TokenWalk(w.g, 0, walkSteps, dynOpts...)
			if err != nil {
				return nil, err
			}
			t.Add(w.name, m.name, m.rate, static.Tau, res.Tau,
				float64(res.Tau)/float64(static.Tau),
				walk.Retries, res.Stats.TopologyChanges, res.Stats.Rounds)
		}
	}
	return t, nil
}

// E19AdaptiveAdversaries isolates adaptivity itself: every adversary row is
// rate-matched against the oblivious UniformCutter at the same per-round
// edge-cut budget, so any inflation over the cutter row is attributable to
// reading protocol-published state alone, not to churn volume. Two workloads
// run on the same torus (a torus because a ring-of-cliques' only witness
// boundary is its backbone bridges, which adversaries never cut): the token
// walk (core.TokenWalk) against the position-chasing TokenChaser, and
// Algorithm 2's dynamic τ against the mass-reading BoundaryAttacker. A
// crash-stop/restart row exercises the checkpointed-restart path
// (core.WithRetryBudget) under vertex outages. The adaptive rows are
// recomputed at one and two workers and the experiment fails on any
// divergence — the determinism gate for adversarial runs, whose two-phase
// announce/hop schedule must not leak scheduling order into results.
func E19AdaptiveAdversaries(sc Scale) (*Table, error) {
	// tauBudget and witness track the torus side: a top-(n/3) witness set's
	// boundary has Θ(side) edges, so a side-scaled budget keeps the attack
	// meaningful without handing the oblivious control enough cuts to
	// degrade the whole graph.
	side, steps, tauBudget := 5, 48, 6
	if sc == Full {
		side, steps, tauBudget = 10, 256, 12
	}
	g, err := gen.Torus(side, side)
	if err != nil {
		return nil, err
	}
	const (
		churnSeed = 23
		budget    = 2 // walk workload: cuts per round (vs holder degree 4)
		beta      = 4.0
	)
	witness := g.N() / 3 // BoundaryAttacker target-set size
	cutter, err := dyngraph.NewUniformCutter(g, churnSeed, budget)
	if err != nil {
		return nil, err
	}
	chaser, err := dyngraph.NewTokenChaser(g, churnSeed, budget)
	if err != nil {
		return nil, err
	}
	tauCutter, err := dyngraph.NewUniformCutter(g, churnSeed, tauBudget)
	if err != nil {
		return nil, err
	}
	attacker, err := dyngraph.NewBoundaryAttacker(g, churnSeed, witness, tauBudget)
	if err != nil {
		return nil, err
	}
	crash, err := dyngraph.NewCrashRestart(g, churnSeed, 0.02, 5)
	if err != nil {
		return nil, err
	}

	base := []core.Option{core.WithSeed(1), core.WithLazy(), core.WithIrregular()}
	with := func(extra ...core.Option) []core.Option {
		return append(base[:len(base):len(base)], extra...)
	}
	t := &Table{
		ID:    "E19",
		Title: "adaptive vs oblivious adversaries: rate-matched inflation",
		Note: fmt.Sprintf("%s, engine seed 1, adversary seed %d; cut budget %d/round for the walk "+
			"workload, %d/round for τ (exact Theorem-2 variant, boundary attacker targets the "+
			"top-%d published-mass set); cutter = oblivious uniform cuts (the rate-matched "+
			"control), chaser/boundary = adaptive (read published state); vs_oblivious is the "+
			"inflation over the same-budget cutter row; crash = p=0.02 crash-stop, 5 rounds down, "+
			"checkpointed restarts", g.Name(), churnSeed, budget, tauBudget, witness),
		Header: []string{"workload", "adversary", "tau", "rounds", "retries", "restarts", "vs_oblivious"},
	}

	// Walk workload: ℓ-step token forwarding; the chaser cuts the published
	// holder position's edges, the cutter cuts the same number anywhere.
	staticWalk, err := core.TokenWalk(g, 0, steps, base...)
	if err != nil {
		return nil, err
	}
	cutWalk, err := core.TokenWalk(g, 0, steps, with(core.WithTopology(cutter))...)
	if err != nil {
		return nil, err
	}
	chaseWalk, err := core.TokenWalk(g, 0, steps, with(core.WithTopology(chaser))...)
	if err != nil {
		return nil, err
	}
	crashWalk, err := core.TokenWalk(g, 0, steps,
		with(core.WithTopology(crash), core.WithRetryBudget(1<<20))...)
	if err != nil {
		return nil, err
	}
	t.Add("walk", "static", "-", staticWalk.Rounds, staticWalk.Retries, staticWalk.Restarts, "-")
	t.Add("walk", "cutter", "-", cutWalk.Rounds, cutWalk.Retries, cutWalk.Restarts, 1.0)
	t.Add("walk", "chaser", "-", chaseWalk.Rounds, chaseWalk.Retries, chaseWalk.Restarts,
		float64(chaseWalk.Rounds)/float64(cutWalk.Rounds))
	t.Add("walk", "crash", "-", crashWalk.Rounds, crashWalk.Retries, crashWalk.Restarts,
		float64(crashWalk.Rounds)/float64(cutWalk.Rounds))

	// τ workload: the walk-mass flooding publishes per-node mass
	// (emitShares); the boundary attacker ranks publishers by it and
	// throttles the emerging witness set's conductance — the quantity τ_s
	// measures. The exact (Theorem 2, unit-increment) variant is used
	// because its τ has unit resolution; the doubling search of Theorem 1
	// quantizes τ too coarsely to register a per-round budget this small.
	staticTau, err := core.ExactLocalMixingTime(g, 0, beta, PaperEps, base...)
	if err != nil {
		return nil, err
	}
	cutTau, err := core.ExactLocalMixingTime(g, 0, beta, PaperEps, with(core.WithTopology(tauCutter))...)
	if err != nil {
		return nil, err
	}
	attackTau, err := core.ExactLocalMixingTime(g, 0, beta, PaperEps, with(core.WithTopology(attacker))...)
	if err != nil {
		return nil, err
	}
	t.Add("tau", "static", staticTau.Tau, staticTau.Stats.Rounds, "-", "-", "-")
	t.Add("tau", "cutter", cutTau.Tau, cutTau.Stats.Rounds, "-", "-", 1.0)
	t.Add("tau", "boundary", attackTau.Tau, attackTau.Stats.Rounds, "-", "-",
		float64(attackTau.Tau)/float64(cutTau.Tau))

	// Determinism gate: the adaptive rows must be byte-identical at every
	// worker count, or the adversarial results above are scheduling noise.
	for _, workers := range []int{1, 2} {
		w, err := core.TokenWalk(g, 0, steps,
			with(core.WithTopology(chaser), core.WithWorkers(workers))...)
		if err != nil {
			return nil, err
		}
		if w.Rounds != chaseWalk.Rounds || w.Retries != chaseWalk.Retries || w.End != chaseWalk.End {
			return nil, fmt.Errorf("bench: chaser walk diverged at %d workers: rounds %d/%d retries %d/%d end %d/%d",
				workers, w.Rounds, chaseWalk.Rounds, w.Retries, chaseWalk.Retries, w.End, chaseWalk.End)
		}
		r, err := core.ExactLocalMixingTime(g, 0, beta, PaperEps,
			with(core.WithTopology(attacker), core.WithWorkers(workers))...)
		if err != nil {
			return nil, err
		}
		if r.Tau != attackTau.Tau || r.Stats.Rounds != attackTau.Stats.Rounds {
			return nil, fmt.Errorf("bench: boundary-attacked τ diverged at %d workers: tau %d/%d rounds %d/%d",
				workers, r.Tau, attackTau.Tau, r.Stats.Rounds, attackTau.Stats.Rounds)
		}
	}
	return t, nil
}
