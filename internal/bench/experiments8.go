package bench

import (
	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/gen"
	"repro/internal/graph"
)

// E18DynamicChurn measures how round-by-round edge churn displaces the
// distributed local-mixing computation: the same graph is solved by
// Algorithm 2 on a static network and on dynamic networks driven by the
// internal/dyngraph models (edge-Markov at two intensities, T-interval
// resampling), all from the same source with the same engine seed. The
// paper's algorithms assume a static CONGEST network; the dynamic rows are
// the follow-on-work regime of Das Sarma–Molla–Pandurangan, with the
// control plane riding the static superset and only the walk churned. The
// dynamic τ is measured against the same uniform 1/R targets, so the
// tau_churn/tau_static ratio is the round-count price of churn; toggles
// reports the churn volume the engine processed, and walk_retries is the
// number of hop restarts a 64-step token walk (core.TokenWalk) suffers
// under the same churn — the per-hop cost of edge loss made visible.
func E18DynamicChurn(sc Scale) (*Table, error) {
	type work struct {
		name string
		g    *graph.Graph
		beta float64
	}
	var works []work
	add := func(g *graph.Graph, err error, beta float64) error {
		if err != nil {
			return err
		}
		works = append(works, work{g.Name(), g, beta})
		return nil
	}
	cliques, cliqueSize := 4, 6
	torusSide := 6
	if sc == Full {
		cliques, cliqueSize = 6, 8
		torusSide = 10
	}
	rg, err := gen.RingOfCliques(cliques, cliqueSize)
	if err := add(rg, err, float64(cliques)); err != nil {
		return nil, err
	}
	tg, err := gen.Torus(torusSide, torusSide)
	if err := add(tg, err, 4); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "E18",
		Title: "dynamic networks: τ under edge churn vs the static graph",
		Note: "Algorithm 2 from source 0, engine seed 1, churn seed 7; markov = per-round edge-Markov churn " +
			"(P(on→off)=rate, P(off→on)=0.5), interval = resample every 8 rounds keeping 1-rate; " +
			"a BFS backbone keeps every round connected",
		Header: []string{"graph", "model", "rate", "tau_static", "tau_churn", "ratio", "walk_retries", "toggles", "rounds"},
	}
	const churnSeed = 7
	const walkSteps = 64
	for _, w := range works {
		opts := []core.Option{core.WithSeed(1), core.WithLazy(), core.WithIrregular()}
		static, err := core.ApproxLocalMixingTime(w.g, 0, w.beta, PaperEps, opts...)
		if err != nil {
			return nil, err
		}
		t.Add(w.name, "static", 0.0, static.Tau, static.Tau, 1.0,
			int64(0), int64(0), static.Stats.Rounds)

		type model struct {
			name string
			rate float64
			prov core.Option
			err  error
		}
		var models []model
		for _, rate := range []float64{0.05, 0.2} {
			prov, err := dyngraph.NewEdgeMarkov(w.g, churnSeed, rate, 0.5)
			models = append(models, model{"markov", rate, core.WithTopology(prov), err})
		}
		{
			prov, err := dyngraph.NewInterval(w.g, churnSeed, 8, 0.8)
			models = append(models, model{"interval", 0.2, core.WithTopology(prov), err})
		}
		for _, m := range models {
			if m.err != nil {
				return nil, m.err
			}
			dynOpts := append(opts[:len(opts):len(opts)], m.prov)
			res, err := core.ApproxLocalMixingTime(w.g, 0, w.beta, PaperEps, dynOpts...)
			if err != nil {
				return nil, err
			}
			walk, err := core.TokenWalk(w.g, 0, walkSteps, dynOpts...)
			if err != nil {
				return nil, err
			}
			t.Add(w.name, m.name, m.rate, static.Tau, res.Tau,
				float64(res.Tau)/float64(static.Tau),
				walk.Retries, res.Stats.TopologyChanges, res.Stats.Rounds)
		}
	}
	return t, nil
}
