package bench

import (
	"fmt"
	"math"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/spread"
)

// E13CongestSpreading measures the paper's footnote 10: in the CONGEST
// model — one O(log n)-bit token id per message — push–pull partial
// spreading needs Õ(τ(β,ε) + n/β) rounds, since a node must receive n/β
// distinct tokens over O(log n)-bit channels. The LOCAL-model rounds from
// E5 are shown for contrast.
func E13CongestSpreading(sc Scale) (*Table, error) {
	const beta = 8
	ks := []int{8, 16, 32}
	if sc == Full {
		ks = []int{8, 16, 32, 64}
	}
	t := &Table{
		ID:    "E13",
		Title: "footnote 10: push–pull under CONGEST (one token id per message)",
		Note: fmt.Sprintf("β-barbell, β=%d, clique size k sweep (so n/β = k grows); bound = τ·log₂n + (n/β)·log₂(n/β)"+
			" (the Õ's coupon-collector log made explicit); CONGEST rounds grow with n/β while LOCAL stays near-flat", beta),
		Header: []string{"k", "n", "n/beta", "tau_local", "congest_rounds", "bound", "ratio", "local_rounds"},
	}
	for _, k := range ks {
		g, err := gen.Barbell(beta, k)
		if err != nil {
			return nil, err
		}
		tau := 0
		for _, s := range []int{0, k - 1} {
			r, err := exact.LocalMixing(g, s, float64(beta), PaperEps, exact.LocalOptions{MaxT: 1 << 20, Grid: true})
			if err != nil {
				return nil, err
			}
			if r.T > tau {
				tau = r.T
			}
		}
		cg, err := spread.RunCongest(g, spread.Config{Beta: float64(beta), Seed: 17, StopAtPartial: true, MaxRounds: 1 << 16})
		if err != nil {
			return nil, err
		}
		lc, err := spread.Run(g, spread.Config{Beta: float64(beta), Seed: 17, StopAtPartial: true, MaxRounds: 1 << 16})
		if err != nil {
			return nil, err
		}
		nOverBeta := float64(g.N()) / float64(beta)
		// The Õ in footnote 10 hides the coupon-collector log: collecting
		// n/β distinct tokens over O(log n)-bit channels costs
		// Θ((n/β)·log(n/β)) rounds.
		bound := float64(max(1, tau))*math.Log2(float64(g.N())) + nOverBeta*math.Log2(nOverBeta)
		t.Add(k, g.N(), nOverBeta, tau, cg.RoundsToPartial, bound,
			float64(cg.RoundsToPartial)/bound, lc.RoundsToPartial)
	}
	return t, nil
}

// E14GraphLocalMixing computes the graph-wide τ(β,ε) = max_v τ_v(β,ε)
// (Definition 2) on the barbell, showing the per-source structure the
// paper describes: ports pay slightly more than clique interiors, and the
// max is still O(1) — plus the sampling mitigation (footnote 6) in action.
func E14GraphLocalMixing(sc Scale) (*Table, error) {
	k := 12
	if sc == Full {
		k = 16
	}
	g, err := gen.Barbell(8, k)
	if err != nil {
		return nil, err
	}
	all, err := exact.GraphLocalMixing(g, 8, PaperEps, exact.LocalOptions{MaxT: 1 << 20, Grid: true}, nil)
	if err != nil {
		return nil, err
	}
	// Footnote 6 sampling: one interior + one port per end clique.
	sampled, err := exact.GraphLocalMixing(g, 8, PaperEps, exact.LocalOptions{MaxT: 1 << 20, Grid: true},
		[]int{1, k - 1, g.N() - k, g.N() - 1})
	if err != nil {
		return nil, err
	}
	hist := map[int]int{}
	for _, st := range all.PerSource {
		hist[st.Tau]++
	}
	t := &Table{
		ID:    "E14",
		Title: "graph-wide τ(β,ε) = max_v τ_v(β,ε) (Definition 2, footnote 6)",
		Note: fmt.Sprintf("β-barbell, β=8, k=%d, all %d sources in parallel; sampled = 4 representative sources",
			k, g.N()),
		Header: []string{"quantity", "value"},
	}
	t.Add("tau(beta,eps) over all sources", all.Tau)
	t.Add("argmax source", all.ArgMax)
	t.Add("tau via 4 sampled sources", sampled.Tau)
	for tau := 0; tau <= all.Tau; tau++ {
		if cnt := hist[tau]; cnt > 0 {
			t.Add(fmt.Sprintf("sources with tau = %d", tau), cnt)
		}
	}
	return t, nil
}
