package bench

import (
	"fmt"
	"io"
	"strings"
)

// Scale selects the workload size.
type Scale int

const (
	// Small finishes in well under a second per experiment; used by unit
	// tests and the default benchmarks.
	Small Scale = iota
	// Full is the paper-shaped workload; used by cmd/paperbench.
	Full
)

// ParseScale converts a flag value.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small", "s":
		return Small, nil
	case "full", "f", "large":
		return Full, nil
	default:
		return Small, fmt.Errorf("bench: unknown scale %q (want small or full)", s)
	}
}

// Table is one experiment's result, ready for printing.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	total := len(widths) - 1
	for _, v := range widths {
		total += v + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

// Experiment couples an id with its runner, for registry-driven tools.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Scale) (*Table, error)
}

// All returns the registry of experiments in presentation order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Figure 1 / §2.3(d): β-barbell local-vs-global gap", E1BarbellGap},
		{"E2", "§2.3 graph classes: mixing and local mixing landscape", E2GraphClasses},
		{"E3", "Theorem 1: LOCAL-MIXING-TIME rounds and approximation", E3ApproxRounds},
		{"E4", "Theorem 2: exact algorithm rounds and exactness", E4ExactRounds},
		{"E5", "Theorem 3: push–pull partial information spreading", E5PartialSpreading},
		{"E6", "Headline: computing τ_s vs computing τ_mix (rounds)", E6LocalVsGlobalCost},
		{"E7", "Lemma 2: fixed-point flooding error vs bound", E7RoundingError},
		{"E8", "Lemma 4: escape probability vs ℓ·φ(S)+ε bound", E8EscapeBound},
		{"E9", "Das Sarma et al. [10] sampling grey area", E9SamplingGreyArea},
		{"E10", "§1 spectral relations: λ₂, relaxation and Cheeger", E10SpectralBounds},
		{"E11", "Open problem: τ_s(β) vs weak conductance Φ_β", E11WeakConductance},
		{"E12", "Application: distributed maximum coverage", E12MaxCoverage},
		{"E13", "Footnote 10: push–pull under CONGEST bandwidth", E13CongestSpreading},
		{"E14", "Definition 2: graph-wide τ(β,ε) and source sampling", E14GraphLocalMixing},
		{"E15", "Engine telemetry: liveness and allocation counters", E15EngineCounters},
		{"E16", "Oracle kernel: batched MultiWalk vs serial walks", E16OracleKernel},
		{"E17", "Distributed sweep: worker pool vs serial per-source runs", E17DistributedSweep},
		{"E18", "Dynamic networks: τ under edge churn vs the static graph", E18DynamicChurn},
		{"E19", "Adaptive vs oblivious adversaries: rate-matched inflation", E19AdaptiveAdversaries},
		{"A1", "Ablation: doubling (Thm 1) vs unit increments (Thm 2)", A1DoublingAblation},
		{"A2", "Ablation: the 4ε relaxation of Lemma 3", A2EpsilonRelaxation},
		{"A3", "Ablation: deterministic vs randomized tie-breaking", A3TieBreak},
		{"A4", "Ablation: lazy vs simple walks on bipartite graphs", A4Laziness},
	}
}

// Find returns the experiment with the given id (case-insensitive).
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
