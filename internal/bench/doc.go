// Package bench is the experiment harness: it regenerates every figure and
// comparison claimed in the paper, plus the engineering experiments that
// track this repository's own subsystems. The registry (All) spans E1–E19
// and the ablations A1–A4: E1–E14 reproduce the paper's evaluation
// (Figure 1, §2.3 classes, Theorems 1–3, Lemmas 2 and 4, the [10] sampling
// grey area, spectral relations, weak conductance, maximum coverage,
// graph-wide sweeps), E15–E19 track the round engine, the oracle walk
// kernel, the parallel sweep engine, the dynamic-network churn modes, and
// the adaptive-adversary inflation study.
// Each experiment produces a Table; cmd/paperbench prints them, and the
// root bench_test.go wraps them in testing.B benchmarks.
//
// Experiments run from fixed seeds at two scales (Small for tests and bench
// smoke, Full for paper-shaped workloads), so every table is reproducible;
// wall-clock columns are the only nondeterministic cells.
package bench
