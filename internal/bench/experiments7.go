package bench

import (
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sweep"
)

// E17DistributedSweep measures the parallel multi-source sweep engine
// against the serial per-source loop it replaced: the graph-wide
// τ(β,ε) = max_v τ_v(β,ε) of Definition 2 computed (a) as n sequential
// core.Run calls, each building a fresh CONGEST network (the pre-sweep
// formulation), and (b) on the internal/sweep worker pool, where each
// worker reuses one network across its sources. Both paths use the same
// splitmix64-derived per-source seeds, so the computed τ must agree
// exactly; the speedup column and the aggregate round/message/bit
// accounting (the paper's footnote-6 n-factor cost, made visible) are the
// point.
func E17DistributedSweep(sc Scale) (*Table, error) {
	type work struct {
		name string
		g    *graph.Graph
		beta float64
	}
	var works []work
	add := func(g *graph.Graph, err error, beta float64) error {
		if err != nil {
			return err
		}
		works = append(works, work{g.Name(), g, beta})
		return nil
	}
	cliques, cliqueSize := 4, 6
	torusSide := 8
	if sc == Full {
		cliques, cliqueSize = 6, 8
		torusSide = 12
	}
	rg, err := gen.RingOfCliques(cliques, cliqueSize)
	if err := add(rg, err, float64(cliques)); err != nil {
		return nil, err
	}
	tg, err := gen.Torus(torusSide, torusSide)
	if err := add(tg, err, 4); err != nil {
		return nil, err
	}

	workers := runtime.GOMAXPROCS(0)
	t := &Table{
		ID:    "E17",
		Title: "distributed multi-source sweep: worker pool vs serial per-source runs",
		Note: "graph-wide τ(β,ε)=max_v τ_v via Algorithm 2 from every source; serial = fresh network per source, " +
			"sweep = reusable per-worker networks (identical derived seeds, identical results required)",
		Header: []string{"graph", "n", "workers", "tau", "argmax", "serial_ms", "sweep_ms", "speedup", "Mrounds", "Mmsgs", "Gbits"},
	}
	for _, w := range works {
		const base = 1
		cfg := core.Config{Mode: core.ApproxLocal, Beta: w.beta, Eps: PaperEps, Lazy: true, AllowIrregular: true}
		cfg.Engine.Seed = base

		serialStart := time.Now()
		serialTau := -1
		for s := 0; s < w.g.N(); s++ {
			runCfg := cfg
			runCfg.Source = s
			runCfg.Engine.Seed = sweep.DeriveSeed(base, s)
			res, err := core.Run(w.g, runCfg)
			if err != nil {
				return nil, err
			}
			if res.Tau > serialTau {
				serialTau = res.Tau
			}
		}
		serial := time.Since(serialStart)

		sweepStart := time.Now()
		multi, err := core.GraphLocalMixingTimeSweep(w.g, cfg, core.SweepOptions{Workers: workers})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(sweepStart)
		if multi.Tau != serialTau {
			t.Note += "; MISMATCH between serial and sweep τ!"
		}
		t.Add(w.name, w.g.N(), workers, multi.Tau, multi.ArgMax,
			float64(serial.Microseconds())/1000,
			float64(elapsed.Microseconds())/1000,
			float64(serial.Nanoseconds())/float64(elapsed.Nanoseconds()),
			float64(multi.TotalRounds)/1e6,
			float64(multi.TotalMessages)/1e6,
			float64(multi.TotalBits)/1e9)
	}
	return t, nil
}
