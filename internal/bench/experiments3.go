package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/fixedpoint"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spectral"
)

func mustScale(n int) fixedpoint.Scale {
	return fixedpoint.MustScaleFor(n, fixedpoint.DefaultC)
}

// E10SpectralBounds validates the §1 relations on concrete graphs:
// 1/(1−λ₂) ≲ τ_mix ≲ log(n/ε)/(1−λ₂), and the Cheeger sandwich between the
// spectral gap and the sweep-cut conductance.
func E10SpectralBounds(sc Scale) (*Table, error) {
	n := 64
	if sc == Full {
		n = 256
	}
	rng := rand.New(rand.NewSource(6))
	var entries []*graph.Graph
	if g, err := gen.Complete(n / 2); err == nil {
		entries = append(entries, g)
	}
	if g, err := gen.Cycle(n); err == nil {
		entries = append(entries, g)
	}
	if g, err := gen.RandomRegular(n, 6, rng); err == nil {
		entries = append(entries, g)
	}
	side := int(math.Sqrt(float64(n)))
	if g, err := gen.Torus(side, side); err == nil {
		entries = append(entries, g)
	}
	if g, err := gen.Dumbbell(n/8, 0); err == nil {
		entries = append(entries, g)
	}
	const eps = 0.05
	t := &Table{
		ID:     "E10",
		Title:  "spectral relations: relaxation bounds and Cheeger",
		Note:   "lazy chain; sandwich = lower ≤ τ_mix ≤ upper (up to the TV/L1 factor 2); cheeger = Φ̂²/2 ≤ 1−λ₂ ≤ 2Φ̂",
		Header: []string{"graph", "lambda2", "gap", "phi_hat", "lower", "tau_mix", "upper", "sandwich?", "cheeger?"},
	}
	for _, g := range entries {
		l2, err := spectral.SecondEigenvalue(g, spectral.Options{Lazy: true})
		if err != nil {
			return nil, err
		}
		phi, err := spectral.Conductance(g, spectral.Options{Lazy: true})
		if err != nil {
			return nil, err
		}
		tmix, err := exact.MixingTime(g, 0, eps, true, 1<<22)
		if err != nil {
			return nil, err
		}
		lower, upper := spectral.RelaxationBounds(l2, g.N(), eps)
		gap := 1 - l2
		sandwich := float64(tmix) >= lower/4-2 && float64(tmix) <= 4*upper+8
		cheeger := phi*phi/2 <= gap+1e-9 && gap <= 2*phi*2+1e-9
		t.Add(g.Name(), l2, gap, phi, lower, tmix, upper, sandwich, cheeger)
	}
	return t, nil
}

// E11WeakConductance studies the paper's open problem: the relationship
// between the local mixing time τ_s(β) and the weak conductance Φ_β of
// Censor-Hillel & Shachnai. For mixing-time-vs-conductance the classical
// relation is τ ≈ 1/Φ up to log factors; the table reports τ_s·Φ_β to show
// the analogous product stays within a narrow band across families.
func E11WeakConductance(sc Scale) (*Table, error) {
	beta := 8.0
	k := 8
	if sc == Full {
		k = 16
	}
	rng := rand.New(rand.NewSource(7))
	var entries []*graph.Graph
	if g, err := gen.Barbell(8, k); err == nil {
		entries = append(entries, g)
	}
	if g, err := gen.RingOfCliques(8, k); err == nil {
		entries = append(entries, g)
	}
	if g, err := gen.RandomRegular(8*k, 6, rng); err == nil {
		entries = append(entries, g)
	}
	if g, err := gen.Lollipop(4*k, 4*k); err == nil {
		entries = append(entries, g)
	}
	t := &Table{
		ID:     "E11",
		Title:  "open problem: τ_s(β) vs weak conductance Φ_β (heuristic)",
		Note:   fmt.Sprintf("β=%g, ε=1/8e, source 0; Φ_β = spectral conductance of the induced witness community", beta),
		Header: []string{"graph", "n", "tau_local", "phi_beta", "tau*phi", "1/phi_beta"},
	}
	for _, g := range entries {
		wc, err := spectral.WeakConductance(g, 0, beta, PaperEps, g.IsBipartite(), 1<<20)
		if err != nil {
			return nil, err
		}
		t.Add(g.Name(), g.N(), wc.LocalTau, wc.Phi,
			float64(wc.LocalTau)*wc.Phi, 1/wc.Phi)
	}
	return t, nil
}

// A1DoublingAblation contrasts Theorem 1's doubling search with Theorem 2's
// unit increments — and demonstrates the role of the paper's assumption
// τ_s·φ(S) = o(1). Where it holds (the barbell clique: one escape edge),
// doubling lands within 2× of the exact τ. Where it fails (a cycle's
// sub-arc: φ(S)·τ ≈ 1), local mixing is transient: the set the walk mixed
// over drains before the next doubled probe, the 4ε test fails at 2τ, and
// the doubling search overshoots until near-global mixing — exactly the
// failure mode Lemma 4's assumption excludes.
func A1DoublingAblation(sc Scale) (*Table, error) {
	eps := 0.05
	type wl struct {
		name string
		g    *graph.Graph
		beta float64
		lazy bool
	}
	var wls []wl
	gb, err := gen.Barbell(8, 16)
	if err != nil {
		return nil, err
	}
	wls = append(wls, wl{"barbell(8,16)", gb, 8, false})
	ns := []int{32, 48}
	if sc == Full {
		ns = []int{32, 48, 64}
	}
	for _, n := range ns {
		g, err := gen.Cycle(n)
		if err != nil {
			return nil, err
		}
		wls = append(wls, wl{fmt.Sprintf("cycle(%d)", n), g, 8, true})
	}
	t := &Table{
		ID:    "A1",
		Title: "doubling (Thm 1) vs unit increments (Thm 2), and the τ·φ(S)=o(1) assumption",
		Note: fmt.Sprintf("β=8, ε=%.2f; tau_phi = τ_exact·φ(S) from the oracle witness — the assumption quantity:"+
			" ≪1 ⇒ doubling 2-approximates; ≈1 ⇒ doubling overshoots (the paper's excluded regime)", eps),
		Header: []string{"workload", "tau_phi", "approx_tau", "epochs", "approx_rounds", "exact_tau", "epochs", "exact_rounds", "overshoot"},
	}
	for _, w := range wls {
		opts := []core.Option{core.WithIrregular()}
		if w.lazy {
			opts = append(opts, core.WithLazy())
		}
		ap, err := core.ApproxLocalMixingTime(w.g, 0, w.beta, eps, opts...)
		if err != nil {
			return nil, err
		}
		ex, err := core.ExactLocalMixingTime(w.g, 0, w.beta, eps, opts...)
		if err != nil {
			return nil, err
		}
		oracle, err := exact.LocalMixing(w.g, 0, w.beta, eps,
			exact.LocalOptions{MaxT: 1 << 20, Grid: true, ThresholdMult: 4, Lazy: w.lazy})
		if err != nil {
			return nil, err
		}
		phi, err := w.g.Conductance(w.g.Members(oracle.Set))
		if err != nil {
			return nil, err
		}
		t.Add(w.name, float64(oracle.T)*phi, ap.Tau, len(ap.Phases), ap.Stats.Rounds,
			ex.Tau, len(ex.Phases), ex.Stats.Rounds,
			float64(ap.Tau)/float64(max(1, ex.Tau)))
	}
	return t, nil
}

// A2EpsilonRelaxation quantifies Lemma 3's 4ε test: how much earlier the
// relaxed threshold fires compared to the strict ε test on the same grid.
func A2EpsilonRelaxation(sc Scale) (*Table, error) {
	ks := []int{8, 16}
	if sc == Full {
		ks = []int{8, 16, 32}
	}
	t := &Table{
		ID:     "A2",
		Title:  "Lemma 3: strict ε vs relaxed 4ε acceptance",
		Note:   "β-barbell, β=8, grid sizes; τ(4ε) ≤ τ(ε) always; the gap is the price of grid discretization the relaxation pays for",
		Header: []string{"k", "n", "tau_strict", "tau_relaxed", "earlier_by"},
	}
	for _, k := range ks {
		g, err := gen.Barbell(8, k)
		if err != nil {
			return nil, err
		}
		strict, err := exact.LocalMixing(g, 0, 8, PaperEps, exact.LocalOptions{MaxT: 1 << 20, Grid: true, ThresholdMult: 1})
		if err != nil {
			return nil, err
		}
		relaxed, err := exact.LocalMixing(g, 0, 8, PaperEps, exact.LocalOptions{MaxT: 1 << 20, Grid: true, ThresholdMult: 4})
		if err != nil {
			return nil, err
		}
		t.Add(k, g.N(), strict.T, relaxed.T, strict.T-relaxed.T)
	}
	return t, nil
}

// A3TieBreak compares the deterministic threshold accounting with the
// paper's randomized perturbation: identical results, different message
// sizes.
func A3TieBreak(sc Scale) (*Table, error) {
	eps := 0.15
	k := 12
	if sc == Full {
		k = 16
	}
	g, err := gen.RingOfCliques(8, k)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "A3",
		Title:  "tie-breaking: deterministic thresholds vs randomized r_u (§3.1)",
		Note:   fmt.Sprintf("ring of cliques n=%d, β=8, ε=%.2f", g.N(), eps),
		Header: []string{"variant", "tau", "R", "rounds", "bits", "max_edge_bits"},
	}
	det, err := core.ApproxLocalMixingTime(g, 0, 8, eps)
	if err != nil {
		return nil, err
	}
	t.Add("deterministic", det.Tau, det.R, det.Stats.Rounds, det.Stats.Bits, det.Stats.MaxEdgeBits)
	for _, bits := range []int{4, 8} {
		rnd, err := core.ApproxLocalMixingTime(g, 0, 8, eps, core.WithRandomTieBreak(bits), core.WithSeed(21))
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("randomized(%d bits)", bits), rnd.Tau, rnd.R, rnd.Stats.Rounds, rnd.Stats.Bits, rnd.Stats.MaxEdgeBits)
	}
	return t, nil
}

// A4Laziness shows why the lazy chain matters: on bipartite graphs the
// simple walk oscillates forever (the oracle and the distributed algorithm
// both reject or diverge) while the lazy walk mixes.
func A4Laziness(sc Scale) (*Table, error) {
	dim := 4
	if sc == Full {
		dim = 6
	}
	g, err := gen.Hypercube(dim)
	if err != nil {
		return nil, err
	}
	cyc, err := gen.Cycle(32)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "A4",
		Title:  "lazy vs simple walks on bipartite graphs (footnote 5)",
		Note:   "simple-walk rows report the rejection/divergence; lazy rows mix",
		Header: []string{"graph", "chain", "outcome", "tau_mix", "tau_local(beta=4)"},
	}
	for _, g := range []*graph.Graph{g, cyc} {
		if _, err := exact.MixingTime(g, 0, PaperEps, false, 1<<16); err == nil {
			t.Add(g.Name(), "simple", "mixed (unexpected!)", "-", "-")
		} else {
			t.Add(g.Name(), "simple", "rejected: bipartite, walk oscillates", "-", "-")
		}
		tm, err := exact.MixingTime(g, 0, PaperEps, true, 1<<20)
		if err != nil {
			return nil, err
		}
		lm, err := exact.LocalMixing(g, 0, 4, PaperEps, exact.LocalOptions{MaxT: 1 << 20, Grid: true, Lazy: true})
		if err != nil {
			return nil, err
		}
		t.Add(g.Name(), "lazy", "mixed", tm, lm.T)
	}
	return t, nil
}
