// Package congest simulates the synchronous CONGEST and LOCAL models of
// distributed computing (paper §1.1) on an undirected graph — static, or
// dynamic under per-round edge churn.
//
// Execution proceeds in globally synchronous rounds. In round r every
// non-halted node is stepped exactly once; it sees the messages its
// neighbors sent during round r−1 and may send messages to neighbors, which
// arrive at the start of round r+1. Nodes are stepped concurrently by a pool
// of worker goroutines — each node's Step runs on some goroutine with
// exclusive access to that node's state, mirroring the "one processor per
// vertex" model — and the engine is deterministic for a fixed seed
// regardless of the worker count.
//
// In CONGEST mode the engine *enforces* the bandwidth constraint: the total
// size of the messages a node sends over one directed edge in one round must
// not exceed the per-edge budget B = Θ(log n) bits. Violations abort the run
// with a descriptive error; the algorithms in internal/core are written so
// that this never fires, and the tests exercise the enforcement path
// deliberately.
//
// # Architecture: sharded mailboxes and the zero-allocation round loop
//
// The engine is built for graphs with millions of nodes, so the round loop
// is designed around two constraints: no per-message heap allocation in the
// steady state, and no O(n) scans for bookkeeping that only concerns a few
// nodes. The design:
//
//   - Sharding. The node set is split into W contiguous shards, one per
//     worker. A shard owns its nodes' Contexts exclusively: it steps them,
//     delivers into their inboxes, and maintains their liveness, so no lock
//     is ever taken on per-node state.
//
//   - Sharded mailboxes. Each shard keeps one flat outbox buffer per
//     destination shard (a W×W matrix of []pend slices). Send appends the
//     message to out[owner(to)]; buffers are truncated, never freed, so the
//     steady state allocates nothing. The deliver phase runs one worker per
//     destination shard: shard s drains out[w][s] for w = 0..W-1 in order.
//     Because shards are contiguous id ranges and every shard steps its
//     nodes in ascending id order, this drain order reproduces exactly the
//     canonical "ascending sender id, then send order" inbox ordering — for
//     every worker count, which is what makes the engine deterministic
//     under parallelism.
//
//   - O(1) sends. NewNetwork precomputes a directed-edge slot index (an
//     open-addressed hash from the pair (u,v) to the CSR slot of u→v), so
//     Send performs no binary search; SendNbr addresses a neighbor by its
//     adjacency-row position and needs no lookup at all. The same CSR slot
//     indexes the per-directed-edge bandwidth accounting arrays, which only
//     the sending shard writes.
//
//   - Typed payload arena. LOCAL-model messages can carry an []int32 slab
//     (SendPayload/Context.Payload) stored in a per-shard double-buffered
//     arena instead of a boxed interface{} value. Payloads are copied once
//     into the sender's arena at send time and read in place by the
//     receiver next round; the buffer that fed round r is truncated and
//     reused for round r+2.
//
//   - Liveness tracking. Each shard keeps a compact ascending list of its
//     live (non-halted) nodes, compacted in place as nodes halt, plus a
//     halted count, so round upkeep is O(live), not O(n). Sleeping nodes
//     are skipped in O(1) and feed a per-round wake estimate; when a round
//     delivers no messages and steps no node, the engine fast-forwards the
//     round counter to the earliest wake-up instead of grinding through
//     empty rounds.
//
// # Dynamic networks
//
// Setting Config.Topology turns the graph into the *superset* of a dynamic
// network (the evolving-graph model of Kuhn–Lynch–Oshman and the
// Das Sarma–Molla–Pandurangan random-walk line): at every round boundary
// the TopologyProvider activates/deactivates superset edges on the
// engine-owned activity overlay, with all workers quiescent. Within a round
// the topology is frozen; processes observe it via Context.EdgeActive and
// Context.ActiveDegree. Messages are split into two planes: volatile
// messages (Message.Flags & FlagVolatile) are subject to the current edge
// state — a volatile send over an inactive edge is bounced back to its
// sender as a link-layer loss notification — while plain messages ride the
// superset unconditionally, serving as the out-of-band control plane of the
// dynamic algorithms in internal/core. Because the overlay is sized for the
// superset at construction (activity array, slot hash, mailboxes), churn
// never allocates: the zero-allocation steady state holds with edges
// toggling every round. Dynamic runs disable fast-forwarding (the provider
// must observe every round) and remain deterministic for every worker
// count; the engine rewinds the overlay on every Run, so reused sweep
// networks replay the exact same churn schedule.
//
// Stats exposes counters for each of these mechanisms (ActiveSteps,
// SleepSkips, Wakeups, SkippedRounds, PayloadWords, TopologyChanges,
// DroppedSends, and the per-phase buffer-growth counters
// StepGrows/DeliverGrows), so regressions in the zero-allocation property
// are observable from the outside.
package congest
