package congest

import (
	"math/rand"

	"repro/internal/congest/frame"
)

// Context is the per-node view of the network, passed to Init and Step.
// Contexts are owned by the engine; algorithms must not retain them across
// rounds.
type Context struct {
	net    *Network
	sh     *shard // the shard (worker) that owns this node
	id     int32
	inbox  []Message
	rng    *rand.Rand
	halted bool
	sleep  int32 // absolute round before which the node need not be stepped
	err    error
}

// ID returns this node's identifier in [0, N()).
func (c *Context) ID() int { return int(c.id) }

// N returns the number of nodes (known to all nodes per the model, §1.1).
func (c *Context) N() int { return c.net.g.N() }

// M returns the number of edges (known to all nodes per the model, §1.1).
func (c *Context) M() int { return c.net.g.M() }

// Round returns the current global round (0 during Init).
func (c *Context) Round() int { return c.net.round }

// Degree returns this node's degree.
func (c *Context) Degree() int { return c.net.g.Degree(int(c.id)) }

// Neighbors returns this node's neighbor ids (shared slice, do not modify).
func (c *Context) Neighbors() []int32 { return c.net.g.Neighbors(int(c.id)) }

// Inbox returns the messages delivered to this node since it was last
// stepped, ordered by (round, sender). The slice is reused; copy anything
// retained across rounds.
func (c *Context) Inbox() []Message { return c.inbox }

// Dynamic reports whether the network runs under a topology provider. On
// static networks every edge is permanently active.
func (c *Context) Dynamic() bool { return c.net.active != nil }

// EdgeActive reports whether the edge to the i-th neighbor (the position in
// Neighbors()) is active in the current round. Static networks report true
// for every valid position; out-of-range positions report false. Per the
// dynamic-network model, a node knows its currently active incident edges.
func (c *Context) EdgeActive(i int) bool {
	if i < 0 || i >= c.Degree() {
		return false
	}
	if c.net.active == nil {
		return true
	}
	return c.net.active[c.net.rowOff[c.id]+int32(i)]
}

// ActiveDegree returns this node's number of active incident edges in the
// current round (= Degree() on static networks). O(1): the engine maintains
// the counter as the provider toggles edges.
func (c *Context) ActiveDegree() int {
	if c.net.active == nil {
		return c.Degree()
	}
	return int(c.net.activeDeg[c.id])
}

// Rand returns this node's private deterministic RNG.
func (c *Context) Rand() *rand.Rand { return c.rng }

// Publish records a protocol-state value for this node — the walk token's
// position, a witness-set mass, any single word the protocol is willing to
// reveal — readable by an adaptive adversary at the next round boundary via
// Topology.Published. One slab write; a no-op on static networks, where no
// adversary exists to read it. Publishing never affects the protocol's own
// execution or results: it only informs state-aware TopologyProviders.
func (c *Context) Publish(v int64) {
	if c.net.published == nil {
		return
	}
	c.net.published[c.id] = v
	c.net.pubRound[c.id] = int32(c.net.round)
}

// Send queues a message to neighbor `to` for delivery next round. The engine
// fills From. Sends to non-neighbors or with non-positive Bits abort the
// run. The neighbor lookup is O(1) via the precomputed edge-slot index; when
// the caller already knows the neighbor's adjacency-row position, SendNbr
// avoids even that. Payload references on m are dropped — a received
// payload must be re-sent explicitly with SendPayload.
func (c *Context) Send(to int, m Message) {
	if c.err != nil {
		return
	}
	slot := c.net.slots.lookup(c.id, int32(to))
	if slot < 0 {
		c.err = &SendError{From: int(c.id), To: to, Round: c.net.round, Reason: "not a neighbor"}
		return
	}
	m.payShard, m.payOff, m.payLen = 0, 0, 0
	c.deposit(slot, int32(to), m)
}

// SendNbr queues a message to the i-th neighbor (the position in
// Neighbors()). It is the cheapest send: no lookup at all, just the CSR
// slot arithmetic. Broadcast and loops over Neighbors() should prefer it.
func (c *Context) SendNbr(i int, m Message) {
	if c.err != nil {
		return
	}
	row := c.net.g.Neighbors(int(c.id))
	if i < 0 || i >= len(row) {
		c.err = &SendError{From: int(c.id), To: -1, Round: c.net.round, Reason: "neighbor index out of range"}
		return
	}
	m.payShard, m.payOff, m.payLen = 0, 0, 0
	c.deposit(c.net.rowOff[c.id]+int32(i), row[i], m)
}

// SendPayload queues a message carrying an []int32 slab to neighbor `to`.
// Payloads are a LOCAL-model facility (token sets, id lists, …): in CONGEST
// mode the send aborts the run. The words are copied into the sender
// shard's payload arena — the caller keeps ownership of the slice — and the
// receiver reads them in place with Context.Payload during the step in
// which the message is delivered.
func (c *Context) SendPayload(to int, m Message, words []int32) {
	if c.err != nil {
		return
	}
	if c.net.cfg.Model == CONGEST {
		c.err = &SendError{From: int(c.id), To: to, Round: c.net.round, Reason: "payloads are LOCAL-model only"}
		return
	}
	slot := c.net.slots.lookup(c.id, int32(to))
	if slot < 0 {
		c.err = &SendError{From: int(c.id), To: to, Round: c.net.round, Reason: "not a neighbor"}
		return
	}
	off, grew := c.sh.arena.put(words)
	if grew {
		c.sh.stepGrows++
	}
	c.sh.payloadWords += int64(len(words))
	m.payShard = c.sh.idx
	m.payOff = off
	m.payLen = int32(len(words))
	c.deposit(slot, int32(to), m)
}

// Payload resolves a received message's []int32 slab. The slice aliases the
// engine's arena and is valid only during the step in which the message was
// delivered; copy anything retained longer. Returns nil when the message
// carries no payload.
func (c *Context) Payload(m Message) []int32 {
	if m.payLen == 0 {
		return nil
	}
	a := &c.net.shards[m.payShard].arena
	buf := a.buf[1-a.cur]
	return buf[m.payOff : m.payOff+m.payLen]
}

// deposit routes a validated message into the sharded mailbox of the
// destination's owner. Volatile messages aimed at an inactive edge of a
// dynamic network are bounced instead: redirected into the sender's own
// mailbox column with FlagBounced set and From naming the unreachable
// neighbor, arriving next round like any other message. The bounce is the
// link-layer failure notification of the dynamic model — no bandwidth is
// charged because nothing traversed the edge — and it is what lets
// walk-token protocols detect edge loss and restart the hop.
func (c *Context) deposit(slot, to int32, m Message) {
	if m.Bits <= 0 {
		c.err = &SendError{From: int(c.id), To: int(to), Round: c.net.round, Reason: "non-positive Bits"}
		return
	}
	if c.net.active != nil && m.Flags&FlagVolatile != 0 && !c.net.active[slot] {
		c.sh.drops++
		m.From = to
		m.Flags |= FlagBounced
		s := c.net.owner[c.id]
		buf := c.sh.out[s]
		if len(buf) == cap(buf) {
			c.sh.stepGrows++
		}
		c.sh.out[s] = append(buf, pend{to: c.id, msg: m})
		return
	}
	if c.net.cfg.Model == CONGEST {
		used := c.net.chargeEdge(slot, m.Bits)
		if used > c.sh.maxEdgeBits {
			c.sh.maxEdgeBits = used
		}
		if used > c.net.bandwidth {
			c.err = &BandwidthError{From: int(c.id), To: int(to), Round: c.net.round, Used: used, Limit: c.net.bandwidth}
			return
		}
	}
	m.From = c.id
	s := c.net.owner[to]
	if s < 0 {
		// Cluster mode: the destination lives on peer -1-s. Queue the wire
		// record in this shard's per-peer outbox; the transport batches the
		// shard outboxes into one frame per peer at the round boundary. The
		// bandwidth charge already happened above — the sender owns the
		// directed edge's accounting regardless of where the receiver runs.
		p := -1 - s
		buf := c.sh.wireOut[p]
		if len(buf) == cap(buf) {
			c.sh.stepGrows++
		}
		c.sh.wireOut[p] = append(buf, frame.Record{
			To: to, From: c.id, Seq: m.Seq,
			Value: m.Value, Aux: m.Aux, Bits: m.Bits,
			Kind: m.Kind, Flags: m.Flags,
		})
		return
	}
	buf := c.sh.out[s]
	if len(buf) == cap(buf) {
		c.sh.stepGrows++
	}
	c.sh.out[s] = append(buf, pend{to: to, msg: m})
}

// Broadcast sends the same message to every neighbor.
func (c *Context) Broadcast(m Message) {
	for i := range c.Neighbors() {
		c.SendNbr(i, m)
	}
}

// Halt marks this node as permanently finished. The run ends when every
// node has halted.
func (c *Context) Halt() { c.halted = true }

// Sleep declares that this node has no scheduled activity for the next
// `rounds` rounds. The engine may skip stepping it, but any message arrival
// wakes it immediately (the skipped rounds still elapse globally). Purely an
// optimization: correctness never depends on it. When every live node
// sleeps and no message is in flight, the engine fast-forwards whole rounds
// (see Stats.SkippedRounds).
func (c *Context) Sleep(rounds int) {
	if rounds > 0 {
		c.sleep = int32(c.net.round + rounds)
	}
}

// payloadArena is a per-shard double-buffered []int32 slab store. Writers
// append to buf[cur]; readers (receivers of last round's messages) read
// buf[1-cur]. The engine flips cur between rounds, truncating the buffer
// whose payloads were consumed, so the steady state allocates nothing.
type payloadArena struct {
	buf [2][]int32
	cur int
}

// put copies words into the current write buffer, returning the offset and
// whether the buffer had to grow.
func (a *payloadArena) put(words []int32) (off int32, grew bool) {
	buf := a.buf[a.cur]
	off = int32(len(buf))
	grew = len(buf)+len(words) > cap(buf)
	a.buf[a.cur] = append(buf, words...)
	return off, grew
}

// flip swaps the read and write roles: last round's write buffer becomes
// readable, and the buffer read two rounds ago is truncated for reuse.
func (a *payloadArena) flip() {
	a.cur = 1 - a.cur
	a.buf[a.cur] = a.buf[a.cur][:0]
}
