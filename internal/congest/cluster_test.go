package congest

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/congest/frame"
	"repro/internal/graph"
)

// ---- in-memory cluster fabric ----
//
// The tests below run N peers as goroutines wired through channels: a
// cap-1 channel per directed peer pair carries the per-round record
// batches, and a generation barrier folds the round reports with
// MergeReports — the exact contract the TCP fabric in internal/cluster
// implements over the wire. A channel send can never block: the engine's
// barrier-after-deliver guarantees the receiver drained round r before the
// sender can produce round r+1.

type memHub struct {
	ch [][]chan []frame.Record // ch[from][to]
}

func newMemHub(peers int) *memHub {
	h := &memHub{ch: make([][]chan []frame.Record, peers)}
	for i := range h.ch {
		h.ch[i] = make([]chan []frame.Record, peers)
		for j := range h.ch[i] {
			h.ch[i][j] = make(chan []frame.Record, 1)
		}
	}
	return h
}

type memExchanger struct {
	hub  *memHub
	self int
}

func (e *memExchanger) Exchange(round int, out [][]frame.Record) ([][]frame.Record, error) {
	for q := range out {
		if q == e.self {
			continue
		}
		e.hub.ch[e.self][q] <- append([]frame.Record(nil), out[q]...)
	}
	in := make([][]frame.Record, len(out))
	for q := range out {
		if q == e.self {
			continue
		}
		in[q] = <-e.hub.ch[q][e.self]
	}
	return in, nil
}

type memBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	peers   int
	batches [][]RoundReport
	gen     int
	merged  []RoundReport
}

func newMemBarrier(peers int) *memBarrier {
	b := &memBarrier{peers: peers}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *memBarrier) Sync(batch []RoundReport) ([]RoundReport, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.batches = append(b.batches, append([]RoundReport(nil), batch...))
	if len(b.batches) == b.peers {
		b.merged = MergeReportBatch(b.batches)
		b.batches = b.batches[:0]
		b.gen++
		b.cond.Broadcast()
		return b.merged, nil
	}
	for b.gen == gen {
		b.cond.Wait()
	}
	return b.merged, nil
}

// runClusterPeers executes one cluster run of newProc over g: `peers`
// networks in goroutines, wired through the in-memory fabric, syncing the
// barrier every rps rounds. Returns the per-peer stats in peer order and
// the first per-peer error.
func runClusterPeers(t *testing.T, g *graph.Graph, peers, workers, rps int, cfg Config, newProc func(id int) Process) ([]Stats, error) {
	t.Helper()
	hub := newMemHub(peers)
	bar := newMemBarrier(peers)
	stats := make([]Stats, peers)
	errs := make([]error, peers)
	var wg sync.WaitGroup
	for p := 0; p < peers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pc := cfg
			pc.Workers = workers
			pc.Cluster = &ClusterConfig{
				Peer: p, Peers: peers,
				Exchange:      &memExchanger{hub: hub, self: p},
				Barrier:       bar,
				RoundsPerSync: rps,
			}
			net, err := NewNetwork(g, pc)
			if err != nil {
				errs[p] = err
				return
			}
			st, err := net.Run(newProc)
			stats[p] = *st
			errs[p] = err
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// maskExecutionStats zeroes the counters that legitimately depend on how a
// run executed rather than what it computed: buffer warmup and the wire
// itself (see MergeStats).
func maskExecutionStats(s Stats) Stats {
	s.StepGrows, s.DeliverGrows = 0, 0
	s.WireBytes, s.FramesSent, s.FramesRecv = 0, 0, 0
	return s
}

// TestClusterDeterminism is the determinism contract of cluster mode: the
// messy mixProc workload (RNG traffic, sleeps, replies, staggered halts)
// must produce per-node results and merged engine statistics identical to
// the single-process run, for several peer and worker counts.
func TestClusterDeterminism(t *testing.T) {
	g := torusGraph(12) // n = 144
	ref := make([]*mixProc, g.N())
	refNet, err := NewNetwork(g, Config{Workers: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	refStats, err := refNet.Run(func(id int) Process {
		ref[id] = &mixProc{id: id}
		return ref[id]
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ peers, workers, rps int }{
		{2, 1, 1}, {3, 1, 1}, {3, 4, 4}, {5, 2, 8}, {144, 1, 3}, {3, 1, 8}, {2, 2, 1000},
	} {
		procs := make([]*mixProc, g.N())
		stats, err := runClusterPeers(t, g, tc.peers, tc.workers, tc.rps, Config{Seed: 42}, func(id int) Process {
			procs[id] = &mixProc{id: id}
			return procs[id]
		})
		if err != nil {
			t.Fatalf("peers=%d workers=%d rps=%d: %v", tc.peers, tc.workers, tc.rps, err)
		}
		for u := range procs {
			if procs[u] == nil {
				t.Fatalf("peers=%d: node %d never constructed", tc.peers, u)
			}
			if procs[u].acc != ref[u].acc || len(procs[u].trace) != len(ref[u].trace) {
				t.Fatalf("peers=%d workers=%d rps=%d: node %d diverged (acc %d vs %d, %d vs %d trace entries)",
					tc.peers, tc.workers, tc.rps, u, procs[u].acc, ref[u].acc, len(procs[u].trace), len(ref[u].trace))
			}
			for i := range procs[u].trace {
				if procs[u].trace[i] != ref[u].trace[i] {
					t.Fatalf("peers=%d: node %d trace[%d] diverged", tc.peers, u, i)
				}
			}
		}
		merged := MergeStats(stats)
		if !merged.HaltedAll {
			t.Fatalf("peers=%d rps=%d: merged stats not HaltedAll", tc.peers, tc.rps)
		}
		if tc.peers > 1 && (merged.FramesSent == 0 || merged.WireBytes == 0) {
			t.Fatalf("peers=%d: no wire traffic recorded: %+v", tc.peers, merged)
		}
		if merged.FramesSent != merged.FramesRecv {
			t.Fatalf("peers=%d: %d frames sent, %d received", tc.peers, merged.FramesSent, merged.FramesRecv)
		}
		a, b := maskExecutionStats(merged), maskExecutionStats(*refStats)
		if a != b {
			t.Errorf("peers=%d workers=%d rps=%d: merged stats\n %+v\nwant\n %+v", tc.peers, tc.workers, tc.rps, a, b)
		}
	}
	if refStats.WireBytes != 0 || refStats.FramesSent != 0 || refStats.FramesRecv != 0 {
		t.Errorf("loopback run recorded wire traffic: %+v", refStats)
	}
}

// sleeperProc sleeps far ahead and halts on wake; the whole network goes
// quiet, so the engine must fast-forward — and in cluster mode every peer
// must skip the same rounds from the barrier-merged MinWake.
type sleeperProc struct{ id int }

func (p *sleeperProc) Init(ctx *Context) {}
func (p *sleeperProc) Step(ctx *Context) {
	if ctx.Round() < 2 {
		ctx.Sleep(40 + p.id%3)
		return
	}
	ctx.Halt()
}

func TestClusterFastForwardMatchesLoopback(t *testing.T) {
	g := torusGraph(8)
	newProc := func(id int) Process { return &sleeperProc{id: id} }
	refNet, err := NewNetwork(g, Config{Workers: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	refStats, err := refNet.Run(newProc)
	if err != nil {
		t.Fatal(err)
	}
	if refStats.SkippedRounds == 0 {
		t.Fatal("workload did not exercise fast-forward")
	}
	// rps=1 applies the jump at every barrier; rps=8 speculates into the
	// sleep gap and must rescind the speculated rounds' skip accounting;
	// rps=64 swallows the whole gap in one window.
	for _, rps := range []int{1, 8, 64} {
		stats, err := runClusterPeers(t, g, 3, 1, rps, Config{Seed: 7}, newProc)
		if err != nil {
			t.Fatal(err)
		}
		merged := MergeStats(stats)
		if a, b := maskExecutionStats(merged), maskExecutionStats(*refStats); a != b {
			t.Errorf("rps=%d: cluster fast-forward stats\n %+v\nwant\n %+v", rps, a, b)
		}
		for p, st := range stats {
			if st.Rounds != refStats.Rounds || st.SkippedRounds != refStats.SkippedRounds {
				t.Errorf("rps=%d peer %d: rounds %d (skipped %d), want %d (%d)",
					rps, p, st.Rounds, st.SkippedRounds, refStats.Rounds, refStats.SkippedRounds)
			}
		}
	}
}

// overSender floods one edge far past the budget in round 3: the peer
// owning node 0 hits a BandwidthError mid-run and every peer must abort —
// through the barrier, without deadlocking the others.
type overSender struct{ id int }

func (p *overSender) Init(ctx *Context) {}
func (p *overSender) Step(ctx *Context) {
	if p.id == 0 && ctx.Round() == 3 {
		for i := 0; i < 64; i++ {
			ctx.SendNbr(0, Message{Kind: 1, Seq: int32(i), Bits: 1 << 20})
		}
		return
	}
	if ctx.Round() > 10 {
		ctx.Halt()
	}
}

func TestClusterPropagatesRunErrors(t *testing.T) {
	g := torusGraph(8)
	// rps=8 puts the round-3 violation mid-window: the erring peer must
	// freeze (keep exchanging, stop stepping) until the batch syncs, then
	// every peer must abort at the reconciled round.
	for _, rps := range []int{1, 8} {
		stats, err := runClusterPeers(t, g, 3, 1, rps, Config{Seed: 1}, func(id int) Process { return &overSender{id: id} })
		if err == nil {
			t.Fatalf("rps=%d: cluster run swallowed the bandwidth violation: %+v", rps, stats)
		}
		var bw *BandwidthError
		if !errors.As(err, &bw) && !strings.Contains(err.Error(), "bandwidth violation") {
			t.Fatalf("rps=%d: error lost the violation: %v", rps, err)
		}
	}
}

func TestClusterConfigValidation(t *testing.T) {
	g := torusGraph(4)
	ex := &memExchanger{hub: newMemHub(2), self: 0}
	bar := newMemBarrier(2)
	ok := ClusterConfig{Peer: 0, Peers: 2, Exchange: ex, Barrier: bar}
	cases := map[string]Config{
		"one peer":       {Cluster: &ClusterConfig{Peer: 0, Peers: 1, Exchange: ex, Barrier: bar}},
		"peer range":     {Cluster: &ClusterConfig{Peer: 2, Peers: 2, Exchange: ex, Barrier: bar}},
		"too many peers": {Cluster: &ClusterConfig{Peer: 0, Peers: 17, Exchange: ex, Barrier: bar}},
		"missing fabric": {Cluster: &ClusterConfig{Peer: 0, Peers: 2}},
		"negative sync":  {Cluster: &ClusterConfig{Peer: 0, Peers: 2, Exchange: ex, Barrier: bar, RoundsPerSync: -1}},
		"local model":    {Model: LOCAL, Cluster: &ok},
		"onround":        {OnRound: func(int) bool { return false }, Cluster: &ok},
		"adaptive churn": {Topology: adaptiveStub{}, Cluster: &ok},
	}
	for name, cfg := range cases {
		if _, err := NewNetwork(g, cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
	if _, err := NewNetwork(g, Config{Cluster: &ok}); err != nil {
		t.Errorf("valid cluster config rejected: %v", err)
	}
}

// adaptiveStub is the minimal AdaptiveProvider: validation must reject it
// in cluster mode.
type adaptiveStub struct{}

func (adaptiveStub) Start(*Topology)           {}
func (adaptiveStub) ApplyRound(int, *Topology) {}
func (adaptiveStub) Adaptive() bool            { return true }
