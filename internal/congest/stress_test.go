package congest

import (
	"testing"

	"repro/internal/graph"
)

// torusGraph builds a side×side torus without importing gen (avoiding an
// import cycle in tests).
func torusGraph(side int) *graph.Graph {
	b := graph.NewBuilder(side * side)
	id := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			b.AddEdge(id(r, c), id((r+1)%side, c))
			b.AddEdge(id(r, c), id(r, (c+1)%side))
		}
	}
	return b.Build()
}

// floodAndCount floods a wave from node 0 and counts receipts; used as a
// deterministic workload for the stress test.
type floodAndCount struct {
	id       int
	received int
	relayed  bool
}

func (p *floodAndCount) Init(ctx *Context) {
	if p.id == 0 {
		ctx.Broadcast(Message{Kind: 1, Bits: 16})
		p.relayed = true
	}
}

func (p *floodAndCount) Step(ctx *Context) {
	for _, m := range ctx.Inbox() {
		if m.Kind == 1 {
			p.received++
			if !p.relayed {
				p.relayed = true
				ctx.Broadcast(Message{Kind: 1, Bits: 16})
			}
		}
	}
	if ctx.Round() > 2*ctx.N() {
		ctx.Halt()
	}
	if p.relayed && ctx.Round() > 64 {
		ctx.Halt()
	}
}

// TestStressLargeParallel runs a 10k-node torus flood under maximal
// parallelism and compares the aggregate outcome against a sequential run:
// the engine must be deterministic and race-free at scale (run with -race
// in CI fashion to get the full value).
func TestStressLargeParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const side = 100 // n = 10_000
	g := torusGraph(side)
	run := func(workers int) (int64, int64) {
		net, err := NewNetwork(g, Config{Workers: workers, Seed: 3, MaxRounds: 4 * side * side})
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]*floodAndCount, g.N())
		stats, err := net.Run(func(id int) Process {
			procs[id] = &floodAndCount{id: id}
			return procs[id]
		})
		if err != nil {
			t.Fatal(err)
		}
		var totalReceived int64
		for _, p := range procs {
			if !p.relayed {
				t.Fatal("flood did not reach every node")
			}
			totalReceived += int64(p.received)
		}
		return totalReceived, stats.Messages
	}
	seqR, seqM := run(1)
	parR, parM := run(8)
	if seqR != parR || seqM != parM {
		t.Fatalf("parallel run diverged: received %d vs %d, messages %d vs %d", seqR, parR, seqM, parM)
	}
	// Every node broadcasts exactly once: 2m messages in total.
	if want := int64(2 * g.M()); seqM != want {
		t.Errorf("messages %d, want %d", seqM, want)
	}
}
