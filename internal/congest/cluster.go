package congest

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/congest/frame"
)

// Cluster mode: one CONGEST run computed by N cooperating processes. Each
// peer constructs the full Network (graph, edge index, topology overlay) but
// owns — steps, seeds, delivers to — only a contiguous vertex range
// [Peer·n/Peers, (Peer+1)·n/Peers). Remote-destined messages are batched
// into one frame per peer per round (package frame) and exchanged through
// the ClusterConfig.Exchange hook; global control decisions (stop,
// round-limit abort, fast-forward) are replicated from the merged per-round
// reports returned by the ClusterConfig.Barrier hook — synced every round,
// or every RoundsPerSync rounds with speculative roll-forward in between
// (see runCluster).
//
// Determinism contract: a cluster run with any peer count produces results
// DeepEqual to the single-process run with the same seed. Three properties
// carry it: per-node RNG streams depend only on (seed, id); oblivious
// topology providers are pure functions of (seed, round) and are replayed
// identically on every peer; and the deliver phase reproduces the canonical
// (ascending sender id, send order) inbox ordering across processes by
// merging inbound peer frames around the local mailbox matrix in ascending
// peer order (peers own ascending id ranges, and each frame is filled in
// that same canonical order by its sender).

// NoWake is the MinWake identity: the value a RoundReport carries when no
// stepped-over sleeper exists. Merging reports takes the minimum, so the
// identity is the maximum representable round.
const NoWake = int32(math.MaxInt32)

// RoundReport is one peer's contribution to a round's global control
// decision, and — after merging — the decision's inputs. The engine applies
// the stop/abort/fast-forward logic locally from the merged values, so the
// barrier implementation stays a pure fold (MergeReports) with no protocol
// knowledge.
type RoundReport struct {
	// Round is the round being reported (0 for the Init round).
	Round int
	// Stepped is the number of Step invocations this round.
	Stepped int64
	// Delivered is the number of messages delivered this round.
	Delivered int64
	// Halts is the number of nodes that halted this round.
	Halts int
	// MinWake is the earliest wake-up round among skipped sleepers, or
	// NoWake when there are none.
	MinWake int32
	// Err is the peer's local run error ("" when healthy); the merged report
	// carries the first non-empty one in peer order and aborts every peer.
	Err string
}

// MergeReports folds per-peer reports of one round into the global report
// every peer acts on. It is the entire round-barrier decision logic; the
// coordinator applies it verbatim.
func MergeReports(reps []RoundReport) RoundReport {
	m := RoundReport{MinWake: NoWake}
	for i := range reps {
		r := &reps[i]
		m.Round = r.Round
		m.Stepped += r.Stepped
		m.Delivered += r.Delivered
		m.Halts += r.Halts
		if r.MinWake < m.MinWake {
			m.MinWake = r.MinWake
		}
		if m.Err == "" {
			m.Err = r.Err
		}
	}
	return m
}

// Exchanger moves one round's frames between peers. Exchange is called
// exactly once per round by every peer — even when every outbox is empty —
// after its step phase and before its deliver phase.
type Exchanger interface {
	// Exchange sends out[q] to every peer q (out[self] is ignored) and
	// returns the frames the other peers sent this round (in[self] is nil).
	// It blocks until every inbound frame for the round has arrived. The
	// returned slices remain valid until the next Exchange call; the engine
	// finishes delivering before it exchanges again.
	Exchange(round int, out [][]frame.Record) (in [][]frame.Record, err error)
}

// MergeReportBatch folds aligned per-peer report batches index by index
// with MergeReports: batches[p][i] is peer p's report for the i-th round of
// the speculation window. Batches are aligned by construction — every peer
// truncates its window at the same deterministic boundaries — so a length
// mismatch is a protocol violation, reported as a single-report batch
// carrying the error (which aborts every peer).
func MergeReportBatch(batches [][]RoundReport) []RoundReport {
	if len(batches) == 0 {
		return nil
	}
	width := len(batches[0])
	for _, b := range batches[1:] {
		if len(b) != width {
			return []RoundReport{{Round: batches[0][0].Round, MinWake: NoWake,
				Err: "congest: misaligned cluster report batches (protocol bug)"}}
		}
	}
	merged := make([]RoundReport, width)
	row := make([]RoundReport, len(batches))
	for i := 0; i < width; i++ {
		for p := range batches {
			row[p] = batches[p][i]
		}
		merged[i] = MergeReports(row)
	}
	return merged
}

// Barrier synchronizes the global control decisions of one speculation
// window: up to RoundsPerSync consecutive rounds. Sync is called once per
// window by every peer, after the window's last delivery; every peer
// submits the same number of reports for the same rounds (window
// boundaries are deterministic).
type Barrier interface {
	// Sync submits this peer's reports and blocks until every peer's batch
	// for the window has been merged index by index (MergeReportBatch),
	// returning the merged batch (same length as the submission). A
	// transport error aborts the run.
	Sync(batch []RoundReport) ([]RoundReport, error)
}

// ClusterConfig makes a Network one peer of a multi-process run. Cluster
// runs are restricted to what distributes without a global view: CONGEST
// model only (payload slabs never cross the wire), no OnRound callback, and
// no adaptive topology providers (published protocol state is per-peer);
// oblivious providers work — every peer replays the same (seed, round)
// deterministic churn on its own full overlay copy.
type ClusterConfig struct {
	// Peer is this process's index in [0, Peers).
	Peer int
	// Peers is the number of cooperating processes (≥ 2, ≤ the vertex
	// count so every peer owns at least one vertex).
	Peers int
	// Exchange moves the per-round frames (required).
	Exchange Exchanger
	// Barrier merges the per-round control reports (required).
	Barrier Barrier
	// RoundsPerSync batches the barrier: peers speculate up to this many
	// rounds between Sync calls (the one-frame-per-peer-per-round data
	// exchange is unaffected — CONGEST semantics require it). 0 and 1 both
	// mean a barrier every round. Results are byte-identical for any value:
	// the engine reconciles stop, abort and fast-forward decisions from the
	// merged batch exactly as the every-round loop would. Forced to 1 under
	// a topology provider, which must observe every settled round.
	RoundsPerSync int
}

// validate rejects configurations that cannot hold the determinism
// contract; called by NewNetwork.
func (cl *ClusterConfig) validate(n int, cfg *Config) error {
	switch {
	case cl.Peers < 2:
		return errors.New("congest: cluster mode needs at least 2 peers")
	case cl.Peer < 0 || cl.Peer >= cl.Peers:
		return fmt.Errorf("congest: cluster peer %d out of range [0,%d)", cl.Peer, cl.Peers)
	case cl.Peers > n:
		return fmt.Errorf("congest: %d cluster peers over %d nodes: every peer must own a vertex", cl.Peers, n)
	case cl.Exchange == nil || cl.Barrier == nil:
		return errors.New("congest: cluster mode needs an Exchanger and a Barrier")
	case cl.RoundsPerSync < 0:
		return fmt.Errorf("congest: negative RoundsPerSync %d", cl.RoundsPerSync)
	case cfg.Model != CONGEST:
		return errors.New("congest: cluster mode is CONGEST-only (payload slabs do not cross the wire)")
	case cfg.OnRound != nil:
		return errors.New("congest: OnRound is unavailable in cluster mode (no peer sees the whole network)")
	case IsAdaptive(cfg.Topology):
		return errors.New("congest: adaptive topology providers are unavailable in cluster mode (published state is per-peer)")
	}
	return nil
}

// wireTransport is the cluster deliver phase: merge the shards' remote
// outboxes into one record batch per peer, exchange frames, then run the
// halo-aware local drain (shard.runDeliverWire) over the inbound frames.
type wireTransport struct{}

func (wireTransport) deliver(n *Network) error {
	cl := n.cfg.Cluster
	for p := range n.wireOut {
		n.wireOut[p] = n.wireOut[p][:0]
	}
	for w := range n.shards {
		sh := &n.shards[w]
		for p := range sh.wireOut {
			// Shards hold ascending id ranges and step in ascending id
			// order, so appending shard by shard preserves the canonical
			// frame order.
			n.wireOut[p] = append(n.wireOut[p], sh.wireOut[p]...)
			sh.wireOut[p] = sh.wireOut[p][:0]
		}
	}
	in, err := cl.Exchange.Exchange(n.round, n.wireOut)
	if err != nil {
		return fmt.Errorf("congest: cluster exchange (round %d): %w", n.round, err)
	}
	n.wireIn = in
	for p := range n.wireOut {
		if p == cl.Peer {
			continue
		}
		n.stats.FramesSent++
		n.stats.WireBytes += int64(frame.OverheadBytes + frame.RecordBytes*len(n.wireOut[p]))
	}
	n.stats.FramesRecv += int64(cl.Peers - 1)
	n.runPhase(phaseDeliver)
	return nil
}

// runDeliverWire is the cluster variant of the deliver drain: inbound peer
// frames merge around the local mailbox matrix in ascending peer order,
// reproducing the canonical (ascending sender, send order) inbox ordering
// across process boundaries. Bounces never cross the wire (they are
// sender-local by construction), so inbound records all count as delivered
// traffic.
func (sh *shard) runDeliverWire() {
	net := sh.net
	cl := net.cfg.Cluster
	rnd := int32(net.round + 1)
	for p := 0; p < cl.Peers; p++ {
		if p == cl.Peer {
			sh.drainLocal()
			continue
		}
		for _, r := range net.wireIn[p] {
			if r.To < sh.lo || r.To >= sh.hi {
				continue
			}
			sh.msgs++
			sh.bits += int64(r.Bits)
			dst := &net.ctxs[r.To]
			if dst.halted {
				continue
			}
			m := Message{
				From: r.From, Round: rnd,
				Kind: r.Kind, Flags: r.Flags, Seq: r.Seq,
				Value: r.Value, Aux: r.Aux, Bits: r.Bits,
			}
			if dst.sleep > rnd && len(dst.inbox) == 0 {
				sh.wakes++
			}
			if len(dst.inbox) == cap(dst.inbox) {
				sh.deliverGrows++
			}
			dst.inbox = append(dst.inbox, m)
		}
	}
}

// runCluster is the cluster round loop, entered after the Init round's
// delivery. Every global decision — stop, round-limit abort, error abort,
// fast-forward — is computed from the barrier-merged reports with the same
// logic as the single-process loop, so all peers advance their round
// counters in lockstep and a cluster run's Stats.Rounds/SkippedRounds match
// the single-process run exactly.
//
// With RoundsPerSync = R > 1 the loop speculates: it runs up to R rounds —
// exchanging one data frame per peer per round as always — before syncing
// the whole window's reports in one barrier, then reconciles the merged
// decisions as if they had been applied every round. Speculation is safe
// because the frames themselves carry all inter-peer data dependencies;
// the barrier only carries control decisions, and every round a control
// decision would have cut short is provably inert when executed anyway:
//
//   - past a stop (all nodes halted) or inside a fast-forward gap (every
//     live node asleep, nothing in flight), no node steps, sends, or
//     delivers — the only residue is the local SleepSkips count of
//     speculatively executed gap rounds, which reconciliation rescinds,
//     and the overshot round counter, which it rewinds;
//   - past an error, this peer freezes (stops stepping) but keeps
//     exchanging empty frames so no peer blocks; the run is discarded at
//     the abort, so divergence after the error round is unobservable.
//
// Window boundaries (R rounds, or MaxRounds) are deterministic on every
// peer, so the per-peer batches always align.
func (n *Network) runCluster(localHalts int, delivered0 int64) (*Stats, error) {
	nn := n.g.N()
	spanR := n.cfg.Cluster.RoundsPerSync
	if spanR < 1 || n.cfg.Topology != nil {
		// Dynamic networks sync every round: speculated rounds past a stop
		// or abort would apply topology churn the settled run never saw,
		// skewing the lockstep TopologyChanges counter.
		spanR = 1
	}
	merged, err := n.barrierSync([]RoundReport{{Round: 0, Delivered: delivered0, Halts: localHalts, MinWake: NoWake}})
	if err != nil {
		return n.finalize(), err
	}
	if len(merged) != 1 {
		return n.finalize(), fmt.Errorf("congest: cluster barrier returned %d reports for round 0", len(merged))
	}
	if merged[0].Err != "" {
		return n.finalize(), fmt.Errorf("congest: cluster aborted in round 0: %s", merged[0].Err)
	}
	halted := merged[0].Halts

	// batch collects the window's locally executed rounds between barriers;
	// skips mirrors it with each round's local SleepSkips delta so
	// reconciliation can rescind the skips of rounds the R=1 schedule never
	// executes. ffUntil is the last round a merged fast-forward decision
	// proved empty; it persists across windows because a sleep gap can
	// outlast one.
	batch := make([]RoundReport, 0, spanR)
	skips := make([]int64, 0, spanR)
	ffUntil := 0
	for halted < nn {
		batch, skips = batch[:0], skips[:0]
		var localErr error
		localErrIdx := -1
		for len(batch) < spanR {
			if n.round+1 > n.cfg.MaxRounds {
				if len(batch) == 0 {
					// Deterministic on every peer (same MaxRounds, same
					// round), so no barrier is needed to abort together.
					return n.finalize(), fmt.Errorf("%w after %d rounds (%d/%d nodes halted)", ErrRoundLimit, n.cfg.MaxRounds, halted, nn)
				}
				break // every peer truncates its window here identically
			}
			n.round++
			if n.cfg.Topology != nil {
				n.cfg.Topology.ApplyRound(n.round, &n.topo)
			}
			for i := range n.shards {
				n.shards[i].arena.flip()
			}
			rep := RoundReport{Round: n.round, MinWake: NoWake}
			var skipped int64
			if localErr == nil {
				n.runPhase(phaseStep)
				pre := n.stats.SleepSkips
				var stepErr error
				rep.Stepped, rep.MinWake, rep.Halts, stepErr = n.mergeStep()
				skipped = n.stats.SleepSkips - pre
				if stepErr != nil {
					// Freeze: to the window's end this peer stops stepping
					// (state past the error is meaningless) but keeps
					// exchanging so the still-speculating peers never block.
					localErr, localErrIdx = stepErr, len(batch)
				}
			}
			if localErr != nil {
				rep.Err = localErr.Error()
			}
			// Exchange and deliver even on error: the other peers are
			// blocked on this round's frames.
			if err := n.transport.deliver(n); err != nil {
				return n.finalize(), err
			}
			rep.Delivered = n.mergeDeliver()
			batch = append(batch, rep)
			skips = append(skips, skipped)
		}
		merged, err := n.barrierSync(batch)
		if err != nil {
			return n.finalize(), err
		}
		if len(merged) != len(batch) {
			if len(merged) > 0 && merged[0].Err != "" {
				n.round = batch[0].Round
				return n.finalize(), fmt.Errorf("congest: cluster aborted in round %d: %s", batch[0].Round, merged[0].Err)
			}
			return n.finalize(), fmt.Errorf("congest: cluster barrier returned %d reports for %d rounds", len(merged), len(batch))
		}
		// Reconcile: replay the merged decisions in round order, exactly as
		// the every-round loop would have applied them.
		for i := range merged {
			rep := &merged[i]
			if rep.Err != "" {
				n.round = batch[i].Round
				if localErr != nil && localErrIdx == i {
					return n.finalize(), localErr
				}
				return n.finalize(), fmt.Errorf("congest: cluster aborted in round %d: %s", batch[i].Round, rep.Err)
			}
			halted += rep.Halts
			if halted >= nn {
				// The run ended inside the window; the rounds speculated
				// past it were empty (every live list was empty), so
				// rewinding the round counter is the whole cleanup.
				n.round = batch[i].Round
				break
			}
			if n.cfg.Topology != nil {
				continue
			}
			if batch[i].Round <= ffUntil {
				// An already-skipped round this peer executed speculatively:
				// rescind its sleep-skip accounting — the every-round
				// schedule jumps the gap and never charges the sleepers.
				n.stats.SleepSkips -= skips[i]
				continue
			}
			if rep.Stepped == 0 && rep.Delivered == 0 && rep.MinWake != noWake {
				// Fast-forward: nothing ran and nothing is in flight, so
				// every live node sleeps until MinWake. Count the skipped
				// gap now; rounds of it already (or later) executed
				// speculatively take the rescission branch above.
				target := int(rep.MinWake)
				if target > n.cfg.MaxRounds {
					target = n.cfg.MaxRounds + 1
				}
				if target-1 > batch[i].Round {
					n.stats.SkippedRounds += int64(target - 1 - batch[i].Round)
					ffUntil = target - 1
				}
			}
		}
		if halted < nn && ffUntil > n.round {
			// Jump the tail of a fast-forward gap extending past the window
			// (already counted in SkippedRounds at decision time).
			n.round = ffUntil
		}
	}
	st := n.finalize()
	st.HaltedAll = true
	return st, nil
}

func (n *Network) barrierSync(batch []RoundReport) ([]RoundReport, error) {
	merged, err := n.cfg.Cluster.Barrier.Sync(batch)
	if err != nil {
		return nil, fmt.Errorf("congest: cluster barrier (round %d): %w", batch[0].Round, err)
	}
	return merged, nil
}

// MergeStats folds the per-peer Stats of one cluster run into the Stats the
// single-process run would report — with three deliberate exceptions.
// Traffic and liveness counters sum; MaxEdgeBits is a max; the lockstep
// counters (Rounds, SkippedRounds, TopologyChanges) are identical on every
// peer and taken from the first; HaltedAll holds only if it holds
// everywhere. The exceptions are the execution-artifact counters: StepGrows
// and DeliverGrows describe per-process buffer warmup (they already vary
// with the worker count in loopback runs) and the wire counters
// (WireBytes, FramesSent, FramesRecv) describe the transport itself — all
// of which are zero in a single-process run's Stats only by accident of
// execution, so comparisons should mask them (as the determinism tests do).
func MergeStats(sts []Stats) Stats {
	if len(sts) == 0 {
		return Stats{}
	}
	m := sts[0]
	for _, s := range sts[1:] {
		m.Messages += s.Messages
		m.Bits += s.Bits
		m.ActiveSteps += s.ActiveSteps
		m.SleepSkips += s.SleepSkips
		m.Wakeups += s.Wakeups
		m.PayloadWords += s.PayloadWords
		m.DroppedSends += s.DroppedSends
		m.StepGrows += s.StepGrows
		m.DeliverGrows += s.DeliverGrows
		m.WireBytes += s.WireBytes
		m.FramesSent += s.FramesSent
		m.FramesRecv += s.FramesRecv
		if s.MaxEdgeBits > m.MaxEdgeBits {
			m.MaxEdgeBits = s.MaxEdgeBits
		}
		m.HaltedAll = m.HaltedAll && s.HaltedAll
	}
	return m
}
