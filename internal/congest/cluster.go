package congest

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/congest/frame"
)

// Cluster mode: one CONGEST run computed by N cooperating processes. Each
// peer constructs the full Network (graph, edge index, topology overlay) but
// owns — steps, seeds, delivers to — only a contiguous vertex range
// [Peer·n/Peers, (Peer+1)·n/Peers). Remote-destined messages are batched
// into one frame per peer per round (package frame) and exchanged through
// the ClusterConfig.Exchange hook; global control decisions (stop,
// round-limit abort, fast-forward) are replicated from the merged per-round
// report returned by the ClusterConfig.Barrier hook.
//
// Determinism contract: a cluster run with any peer count produces results
// DeepEqual to the single-process run with the same seed. Three properties
// carry it: per-node RNG streams depend only on (seed, id); oblivious
// topology providers are pure functions of (seed, round) and are replayed
// identically on every peer; and the deliver phase reproduces the canonical
// (ascending sender id, send order) inbox ordering across processes by
// merging inbound peer frames around the local mailbox matrix in ascending
// peer order (peers own ascending id ranges, and each frame is filled in
// that same canonical order by its sender).

// NoWake is the MinWake identity: the value a RoundReport carries when no
// stepped-over sleeper exists. Merging reports takes the minimum, so the
// identity is the maximum representable round.
const NoWake = int32(math.MaxInt32)

// RoundReport is one peer's contribution to a round's global control
// decision, and — after merging — the decision's inputs. The engine applies
// the stop/abort/fast-forward logic locally from the merged values, so the
// barrier implementation stays a pure fold (MergeReports) with no protocol
// knowledge.
type RoundReport struct {
	// Round is the round being reported (0 for the Init round).
	Round int
	// Stepped is the number of Step invocations this round.
	Stepped int64
	// Delivered is the number of messages delivered this round.
	Delivered int64
	// Halts is the number of nodes that halted this round.
	Halts int
	// MinWake is the earliest wake-up round among skipped sleepers, or
	// NoWake when there are none.
	MinWake int32
	// Err is the peer's local run error ("" when healthy); the merged report
	// carries the first non-empty one in peer order and aborts every peer.
	Err string
}

// MergeReports folds per-peer reports of one round into the global report
// every peer acts on. It is the entire round-barrier decision logic; the
// coordinator applies it verbatim.
func MergeReports(reps []RoundReport) RoundReport {
	m := RoundReport{MinWake: NoWake}
	for i := range reps {
		r := &reps[i]
		m.Round = r.Round
		m.Stepped += r.Stepped
		m.Delivered += r.Delivered
		m.Halts += r.Halts
		if r.MinWake < m.MinWake {
			m.MinWake = r.MinWake
		}
		if m.Err == "" {
			m.Err = r.Err
		}
	}
	return m
}

// Exchanger moves one round's frames between peers. Exchange is called
// exactly once per round by every peer — even when every outbox is empty —
// after its step phase and before its deliver phase.
type Exchanger interface {
	// Exchange sends out[q] to every peer q (out[self] is ignored) and
	// returns the frames the other peers sent this round (in[self] is nil).
	// It blocks until every inbound frame for the round has arrived. The
	// returned slices remain valid until the next Exchange call; the engine
	// finishes delivering before it exchanges again.
	Exchange(round int, out [][]frame.Record) (in [][]frame.Record, err error)
}

// Barrier synchronizes one global control decision per round. Sync is
// called exactly once per round by every peer, after delivery.
type Barrier interface {
	// Sync submits this peer's report and blocks until every peer's report
	// for the round has been merged (MergeReports), returning the merged
	// report. A transport error aborts the run.
	Sync(r RoundReport) (RoundReport, error)
}

// ClusterConfig makes a Network one peer of a multi-process run. Cluster
// runs are restricted to what distributes without a global view: CONGEST
// model only (payload slabs never cross the wire), no OnRound callback, and
// no adaptive topology providers (published protocol state is per-peer);
// oblivious providers work — every peer replays the same (seed, round)
// deterministic churn on its own full overlay copy.
type ClusterConfig struct {
	// Peer is this process's index in [0, Peers).
	Peer int
	// Peers is the number of cooperating processes (≥ 2, ≤ the vertex
	// count so every peer owns at least one vertex).
	Peers int
	// Exchange moves the per-round frames (required).
	Exchange Exchanger
	// Barrier merges the per-round control reports (required).
	Barrier Barrier
}

// validate rejects configurations that cannot hold the determinism
// contract; called by NewNetwork.
func (cl *ClusterConfig) validate(n int, cfg *Config) error {
	switch {
	case cl.Peers < 2:
		return errors.New("congest: cluster mode needs at least 2 peers")
	case cl.Peer < 0 || cl.Peer >= cl.Peers:
		return fmt.Errorf("congest: cluster peer %d out of range [0,%d)", cl.Peer, cl.Peers)
	case cl.Peers > n:
		return fmt.Errorf("congest: %d cluster peers over %d nodes: every peer must own a vertex", cl.Peers, n)
	case cl.Exchange == nil || cl.Barrier == nil:
		return errors.New("congest: cluster mode needs an Exchanger and a Barrier")
	case cfg.Model != CONGEST:
		return errors.New("congest: cluster mode is CONGEST-only (payload slabs do not cross the wire)")
	case cfg.OnRound != nil:
		return errors.New("congest: OnRound is unavailable in cluster mode (no peer sees the whole network)")
	case IsAdaptive(cfg.Topology):
		return errors.New("congest: adaptive topology providers are unavailable in cluster mode (published state is per-peer)")
	}
	return nil
}

// wireTransport is the cluster deliver phase: merge the shards' remote
// outboxes into one record batch per peer, exchange frames, then run the
// halo-aware local drain (shard.runDeliverWire) over the inbound frames.
type wireTransport struct{}

func (wireTransport) deliver(n *Network) error {
	cl := n.cfg.Cluster
	for p := range n.wireOut {
		n.wireOut[p] = n.wireOut[p][:0]
	}
	for w := range n.shards {
		sh := &n.shards[w]
		for p := range sh.wireOut {
			// Shards hold ascending id ranges and step in ascending id
			// order, so appending shard by shard preserves the canonical
			// frame order.
			n.wireOut[p] = append(n.wireOut[p], sh.wireOut[p]...)
			sh.wireOut[p] = sh.wireOut[p][:0]
		}
	}
	in, err := cl.Exchange.Exchange(n.round, n.wireOut)
	if err != nil {
		return fmt.Errorf("congest: cluster exchange (round %d): %w", n.round, err)
	}
	n.wireIn = in
	for p := range n.wireOut {
		if p == cl.Peer {
			continue
		}
		n.stats.FramesSent++
		n.stats.WireBytes += int64(frame.OverheadBytes + frame.RecordBytes*len(n.wireOut[p]))
	}
	n.stats.FramesRecv += int64(cl.Peers - 1)
	n.runPhase(phaseDeliver)
	return nil
}

// runDeliverWire is the cluster variant of the deliver drain: inbound peer
// frames merge around the local mailbox matrix in ascending peer order,
// reproducing the canonical (ascending sender, send order) inbox ordering
// across process boundaries. Bounces never cross the wire (they are
// sender-local by construction), so inbound records all count as delivered
// traffic.
func (sh *shard) runDeliverWire() {
	net := sh.net
	cl := net.cfg.Cluster
	rnd := int32(net.round + 1)
	for p := 0; p < cl.Peers; p++ {
		if p == cl.Peer {
			sh.drainLocal()
			continue
		}
		for _, r := range net.wireIn[p] {
			if r.To < sh.lo || r.To >= sh.hi {
				continue
			}
			sh.msgs++
			sh.bits += int64(r.Bits)
			dst := &net.ctxs[r.To]
			if dst.halted {
				continue
			}
			m := Message{
				From: r.From, Round: rnd,
				Kind: r.Kind, Flags: r.Flags, Seq: r.Seq,
				Value: r.Value, Aux: r.Aux, Bits: r.Bits,
			}
			if dst.sleep > rnd && len(dst.inbox) == 0 {
				sh.wakes++
			}
			if len(dst.inbox) == cap(dst.inbox) {
				sh.deliverGrows++
			}
			dst.inbox = append(dst.inbox, m)
		}
	}
}

// runCluster is the cluster round loop, entered after the Init round's
// delivery. Every global decision — stop, round-limit abort, error abort,
// fast-forward — is computed from the barrier-merged report with the same
// logic as the single-process loop, so all peers advance their round
// counters in lockstep and a cluster run's Stats.Rounds/SkippedRounds match
// the single-process run exactly.
func (n *Network) runCluster(localHalts int, delivered0 int64) (*Stats, error) {
	nn := n.g.N()
	rep, err := n.barrierSync(RoundReport{Round: 0, Delivered: delivered0, Halts: localHalts, MinWake: NoWake})
	if err != nil {
		return n.finalize(), err
	}
	if rep.Err != "" {
		return n.finalize(), fmt.Errorf("congest: cluster aborted in round 0: %s", rep.Err)
	}
	halted := rep.Halts
	for halted < nn {
		n.round++
		if n.round > n.cfg.MaxRounds {
			// Deterministic on every peer (same MaxRounds, same round), so
			// no barrier is needed to abort together.
			n.round--
			return n.finalize(), fmt.Errorf("%w after %d rounds (%d/%d nodes halted)", ErrRoundLimit, n.cfg.MaxRounds, halted, nn)
		}
		if n.cfg.Topology != nil {
			n.cfg.Topology.ApplyRound(n.round, &n.topo)
		}
		for i := range n.shards {
			n.shards[i].arena.flip()
		}
		n.runPhase(phaseStep)
		stepped, minWake, halts, stepErr := n.mergeStep()
		// A local step error (illegal send, bandwidth violation) must not
		// skip the exchange and barrier: the other peers are blocked on this
		// round's frames. Complete the round, then report the error.
		if err := n.transport.deliver(n); err != nil {
			return n.finalize(), err
		}
		delivered := n.mergeDeliver()
		rep, err := n.barrierSync(RoundReport{
			Round: n.round, Stepped: stepped, Delivered: delivered,
			Halts: halts, MinWake: minWake, Err: errString(stepErr),
		})
		if err != nil {
			return n.finalize(), err
		}
		if rep.Err != "" {
			if stepErr != nil {
				return n.finalize(), stepErr
			}
			return n.finalize(), fmt.Errorf("congest: cluster aborted in round %d: %s", n.round, rep.Err)
		}
		halted += rep.Halts
		if halted < nn && rep.Stepped == 0 && rep.Delivered == 0 && rep.MinWake != noWake && n.cfg.Topology == nil {
			target := int(rep.MinWake)
			if target > n.cfg.MaxRounds {
				target = n.cfg.MaxRounds + 1
			}
			if target-1 > n.round {
				n.stats.SkippedRounds += int64(target - 1 - n.round)
				n.round = target - 1
			}
		}
	}
	st := n.finalize()
	st.HaltedAll = true
	return st, nil
}

func (n *Network) barrierSync(r RoundReport) (RoundReport, error) {
	rep, err := n.cfg.Cluster.Barrier.Sync(r)
	if err != nil {
		return RoundReport{}, fmt.Errorf("congest: cluster barrier (round %d): %w", r.Round, err)
	}
	return rep, nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// MergeStats folds the per-peer Stats of one cluster run into the Stats the
// single-process run would report — with three deliberate exceptions.
// Traffic and liveness counters sum; MaxEdgeBits is a max; the lockstep
// counters (Rounds, SkippedRounds, TopologyChanges) are identical on every
// peer and taken from the first; HaltedAll holds only if it holds
// everywhere. The exceptions are the execution-artifact counters: StepGrows
// and DeliverGrows describe per-process buffer warmup (they already vary
// with the worker count in loopback runs) and the wire counters
// (WireBytes, FramesSent, FramesRecv) describe the transport itself — all
// of which are zero in a single-process run's Stats only by accident of
// execution, so comparisons should mask them (as the determinism tests do).
func MergeStats(sts []Stats) Stats {
	if len(sts) == 0 {
		return Stats{}
	}
	m := sts[0]
	for _, s := range sts[1:] {
		m.Messages += s.Messages
		m.Bits += s.Bits
		m.ActiveSteps += s.ActiveSteps
		m.SleepSkips += s.SleepSkips
		m.Wakeups += s.Wakeups
		m.PayloadWords += s.PayloadWords
		m.DroppedSends += s.DroppedSends
		m.StepGrows += s.StepGrows
		m.DeliverGrows += s.DeliverGrows
		m.WireBytes += s.WireBytes
		m.FramesSent += s.FramesSent
		m.FramesRecv += s.FramesRecv
		if s.MaxEdgeBits > m.MaxEdgeBits {
			m.MaxEdgeBits = s.MaxEdgeBits
		}
		m.HaltedAll = m.HaltedAll && s.HaltedAll
	}
	return m
}
