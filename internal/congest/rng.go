package congest

// splitmix64 is a tiny O(1)-seed rand.Source64. The engine creates one RNG
// per node per run; math/rand's default lagged-Fibonacci source pays an
// ~600-word table initialization per seed, which dominated whole-run
// profiles on small networks, while splitmix64 seeds in one word and has
// excellent statistical quality for simulation workloads (it is the seeding
// generator recommended for the xoshiro family).
type splitmix64 struct{ x uint64 }

func (s *splitmix64) Uint64() uint64 {
	s.x += 0x9E3779B97F4A7C15
	z := s.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix64) Seed(seed int64) { s.x = uint64(seed) }

// nodeSeed derives the per-node RNG seed from the run seed. The constant
// mixing keeps distinct nodes on distinct streams and distinct run seeds on
// distinct per-node streams. The RNG slabs themselves live on the Network
// (rngSrcs/rngs) and are reseeded in place by every Run.
func nodeSeed(runSeed int64, u int) int64 {
	return runSeed ^ (int64(u)*0x5E3779B97F4A7C15 + 0x1234567)
}
