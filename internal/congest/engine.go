package congest

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// pend is one queued message in a sharded mailbox.
type pend struct {
	to  int32
	msg Message
}

const (
	phaseStep int8 = iota
	phaseDeliver

	// maxShards bounds the W×W mailbox matrix; beyond this, extra workers
	// stop paying for themselves anyway.
	maxShards = 256
	// parallelMin is the network size below which the engine executes its
	// shards on one goroutine (the shard structure — and therefore the
	// result — is identical either way).
	parallelMin = 64

	noWake = int32(math.MaxInt32)
)

// shard owns a contiguous range of nodes: it steps them, receives their
// mail, and tracks their liveness. All fields are touched only by the
// owning worker during a phase; the control loop merges the accumulators
// between phases while every worker is quiescent.
type shard struct {
	net    *Network
	idx    int32
	lo, hi int32

	// live lists the shard's non-halted nodes in ascending id order; it is
	// compacted in place as nodes halt, so stepping is O(live), not
	// O(range).
	live []int32

	// out[s] buffers this shard's messages destined to shard s, in send
	// order. Truncated (never freed) after each deliver phase.
	out [][]pend

	// arena stores this shard's outgoing []int32 payload slabs.
	arena payloadArena

	// Per-phase accumulators, merged and reset by the control loop.
	steps        int64
	skips        int64
	wakes        int64
	halts        int
	msgs         int64
	bits         int64
	drops        int64
	payloadWords int64
	stepGrows    int64
	deliverGrows int64
	maxEdgeBits  int
	minWake      int32
	err          error
}

// runStep steps every live node of the shard in ascending id order,
// compacting the live list as nodes halt.
func (sh *shard) runStep() {
	net := sh.net
	round := int32(net.round)
	w := 0
	for _, u := range sh.live {
		ctx := &net.ctxs[u]
		if ctx.sleep > round && len(ctx.inbox) == 0 {
			sh.skips++
			if ctx.sleep < sh.minWake {
				sh.minWake = ctx.sleep
			}
			sh.live[w] = u
			w++
			continue
		}
		ctx.sleep = 0
		net.procs[u].Step(ctx)
		sh.steps++
		ctx.inbox = ctx.inbox[:0]
		if ctx.err != nil && sh.err == nil {
			sh.err = ctx.err
		}
		if ctx.halted {
			sh.halts++
			continue
		}
		sh.live[w] = u
		w++
	}
	sh.live = sh.live[:w]
}

// runDeliver drains every shard's mailbox destined to this shard, in shard
// order. Because shards are contiguous ascending id ranges and each shard
// steps in ascending id order, the drain reproduces the canonical
// (ascending sender, send order) inbox ordering for any worker count.
func (sh *shard) runDeliver() {
	net := sh.net
	rnd := int32(net.round + 1)
	for w := range net.shards {
		src := &net.shards[w]
		buf := src.out[sh.idx]
		for i := range buf {
			if buf[i].msg.Flags&FlagBounced == 0 {
				// Bounces are excluded from the message/bit accounting:
				// nothing traversed an edge (Stats.DroppedSends counts them).
				sh.msgs++
				sh.bits += int64(buf[i].msg.Bits)
			}
			dst := &net.ctxs[buf[i].to]
			if dst.halted {
				continue // counted, never read: drop instead of hoarding
			}
			m := buf[i].msg
			m.Round = rnd
			if dst.sleep > rnd && len(dst.inbox) == 0 {
				sh.wakes++
			}
			if len(dst.inbox) == cap(dst.inbox) {
				sh.deliverGrows++
			}
			dst.inbox = append(dst.inbox, m)
		}
		src.out[sh.idx] = buf[:0]
	}
}

// workerPool keeps one goroutine per shard alive for the whole run; phases
// are broadcast over per-worker channels, so the steady-state round loop
// performs no goroutine spawns.
type workerPool struct {
	start []chan int8
	wg    sync.WaitGroup
}

func (n *Network) startPool() {
	p := &workerPool{start: make([]chan int8, len(n.shards))}
	for w := range p.start {
		ch := make(chan int8, 1)
		p.start[w] = ch
		go func(sh *shard) {
			for ph := range ch {
				if ph == phaseStep {
					sh.runStep()
				} else {
					sh.runDeliver()
				}
				p.wg.Done()
			}
		}(&n.shards[w])
	}
	n.pool = p
}

func (p *workerPool) stop() {
	for _, ch := range p.start {
		close(ch)
	}
}

// runPhase executes one phase across all shards, in parallel when a pool is
// running. Shard state is identical either way, so results never depend on
// the execution mode.
func (n *Network) runPhase(ph int8) {
	if n.pool == nil {
		for i := range n.shards {
			if ph == phaseStep {
				n.shards[i].runStep()
			} else {
				n.shards[i].runDeliver()
			}
		}
		return
	}
	n.pool.wg.Add(len(n.shards))
	for _, ch := range n.pool.start {
		ch <- ph
	}
	n.pool.wg.Wait()
}

// mergeStep folds the step-phase accumulators into the run statistics and
// returns the number of nodes stepped, the earliest wake-up round among
// skipped sleepers, the number of nodes that halted, and the first error in
// node-id order.
func (n *Network) mergeStep() (stepped int64, minWake int32, halts int, err error) {
	minWake = noWake
	for i := range n.shards {
		sh := &n.shards[i]
		stepped += sh.steps
		n.stats.ActiveSteps += sh.steps
		sh.steps = 0
		n.stats.SleepSkips += sh.skips
		sh.skips = 0
		n.stats.StepGrows += sh.stepGrows
		sh.stepGrows = 0
		n.stats.PayloadWords += sh.payloadWords
		sh.payloadWords = 0
		n.stats.DroppedSends += sh.drops
		sh.drops = 0
		halts += sh.halts
		sh.halts = 0
		if sh.maxEdgeBits > n.stats.MaxEdgeBits {
			n.stats.MaxEdgeBits = sh.maxEdgeBits
		}
		if sh.minWake < minWake {
			minWake = sh.minWake
		}
		sh.minWake = noWake
		if err == nil && sh.err != nil {
			err = sh.err
		}
	}
	return stepped, minWake, halts, err
}

// mergeDeliver folds the deliver-phase accumulators into the run statistics
// and returns the number of messages delivered.
func (n *Network) mergeDeliver() (delivered int64) {
	for i := range n.shards {
		sh := &n.shards[i]
		delivered += sh.msgs
		n.stats.Messages += sh.msgs
		sh.msgs = 0
		n.stats.Bits += sh.bits
		sh.bits = 0
		n.stats.Wakeups += sh.wakes
		sh.wakes = 0
		n.stats.DeliverGrows += sh.deliverGrows
		sh.deliverGrows = 0
	}
	return delivered
}

// finalize merges any outstanding per-shard accounting into the run
// statistics and returns a private copy: Run's caller keeps the Stats while
// the network's own accumulator is rewound by the next reuse.
func (n *Network) finalize() *Stats {
	n.stats.Rounds = n.round
	n.mergeStep()
	n.mergeDeliver()
	st := n.stats
	return &st
}

// Run executes the simulation. newProc is called once per node id to create
// its Process; the caller typically captures the created processes to read
// their outputs afterwards. Run returns the statistics and the first error
// (bandwidth violation, illegal send, or round-limit exhaustion), if any.
//
// Run may be called repeatedly on the same network (optionally reseeded via
// SetSeed between calls): every slab from the previous run — contexts, RNGs,
// mailboxes, arenas, inboxes — is reset in place and reused, so repeated
// runs amortize network construction. The returned Stats are a private copy,
// unaffected by later runs. Concurrent Runs on one network are not allowed.
func (n *Network) Run(newProc func(id int) Process) (*Stats, error) {
	nn := n.g.N()
	nw := n.cfg.Workers
	if nw > nn {
		nw = nn
	}
	if nw > maxShards {
		nw = maxShards
	}
	if nw < 1 {
		nw = 1
	}
	if n.ctxs == nil {
		// First run: allocate the run-state slabs. One RNG slab and one
		// inbox arena serve the whole network: the arena gives every node
		// an inbox segment of capacity degree (the common per-round
		// fan-in), so warmup growth is one allocation, not n. On huge
		// graphs the degree-capacity arena (48 bytes per directed edge)
		// would dwarf the CSR itself while sparse-traffic protocols never
		// fill it, so beyond the cap inboxes start empty and grow to
		// actual traffic instead.
		n.ctxs = make([]Context, nn)
		n.procs = make([]Process, nn)
		n.owner = make([]int32, nn)
		n.shards = make([]shard, nw)
		for w := range n.shards {
			lo, hi := w*nn/nw, (w+1)*nn/nw
			sh := &n.shards[w]
			sh.net = n
			sh.idx = int32(w)
			sh.lo, sh.hi = int32(lo), int32(hi)
			sh.out = make([][]pend, nw)
			sh.minWake = noWake
			sh.live = make([]int32, 0, hi-lo)
			for u := lo; u < hi; u++ {
				n.owner[u] = int32(w)
			}
		}
		n.rngSrcs = make([]splitmix64, nn)
		n.rngs = make([]rand.Rand, nn)
		const inboxArenaCap = 1 << 20 // Message slots (~48 MB) — covers every bench-scale graph
		if slots := 2 * n.g.M(); slots <= inboxArenaCap {
			n.inboxArena = make([]Message, slots)
		}
		for u := 0; u < nn; u++ {
			if n.inboxArena != nil {
				lo, hi := n.rowOff[u], n.rowOff[u+1]
				n.ctxs[u].inbox = n.inboxArena[lo:lo:hi]
			}
		}
	} else {
		n.resetRunState()
	}
	if n.cfg.Topology != nil {
		// Rewind the activity overlay to the all-active superset and let the
		// provider establish the round-0 edge set before any Init runs.
		n.resetTopology()
		n.cfg.Topology.Start(&n.topo)
	}
	for u := 0; u < nn; u++ {
		// Reseed in place: splitmix64 seeds in one word, so per-run RNG
		// setup is two slab passes, no allocation. rand.New's temporary
		// stays on the stack because only the dereferenced value is stored.
		n.rngSrcs[u].x = uint64(nodeSeed(n.cfg.Seed, u))
		n.rngs[u] = *rand.New(&n.rngSrcs[u])
		inbox := n.ctxs[u].inbox[:0] // keep the warm capacity across runs
		n.ctxs[u] = Context{
			net:   n,
			sh:    &n.shards[n.owner[u]],
			id:    int32(u),
			rng:   &n.rngs[u],
			inbox: inbox,
		}
		n.procs[u] = newProc(u)
	}
	if nw > 1 && nn >= parallelMin {
		n.startPool()
		defer func() {
			n.pool.stop()
			n.pool = nil
		}()
	}

	// Round 0: Init everyone (sequential: Init is cheap and often empty).
	n.round = 0
	for u := 0; u < nn; u++ {
		n.procs[u].Init(&n.ctxs[u])
		if err := n.ctxs[u].err; err != nil {
			return n.finalize(), err
		}
	}
	halted := 0
	for w := range n.shards {
		sh := &n.shards[w]
		for u := sh.lo; u < sh.hi; u++ {
			if n.ctxs[u].halted {
				halted++
			} else {
				sh.live = append(sh.live, u)
			}
		}
	}
	n.runPhase(phaseDeliver)
	n.mergeDeliver()

	for halted < nn {
		n.round++
		if n.round > n.cfg.MaxRounds {
			n.round--
			return n.finalize(), fmt.Errorf("%w after %d rounds (%d/%d nodes halted)", ErrRoundLimit, n.cfg.MaxRounds, halted, nn)
		}
		if n.cfg.Topology != nil {
			// Round-r topology: applied while every worker is quiescent,
			// frozen for the whole round.
			n.cfg.Topology.ApplyRound(n.round, &n.topo)
		}
		for i := range n.shards {
			n.shards[i].arena.flip()
		}
		n.runPhase(phaseStep)
		stepped, minWake, halts, err := n.mergeStep()
		if err != nil {
			return n.finalize(), err
		}
		halted += halts
		n.runPhase(phaseDeliver)
		delivered := n.mergeDeliver()
		if n.cfg.OnRound != nil {
			if n.cfg.OnRound(n.round) {
				return n.finalize(), nil
			}
			continue
		}
		// Fast-forward: when nothing ran and nothing is in flight, every
		// live node is asleep — jump straight to the earliest wake-up
		// instead of executing empty rounds. Dynamic networks never
		// fast-forward: the provider must observe every round.
		if halted < nn && stepped == 0 && delivered == 0 && minWake != noWake && n.cfg.Topology == nil {
			target := int(minWake)
			if target > n.cfg.MaxRounds {
				target = n.cfg.MaxRounds + 1
			}
			if target-1 > n.round {
				n.stats.SkippedRounds += int64(target - 1 - n.round)
				n.round = target - 1
			}
		}
	}
	st := n.finalize()
	st.HaltedAll = true
	return st, nil
}
