package congest

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/congest/frame"
	"repro/internal/graph"
)

const (
	phaseStep int8 = iota
	phaseDeliver

	// maxShards bounds the W×W mailbox matrix; beyond this, extra workers
	// stop paying for themselves anyway.
	maxShards = 256
	// parallelMin is the network size below which the engine executes its
	// shards on one goroutine (the shard structure — and therefore the
	// result — is identical either way).
	parallelMin = 64

	noWake = NoWake
)

// shard owns a contiguous range of nodes: it steps them, receives their
// mail, and tracks their liveness. All fields are touched only by the
// owning worker during a phase; the control loop merges the accumulators
// between phases while every worker is quiescent.
type shard struct {
	net    *Network
	idx    int32
	lo, hi int32

	// live lists the shard's non-halted nodes in ascending id order; it is
	// compacted in place as nodes halt, so stepping is O(live), not
	// O(range).
	live []int32

	// out[s] buffers this shard's messages destined to shard s, in send
	// order. Truncated (never freed) after each deliver phase.
	out [][]pend

	// arena stores this shard's outgoing []int32 payload slabs.
	arena payloadArena

	// wireOut[p] buffers this shard's records destined to cluster peer p, in
	// send order (nil outside cluster mode). Truncated (never freed) when
	// the transport merges them into the per-peer frames.
	wireOut [][]frame.Record

	// Per-phase accumulators, merged and reset by the control loop.
	steps        int64
	skips        int64
	wakes        int64
	halts        int
	msgs         int64
	bits         int64
	drops        int64
	payloadWords int64
	stepGrows    int64
	deliverGrows int64
	maxEdgeBits  int
	minWake      int32
	err          error
}

// runStep steps every live node of the shard in ascending id order,
// compacting the live list as nodes halt.
func (sh *shard) runStep() {
	net := sh.net
	round := int32(net.round)
	w := 0
	for _, u := range sh.live {
		ctx := &net.ctxs[u]
		if ctx.sleep > round && len(ctx.inbox) == 0 {
			sh.skips++
			if ctx.sleep < sh.minWake {
				sh.minWake = ctx.sleep
			}
			sh.live[w] = u
			w++
			continue
		}
		ctx.sleep = 0
		net.procs[u].Step(ctx)
		sh.steps++
		ctx.inbox = ctx.inbox[:0]
		if ctx.err != nil && sh.err == nil {
			sh.err = ctx.err
		}
		if ctx.halted {
			sh.halts++
			continue
		}
		sh.live[w] = u
		w++
	}
	sh.live = sh.live[:w]
}

// workerPool keeps one goroutine per shard alive for the whole run; phases
// are broadcast over per-worker channels, so the steady-state round loop
// performs no goroutine spawns.
type workerPool struct {
	start []chan int8
	wg    sync.WaitGroup
}

func (n *Network) startPool() {
	p := &workerPool{start: make([]chan int8, len(n.shards))}
	for w := range p.start {
		ch := make(chan int8, 1)
		p.start[w] = ch
		go func(sh *shard) {
			for ph := range ch {
				if ph == phaseStep {
					sh.runStep()
				} else {
					sh.runDeliver()
				}
				p.wg.Done()
			}
		}(&n.shards[w])
	}
	n.pool = p
}

func (p *workerPool) stop() {
	for _, ch := range p.start {
		close(ch)
	}
}

// runPhase executes one phase across all shards, in parallel when a pool is
// running. Shard state is identical either way, so results never depend on
// the execution mode.
func (n *Network) runPhase(ph int8) {
	if n.pool == nil {
		for i := range n.shards {
			if ph == phaseStep {
				n.shards[i].runStep()
			} else {
				n.shards[i].runDeliver()
			}
		}
		return
	}
	n.pool.wg.Add(len(n.shards))
	for _, ch := range n.pool.start {
		ch <- ph
	}
	n.pool.wg.Wait()
}

// mergeStep folds the step-phase accumulators into the run statistics and
// returns the number of nodes stepped, the earliest wake-up round among
// skipped sleepers, the number of nodes that halted, and the first error in
// node-id order.
func (n *Network) mergeStep() (stepped int64, minWake int32, halts int, err error) {
	minWake = noWake
	for i := range n.shards {
		sh := &n.shards[i]
		stepped += sh.steps
		n.stats.ActiveSteps += sh.steps
		sh.steps = 0
		n.stats.SleepSkips += sh.skips
		sh.skips = 0
		n.stats.StepGrows += sh.stepGrows
		sh.stepGrows = 0
		n.stats.PayloadWords += sh.payloadWords
		sh.payloadWords = 0
		n.stats.DroppedSends += sh.drops
		sh.drops = 0
		halts += sh.halts
		sh.halts = 0
		if sh.maxEdgeBits > n.stats.MaxEdgeBits {
			n.stats.MaxEdgeBits = sh.maxEdgeBits
		}
		if sh.minWake < minWake {
			minWake = sh.minWake
		}
		sh.minWake = noWake
		if err == nil && sh.err != nil {
			err = sh.err
		}
	}
	return stepped, minWake, halts, err
}

// mergeDeliver folds the deliver-phase accumulators into the run statistics
// and returns the number of messages delivered.
func (n *Network) mergeDeliver() (delivered int64) {
	for i := range n.shards {
		sh := &n.shards[i]
		delivered += sh.msgs
		n.stats.Messages += sh.msgs
		sh.msgs = 0
		n.stats.Bits += sh.bits
		sh.bits = 0
		n.stats.Wakeups += sh.wakes
		sh.wakes = 0
		n.stats.DeliverGrows += sh.deliverGrows
		sh.deliverGrows = 0
	}
	return delivered
}

// finalize merges any outstanding per-shard accounting into the run
// statistics and returns a private copy: Run's caller keeps the Stats while
// the network's own accumulator is rewound by the next reuse.
func (n *Network) finalize() *Stats {
	n.stats.Rounds = n.round
	n.mergeStep()
	n.mergeDeliver()
	st := n.stats
	return &st
}

// Run executes the simulation. newProc is called once per node id to create
// its Process; the caller typically captures the created processes to read
// their outputs afterwards. Run returns the statistics and the first error
// (bandwidth violation, illegal send, or round-limit exhaustion), if any.
//
// Run may be called repeatedly on the same network (optionally reseeded via
// SetSeed between calls): every slab from the previous run — contexts, RNGs,
// mailboxes, arenas, inboxes — is reset in place and reused, so repeated
// runs amortize network construction. The returned Stats are a private copy,
// unaffected by later runs. Concurrent Runs on one network are not allowed.
func (n *Network) Run(newProc func(id int) Process) (*Stats, error) {
	nn := n.g.N()
	// lo/hi is the vertex range this process owns: the whole graph in
	// single-process mode, this peer's contiguous slice in cluster mode.
	// Only owned vertices are seeded, initialized, stepped and delivered to;
	// shards partition the owned range.
	lo, hi := 0, nn
	cl := n.cfg.Cluster
	if cl != nil {
		lo, hi = graph.ShardRange(nn, cl.Peer, cl.Peers)
	}
	local := hi - lo
	nw := n.cfg.Workers
	if nw > local {
		nw = local
	}
	if nw > maxShards {
		nw = maxShards
	}
	if nw < 1 {
		nw = 1
	}
	if n.ctxs == nil {
		// First run: allocate the run-state slabs. One RNG slab and one
		// inbox arena serve the whole network: the arena gives every node
		// an inbox segment of capacity degree (the common per-round
		// fan-in), so warmup growth is one allocation, not n. On huge
		// graphs the degree-capacity arena (48 bytes per directed edge)
		// would dwarf the CSR itself while sparse-traffic protocols never
		// fill it, so beyond the cap inboxes start empty and grow to
		// actual traffic instead.
		n.ctxs = make([]Context, nn)
		n.procs = make([]Process, nn)
		n.owner = make([]int32, nn)
		n.shards = make([]shard, nw)
		for w := range n.shards {
			slo, shi := lo+w*local/nw, lo+(w+1)*local/nw
			sh := &n.shards[w]
			sh.net = n
			sh.idx = int32(w)
			sh.lo, sh.hi = int32(slo), int32(shi)
			sh.out = make([][]pend, nw)
			sh.minWake = noWake
			sh.live = make([]int32, 0, shi-slo)
			for u := slo; u < shi; u++ {
				n.owner[u] = int32(w)
			}
			if cl != nil {
				sh.wireOut = make([][]frame.Record, cl.Peers)
			}
		}
		if cl != nil {
			// Remote vertices carry their owning peer in the owner slab,
			// encoded as -1-peer so deposit distinguishes local shard
			// routing (≥ 0) from wire routing (< 0) with one comparison.
			for p := 0; p < cl.Peers; p++ {
				if p == cl.Peer {
					continue
				}
				plo, phi := graph.ShardRange(nn, p, cl.Peers)
				for u := plo; u < phi; u++ {
					n.owner[u] = int32(-1 - p)
				}
			}
			n.wireOut = make([][]frame.Record, cl.Peers)
		}
		n.rngSrcs = make([]splitmix64, nn)
		n.rngs = make([]rand.Rand, nn)
		const inboxArenaCap = 1 << 20 // Message slots (~48 MB) — covers every bench-scale graph
		// Sized by the materialized rows (2·M full, ~1/P on a graph shard).
		if slots := int(n.rowOff[nn]); slots <= inboxArenaCap {
			n.inboxArena = make([]Message, slots)
		}
		for u := 0; u < nn; u++ {
			if n.inboxArena != nil {
				lo, hi := n.rowOff[u], n.rowOff[u+1]
				n.ctxs[u].inbox = n.inboxArena[lo:lo:hi]
			}
		}
	} else {
		n.resetRunState()
	}
	if n.cfg.Topology != nil {
		// Rewind the activity overlay to the all-active superset and let the
		// provider establish the round-0 edge set before any Init runs.
		n.resetTopology()
		n.cfg.Topology.Start(&n.topo)
	}
	for u := lo; u < hi; u++ {
		// Reseed in place: splitmix64 seeds in one word, so per-run RNG
		// setup is two slab passes, no allocation. rand.New's temporary
		// stays on the stack because only the dereferenced value is stored.
		// Cluster peers seed only their owned range; nodeSeed depends only
		// on (seed, id), so node u's stream is identical wherever it runs.
		n.rngSrcs[u].x = uint64(nodeSeed(n.cfg.Seed, u))
		n.rngs[u] = *rand.New(&n.rngSrcs[u])
		inbox := n.ctxs[u].inbox[:0] // keep the warm capacity across runs
		n.ctxs[u] = Context{
			net:   n,
			sh:    &n.shards[n.owner[u]],
			id:    int32(u),
			rng:   &n.rngs[u],
			inbox: inbox,
		}
		n.procs[u] = newProc(u)
	}
	if nw > 1 && local >= parallelMin {
		n.startPool()
		defer func() {
			n.pool.stop()
			n.pool = nil
		}()
	}

	// Round 0: Init every owned node (sequential: Init is cheap and often
	// empty).
	n.round = 0
	var initErr error
	for u := lo; u < hi; u++ {
		n.procs[u].Init(&n.ctxs[u])
		if err := n.ctxs[u].err; err != nil {
			if cl == nil {
				return n.finalize(), err
			}
			// A cluster peer cannot bail here: the others are already
			// blocked on the round-0 exchange. Complete the round and
			// report the error through the barrier.
			initErr = err
			break
		}
	}
	halted := 0
	for w := range n.shards {
		sh := &n.shards[w]
		for u := sh.lo; u < sh.hi; u++ {
			if n.ctxs[u].halted {
				halted++
			} else {
				sh.live = append(sh.live, u)
			}
		}
	}
	if err := n.transport.deliver(n); err != nil {
		return n.finalize(), err
	}
	delivered0 := n.mergeDeliver()
	if cl != nil {
		if initErr != nil {
			if _, err := n.barrierSync([]RoundReport{{Round: 0, MinWake: NoWake, Err: initErr.Error()}}); err != nil {
				return n.finalize(), err
			}
			return n.finalize(), initErr
		}
		return n.runCluster(halted, delivered0)
	}

	for halted < nn {
		n.round++
		if n.round > n.cfg.MaxRounds {
			n.round--
			return n.finalize(), fmt.Errorf("%w after %d rounds (%d/%d nodes halted)", ErrRoundLimit, n.cfg.MaxRounds, halted, nn)
		}
		if n.cfg.Topology != nil {
			// Round-r topology: applied while every worker is quiescent,
			// frozen for the whole round.
			n.cfg.Topology.ApplyRound(n.round, &n.topo)
		}
		for i := range n.shards {
			n.shards[i].arena.flip()
		}
		n.runPhase(phaseStep)
		stepped, minWake, halts, err := n.mergeStep()
		if err != nil {
			return n.finalize(), err
		}
		halted += halts
		n.transport.deliver(n) // loopback: never errors
		delivered := n.mergeDeliver()
		if n.cfg.OnRound != nil {
			if n.cfg.OnRound(n.round) {
				return n.finalize(), nil
			}
			continue
		}
		// Fast-forward: when nothing ran and nothing is in flight, every
		// live node is asleep — jump straight to the earliest wake-up
		// instead of executing empty rounds. Dynamic networks never
		// fast-forward: the provider must observe every round.
		if halted < nn && stepped == 0 && delivered == 0 && minWake != noWake && n.cfg.Topology == nil {
			target := int(minWake)
			if target > n.cfg.MaxRounds {
				target = n.cfg.MaxRounds + 1
			}
			if target-1 > n.round {
				n.stats.SkippedRounds += int64(target - 1 - n.round)
				n.round = target - 1
			}
		}
	}
	st := n.finalize()
	st.HaltedAll = true
	return st, nil
}
