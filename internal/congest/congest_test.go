package congest

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func cliqueGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// pingProc: node 0 sends its id along the path; each node forwards; all
// record the round they saw the token and halt.
type pingProc struct {
	id       int
	n        int
	sawRound int
	done     bool
}

func (p *pingProc) Init(ctx *Context) {
	if p.id == 0 {
		ctx.Send(1, Message{Kind: 1, Value: 42, Bits: 16})
		p.sawRound = 0
		ctx.Halt()
	}
}

func (p *pingProc) Step(ctx *Context) {
	for _, m := range ctx.Inbox() {
		if m.Kind == 1 && !p.done {
			p.done = true
			p.sawRound = ctx.Round()
			if p.id+1 < p.n {
				ctx.Send(p.id+1, Message{Kind: 1, Value: m.Value, Bits: 16})
			}
			ctx.Halt()
		}
	}
}

// TestDeliveryTiming: a message sent in round r arrives in round r+1, so a
// token relayed down a path of n nodes reaches node i at round i.
func TestDeliveryTiming(t *testing.T) {
	const n = 10
	g := pathGraph(n)
	net, err := NewNetwork(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*pingProc, n)
	stats, err := net.Run(func(id int) Process {
		procs[id] = &pingProc{id: id, n: n}
		return procs[id]
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if procs[i].sawRound != i {
			t.Errorf("node %d saw token at round %d, want %d", i, procs[i].sawRound, i)
		}
	}
	if !stats.HaltedAll {
		t.Error("not all halted")
	}
	if stats.Messages != n-1 {
		t.Errorf("messages = %d, want %d", stats.Messages, n-1)
	}
	if stats.Rounds != n-1 {
		t.Errorf("rounds = %d, want %d", stats.Rounds, n-1)
	}
}

// haltImmediately halts every node in Init.
type haltImmediately struct{}

func (haltImmediately) Init(ctx *Context) { ctx.Halt() }
func (haltImmediately) Step(ctx *Context) {}

func TestImmediateHalt(t *testing.T) {
	net, _ := NewNetwork(cliqueGraph(4), Config{})
	stats, err := net.Run(func(int) Process { return haltImmediately{} })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 {
		t.Errorf("rounds = %d, want 0", stats.Rounds)
	}
}

// neverHalt runs forever; the round limit must fire.
type neverHalt struct{}

func (neverHalt) Init(ctx *Context) {}
func (neverHalt) Step(ctx *Context) {}

func TestRoundLimit(t *testing.T) {
	net, _ := NewNetwork(pathGraph(3), Config{MaxRounds: 17})
	_, err := net.Run(func(int) Process { return neverHalt{} })
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("got %v, want ErrRoundLimit", err)
	}
}

// bandwidthHog sends one oversized message.
type bandwidthHog struct{ id int }

func (b bandwidthHog) Init(ctx *Context) {}
func (b bandwidthHog) Step(ctx *Context) {
	if b.id == 0 {
		ctx.Send(1, Message{Kind: 1, Bits: 1 << 20})
	}
	if ctx.Round() > 2 {
		ctx.Halt()
	}
}

func TestBandwidthEnforcement(t *testing.T) {
	net, _ := NewNetwork(pathGraph(3), Config{})
	_, err := net.Run(func(id int) Process { return bandwidthHog{id} })
	var be *BandwidthError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want BandwidthError", err)
	}
	if be.From != 0 || be.To != 1 {
		t.Errorf("violation attributed to %d→%d", be.From, be.To)
	}
}

// TestBandwidthAccumulates: many small messages on one edge in one round
// must also trip the limit.
type dribbler struct{ id int }

func (d dribbler) Init(ctx *Context) {}
func (d dribbler) Step(ctx *Context) {
	if d.id == 0 {
		for i := 0; i < 1000; i++ {
			ctx.Send(1, Message{Kind: 1, Bits: 8})
		}
	}
	ctx.Halt()
}

func TestBandwidthAccumulates(t *testing.T) {
	net, _ := NewNetwork(pathGraph(2), Config{BandwidthBits: 64})
	_, err := net.Run(func(id int) Process { return dribbler{id} })
	var be *BandwidthError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want BandwidthError", err)
	}
}

// TestLocalModeUnlimited: LOCAL mode does not enforce bandwidth.
func TestLocalModeUnlimited(t *testing.T) {
	net, _ := NewNetwork(pathGraph(2), Config{Model: LOCAL})
	_, err := net.Run(func(id int) Process { return dribbler{id} })
	if err != nil {
		t.Fatalf("LOCAL mode rejected large traffic: %v", err)
	}
}

// badSender sends to a non-neighbor.
type badSender struct{ id int }

func (b badSender) Init(ctx *Context) {}
func (b badSender) Step(ctx *Context) {
	if b.id == 0 {
		ctx.Send(2, Message{Kind: 1, Bits: 8}) // 0 and 2 are not adjacent on a path
	}
	ctx.Halt()
}

func TestNonNeighborSendRejected(t *testing.T) {
	net, _ := NewNetwork(pathGraph(3), Config{})
	_, err := net.Run(func(id int) Process { return badSender{id} })
	var se *SendError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want SendError", err)
	}
}

// zeroBits sends a message with Bits = 0.
type zeroBits struct{ id int }

func (z zeroBits) Init(ctx *Context) {}
func (z zeroBits) Step(ctx *Context) {
	if z.id == 0 {
		ctx.Send(1, Message{Kind: 1})
	}
	ctx.Halt()
}

func TestZeroBitsRejected(t *testing.T) {
	net, _ := NewNetwork(pathGraph(2), Config{})
	_, err := net.Run(func(id int) Process { return zeroBits{id} })
	var se *SendError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want SendError", err)
	}
}

// payloadInCongest sends an []int32 payload slab in CONGEST mode.
type payloadInCongest struct{ id int }

func (e payloadInCongest) Init(ctx *Context) {}
func (e payloadInCongest) Step(ctx *Context) {
	if e.id == 0 {
		ctx.SendPayload(1, Message{Kind: 1, Bits: 8}, []int32{1, 2, 3})
	}
	ctx.Halt()
}

func TestPayloadRejectedInCongest(t *testing.T) {
	net, _ := NewNetwork(pathGraph(2), Config{})
	_, err := net.Run(func(id int) Process { return payloadInCongest{id} })
	var se *SendError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want SendError", err)
	}
}

// gossipSum floods a value and sums everything seen; used to check inbox
// determinism across worker counts.
type gossipSum struct {
	id  int
	sum int64
	log []int64
}

func (p *gossipSum) Init(ctx *Context) {
	ctx.Broadcast(Message{Kind: 1, Value: int64(p.id + 1), Bits: 32})
}

func (p *gossipSum) Step(ctx *Context) {
	for _, m := range ctx.Inbox() {
		p.sum = p.sum*31 + m.Value + int64(m.From)
		p.log = append(p.log, p.sum)
	}
	if ctx.Round() < 5 {
		ctx.Broadcast(Message{Kind: 1, Value: p.sum % 1000, Bits: 32})
	} else {
		ctx.Halt()
	}
}

// TestDeterminismAcrossWorkers: identical traces for 1 and many workers.
func TestDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) []int64 {
		net, err := NewNetwork(cliqueGraph(9), Config{Workers: workers, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]*gossipSum, 9)
		if _, err := net.Run(func(id int) Process {
			procs[id] = &gossipSum{id: id}
			return procs[id]
		}); err != nil {
			t.Fatal(err)
		}
		var all []int64
		for _, p := range procs {
			all = append(all, p.sum)
		}
		return all
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestPerNodeRNGDeterminism: same seed ⇒ same node RNG streams; different
// nodes get different streams.
type rngProbe struct{ vals [3]int64 }

func (p *rngProbe) Init(ctx *Context) {
	for i := range p.vals {
		p.vals[i] = ctx.Rand().Int63()
	}
	ctx.Halt()
}
func (p *rngProbe) Step(ctx *Context) {}

func TestPerNodeRNG(t *testing.T) {
	run := func(seed int64) []*rngProbe {
		net, _ := NewNetwork(pathGraph(4), Config{Seed: seed})
		probes := make([]*rngProbe, 4)
		if _, err := net.Run(func(id int) Process {
			probes[id] = &rngProbe{}
			return probes[id]
		}); err != nil {
			t.Fatal(err)
		}
		return probes
	}
	a, b := run(1), run(1)
	c := run(2)
	for i := range a {
		if a[i].vals != b[i].vals {
			t.Errorf("node %d: same seed, different stream", i)
		}
	}
	if a[0].vals == a[1].vals {
		t.Error("distinct nodes share an RNG stream")
	}
	if a[0].vals == c[0].vals {
		t.Error("different seeds give identical streams")
	}
}

// sleeper exercises Sleep: it sleeps 5 rounds, but a message wakes it.
type sleeper struct {
	id        int
	wokeRound int
}

func (s *sleeper) Init(ctx *Context) {}
func (s *sleeper) Step(ctx *Context) {
	if s.id == 1 {
		if len(ctx.Inbox()) > 0 {
			s.wokeRound = ctx.Round()
			ctx.Halt()
			return
		}
		ctx.Sleep(50)
		return
	}
	// Node 0 pings node 1 at round 3.
	if ctx.Round() == 3 {
		ctx.Send(1, Message{Kind: 1, Bits: 8})
		ctx.Halt()
	}
}

func TestSleepWakesOnMessage(t *testing.T) {
	net, _ := NewNetwork(pathGraph(2), Config{})
	procs := make([]*sleeper, 2)
	_, err := net.Run(func(id int) Process {
		procs[id] = &sleeper{id: id}
		return procs[id]
	})
	if err != nil {
		t.Fatal(err)
	}
	if procs[1].wokeRound != 4 {
		t.Errorf("sleeper woke at %d, want 4", procs[1].wokeRound)
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	if _, err := NewNetwork(graph.NewBuilder(0).Build(), Config{}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestDefaultBandwidthIsLogN(t *testing.T) {
	for _, k := range []int{10, 14, 20} {
		b := DefaultBandwidth(1 << k)
		if b < BandwidthFactor*k || b > BandwidthFactor*(k+2) {
			t.Errorf("DefaultBandwidth(2^%d) = %d, want ≈ %d·log n", k, b, BandwidthFactor)
		}
	}
	if small := DefaultBandwidth(4); small < 8*BandwidthFactor {
		t.Errorf("small-n floor violated: %d", small)
	}
}

func TestModelString(t *testing.T) {
	if CONGEST.String() != "CONGEST" || LOCAL.String() != "LOCAL" {
		t.Error("model names")
	}
	if Model(9).String() == "" {
		t.Error("unknown model name empty")
	}
}
