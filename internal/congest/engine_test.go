package congest

import (
	"runtime"
	"testing"
)

// ---- determinism across worker counts ----

// mixProc is a deliberately messy workload: it broadcasts RNG-derived
// values, sleeps pseudo-randomly, replies to a random subset of senders,
// and halts at staggered rounds — exercising stepping order, sharded
// delivery order, per-node RNG streams, and the sleep/wake path at once.
type mixProc struct {
	id    int
	acc   int64
	trace []int64
}

func (p *mixProc) Init(ctx *Context) {
	ctx.Broadcast(Message{Kind: 1, Value: ctx.Rand().Int63n(1000), Bits: 32})
}

func (p *mixProc) Step(ctx *Context) {
	for _, m := range ctx.Inbox() {
		p.acc = p.acc*1000003 + m.Value + int64(m.From) + int64(m.Round)
		p.trace = append(p.trace, p.acc)
		if m.Value%7 == int64(p.id%7) {
			ctx.Send(int(m.From), Message{Kind: 2, Value: p.acc % 9999, Bits: 32})
		}
	}
	switch {
	case ctx.Round() > 12+p.id%5:
		ctx.Halt()
	case ctx.Rand().Intn(4) == 0:
		ctx.Sleep(1 + ctx.Rand().Intn(3))
	default:
		ctx.Broadcast(Message{Kind: 1, Value: ctx.Rand().Int63n(1000), Bits: 32})
	}
}

// TestDeterminismAcrossWorkerCounts runs the same seeded workload with
// Workers ∈ {1, 2, GOMAXPROCS} and demands identical per-node traces and
// identical engine statistics — the engine's core invariant.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	g := torusGraph(12) // n = 144 ≥ parallelMin, so multi-worker runs use the pool
	run := func(workers int) ([]*mixProc, *Stats) {
		net, err := NewNetwork(g, Config{Workers: workers, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]*mixProc, g.N())
		stats, err := net.Run(func(id int) Process {
			procs[id] = &mixProc{id: id}
			return procs[id]
		})
		if err != nil {
			t.Fatal(err)
		}
		return procs, stats
	}
	refProcs, refStats := run(1)
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		procs, stats := run(workers)
		for u := range procs {
			if procs[u].acc != refProcs[u].acc {
				t.Fatalf("workers=%d: node %d acc %d, want %d", workers, u, procs[u].acc, refProcs[u].acc)
			}
			if len(procs[u].trace) != len(refProcs[u].trace) {
				t.Fatalf("workers=%d: node %d trace length %d, want %d",
					workers, u, len(procs[u].trace), len(refProcs[u].trace))
			}
			for i := range procs[u].trace {
				if procs[u].trace[i] != refProcs[u].trace[i] {
					t.Fatalf("workers=%d: node %d trace[%d] diverged", workers, u, i)
				}
			}
		}
		// The grow counters describe the execution (number of warming
		// buffers), not the simulation; everything else must be identical.
		a, b := *stats, *refStats
		a.StepGrows, a.DeliverGrows = 0, 0
		b.StepGrows, b.DeliverGrows = 0, 0
		if a != b {
			t.Errorf("workers=%d: stats %+v, want %+v", workers, a, b)
		}
	}
}

// ---- zero-allocation steady state ----

// floodEcho broadcasts every round until a fixed horizon; a steady,
// message-heavy workload with no allocations of its own.
type floodEcho struct{ horizon int }

func (p *floodEcho) Init(ctx *Context) {}
func (p *floodEcho) Step(ctx *Context) {
	if ctx.Round() >= p.horizon {
		ctx.Halt()
		return
	}
	ctx.Broadcast(Message{Kind: 1, Value: int64(ctx.Round()), Bits: 16})
}

// TestSteadyStateDoesNotAllocatePerMessage compares the allocation count of
// a short and a long run of the same workload: the extra rounds move
// millions of messages and must not add more than a handful of allocations
// (buffer growth settles during warmup).
func TestSteadyStateDoesNotAllocatePerMessage(t *testing.T) {
	g := torusGraph(16) // n = 256, 4-regular: 1024 messages per round
	measure := func(horizon int) (allocs float64, msgs int64) {
		var st *Stats
		allocs = testing.AllocsPerRun(3, func() {
			net, err := NewNetwork(g, Config{Workers: 1, MaxRounds: horizon + 4})
			if err != nil {
				t.Fatal(err)
			}
			st, err = net.Run(func(int) Process { return &floodEcho{horizon: horizon} })
			if err != nil {
				t.Fatal(err)
			}
		})
		return allocs, st.Messages
	}
	shortAllocs, shortMsgs := measure(20)
	longAllocs, longMsgs := measure(220)
	extraMsgs := longMsgs - shortMsgs
	extraAllocs := longAllocs - shortAllocs
	if extraMsgs < 100_000 {
		t.Fatalf("workload too small to be meaningful: %d extra messages", extraMsgs)
	}
	if extraAllocs > 16 {
		t.Errorf("steady-state rounds allocated: %d extra messages cost %.0f extra allocs", extraMsgs, extraAllocs)
	}
}

// ---- payload arena ----

// payloadRelay: node 0 sends growing []int32 slabs down a path; each hop
// verifies content and forwards a derived slab.
type payloadRelay struct {
	id   int
	n    int
	got  [][]int32
	done bool
}

func (p *payloadRelay) Init(ctx *Context) {
	if p.id == 0 {
		ctx.SendPayload(1, Message{Kind: 9, Bits: 8}, []int32{7})
	}
}

func (p *payloadRelay) Step(ctx *Context) {
	for _, m := range ctx.Inbox() {
		if m.Kind != 9 || !m.HasPayload() {
			continue
		}
		words := ctx.Payload(m)
		cp := make([]int32, len(words))
		copy(cp, words)
		p.got = append(p.got, cp)
		if p.id+1 < p.n && !p.done {
			next := append(cp, int32(p.id)*100)
			ctx.SendPayload(p.id+1, Message{Kind: 9, Bits: int32(8 * len(next))}, next)
		}
		p.done = true
	}
	if p.done || ctx.Round() > p.n+2 {
		ctx.Halt()
	}
}

func TestPayloadRelayAcrossArena(t *testing.T) {
	const n = 6
	net, _ := NewNetwork(pathGraph(n), Config{Model: LOCAL})
	procs := make([]*payloadRelay, n)
	stats, err := net.Run(func(id int) Process {
		procs[id] = &payloadRelay{id: id, n: n}
		return procs[id]
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{7}
	for i := 1; i < n; i++ {
		if len(procs[i].got) != 1 {
			t.Fatalf("node %d received %d payloads, want 1", i, len(procs[i].got))
		}
		got := procs[i].got[0]
		if len(got) != len(want) {
			t.Fatalf("node %d payload %v, want %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("node %d payload %v, want %v", i, got, want)
			}
		}
		want = append(want, int32(i)*100)
	}
	if stats.PayloadWords == 0 {
		t.Error("PayloadWords not counted")
	}
}

// TestPayloadNotForwarded: re-sending a received message with Send drops the
// payload reference instead of leaking a stale arena slice.
type payloadForwarder struct{ id int }

func (p *payloadForwarder) Init(ctx *Context) {
	if p.id == 0 {
		ctx.SendPayload(1, Message{Kind: 1, Bits: 8}, []int32{1, 2})
	}
}

func (p *payloadForwarder) Step(ctx *Context) {
	for _, m := range ctx.Inbox() {
		switch p.id {
		case 1:
			ctx.Send(2, m) // naive forward: payload must be stripped
		case 2:
			if m.HasPayload() {
				panic("stale payload reference survived a forward")
			}
		}
	}
	if ctx.Round() >= 3 {
		ctx.Halt()
	}
}

func TestPayloadNotForwarded(t *testing.T) {
	net, _ := NewNetwork(pathGraph(3), Config{Model: LOCAL})
	if _, err := net.Run(func(id int) Process { return &payloadForwarder{id: id} }); err != nil {
		t.Fatal(err)
	}
}

// ---- SendNbr ----

type nbrSender struct{ id int }

func (s nbrSender) Init(ctx *Context) {}
func (s nbrSender) Step(ctx *Context) {
	if s.id == 1 && ctx.Round() == 1 {
		for i, v := range ctx.Neighbors() {
			ctx.SendNbr(i, Message{Kind: 1, Value: int64(v), Bits: 16})
		}
	}
	if ctx.Round() >= 2 {
		for _, m := range ctx.Inbox() {
			if m.Value != int64(s.id) {
				panic("SendNbr hit the wrong neighbor")
			}
		}
		ctx.Halt()
	}
}

func TestSendNbrAddressesRowPosition(t *testing.T) {
	net, _ := NewNetwork(pathGraph(3), Config{})
	stats, err := net.Run(func(id int) Process { return nbrSender{id} })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 2 {
		t.Errorf("messages = %d, want 2", stats.Messages)
	}
}

func TestSendNbrOutOfRange(t *testing.T) {
	net, _ := NewNetwork(pathGraph(3), Config{})
	_, err := net.Run(func(id int) Process { return badNbr{} })
	if err == nil {
		t.Fatal("out-of-range SendNbr accepted")
	}
}

type badNbr struct{}

func (badNbr) Init(ctx *Context) {}
func (badNbr) Step(ctx *Context) {
	ctx.SendNbr(99, Message{Kind: 1, Bits: 8})
	ctx.Halt()
}

// ---- sleep fast-forward ----

// deepSleeper sleeps a long stretch, then halts on wake-up.
type deepSleeper struct{ woke int }

func (p *deepSleeper) Init(ctx *Context) {}
func (p *deepSleeper) Step(ctx *Context) {
	if ctx.Round() == 1 {
		ctx.Sleep(500)
		return
	}
	p.woke = ctx.Round()
	ctx.Halt()
}

func TestFastForwardSkipsSleptRounds(t *testing.T) {
	net, _ := NewNetwork(pathGraph(4), Config{MaxRounds: 2000})
	procs := make([]*deepSleeper, 4)
	stats, err := net.Run(func(id int) Process {
		procs[id] = &deepSleeper{}
		return procs[id]
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range procs {
		if p.woke != 501 {
			t.Errorf("node %d woke at %d, want 501", i, p.woke)
		}
	}
	if stats.Rounds != 501 {
		t.Errorf("rounds = %d, want 501", stats.Rounds)
	}
	if stats.SkippedRounds < 490 {
		t.Errorf("skipped rounds = %d, want ≈499", stats.SkippedRounds)
	}
	// The whole point: active steps stay O(active), not O(rounds).
	if stats.ActiveSteps > 4*3 {
		t.Errorf("active steps = %d for an all-sleeping network", stats.ActiveSteps)
	}
}

// TestFastForwardRespectsRoundLimit: sleeping past MaxRounds still reports
// the round-limit error with the correct round count.
type eternalSleeper struct{}

func (eternalSleeper) Init(ctx *Context) {}
func (eternalSleeper) Step(ctx *Context) { ctx.Sleep(10_000) }

func TestFastForwardRespectsRoundLimit(t *testing.T) {
	net, _ := NewNetwork(pathGraph(2), Config{MaxRounds: 50})
	stats, err := net.Run(func(int) Process { return eternalSleeper{} })
	if err == nil {
		t.Fatal("expected round-limit error")
	}
	if stats.Rounds != 50 {
		t.Errorf("rounds = %d, want 50", stats.Rounds)
	}
}
