package congest

import (
	"testing"
)

// chatter broadcasts every round and never halts; OnRound controls the run.
type chatter struct{}

func (chatter) Init(ctx *Context) {}
func (chatter) Step(ctx *Context) {
	ctx.Broadcast(Message{Kind: 1, Bits: 8})
}

func TestOnRoundStopsRun(t *testing.T) {
	net, _ := NewNetwork(cliqueGraph(5), Config{MaxRounds: 1000})
	var seen []int
	net.cfg.OnRound = func(round int) bool {
		seen = append(seen, round)
		return round >= 7
	}
	stats, err := net.Run(func(int) Process { return chatter{} })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 7 {
		t.Errorf("rounds = %d, want 7", stats.Rounds)
	}
	if stats.HaltedAll {
		t.Error("OnRound stop should not claim all halted")
	}
	if len(seen) != 7 || seen[0] != 1 || seen[6] != 7 {
		t.Errorf("OnRound invocations: %v", seen)
	}
}

func TestOnRoundObservesQuiescentState(t *testing.T) {
	// The callback must see the post-delivery state of the round: after
	// round 1's delivery, every node's inbox holds its neighbors' messages,
	// which the processes consume in round 2. We verify via message counts.
	net, _ := NewNetwork(cliqueGraph(4), Config{MaxRounds: 100})
	var msgsAt2 int64
	net.cfg.OnRound = func(round int) bool {
		if round == 2 {
			msgsAt2 = net.stats.Messages
		}
		return round >= 3
	}
	if _, err := net.Run(func(int) Process { return chatter{} }); err != nil {
		t.Fatal(err)
	}
	// chatter's Init sends nothing; rounds 1 and 2 broadcast 12 messages
	// each (K4 has 12 directed edges), all delivered by the callback time.
	if msgsAt2 != 24 {
		t.Errorf("messages after round 2 = %d, want 24", msgsAt2)
	}
}
