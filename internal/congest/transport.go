package congest

// This file is the transport seam of the round engine: the deliver phase —
// moving one round's queued messages from the per-shard outboxes into the
// destination inboxes — goes through the transport interface instead of
// assuming every destination lives in this process.
//
// Two implementations exist. loopbackTransport is the classical
// single-process path: every vertex is local, delivery is the parallel
// in-memory drain of the W×W sharded mailbox matrix, and the behavior (and
// allocation profile) is byte-identical to the engine before the seam
// existed. wireTransport (cluster.go) is the multi-process path: each peer
// owns a contiguous vertex range, remote-destined messages are batched into
// one frame per peer per round, and the deliver phase merges the local
// matrix with the decoded inbound frames in canonical sender order.

// transport executes the deliver phase of one round. Implementations are
// in-package: the seam is selected by Config.Cluster (nil = loopback), not
// injected, so the zero-alloc loopback path stays free of interface
// indirection inside the per-message loops.
type transport interface {
	// deliver moves every message queued in the current round into its
	// destination inbox. All shard workers are quiescent when it is called;
	// it may use the worker pool for the local drain. A non-nil error aborts
	// the run (transport failures are fatal: a peer cannot continue a
	// lockstep computation alone).
	deliver(n *Network) error
}

// loopbackTransport is the single-process deliver phase: the parallel drain
// of the sharded mailbox matrix. It moves no bytes and sends no frames —
// Stats.WireBytes/FramesSent/FramesRecv stay zero.
type loopbackTransport struct{}

func (loopbackTransport) deliver(n *Network) error {
	n.runPhase(phaseDeliver)
	return nil
}

// pend is one queued message in a sharded mailbox.
type pend struct {
	to  int32
	msg Message
}

// runDeliver drains every shard's mailbox destined to this shard, in shard
// order. Because shards are contiguous ascending id ranges and each shard
// steps in ascending id order, the drain reproduces the canonical
// (ascending sender, send order) inbox ordering for any worker count. On a
// cluster peer the same canonical order spans processes: inbound peer
// frames merge around the local matrix in ascending peer order
// (runDeliverWire).
func (sh *shard) runDeliver() {
	if sh.net.cfg.Cluster != nil {
		sh.runDeliverWire()
		return
	}
	sh.drainLocal()
}

// drainLocal drains the local mailbox matrix into this shard's inboxes.
func (sh *shard) drainLocal() {
	net := sh.net
	rnd := int32(net.round + 1)
	for w := range net.shards {
		src := &net.shards[w]
		buf := src.out[sh.idx]
		for i := range buf {
			if buf[i].msg.Flags&FlagBounced == 0 {
				// Bounces are excluded from the message/bit accounting:
				// nothing traversed an edge (Stats.DroppedSends counts them).
				sh.msgs++
				sh.bits += int64(buf[i].msg.Bits)
			}
			dst := &net.ctxs[buf[i].to]
			if dst.halted {
				continue // counted, never read: drop instead of hoarding
			}
			m := buf[i].msg
			m.Round = rnd
			if dst.sleep > rnd && len(dst.inbox) == 0 {
				sh.wakes++
			}
			if len(dst.inbox) == cap(dst.inbox) {
				sh.deliverGrows++
			}
			dst.inbox = append(dst.inbox, m)
		}
		src.out[sh.idx] = buf[:0]
	}
}
