// Package congest simulates the synchronous CONGEST and LOCAL models of
// distributed computing on a static undirected graph (paper §1.1).
//
// Execution proceeds in globally synchronous rounds. In round r every
// non-halted node is stepped exactly once; it sees the messages its
// neighbors sent during round r−1 and may send messages to neighbors, which
// arrive at the start of round r+1. Nodes are stepped concurrently by a pool
// of worker goroutines — each node's Step runs on some goroutine with
// exclusive access to that node's state, mirroring the "one processor per
// vertex" model — and the engine is deterministic for a fixed seed
// regardless of the worker count.
//
// In CONGEST mode the engine *enforces* the bandwidth constraint: the total
// size of the messages a node sends over one directed edge in one round must
// not exceed the per-edge budget B = Θ(log n) bits. Violations abort the run
// with a descriptive error; the algorithms in internal/core are written so
// that this never fires, and the tests exercise the enforcement path
// deliberately.
package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Model selects the communication model.
type Model int

const (
	// CONGEST limits every directed edge to B bits per round.
	CONGEST Model = iota
	// LOCAL places no limit on message sizes (paper §4 push–pull analysis).
	LOCAL
)

func (m Model) String() string {
	switch m {
	case CONGEST:
		return "CONGEST"
	case LOCAL:
		return "LOCAL"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Message is one message in flight. The fixed fields cover every payload the
// CONGEST algorithms need (a kind tag, a sequence number and two integer
// words); Extra carries arbitrary LOCAL-model payloads such as token
// bitsets. Bits is the size charged against the bandwidth budget and must be
// positive.
type Message struct {
	From  int32 // sender id, filled by the engine
	Round int32 // round in which the message was delivered, filled by the engine
	Kind  uint8
	Seq   int32
	Value int64
	Aux   int64
	Bits  int32
	Extra interface{}
}

// Process is the per-node algorithm. Init runs before round 1 and may send
// messages (delivered in round 1). Step runs once per round.
type Process interface {
	Init(ctx *Context)
	Step(ctx *Context)
}

// Config controls a simulation run.
type Config struct {
	// Model is CONGEST (default) or LOCAL.
	Model Model
	// BandwidthBits is the per-directed-edge per-round budget in CONGEST
	// mode. Zero selects the default Θ(log n) budget from DefaultBandwidth.
	BandwidthBits int
	// MaxRounds aborts the run with ErrRoundLimit when exceeded.
	// Zero selects a generous default of 64·n + 10^6.
	MaxRounds int
	// Seed feeds the deterministic per-node RNGs.
	Seed int64
	// Workers is the number of stepping goroutines; zero means GOMAXPROCS.
	Workers int
	// OnRound, when non-nil, is invoked after each round's delivery with
	// the round number just completed; returning true stops the run
	// gracefully (Stats.HaltedAll stays false, no error). All node
	// goroutines are quiescent during the call, so the callback may safely
	// read process state it captured at construction.
	OnRound func(round int) (stop bool)
}

// BandwidthFactor is the constant in the default per-edge budget
// B = BandwidthFactor·⌈log₂ n⌉ bits. The paper's algorithms need a small
// constant number of O(log n)-bit words per edge per round; 16 words is a
// comfortable, explicit choice.
const BandwidthFactor = 16

// DefaultBandwidth returns the default CONGEST budget for an n-node graph.
func DefaultBandwidth(n int) int {
	logn := 1
	for v := n - 1; v > 0; v >>= 1 {
		logn++
	}
	if logn < 8 {
		logn = 8
	}
	return BandwidthFactor * logn
}

// ErrRoundLimit is returned when MaxRounds elapses before every node halts.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// BandwidthError reports a CONGEST bandwidth violation.
type BandwidthError struct {
	From, To    int
	Round       int
	Used, Limit int
}

func (e *BandwidthError) Error() string {
	return fmt.Sprintf("congest: bandwidth violation on edge %d→%d in round %d: %d bits > limit %d",
		e.From, e.To, e.Round, e.Used, e.Limit)
}

// SendError reports an illegal send (non-neighbor target or bad size).
type SendError struct {
	From, To int
	Round    int
	Reason   string
}

func (e *SendError) Error() string {
	return fmt.Sprintf("congest: illegal send %d→%d in round %d: %s", e.From, e.To, e.Round, e.Reason)
}

// Stats summarizes a completed (or aborted) run.
type Stats struct {
	Rounds       int   // rounds executed
	Messages     int64 // total messages delivered
	Bits         int64 // total message bits delivered
	MaxEdgeBits  int   // max bits observed on one directed edge in one round
	HaltedAll    bool  // whether every node halted
	ActiveSteps  int64 // total Step invocations (excludes halted/sleeping nodes)
	DeliverCalls int64 // messages enqueued (same as Messages; kept for clarity)
}

// Context is the per-node view of the network, passed to Init and Step.
// Contexts are owned by the engine; algorithms must not retain them across
// rounds.
type Context struct {
	net         *Network
	id          int
	inbox       []Message
	outbox      []outMsg
	rng         *rand.Rand
	halted      bool
	sleep       int // absolute round before which the node need not be stepped
	err         error
	maxEdgeBits int // max per-edge bits observed by this sender (merged into Stats)
}

type outMsg struct {
	to  int32
	msg Message
}

// ID returns this node's identifier in [0, N()).
func (c *Context) ID() int { return c.id }

// N returns the number of nodes (known to all nodes per the model, §1.1).
func (c *Context) N() int { return c.net.g.N() }

// M returns the number of edges (known to all nodes per the model, §1.1).
func (c *Context) M() int { return c.net.g.M() }

// Round returns the current global round (0 during Init).
func (c *Context) Round() int { return c.net.round }

// Degree returns this node's degree.
func (c *Context) Degree() int { return c.net.g.Degree(c.id) }

// Neighbors returns this node's neighbor ids (shared slice, do not modify).
func (c *Context) Neighbors() []int32 { return c.net.g.Neighbors(c.id) }

// Inbox returns the messages delivered to this node since it was last
// stepped, ordered by (round, sender). The slice is reused; copy anything
// retained across rounds.
func (c *Context) Inbox() []Message { return c.inbox }

// Rand returns this node's private deterministic RNG.
func (c *Context) Rand() *rand.Rand { return c.rng }

// Send queues a message to neighbor `to` for delivery next round. The engine
// fills From. Sends to non-neighbors or with non-positive Bits abort the run.
func (c *Context) Send(to int, m Message) {
	if c.err != nil {
		return
	}
	if m.Bits <= 0 {
		c.err = &SendError{From: c.id, To: to, Round: c.net.round, Reason: "non-positive Bits"}
		return
	}
	if m.Extra != nil && c.net.cfg.Model == CONGEST {
		c.err = &SendError{From: c.id, To: to, Round: c.net.round, Reason: "Extra payloads are LOCAL-model only"}
		return
	}
	ei := c.net.edgeIndex(c.id, to)
	if ei < 0 {
		c.err = &SendError{From: c.id, To: to, Round: c.net.round, Reason: "not a neighbor"}
		return
	}
	if c.net.cfg.Model == CONGEST {
		used := c.net.chargeEdge(ei, int(m.Bits))
		if used > c.maxEdgeBits {
			c.maxEdgeBits = used
		}
		if used > c.net.bandwidth {
			c.err = &BandwidthError{From: c.id, To: to, Round: c.net.round, Used: used, Limit: c.net.bandwidth}
			return
		}
	}
	m.From = int32(c.id)
	c.outbox = append(c.outbox, outMsg{to: int32(to), msg: m})
}

// Broadcast sends the same message to every neighbor.
func (c *Context) Broadcast(m Message) {
	for _, v := range c.Neighbors() {
		c.Send(int(v), m)
	}
}

// Halt marks this node as permanently finished. The run ends when every
// node has halted.
func (c *Context) Halt() { c.halted = true }

// Sleep declares that this node has no scheduled activity for the next
// `rounds` rounds. The engine may skip stepping it, but any message arrival
// wakes it immediately (the skipped rounds still elapse globally). Purely an
// optimization: correctness never depends on it.
func (c *Context) Sleep(rounds int) {
	if rounds > 0 {
		c.sleep = c.net.round + rounds
	}
}

// Network is a configured simulation instance.
type Network struct {
	g         *graph.Graph
	cfg       Config
	bandwidth int
	round     int

	ctxs  []Context
	procs []Process

	// rowOff[u] is the CSR start of u's adjacency row; used to index the
	// per-directed-edge bandwidth accounting arrays below. Each directed
	// edge u→v is written only by its sender u, so stepping in parallel is
	// race-free.
	rowOff    []int
	edgeBits  []int32
	edgeStamp []int32

	stats Stats
}

// NewNetwork prepares a simulation of the given graph. The graph must be
// non-empty.
func NewNetwork(g *graph.Graph, cfg Config) (*Network, error) {
	if g.N() == 0 {
		return nil, errors.New("congest: empty graph")
	}
	if cfg.BandwidthBits == 0 {
		cfg.BandwidthBits = DefaultBandwidth(g.N())
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 64*g.N() + 1_000_000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	net := &Network{
		g:         g,
		cfg:       cfg,
		bandwidth: cfg.BandwidthBits,
		rowOff:    make([]int, g.N()+1),
		edgeBits:  make([]int32, 2*g.M()),
		edgeStamp: make([]int32, 2*g.M()),
	}
	for i := range net.edgeStamp {
		net.edgeStamp[i] = -1
	}
	for v := 0; v < g.N(); v++ {
		net.rowOff[v+1] = net.rowOff[v] + g.Degree(v)
	}
	return net, nil
}

// Graph returns the underlying topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// Bandwidth returns the per-edge budget in bits (CONGEST mode).
func (n *Network) Bandwidth() int { return n.bandwidth }

// edgeIndex returns the CSR position of directed edge u→v, or -1.
func (n *Network) edgeIndex(u, v int) int {
	row := n.g.Neighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	if i < len(row) && row[i] == int32(v) {
		return n.rowOff[u] + i
	}
	return -1
}

// chargeEdge adds bits to the edge's usage in the current round and returns
// the new total. Uses a round stamp for O(1) lazy reset. Only the edge's
// sender ever touches index ei, so this is safe under parallel stepping.
func (n *Network) chargeEdge(ei, bits int) int {
	if n.edgeStamp[ei] != int32(n.round) {
		n.edgeStamp[ei] = int32(n.round)
		n.edgeBits[ei] = 0
	}
	n.edgeBits[ei] += int32(bits)
	return int(n.edgeBits[ei])
}

// Run executes the simulation. newProc is called once per node id to create
// its Process; the caller typically captures the created processes to read
// their outputs afterwards. Run returns the statistics and the first error
// (bandwidth violation, illegal send, or round-limit exhaustion), if any.
func (n *Network) Run(newProc func(id int) Process) (*Stats, error) {
	nn := n.g.N()
	n.ctxs = make([]Context, nn)
	n.procs = make([]Process, nn)
	for u := 0; u < nn; u++ {
		n.ctxs[u] = Context{
			net: n,
			id:  u,
			rng: rand.New(rand.NewSource(n.cfg.Seed ^ (int64(u)*0x5E3779B97F4A7C15 + 0x1234567))),
		}
		n.procs[u] = newProc(u)
	}

	// Round 0: Init everyone (sequential: Init is cheap and often empty).
	n.round = 0
	for u := 0; u < nn; u++ {
		n.procs[u].Init(&n.ctxs[u])
		if err := n.ctxs[u].err; err != nil {
			return n.finalize(), err
		}
	}
	n.deliver()

	halted := 0
	for u := 0; u < nn; u++ {
		if n.ctxs[u].halted {
			halted++
		}
	}

	for halted < nn {
		n.round++
		if n.round > n.cfg.MaxRounds {
			n.round--
			return n.finalize(), fmt.Errorf("%w after %d rounds (%d/%d nodes halted)", ErrRoundLimit, n.cfg.MaxRounds, halted, nn)
		}
		if err := n.stepAll(); err != nil {
			return n.finalize(), err
		}
		n.deliver()
		if n.cfg.OnRound != nil && n.cfg.OnRound(n.round) {
			return n.finalize(), nil
		}
		halted = 0
		for u := 0; u < nn; u++ {
			if n.ctxs[u].halted {
				halted++
			}
		}
	}
	st := n.finalize()
	st.HaltedAll = true
	return st, nil
}

// finalize merges per-node accounting into the run statistics.
func (n *Network) finalize() *Stats {
	n.stats.Rounds = n.round
	for u := range n.ctxs {
		if n.ctxs[u].maxEdgeBits > n.stats.MaxEdgeBits {
			n.stats.MaxEdgeBits = n.ctxs[u].maxEdgeBits
		}
	}
	return &n.stats
}

// stepAll steps every active node, possibly in parallel.
func (n *Network) stepAll() error {
	nn := n.g.N()
	workers := n.cfg.Workers
	if workers > nn {
		workers = nn
	}
	var steps int64
	if workers <= 1 || nn < 64 {
		for u := 0; u < nn; u++ {
			if n.stepOne(u) {
				steps++
			}
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				local := int64(0)
				for {
					base := atomic.AddInt64(&next, 256) - 256
					if base >= int64(nn) {
						break
					}
					end := base + 256
					if end > int64(nn) {
						end = int64(nn)
					}
					for u := int(base); u < int(end); u++ {
						if n.stepOne(u) {
							local++
						}
					}
				}
				atomic.AddInt64(&steps, local)
			}()
		}
		wg.Wait()
	}
	n.stats.ActiveSteps += steps
	for u := 0; u < nn; u++ {
		if err := n.ctxs[u].err; err != nil {
			return err
		}
	}
	return nil
}

// stepOne steps node u if it is active; returns whether Step ran.
func (n *Network) stepOne(u int) bool {
	ctx := &n.ctxs[u]
	if ctx.halted {
		return false
	}
	if ctx.sleep > n.round && len(ctx.inbox) == 0 {
		return false
	}
	ctx.sleep = 0
	n.procs[u].Step(ctx)
	ctx.inbox = ctx.inbox[:0]
	return true
}

// deliver moves every outbox message into its destination inbox. Iterating
// senders in increasing id keeps inboxes deterministically ordered.
func (n *Network) deliver() {
	nn := n.g.N()
	for u := 0; u < nn; u++ {
		out := n.ctxs[u].outbox
		for _, om := range out {
			m := om.msg
			m.Round = int32(n.round + 1)
			dst := &n.ctxs[om.to]
			dst.inbox = append(dst.inbox, m)
			n.stats.Messages++
			n.stats.Bits += int64(m.Bits)
		}
		n.ctxs[u].outbox = out[:0]
	}
	n.stats.DeliverCalls = n.stats.Messages
}
