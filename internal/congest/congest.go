// Package congest simulates the synchronous CONGEST and LOCAL models of
// distributed computing on a static undirected graph (paper §1.1).
//
// Execution proceeds in globally synchronous rounds. In round r every
// non-halted node is stepped exactly once; it sees the messages its
// neighbors sent during round r−1 and may send messages to neighbors, which
// arrive at the start of round r+1. Nodes are stepped concurrently by a pool
// of worker goroutines — each node's Step runs on some goroutine with
// exclusive access to that node's state, mirroring the "one processor per
// vertex" model — and the engine is deterministic for a fixed seed
// regardless of the worker count.
//
// In CONGEST mode the engine *enforces* the bandwidth constraint: the total
// size of the messages a node sends over one directed edge in one round must
// not exceed the per-edge budget B = Θ(log n) bits. Violations abort the run
// with a descriptive error; the algorithms in internal/core are written so
// that this never fires, and the tests exercise the enforcement path
// deliberately.
//
// # Architecture: sharded mailboxes and the zero-allocation round loop
//
// The engine is built for graphs with millions of nodes, so the round loop
// is designed around two constraints: no per-message heap allocation in the
// steady state, and no O(n) scans for bookkeeping that only concerns a few
// nodes. The design:
//
//   - Sharding. The node set is split into W contiguous shards, one per
//     worker. A shard owns its nodes' Contexts exclusively: it steps them,
//     delivers into their inboxes, and maintains their liveness, so no lock
//     is ever taken on per-node state.
//
//   - Sharded mailboxes. Each shard keeps one flat outbox buffer per
//     destination shard (a W×W matrix of []pend slices). Send appends the
//     message to out[owner(to)]; buffers are truncated, never freed, so the
//     steady state allocates nothing. The deliver phase runs one worker per
//     destination shard: shard s drains out[w][s] for w = 0..W-1 in order.
//     Because shards are contiguous id ranges and every shard steps its
//     nodes in ascending id order, this drain order reproduces exactly the
//     canonical "ascending sender id, then send order" inbox ordering — for
//     every worker count, which is what makes the engine deterministic
//     under parallelism.
//
//   - O(1) sends. NewNetwork precomputes a directed-edge slot index (an
//     open-addressed hash from the pair (u,v) to the CSR slot of u→v), so
//     Send performs no binary search; SendNbr addresses a neighbor by its
//     adjacency-row position and needs no lookup at all. The same CSR slot
//     indexes the per-directed-edge bandwidth accounting arrays, which only
//     the sending shard writes.
//
//   - Typed payload arena. LOCAL-model messages can carry an []int32 slab
//     (SendPayload/Context.Payload) stored in a per-shard double-buffered
//     arena instead of a boxed interface{} value. Payloads are copied once
//     into the sender's arena at send time and read in place by the
//     receiver next round; the buffer that fed round r is truncated and
//     reused for round r+2.
//
//   - Liveness tracking. Each shard keeps a compact ascending list of its
//     live (non-halted) nodes, compacted in place as nodes halt, plus a
//     halted count, so round upkeep is O(live), not O(n). Sleeping nodes
//     are skipped in O(1) and feed a per-round wake estimate; when a round
//     delivers no messages and steps no node, the engine fast-forwards the
//     round counter to the earliest wake-up instead of grinding through
//     empty rounds.
//
// Stats exposes counters for each of these mechanisms (ActiveSteps,
// SleepSkips, Wakeups, SkippedRounds, PayloadWords, and the per-phase
// buffer-growth counters StepGrows/DeliverGrows), so regressions in the
// zero-allocation property are observable from the outside.
package congest

import (
	"errors"
	"fmt"
)

// Model selects the communication model.
type Model int

const (
	// CONGEST limits every directed edge to B bits per round.
	CONGEST Model = iota
	// LOCAL places no limit on message sizes (paper §4 push–pull analysis).
	LOCAL
)

func (m Model) String() string {
	switch m {
	case CONGEST:
		return "CONGEST"
	case LOCAL:
		return "LOCAL"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Message is one message in flight. The fixed fields cover every payload the
// CONGEST algorithms need (a kind tag, a sequence number and two integer
// words); LOCAL-model runs may additionally attach an []int32 slab via
// Context.SendPayload, carried out of band in the engine's payload arena.
// Bits is the size charged against the bandwidth budget and must be
// positive. A Message holds no pointers, so mailbox buffers are opaque to
// the garbage collector.
type Message struct {
	From  int32 // sender id, filled by the engine
	Round int32 // round in which the message was delivered, filled by the engine
	Kind  uint8
	Seq   int32
	Value int64
	Aux   int64
	Bits  int32

	// Payload arena reference, set by SendPayload and resolved by
	// Context.Payload. Zero payLen means no payload.
	payShard int32
	payOff   int32
	payLen   int32
}

// HasPayload reports whether the message carries an []int32 payload slab
// (LOCAL model only); read it with Context.Payload.
func (m Message) HasPayload() bool { return m.payLen > 0 }

// Process is the per-node algorithm. Init runs before round 1 and may send
// messages (delivered in round 1). Step runs once per round.
type Process interface {
	Init(ctx *Context)
	Step(ctx *Context)
}

// Config controls a simulation run.
type Config struct {
	// Model is CONGEST (default) or LOCAL.
	Model Model
	// BandwidthBits is the per-directed-edge per-round budget in CONGEST
	// mode. Zero selects the default Θ(log n) budget from DefaultBandwidth.
	BandwidthBits int
	// MaxRounds aborts the run with ErrRoundLimit when exceeded.
	// Zero selects a generous default of 64·n + 10^6.
	MaxRounds int
	// Seed feeds the deterministic per-node RNGs.
	Seed int64
	// Workers is the number of stepping goroutines; zero means GOMAXPROCS.
	// The worker count never changes results: the sharded mailboxes keep
	// delivery order canonical for any value.
	Workers int
	// OnRound, when non-nil, is invoked after each round's delivery with
	// the round number just completed; returning true stops the run
	// gracefully (Stats.HaltedAll stays false, no error). All node
	// goroutines are quiescent during the call, so the callback may safely
	// read process state it captured at construction. Setting OnRound
	// disables round fast-forwarding (every round is observed).
	OnRound func(round int) (stop bool)
}

// BandwidthFactor is the constant in the default per-edge budget
// B = BandwidthFactor·⌈log₂ n⌉ bits. The paper's algorithms need a small
// constant number of O(log n)-bit words per edge per round; 16 words is a
// comfortable, explicit choice.
const BandwidthFactor = 16

// DefaultBandwidth returns the default CONGEST budget for an n-node graph.
func DefaultBandwidth(n int) int {
	logn := 1
	for v := n - 1; v > 0; v >>= 1 {
		logn++
	}
	if logn < 8 {
		logn = 8
	}
	return BandwidthFactor * logn
}

// ErrRoundLimit is returned when MaxRounds elapses before every node halts.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// BandwidthError reports a CONGEST bandwidth violation.
type BandwidthError struct {
	From, To    int
	Round       int
	Used, Limit int
}

func (e *BandwidthError) Error() string {
	return fmt.Sprintf("congest: bandwidth violation on edge %d→%d in round %d: %d bits > limit %d",
		e.From, e.To, e.Round, e.Used, e.Limit)
}

// SendError reports an illegal send (non-neighbor target or bad size).
type SendError struct {
	From, To int
	Round    int
	Reason   string
}

func (e *SendError) Error() string {
	return fmt.Sprintf("congest: illegal send %d→%d in round %d: %s", e.From, e.To, e.Round, e.Reason)
}

// Stats summarizes a completed (or aborted) run.
type Stats struct {
	Rounds      int   // rounds executed (including fast-forwarded ones)
	Messages    int64 // total messages delivered
	Bits        int64 // total message bits delivered
	MaxEdgeBits int   // max bits observed on one directed edge in one round
	HaltedAll   bool  // whether every node halted

	// Liveness counters (see the architecture section of the package doc).
	ActiveSteps   int64 // total Step invocations (excludes halted/sleeping nodes)
	SleepSkips    int64 // step-phase skips of sleeping nodes
	Wakeups       int64 // sleeping nodes woken early by message arrival
	SkippedRounds int64 // rounds fast-forwarded while the whole network slept

	// Allocation counters: buffer growth events per phase. In the steady
	// state both stay constant from one round to the next — the engine's
	// zero-allocation property, asserted by the regression tests. Unlike
	// every other field they describe the execution, not the simulation:
	// more workers mean more (smaller) buffers warming up, so these two may
	// differ across worker counts while all results stay identical.
	StepGrows    int64 // outbox/arena growth events during step phases
	DeliverGrows int64 // inbox growth events during deliver phases

	// PayloadWords counts the int32 words copied through the payload arena.
	PayloadWords int64
}
