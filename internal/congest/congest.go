package congest

import (
	"errors"
	"fmt"
)

// Model selects the communication model.
type Model int

const (
	// CONGEST limits every directed edge to B bits per round.
	CONGEST Model = iota
	// LOCAL places no limit on message sizes (paper §4 push–pull analysis).
	LOCAL
)

// String returns the model's conventional name.
func (m Model) String() string {
	switch m {
	case CONGEST:
		return "CONGEST"
	case LOCAL:
		return "LOCAL"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Message is one message in flight. The fixed fields cover every payload the
// CONGEST algorithms need (a kind tag, a sequence number and two integer
// words); LOCAL-model runs may additionally attach an []int32 slab via
// Context.SendPayload, carried out of band in the engine's payload arena.
// Bits is the size charged against the bandwidth budget and must be
// positive. A Message holds no pointers, so mailbox buffers are opaque to
// the garbage collector.
type Message struct {
	From  int32 // sender id, filled by the engine
	Round int32 // round in which the message was delivered, filled by the engine
	Kind  uint8
	Flags uint8 // message flags (FlagVolatile; FlagBounced is engine-set)
	Seq   int32
	Value int64
	Aux   int64
	Bits  int32

	// Payload arena reference, set by SendPayload and resolved by
	// Context.Payload. Zero payLen means no payload.
	payShard int32
	payOff   int32
	payLen   int32
}

// Message flags. On static networks (Config.Topology == nil) both are
// inert: every edge is permanently active and nothing ever bounces.
const (
	// FlagVolatile subjects the message to the dynamic edge state: a
	// volatile send over an edge that is inactive in the current round is
	// not delivered; instead the engine bounces it back to the sender
	// (FlagBounced set, From set to the unreachable neighbor), arriving
	// next round like any other message. Non-volatile messages ride the
	// superset unconditionally — the out-of-band control plane of the
	// dynamic algorithms.
	FlagVolatile uint8 = 1 << iota
	// FlagBounced marks an engine-generated bounce of a volatile send.
	FlagBounced
)

// HasPayload reports whether the message carries an []int32 payload slab
// (LOCAL model only); read it with Context.Payload.
func (m Message) HasPayload() bool { return m.payLen > 0 }

// Bounced reports whether this message is the engine's bounce of one of the
// receiver's own volatile sends over an inactive edge: From is the neighbor
// that was unreachable, and the remaining fields are the original message's.
func (m Message) Bounced() bool { return m.Flags&FlagBounced != 0 }

// Process is the per-node algorithm. Init runs before round 1 and may send
// messages (delivered in round 1). Step runs once per round.
type Process interface {
	Init(ctx *Context)
	Step(ctx *Context)
}

// Config controls a simulation run.
type Config struct {
	// Model is CONGEST (default) or LOCAL.
	Model Model
	// BandwidthBits is the per-directed-edge per-round budget in CONGEST
	// mode. Zero selects the default Θ(log n) budget from DefaultBandwidth.
	BandwidthBits int
	// MaxRounds aborts the run with ErrRoundLimit when exceeded.
	// Zero selects a generous default of 64·n + 10^6.
	MaxRounds int
	// Seed feeds the deterministic per-node RNGs.
	Seed int64
	// Workers is the number of stepping goroutines; zero means GOMAXPROCS.
	// The worker count never changes results: the sharded mailboxes keep
	// delivery order canonical for any value.
	Workers int
	// OnRound, when non-nil, is invoked after each round's delivery with
	// the round number just completed; returning true stops the run
	// gracefully (Stats.HaltedAll stays false, no error). All node
	// goroutines are quiescent during the call, so the callback may safely
	// read process state it captured at construction. Setting OnRound
	// disables round fast-forwarding (every round is observed).
	OnRound func(round int) (stop bool)
	// Topology, when non-nil, makes the network dynamic: the provider is
	// consulted at every round boundary to activate/deactivate edges of the
	// static superset graph (see TopologyProvider). Dynamic runs disable
	// round fast-forwarding — the provider must observe every round — and
	// remain deterministic for every worker count. Providers following the
	// statelessness contract may be shared across the worker networks of a
	// sweep.
	Topology TopologyProvider
	// Cluster, when non-nil, makes this network one peer of a multi-process
	// run: only the peer's contiguous vertex range is computed here, and the
	// deliver phase exchanges frames with the other peers (see
	// ClusterConfig). Results are DeepEqual to the single-process run for
	// any peer count. Cluster runs are CONGEST-only and exclude OnRound and
	// adaptive topology providers.
	Cluster *ClusterConfig
}

// BandwidthFactor is the constant in the default per-edge budget
// B = BandwidthFactor·⌈log₂ n⌉ bits. The paper's algorithms need a small
// constant number of O(log n)-bit words per edge per round; 16 words is a
// comfortable, explicit choice.
const BandwidthFactor = 16

// DefaultBandwidth returns the default CONGEST budget for an n-node graph.
func DefaultBandwidth(n int) int {
	logn := 1
	for v := n - 1; v > 0; v >>= 1 {
		logn++
	}
	if logn < 8 {
		logn = 8
	}
	return BandwidthFactor * logn
}

// ErrRoundLimit is returned when MaxRounds elapses before every node halts.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// BandwidthError reports a CONGEST bandwidth violation.
type BandwidthError struct {
	From, To    int
	Round       int
	Used, Limit int
}

// Error implements the error interface.
func (e *BandwidthError) Error() string {
	return fmt.Sprintf("congest: bandwidth violation on edge %d→%d in round %d: %d bits > limit %d",
		e.From, e.To, e.Round, e.Used, e.Limit)
}

// SendError reports an illegal send (non-neighbor target or bad size).
type SendError struct {
	From, To int
	Round    int
	Reason   string
}

// Error implements the error interface.
func (e *SendError) Error() string {
	return fmt.Sprintf("congest: illegal send %d→%d in round %d: %s", e.From, e.To, e.Round, e.Reason)
}

// Stats summarizes a completed (or aborted) run.
type Stats struct {
	Rounds      int   // rounds executed (including fast-forwarded ones)
	Messages    int64 // total messages delivered (excludes engine bounces: nothing traversed an edge)
	Bits        int64 // total message bits delivered (excludes engine bounces)
	MaxEdgeBits int   // max bits observed on one directed edge in one round
	HaltedAll   bool  // whether every node halted

	// Liveness counters (see the architecture section of the package doc).
	ActiveSteps   int64 // total Step invocations (excludes halted/sleeping nodes)
	SleepSkips    int64 // step-phase skips of sleeping nodes
	Wakeups       int64 // sleeping nodes woken early by message arrival
	SkippedRounds int64 // rounds fast-forwarded while the whole network slept

	// Allocation counters: buffer growth events per phase. In the steady
	// state both stay constant from one round to the next — the engine's
	// zero-allocation property, asserted by the regression tests. Unlike
	// every other field they describe the execution, not the simulation:
	// more workers mean more (smaller) buffers warming up, so these two may
	// differ across worker counts while all results stay identical.
	StepGrows    int64 // outbox/arena growth events during step phases
	DeliverGrows int64 // inbox growth events during deliver phases

	// PayloadWords counts the int32 words copied through the payload arena.
	PayloadWords int64

	// Dynamic-topology counters (zero on static networks).
	TopologyChanges int64 // edge activations/deactivations applied by the provider
	DroppedSends    int64 // volatile sends bounced off inactive edges

	// Cluster transport counters (zero on loopback runs). Like the Grows
	// counters they describe the execution, not the simulation: WireBytes is
	// the frame bytes this peer put on the wire, FramesSent/FramesRecv the
	// per-round peer frames exchanged (one frame per remote peer per round,
	// empty or not).
	WireBytes  int64
	FramesSent int64
	FramesRecv int64
}
