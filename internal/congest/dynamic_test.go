package congest

import (
	"runtime"
	"testing"
)

// funcProvider adapts two closures to the TopologyProvider interface.
type funcProvider struct {
	start func(t *Topology)
	apply func(round int, t *Topology)
}

func (p *funcProvider) Start(t *Topology) {
	if p.start != nil {
		p.start(t)
	}
}

func (p *funcProvider) ApplyRound(round int, t *Topology) {
	if p.apply != nil {
		p.apply(round, t)
	}
}

// degreeProbe records its active degree and per-neighbor activity per round.
type degreeProbe struct {
	horizon int
	degs    []int
	act     [][]bool
}

func (p *degreeProbe) Init(ctx *Context) {}
func (p *degreeProbe) Step(ctx *Context) {
	p.degs = append(p.degs, ctx.ActiveDegree())
	row := make([]bool, ctx.Degree())
	for i := range row {
		row[i] = ctx.EdgeActive(i)
	}
	p.act = append(p.act, row)
	if ctx.Round() >= p.horizon {
		ctx.Halt()
	}
}

// TestTopologyView exercises SetEdge/EdgeOn/ActiveDegree semantics and the
// per-round visibility of the overlay from inside processes.
func TestTopologyView(t *testing.T) {
	g := pathGraph(3) // 0–1–2
	prov := &funcProvider{
		apply: func(round int, tp *Topology) {
			switch round {
			case 2:
				if !tp.SetEdge(0, 1, false) {
					t.Error("round 2: deactivating {0,1} reported no change")
				}
				if tp.SetEdge(0, 1, false) {
					t.Error("round 2: repeated deactivation reported a change")
				}
				if tp.EdgeOn(0, 1) || !tp.EdgeOn(1, 2) {
					t.Error("round 2: EdgeOn disagrees with SetEdge")
				}
				if tp.ActiveDegree(1) != 1 || tp.ActiveEdges() != 1 {
					t.Errorf("round 2: ActiveDegree(1)=%d ActiveEdges=%d, want 1, 1", tp.ActiveDegree(1), tp.ActiveEdges())
				}
			case 4:
				tp.SetEdge(1, 0, true) // order of endpoints must not matter
			}
		},
	}
	net, err := NewNetwork(g, Config{Workers: 1, Topology: prov})
	if err != nil {
		t.Fatal(err)
	}
	probes := make([]*degreeProbe, g.N())
	stats, err := net.Run(func(id int) Process {
		probes[id] = &degreeProbe{horizon: 5}
		return probes[id]
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1's active degree per round 1..5: 2, 1, 1, 2, 2.
	want := []int{2, 1, 1, 2, 2}
	for i, w := range want {
		if probes[1].degs[i] != w {
			t.Errorf("node 1 round %d: ActiveDegree=%d, want %d", i+1, probes[1].degs[i], w)
		}
	}
	if probes[0].act[1][0] { // round 2: node 0's only edge is down
		t.Error("node 0 round 2: EdgeActive(0) true, want false")
	}
	if stats.TopologyChanges != 2 {
		t.Errorf("TopologyChanges=%d, want 2", stats.TopologyChanges)
	}
}

// bouncer: node 0 sends one volatile message to node 1 in every round up to
// sendUntil, and everyone records what arrives (halting two rounds later so
// no delivery outlives the run).
type bouncer struct {
	id        int
	sendUntil int
	volatile  bool
	got       []Message
	delivers  int
	bounces   int
}

func (p *bouncer) Init(ctx *Context) {}
func (p *bouncer) Step(ctx *Context) {
	for _, m := range ctx.Inbox() {
		p.got = append(p.got, m)
		if m.Bounced() {
			p.bounces++
		} else {
			p.delivers++
		}
	}
	if p.id == 0 && ctx.Round() <= p.sendUntil {
		var flags uint8
		if p.volatile {
			flags = FlagVolatile
		}
		ctx.Send(1, Message{Kind: 7, Flags: flags, Value: int64(ctx.Round()), Bits: 16})
	}
	if ctx.Round() >= p.sendUntil+2 {
		ctx.Halt()
	}
}

// TestVolatileBounce checks the drop-and-bounce path: a volatile send over
// an edge that is inactive in the send round comes back to the sender next
// round with FlagBounced set and From naming the unreachable neighbor,
// while sends over active edges are delivered normally.
func TestVolatileBounce(t *testing.T) {
	g := pathGraph(3)
	prov := &funcProvider{
		apply: func(round int, tp *Topology) {
			tp.SetEdge(0, 1, round < 3 || round > 4) // down in rounds 3 and 4
		},
	}
	net, err := NewNetwork(g, Config{Workers: 1, Topology: prov})
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*bouncer, g.N())
	stats, err := net.Run(func(id int) Process {
		procs[id] = &bouncer{id: id, sendUntil: 7, volatile: true}
		return procs[id]
	})
	if err != nil {
		t.Fatal(err)
	}
	if procs[0].bounces != 2 {
		t.Errorf("sender bounces=%d, want 2 (rounds 3 and 4)", procs[0].bounces)
	}
	if procs[1].delivers != 5 {
		t.Errorf("receiver deliveries=%d, want 5", procs[1].delivers)
	}
	for _, m := range procs[0].got {
		if !m.Bounced() {
			t.Fatalf("sender received a non-bounce: %+v", m)
		}
		if m.From != 1 {
			t.Errorf("bounce From=%d, want the unreachable neighbor 1", m.From)
		}
		if m.Kind != 7 || m.Flags&FlagVolatile == 0 {
			t.Errorf("bounce lost original fields: %+v", m)
		}
	}
	if stats.DroppedSends != 2 {
		t.Errorf("DroppedSends=%d, want 2", stats.DroppedSends)
	}
}

// TestNonVolatileIgnoresChurn: control-plane (non-volatile) messages ride
// the superset even while the edge is down.
func TestNonVolatileIgnoresChurn(t *testing.T) {
	g := pathGraph(2)
	prov := &funcProvider{
		start: func(tp *Topology) { tp.SetEdge(0, 1, false) },
		apply: func(round int, tp *Topology) {},
	}
	net, err := NewNetwork(g, Config{Workers: 1, Topology: prov})
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*bouncer, g.N())
	_, err = net.Run(func(id int) Process {
		procs[id] = &bouncer{id: id, sendUntil: 3, volatile: true}
		return procs[id]
	})
	if err != nil {
		t.Fatal(err)
	}
	if procs[0].bounces != 3 {
		t.Errorf("volatile sends over the permanently-down edge: bounces=%d, want 3", procs[0].bounces)
	}
	// Re-run with non-volatile sends on the same topology: the control
	// plane rides the superset regardless of edge state.
	net2, err := NewNetwork(g, Config{Workers: 1, Topology: prov})
	if err != nil {
		t.Fatal(err)
	}
	procs2 := make([]*bouncer, g.N())
	_, err = net2.Run(func(id int) Process {
		procs2[id] = &bouncer{id: id, sendUntil: 3, volatile: false}
		return procs2[id]
	})
	if err != nil {
		t.Fatal(err)
	}
	if procs2[1].delivers != 3 {
		t.Errorf("non-volatile deliveries=%d, want 3", procs2[1].delivers)
	}
	if procs2[0].bounces != 0 {
		t.Errorf("non-volatile bounces=%d, want 0", procs2[0].bounces)
	}
}

// churnProvider deterministically toggles a pseudo-random batch of edges
// every round (splitmix64 over (seed, round)), exercising the overlay under
// sustained churn.
type churnProvider struct {
	seed uint64
	rate int // toggle every rate-th edge candidate
}

func (p *churnProvider) Start(t *Topology) {}
func (p *churnProvider) ApplyRound(round int, t *Topology) {
	g := t.net.g
	x := p.seed + uint64(round)*0x9E3779B97F4A7C15
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) < u {
				continue
			}
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			if x%uint64(p.rate) == 0 {
				t.SetEdge(u, int(v), !t.EdgeOn(u, int(v)))
			}
		}
	}
}

// volatileMix is mixProc with volatile broadcasts: bounces feed back into
// the trace, so worker-count invariance covers the whole dynamic path.
type volatileMix struct {
	id    int
	acc   int64
	trace []int64
}

func (p *volatileMix) Init(ctx *Context) {}
func (p *volatileMix) Step(ctx *Context) {
	for _, m := range ctx.Inbox() {
		v := m.Value
		if m.Bounced() {
			v = -v
		}
		p.acc = p.acc*1000003 + v + int64(m.From) + int64(m.Round)
		p.trace = append(p.trace, p.acc)
	}
	switch {
	case ctx.Round() > 14+p.id%5:
		ctx.Halt()
	default:
		for i := range ctx.Neighbors() {
			ctx.SendNbr(i, Message{Kind: 1, Flags: FlagVolatile, Value: ctx.Rand().Int63n(1000), Bits: 32})
		}
	}
}

// TestDynamicDeterminismAcrossWorkerCounts is the engine's core invariant
// extended to dynamic networks: churn, drops and bounces are identical for
// every worker count.
func TestDynamicDeterminismAcrossWorkerCounts(t *testing.T) {
	g := torusGraph(12)
	run := func(workers int) ([]*volatileMix, *Stats) {
		prov := &churnProvider{seed: 99, rate: 3}
		net, err := NewNetwork(g, Config{Workers: workers, Seed: 42, Topology: prov})
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]*volatileMix, g.N())
		stats, err := net.Run(func(id int) Process {
			procs[id] = &volatileMix{id: id}
			return procs[id]
		})
		if err != nil {
			t.Fatal(err)
		}
		return procs, stats
	}
	refProcs, refStats := run(1)
	if refStats.DroppedSends == 0 || refStats.TopologyChanges == 0 {
		t.Fatalf("churn workload inert: drops=%d toggles=%d", refStats.DroppedSends, refStats.TopologyChanges)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		procs, stats := run(workers)
		for u := range procs {
			if procs[u].acc != refProcs[u].acc || len(procs[u].trace) != len(refProcs[u].trace) {
				t.Fatalf("workers=%d: node %d diverged", workers, u)
			}
		}
		a, b := *stats, *refStats
		a.StepGrows, a.DeliverGrows = 0, 0
		b.StepGrows, b.DeliverGrows = 0, 0
		if a != b {
			t.Errorf("workers=%d: stats %+v, want %+v", workers, a, b)
		}
	}
}

// TestDynamicRunReuse: a reused network reproduces a dynamic run bit for
// bit — the overlay and provider state rewind exactly.
func TestDynamicRunReuse(t *testing.T) {
	g := torusGraph(8)
	prov := &churnProvider{seed: 7, rate: 4}
	net, err := NewNetwork(g, Config{Workers: 2, Seed: 5, Topology: prov})
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]int64, Stats) {
		procs := make([]*volatileMix, g.N())
		stats, err := net.Run(func(id int) Process {
			procs[id] = &volatileMix{id: id}
			return procs[id]
		})
		if err != nil {
			t.Fatal(err)
		}
		accs := make([]int64, g.N())
		for u := range procs {
			accs[u] = procs[u].acc
		}
		st := *stats
		st.StepGrows, st.DeliverGrows = 0, 0
		return accs, st
	}
	accs1, st1 := run()
	accs2, st2 := run()
	for u := range accs1 {
		if accs1[u] != accs2[u] {
			t.Fatalf("node %d: run 2 acc %d, want %d", u, accs2[u], accs1[u])
		}
	}
	if st1 != st2 {
		t.Errorf("run 2 stats %+v, want %+v", st2, st1)
	}
}

// TestDynamicSteadyStateAllocs: sustained churn plus volatile traffic adds
// no per-round allocations once buffers are warm.
func TestDynamicSteadyStateAllocs(t *testing.T) {
	g := torusGraph(16)
	measure := func(horizon int) (allocs float64, msgs int64) {
		var st *Stats
		allocs = testing.AllocsPerRun(3, func() {
			prov := &churnProvider{seed: 3, rate: 5}
			net, err := NewNetwork(g, Config{Workers: 1, MaxRounds: horizon + 4, Topology: prov})
			if err != nil {
				t.Fatal(err)
			}
			st, err = net.Run(func(int) Process { return &churnFlood{horizon: horizon} })
			if err != nil {
				t.Fatal(err)
			}
		})
		return allocs, st.Messages
	}
	shortAllocs, shortMsgs := measure(20)
	longAllocs, longMsgs := measure(220)
	extraMsgs := longMsgs - shortMsgs
	extraAllocs := longAllocs - shortAllocs
	if extraMsgs < 100_000 {
		t.Fatalf("workload too small to be meaningful: %d extra messages", extraMsgs)
	}
	if extraAllocs > 16 {
		t.Errorf("dynamic steady-state rounds allocated: %d extra messages cost %.0f extra allocs", extraMsgs, extraAllocs)
	}
}

// churnFlood broadcasts volatile messages over active edges every round.
type churnFlood struct{ horizon int }

func (p *churnFlood) Init(ctx *Context) {}
func (p *churnFlood) Step(ctx *Context) {
	if ctx.Round() >= p.horizon {
		ctx.Halt()
		return
	}
	for i := range ctx.Neighbors() {
		ctx.SendNbr(i, Message{Kind: 1, Flags: FlagVolatile, Value: int64(ctx.Round()), Bits: 16})
	}
}
