package congest

import (
	"runtime"
	"testing"
)

// runMix executes one mixProc workload on the given (possibly reused)
// network and returns the per-node accumulators plus the run statistics.
func runMix(t *testing.T, net *Network) ([]int64, *Stats) {
	t.Helper()
	procs := make([]*mixProc, net.Graph().N())
	stats, err := net.Run(func(id int) Process {
		procs[id] = &mixProc{id: id}
		return procs[id]
	})
	if err != nil {
		t.Fatal(err)
	}
	accs := make([]int64, len(procs))
	for u, p := range procs {
		accs[u] = p.acc
	}
	return accs, stats
}

// simEqual compares two Stats modulo the allocation counters, which
// describe the execution (how warm the buffers were), not the simulation.
func simEqual(a, b *Stats) bool {
	x, y := *a, *b
	x.StepGrows, x.DeliverGrows = 0, 0
	y.StepGrows, y.DeliverGrows = 0, 0
	return x == y
}

// TestRunReuse is the network-reuse regression: back-to-back Runs on one
// network must reproduce a fresh network's results exactly — same per-node
// state, same simulation statistics — for the same seed, with the warm
// second run performing no buffer growth at all.
func TestRunReuse(t *testing.T) {
	g := torusGraph(12)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		fresh, err := NewNetwork(g, Config{Workers: workers, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		wantAccs, wantStats := runMix(t, fresh)

		reused, err := NewNetwork(g, Config{Workers: workers, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		first, firstStats := runMix(t, reused)
		second, secondStats := runMix(t, reused)
		for u := range wantAccs {
			if first[u] != wantAccs[u] {
				t.Fatalf("workers=%d: first run diverged from fresh network at node %d", workers, u)
			}
			if second[u] != wantAccs[u] {
				t.Fatalf("workers=%d: reused run diverged from fresh network at node %d", workers, u)
			}
		}
		if !simEqual(firstStats, wantStats) || !simEqual(secondStats, wantStats) {
			t.Errorf("workers=%d: stats diverged: fresh %+v first %+v reused %+v",
				workers, wantStats, firstStats, secondStats)
		}
		// The first Stats must be a private copy, not a view of the
		// network's accumulator that the second run rewound.
		if firstStats.Rounds == 0 || firstStats.Messages == 0 {
			t.Errorf("workers=%d: first run's stats were clobbered by reuse: %+v", workers, firstStats)
		}
		// The whole point of reuse: the warm run grows nothing.
		if secondStats.StepGrows != 0 || secondStats.DeliverGrows != 0 {
			t.Errorf("workers=%d: warm reuse still grew buffers: stepGrows=%d deliverGrows=%d",
				workers, secondStats.StepGrows, secondStats.DeliverGrows)
		}
	}
}

// TestRunReuseSetSeed verifies reseeding between runs: a reused network with
// SetSeed(s) must reproduce a fresh network constructed with seed s, and
// distinct seeds must yield distinct executions.
func TestRunReuseSetSeed(t *testing.T) {
	g := torusGraph(8)
	net, err := NewNetwork(g, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	accs1, _ := runMix(t, net)
	net.SetSeed(2)
	if net.Seed() != 2 {
		t.Fatalf("Seed() = %d after SetSeed(2)", net.Seed())
	}
	accs2, stats2 := runMix(t, net)

	fresh2, err := NewNetwork(g, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want2, wantStats2 := runMix(t, fresh2)
	for u := range want2 {
		if accs2[u] != want2[u] {
			t.Fatalf("reseeded reuse diverged from fresh seed-2 network at node %d", u)
		}
	}
	if !simEqual(stats2, wantStats2) {
		t.Errorf("reseeded stats %+v, fresh seed-2 stats %+v", stats2, wantStats2)
	}
	same := true
	for u := range accs1 {
		if accs1[u] != accs2[u] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical executions — reseed did not take")
	}
}

// TestRunReusePayloadArena reuses a LOCAL-model network whose protocol
// relays payload slabs, covering the arena flip/truncate state across runs.
func TestRunReusePayloadArena(t *testing.T) {
	g := pathGraph(6)
	run := func(net *Network) []int32 {
		var last *payloadRelay
		_, err := net.Run(func(id int) Process {
			p := &payloadRelay{id: id, n: g.N()}
			if id == g.N()-1 {
				last = p
			}
			return p
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(last.got) == 0 {
			return nil
		}
		return append([]int32(nil), last.got[0]...)
	}
	net, err := NewNetwork(g, Config{Model: LOCAL, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	first := run(net)
	second := run(net)
	if len(first) == 0 {
		t.Fatal("relay delivered nothing")
	}
	if len(first) != len(second) {
		t.Fatalf("payload lengths differ across reuse: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("payload word %d differs across reuse: %d vs %d", i, first[i], second[i])
		}
	}
}
