// Package frame is the wire codec of cluster mode: a length-prefixed binary
// framing of one shard group's per-round CONGEST traffic to one peer.
//
// A frame is the unit the transport sends per (peer, round): every message a
// cluster peer's local shards queued for one remote peer in one round,
// batched into a single write. The layout is fixed-width little-endian:
//
//	offset  size  field
//	0       4     payload length L (bytes after this prefix; ≤ MaxFrameBytes)
//	4       4     magic "LMF1" (rejects cross-protocol and misframed reads)
//	8       4     round the traffic was sent in
//	12      4     sending peer index
//	16      4     record count C (L = 16 + C·RecordBytes)
//	20      C·34  records
//
// Each record is one congest.Message with its destination vertex — the fixed
// fields only; payload slabs are a LOCAL-model facility and never cross the
// wire (cluster runs are CONGEST-only). Records preserve send order: the
// engine fills frames in (ascending sender id, send order) and the receiver
// replays them in peer order, which is what keeps a cluster run's delivery
// order — and therefore its results — byte-identical to the single-process
// run.
//
// Decoding is defensive end to end: a bad magic, an oversized or undersized
// length prefix, a count disagreeing with the length, or a truncated record
// slab all return errors (never panic, never over-allocate), enforced by
// FuzzFrameDecode.
package frame
