package frame

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

func randRecords(rng *rand.Rand, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			To:    rng.Int31(),
			From:  rng.Int31(),
			Seq:   rng.Int31(),
			Value: rng.Int63() - rng.Int63(),
			Aux:   rng.Int63() - rng.Int63(),
			Bits:  rng.Int31(),
			Kind:  uint8(rng.Intn(256)),
			Flags: uint8(rng.Intn(256)),
		}
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 3, 100} {
		recs := randRecords(rng, n)
		b := Append(nil, 42, 3, recs)
		round, peer, got, rest, err := Decode(b, nil)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if round != 42 || peer != 3 {
			t.Fatalf("n=%d: got round %d peer %d, want 42/3", n, round, peer)
		}
		if len(rest) != 0 {
			t.Fatalf("n=%d: %d trailing bytes", n, len(rest))
		}
		if n == 0 {
			if len(got) != 0 {
				t.Fatalf("empty frame decoded %d records", len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("n=%d: records differ after round trip", n)
		}
	}
}

func TestDecodeConcatenated(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randRecords(rng, 4)
	b := randRecords(rng, 2)
	buf := Append(Append(nil, 1, 0, a), 1, 1, b)
	_, peer, got, rest, err := Decode(buf, nil)
	if err != nil || peer != 0 || !reflect.DeepEqual(got, a) {
		t.Fatalf("first frame: peer=%d err=%v", peer, err)
	}
	_, peer, got, rest, err = Decode(rest, got[:0])
	if err != nil || peer != 1 || !reflect.DeepEqual(got, b) {
		t.Fatalf("second frame: peer=%d err=%v", peer, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestReaderWriterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := [][]Record{randRecords(rng, 5), nil, randRecords(rng, 17)}
	wrote := 0
	for r, recs := range frames {
		n, err := w.WriteFrame(r, 2, recs)
		if err != nil {
			t.Fatalf("write frame %d: %v", r, err)
		}
		wrote += n
	}
	if wrote != buf.Len() {
		t.Fatalf("reported %d bytes, wrote %d", wrote, buf.Len())
	}
	rd := NewReader(&buf)
	for r, want := range frames {
		round, peer, got, _, err := rd.ReadFrame()
		if err != nil {
			t.Fatalf("read frame %d: %v", r, err)
		}
		if round != r || peer != 2 {
			t.Fatalf("frame %d: got round %d peer %d", r, round, peer)
		}
		if len(want) == 0 {
			if len(got) != 0 {
				t.Fatalf("frame %d: want empty, got %d records", r, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(append([]Record(nil), got...), want) {
			t.Fatalf("frame %d: records differ", r)
		}
	}
	if _, _, _, _, err := rd.ReadFrame(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

// TestReadFrameAppendRotatesBuffers: ReadFrameAppend decodes into the
// caller's slice (reusing its capacity) instead of the Reader's internal
// one, so several returned frames can be held live at once — the contract
// the pipelined mesh reader's rotating buffers depend on.
func TestReadFrameAppendRotatesBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := [][]Record{randRecords(rng, 6), randRecords(rng, 1), nil}
	wrote := 0
	for r, recs := range frames {
		n, err := w.WriteFrame(r, 4, recs)
		if err != nil {
			t.Fatalf("write frame %d: %v", r, err)
		}
		wrote += n
	}
	rd := NewReader(&buf)
	held := make([][]Record, len(frames))
	read := 0
	for r, want := range frames {
		scratch := make([]Record, 0, 8)
		base := &scratch[:1][0]
		round, peer, out, n, err := rd.ReadFrameAppend(scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", r, err)
		}
		read += n
		if round != r || peer != 4 {
			t.Fatalf("frame %d: got round %d peer %d", r, round, peer)
		}
		if len(want) > 0 && &out[0] != base {
			t.Fatalf("frame %d: decode did not reuse the caller's buffer", r)
		}
		if len(out) != len(want) || (len(want) > 0 && !reflect.DeepEqual(out, want)) {
			t.Fatalf("frame %d: records differ after append decode", r)
		}
		held[r] = out
	}
	if read != wrote {
		t.Fatalf("byte accounting: read %d, wrote %d", read, wrote)
	}
	// Every frame must still be intact — no shared backing arrays.
	for r, want := range frames {
		if len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(held[r], want) {
			t.Fatalf("frame %d clobbered by a later read", r)
		}
	}
	if _, _, _, _, err := rd.ReadFrameAppend(nil); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	good := Append(nil, 5, 1, randRecords(rand.New(rand.NewSource(3)), 3))
	cases := map[string][]byte{
		"empty":          nil,
		"short prefix":   good[:3],
		"truncated body": good[:len(good)-1],
		"truncated head": good[:8],
		"trailing body": func() []byte {
			b := append([]byte(nil), good...)
			b = append(b, 0xFF)
			binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
			return b
		}(),
		"bad magic": func() []byte {
			b := append([]byte(nil), good...)
			b[4] ^= 0xFF
			return b
		}(),
		"oversized prefix": func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b, MaxFrameBytes+1)
			return b
		}(),
		"count mismatch": func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[16:], 2)
			return b
		}(),
		"negative round": func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[8:], 0xFFFFFFFF)
			return b
		}(),
	}
	for name, b := range cases {
		if _, _, _, _, err := Decode(b, nil); !errors.Is(err, ErrFrame) {
			t.Errorf("%s: want ErrFrame, got %v", name, err)
		}
	}
}

func TestReaderRejectsOversizedPrefixBeforeAllocating(t *testing.T) {
	var head [4]byte
	binary.LittleEndian.PutUint32(head[:], MaxFrameBytes+7)
	rd := NewReader(bytes.NewReader(head[:]))
	if _, _, _, _, err := rd.ReadFrame(); !errors.Is(err, ErrFrame) {
		t.Fatalf("want ErrFrame on oversized prefix, got %v", err)
	}
}

func TestDecodeSteadyStateAllocs(t *testing.T) {
	recs := randRecords(rand.New(rand.NewSource(4)), 64)
	b := Append(nil, 1, 0, recs)
	scratch := make([]Record, 0, 128)
	allocs := testing.AllocsPerRun(100, func() {
		_, _, out, _, err := Decode(b, scratch[:0])
		if err != nil || len(out) != 64 {
			t.Fatalf("decode: %v (%d records)", err, len(out))
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Decode allocates %.1f times per frame", allocs)
	}
}
