package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Record is one CONGEST message on the wire: the fixed congest.Message
// fields plus the destination vertex. Field order matches the encoded
// layout; all multi-byte fields are little-endian.
type Record struct {
	// To is the destination vertex (owned by the receiving peer).
	To int32
	// From is the sending vertex (owned by the sending peer), or — for the
	// engine's bounce of a volatile send — the unreachable neighbor.
	From int32
	// Seq is the message sequence number.
	Seq int32
	// Value and Aux are the two integer payload words.
	Value int64
	Aux   int64
	// Bits is the size charged against the CONGEST bandwidth budget.
	Bits int32
	// Kind is the protocol message tag.
	Kind uint8
	// Flags carries the congest message flags (FlagVolatile, FlagBounced).
	Flags uint8
}

// RecordBytes is the encoded size of one Record.
const RecordBytes = 34

// headerBytes is the fixed post-prefix header size: magic, round, peer, count.
const headerBytes = 20

// MaxFrameBytes bounds the payload length a decoder will accept: a guard
// against allocating attacker-controlled (or corrupted) sizes. 1 GiB of
// records is far beyond any round's traffic on a graph that fits in memory.
const MaxFrameBytes = 1 << 30

// magic tags every frame; a mismatch means the stream is not (or no longer)
// frame-aligned.
const magic = uint32('L') | uint32('M')<<8 | uint32('F')<<16 | uint32('1')<<24

// ErrFrame tags every decoding failure.
var ErrFrame = errors.New("frame: malformed frame")

// Append encodes one frame — prefix, header and records — onto dst and
// returns the extended slice. The records are written in the order given;
// the engine's contract is (ascending sender id, send order).
func Append(dst []byte, round, peer int, recs []Record) []byte {
	payload := headerBytes - 4 + len(recs)*RecordBytes
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payload))
	dst = binary.LittleEndian.AppendUint32(dst, magic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(round))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(peer))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for i := range recs {
		dst = appendRecord(dst, &recs[i])
	}
	return dst
}

func appendRecord(dst []byte, r *Record) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.To))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.From))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Seq))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Value))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Aux))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Bits))
	return append(dst, r.Kind, r.Flags)
}

func decodeRecord(b []byte, r *Record) {
	r.To = int32(binary.LittleEndian.Uint32(b))
	r.From = int32(binary.LittleEndian.Uint32(b[4:]))
	r.Seq = int32(binary.LittleEndian.Uint32(b[8:]))
	r.Value = int64(binary.LittleEndian.Uint64(b[12:]))
	r.Aux = int64(binary.LittleEndian.Uint64(b[20:]))
	r.Bits = int32(binary.LittleEndian.Uint32(b[28:]))
	r.Kind = b[32]
	r.Flags = b[33]
}

// Decode parses one whole frame from the front of b, appending its records
// onto recs (pass a truncated reusable slice to amortize). It returns the
// frame's round and sending peer, the extended record slice, and the rest of
// b past the frame. Every malformation — short prefix, bad magic, oversized
// or inconsistent length, truncated records — is an ErrFrame-tagged error.
func Decode(b []byte, recs []Record) (round, peer int, out []Record, rest []byte, err error) {
	if len(b) < 4 {
		return 0, 0, recs, b, fmt.Errorf("%w: %d bytes, need a 4-byte length prefix", ErrFrame, len(b))
	}
	payload := binary.LittleEndian.Uint32(b)
	if payload > MaxFrameBytes {
		return 0, 0, recs, b, fmt.Errorf("%w: length prefix %d exceeds the %d-byte cap", ErrFrame, payload, MaxFrameBytes)
	}
	if uint32(len(b)-4) < payload {
		return 0, 0, recs, b, fmt.Errorf("%w: truncated frame: prefix says %d bytes, %d available", ErrFrame, payload, len(b)-4)
	}
	body := b[4 : 4+payload]
	round, peer, n, err := parseHeader(body)
	if err != nil {
		return 0, 0, recs, b, err
	}
	body = body[headerBytes-4:]
	for i := 0; i < n; i++ {
		var r Record
		decodeRecord(body[i*RecordBytes:], &r)
		recs = append(recs, r)
	}
	return round, peer, recs, b[4+payload:], nil
}

// parseHeader validates a frame body (everything after the length prefix)
// and returns round, peer and record count.
func parseHeader(body []byte) (round, peer, n int, err error) {
	if len(body) < headerBytes-4 {
		return 0, 0, 0, fmt.Errorf("%w: %d-byte body, need a %d-byte header", ErrFrame, len(body), headerBytes-4)
	}
	if m := binary.LittleEndian.Uint32(body); m != magic {
		return 0, 0, 0, fmt.Errorf("%w: bad magic %#x", ErrFrame, m)
	}
	round = int(int32(binary.LittleEndian.Uint32(body[4:])))
	peer = int(int32(binary.LittleEndian.Uint32(body[8:])))
	count := binary.LittleEndian.Uint32(body[12:])
	want := uint64(count) * RecordBytes
	if got := uint64(len(body) - (headerBytes - 4)); got != want {
		return 0, 0, 0, fmt.Errorf("%w: count %d wants %d record bytes, body carries %d", ErrFrame, count, want, got)
	}
	if round < 0 || peer < 0 {
		return 0, 0, 0, fmt.Errorf("%w: negative round %d or peer %d", ErrFrame, round, peer)
	}
	return round, peer, int(count), nil
}

// Writer frames records onto an io.Writer, reusing one encode buffer across
// frames. Not safe for concurrent use.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteFrame encodes and writes one frame, returning the bytes put on the
// wire.
func (fw *Writer) WriteFrame(round, peer int, recs []Record) (int, error) {
	fw.buf = Append(fw.buf[:0], round, peer, recs)
	n, err := fw.w.Write(fw.buf)
	if err != nil {
		return n, fmt.Errorf("frame: write: %w", err)
	}
	return n, nil
}

// Reader reads frames from an io.Reader, reusing its buffers across frames.
// Not safe for concurrent use.
type Reader struct {
	r    io.Reader
	head [4]byte
	buf  []byte
	recs []Record
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadFrame reads one whole frame and returns its round, sending peer,
// records and wire size. The record slice is reused by the next ReadFrame;
// the engine consumes it before the next round's exchange. Oversized length
// prefixes fail before any allocation.
func (fr *Reader) ReadFrame() (round, peer int, recs []Record, n int, err error) {
	round, peer, recs, n, err = fr.ReadFrameAppend(fr.recs[:0])
	if err != nil {
		return 0, 0, nil, 0, err
	}
	fr.recs = recs // keep the (possibly grown) buffer warm for the next frame
	return round, peer, recs, n, nil
}

// ReadFrameAppend reads one whole frame, appending its records onto recs
// (pass a truncated reusable slice to amortize), and returns the round,
// sending peer, extended record slice and wire size. Unlike ReadFrame the
// returned records live in the caller's buffer, so a pipelined reader can
// rotate several buffers and decode the next frame while earlier ones are
// still being consumed. The Reader's internal byte buffers are still
// reused: only one ReadFrameAppend may run at a time.
func (fr *Reader) ReadFrameAppend(recs []Record) (round, peer int, out []Record, n int, err error) {
	if _, err := io.ReadFull(fr.r, fr.head[:]); err != nil {
		return 0, 0, recs, 0, fmt.Errorf("frame: read length prefix: %w", err)
	}
	payload := binary.LittleEndian.Uint32(fr.head[:])
	if payload > MaxFrameBytes {
		return 0, 0, recs, 0, fmt.Errorf("%w: length prefix %d exceeds the %d-byte cap", ErrFrame, payload, MaxFrameBytes)
	}
	if cap(fr.buf) < int(payload) {
		fr.buf = make([]byte, payload)
	}
	fr.buf = fr.buf[:payload]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		return 0, 0, recs, 0, fmt.Errorf("frame: read %d-byte body: %w", payload, err)
	}
	round, peer, cnt, err := parseHeader(fr.buf)
	if err != nil {
		return 0, 0, recs, 0, err
	}
	body := fr.buf[headerBytes-4:]
	for i := 0; i < cnt; i++ {
		var r Record
		decodeRecord(body[i*RecordBytes:], &r)
		recs = append(recs, r)
	}
	return round, peer, recs, 4 + int(payload), nil
}

// OverheadBytes is the on-wire size of an empty frame: the length prefix
// plus the header. A frame carrying C records occupies
// OverheadBytes + C·RecordBytes bytes.
const OverheadBytes = headerBytes
