package frame

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// FuzzFrameDecode throws arbitrary byte strings at both decode paths. The
// contract under fuzzing: decoding either succeeds or returns an error —
// never panics, never allocates beyond the declared frame cap — and
// whatever Decode accepts must re-encode to the identical bytes it consumed
// (the codec has no redundant representations).
func FuzzFrameDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	f.Add([]byte(nil))
	f.Add(Append(nil, 0, 0, nil))
	f.Add(Append(nil, 3, 1, randRecords(rng, 2)))
	f.Add(Append(nil, 1<<30, 255, randRecords(rng, 9)))
	long := Append(nil, 7, 2, randRecords(rng, 40))
	f.Add(long[:len(long)-5]) // truncated record slab
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, b []byte) {
		round, peer, recs, rest, err := Decode(b, nil)
		if err != nil {
			if !errors.Is(err, ErrFrame) {
				t.Fatalf("Decode error not tagged ErrFrame: %v", err)
			}
		} else {
			consumed := b[:len(b)-len(rest)]
			re := Append(nil, round, peer, recs)
			if !bytes.Equal(re, consumed) {
				t.Fatalf("accepted frame does not re-encode to its input: %d vs %d bytes", len(re), len(consumed))
			}
		}

		rd := NewReader(bytes.NewReader(b))
		if _, _, _, _, rerr := rd.ReadFrame(); rerr != nil {
			ok := errors.Is(rerr, ErrFrame) || errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF)
			if !ok {
				t.Fatalf("ReadFrame error not frame/io-tagged: %v", rerr)
			}
		}
	})
}
