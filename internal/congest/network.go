package congest

import (
	"errors"
	"math/bits"
	"runtime"

	"repro/internal/graph"
)

// Network is a configured simulation instance.
type Network struct {
	g         *graph.Graph
	cfg       Config
	bandwidth int
	round     int

	// rowOff[u] is the CSR start of u's adjacency row. The slot of the
	// directed edge u→(i-th neighbor) is rowOff[u]+i; that slot indexes the
	// per-directed-edge accounting arrays below. Each directed edge u→v is
	// written only by the shard that owns u, so parallel stepping is
	// race-free.
	rowOff []int32
	// slots is the reverse directed-edge index: a precomputed open-addressed
	// map from the pair (u,v) to the CSR slot of u→v, making Send O(1)
	// (the seed engine ran a binary search per message).
	slots edgeSlotIndex

	// Per-directed-edge CONGEST bandwidth accounting with lazy, stamped
	// per-round reset.
	edgeBits  []int32
	edgeStamp []int32

	// Run state.
	ctxs   []Context
	procs  []Process
	owner  []int32 // owner[u] = index of the shard that owns node u
	shards []shard
	pool   *workerPool

	stats Stats
}

// NewNetwork prepares a simulation of the given graph. The graph must be
// non-empty.
func NewNetwork(g *graph.Graph, cfg Config) (*Network, error) {
	if g.N() == 0 {
		return nil, errors.New("congest: empty graph")
	}
	if cfg.BandwidthBits == 0 {
		cfg.BandwidthBits = DefaultBandwidth(g.N())
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 64*g.N() + 1_000_000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	n := g.N()
	net := &Network{
		g:         g,
		cfg:       cfg,
		bandwidth: cfg.BandwidthBits,
		rowOff:    make([]int32, n+1),
		edgeBits:  make([]int32, 2*g.M()),
		edgeStamp: make([]int32, 2*g.M()),
	}
	for i := range net.edgeStamp {
		net.edgeStamp[i] = -1
	}
	for v := 0; v < n; v++ {
		net.rowOff[v+1] = net.rowOff[v] + int32(g.Degree(v))
	}
	net.slots = buildEdgeSlots(g, net.rowOff)
	return net, nil
}

// Graph returns the underlying topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// Bandwidth returns the per-edge budget in bits (CONGEST mode).
func (n *Network) Bandwidth() int { return n.bandwidth }

// chargeEdge adds bits to the edge slot's usage in the current round and
// returns the new total. Uses a round stamp for O(1) lazy reset. Only the
// edge's sender ever touches slot ei, so this is safe under parallel
// stepping.
func (n *Network) chargeEdge(ei int32, b int32) int {
	if n.edgeStamp[ei] != int32(n.round) {
		n.edgeStamp[ei] = int32(n.round)
		n.edgeBits[ei] = 0
	}
	n.edgeBits[ei] += b
	return int(n.edgeBits[ei])
}

// edgeSlotIndex maps a directed vertex pair (u,v) to the CSR slot of u→v in
// O(1): an open-addressed hash table with linear probing, built once at
// network construction. Key 0 is the empty sentinel; the pair (0,0) can
// never occur because the graph has no self-loops.
type edgeSlotIndex struct {
	mask  uint64
	shift uint
	keys  []uint64
	vals  []int32
}

func pairKey(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

func hashKey(k uint64) uint64 { return k * 0x9E3779B97F4A7C15 }

func buildEdgeSlots(g *graph.Graph, rowOff []int32) edgeSlotIndex {
	directed := 2 * g.M()
	size := 2
	for size < 2*directed {
		size <<= 1
	}
	idx := edgeSlotIndex{
		mask:  uint64(size - 1),
		shift: uint(64 - bits.TrailingZeros(uint(size))),
		keys:  make([]uint64, size),
		vals:  make([]int32, size),
	}
	for u := 0; u < g.N(); u++ {
		row := g.Neighbors(u)
		for i, v := range row {
			key := pairKey(int32(u), v)
			pos := hashKey(key) >> idx.shift
			for idx.keys[pos] != 0 {
				pos = (pos + 1) & idx.mask
			}
			idx.keys[pos] = key
			idx.vals[pos] = rowOff[u] + int32(i)
		}
	}
	return idx
}

// lookup returns the CSR slot of u→v, or -1 when v is not a neighbor of u.
func (idx *edgeSlotIndex) lookup(u, v int32) int32 {
	key := pairKey(u, v)
	pos := hashKey(key) >> idx.shift
	for {
		switch idx.keys[pos] {
		case key:
			return idx.vals[pos]
		case 0:
			return -1
		}
		pos = (pos + 1) & idx.mask
	}
}
