package congest

import (
	"errors"
	"math/bits"
	"math/rand"
	"runtime"

	"repro/internal/congest/frame"
	"repro/internal/graph"
)

// Network is a configured simulation instance.
type Network struct {
	g         *graph.Graph
	cfg       Config
	bandwidth int
	round     int

	// rowOff[u] is the CSR start of u's adjacency row. The slot of the
	// directed edge u→(i-th neighbor) is rowOff[u]+i; that slot indexes the
	// per-directed-edge accounting arrays below. Each directed edge u→v is
	// written only by the shard that owns u, so parallel stepping is
	// race-free.
	rowOff []int32
	// slots is the reverse directed-edge index: a precomputed open-addressed
	// map from the pair (u,v) to the CSR slot of u→v, making Send O(1)
	// (the seed engine ran a binary search per message).
	slots edgeSlotIndex

	// Per-directed-edge CONGEST bandwidth accounting with lazy, stamped
	// per-round reset.
	edgeBits  []int32
	edgeStamp []int32

	// Dynamic-topology overlay (nil on static networks): per-directed-edge
	// activity plus per-node active-degree counters, sized for the superset
	// so churn never allocates. Both directions of an undirected edge are
	// always toggled together; writes happen only in the single-threaded
	// control loop (Topology.SetEdge), reads during the parallel phases.
	// edgePairs indexes the undirected edges in canonical (u < v, CSR)
	// order so providers can toggle by edge index without hash lookups.
	active    []bool
	activeDeg []int32
	edgePairs []edgePair
	topo      Topology

	// Protocol-published state for adaptive adversaries (dynamic networks
	// only): published[u] is u's latest Context.Publish value, pubRound[u]
	// the round it was written in (-1 = never this run). Each node writes
	// only its own slot during its Step, so parallel stepping is race-free;
	// providers read at round boundaries through Topology.Published.
	published []int64
	pubRound  []int32

	// Run state. The slabs are allocated on the first Run and reused by
	// every subsequent Run on the same network (see resetRunState), so
	// multi-source sweeps pay the construction cost — the edge-slot hash,
	// the context/RNG slabs, the inbox arena — once per worker instead of
	// once per source.
	ctxs       []Context
	procs      []Process
	owner      []int32 // owner[u] = owning shard index, or -1-peer for remote vertices
	shards     []shard
	pool       *workerPool
	rngSrcs    []splitmix64
	rngs       []rand.Rand
	inboxArena []Message

	// transport executes the deliver phase: the in-memory mailbox drain
	// (loopbackTransport) or the cluster frame exchange (wireTransport).
	// Selected once at construction from Config.Cluster.
	transport transport
	// wireOut[p] is the merged per-round record batch headed to peer p;
	// wireIn[p] the decoded batch received from p, both nil outside cluster
	// mode. wireIn aliases the Exchanger's buffers and is valid only during
	// the deliver phase it was fetched for.
	wireOut [][]frame.Record
	wireIn  [][]frame.Record

	stats Stats
}

// NewNetwork prepares a simulation of the given graph. The graph must be
// non-empty.
func NewNetwork(g *graph.Graph, cfg Config) (*Network, error) {
	if g.N() == 0 {
		return nil, errors.New("congest: empty graph")
	}
	if cfg.BandwidthBits == 0 {
		cfg.BandwidthBits = DefaultBandwidth(g.N())
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 64*g.N() + 1_000_000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cl := cfg.Cluster; cl != nil {
		if err := cl.validate(g.N(), &cfg); err != nil {
			return nil, err
		}
	}
	n := g.N()
	net := &Network{
		g:         g,
		cfg:       cfg,
		bandwidth: cfg.BandwidthBits,
		rowOff:    make([]int32, n+1),
	}
	for v := 0; v < n; v++ {
		net.rowOff[v+1] = net.rowOff[v] + int32(g.Degree(v))
	}
	// Per-directed-edge accounting is sized by the materialized rows
	// (rowOff[n]): exactly 2·M on a full graph, and ~1/P of that on a
	// cluster peer's graph shard, where only owned and halo rows exist.
	local := int(net.rowOff[n])
	net.edgeBits = make([]int32, local)
	net.edgeStamp = make([]int32, local)
	for i := range net.edgeStamp {
		net.edgeStamp[i] = -1
	}
	net.slots = buildEdgeSlots(g, net.rowOff)
	if cfg.Cluster != nil {
		net.transport = wireTransport{}
	} else {
		net.transport = loopbackTransport{}
	}
	if cfg.Topology != nil {
		net.active = make([]bool, 2*g.M())
		net.activeDeg = make([]int32, n)
		net.edgePairs = make([]edgePair, 0, g.M())
		for u := 0; u < n; u++ {
			for i, v := range g.Neighbors(u) {
				if int32(u) < v {
					net.edgePairs = append(net.edgePairs, edgePair{
						u: int32(u), v: v,
						su: net.rowOff[u] + int32(i),
						sv: net.slots.lookup(v, int32(u)),
					})
				}
			}
		}
		net.topo = Topology{net: net}
		net.published = make([]int64, n)
		net.pubRound = make([]int32, n)
	}
	return net, nil
}

// Graph returns the underlying topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// SetSeed replaces the engine seed used by the next Run. Multi-source
// sweeps reuse one network per worker and reseed it between sources (each
// with a seed derived from the sweep's base seed), so per-source runs are
// reproducible and their RNG streams uncorrelated. Must not be called
// while a Run is in progress.
func (n *Network) SetSeed(seed int64) { n.cfg.Seed = seed }

// Seed returns the engine seed the next Run will use.
func (n *Network) Seed() int64 { return n.cfg.Seed }

// resetRunState rewinds every piece of per-run state so the network can
// execute another Run on the same graph while reusing all allocated slabs:
// the round counter and statistics restart from zero, the bandwidth stamps
// are invalidated, and each shard's live list, mailboxes, payload arena and
// accumulators are truncated in place (capacity — the warm buffer sizes
// reached by the previous run — is kept, which is the point of reuse).
func (n *Network) resetRunState() {
	n.round = 0
	n.stats = Stats{}
	for i := range n.edgeStamp {
		n.edgeStamp[i] = -1
	}
	for i := range n.shards {
		sh := &n.shards[i]
		sh.live = sh.live[:0]
		for s := range sh.out {
			sh.out[s] = sh.out[s][:0]
		}
		sh.arena.buf[0] = sh.arena.buf[0][:0]
		sh.arena.buf[1] = sh.arena.buf[1][:0]
		sh.arena.cur = 0
		sh.steps, sh.skips, sh.wakes, sh.halts = 0, 0, 0, 0
		sh.msgs, sh.bits, sh.payloadWords, sh.drops = 0, 0, 0, 0
		sh.stepGrows, sh.deliverGrows = 0, 0
		sh.maxEdgeBits = 0
		sh.minWake = noWake
		sh.err = nil
		for p := range sh.wireOut {
			sh.wireOut[p] = sh.wireOut[p][:0]
		}
	}
	for p := range n.wireOut {
		n.wireOut[p] = n.wireOut[p][:0]
	}
	n.wireIn = nil
}

// Bandwidth returns the per-edge budget in bits (CONGEST mode).
func (n *Network) Bandwidth() int { return n.bandwidth }

// chargeEdge adds bits to the edge slot's usage in the current round and
// returns the new total. Uses a round stamp for O(1) lazy reset. Only the
// edge's sender ever touches slot ei, so this is safe under parallel
// stepping.
func (n *Network) chargeEdge(ei int32, b int32) int {
	if n.edgeStamp[ei] != int32(n.round) {
		n.edgeStamp[ei] = int32(n.round)
		n.edgeBits[ei] = 0
	}
	n.edgeBits[ei] += b
	return int(n.edgeBits[ei])
}

// edgeSlotIndex maps a directed vertex pair (u,v) to the CSR slot of u→v in
// O(1): an open-addressed hash table with linear probing, built once at
// network construction. Key 0 is the empty sentinel; the pair (0,0) can
// never occur because the graph has no self-loops.
type edgeSlotIndex struct {
	mask  uint64
	shift uint
	keys  []uint64
	vals  []int32
}

func pairKey(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

func hashKey(k uint64) uint64 { return k * 0x9E3779B97F4A7C15 }

func buildEdgeSlots(g *graph.Graph, rowOff []int32) edgeSlotIndex {
	directed := int(rowOff[len(rowOff)-1]) // materialized directed edges (2·M on a full graph)
	size := 2
	for size < 2*directed {
		size <<= 1
	}
	idx := edgeSlotIndex{
		mask:  uint64(size - 1),
		shift: uint(64 - bits.TrailingZeros(uint(size))),
		keys:  make([]uint64, size),
		vals:  make([]int32, size),
	}
	for u := 0; u < g.N(); u++ {
		row := g.Neighbors(u)
		for i, v := range row {
			key := pairKey(int32(u), v)
			pos := hashKey(key) >> idx.shift
			for idx.keys[pos] != 0 {
				pos = (pos + 1) & idx.mask
			}
			idx.keys[pos] = key
			idx.vals[pos] = rowOff[u] + int32(i)
		}
	}
	return idx
}

// lookup returns the CSR slot of u→v, or -1 when v is not a neighbor of u.
func (idx *edgeSlotIndex) lookup(u, v int32) int32 {
	key := pairKey(u, v)
	pos := hashKey(key) >> idx.shift
	for {
		switch idx.keys[pos] {
		case key:
			return idx.vals[pos]
		case 0:
			return -1
		}
		pos = (pos + 1) & idx.mask
	}
}
