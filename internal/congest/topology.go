package congest

import "errors"

// This file is the dynamic-network extension of the round engine: a
// per-round edge-activity overlay on the static superset graph, driven by a
// TopologyProvider. The dynamic model follows Kuhn–Lynch–Oshman-style
// synchronous dynamic networks and the random-walk line of Das Sarma, Molla
// and Pandurangan ("Fast Distributed Computation in Dynamic Networks via
// Random Walks"): the vertex set is fixed, the edge set of round r is an
// arbitrary (here: provider-chosen, deterministic) subset of a static
// superset, and it changes only at round boundaries while every worker is
// quiescent.
//
// Everything is sized for the superset at construction time — the CSR rows,
// the edge-slot hash, the shard mailboxes, the per-directed-edge activity
// and bandwidth arrays — so activating or deactivating edges never
// allocates: the steady-state round loop stays zero-allocation with churn
// running every round (Stats.TopologyChanges counts the toggles).

// TopologyProvider drives per-round topology churn on a dynamic network.
// Set one via Config.Topology; a nil provider means the classical static
// network.
//
// Start is called once per Run, after every superset edge has been reset to
// active and before any Process.Init runs; it establishes the round-0 edge
// set. ApplyRound is called at the beginning of every round r ≥ 1, before
// the step phase, with all workers quiescent — the round-r topology is
// exactly what the provider leaves behind, and it is frozen for the whole
// round (sends in round r travel over round-r edges, as in the synchronous
// dynamic-network model).
//
// Determinism contract: providers must derive all churn decisions from
// their own construction-time seed and the round number (the repository's
// models use sweep.DeriveSeed(seed, round) streams), never from wall-clock,
// map iteration, or worker identity. Providers must be stateless across
// rounds apart from what they read back from the Topology view: the view
// itself (edge on/off state) is the only mutable churn state, it lives in
// the network, and it is rewound by every Run — which is what makes one
// provider instance safely shareable by all the worker networks of a
// multi-source sweep.
type TopologyProvider interface {
	// Start establishes the round-0 topology. The view arrives with every
	// superset edge active.
	Start(t *Topology)
	// ApplyRound establishes the round-r topology by toggling edges on the
	// view. It runs single-threaded between rounds.
	ApplyRound(round int, t *Topology)
}

// AdaptiveProvider is a state-aware TopologyProvider: an adversary whose
// round decisions may read the protocol-published state through the view
// (Topology.Published) — the adaptive-adversary model of Das Sarma, Molla
// and Pandurangan, where the adversary sees the walk's position at the
// round boundary before choosing the round's edges. The interface is a
// capability marker: protocols consult it to decide whether to expose their
// state (core.TokenWalk pre-announces each hop under an adaptive provider,
// so the adversary's information is exactly the round-start state of the
// model, never more). Determinism contract unchanged: decisions must be a
// pure function of (construction seed, round, published state).
type AdaptiveProvider interface {
	TopologyProvider
	// Adaptive distinguishes state-aware adversaries from oblivious churn.
	Adaptive() bool
}

// IsAdaptive reports whether p is a state-aware adversary: an
// AdaptiveProvider whose Adaptive() returns true.
func IsAdaptive(p TopologyProvider) bool {
	ap, ok := p.(AdaptiveProvider)
	return ok && ap.Adaptive()
}

// Topology is the provider's mutable view of the network's edge-activity
// overlay. It is owned by the engine and valid only inside Start/ApplyRound
// callbacks; providers must not retain it.
type Topology struct {
	net *Network
}

// N returns the number of vertices of the superset graph.
func (t *Topology) N() int { return t.net.g.N() }

// EdgeOn reports whether the superset edge {u, v} is currently active.
// Non-edges of the superset report false.
func (t *Topology) EdgeOn(u, v int) bool {
	slot := t.net.slots.lookup(int32(u), int32(v))
	return slot >= 0 && t.net.active[slot]
}

// SetEdge activates or deactivates the superset edge {u, v} — both
// directions at once, keeping the overlay symmetric — and reports whether
// the state changed. Pairs that are not superset edges are a provider bug
// and panic: the dynamic model only ever removes and restores edges of the
// fixed superset. Providers iterating the whole edge set every round should
// prefer the index-based SetEdgeAt, which skips the two hash lookups.
func (t *Topology) SetEdge(u, v int, on bool) bool {
	n := t.net
	su := n.slots.lookup(int32(u), int32(v))
	sv := n.slots.lookup(int32(v), int32(u))
	if su < 0 || sv < 0 {
		panic(&SendError{From: u, To: v, Round: n.round, Reason: "topology: not a superset edge"})
	}
	return t.toggle(edgePair{u: int32(u), v: int32(v), su: su, sv: sv}, on)
}

// Edges returns the number of undirected superset edges. Edge index e in
// [0, Edges()) follows the canonical (u < v, CSR) order — the same order
// internal/dyngraph enumerates edges in, so models and engine agree on
// indices by construction.
func (t *Topology) Edges() int { return len(t.net.edgePairs) }

// EdgeOnAt reports whether the canonical edge with index e is active: the
// O(1) array-read counterpart of EdgeOn for whole-edge-set sweeps.
func (t *Topology) EdgeOnAt(e int) bool { return t.net.active[t.net.edgePairs[e].su] }

// SetEdgeAt is SetEdge addressed by canonical edge index: no hash lookups,
// for providers that touch every edge every round.
func (t *Topology) SetEdgeAt(e int, on bool) bool { return t.toggle(t.net.edgePairs[e], on) }

// toggle applies one symmetric activity change and maintains the degree
// counters and the churn statistics.
func (t *Topology) toggle(p edgePair, on bool) bool {
	n := t.net
	if n.active[p.su] == on {
		return false
	}
	n.active[p.su] = on
	n.active[p.sv] = on
	if on {
		n.activeDeg[p.u]++
		n.activeDeg[p.v]++
	} else {
		n.activeDeg[p.u]--
		n.activeDeg[p.v]--
	}
	n.stats.TopologyChanges++
	return true
}

// edgePair is one undirected superset edge with its two directed CSR slots.
type edgePair struct{ u, v, su, sv int32 }

// ActiveDegree returns u's current number of active incident edges.
func (t *Topology) ActiveDegree(u int) int { return int(t.net.activeDeg[u]) }

// Published returns the value node u last published this run via
// Context.Publish together with the round it was published in, or round -1
// when u has not published yet. Reads happen at round boundaries (all
// workers quiescent), so the snapshot is exactly the state after the
// previous round's step phase — the information an adaptive adversary is
// entitled to under the dynamic-network model.
func (t *Topology) Published(u int) (value int64, round int) {
	n := t.net
	if n.published == nil {
		return 0, -1
	}
	return n.published[u], int(n.pubRound[u])
}

// ActiveEdges returns the current number of active undirected edges.
func (t *Topology) ActiveEdges() int {
	total := 0
	for _, d := range t.net.activeDeg {
		total += int(d)
	}
	return total / 2
}

// resetTopology rewinds the activity overlay to the all-active superset and
// clears the publication slab. Called at the start of every dynamic Run,
// before the provider's Start.
func (n *Network) resetTopology() {
	for i := range n.active {
		n.active[i] = true
	}
	for u := 0; u < n.g.N(); u++ {
		n.activeDeg[u] = int32(n.g.Degree(u))
	}
	for u := range n.pubRound {
		n.published[u] = 0
		n.pubRound[u] = -1
	}
}

// ProbeRounds drives the network's topology provider through rounds
// 0..rounds without running any processes, invoking observe after every
// application: round 0 right after the provider's Start, then once per
// ApplyRound. It is the test-utility entry point for verifying topology
// properties (e.g. the Kuhn–Lynch–Oshman T-interval-connectivity check in
// internal/dyngraph) against exactly the edge sets a real Run would see.
// The publication slab stays empty throughout, so adaptive adversaries
// probe their no-information behavior. Requires a dynamic network.
func (n *Network) ProbeRounds(rounds int, observe func(round int, t *Topology)) error {
	if n.cfg.Topology == nil {
		return errors.New("congest: ProbeRounds needs a dynamic network (Config.Topology)")
	}
	n.resetTopology()
	n.cfg.Topology.Start(&n.topo)
	observe(0, &n.topo)
	for r := 1; r <= rounds; r++ {
		n.cfg.Topology.ApplyRound(r, &n.topo)
		observe(r, &n.topo)
	}
	return nil
}
