package gen

import (
	"slices"
	"testing"

	"repro/internal/graph"
)

// shardCase pairs a family's sharder with its full generator — the
// reference every shard-built row must match byte for byte.
type shardCase struct {
	name string
	sh   graph.Sharder
	full *graph.Graph
}

func shardCases(t *testing.T) []shardCase {
	t.Helper()
	var cases []shardCase
	add := func(name string, sh graph.Sharder, shErr error, full *graph.Graph, fullErr error) {
		if shErr != nil || fullErr != nil {
			t.Fatalf("%s: sharder %v / full %v", name, shErr, fullErr)
		}
		cases = append(cases, shardCase{name: name, sh: sh, full: full})
	}
	for _, n := range []int{3, 5, 8} {
		sh, err := CycleSharder(n)
		full, ferr := Cycle(n)
		add(sh.Name, sh, err, full, ferr)
	}
	for _, rc := range [][2]int{{3, 3}, {4, 5}, {6, 3}} {
		sh, err := TorusSharder(rc[0], rc[1])
		full, ferr := Torus(rc[0], rc[1])
		add(sh.Name, sh, err, full, ferr)
	}
	for _, rc := range [][2]int{{2, 2}, {2, 5}, {3, 4}} {
		sh, err := GridSharder(rc[0], rc[1])
		full, ferr := Grid(rc[0], rc[1])
		add(sh.Name, sh, err, full, ferr)
	}
	for _, bk := range [][2]int{{3, 4}, {4, 6}} {
		sh, err := RingOfCliquesSharder(bk[0], bk[1])
		full, ferr := RingOfCliques(bk[0], bk[1])
		add(sh.Name, sh, err, full, ferr)
	}
	return cases
}

// TestShardProperties is the shard-math property sweep over a grid of
// (family, P) including P = 1, P ∤ n, and P > n: the owned ranges are
// contiguous, disjoint, and cover [0, n); every materialized row of a shard
// — owned and halo alike — is byte-equal to the full build's CSR row;
// everything else is empty; and the shard's global accessors answer the
// full graph's facts.
func TestShardProperties(t *testing.T) {
	for _, tc := range shardCases(t) {
		n := tc.full.N()
		if tc.sh.N != n {
			t.Fatalf("%s: sharder N = %d, full build N = %d", tc.name, tc.sh.N, n)
		}
		for _, P := range []int{1, 2, 3, 5, n, n + 3} {
			covered := 0
			for p := 0; p < P; p++ {
				lo, hi := graph.ShardRange(n, p, P)
				if lo != covered || hi < lo || hi > n {
					t.Fatalf("%s P=%d: shard %d range [%d,%d) breaks contiguous cover at %d",
						tc.name, P, p, lo, hi, covered)
				}
				covered = hi
				g, err := graph.BuildShard(tc.sh, p, P)
				if err != nil {
					t.Fatalf("%s P=%d p=%d: %v", tc.name, P, p, err)
				}
				checkShard(t, tc, g, lo, hi, P)
			}
			if covered != n {
				t.Fatalf("%s P=%d: shards cover [0,%d), want [0,%d)", tc.name, P, covered, n)
			}
		}
	}
}

func checkShard(t *testing.T, tc shardCase, g *graph.Graph, lo, hi, P int) {
	t.Helper()
	full := tc.full
	n := full.N()
	if g.N() != n || g.Name() != full.Name() {
		t.Fatalf("%s: shard is %q n=%d, full is %q n=%d", tc.name, g.Name(), g.N(), full.Name(), n)
	}
	// The materialized set: owned rows plus their remote endpoints (halo).
	materialized := make([]bool, n)
	for u := lo; u < hi; u++ {
		materialized[u] = true
		for _, v := range full.Neighbors(u) {
			materialized[v] = true
		}
	}
	for u := 0; u < n; u++ {
		row := g.Neighbors(u)
		if !materialized[u] {
			if len(row) != 0 {
				t.Fatalf("%s [%d,%d): non-materialized row %d has %d edges", tc.name, lo, hi, u, len(row))
			}
			continue
		}
		if !slices.Equal(row, full.Neighbors(u)) {
			t.Fatalf("%s [%d,%d): row %d = %v, full build has %v", tc.name, lo, hi, u, row, full.Neighbors(u))
		}
	}
	// Global facts answered from Meta must match the full build's computed
	// answers (for P = 1 this also pins BuildFull against the generator).
	if g.M() != full.M() {
		t.Fatalf("%s: shard M = %d, full M = %d", tc.name, g.M(), full.M())
	}
	if g.MinDegree() != full.MinDegree() || g.MaxDegree() != full.MaxDegree() {
		t.Fatalf("%s: shard degrees [%d,%d], full [%d,%d]", tc.name,
			g.MinDegree(), g.MaxDegree(), full.MinDegree(), full.MaxDegree())
	}
	gd, gok := g.Regular()
	fd, fok := full.Regular()
	if gok != fok || (gok && gd != fd) {
		t.Fatalf("%s: shard Regular = (%d,%t), full = (%d,%t)", tc.name, gd, gok, fd, fok)
	}
	if g.IsConnected() != full.IsConnected() || g.IsBipartite() != full.IsBipartite() {
		t.Fatalf("%s: shard connected/bipartite = %t/%t, full = %t/%t", tc.name,
			g.IsConnected(), g.IsBipartite(), full.IsConnected(), full.IsBipartite())
	}
	if !g.Sharded() {
		t.Fatalf("%s: shard does not report Sharded", tc.name)
	}
	if r, f := g.ResidentBytes(), full.ResidentBytes(); P > 1 && r > f {
		t.Fatalf("%s [%d,%d): shard resident %d exceeds full build's %d", tc.name, lo, hi, r, f)
	}
}

// TestShardResidentScales pins the memory contract at an anchor size: a
// torus shard's resident CSR bytes stay within 2× of full/P, offsets
// overhead included.
func TestShardResidentScales(t *testing.T) {
	sh, err := TorusSharder(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	full, err := graph.BuildFull(sh)
	if err != nil {
		t.Fatal(err)
	}
	for _, P := range []int{2, 3, 4} {
		for p := 0; p < P; p++ {
			g, err := graph.BuildShard(sh, p, P)
			if err != nil {
				t.Fatal(err)
			}
			if r, cap := g.ResidentBytes(), 2*full.ResidentBytes()/int64(P); r > cap {
				t.Errorf("torus 64×64, shard %d/%d: resident %d bytes > 2·full/P = %d", p, P, r, cap)
			}
		}
	}
}

// TestBuildFullMatchesGenerator: the closed-form one-peer build is
// CSR-identical to the incremental generator output for every sharded
// family.
func TestBuildFullMatchesGenerator(t *testing.T) {
	for _, tc := range shardCases(t) {
		g, err := graph.BuildFull(tc.sh)
		if err != nil {
			t.Fatal(err)
		}
		go1, ge1 := g.CSR()
		fo, fe := tc.full.CSR()
		if !slices.Equal(go1, fo) || !slices.Equal(ge1, fe) {
			t.Fatalf("%s: BuildFull CSR differs from generator output", tc.name)
		}
	}
}

// TestSharderValidation: sharder constructors reject the same degenerate
// parameters as their full generators, with errors naming the parameter.
func TestSharderValidation(t *testing.T) {
	if _, err := CycleSharder(2); err == nil {
		t.Error("CycleSharder(2) accepted")
	}
	if _, err := TorusSharder(2, 5); err == nil {
		t.Error("TorusSharder(2,5) accepted")
	}
	if _, err := GridSharder(1, 5); err == nil {
		t.Error("GridSharder(1,5) accepted")
	}
	if _, err := RingOfCliquesSharder(2, 5); err == nil {
		t.Error("RingOfCliquesSharder(2,5) accepted")
	}
	if _, err := RingOfCliquesSharder(3, 3); err == nil {
		t.Error("RingOfCliquesSharder(3,3) accepted")
	}
	sh, err := CycleSharder(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graph.BuildShard(sh, 3, 3); err == nil {
		t.Error("BuildShard with p = P accepted")
	}
	if _, err := graph.BuildShard(sh, -1, 3); err == nil {
		t.Error("BuildShard with negative p accepted")
	}
}
