// Package gen constructs the graph families used throughout the paper's
// discussion and evaluation: the complete graph, paths and cycles (§2.3 a,c),
// d-regular expanders via random regular graphs (§2.3 b), the β-barbell graph
// of Figure 1 (§2.3 d), its exactly-regular ring-of-cliques variant, and
// assorted classical families (torus, hypercube, lollipop, dumbbell,
// Erdős–Rényi) used by the test suite and the benchmark harness.
//
// All generators return simple connected graphs or an error; randomized
// generators take an explicit *rand.Rand so experiments are reproducible —
// the same seed always yields the same graph, independent of call order
// elsewhere in the program.
package gen
