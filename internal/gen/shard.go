package gen

import (
	"fmt"
	"slices"

	"repro/internal/graph"
)

// This file provides closed-form row sharders for the coordinate-structured
// families — cycle, torus, grid, ring of cliques — whose adjacency is a
// formula of the vertex id. A cluster peer uses these to materialize only
// its CSR shard (graph.BuildShard) instead of building the whole graph and
// slicing. Every sharder's rows are ascending and duplicate-free, byte-equal
// to the full Builder CSR (enforced by the shard property tests), and its
// Meta carries the analytically-known whole-graph facts.

// CycleSharder shards the cycle C_n (n ≥ 3), matching Cycle(n).
func CycleSharder(n int) (graph.Sharder, error) {
	if n < 3 {
		return graph.Sharder{}, fmt.Errorf("gen: Cycle needs n ≥ 3, got %d", n)
	}
	return graph.Sharder{
		Name: fmt.Sprintf("cycle(n=%d)", n),
		N:    n,
		Meta: graph.Meta{
			M: n, MinDeg: 2, MaxDeg: 2, RegularDeg: 2,
			Connected: true, Bipartite: n%2 == 0,
		},
		Row: func(u int, buf []int32) []int32 {
			buf = append(buf, int32((u+n-1)%n), int32((u+1)%n))
			slices.Sort(buf)
			return buf
		},
	}, nil
}

// TorusSharder shards the rows×cols torus (rows, cols ≥ 3), matching
// Torus(rows, cols).
func TorusSharder(rows, cols int) (graph.Sharder, error) {
	if rows < 3 || cols < 3 {
		return graph.Sharder{}, fmt.Errorf("gen: Torus needs rows, cols ≥ 3, got %d×%d", rows, cols)
	}
	id := func(r, c int) int32 { return int32(r*cols + c) }
	return graph.Sharder{
		Name: fmt.Sprintf("torus(%dx%d)", rows, cols),
		N:    rows * cols,
		Meta: graph.Meta{
			M: 2 * rows * cols, MinDeg: 4, MaxDeg: 4, RegularDeg: 4,
			Connected: true, Bipartite: rows%2 == 0 && cols%2 == 0,
		},
		Row: func(u int, buf []int32) []int32 {
			r, c := u/cols, u%cols
			buf = append(buf,
				id((r+rows-1)%rows, c), id((r+1)%rows, c),
				id(r, (c+cols-1)%cols), id(r, (c+1)%cols))
			slices.Sort(buf)
			return buf
		},
	}, nil
}

// GridSharder shards the rows×cols grid (rows, cols ≥ 2), matching
// Grid(rows, cols).
func GridSharder(rows, cols int) (graph.Sharder, error) {
	if rows < 2 || cols < 2 {
		return graph.Sharder{}, fmt.Errorf("gen: Grid needs rows, cols ≥ 2, got %d×%d", rows, cols)
	}
	maxDeg := 4
	regular := -1
	switch {
	case rows == 2 && cols == 2:
		maxDeg, regular = 2, 2 // the 2×2 grid is the 4-cycle
	case rows == 2 || cols == 2:
		maxDeg = 3
	}
	return graph.Sharder{
		Name: fmt.Sprintf("grid(%dx%d)", rows, cols),
		N:    rows * cols,
		Meta: graph.Meta{
			M: rows*(cols-1) + cols*(rows-1), MinDeg: 2, MaxDeg: maxDeg,
			RegularDeg: regular, Connected: true, Bipartite: true,
		},
		Row: func(u int, buf []int32) []int32 {
			r, c := u/cols, u%cols
			// Appended in ascending id order: up < left < right < down.
			if r > 0 {
				buf = append(buf, int32(u-cols))
			}
			if c > 0 {
				buf = append(buf, int32(u-1))
			}
			if c+1 < cols {
				buf = append(buf, int32(u+1))
			}
			if r+1 < rows {
				buf = append(buf, int32(u+cols))
			}
			return buf
		},
	}, nil
}

// RingOfCliquesSharder shards the ring of beta cliques of size cliqueSize
// with the port-port edge removed, matching RingOfCliques(beta, cliqueSize).
func RingOfCliquesSharder(beta, cliqueSize int) (graph.Sharder, error) {
	if beta < 3 || cliqueSize < 4 {
		return graph.Sharder{}, fmt.Errorf("gen: RingOfCliques needs beta ≥ 3, cliqueSize ≥ 4, got %d, %d", beta, cliqueSize)
	}
	k := cliqueSize
	return graph.Sharder{
		Name: fmt.Sprintf("ringcliques(beta=%d,k=%d)", beta, k),
		N:    beta * k,
		Meta: graph.Meta{
			M: beta * k * (k - 1) / 2, MinDeg: k - 1, MaxDeg: k - 1, RegularDeg: k - 1,
			Connected: true, Bipartite: false, // k ≥ 4 leaves a triangle in every clique
		},
		Row: func(u int, buf []int32) []int32 {
			i, j := u/k, u%k
			base := i * k
			switch j {
			case 0: // left port: clique minus the right port, plus the previous ring edge
				for v := base + 1; v < base+k-1; v++ {
					buf = append(buf, int32(v))
				}
				buf = append(buf, int32(((i+beta-1)%beta)*k+k-1))
			case k - 1: // right port: clique minus the left port, plus the next ring edge
				for v := base + 1; v < base+k-1; v++ {
					buf = append(buf, int32(v))
				}
				buf = append(buf, int32(((i+1)%beta)*k))
			default: // interior: the whole clique minus self
				for v := base; v < base+k; v++ {
					if v != u {
						buf = append(buf, int32(v))
					}
				}
			}
			slices.Sort(buf)
			return buf
		},
	}, nil
}
