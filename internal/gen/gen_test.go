package gen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

// requireInvariants asserts the universal generator contract: simple,
// connected, expected vertex count.
func requireInvariants(t *testing.T, g *graph.Graph, wantN int) {
	t.Helper()
	if g.N() != wantN {
		t.Fatalf("%s: n=%d, want %d", g.Name(), g.N(), wantN)
	}
	if !g.IsConnected() {
		t.Fatalf("%s: not connected", g.Name())
	}
	for u := 0; u < g.N(); u++ {
		row := g.Neighbors(u)
		for i, v := range row {
			if int(v) == u {
				t.Fatalf("%s: self-loop at %d", g.Name(), u)
			}
			if i > 0 && row[i-1] >= v {
				t.Fatalf("%s: duplicate/unsorted row at %d", g.Name(), u)
			}
		}
	}
}

func requireRegular(t *testing.T, g *graph.Graph, d int) {
	t.Helper()
	got, ok := g.Regular()
	if !ok || got != d {
		t.Fatalf("%s: regular=%v degree=%d, want %d-regular", g.Name(), ok, got, d)
	}
}

func TestComplete(t *testing.T) {
	g, err := Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, g, 7)
	requireRegular(t, g, 6)
	if g.M() != 21 {
		t.Errorf("K7 edges = %d, want 21", g.M())
	}
	if _, err := Complete(1); err == nil {
		t.Error("Complete(1) should fail")
	}
}

func TestPathAndCycle(t *testing.T) {
	p, err := Path(10)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, p, 10)
	if d, _ := p.Diameter(); d != 9 {
		t.Errorf("path diameter %d", d)
	}
	c, err := Cycle(10)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, c, 10)
	requireRegular(t, c, 2)
	if d, _ := c.Diameter(); d != 5 {
		t.Errorf("cycle diameter %d", d)
	}
	if _, err := Path(1); err == nil {
		t.Error("Path(1) should fail")
	}
	if _, err := Cycle(2); err == nil {
		t.Error("Cycle(2) should fail")
	}
}

func TestStar(t *testing.T) {
	g, err := Star(9)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, g, 9)
	if g.Degree(0) != 8 {
		t.Errorf("hub degree %d", g.Degree(0))
	}
	if g.Degree(3) != 1 {
		t.Errorf("leaf degree %d", g.Degree(3))
	}
}

func TestTorusAndGrid(t *testing.T) {
	tor, err := Torus(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, tor, 24)
	requireRegular(t, tor, 4)
	if tor.M() != 48 {
		t.Errorf("torus edges %d, want 48", tor.M())
	}
	gr, err := Grid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, gr, 12)
	if gr.M() != 17 {
		t.Errorf("grid edges %d, want 17", gr.M())
	}
	if _, err := Torus(2, 5); err == nil {
		t.Error("Torus(2,·) should fail")
	}
}

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, g, 16)
	requireRegular(t, g, 4)
	if !g.IsBipartite() {
		t.Error("hypercube must be bipartite")
	}
	if d, _ := g.Diameter(); d != 4 {
		t.Errorf("Q4 diameter %d, want 4", d)
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Hypercube(0) should fail")
	}
}

func TestLollipopAndDumbbell(t *testing.T) {
	l, err := Lollipop(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, l, 11)
	d, err := Dumbbell(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, d, 13)
	if diam, _ := d.Diameter(); diam != 6 {
		t.Errorf("dumbbell diameter %d, want 6", diam)
	}
}

func TestBarbell(t *testing.T) {
	g, err := Barbell(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, g, 40)
	// Near-regular: interior degree k−1=7, ports 8.
	h := g.DegreeHistogram()
	if h[7] != 32 || h[8] != 8 {
		t.Errorf("barbell degree histogram %v", h)
	}
	// Diameter: cross 5 cliques = 2 hops inside each end + bridges.
	if d, _ := g.Diameter(); d < 5 || d > 3*5 {
		t.Errorf("barbell diameter %d out of expected range", d)
	}
	if _, err := Barbell(1, 3); err != nil {
		t.Errorf("single-clique barbell should work: %v", err)
	}
}

func TestRingOfCliques(t *testing.T) {
	g, err := RingOfCliques(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, g, 24)
	requireRegular(t, g, 5) // exactly (k−1)-regular by construction
	if _, err := RingOfCliques(2, 6); err == nil {
		t.Error("RingOfCliques(2,·) should fail")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {16, 5}, {30, 6}} {
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		requireInvariants(t, g, tc.n)
		requireRegular(t, g, tc.d)
	}
	if _, err := RandomRegular(7, 3, rng); err == nil {
		t.Error("odd n·d should fail")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Error("d ≥ n should fail")
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a, err := RandomRegular(20, 4, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomRegular(20, 4, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ {
		ra, rb := a.Neighbors(u), b.Neighbors(u)
		if len(ra) != len(rb) {
			t.Fatal("nondeterministic generator")
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatal("nondeterministic generator")
			}
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := ErdosRenyi(40, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, g, 40)
	if _, err := ErdosRenyi(3, 0, rng); err == nil {
		t.Error("p=0 should fail")
	}
}

// TestErdosRenyiFailureNamesParameters: the connectivity-failure error must
// carry n, p and the attempt budget (matching RandomRegular's style), so a
// caller who chose p below the ln(n)/n threshold can see why.
func TestErdosRenyiFailureNamesParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, err := ErdosRenyi(50, 0.01, rng) // far below the connectivity threshold
	if err == nil {
		t.Fatal("sub-threshold G(n,p) unexpectedly connected in every attempt")
	}
	msg := err.Error()
	for _, want := range []string{"n=50", "p=0.01", "100 attempts"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestRingOfExpanders(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := RingOfExpanders(4, 12, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	requireInvariants(t, g, 48)
	requireRegular(t, g, 4)
	if _, err := RingOfExpanders(2, 12, 4, rng); err == nil {
		t.Error("beta < 3 should fail")
	}
}
