package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Complete returns the complete graph K_n (n ≥ 2). Both the mixing time and
// the local mixing time of K_n are Θ(1) (§2.3 a).
func Complete(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: Complete needs n ≥ 2, got %d", n)
	}
	b := graph.NewBuilder(n)
	b.SetName(fmt.Sprintf("complete(n=%d)", n))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build(), nil
}

// Path returns the path P_n (n ≥ 2). τ_mix = Θ(n²); the local mixing time is
// Θ((n/β)²) (§2.3 c).
func Path(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: Path needs n ≥ 2, got %d", n)
	}
	b := graph.NewBuilder(n)
	b.SetName(fmt.Sprintf("path(n=%d)", n))
	for u := 0; u+1 < n; u++ {
		b.AddEdge(u, u+1)
	}
	return b.Build(), nil
}

// Cycle returns the cycle C_n (n ≥ 3). 2-regular; bipartite iff n is even.
func Cycle(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: Cycle needs n ≥ 3, got %d", n)
	}
	b := graph.NewBuilder(n)
	b.SetName(fmt.Sprintf("cycle(n=%d)", n))
	for u := 0; u < n; u++ {
		b.AddEdge(u, (u+1)%n)
	}
	return b.Build(), nil
}

// Star returns the star K_{1,n-1}: vertex 0 is the hub. Deliberately
// irregular — used to exercise non-regular code paths and error handling.
func Star(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: Star needs n ≥ 2, got %d", n)
	}
	b := graph.NewBuilder(n)
	b.SetName(fmt.Sprintf("star(n=%d)", n))
	for u := 1; u < n; u++ {
		b.AddEdge(0, u)
	}
	return b.Build(), nil
}

// Torus returns the rows×cols 2-dimensional torus (4-regular when both
// dimensions are ≥ 3). τ_mix = Θ(max(rows, cols)²) for square tori.
func Torus(rows, cols int) (*graph.Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("gen: Torus needs rows, cols ≥ 3, got %d×%d", rows, cols)
	}
	b := graph.NewBuilder(rows * cols)
	b.SetName(fmt.Sprintf("torus(%dx%d)", rows, cols))
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id((r+1)%rows, c))
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
		}
	}
	return b.Build(), nil
}

// Grid returns the rows×cols 2-dimensional grid (no wraparound, irregular at
// the border).
func Grid(rows, cols int) (*graph.Graph, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("gen: Grid needs rows, cols ≥ 2, got %d×%d", rows, cols)
	}
	b := graph.NewBuilder(rows * cols)
	b.SetName(fmt.Sprintf("grid(%dx%d)", rows, cols))
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	return b.Build(), nil
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices
// (dim-regular, bipartite — a natural test for the lazy-walk requirement).
func Hypercube(dim int) (*graph.Graph, error) {
	if dim < 1 || dim > 24 {
		return nil, fmt.Errorf("gen: Hypercube needs 1 ≤ dim ≤ 24, got %d", dim)
	}
	n := 1 << dim
	b := graph.NewBuilder(n)
	b.SetName(fmt.Sprintf("hypercube(dim=%d)", dim))
	for u := 0; u < n; u++ {
		for bit := 0; bit < dim; bit++ {
			v := u ^ (1 << bit)
			if v > u {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build(), nil
}

// Lollipop returns the classic lollipop graph: a clique on cliqueSize
// vertices with a path of pathLen extra vertices attached to clique vertex 0.
// A standard slow-mixing benchmark family.
func Lollipop(cliqueSize, pathLen int) (*graph.Graph, error) {
	if cliqueSize < 3 || pathLen < 1 {
		return nil, fmt.Errorf("gen: Lollipop needs cliqueSize ≥ 3 and pathLen ≥ 1, got %d, %d", cliqueSize, pathLen)
	}
	n := cliqueSize + pathLen
	b := graph.NewBuilder(n)
	b.SetName(fmt.Sprintf("lollipop(clique=%d,path=%d)", cliqueSize, pathLen))
	for u := 0; u < cliqueSize; u++ {
		for v := u + 1; v < cliqueSize; v++ {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge(0, cliqueSize)
	for u := cliqueSize; u+1 < n; u++ {
		b.AddEdge(u, u+1)
	}
	return b.Build(), nil
}

// Dumbbell returns two cliques of size cliqueSize joined by a path of
// bridgeLen intermediate vertices (bridgeLen may be 0 for a single bridging
// edge). The classical "barbell": τ_mix = Θ(n²)-ish, local mixing O(1).
func Dumbbell(cliqueSize, bridgeLen int) (*graph.Graph, error) {
	if cliqueSize < 3 || bridgeLen < 0 {
		return nil, fmt.Errorf("gen: Dumbbell needs cliqueSize ≥ 3, bridgeLen ≥ 0, got %d, %d", cliqueSize, bridgeLen)
	}
	n := 2*cliqueSize + bridgeLen
	b := graph.NewBuilder(n)
	b.SetName(fmt.Sprintf("dumbbell(clique=%d,bridge=%d)", cliqueSize, bridgeLen))
	clique := func(base int) {
		for u := 0; u < cliqueSize; u++ {
			for v := u + 1; v < cliqueSize; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
	}
	clique(0)
	clique(cliqueSize + bridgeLen)
	left, right := 0, cliqueSize+bridgeLen
	prev := left
	for i := 0; i < bridgeLen; i++ {
		b.AddEdge(prev, cliqueSize+i)
		prev = cliqueSize + i
	}
	b.AddEdge(prev, right)
	return b.Build(), nil
}

// Barbell returns the β-barbell graph of Figure 1: a path of beta cliques,
// each of size cliqueSize, with consecutive cliques joined by a single edge
// between dedicated port vertices. Vertex layout: clique i occupies
// [i·k, (i+1)·k); its right port is i·k + k−1 and its left port is i·k.
// Nearly regular: interior clique vertices have degree k−1, ports k.
// Local mixing time is O(1) while the mixing time is Ω(β²) (§2.3 d).
func Barbell(beta, cliqueSize int) (*graph.Graph, error) {
	if beta < 1 || cliqueSize < 3 {
		return nil, fmt.Errorf("gen: Barbell needs beta ≥ 1, cliqueSize ≥ 3, got %d, %d", beta, cliqueSize)
	}
	k := cliqueSize
	n := beta * k
	b := graph.NewBuilder(n)
	b.SetName(fmt.Sprintf("barbell(beta=%d,k=%d)", beta, k))
	for i := 0; i < beta; i++ {
		base := i * k
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
		if i+1 < beta {
			b.AddEdge(base+k-1, base+k) // right port of clique i to left port of clique i+1
		}
	}
	return b.Build(), nil
}

// RingOfCliques returns a cycle of beta cliques of size cliqueSize in which
// the internal edge between each clique's two port vertices is removed, so
// the graph is exactly (cliqueSize−1)-regular. This is the "β equal-sized
// components connected via a ring" family the paper names as having a large
// mixing/local-mixing gap, and is the regular workhorse for Theorem 1
// experiments (the approximation algorithm assumes regular graphs).
// Requires beta ≥ 3 so port pairs are distinct, and cliqueSize ≥ 4 so the
// clique stays connected after the port edge is removed.
func RingOfCliques(beta, cliqueSize int) (*graph.Graph, error) {
	if beta < 3 || cliqueSize < 4 {
		return nil, fmt.Errorf("gen: RingOfCliques needs beta ≥ 3, cliqueSize ≥ 4, got %d, %d", beta, cliqueSize)
	}
	k := cliqueSize
	n := beta * k
	b := graph.NewBuilder(n)
	b.SetName(fmt.Sprintf("ringcliques(beta=%d,k=%d)", beta, k))
	for i := 0; i < beta; i++ {
		base := i * k
		// Ports: left = base+0, right = base+k-1. Omit the edge {left,right}.
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				if u == 0 && v == k-1 {
					continue
				}
				b.AddEdge(base+u, base+v)
			}
		}
		next := ((i + 1) % beta) * k
		b.AddEdge(base+k-1, next) // right port of clique i to left port of clique i+1
	}
	return b.Build(), nil
}

// RandomRegular returns a random d-regular simple graph on n vertices via
// the pairing model with restarts, rejecting self-loops, parallel edges and
// disconnected outcomes. Random d-regular graphs are expanders with high
// probability for d ≥ 3, so this is the paper's §2.3(b) family.
// n·d must be even; d < n.
func RandomRegular(n, d int, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 || d < 1 || d >= n {
		return nil, fmt.Errorf("gen: RandomRegular needs n ≥ 2 and 1 ≤ d < n, got n=%d d=%d", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: RandomRegular needs n·d even, got n=%d d=%d", n, d)
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := tryPairing(n, d, rng)
		if ok && g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: RandomRegular(n=%d, d=%d) failed after %d attempts", n, d, maxAttempts)
}

// tryPairing runs one round of the configuration model — n·d stubs shuffled
// and paired — followed by switching repair: conflicting pairs (self-loops
// or duplicate edges) are resolved by 2-swaps with random good pairs, the
// standard McKay–Wormald style fix that keeps the degree sequence intact.
// The attempt fails only if repair stalls.
func tryPairing(n, d int, rng *rand.Rand) (*graph.Graph, bool) {
	pairs := make([][2]int32, 0, n*d/2)
	stubs := make([]int32, n*d)
	for u := 0; u < n; u++ {
		for j := 0; j < d; j++ {
			stubs[u*d+j] = int32(u)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i < len(stubs); i += 2 {
		pairs = append(pairs, [2]int32{stubs[i], stubs[i+1]})
	}
	type edge struct{ u, v int32 }
	key := func(u, v int32) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	count := make(map[edge]int, len(pairs))
	bad := func(p [2]int32) bool {
		return p[0] == p[1] || count[key(p[0], p[1])] > 1
	}
	for _, p := range pairs {
		if p[0] != p[1] {
			count[key(p[0], p[1])]++
		}
	}
	// Repair loop: while some pair is bad, 2-swap it with a random pair.
	budget := 200 * len(pairs)
	for {
		badIdx := -1
		for i, p := range pairs {
			if bad(p) {
				badIdx = i
				break
			}
		}
		if badIdx < 0 {
			break
		}
		if budget <= 0 {
			return nil, false
		}
		budget--
		j := rng.Intn(len(pairs))
		if j == badIdx {
			continue
		}
		a, b := pairs[badIdx], pairs[j]
		// Propose (a0,b0),(a1,b1) or (a0,b1),(a1,b0), chosen at random.
		n1, n2 := [2]int32{a[0], b[0]}, [2]int32{a[1], b[1]}
		if rng.Intn(2) == 0 {
			n1, n2 = [2]int32{a[0], b[1]}, [2]int32{a[1], b[0]}
		}
		if n1[0] == n1[1] || n2[0] == n2[1] {
			continue
		}
		// Apply tentatively and verify no new conflicts.
		rm := func(p [2]int32) {
			if p[0] != p[1] {
				count[key(p[0], p[1])]--
			}
		}
		add := func(p [2]int32) {
			if p[0] != p[1] {
				count[key(p[0], p[1])]++
			}
		}
		rm(a)
		rm(b)
		if count[key(n1[0], n1[1])] > 0 || count[key(n2[0], n2[1])] > 0 || key(n1[0], n1[1]) == key(n2[0], n2[1]) {
			add(a)
			add(b)
			continue
		}
		add(n1)
		add(n2)
		pairs[badIdx], pairs[j] = n1, n2
	}
	b := graph.NewBuilder(n)
	b.SetName(fmt.Sprintf("random-regular(n=%d,d=%d)", n, d))
	for _, p := range pairs {
		b.AddEdge(int(p[0]), int(p[1]))
	}
	return b.Build(), true
}

// ErdosRenyi returns a connected sample of G(n, p), retrying until connected.
// Returns an error if connectivity is not achieved in a bounded number of
// attempts (caller chose p below the connectivity threshold).
func ErdosRenyi(n int, p float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 || p <= 0 || p > 1 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs n ≥ 2 and p ∈ (0,1], got n=%d p=%g", n, p)
	}
	const maxAttempts = 100
	for attempt := 0; attempt < maxAttempts; attempt++ {
		b := graph.NewBuilder(n)
		b.SetName(fmt.Sprintf("gnp(n=%d,p=%.4f)", n, p))
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.Build()
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: ErdosRenyi(n=%d, p=%g) failed to produce a connected graph after %d attempts (p below the connectivity threshold ≈ ln(n)/n?)", n, p, maxAttempts)
}

// RingOfExpanders returns beta random d-regular expanders of size
// cliqueSize each, arranged in a ring: in each block the edge between the
// two port vertices (0 and cliqueSize−1 of the block) is replaced if present,
// keeping the graph exactly d-regular. This scales the Theorem 1 workload to
// sizes where Θ(k²) clique edges would be too many.
func RingOfExpanders(beta, blockSize, d int, rng *rand.Rand) (*graph.Graph, error) {
	if beta < 3 || blockSize < d+1 || d < 3 {
		return nil, fmt.Errorf("gen: RingOfExpanders needs beta ≥ 3, blockSize > d ≥ 3, got beta=%d blockSize=%d d=%d", beta, blockSize, d)
	}
	if blockSize*d%2 != 0 {
		return nil, fmt.Errorf("gen: RingOfExpanders needs blockSize·d even, got blockSize=%d d=%d", blockSize, d)
	}
	n := beta * blockSize
	b := graph.NewBuilder(n)
	b.SetName(fmt.Sprintf("ringexpanders(beta=%d,block=%d,d=%d)", beta, blockSize, d))
	for i := 0; i < beta; i++ {
		base := i * blockSize
		left, right := 0, blockSize-1
		// Sample a block whose ports are adjacent, then drop that edge and
		// wire the ports to the neighboring blocks: degrees stay exactly d.
		var block *graph.Graph
		for {
			g, err := RandomRegular(blockSize, d, rng)
			if err != nil {
				return nil, err
			}
			if g.HasEdge(left, right) {
				// Check the block stays connected without the port edge.
				if blockConnectedWithout(g, left, right) {
					block = g
					break
				}
			}
		}
		for u := 0; u < blockSize; u++ {
			for _, v := range block.Neighbors(u) {
				if int(v) > u {
					if u == left && int(v) == right {
						continue
					}
					b.AddEdge(base+u, base+int(v))
				}
			}
		}
		next := ((i + 1) % beta) * blockSize
		b.AddEdge(base+right, next+left)
	}
	return b.Build(), nil
}

// blockConnectedWithout reports whether g stays connected after removing the
// edge {a, b}.
func blockConnectedWithout(g *graph.Graph, a, b int) bool {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int{0}
	visited := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, vv := range g.Neighbors(u) {
			v := int(vv)
			if (u == a && v == b) || (u == b && v == a) {
				continue
			}
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				visited++
				queue = append(queue, v)
			}
		}
	}
	return visited == n
}
