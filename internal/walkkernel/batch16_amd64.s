// SSE2 inner loop of the 16-lane batched walk step. See batch16_amd64.go
// for the contract and batch16_generic.go for the reference semantics: for
// each output vertex v in [lo,hi), acc starts at zero and accumulates
// acc[b] += src[u*16+b] * inv[u] over the CSR row of v (multiply then add,
// row order), optionally mixed as 0.5*src[v*16+b] + 0.5*acc[b] for the lazy
// chain, then stored to dst[v*16:]. Eight XMM accumulators hold the 16
// lanes; everything is SSE2 (amd64 baseline), MOVUPD throughout, so no CPU
// feature detection is required.

#include "textflag.h"

DATA half16<>+0x00(SB)/8, $0x3FE0000000000000 // 0.5
DATA half16<>+0x08(SB)/8, $0x3FE0000000000000
GLOBL half16<>(SB), RODATA, $16

DATA absmask16<>+0x00(SB)/8, $0x7FFFFFFFFFFFFFFF // clears the sign bit
DATA absmask16<>+0x08(SB)/8, $0x7FFFFFFFFFFFFFFF
GLOBL absmask16<>(SB), RODATA, $16

// func applyBatch16Asm(dst, src, inv *float64, offsets, edges *int32, lo, hi, lazy int64)
TEXT ·applyBatch16Asm(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), R8
	MOVQ src+8(FP), R9
	MOVQ inv+16(FP), R10
	MOVQ offsets+24(FP), R11
	MOVQ edges+32(FP), R12
	MOVQ lo+40(FP), CX
	MOVQ hi+48(FP), DX
	MOVQ lazy+56(FP), R13
	MOVUPD half16<>(SB), X15

vertex_loop:
	CMPQ CX, DX
	JGE  done

	// Row bounds: SI = &edges[offsets[v]], DI = degree(v).
	MOVLQSX 0(R11)(CX*4), AX
	MOVLQSX 4(R11)(CX*4), DI
	SUBQ    AX, DI
	LEAQ    0(R12)(AX*4), SI

	// acc = 0 (X0..X7 hold lanes 0..15, two per register).
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

	TESTQ DI, DI
	JZ    row_done

edge_loop:
	MOVLQSX  0(SI), AX          // u
	ADDQ     $4, SI
	MOVSD    0(R10)(AX*8), X8   // w = inv[u]
	UNPCKLPD X8, X8             // broadcast w to both lanes
	SHLQ     $4, AX             // u*16
	LEAQ     0(R9)(AX*8), BX    // &src[u*16]

	MOVUPD 0(BX), X9
	MULPD  X8, X9
	ADDPD  X9, X0
	MOVUPD 16(BX), X10
	MULPD  X8, X10
	ADDPD  X10, X1
	MOVUPD 32(BX), X11
	MULPD  X8, X11
	ADDPD  X11, X2
	MOVUPD 48(BX), X12
	MULPD  X8, X12
	ADDPD  X12, X3
	MOVUPD 64(BX), X9
	MULPD  X8, X9
	ADDPD  X9, X4
	MOVUPD 80(BX), X10
	MULPD  X8, X10
	ADDPD  X10, X5
	MOVUPD 96(BX), X11
	MULPD  X8, X11
	ADDPD  X11, X6
	MOVUPD 112(BX), X12
	MULPD  X8, X12
	ADDPD  X12, X7

	DECQ DI
	JNZ  edge_loop

row_done:
	TESTQ R13, R13
	JZ    store

	// Lazy mix: acc = 0.5*src[v*16+b] + 0.5*acc (addition order is
	// bitwise-irrelevant for finite IEEE doubles).
	MOVQ CX, AX
	SHLQ $4, AX
	LEAQ 0(R9)(AX*8), BX // &src[v*16]

	MULPD  X15, X0
	MOVUPD 0(BX), X9
	MULPD  X15, X9
	ADDPD  X9, X0
	MULPD  X15, X1
	MOVUPD 16(BX), X10
	MULPD  X15, X10
	ADDPD  X10, X1
	MULPD  X15, X2
	MOVUPD 32(BX), X11
	MULPD  X15, X11
	ADDPD  X11, X2
	MULPD  X15, X3
	MOVUPD 48(BX), X12
	MULPD  X15, X12
	ADDPD  X12, X3
	MULPD  X15, X4
	MOVUPD 64(BX), X9
	MULPD  X15, X9
	ADDPD  X9, X4
	MULPD  X15, X5
	MOVUPD 80(BX), X10
	MULPD  X15, X10
	ADDPD  X10, X5
	MULPD  X15, X6
	MOVUPD 96(BX), X11
	MULPD  X15, X11
	ADDPD  X11, X6
	MULPD  X15, X7
	MOVUPD 112(BX), X12
	MULPD  X15, X12
	ADDPD  X12, X7

store:
	MOVQ CX, AX
	SHLQ $4, AX
	LEAQ 0(R8)(AX*8), BX // &dst[v*16]

	MOVUPD X0, 0(BX)
	MOVUPD X1, 16(BX)
	MOVUPD X2, 32(BX)
	MOVUPD X3, 48(BX)
	MOVUPD X4, 64(BX)
	MOVUPD X5, 80(BX)
	MOVUPD X6, 96(BX)
	MOVUPD X7, 112(BX)

	INCQ CX
	JMP  vertex_loop

done:
	RET

// func l1Accum16Asm(p, target, acc *float64, lo, hi int64)
//
// acc[b] += |p[v*16+b] − target[v]| for v in [lo,hi), b in [0,16). The
// per-lane operation (subtract, clear sign bit, add) is exactly the generic
// Go sequence acc[b] += math.Abs(row[b] − tv), so partial sums are bitwise
// identical to it. Callers keep the early-abort logic in Go and invoke this
// per stride.
TEXT ·l1Accum16Asm(SB), NOSPLIT, $0-40
	MOVQ p+0(FP), R8
	MOVQ target+8(FP), R9
	MOVQ acc+16(FP), R10
	MOVQ lo+24(FP), CX
	MOVQ hi+32(FP), DX
	MOVUPD absmask16<>(SB), X15

	// Load the 16 running sums.
	MOVUPD 0(R10), X0
	MOVUPD 16(R10), X1
	MOVUPD 32(R10), X2
	MOVUPD 48(R10), X3
	MOVUPD 64(R10), X4
	MOVUPD 80(R10), X5
	MOVUPD 96(R10), X6
	MOVUPD 112(R10), X7

l1_vertex_loop:
	CMPQ CX, DX
	JGE  l1_done

	MOVSD    0(R9)(CX*8), X8 // tv = target[v]
	UNPCKLPD X8, X8
	MOVQ     CX, AX
	SHLQ     $4, AX
	LEAQ     0(R8)(AX*8), BX // &p[v*16]

	MOVUPD 0(BX), X9
	SUBPD  X8, X9
	ANDPD  X15, X9
	ADDPD  X9, X0
	MOVUPD 16(BX), X10
	SUBPD  X8, X10
	ANDPD  X15, X10
	ADDPD  X10, X1
	MOVUPD 32(BX), X11
	SUBPD  X8, X11
	ANDPD  X15, X11
	ADDPD  X11, X2
	MOVUPD 48(BX), X12
	SUBPD  X8, X12
	ANDPD  X15, X12
	ADDPD  X12, X3
	MOVUPD 64(BX), X9
	SUBPD  X8, X9
	ANDPD  X15, X9
	ADDPD  X9, X4
	MOVUPD 80(BX), X10
	SUBPD  X8, X10
	ANDPD  X15, X10
	ADDPD  X10, X5
	MOVUPD 96(BX), X11
	SUBPD  X8, X11
	ANDPD  X15, X11
	ADDPD  X11, X6
	MOVUPD 112(BX), X12
	SUBPD  X8, X12
	ANDPD  X15, X12
	ADDPD  X12, X7

	INCQ CX
	JMP  l1_vertex_loop

l1_done:
	MOVUPD X0, 0(R10)
	MOVUPD X1, 16(R10)
	MOVUPD X2, 32(R10)
	MOVUPD X3, 48(R10)
	MOVUPD X4, 64(R10)
	MOVUPD X5, 80(R10)
	MOVUPD X6, 96(R10)
	MOVUPD X7, 112(R10)
	RET
