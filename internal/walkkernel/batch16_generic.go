//go:build !amd64

package walkkernel

import "math"

// l1Accum16 accumulates acc[b] += |p[v*16+b] − target[v]| over [lo,hi); the
// portable twin of the amd64 SSE2 accumulator.
func l1Accum16(p, target []float64, acc *[BatchWidth]float64, lo, hi int) {
	for v := lo; v < hi; v++ {
		tv := target[v]
		row := (*[BatchWidth]float64)(p[v*BatchWidth:])
		for b := 0; b < BatchWidth; b++ {
			acc[b] += math.Abs(row[b] - tv)
		}
	}
}

// applyBatch16Range is the portable BatchWidth specialization: fixed-size
// array pointers eliminate the bounds checks of the generic-width loop. The
// per-lane rounding sequence (zeroed accumulator, multiply-then-add in CSR
// row order) matches the amd64 SSE2 kernel exactly.
func (k *Kernel) applyBatch16Range(dst, src []float64, lazy bool, lo, hi int32) {
	const bw = BatchWidth
	offsets, edges, inv := k.offsets, k.edges, k.inv
	var acc [bw]float64
	for v := lo; v < hi; v++ {
		acc = [bw]float64{}
		for _, u := range edges[offsets[v]:offsets[v+1]] {
			w := inv[u]
			s := (*[bw]float64)(src[int(u)*bw:])
			for b := 0; b < bw; b++ {
				acc[b] += s[b] * w
			}
		}
		if lazy {
			pv := (*[bw]float64)(src[int(v)*bw:])
			for b := 0; b < bw; b++ {
				acc[b] = 0.5*pv[b] + 0.5*acc[b]
			}
		}
		*(*[bw]float64)(dst[int(v)*bw:]) = acc
	}
}
