package walkkernel

import "math"

// redGrain is the fixed vertex-chunk size of the reduction grid. Reductions
// (unlike the pull step) accumulate across vertices, so bit-identical
// results for every worker count require a partition that does not depend on
// the worker count: partials are always computed per redGrain-sized chunk
// and merged in chunk order.
const redGrain = 2048

// MultiWalk evolves `width` source distributions simultaneously in a
// struct-of-arrays layout: lane b of vertex v lives at p[v*width+b]. One
// edge pass advances every lane, amortizing all index arithmetic and giving
// the inner loop unit stride; each lane is bit-identical to a dense
// single-source Walk. A MultiWalk is reusable via Reset, so a many-source
// sweep allocates its two n·width buffers once. Not safe for concurrent
// use.
type MultiWalk struct {
	k     *Kernel
	width int
	lazy  bool
	t     int
	p     []float64
	next  []float64

	ap  applier
	red redJob
	rwg waitGroup
}

// NewMultiWalk allocates a batch of the given lane width over the kernel's
// graph. Lanes start all-zero; seed them with Reset.
func (k *Kernel) NewMultiWalk(width int, lazy bool) *MultiWalk {
	m := &MultiWalk{
		k:     k,
		width: width,
		lazy:  lazy,
		p:     make([]float64, k.n*width),
		next:  make([]float64, k.n*width),
	}
	m.red.m = m
	return m
}

// Width returns the lane count.
func (m *MultiWalk) Width() int { return m.width }

// T returns the number of steps taken since the last Reset.
func (m *MultiWalk) T() int { return m.t }

// Reset zeroes every lane, then seeds lane b with p_0 = e_{sources[b]}.
// len(sources) may be smaller than the width; the surplus lanes stay
// identically zero through the (linear) walk operator, so they cost only
// arithmetic on zeros.
func (m *MultiWalk) Reset(sources []int) {
	if len(sources) > m.width {
		panic("walkkernel: Reset with more sources than lanes")
	}
	for i := range m.p {
		m.p[i] = 0
	}
	for b, s := range sources {
		m.p[s*m.width+b] = 1
	}
	m.t = 0
}

// Step advances every lane one walk step.
func (m *MultiWalk) Step() {
	m.ap.job.k = m.k
	m.ap.job.dst, m.ap.job.src = m.next, m.p
	m.ap.job.bw = m.width
	m.ap.job.lazy = m.lazy
	m.ap.dispatch()
	m.p, m.next = m.next, m.p
	m.t++
}

// Lane copies lane b's distribution into dst (length n).
func (m *MultiWalk) Lane(b int, dst []float64) {
	bw := m.width
	for v := 0; v < m.k.n; v++ {
		dst[v] = m.p[v*bw+b]
	}
}

// L1ToTarget writes out[b] = ‖p_b − target‖₁ for each lane b < len(out).
// The sum is accumulated per fixed redGrain chunk and merged in chunk order,
// so the result is bit-identical for every worker count.
func (m *MultiWalk) L1ToTarget(target []float64, out []float64) {
	n, bw := m.k.n, m.width
	chunks := (n + redGrain - 1) / redGrain
	if chunks < 1 {
		chunks = 1
	}
	if cap(m.red.partials) < chunks*bw {
		m.red.partials = make([]float64, chunks*bw)
	}
	m.red.partials = m.red.partials[:chunks*bw]
	m.red.target = target
	if m.k.serial || chunks == 1 {
		for c := 0; c < chunks; c++ {
			lo := c * redGrain
			hi := lo + redGrain
			if hi > n {
				hi = n
			}
			m.red.RunRange(int32(lo), int32(hi))
		}
	} else {
		ParallelFor(&m.rwg, &m.red, n, redGrain, m.k.Blocks())
	}
	m.red.target = nil
	for b := range out {
		s := 0.0
		for c := 0; c < chunks; c++ {
			s += m.red.partials[c*bw+b]
		}
		out[b] = s
	}
}

// AllBelow reports whether every lane's L1 distance to target is < eps.
// Because Lemma 1 makes each lane's distance monotone in t, a many-source
// mixing sweep only needs this predicate per step (the batch mixes exactly
// when its slowest lane does), not the full per-lane distances — and the
// predicate admits an exact early abort: partial sums only grow, so the scan
// stops the moment any lane's partial reaches eps. In the (common) unmixed
// regime that is a small prefix of the vertices. The abort never changes the
// answer, so the result is schedule- and worker-count independent.
func (m *MultiWalk) AllBelow(target []float64, eps float64) bool {
	n, bw := m.k.n, m.width
	if cap(m.red.partials) < bw {
		m.red.partials = make([]float64, bw)
	}
	acc := m.red.partials[:bw]
	for b := range acc {
		acc[b] = 0
	}
	p := m.p
	const stride = 256 // vertices between abort checks
	for lo := 0; lo < n; lo += stride {
		hi := lo + stride
		if hi > n {
			hi = n
		}
		if bw == BatchWidth {
			l1Accum16(p, target, (*[BatchWidth]float64)(acc), lo, hi)
		} else {
			for v := lo; v < hi; v++ {
				tv := target[v]
				row := p[v*bw : v*bw+bw]
				_ = row[len(acc)-1]
				for b, pv := range row {
					acc[b] += math.Abs(pv - tv)
				}
			}
		}
		for b := range acc {
			if acc[b] >= eps {
				return false
			}
		}
	}
	return true
}

// redJob computes one reduction chunk: RunRange always receives exactly one
// redGrain-aligned chunk, identified by lo/redGrain.
type redJob struct {
	m        *MultiWalk
	target   []float64
	partials []float64 // chunks × width, chunk-major
}

func (j *redJob) RunRange(lo, hi int32) {
	bw := j.m.width
	acc := j.partials[int(lo)/redGrain*bw:]
	acc = acc[:bw]
	for b := range acc {
		acc[b] = 0
	}
	p := j.m.p
	for v := lo; v < hi; v++ {
		tv := j.target[v]
		row := p[int(v)*bw : int(v)*bw+bw]
		_ = row[len(acc)-1]
		for b, pv := range row {
			acc[b] += math.Abs(pv - tv)
		}
	}
}
