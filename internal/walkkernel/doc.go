// Package walkkernel is the shared high-performance random-walk kernel
// behind every centralized oracle in this repository (internal/exact,
// internal/spectral, internal/walkmc). It evolves probability distributions
// under the simple or lazy walk operator P(u,v) = 1/d(u) — the object all
// of the paper's definitions (§2.1) are stated about — with three
// complementary strategies:
//
//   - Dense pull: a blocked CSR "SpMV" that *gathers* into each output
//     vertex (dst[v] = Σ_{u∈N(v)} src[u]/d(u)) using precomputed inverse
//     degrees. Gathering instead of scattering means vertex blocks share no
//     output words, so blocks run in parallel on a worker pool with no
//     synchronization — and because each dst[v] is always accumulated in CSR
//     row order, the result is bit-identical for every worker count.
//   - Sparse frontier: while supp(p_t) is small (early steps of a
//     single-source walk) the kernel scatters from the frontier only,
//     touching O(vol(supp)) edges instead of all 2m. The mode switch depends
//     only on the walk state, never on the worker count, so results stay
//     deterministic.
//   - Batched MultiWalk: k source distributions evolved in one edge pass
//     with a struct-of-arrays layout (lane b of vertex v lives at p[v*k+b]),
//     amortizing every index lookup over k lanes. This turns many-source
//     workloads (GraphMixingTime, profile sweeps) into one cache-friendly
//     batch instead of k serial walks; each lane is bit-identical to the
//     dense pull single walk (there is an SSE2 inner loop on amd64, equally
//     bit-identical to the portable path — enforced by tests).
//
// A Kernel is an immutable plan (CSR views, inverse degrees, edge-balanced
// block cuts) and may be shared by any number of concurrent Walk/MultiWalk
// instances; the walks themselves are single-goroutine objects.
//
// Determinism guarantee: every kernel entry point — Apply, Walk.Step,
// MultiWalk.Step, L1ToTarget (fixed 2048-vertex reduction grid) — produces
// bit-identical float64 results for every worker count, and steady-state
// stepping is allocation-free; both properties are regression-tested.
package walkkernel
