package walkkernel

import (
	"runtime"

	"repro/internal/graph"
)

// maxBlocks caps the parallel block count; beyond this the dispatch
// overhead outweighs the win on every realistic graph.
const maxBlocks = 256

// parallelMinVerts is the graph size below which the kernel always runs its
// blocks on the calling goroutine (the block structure — and therefore the
// result — is identical either way).
const parallelMinVerts = 2048

// Kernel is an immutable walk plan for one graph: CSR views, precomputed
// inverse degrees and edge-balanced block cuts. Safe for concurrent use.
type Kernel struct {
	g       *graph.Graph
	n       int
	offsets []int32
	edges   []int32
	inv     []float64 // inv[u] = 1/d(u)
	cuts    []int32   // block boundaries over vertices, len blocks+1
	serial  bool      // run blocks in-caller (workers == 1 or tiny graph)
}

// New builds a kernel for g. workers ≤ 0 selects GOMAXPROCS. The worker
// count influences only the execution schedule, never the results.
func New(g *graph.Graph, workers int) *Kernel {
	n := g.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxBlocks {
		workers = maxBlocks
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	offsets, edges := g.CSR()
	k := &Kernel{
		g:       g,
		n:       n,
		offsets: offsets,
		edges:   edges,
		inv:     make([]float64, n),
		serial:  workers == 1 || n < parallelMinVerts,
	}
	for u := 0; u < n; u++ {
		if d := g.Degree(u); d > 0 {
			k.inv[u] = 1 / float64(d)
		}
	}
	k.cuts = edgeBalancedCuts(k.offsets, n, workers)
	return k
}

// Graph returns the underlying graph.
func (k *Kernel) Graph() *graph.Graph { return k.g }

// N returns the vertex count.
func (k *Kernel) N() int { return k.n }

// Blocks returns the number of parallel vertex blocks.
func (k *Kernel) Blocks() int { return len(k.cuts) - 1 }

// edgeBalancedCuts partitions [0,n) into at most `blocks` contiguous vertex
// ranges with roughly equal edge counts, so no worker owns a disproportionate
// share of the gather work.
func edgeBalancedCuts(offsets []int32, n, blocks int) []int32 {
	if n == 0 {
		return []int32{0, 0}
	}
	if blocks < 1 {
		blocks = 1
	}
	cuts := make([]int32, 1, blocks+1)
	total := int64(offsets[n])
	v := int32(0)
	for b := 1; b < blocks; b++ {
		// int64: total·b overflows int32 beyond ~2^31/blocks directed edges.
		target := int32(total * int64(b) / int64(blocks))
		for v < int32(n) && offsets[v] < target {
			v++
		}
		if v > cuts[len(cuts)-1] {
			cuts = append(cuts, v)
		}
	}
	cuts = append(cuts, int32(n))
	return cuts
}

// applyRange computes the dense pull step for output vertices [lo,hi):
// dst[v] = Σ_{u∈N(v)} src[u]·inv[u], halved and mixed with src[v]/2 for the
// lazy chain. Every dst word in the range is overwritten. The accumulation
// is strictly multiply-then-add in CSR row order — the identical rounding
// sequence as every batched path, including the SIMD one (packed mul/add;
// Go never fuses a mul+add on its own) — so a MultiWalk lane is
// bit-identical to this path.
func (k *Kernel) applyRange(dst, src []float64, lazy bool, lo, hi int32) {
	offsets, edges, inv := k.offsets, k.edges, k.inv
	for v := lo; v < hi; v++ {
		row := edges[offsets[v]:offsets[v+1]]
		s := 0.0
		for _, u := range row {
			s += src[u] * inv[u]
		}
		if lazy {
			s = 0.5*src[v] + 0.5*s
		}
		dst[v] = s
	}
}

// BatchWidth is the specialized lane count of the batched kernel: wide
// enough to amortize every neighbor lookup, narrow enough that a lane block
// is one register-resident accumulator array. MultiWalk supports any width,
// but this one runs the hand-specialized loop below.
const BatchWidth = 16

// applyBatchRange is applyRange over bw interleaved lanes: lane b of vertex
// v lives at v*bw+b. The accumulation per (v, b) is multiply-then-add in
// CSR row order — the same rounding sequence as applyRange and as the
// BatchWidth SIMD specialization — so every lane is bit-identical to a
// dense single walk for every worker count and on every architecture.
func (k *Kernel) applyBatchRange(dst, src []float64, bw int, lazy bool, lo, hi int32) {
	if bw == BatchWidth && len(k.edges) > 0 {
		k.applyBatch16Range(dst, src, lazy, lo, hi)
		return
	}
	offsets, edges, inv := k.offsets, k.edges, k.inv
	for v := lo; v < hi; v++ {
		d := dst[int(v)*bw : int(v)*bw+bw]
		for b := range d {
			d[b] = 0
		}
		row := edges[offsets[v]:offsets[v+1]]
		for _, u := range row {
			w := inv[u]
			s := src[int(u)*bw : int(u)*bw+bw]
			_ = s[len(d)-1]
			for b, dv := range d {
				d[b] = dv + s[b]*w
			}
		}
		if lazy {
			pv := src[int(v)*bw : int(v)*bw+bw]
			_ = pv[len(d)-1]
			for b, dv := range d {
				d[b] = 0.5*pv[b] + 0.5*dv
			}
		}
	}
}

// job is the persistent dispatch unit for a walk's dense step: it carries
// everything a pool worker needs, so steady-state steps allocate nothing.
type job struct {
	k        *Kernel
	dst, src []float64
	bw       int // batch width; 1 selects the scalar path
	lazy     bool
}

func (j *job) RunRange(lo, hi int32) {
	if j.bw == 1 {
		j.k.applyRange(j.dst, j.src, j.lazy, lo, hi)
	} else {
		j.k.applyBatchRange(j.dst, j.src, j.bw, j.lazy, lo, hi)
	}
}

// Apply performs one dense pull step dst ← P^T·src (every dst word is
// overwritten; dst and src must not alias). It is the raw operator shared by
// the oracles and the spectral package; src may be any vector, not only a
// distribution. Apply is not safe for concurrent use of the same two slices,
// but distinct callers may share the Kernel.
func (k *Kernel) Apply(dst, src []float64, lazy bool) {
	a := applier{job: job{k: k, dst: dst, src: src, bw: 1, lazy: lazy}}
	a.dispatch()
}

// applier couples a reusable job with a reusable WaitGroup; Walk and
// MultiWalk embed one so their steps stay allocation-free.
type applier struct {
	job job
	wg  waitGroup
}

// dispatch runs the job over the kernel's blocks — in-caller when the kernel
// is serial or has one block, on the shared pool otherwise. The block
// structure is fixed by the kernel, so the result never depends on the
// execution mode.
func (a *applier) dispatch() {
	k := a.job.k
	nb := len(k.cuts) - 1
	if k.serial || nb <= 1 {
		a.job.RunRange(0, int32(k.n))
		return
	}
	a.wg.Add(nb)
	for i := 0; i < nb; i++ {
		submit(&a.job, k.cuts[i], k.cuts[i+1], &a.wg)
	}
	a.wg.Wait()
}
