package walkkernel

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// refStep is the straightforward scatter reference the kernel must agree
// with (up to FP associativity, hence the tolerance).
func refStep(g *graph.Graph, p []float64, lazy bool) []float64 {
	n := g.N()
	next := make([]float64, n)
	for v := 0; v < n; v++ {
		if lazy {
			next[v] = p[v] / 2
		}
	}
	for u := 0; u < n; u++ {
		if p[u] == 0 {
			continue
		}
		share := p[u] / float64(g.Degree(u))
		if lazy {
			share /= 2
		}
		for _, v := range g.Neighbors(u) {
			next[v] += share
		}
	}
	return next
}

func testGraphs(t *testing.T) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var gs []*graph.Graph
	for _, mk := range []func() (*graph.Graph, error){
		func() (*graph.Graph, error) { return gen.Torus(8, 8) },
		func() (*graph.Graph, error) { return gen.Barbell(4, 8) },
		func() (*graph.Graph, error) { return gen.Star(17) },
		func() (*graph.Graph, error) { return gen.ErdosRenyi(60, 0.12, rng) },
		func() (*graph.Graph, error) { return gen.Path(33) },
	} {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	return gs
}

// TestWalkMatchesReference: sparse and dense modes both track the scatter
// reference within FP tolerance, for both chains.
func TestWalkMatchesReference(t *testing.T) {
	for _, g := range testGraphs(t) {
		for _, lazy := range []bool{false, true} {
			k := New(g, 1)
			w := k.NewWalk(0, lazy)
			ref := make([]float64, g.N())
			ref[0] = 1
			for step := 0; step < 40; step++ {
				for v := range ref {
					if math.Abs(ref[v]-w.P()[v]) > 1e-12 {
						t.Fatalf("%s lazy=%v t=%d v=%d: kernel %g, reference %g",
							g.Name(), lazy, step, v, w.P()[v], ref[v])
					}
				}
				ref = refStep(g, ref, lazy)
				w.Step()
			}
		}
	}
}

// TestWalkWorkerInvariance: distributions are bit-identical for every worker
// count, at every step, across the sparse→dense transition.
func TestWalkWorkerInvariance(t *testing.T) {
	for _, g := range testGraphs(t) {
		for _, lazy := range []bool{false, true} {
			for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0) + 1} {
				base := New(g, 1).NewWalk(0, lazy)
				w := New(g, workers).NewWalk(0, lazy)
				for step := 0; step < 30; step++ {
					for v, pv := range w.P() {
						if pv != base.P()[v] {
							t.Fatalf("%s lazy=%v workers=%d t=%d v=%d: %x != %x",
								g.Name(), lazy, workers, step, v, pv, base.P()[v])
						}
					}
					w.Step()
					base.Step()
				}
			}
		}
	}
}

// TestMultiWalkWorkerInvariance exercises the actually-parallel paths (the
// graph is above the serial threshold): lanes, L1ToTarget and AllBelow are
// bit-identical for every worker count.
func TestMultiWalkWorkerInvariance(t *testing.T) {
	g, err := gen.Torus(48, 48) // 2304 ≥ parallelMinVerts and > redGrain
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	target := make([]float64, n)
	for v := range target {
		target[v] = 1 / float64(n)
	}
	sources := make([]int, BatchWidth)
	for b := range sources {
		sources[b] = b * 97
	}
	run := func(workers int) ([]float64, []float64) {
		k := New(g, workers)
		mw := k.NewMultiWalk(BatchWidth, true)
		mw.Reset(sources)
		for step := 0; step < 50; step++ {
			mw.Step()
		}
		dist := make([]float64, BatchWidth)
		mw.L1ToTarget(target, dist)
		p := make([]float64, n*BatchWidth)
		copy(p, mw.p)
		return p, dist
	}
	refP, refDist := run(1)
	for _, workers := range []int{2, 5} {
		p, dist := run(workers)
		for i := range p {
			if p[i] != refP[i] {
				t.Fatalf("workers=%d: p[%d] = %x, want %x", workers, i, p[i], refP[i])
			}
		}
		for b := range dist {
			if dist[b] != refDist[b] {
				t.Fatalf("workers=%d: dist[%d] = %x, want %x", workers, b, dist[b], refDist[b])
			}
		}
	}
}

// TestMultiWalkLanesMatchDenseWalk: every lane of a batch is bit-identical
// to a dense single walk from the same source (the documented contract that
// ties the SIMD batch kernel to the scalar pull path).
func TestMultiWalkLanesMatchDenseWalk(t *testing.T) {
	for _, g := range testGraphs(t) {
		n := g.N()
		for _, lazy := range []bool{false, true} {
			k := New(g, 1)
			sources := make([]int, BatchWidth)
			walks := make([]*Walk, BatchWidth)
			for b := range sources {
				sources[b] = (b * 5) % n
				walks[b] = k.NewWalk(sources[b], lazy)
				walks[b].SetDist(walks[b].P()) // force dense from step 0
			}
			mw := k.NewMultiWalk(BatchWidth, lazy)
			mw.Reset(sources)
			lane := make([]float64, n)
			for step := 0; step < 25; step++ {
				for b := range sources {
					mw.Lane(b, lane)
					for v := range lane {
						if lane[v] != walks[b].P()[v] {
							t.Fatalf("%s lazy=%v t=%d lane=%d v=%d: batch %x, single %x",
								g.Name(), lazy, step, b, v, lane[v], walks[b].P()[v])
						}
					}
				}
				mw.Step()
				for b := range walks {
					walks[b].Step()
				}
			}
		}
	}
}

// TestMultiWalkGenericWidthMatches: a non-specialized width gives the same
// lanes as the BatchWidth path (bitwise: both are mul-then-add in row
// order).
func TestMultiWalkGenericWidthMatches(t *testing.T) {
	g, err := gen.Torus(6, 7)
	if err != nil {
		t.Fatal(err)
	}
	k := New(g, 1)
	sources := []int{0, 11, 17}
	m3 := k.NewMultiWalk(3, true)
	m3.Reset(sources)
	m16 := k.NewMultiWalk(BatchWidth, true)
	src16 := make([]int, BatchWidth)
	for b := range src16 {
		src16[b] = sources[b%len(sources)]
	}
	m16.Reset(src16)
	a, b := make([]float64, g.N()), make([]float64, g.N())
	for step := 0; step < 30; step++ {
		m3.Step()
		m16.Step()
		for lane := range sources {
			m3.Lane(lane, a)
			m16.Lane(lane, b)
			for v := range a {
				if a[v] != b[v] {
					t.Fatalf("t=%d lane=%d v=%d: width3 %x, width16 %x", step, lane, v, a[v], b[v])
				}
			}
		}
	}
}

// TestL1ToTargetAndAllBelow: the batched distances agree with a scalar
// reference, and AllBelow is consistent with them.
func TestL1ToTargetAndAllBelow(t *testing.T) {
	g, err := gen.Barbell(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	k := New(g, 1)
	mw := k.NewMultiWalk(BatchWidth, false)
	sources := make([]int, BatchWidth)
	for b := range sources {
		sources[b] = (b * 3) % n
	}
	mw.Reset(sources)
	target := make([]float64, n)
	for v := range target {
		target[v] = 1 / float64(n)
	}
	out := make([]float64, BatchWidth)
	lane := make([]float64, n)
	for step := 0; step < 20; step++ {
		mw.L1ToTarget(target, out)
		worst := 0.0
		for b := range sources {
			mw.Lane(b, lane)
			ref := 0.0
			for v := range lane {
				ref += math.Abs(lane[v] - target[v])
			}
			if math.Abs(ref-out[b]) > 1e-12 {
				t.Fatalf("t=%d lane=%d: L1ToTarget %g, reference %g", step, b, out[b], ref)
			}
			if ref > worst {
				worst = ref
			}
		}
		for _, eps := range []float64{worst * 0.99, worst * 1.01} {
			want := worst < eps
			if got := mw.AllBelow(target, eps); got != want {
				t.Fatalf("t=%d eps=%g: AllBelow=%v, want %v (worst %g)", step, eps, got, want, worst)
			}
		}
		mw.Step()
	}
}

// TestWalkStepAllocFree: after warmup (including the sparse→dense switch),
// Step performs zero allocations, for serial and parallel kernels.
func TestWalkStepAllocFree(t *testing.T) {
	g, err := gen.Torus(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		k := New(g, workers)
		w := k.NewWalk(0, true)
		w.StepN(64) // warm up: frontier growth and dense switch happen here
		if avg := testing.AllocsPerRun(50, w.Step); avg != 0 {
			t.Errorf("workers=%d: Walk.Step allocates %.1f/op in steady state", workers, avg)
		}
		mw := k.NewMultiWalk(BatchWidth, true)
		srcs := make([]int, BatchWidth)
		for b := range srcs {
			srcs[b] = b
		}
		mw.Reset(srcs)
		mw.Step()
		if avg := testing.AllocsPerRun(50, mw.Step); avg != 0 {
			t.Errorf("workers=%d: MultiWalk.Step allocates %.1f/op in steady state", workers, avg)
		}
	}
}

// TestParallelForCoversRange: every index is visited exactly once for any
// grain/worker combination.
func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 1000} {
		for _, workers := range []int{1, 2, 7} {
			for _, grain := range []int{0, 1, 64, 1024} {
				c := &coverJob{seen: make([]int32, n)}
				ParallelFor(&c.wg, c, n, grain, workers)
				for i, s := range c.seen {
					if s != 1 {
						t.Fatalf("n=%d workers=%d grain=%d: index %d visited %d times", n, workers, grain, i, s)
					}
				}
			}
		}
	}
}

type coverJob struct {
	wg   waitGroup
	seen []int32
}

func (c *coverJob) RunRange(lo, hi int32) {
	for i := lo; i < hi; i++ {
		c.seen[i]++ // ranges are disjoint, so no atomics needed
	}
}

// TestEdgeBalancedCuts: cuts are monotone, cover [0,n], and never exceed the
// requested block count.
func TestEdgeBalancedCuts(t *testing.T) {
	for _, g := range testGraphs(t) {
		for _, blocks := range []int{1, 2, 3, 8, 1000} {
			k := New(g, blocks)
			cuts := k.cuts
			if cuts[0] != 0 || cuts[len(cuts)-1] != int32(g.N()) {
				t.Fatalf("%s blocks=%d: cuts %v do not span [0,%d]", g.Name(), blocks, cuts, g.N())
			}
			for i := 1; i < len(cuts); i++ {
				if cuts[i] <= cuts[i-1] {
					t.Fatalf("%s blocks=%d: cuts %v not strictly increasing", g.Name(), blocks, cuts)
				}
			}
			if len(cuts)-1 > blocks {
				t.Fatalf("%s: %d blocks exceed requested %d", g.Name(), len(cuts)-1, blocks)
			}
		}
	}
}

// TestApplyMatchesWalkOperator: Kernel.Apply equals one reference step on an
// arbitrary (non-distribution) vector, as the spectral package requires.
func TestApplyMatchesWalkOperator(t *testing.T) {
	g, err := gen.Barbell(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, lazy := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			k := New(g, workers)
			y := make([]float64, n)
			k.Apply(y, x, lazy)
			ref := refStep(g, x, lazy)
			for v := range y {
				if math.Abs(y[v]-ref[v]) > 1e-12 {
					t.Fatalf("lazy=%v workers=%d v=%d: Apply %g, reference %g", lazy, workers, v, y[v], ref[v])
				}
			}
		}
	}
}
