//go:build amd64

package walkkernel

// applyBatch16Asm is the SSE2 inner loop of the BatchWidth batch step (see
// batch16_amd64.s). SSE2 is the amd64 baseline, so no feature detection is
// needed. Per output vertex it zeroes eight packed accumulators (16 lanes),
// then for each CSR neighbor performs eight MULPD+ADDPD pairs against the
// broadcast inverse degree — per lane exactly the multiply-then-add
// sequence of the generic Go code, so results are bit-identical to it and
// to the scalar single-walk path.
//
//go:noescape
func applyBatch16Asm(dst, src, inv *float64, offsets, edges *int32, lo, hi, lazy int64)

// applyBatch16Range dispatches the BatchWidth specialization to the SSE2
// kernel. Callers guarantee hi > lo and a non-empty edge set.
func (k *Kernel) applyBatch16Range(dst, src []float64, lazy bool, lo, hi int32) {
	lz := int64(0)
	if lazy {
		lz = 1
	}
	applyBatch16Asm(&dst[0], &src[0], &k.inv[0], &k.offsets[0], &k.edges[0], int64(lo), int64(hi), lz)
}

// l1Accum16Asm is the SSE2 absolute-difference accumulator (see
// batch16_amd64.s); bitwise identical to the generic Go loop.
//
//go:noescape
func l1Accum16Asm(p, target, acc *float64, lo, hi int64)

// l1Accum16 accumulates acc[b] += |p[v*16+b] − target[v]| over [lo,hi).
func l1Accum16(p, target []float64, acc *[BatchWidth]float64, lo, hi int) {
	if hi <= lo {
		return
	}
	l1Accum16Asm(&p[0], &target[0], &acc[0], int64(lo), int64(hi))
}
