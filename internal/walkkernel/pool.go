package walkkernel

import (
	"runtime"
	"sync"
)

// waitGroup is sync.WaitGroup; named so embedding stays greppable.
type waitGroup = sync.WaitGroup

// Runner is a unit of range-parallel work: RunRange must process exactly the
// half-open index range [lo, hi), touch no state shared with other ranges of
// the same dispatch, and never dispatch back into the pool (pool workers do
// not nest).
type Runner interface {
	RunRange(lo, hi int32)
}

// item is one queued range on the shared pool.
type item struct {
	r      Runner
	lo, hi int32
	wg     *sync.WaitGroup
}

var (
	poolOnce sync.Once
	poolCh   chan item
)

// submit queues one range on the shared pool, starting it on first use. The
// pool is package-global and sized to GOMAXPROCS: kernels are created per
// oracle call, so per-kernel goroutines would leak; a process-wide compute
// pool needs no lifecycle management and one channel send per block is the
// entire steady-state cost.
func submit(r Runner, lo, hi int32, wg *sync.WaitGroup) {
	poolOnce.Do(func() {
		w := runtime.GOMAXPROCS(0)
		poolCh = make(chan item, 4*w)
		for i := 0; i < w; i++ {
			go func() {
				for it := range poolCh {
					it.r.RunRange(it.lo, it.hi)
					it.wg.Done()
				}
			}()
		}
	})
	poolCh <- item{r: r, lo: lo, hi: hi, wg: wg}
}

// ParallelFor runs r over [0,n) in contiguous chunks of the given grain
// (grain ≤ 0 splits evenly across workers). The chunk grid depends only on
// (n, grain, workers), never on scheduling, so any per-chunk outputs are
// deterministic. workers ≤ 1, a single chunk, or n < grain run entirely on
// the calling goroutine. wg is the caller's reusable WaitGroup (it must be
// idle); passing it in keeps repeated dispatches allocation-free.
func ParallelFor(wg *sync.WaitGroup, r Runner, n, grain, workers int) {
	if grain <= 0 {
		if workers < 1 {
			workers = 1
		}
		grain = (n + workers - 1) / workers
	}
	if workers <= 1 || n <= grain {
		r.RunRange(0, int32(n))
		return
	}
	chunks := (n + grain - 1) / grain
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		submit(r, int32(lo), int32(hi), wg)
	}
	wg.Wait()
}
