package walkkernel

import (
	"slices"
)

// Walk evolves one probability distribution. It starts in sparse-frontier
// mode — scattering from supp(p_t) only, which is what makes early steps of
// a single-source walk O(vol(supp)) instead of O(m) — and switches to the
// dense pull kernel permanently once the frontier's edge volume reaches half
// of 2m. The switch depends only on the walk's own history, so a Walk is
// deterministic for every worker count. Not safe for concurrent use; share
// the Kernel instead and give each goroutine its own Walk.
type Walk struct {
	k    *Kernel
	lazy bool
	t    int
	p    []float64
	next []float64 // all-zero between sparse steps; scratch in dense mode

	dense        bool
	frontier     []int32 // supp(p_t), ascending
	nextFrontier []int32
	mark         []int32 // epoch stamps; avoids clearing a visited bitmap
	epoch        int32
	frontierVol  int64 // Σ_{u∈frontier} d(u)

	ap applier
}

// NewWalk starts a walk at source: p_0 = e_source. The source must be a
// valid vertex of a graph with no isolated vertices (callers validate; the
// exact package's constructors do).
func (k *Kernel) NewWalk(source int, lazy bool) *Walk {
	w := &Walk{
		k:           k,
		lazy:        lazy,
		p:           make([]float64, k.n),
		next:        make([]float64, k.n),
		frontier:    []int32{int32(source)},
		mark:        make([]int32, k.n),
		frontierVol: int64(k.offsets[source+1] - k.offsets[source]),
	}
	w.p[source] = 1
	return w
}

// T returns the number of steps taken so far.
func (w *Walk) T() int { return w.t }

// Lazy reports whether this is the lazy chain.
func (w *Walk) Lazy() bool { return w.lazy }

// P returns the current distribution p_t. The slice is owned by the walk and
// is invalidated by Step; callers who retain it must copy.
func (w *Walk) P() []float64 { return w.p }

// SetDist overwrites the current distribution (length n). The walk switches
// to dense mode since the new support is unknown. Used by tests and by
// callers that replay a checkpoint.
func (w *Walk) SetDist(p []float64) {
	copy(w.p, p)
	w.enterDense()
}

func (w *Walk) enterDense() {
	w.dense = true
	w.frontier, w.nextFrontier, w.mark = nil, nil, nil
}

// Step advances the walk one step.
func (w *Walk) Step() {
	if !w.dense && 2*w.frontierVol >= int64(len(w.k.edges)) {
		w.enterDense()
	}
	if w.dense {
		w.ap.job.k = w.k
		w.ap.job.dst, w.ap.job.src = w.next, w.p
		w.ap.job.bw = 1
		w.ap.job.lazy = w.lazy
		w.ap.dispatch()
		w.p, w.next = w.next, w.p
	} else {
		w.stepSparse()
	}
	w.t++
}

// StepN advances the walk k steps.
func (w *Walk) StepN(k int) {
	for i := 0; i < k; i++ {
		w.Step()
	}
}

// stepSparse scatters from the current frontier only. It runs on the calling
// goroutine: the whole point of this mode is that the frontier is small.
// Invariant: w.next is all-zero on entry and w.p is all-zero outside the
// frontier; both are restored before returning.
func (w *Walk) stepSparse() {
	k := w.k
	offsets, edges, inv, mark := k.offsets, k.edges, k.inv, w.mark
	p, next := w.p, w.next
	nf := w.nextFrontier[:0]
	w.epoch++
	ep := w.epoch
	var vol int64
	for _, u := range w.frontier {
		pu := p[u]
		if pu == 0 {
			continue
		}
		share := pu * inv[u]
		if w.lazy {
			share *= 0.5
			if mark[u] != ep {
				mark[u] = ep
				nf = append(nf, u)
				vol += int64(offsets[u+1] - offsets[u])
			}
			next[u] += 0.5 * pu
		}
		for _, v := range edges[offsets[u]:offsets[u+1]] {
			if mark[v] != ep {
				mark[v] = ep
				nf = append(nf, v)
				vol += int64(offsets[v+1] - offsets[v])
			}
			next[v] += share
		}
	}
	slices.Sort(nf)
	for _, u := range w.frontier {
		p[u] = 0
	}
	w.p, w.next = next, p
	w.frontier, w.nextFrontier = nf, w.frontier
	w.frontierVol = vol
}
