// Package fixedpoint implements the O(log n)-bit probability words exchanged
// by the paper's Algorithm 1 (ESTIMATE-RW-PROBABILITY, §2.4).
//
// The paper rounds probabilities to the closest integer multiple of 1/n^c
// (c ≥ 6) so that a value fits in O(log n) bits per message (Lemma 2 bounds
// the accumulated error by t·n^-c after t steps). We realize the same idea on
// a power-of-two grid 2^-F, which admits exact int64 arithmetic: a
// probability p is represented by the integer round(p·2^F). F is chosen as
// Θ(log n) — F = min(c·⌈log₂ n⌉, 62 − ⌈log₂ n⌉ − 1) — so that
//
//	(i)  a value occupies F+1 = O(log n) bits, and
//	(ii) sums of n values never overflow int64.
//
// The substitution (2^-F grid instead of n^-c) preserves Lemma 2's form: the
// flooding error after t steps is at most t·d_max·2^-F per coordinate.
//
// Everything here is exact integer arithmetic — no floating point on the
// wire — so fixed-point computations are trivially deterministic and
// portable across architectures.
package fixedpoint
