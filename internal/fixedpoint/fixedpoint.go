package fixedpoint

import (
	"fmt"
	"math"
	"math/bits"
)

// Scale describes a fixed-point grid with resolution 2^-F.
type Scale struct {
	// F is the number of fractional bits.
	F uint
	// One is 2^F, the representation of probability 1.
	One int64
}

// DefaultC is the default grid exponent: F ≈ DefaultC·log₂(n), mirroring the
// paper's choice c = 6 in Algorithm 1 (any c ≥ 6 suffices there; we keep the
// same knob).
const DefaultC = 6

// minF is a floor on the fractional bits so that tiny test graphs still get
// a usable grid.
const minF = 16

// ScaleFor returns the scale used for an n-vertex graph with grid exponent c.
// It guarantees that n·2^F < 2^62, so convergecast sums of up to n values,
// each at most 2·One, cannot overflow int64.
func ScaleFor(n, c int) (Scale, error) {
	return ScaleForHeadroom(n, c, 0)
}

// ScaleForHeadroom is ScaleFor with `extra` additional reserved low-order
// bits: callers that append sub-grid information to values (the randomized
// tie-breaking of §3.1 appends tie bits) pass the number of appended bits so
// that sums still cannot overflow.
func ScaleForHeadroom(n, c, extra int) (Scale, error) {
	if n < 2 {
		return Scale{}, fmt.Errorf("fixedpoint: need n ≥ 2, got %d", n)
	}
	if c < 1 {
		return Scale{}, fmt.Errorf("fixedpoint: need c ≥ 1, got %d", c)
	}
	if extra < 0 || extra > 32 {
		return Scale{}, fmt.Errorf("fixedpoint: headroom %d out of range", extra)
	}
	logn := bits.Len(uint(n - 1)) // ⌈log₂ n⌉
	f := c * logn
	if cap := 62 - logn - 1 - extra; f > cap {
		f = cap
	}
	if f < minF {
		f = minF
	}
	if f >= 62-logn-extra {
		return Scale{}, fmt.Errorf("fixedpoint: n=%d too large for int64 fixed point with %d headroom bits", n, extra)
	}
	return Scale{F: uint(f), One: int64(1) << uint(f)}, nil
}

// MustScaleFor is ScaleFor, panicking on error. For use with compile-time
// constant arguments in tests and examples.
func MustScaleFor(n, c int) Scale {
	s, err := ScaleFor(n, c)
	if err != nil {
		panic(err)
	}
	return s
}

// FromFloat converts x ∈ [0, 4] to the nearest grid point. Values outside
// the representable range are clamped; NaN maps to 0.
func (s Scale) FromFloat(x float64) int64 {
	if math.IsNaN(x) {
		return 0
	}
	v := math.Round(x * float64(s.One))
	if v < 0 {
		return 0
	}
	if max := float64(s.One) * 4; v > max {
		return 4 * s.One
	}
	return int64(v)
}

// Float converts a grid value back to float64.
func (s Scale) Float(v int64) float64 {
	return float64(v) / float64(s.One)
}

// Ulp returns the grid resolution 2^-F as a float64.
func (s Scale) Ulp() float64 {
	return 1 / float64(s.One)
}

// ValueBits returns the number of bits needed to transmit one probability
// value in [0, 1]: F+1. This is the message size charged for walk shares.
func (s Scale) ValueBits() int { return int(s.F) + 1 }

// SumBits returns the number of bits needed to transmit a sum of up to n
// values each ≤ 2·One (convergecast payloads).
func (s Scale) SumBits(n int) int {
	return int(s.F) + 2 + bits.Len(uint(n))
}

// DivFloor returns ⌊v/d⌋ for v ≥ 0, d > 0. This is the per-neighbor share in
// a flooding step; the sender keeps the remainder v − d·⌊v/d⌋ so that total
// mass is conserved exactly.
func DivFloor(v int64, d int) int64 {
	if v < 0 || d <= 0 {
		panic(fmt.Sprintf("fixedpoint: DivFloor(%d, %d)", v, d))
	}
	return v / int64(d)
}

// Abs returns |a − b| without overflow for a, b ≥ 0.
func Abs(a, b int64) int64 {
	if a >= b {
		return a - b
	}
	return b - a
}

// L1Dist returns Σ|a_i − b_i| over two equal-length grid vectors.
func L1Dist(a, b []int64) int64 {
	if len(a) != len(b) {
		panic("fixedpoint: L1Dist length mismatch")
	}
	var sum int64
	for i := range a {
		sum += Abs(a[i], b[i])
	}
	return sum
}

// String formats the scale for diagnostics.
func (s Scale) String() string {
	return fmt.Sprintf("fixedpoint(F=%d)", s.F)
}
