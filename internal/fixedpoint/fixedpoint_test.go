package fixedpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScaleForBasics(t *testing.T) {
	s, err := ScaleFor(1024, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.One != int64(1)<<s.F {
		t.Errorf("One=%d, F=%d inconsistent", s.One, s.F)
	}
	// Sums of n values ≤ 2·One must fit in int64 with room to spare.
	if bitsNeeded := float64(s.F) + math.Log2(1024) + 1; bitsNeeded >= 63 {
		t.Errorf("overflow headroom violated: %f bits", bitsNeeded)
	}
}

func TestScaleForErrors(t *testing.T) {
	if _, err := ScaleFor(1, 6); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := ScaleFor(100, 0); err == nil {
		t.Error("c=0 should fail")
	}
}

func TestScaleForGrowsWithC(t *testing.T) {
	s1 := MustScaleFor(256, 2)
	s2 := MustScaleFor(256, 6)
	if s1.F >= s2.F {
		t.Errorf("F should grow with c until the cap: c=2→%d, c=6→%d", s1.F, s2.F)
	}
}

func TestScaleForCapsLargeN(t *testing.T) {
	s := MustScaleFor(1<<20, 6)
	// F + log n must stay below 62.
	if int(s.F)+20 >= 62 {
		t.Errorf("cap violated: F=%d for n=2^20", s.F)
	}
}

func TestFromFloatRoundTrip(t *testing.T) {
	s := MustScaleFor(1000, 6)
	for _, x := range []float64{0, 0.25, 0.5, 1.0 / 3, 1, 0.046} {
		v := s.FromFloat(x)
		back := s.Float(v)
		if math.Abs(back-x) > s.Ulp() {
			t.Errorf("round trip %v → %d → %v (ulp %v)", x, v, back, s.Ulp())
		}
	}
}

func TestFromFloatClamps(t *testing.T) {
	s := MustScaleFor(64, 6)
	if s.FromFloat(-1) != 0 {
		t.Error("negative should clamp to 0")
	}
	if s.FromFloat(100) != 4*s.One {
		t.Error("huge should clamp to 4·One")
	}
	if s.FromFloat(math.NaN()) != 0 {
		t.Error("NaN should map to 0")
	}
}

func TestValueAndSumBits(t *testing.T) {
	s := MustScaleFor(1024, 4)
	if s.ValueBits() != int(s.F)+1 {
		t.Errorf("ValueBits=%d", s.ValueBits())
	}
	if s.SumBits(1024) <= s.ValueBits() {
		t.Error("SumBits must exceed ValueBits")
	}
}

func TestDivFloor(t *testing.T) {
	if DivFloor(10, 3) != 3 {
		t.Error("10/3 floor")
	}
	if DivFloor(0, 5) != 0 {
		t.Error("0/5")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative DivFloor should panic")
		}
	}()
	DivFloor(-1, 2)
}

func TestAbs(t *testing.T) {
	if Abs(3, 7) != 4 || Abs(7, 3) != 4 || Abs(5, 5) != 0 {
		t.Error("Abs")
	}
}

func TestL1Dist(t *testing.T) {
	if L1Dist([]int64{1, 5, 2}, []int64{2, 2, 2}) != 4 {
		t.Error("L1Dist")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	L1Dist([]int64{1}, []int64{1, 2})
}

// Property: quantization error of FromFloat is at most half an ulp for
// values in [0, 1].
func TestFromFloatQuantization(t *testing.T) {
	s := MustScaleFor(512, 6)
	f := func(raw uint32) bool {
		x := float64(raw) / float64(math.MaxUint32) // ∈ [0,1]
		v := s.FromFloat(x)
		return math.Abs(s.Float(v)-x) <= s.Ulp()/2+1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Abs is symmetric and satisfies the triangle inequality on
// non-negative int64 triples (bounded to avoid overflow).
func TestAbsProperties(t *testing.T) {
	f := func(a, b, c uint32) bool {
		x, y, z := int64(a), int64(b), int64(c)
		if Abs(x, y) != Abs(y, x) {
			return false
		}
		return Abs(x, z) <= Abs(x, y)+Abs(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	s := MustScaleFor(64, 3)
	if s.String() == "" {
		t.Error("empty String()")
	}
}
