package coverage

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/spread"
)

// Instance is a maximum-coverage instance distributed over graph nodes.
type Instance struct {
	// Universe is the number of elements.
	Universe int
	// Sets[u] is the element set owned by node u.
	Sets []*bitset.Set
	// K is the number of sets to pick.
	K int
}

// RandomInstance builds an instance where each node draws `perNode`
// elements uniformly from the universe.
func RandomInstance(n, universe, perNode, k int, rng *rand.Rand) (*Instance, error) {
	if n < 1 || universe < 1 || perNode < 1 || k < 1 || k > n {
		return nil, errors.New("coverage: bad instance parameters")
	}
	inst := &Instance{Universe: universe, Sets: make([]*bitset.Set, n), K: k}
	for u := 0; u < n; u++ {
		s := bitset.New(universe)
		for j := 0; j < perNode; j++ {
			s.Add(rng.Intn(universe))
		}
		inst.Sets[u] = s
	}
	return inst, nil
}

// Greedy runs the classical greedy max-coverage over an arbitrary candidate
// collection: repeatedly pick the set covering the most uncovered elements.
// Returns the chosen candidate indices and the covered-element count.
func Greedy(universe int, candidates []*bitset.Set, k int) ([]int, int) {
	covered := bitset.New(universe)
	var chosen []int
	used := make([]bool, len(candidates))
	for iter := 0; iter < k; iter++ {
		bestGain, bestIdx := -1, -1
		for i, s := range candidates {
			if used[i] || s == nil {
				continue
			}
			gain := 0
			s.ForEach(func(e int) {
				if !covered.Contains(e) {
					gain++
				}
			})
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		chosen = append(chosen, bestIdx)
		candidates[bestIdx].ForEach(func(e int) { covered.Add(e) })
	}
	return chosen, covered.Count()
}

// Result reports a distributed max-coverage run.
type Result struct {
	// BestCovered is the best coverage found by any node's local greedy.
	BestCovered int
	// CentralCovered is the centralized greedy coverage (the quality bar).
	CentralCovered int
	// Ratio is BestCovered/CentralCovered.
	Ratio float64
	// SpreadRounds is the number of push–pull rounds used.
	SpreadRounds int
	// MinSetsSeen is the minimum number of candidate sets any node saw.
	MinSetsSeen int
}

// Distributed runs the protocol: push–pull until (·, β)-partial spreading,
// then local greedy at every node over the sets it has seen.
func Distributed(g *graph.Graph, inst *Instance, beta float64, seed int64) (*Result, error) {
	// Phase 1: spread ownership. Token t = "node t's set". We reuse the
	// spread simulator; its token bitsets record which sets each node knows.
	return distributed(g, inst, func() (*spread.Collected, error) {
		return spread.RunCollecting(g, spread.Config{Beta: beta, Seed: seed, StopAtPartial: true})
	})
}

// DistributedEngine is Distributed with the spreading phase executed on the
// congest engine (spread.RunOnEngineCollecting): token sets travel as
// payload slabs with honest LOCAL-model accounting and parallel stepping.
func DistributedEngine(g *graph.Graph, inst *Instance, beta float64, seed int64) (*Result, error) {
	return distributed(g, inst, func() (*spread.Collected, error) {
		return spread.RunOnEngineCollecting(g, spread.Config{Beta: beta, Seed: seed, StopAtPartial: true})
	})
}

func distributed(g *graph.Graph, inst *Instance, spreadPhase func() (*spread.Collected, error)) (*Result, error) {
	n := g.N()
	if len(inst.Sets) != n {
		return nil, fmt.Errorf("coverage: instance has %d sets for %d nodes", len(inst.Sets), n)
	}
	sp, err := spreadPhase()
	if err != nil {
		return nil, err
	}
	// Phase 2: local greedy everywhere.
	best := -1
	minSeen := n + 1
	for u := 0; u < n; u++ {
		known := sp.Known[u]
		seen := known.Count()
		if seen < minSeen {
			minSeen = seen
		}
		cand := make([]*bitset.Set, 0, seen)
		known.ForEach(func(t int) { cand = append(cand, inst.Sets[t]) })
		_, cov := Greedy(inst.Universe, cand, inst.K)
		if cov > best {
			best = cov
		}
	}
	// Quality bar: centralized greedy over all sets.
	all := make([]*bitset.Set, n)
	copy(all, inst.Sets)
	_, central := Greedy(inst.Universe, all, inst.K)
	ratio := 0.0
	if central > 0 {
		ratio = float64(best) / float64(central)
	}
	return &Result{
		BestCovered:    best,
		CentralCovered: central,
		Ratio:          ratio,
		SpreadRounds:   sp.Result.Rounds,
		MinSetsSeen:    minSeen,
	}, nil
}
