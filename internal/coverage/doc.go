// Package coverage implements the distributed maximum-coverage application
// of partial information spreading (paper §1/§4, following Censor-Hillel &
// Shachnai [4]): every node owns a subset of a ground set of elements; the
// goal is to pick k nodes whose subsets jointly cover as many elements as
// possible.
//
// The distributed protocol runs partial information spreading so that every
// node learns at least n/β of the subsets, then each node runs the greedy
// algorithm on the subsets it has seen, and the network adopts the best
// local answer (disseminated with a second gossip phase, here evaluated
// directly). The quality benchmark is the centralized greedy algorithm,
// which achieves the optimal 1−1/e approximation.
//
// Instances and protocols are seeded: a fixed (instance rng, protocol seed)
// pair reproduces the whole run, including the engine-backed variant
// (DistributedEngine), which inherits the round engine's worker-count
// invariance.
package coverage
