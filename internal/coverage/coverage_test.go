package coverage

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/gen"
)

func TestGreedyExactSmall(t *testing.T) {
	// Universe {0..5}; sets: A={0,1,2}, B={2,3}, C={4,5}, D={0}.
	mk := func(es ...int) *bitset.Set {
		s := bitset.New(6)
		for _, e := range es {
			s.Add(e)
		}
		return s
	}
	cands := []*bitset.Set{mk(0, 1, 2), mk(2, 3), mk(4, 5), mk(0)}
	chosen, covered := Greedy(6, cands, 2)
	if covered != 5 {
		t.Errorf("greedy covered %d, want 5 (A then C)", covered)
	}
	if len(chosen) != 2 || chosen[0] != 0 || chosen[1] != 2 {
		t.Errorf("greedy chose %v", chosen)
	}
}

func TestGreedyStopsWhenExhausted(t *testing.T) {
	cands := []*bitset.Set{bitset.New(4)}
	chosen, covered := Greedy(4, cands, 3)
	if covered != 0 || len(chosen) > 1 {
		t.Errorf("empty-set greedy: %v, %d", chosen, covered)
	}
}

func TestRandomInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst, err := RandomInstance(10, 50, 5, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Sets) != 10 {
		t.Fatal("wrong set count")
	}
	for _, s := range inst.Sets {
		if s.Count() < 1 || s.Count() > 5 {
			t.Errorf("per-node set size %d", s.Count())
		}
	}
	if _, err := RandomInstance(4, 10, 2, 5, rng); err == nil {
		t.Error("k > n accepted")
	}
}

// TestDistributedNearCentralized: with β small enough that nodes see most
// sets, the distributed answer should approach the centralized greedy.
func TestDistributedNearCentralized(t *testing.T) {
	g, err := gen.RingOfCliques(4, 8) // n = 32
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	inst, err := RandomInstance(32, 64, 6, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distributed(g, inst, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinSetsSeen < 16 {
		t.Errorf("partial spreading gave only %d sets", res.MinSetsSeen)
	}
	if res.Ratio < 0.8 {
		t.Errorf("distributed/centralized ratio %v too low", res.Ratio)
	}
	// Note: greedy over a subset is not dominated by greedy over the full
	// collection (greedy is only a 1−1/e approximation), so Ratio may
	// legitimately exceed 1; only require it stays in a sane band.
	if res.Ratio > 1.25 {
		t.Errorf("distributed/centralized ratio %v implausibly high", res.Ratio)
	}
}

func TestDistributedValidation(t *testing.T) {
	g, _ := gen.Complete(8)
	rng := rand.New(rand.NewSource(3))
	inst, _ := RandomInstance(4, 10, 2, 2, rng) // wrong node count
	if _, err := Distributed(g, inst, 2, 1); err == nil {
		t.Error("instance/graph mismatch accepted")
	}
}

func TestDistributedEngineMatchesQualityBar(t *testing.T) {
	g, err := gen.RingOfCliques(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	inst, err := RandomInstance(g.N(), 60, 6, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DistributedEngine(g, inst, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.CentralCovered <= 0 || res.BestCovered <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Ratio < 0.5 || res.Ratio > 1.0 {
		t.Errorf("engine-spread greedy ratio %.3f outside [0.5, 1]", res.Ratio)
	}
	if res.MinSetsSeen < g.N()/3 {
		t.Errorf("partial spreading under-delivered: min sets seen %d < n/β", res.MinSetsSeen)
	}
}
