package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/spec"
)

// TestSingleflightLeaderPanicReleasesWaiters: a panicking singleflight
// leader must complete its flight — all 8 waiters receive the same
// ErrRunnerPanic-tagged error promptly instead of hanging or recomputing,
// nothing is cached, and the flight entry is cleaned up so the next clean
// request leads fresh.
func TestSingleflightLeaderPanicReleasesWaiters(t *testing.T) {
	ctr := &counters{}
	c := newResultCache(4, ctr)
	entered := make(chan struct{})
	release := make(chan struct{})
	const waiters = 8
	errs := make(chan error, waiters+1)
	go func() { // the leader
		_, _, _, err := c.do(context.Background(), "k", func() (*cachedResult, error) {
			close(entered)
			<-release
			panic("boom")
		})
		errs <- err
	}()
	<-entered // the leader's flight is registered and computing
	var recomputed atomic.Int64
	for i := 0; i < waiters; i++ {
		go func() {
			_, _, _, err := c.do(context.Background(), "k", func() (*cachedResult, error) {
				recomputed.Add(1)
				return &cachedResult{result: "recomputed"}, nil
			})
			errs <- err
		}()
	}
	for ctr.sfShared.Load() < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)

	deadline := time.After(10 * time.Second)
	for i := 0; i < waiters+1; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrRunnerPanic) {
				t.Errorf("request %d: err = %v, want an ErrRunnerPanic-tagged error", i, err)
			}
		case <-deadline:
			t.Fatalf("%d of %d requests still blocked long after the leader panicked", waiters+1-i, waiters+1)
		}
	}
	if n := recomputed.Load(); n != 0 {
		t.Errorf("%d waiters recomputed a computation whose leader panicked", n)
	}
	if c.len() != 0 {
		t.Fatalf("panicked flight cached %d results, want 0", c.len())
	}
	// The flight map must be clean: a fresh request leads and succeeds.
	val, hit, shared, err := c.do(context.Background(), "k", func() (*cachedResult, error) {
		return &cachedResult{result: "ok"}, nil
	})
	if err != nil || hit || shared || val == nil || val.result != "ok" {
		t.Fatalf("clean request after panic: val=%+v hit=%t shared=%t err=%v", val, hit, shared, err)
	}
}

// TestServiceSurvivesRunnerPanic: an injected runner panic surfaces as an
// ErrRunnerPanic failure (not a crash), poisons no cache, bumps the panic
// counter, and the identical next request computes cleanly.
func TestServiceSurvivesRunnerPanic(t *testing.T) {
	inj := &FaultInjector{}
	svc := New(Options{Fault: inj})
	req := Request{Graph: ringSpec, Task: spec.TaskSpec{Kind: spec.KindWalk, Steps: 10, Seed: 7}}

	inj.ArmPanic(1)
	if _, err := svc.Run(context.Background(), req); !errors.Is(err, ErrRunnerPanic) {
		t.Fatalf("poisoned request: err = %v, want ErrRunnerPanic", err)
	}
	m := svc.Metrics()
	if m.RunnerPanics != 1 {
		t.Fatalf("RunnerPanics = %d, want 1", m.RunnerPanics)
	}
	if m.CachedResults != 0 {
		t.Fatalf("panicked run left %d entries in the result cache", m.CachedResults)
	}
	resp := mustRun(t, svc, req)
	if resp.ResultHit || resp.Shared {
		t.Fatal("post-panic request was served from a cache that should be empty")
	}
	if resp.Result == nil {
		t.Fatal("post-panic recomputation returned a nil result")
	}
}

// TestServiceInjectedErrorIsNotCached: injected (non-panic) runner errors
// follow the existing failed-run contract — returned to the caller, never
// memoized.
func TestServiceInjectedErrorIsNotCached(t *testing.T) {
	inj := &FaultInjector{}
	svc := New(Options{Fault: inj})
	req := Request{Graph: ringSpec, Task: spec.TaskSpec{Kind: spec.KindWalk, Steps: 10, Seed: 11}}
	inj.ArmError(1)
	if _, err := svc.Run(context.Background(), req); err == nil {
		t.Fatal("armed injected error did not fail the request")
	}
	if m := svc.Metrics(); m.CachedResults != 0 || m.RunnerPanics != 0 {
		t.Fatalf("injected error: cached=%d panics=%d, want 0/0", m.CachedResults, m.RunnerPanics)
	}
	if resp := mustRun(t, svc, req); resp.ResultHit {
		t.Fatal("request after injected error claims a result hit from an empty cache")
	}
}

// TestLoadSheddingFastRejects: with MaxInFlight=1 and MaxQueued=1, a third
// concurrent request is refused immediately with ErrOverloaded while the
// queue is full, and the held requests complete normally once released.
func TestLoadSheddingFastRejects(t *testing.T) {
	inj := &FaultInjector{Hold: make(chan struct{})}
	svc := New(Options{MaxInFlight: 1, MaxQueued: 1, Fault: inj})
	mk := func(seed int64) Request {
		return Request{Graph: ringSpec, Task: spec.TaskSpec{Kind: spec.KindWalk, Steps: 5, Seed: seed}}
	}
	done := make(chan error, 2)
	go func() { _, err := svc.Run(context.Background(), mk(1)); done <- err }()
	for svc.Metrics().InFlight < 1 {
		time.Sleep(time.Millisecond)
	}
	go func() { _, err := svc.Run(context.Background(), mk(2)); done <- err }()
	for svc.Metrics().Queued < 1 {
		time.Sleep(time.Millisecond)
	}
	if !svc.Shedding() {
		t.Error("Shedding() = false with a full admission queue")
	}

	start := time.Now()
	_, err := svc.Run(context.Background(), mk(3))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow request: err = %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("shed took %v; shedding must be a fast rejection, not a queue wait", elapsed)
	}
	if m := svc.Metrics(); m.ShedRequests != 1 {
		t.Fatalf("ShedRequests = %d, want 1", m.ShedRequests)
	}

	close(inj.Hold)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("held request failed after release: %v", err)
		}
	}
	if svc.Shedding() {
		t.Error("Shedding() = true after the queue drained")
	}
}

// TestWalkChurnSpecsAndRetryMetric: the adversary churn models are
// reachable through the declarative spec path, the walk retry counter
// accumulates into the service metrics, and the crash model enforces its
// own parameter validation.
func TestWalkChurnSpecsAndRetryMetric(t *testing.T) {
	svc := New(Options{})
	mustRun(t, svc, Request{Graph: ringSpec, Task: spec.TaskSpec{
		Kind: spec.KindWalk, Steps: 30, Seed: 8,
		Churn: &spec.ChurnSpec{Model: "chaser", Budget: 3},
	}})
	if m := svc.Metrics(); m.TokenRetries == 0 {
		t.Error("adaptive chaser walk recorded zero token retries")
	}
	mustRun(t, svc, Request{Graph: ringSpec, Task: spec.TaskSpec{
		Kind: spec.KindWalk, Steps: 20, Seed: 9, RetryBudget: 5000,
		Churn: &spec.ChurnSpec{Model: "crash", Rate: 0.02, Down: 5},
	}})
	mustRun(t, svc, Request{Graph: ringSpec, Task: spec.TaskSpec{
		Kind: spec.KindWalk, Steps: 20, Seed: 10,
		Churn: &spec.ChurnSpec{Model: "cutter", Budget: 2},
	}})
	if _, err := svc.Run(context.Background(), Request{Graph: ringSpec, Task: spec.TaskSpec{
		Kind: spec.KindWalk, Steps: 5, Seed: 4,
		Churn: &spec.ChurnSpec{Model: "crash", Rate: 0.1},
	}}); err == nil {
		t.Error("crash model without a down duration was accepted")
	}
	if _, err := svc.Run(context.Background(), Request{Graph: ringSpec, Task: spec.TaskSpec{
		Kind: spec.KindWalk, Steps: 5, RetryBudget: -1,
	}}); !errors.Is(err, ErrInvalidRequest) {
		t.Error("negative retryBudget passed spec validation")
	}
}
