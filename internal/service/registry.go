package service

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/exact"
	"repro/internal/spec"
	"repro/internal/spread"
)

// Invocation is one resolved request handed to a Runner: the execution
// environment (graph + caches) plus the task spec. The override fields
// carry arguments a facade signature can express but a declarative spec
// cannot (functional options, an explicit coverage instance, a caller-built
// churn provider); the spec-driven path leaves them nil and the runner
// derives everything from Task.
type Invocation struct {
	// Env is the execution environment: the run graph and, for cached
	// requests, the graph-cache entry providing shared kernels and pools.
	Env *Env
	// Task is the declarative task description.
	Task spec.TaskSpec
	// Opts are extra distributed options applied after the Task-derived
	// ones (the facade's variadic options, verbatim).
	Opts []core.Option
	// Churn is the resolved topology provider (service-built from
	// Task.Churn, or facade-provided).
	Churn congest.TopologyProvider
	// SweepOpts overrides the Task-derived sweep options when non-nil.
	SweepOpts *core.SweepOptions
	// Local overrides the Task-derived centralized-oracle options.
	Local *exact.LocalOptions
	// Spread overrides the Task-derived push–pull config.
	Spread *spread.Config
	// Instance overrides the Task-derived random coverage instance.
	Instance *coverage.Instance
	// Ctx bounds the invocation: the long runner loops check it
	// cooperatively and abort when it is cancelled (per-request deadlines).
	// Nil means no bound — the facade path, which never had one.
	Ctx context.Context

	// churnKey tags cached sweep pools with the resolved churn model; set
	// by Service.Run alongside Churn.
	churnKey string
	// ctr, when set (the service path), lets runners report fault counters
	// (e.g. token-walk retries); nil on the facade path.
	ctr *counters
}

// Context returns the invocation's context, Background when unset.
func (inv *Invocation) Context() context.Context {
	if inv.Ctx == nil {
		return context.Background()
	}
	return inv.Ctx
}

// Runner executes one task kind. The returned value is the kind's concrete
// result type (documented at registration); it must be JSON-marshalable
// for the HTTP server.
type Runner func(inv *Invocation) (any, error)

// TaskInfo describes one registered kind for GET /v1/tasks.
type TaskInfo struct {
	// Kind is the registry key and wire value.
	Kind spec.Kind `json:"kind"`
	// Description says what the runner computes and which facade entry
	// point it is equivalent to.
	Description string `json:"description"`
}

// Registry maps task kinds to runners. The zero value is unusable; see
// NewRegistry and Default.
type Registry struct {
	mu      sync.RWMutex
	order   []spec.Kind
	runners map[spec.Kind]registration
}

type registration struct {
	run  Runner
	info TaskInfo
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{runners: make(map[spec.Kind]registration)}
}

// Register adds a runner for kind. Registering a kind twice panics — kinds
// are global wire values, and a silent overwrite would make two deployments
// disagree about what a request means.
func (r *Registry) Register(kind spec.Kind, description string, run Runner) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.runners[kind]; dup {
		panic(fmt.Sprintf("service: task kind %q registered twice", kind))
	}
	r.order = append(r.order, kind)
	r.runners[kind] = registration{run: run, info: TaskInfo{Kind: kind, Description: description}}
}

// Runner looks up the runner for kind.
func (r *Registry) Runner(kind spec.Kind) (Runner, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	reg, ok := r.runners[kind]
	return reg.run, ok
}

// Tasks lists the registered kinds in registration order.
func (r *Registry) Tasks() []TaskInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]TaskInfo, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.runners[k].info)
	}
	return out
}

// defaultRegistry holds the built-in runners; built once on first use.
var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the shared registry with every built-in task kind
// registered. The localmix facade and any Service built without an explicit
// Registry resolve kinds here.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry()
		registerBuiltins(defaultReg)
	})
	return defaultReg
}

// Call invokes kind's runner from the default registry — the facade entry
// path (no cache, no admission control, no seed derivation: exactly the
// caller's arguments).
func Call(kind spec.Kind, inv *Invocation) (any, error) {
	run, ok := Default().Runner(kind)
	if !ok {
		return nil, fmt.Errorf("service: unknown task kind %q", kind)
	}
	return run(inv)
}
