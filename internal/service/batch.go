package service

import "context"

// BatchItem reports one task's outcome inside a batch: exactly the Response
// of a standalone Run, or its error string.
type BatchItem struct {
	// Response is the task's result when it succeeded.
	Response *Response `json:"response,omitempty"`
	// Error carries the task's failure, item-local — one failing task does
	// not abort the batch.
	Error string `json:"error,omitempty"`
}

// BatchSummary aggregates a batch's cache behavior.
type BatchSummary struct {
	// Tasks is the number of items in the batch.
	Tasks int `json:"tasks"`
	// Computed counts items that ran a runner (result-cache misses).
	Computed int `json:"computed"`
	// ResultHits counts items served verbatim from the result cache —
	// including duplicates of an earlier item in the same batch.
	ResultHits int `json:"resultHits"`
	// Shared counts items that waited on an identical in-flight
	// computation.
	Shared int `json:"shared"`
	// Errors counts failed items.
	Errors int `json:"errors"`
}

// RunBatch executes every request in order, sharing one context (and so one
// deadline budget when the caller bounds ctx). Items are independent: a
// failure is recorded in its item and the batch continues. Sequential
// execution makes the dedup guarantee exact — an item identical to an
// earlier one is always a result-cache hit, never a second computation.
func (s *Service) RunBatch(ctx context.Context, reqs []Request) ([]BatchItem, BatchSummary) {
	s.ctr.batches.Add(1)
	items := make([]BatchItem, len(reqs))
	sum := BatchSummary{Tasks: len(reqs)}
	for i, req := range reqs {
		resp, err := s.Run(ctx, req)
		if err != nil {
			items[i] = BatchItem{Error: err.Error()}
			sum.Errors++
			continue
		}
		items[i] = BatchItem{Response: resp}
		switch {
		case resp.ResultHit:
			sum.ResultHits++
		case resp.Shared:
			sum.Shared++
		default:
			sum.Computed++
		}
	}
	return items, sum
}
