package service

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/spec"
)

// TestSingleflightSharesOneComputation: N concurrent identical requests
// must produce DeepEqual responses from exactly one runner invocation — the
// leader computes while every other request waits on its flight.
func TestSingleflightSharesOneComputation(t *testing.T) {
	var invocations atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	reg := NewRegistry()
	reg.Register(spec.KindMixing, "gated probe", func(inv *Invocation) (any, error) {
		if invocations.Add(1) == 1 {
			close(entered)
		}
		<-release
		return &TauResult{Tau: 42}, nil
	})
	svc := New(Options{Registry: reg})
	req := Request{Graph: spec.GraphSpec{Family: "path", N: 8},
		Task: spec.TaskSpec{Kind: spec.KindMixing, Seed: 3}}

	const waiters = 8
	responses := make([]*Response, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the leader
		defer wg.Done()
		resp, err := svc.Run(context.Background(), req)
		if err != nil {
			t.Error(err)
			return
		}
		responses[0] = resp
	}()
	<-entered // the leader's flight is registered and its runner is running
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := svc.Run(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			responses[i] = resp
		}(i)
	}
	// Every waiter must attach to the in-flight computation, not start a
	// second one.
	for svc.Metrics().SingleflightShared < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := invocations.Load(); got != 1 {
		t.Fatalf("runner invoked %d times for identical concurrent requests, want 1", got)
	}
	shared := 0
	for i, resp := range responses {
		if !reflect.DeepEqual(resp.Result, responses[0].Result) {
			t.Fatalf("response %d diverged: %+v vs %+v", i, resp.Result, responses[0].Result)
		}
		if resp.Shared {
			shared++
		}
	}
	if shared != waiters {
		t.Fatalf("%d responses report Shared, want %d", shared, waiters)
	}
	m := svc.Metrics()
	if m.ResultMisses != 1 || m.SingleflightShared != waiters {
		t.Fatalf("misses=%d shared=%d, want 1/%d", m.ResultMisses, m.SingleflightShared, waiters)
	}
}

// TestResultCacheEvictionRecomputesDeterministically: with a 1-entry result
// cache, a second spec evicts the first; re-running the first recomputes it
// to a DeepEqual response.
func TestResultCacheEvictionRecomputesDeterministically(t *testing.T) {
	svc := New(Options{ResultCacheSize: 1})
	reqA := Request{Graph: ringSpec, Task: spec.TaskSpec{Kind: spec.KindWalk, Steps: 12}} // seedless: derived seed
	reqB := Request{Graph: ringSpec, Task: spec.TaskSpec{Kind: spec.KindWalk, Steps: 13}}

	first := mustRun(t, svc, reqA)
	if hit := mustRun(t, svc, reqA); !hit.ResultHit {
		t.Fatal("repeat before eviction missed the result cache")
	}
	mustRun(t, svc, reqB) // evicts reqA
	m := svc.Metrics()
	if m.ResultEvictions != 1 || m.CachedResults != 1 {
		t.Fatalf("evictions=%d cached=%d, want 1/1", m.ResultEvictions, m.CachedResults)
	}
	again := mustRun(t, svc, reqA)
	if again.ResultHit {
		t.Fatal("evicted entry reported a result hit")
	}
	if again.Seed != first.Seed || !reflect.DeepEqual(again.Result, first.Result) {
		t.Fatalf("eviction broke determinism:\n  first %+v\n  again %+v", first.Result, again.Result)
	}
	if m2 := svc.Metrics(); m2.ResultMisses != m.ResultMisses+1 {
		t.Fatalf("evicted entry did not recompute (misses %d -> %d)", m.ResultMisses, m2.ResultMisses)
	}
	if svc.Metrics().ResultBytes <= 0 {
		t.Fatal("result-bytes gauge is not positive with a cached entry")
	}
}

// TestDeadlineAbortsQuicklyWithoutPoisoning: a tiny deadline on a large
// torus aborts fast with a timeout-tagged error, leaves no partial entry in
// the result cache, and the identical request without a deadline (same
// result key — DeadlineMS is schedule-only) then computes successfully.
func TestDeadlineAbortsQuicklyWithoutPoisoning(t *testing.T) {
	svc := New(Options{})
	torus := spec.GraphSpec{Family: "torus", Dim: 32} // 1024 vertices
	slow := Request{Graph: torus,
		Task: spec.TaskSpec{Kind: spec.KindOracleGraphMixing, Eps: 0.1, Lazy: true, DeadlineMS: 1}}

	start := time.Now()
	_, err := svc.Run(context.Background(), slow)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("1ms deadline on a 2304-vertex all-sources oracle did not abort")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline abort returned %v, want a context.DeadlineExceeded-tagged error", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("deadline abort took %v, want well under the full computation", elapsed)
	}
	if m := svc.Metrics(); m.CachedResults != 0 {
		t.Fatalf("failed run left %d entries in the result cache", m.CachedResults)
	}

	// Same request minus the deadline maps to the same result key; it must
	// compute from scratch and succeed — the abort poisoned nothing.
	ok := slow
	ok.Task.DeadlineMS = 0
	resp := mustRun(t, svc, ok)
	if resp.ResultHit || resp.Shared {
		t.Fatalf("post-abort request was served from a cache that should be empty: %+v", resp)
	}
	if resp.Result.(*TauResult).Tau <= 0 {
		t.Fatalf("post-abort computation returned τ=%d", resp.Result.(*TauResult).Tau)
	}

	// And an ample deadline changes nothing about a served result.
	warm := ok
	warm.Task.DeadlineMS = 60_000
	if again := mustRun(t, svc, warm); !again.ResultHit ||
		!reflect.DeepEqual(again.Result, resp.Result) {
		t.Fatal("ample-deadline repeat did not serve the memoized result")
	}
}

// TestDeadlineCancelsSweep: the per-source cooperative check in the sweep
// pool surfaces the context error for distributed sweeps too.
func TestDeadlineCancelsSweep(t *testing.T) {
	svc := New(Options{})
	req := Request{Graph: spec.GraphSpec{Family: "torus", Dim: 12},
		Task: spec.TaskSpec{Kind: spec.KindSweep, Mode: "mixing", Eps: 0.1, Seed: 1, Lazy: true, DeadlineMS: 1}}
	_, err := svc.Run(context.Background(), req)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sweep under a 1ms deadline returned %v, want DeadlineExceeded", err)
	}
	if m := svc.Metrics(); m.CachedResults != 0 {
		t.Fatal("cancelled sweep left a result-cache entry")
	}
}
