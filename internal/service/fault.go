package service

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrRunnerPanic tags the error a request receives when its runner (or a
// fault injector standing in for one) panicked. The panic is recovered at
// the invocation boundary, so one poisoned request can never take down the
// process, never caches anything, and releases every singleflight waiter
// with this same error — a waiter must not recompute a deterministic
// request whose leader just crashed on it. Transports map it to a
// 500-class status.
var ErrRunnerPanic = errors.New("service: runner panicked")

// ErrOverloaded tags a request shed at admission because the wait queue
// was full (Options.MaxQueued). Nothing was computed; the request is safe
// to retry after backing off. Transports map it to a 503 with Retry-After.
var ErrOverloaded = errors.New("service: overloaded, retry later")

// FaultInjector injects faults into runner invocations for chaos testing:
// panics, errors, and latency, all deterministic (counter-based, no RNG)
// so a soak run is reproducible. Configure the exported fields before the
// service starts taking traffic; the Arm methods are safe at any time. A
// nil injector injects nothing.
type FaultInjector struct {
	// PanicEvery makes every Nth invocation panic (0 = never).
	PanicEvery int64
	// ErrorEvery makes every Nth invocation fail with an injected error
	// (0 = never).
	ErrorEvery int64
	// Latency is added to every invocation before the runner starts
	// (0 = none).
	Latency time.Duration
	// Hold, when non-nil, blocks every invocation until the channel is
	// closed — a deterministic way for tests to pin requests in flight.
	Hold chan struct{}

	calls       atomic.Int64
	armedPanics atomic.Int64
	armedErrors atomic.Int64
}

// ArmPanic arms n one-shot panics: the next n invocations panic before
// their runner starts, independent of PanicEvery.
func (f *FaultInjector) ArmPanic(n int64) { f.armedPanics.Add(n) }

// ArmError arms n one-shot injected errors, independent of ErrorEvery.
func (f *FaultInjector) ArmError(n int64) { f.armedErrors.Add(n) }

// Calls reports how many invocations the injector has intercepted.
func (f *FaultInjector) Calls() int64 { return f.calls.Load() }

// takeArmed consumes one armed fault from a, reporting whether one fired.
func takeArmed(a *atomic.Int64) bool {
	for {
		n := a.Load()
		if n <= 0 {
			return false
		}
		if a.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// before runs the injector's faults ahead of a runner invocation: sleep
// the latency, then panic or return an injected error per the armed
// one-shots and the Every counters. Nil-safe.
func (f *FaultInjector) before() error {
	if f == nil {
		return nil
	}
	n := f.calls.Add(1)
	if f.Hold != nil {
		<-f.Hold
	}
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if takeArmed(&f.armedPanics) || (f.PanicEvery > 0 && n%f.PanicEvery == 0) {
		panic(fmt.Sprintf("fault injector: chaos panic (invocation %d)", n))
	}
	if takeArmed(&f.armedErrors) || (f.ErrorEvery > 0 && n%f.ErrorEvery == 0) {
		return fmt.Errorf("fault injector: injected error (invocation %d)", n)
	}
	return nil
}

// safeRun invokes the runner behind the fault injector with a panic
// barrier: a panic — injected or real — is recovered, counted, and
// converted into an ErrRunnerPanic-tagged error, so the caller (and every
// singleflight waiter downstream) sees an ordinary failed request instead
// of a crashed process.
func safeRun(run Runner, inv *Invocation, inj *FaultInjector, ctr *counters) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			ctr.runnerPanics.Add(1)
			res, err = nil, fmt.Errorf("%w: %v", ErrRunnerPanic, r)
		}
	}()
	if err := inj.before(); err != nil {
		return nil, err
	}
	return run(inv)
}
