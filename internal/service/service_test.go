package service

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/spec"
)

var ringSpec = spec.GraphSpec{Family: "ringcliques", Blocks: 4, K: 5}

func mustRun(t *testing.T, svc *Service, req Request) *Response {
	t.Helper()
	resp, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("Run(%+v): %v", req.Task, err)
	}
	return resp
}

func TestRunMatchesDirectCalls(t *testing.T) {
	g, err := ringSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Options{})

	t.Run("oracle-mixing", func(t *testing.T) {
		resp := mustRun(t, svc, Request{Graph: ringSpec,
			Task: spec.TaskSpec{Kind: spec.KindOracleMixing, Eps: 0.1, MaxT: 4000}})
		want, err := exact.MixingTime(g, 0, 0.1, false, 4000)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Result.(*TauResult).Tau; got != want {
			t.Fatalf("service τ_mix=%d, direct %d", got, want)
		}
	})

	t.Run("local", func(t *testing.T) {
		resp := mustRun(t, svc, Request{Graph: ringSpec,
			Task: spec.TaskSpec{Kind: spec.KindLocal, Beta: 4, Eps: 0.05, Seed: 5}})
		want, err := core.ApproxLocalMixingTime(g, 0, 4, 0.05, core.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Result, want) {
			t.Fatalf("service result differs from direct core call:\n  svc  %+v\n  core %+v", resp.Result, want)
		}
	})

	t.Run("sweep-warm-pool", func(t *testing.T) {
		req := Request{Graph: ringSpec,
			Task: spec.TaskSpec{Kind: spec.KindSweep, Mode: "mixing", Eps: 0.1, Seed: 5, Sample: 4, SweepWorkers: 2}}
		first := mustRun(t, svc, req)
		m0 := svc.Metrics()
		second := mustRun(t, svc, req)
		m1 := svc.Metrics()
		if !reflect.DeepEqual(first.Result, second.Result) {
			t.Fatal("repeated sweep request changed its result")
		}
		if !second.ResultHit || m1.ResultHits != m0.ResultHits+1 {
			t.Fatalf("identical repeat was not a result-cache hit (resultHit=%t, hits %d -> %d)",
				second.ResultHit, m0.ResultHits, m1.ResultHits)
		}
		// A different sample misses the result cache but must reuse the
		// warm pool (pool keys exclude the per-sweep source selection).
		other := req
		other.Task.Sample = 5
		mustRun(t, svc, other)
		m2 := svc.Metrics()
		if m2.PoolBuilds != m0.PoolBuilds {
			t.Fatalf("re-sampled sweep built a new pool (%d -> %d)", m0.PoolBuilds, m2.PoolBuilds)
		}
		if m2.PoolHits != m0.PoolHits+1 {
			t.Fatalf("re-sampled sweep did not hit the warm pool (hits %d -> %d)", m0.PoolHits, m2.PoolHits)
		}
		cfg := core.Config{Mode: core.MixTime, Eps: 0.1}
		cfg.Engine.Seed = 5
		want, err := core.GraphMixingTime(g, cfg, core.SweepOptions{Workers: 2, Sample: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Result, want) {
			t.Fatal("warm-pool sweep differs from the one-shot core sweep")
		}
	})
}

func TestWarmCacheBuildsNothing(t *testing.T) {
	svc := New(Options{})
	req := Request{Graph: ringSpec,
		Task: spec.TaskSpec{Kind: spec.KindOracleLocal, Beta: 4, Eps: 0.05}}
	first := mustRun(t, svc, req)
	if first.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	m0 := svc.Metrics()
	if m0.KernelBuilds != 1 || m0.GraphMisses != 1 {
		t.Fatalf("cold request: kernelBuilds=%d graphMisses=%d, want 1/1", m0.KernelBuilds, m0.GraphMisses)
	}
	// A second oracle kind on the same graph must reuse graph AND kernel.
	second := mustRun(t, svc, Request{Graph: ringSpec,
		Task: spec.TaskSpec{Kind: spec.KindOracleMixing, Eps: 0.1, MaxT: 4000}})
	if !second.CacheHit {
		t.Fatal("second request missed the graph cache")
	}
	m1 := svc.Metrics()
	if m1.KernelBuilds != 1 {
		t.Fatalf("warm request rebuilt the kernel (builds=%d)", m1.KernelBuilds)
	}
	if m1.GraphMisses != 1 || m1.GraphHits < 1 {
		t.Fatalf("warm request missed the graph cache: hits=%d misses=%d", m1.GraphHits, m1.GraphMisses)
	}
	third := mustRun(t, svc, req)
	if !reflect.DeepEqual(first.Result, third.Result) {
		t.Fatal("warm repeat changed the oracle result")
	}
}

func TestGraphCacheConcurrentAccess(t *testing.T) {
	var ctr counters
	c := newGraphCache(4, &ctr)
	gs := spec.GraphSpec{Family: "expander", N: 32, D: 4, Seed: 3}
	const workers = 16
	entries := make([]*cacheEntry, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := c.get(gs)
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if entries[i] != entries[0] {
			t.Fatal("concurrent gets returned distinct entries")
		}
	}
	if got := ctr.graphMisses.Load(); got != 1 {
		t.Fatalf("graph built %d times under concurrent access, want 1", got)
	}
	if hits := ctr.graphHits.Load(); hits != workers-1 {
		t.Fatalf("hits=%d, want %d", hits, workers-1)
	}
}

func TestGraphCacheLRUEviction(t *testing.T) {
	var ctr counters
	c := newGraphCache(2, &ctr)
	specs := []spec.GraphSpec{
		{Family: "path", N: 8},
		{Family: "cycle", N: 8},
		{Family: "complete", N: 8},
	}
	for _, gs := range specs {
		if _, _, err := c.get(gs); err != nil {
			t.Fatal(err)
		}
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	// The oldest (path) was evicted: re-getting it is a miss.
	before := ctr.graphMisses.Load()
	if _, hit, err := c.get(specs[0]); err != nil || hit {
		t.Fatalf("evicted entry reported hit=%t err=%v", hit, err)
	}
	if ctr.graphMisses.Load() != before+1 {
		t.Fatal("evicted entry did not rebuild")
	}
}

func TestAdmissionBound(t *testing.T) {
	const cap = 3
	var cur, peak atomic.Int64
	reg := NewRegistry()
	reg.Register(spec.KindMixing, "slow probe", func(inv *Invocation) (any, error) {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		return &TauResult{Tau: int(inv.Task.Seed)}, nil
	})
	svc := New(Options{Registry: reg, MaxInFlight: cap})
	const burst = 16
	var wg sync.WaitGroup
	results := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := svc.Run(context.Background(), Request{
				Graph: spec.GraphSpec{Family: "path", N: 4},
				Task:  spec.TaskSpec{Kind: spec.KindMixing, Seed: int64(i + 1)},
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = resp.Result.(*TauResult).Tau
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > cap {
		t.Fatalf("observed %d concurrent runs, admission cap is %d", p, cap)
	}
	if p := svc.Metrics().PeakInFlight; p > cap {
		t.Fatalf("metrics report peak %d > cap %d", p, cap)
	}
	for i, r := range results {
		if r != i+1 {
			t.Fatalf("request %d returned %d: per-request state leaked across the burst", i, r)
		}
	}
}

func TestAdmissionRespectsContext(t *testing.T) {
	block := make(chan struct{})
	reg := NewRegistry()
	reg.Register(spec.KindMixing, "blocker", func(inv *Invocation) (any, error) {
		<-block
		return &TauResult{}, nil
	})
	svc := New(Options{Registry: reg, MaxInFlight: 1})
	req := Request{Graph: spec.GraphSpec{Family: "path", N: 4}, Task: spec.TaskSpec{Kind: spec.KindMixing}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := svc.Run(context.Background(), req); err != nil {
			t.Error(err)
		}
	}()
	// Wait for the first request to occupy the only slot.
	for svc.Metrics().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := svc.Run(ctx, req); err != context.DeadlineExceeded {
		t.Fatalf("queued request returned %v, want context.DeadlineExceeded", err)
	}
	close(block)
	<-done
}

func TestDerivedSeedsAreDeterministic(t *testing.T) {
	req := Request{Graph: ringSpec,
		Task: spec.TaskSpec{Kind: spec.KindWalk, Steps: 12}} // seed omitted
	a := mustRun(t, New(Options{}), req)
	b := mustRun(t, New(Options{}), req)
	if a.Seed == 0 || a.Seed != b.Seed {
		t.Fatalf("derived seeds differ across services: %d vs %d", a.Seed, b.Seed)
	}
	if !reflect.DeepEqual(a.Result, b.Result) {
		t.Fatal("identical seedless requests returned different results")
	}
	c := mustRun(t, New(Options{BaseSeed: 99}), req)
	if c.Seed == a.Seed {
		t.Fatal("base seed does not influence the derived seed")
	}
	// A different request content must derive a different seed.
	other := req
	other.Task.Steps = 13
	d := mustRun(t, New(Options{}), other)
	if d.Seed == a.Seed {
		t.Fatal("distinct requests derived the same seed")
	}
	// Schedule-only fields must NOT influence the derived seed: results
	// are worker-invariant everywhere, so a seedless request with a
	// different worker count is the same request.
	w2 := req
	w2.Task.Workers, w2.Task.SweepWorkers = 2, 2
	e := mustRun(t, New(Options{}), w2)
	if e.Seed != a.Seed {
		t.Fatalf("worker count changed the derived seed: %d vs %d", e.Seed, a.Seed)
	}
	// Semantic fields must match; Stats carries the documented
	// execution-dependent allocation counters, so it is excluded.
	ra, re := a.Result.(*core.TokenWalkResult), e.Result.(*core.TokenWalkResult)
	if re.End != ra.End || re.Rounds != ra.Rounds || re.Retries != ra.Retries {
		t.Fatalf("worker count changed a seedless request's walk: %+v vs %+v", re, ra)
	}
}

func TestSnapshotChurnReplacesRunGraph(t *testing.T) {
	svc := New(Options{})
	req := Request{Graph: spec.GraphSpec{Family: "cycle", N: 24},
		Task: spec.TaskSpec{Kind: spec.KindWalk, Steps: 8, Seed: 5, Lazy: true,
			Churn: &spec.ChurnSpec{Model: "snapshot", Degree: 3, Snapshots: 2, Every: 4, Seed: 7}}}
	first := mustRun(t, svc, req)
	if first.RunGraph == nil {
		t.Fatal("snapshot churn did not report a run graph")
	}
	if first.RunGraph.N != 24 {
		t.Fatalf("run graph has %d vertices, want 24", first.RunGraph.N)
	}
	m0 := svc.Metrics()
	second := mustRun(t, svc, req)
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Fatal("repeated snapshot-churn request changed its result")
	}
	if m1 := svc.Metrics(); m1.ChurnBuilds != m0.ChurnBuilds {
		t.Fatalf("repeated request rebuilt the churn model (%d -> %d)", m0.ChurnBuilds, m1.ChurnBuilds)
	}
}

func TestRunValidation(t *testing.T) {
	svc := New(Options{})
	cases := []Request{
		{Graph: spec.GraphSpec{Family: "moebius"}, Task: spec.TaskSpec{Kind: spec.KindMixing}},
		{Graph: ringSpec, Task: spec.TaskSpec{Kind: "teleport"}},
		{Graph: ringSpec, Task: spec.TaskSpec{Kind: spec.KindDynamic}}, // churn missing
	}
	for _, req := range cases {
		_, err := svc.Run(context.Background(), req)
		if err == nil {
			t.Fatalf("request %+v accepted", req)
		}
		if !isInvalid(err) {
			t.Fatalf("request %+v failed with %v, want ErrInvalidRequest", req, err)
		}
	}
	// Execution failures are not tagged as invalid requests.
	_, err := svc.Run(context.Background(), Request{
		Graph: spec.GraphSpec{Family: "cycle", N: 8}, // even cycle: bipartite
		Task:  spec.TaskSpec{Kind: spec.KindMixing, Seed: 1}})
	if err == nil || isInvalid(err) {
		t.Fatalf("bipartite non-lazy run returned %v, want an untagged execution error", err)
	}
	if m := svc.Metrics(); m.Errors != int64(len(cases))+1 {
		t.Fatalf("error counter %d, want %d", m.Errors, len(cases)+1)
	}
}

func isInvalid(err error) bool { return errors.Is(err, ErrInvalidRequest) }

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Register(spec.KindMixing, "first", func(*Invocation) (any, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Register(spec.KindMixing, "second", func(*Invocation) (any, error) { return nil, nil })
}

func TestTasksListsEveryBuiltinKind(t *testing.T) {
	svc := New(Options{})
	infos := svc.Tasks()
	if len(infos) != len(spec.Kinds()) {
		t.Fatalf("registry lists %d kinds, spec declares %d", len(infos), len(spec.Kinds()))
	}
	seen := map[spec.Kind]bool{}
	for _, info := range infos {
		if info.Description == "" {
			t.Errorf("kind %s has no description", info.Kind)
		}
		seen[info.Kind] = true
	}
	for _, k := range spec.Kinds() {
		if !seen[k] {
			t.Errorf("kind %s not registered", k)
		}
	}
}
