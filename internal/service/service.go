package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sweep"
)

// ErrInvalidRequest tags request-shape failures (unknown family or kind,
// cross-field spec violations) so transports can map them to 400-class
// statuses; execution failures are returned unwrapped.
var ErrInvalidRequest = errors.New("service: invalid request")

// Request is one unit of work: which graph, which computation.
type Request struct {
	// Graph names the generated graph.
	Graph spec.GraphSpec `json:"graph"`
	// Task names the computation over it.
	Task spec.TaskSpec `json:"task"`
}

// GraphInfo describes a built graph in a Response.
type GraphInfo struct {
	// Key is the canonical cache key.
	Key string `json:"key"`
	// Name is the generator's graph name.
	Name string `json:"name"`
	// N and M are the vertex and edge counts.
	N int `json:"n"`
	M int `json:"m"`
}

// Response reports a completed run.
type Response struct {
	// Kind echoes the task kind.
	Kind spec.Kind `json:"kind"`
	// Graph describes the cached spec graph.
	Graph GraphInfo `json:"graph"`
	// RunGraph is set when the run executed on a different graph than the
	// spec'd one — today only for snapshot churn, which replaces the graph
	// by the rotating-sample superset.
	RunGraph *GraphInfo `json:"runGraph,omitempty"`
	// CacheHit reports whether the graph came from the cache.
	CacheHit bool `json:"cacheHit"`
	// ResultHit reports that the whole response was served from the result
	// cache: no graph build, no kernel, no runner invocation — two map
	// lookups.
	ResultHit bool `json:"resultHit"`
	// Shared reports that this request waited on an identical in-flight
	// computation (singleflight) instead of running its own.
	Shared bool `json:"shared,omitempty"`
	// Seed is the effective task seed (the request's, or the per-request
	// derived one when the request omitted it).
	Seed int64 `json:"seed"`
	// Result is the kind's concrete result (see the registry
	// descriptions); over HTTP it is the kind's JSON object.
	Result any `json:"result"`
}

// Options configures a Service.
type Options struct {
	// CacheSize bounds the graph cache (entries; ≤ 0 means 16).
	CacheSize int
	// ResultCacheSize bounds the response memoization cache (entries;
	// ≤ 0 means 256).
	ResultCacheSize int
	// MaxInFlight bounds concurrently executing requests; further
	// requests queue on the admission semaphore (≤ 0 means
	// max(8, GOMAXPROCS)).
	MaxInFlight int
	// MaxQueued bounds the requests waiting at admission while every
	// execution slot is busy; past it, new requests are shed immediately
	// with ErrOverloaded instead of queueing — a fast failure the client
	// can back off and retry, rather than a slow one that ties up its
	// deadline budget. ≤ 0 (the default) keeps the unbounded legacy queue.
	MaxQueued int
	// BaseSeed feeds the per-request seed derivation for requests that
	// omit a task seed (0 means 1).
	BaseSeed int64
	// Registry resolves task kinds (nil means Default()).
	Registry *Registry
	// Fault, when non-nil, injects chaos (panics, errors, latency) into
	// every runner invocation — test and soak harness use only.
	Fault *FaultInjector
	// Cluster, when non-nil, executes tasks that carry a ClusterSpec on an
	// attached peer cluster (cmd/lmtd wires the internal/cluster
	// coordinator here). Requests without the spec field never touch it.
	Cluster ClusterRunner
}

// ClusterRunner executes one task across a set of registered peer
// processes; *cluster.Coordinator implements it. The cluster determinism
// contract requires Run to return exactly what the in-process runner for
// the kind would return with the same seed (modulo the execution-artifact
// stats counters), which is what lets the service treat TaskSpec.Cluster as
// schedule-only.
type ClusterRunner interface {
	// Peers reports how many peers are currently registered.
	Peers() int
	// Run executes the task over the graph on the cluster.
	Run(ctx context.Context, gs spec.GraphSpec, ts spec.TaskSpec) (any, error)
}

// Service is the long-running job layer: a registry, a graph cache, and an
// admission controller behind one Run entry point. Safe for concurrent
// use.
type Service struct {
	opts    Options
	reg     *Registry
	cache   *GraphCache
	results *ResultCache
	sem     chan struct{}
	ctr     counters
}

// New builds a Service.
func New(o Options) *Service {
	if o.CacheSize <= 0 {
		o.CacheSize = 16
	}
	if o.ResultCacheSize <= 0 {
		o.ResultCacheSize = 256
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = runtime.GOMAXPROCS(0)
		if o.MaxInFlight < 8 {
			o.MaxInFlight = 8
		}
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.Registry == nil {
		o.Registry = Default()
	}
	s := &Service{opts: o, reg: o.Registry, sem: make(chan struct{}, o.MaxInFlight)}
	s.cache = newGraphCache(o.CacheSize, &s.ctr)
	s.results = newResultCache(o.ResultCacheSize, &s.ctr)
	return s
}

// MaxInFlight reports the admission cap.
func (s *Service) MaxInFlight() int { return cap(s.sem) }

// Tasks lists the registered task kinds.
func (s *Service) Tasks() []TaskInfo { return s.reg.Tasks() }

// Graph builds (or fetches) the spec'd graph through the cache, reporting
// whether it was already cached — the CLI uses it to print the header once
// and still get a cache hit on the following Run.
func (s *Service) Graph(gs spec.GraphSpec) (*graph.Graph, bool, error) {
	if err := gs.Validate(); err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	e, hit, err := s.cache.get(gs)
	if err != nil {
		return nil, hit, err
	}
	return e.g, hit, nil
}

// Run executes one request: validate, serve from the result cache when an
// identical request already completed (or share an identical in-flight
// computation), otherwise admit, resolve the graph through the cache,
// normalize the task (defaults and the per-request derived seed), resolve
// churn, and dispatch to the kind's runner — memoizing the response under
// the canonical request key on success. A task deadline (Task.DeadlineMS)
// bounds the whole call, admission queueing included, via the context.
// Results are byte-identical to the corresponding direct facade call; see
// the package documentation for the contract.
func (s *Service) Run(ctx context.Context, req Request) (*Response, error) {
	s.ctr.requests.Add(1)
	resp, err := s.run(ctx, req)
	if err != nil {
		s.ctr.errors.Add(1)
		return nil, err
	}
	return resp, nil
}

// run is Run without the request/error accounting.
func (s *Service) run(ctx context.Context, req Request) (*Response, error) {
	if err := req.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	if err := req.Task.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	run, ok := s.reg.Runner(req.Task.Kind)
	if !ok {
		return nil, fmt.Errorf("%w: unregistered task kind %q", ErrInvalidRequest, req.Task.Kind)
	}
	if d := req.Task.Deadline(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	// Fast path: with a warm graph entry the canonical result key resolves
	// without building anything, and a memoized response (or an identical
	// in-flight computation to wait on) is served without taking an
	// admission slot — the near-free path a million identical curls ride.
	if entry, ok := s.cache.peek(req.Graph.Key()); ok && entry.err == nil {
		task := s.normalize(req, entry.g.N())
		key := resultKey(entry.key, task)
		if cr, ok := s.results.lookup(key); ok {
			s.ctr.graphHits.Add(1)
			return servedResponse(entry, task, cr, true, false), nil
		}
		if f, ok := s.results.join(key); ok {
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.err == nil {
				s.ctr.graphHits.Add(1)
				return servedResponse(entry, task, f.val, false, true), nil
			}
			if errors.Is(f.err, ErrRunnerPanic) {
				// Deterministic request, crashed leader: recomputing would
				// crash identically. Fail with the leader's tagged error.
				return nil, f.err
			}
			// The leader failed (possibly on its own deadline); fall through
			// and compute under our own admission slot and context.
		}
	}

	// Admission: at most MaxInFlight requests execute; the rest wait here
	// until a slot frees, the caller gives up, or the bounded wait queue
	// overflows and the request is shed.
	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	defer func() { <-s.sem }()
	in := s.ctr.inFlight.Add(1)
	defer s.ctr.inFlight.Add(-1)
	for {
		peak := s.ctr.peakInFlight.Load()
		if in <= peak || s.ctr.peakInFlight.CompareAndSwap(peak, in) {
			break
		}
	}

	return s.execute(ctx, run, req)
}

// admit acquires an execution slot. When every slot is busy the request
// queues; with Options.MaxQueued set, a full queue sheds the request
// immediately with ErrOverloaded instead — load the service cannot serve
// within a useful latency is refused at the door, where it is cheapest.
func (s *Service) admit(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil // a free slot: no queueing at all
	default:
	}
	if m := s.opts.MaxQueued; m > 0 {
		if q := s.ctr.queued.Add(1); q > int64(m) {
			s.ctr.queued.Add(-1)
			s.ctr.shedRequests.Add(1)
			return fmt.Errorf("%w: %d requests executing and %d queued", ErrOverloaded, cap(s.sem), m)
		}
		defer s.ctr.queued.Add(-1)
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Shedding reports whether the admission wait queue is currently full —
// the readiness signal cmd/lmtd's /readyz exposes: a shedding instance is
// alive but should not receive new traffic.
func (s *Service) Shedding() bool {
	m := s.opts.MaxQueued
	return m > 0 && s.ctr.queued.Load() >= int64(m)
}

// servedResponse assembles a Response around a memoized result. The graph
// necessarily came from the cache (the result key embeds its key), so
// CacheHit is always true here.
func servedResponse(entry *cacheEntry, task spec.TaskSpec, cr *cachedResult, resultHit, shared bool) *Response {
	return &Response{
		Kind:      task.Kind,
		Graph:     GraphInfo{Key: entry.key, Name: entry.g.Name(), N: entry.g.N(), M: entry.g.M()},
		RunGraph:  cr.runGraph,
		CacheHit:  true,
		ResultHit: resultHit,
		Shared:    shared,
		Seed:      task.Seed,
		Result:    cr.result,
	}
}

// execute is Run past admission: resolve the graph, then compute through
// the result cache's singleflight group so concurrent identical requests
// fold into one runner invocation.
func (s *Service) execute(ctx context.Context, run Runner, req Request) (*Response, error) {
	entry, hit, err := s.cache.get(req.Graph)
	if err != nil {
		return nil, err
	}
	task := s.normalize(req, entry.g.N())
	key := resultKey(entry.key, task)
	var runGraph *GraphInfo
	cr, resultHit, shared, err := s.results.do(ctx, key, func() (*cachedResult, error) {
		if task.Cluster != nil {
			res, err := s.runCluster(ctx, req.Graph, task)
			if err != nil {
				return nil, err
			}
			return &cachedResult{result: res}, nil
		}
		inv := &Invocation{Env: &Env{g: entry.g, entry: entry}, Task: task, Ctx: ctx, ctr: &s.ctr}
		if task.Churn != nil {
			cv, err := entry.churn(task)
			if err != nil {
				return nil, err
			}
			inv.Churn = cv.prov
			inv.churnKey = cv.key
			if cv.runG != entry.g {
				inv.Env = &Env{g: cv.runG, entry: entry}
				runGraph = &GraphInfo{Name: cv.runG.Name(), N: cv.runG.N(), M: cv.runG.M()}
			}
		}
		res, err := safeRun(run, inv, s.opts.Fault, &s.ctr)
		if err != nil {
			return nil, err
		}
		return &cachedResult{result: res, runGraph: runGraph}, nil
	})
	if err != nil {
		return nil, err
	}
	resp := servedResponse(entry, task, cr, resultHit, shared)
	resp.CacheHit = hit
	return resp, nil
}

// runCluster dispatches a ClusterSpec-carrying task to the attached peer
// cluster and accumulates the transport counters from the merged engine
// stats the result carries.
func (s *Service) runCluster(ctx context.Context, gs spec.GraphSpec, task spec.TaskSpec) (any, error) {
	if s.opts.Cluster == nil {
		return nil, fmt.Errorf("%w: no peer cluster attached to this service", ErrInvalidRequest)
	}
	s.ctr.clusterRuns.Add(1)
	res, err := s.opts.Cluster.Run(ctx, gs, task)
	if err != nil {
		return nil, err
	}
	var st *congest.Stats
	switch r := res.(type) {
	case *core.Result:
		st = r.Stats
	case *core.TokenWalkResult:
		st = r.Stats
		s.ctr.tokenRetries.Add(r.Retries)
	}
	if st != nil {
		s.ctr.wireBytes.Add(st.WireBytes)
		s.ctr.framesSent.Add(st.FramesSent)
		s.ctr.framesRecv.Add(st.FramesRecv)
	}
	return res, nil
}

// normalize fills the spec-path defaults: ε, the oracle step budget, and —
// when the request omits a seed — the deterministic per-request seed
// derived from the service base seed and the request content, so identical
// requests repeat identically while distinct requests draw uncorrelated
// randomness.
func (s *Service) normalize(req Request, n int) spec.TaskSpec {
	t := req.Task
	if t.Eps == 0 {
		t.Eps = spec.DefaultEps
	}
	switch t.Kind {
	case spec.KindOracleMixing, spec.KindOracleLocal, spec.KindOracleGraphMixing, spec.KindOracleGraphLocal:
		if t.MaxT == 0 {
			t.MaxT = 8 * n * n
		}
	}
	if t.Seed == 0 {
		// Hash the request content minus the schedule-only fields: the
		// whole stack guarantees results are worker-invariant, so two
		// requests differing only in Workers/SweepWorkers/DeadlineMS must
		// derive the same seed (and therefore the same results).
		hashed := t
		hashed.Workers, hashed.SweepWorkers, hashed.DeadlineMS = 0, 0, 0
		hashed.Cluster = nil // schedule-only, like Workers: same results either way
		h := fnv.New64a()
		h.Write([]byte(req.Graph.Key()))
		h.Write([]byte{'|'})
		h.Write([]byte(hashed.Key()))
		t.Seed = sweep.DeriveSeed(s.opts.BaseSeed^int64(h.Sum64()), 0)
	}
	return t
}

// Metrics is a point-in-time snapshot of the service counters (exposed at
// /metrics by cmd/lmtd).
type Metrics struct {
	// Requests counts every Run call; Errors the failed ones.
	Requests, Errors int64
	// InFlight is the current number of executing requests; PeakInFlight
	// the high-water mark (≤ the admission cap).
	InFlight, PeakInFlight int64
	// GraphHits and GraphMisses count graph-cache lookups.
	GraphHits, GraphMisses int64
	// KernelBuilds counts walk-kernel constructions (a warm cache stops
	// incrementing it).
	KernelBuilds int64
	// PoolBuilds and PoolHits count warm sweep-pool constructions and
	// reuses.
	PoolBuilds, PoolHits int64
	// ChurnBuilds counts churn-model constructions.
	ChurnBuilds int64
	// ResultHits and ResultMisses count result-cache lookups (a hit serves
	// the memoized response; a miss runs the task once and stores it).
	ResultHits, ResultMisses int64
	// SingleflightShared counts requests that attached to an identical
	// in-flight computation instead of running their own.
	SingleflightShared int64
	// ResultEvictions counts LRU evictions from the result cache;
	// ResultBytes is the JSON-encoded size of the currently memoized
	// results.
	ResultEvictions, ResultBytes int64
	// Batches counts RunBatch calls (each fans into Requests).
	Batches int64
	// Queued is the current number of requests waiting at admission;
	// bounded by Options.MaxQueued when set.
	Queued int64
	// RunnerPanics counts runner invocations that panicked and were
	// recovered into ErrRunnerPanic-tagged failures.
	RunnerPanics int64
	// ShedRequests counts requests refused at admission with ErrOverloaded
	// because the wait queue was full.
	ShedRequests int64
	// TokenRetries accumulates the edge-loss retries of every completed
	// walk task — how hard churn is hitting the token walks.
	TokenRetries int64
	// ClusterRuns counts tasks dispatched to the attached peer cluster.
	ClusterRuns int64
	// WireBytes, FramesSent and FramesRecv accumulate the cluster transport
	// counters of every completed cluster run (summed over peers; zero when
	// everything runs in-process).
	WireBytes, FramesSent, FramesRecv int64
	// CachedGraphs is the current graph-cache size; CachedResults the
	// current result-cache size.
	CachedGraphs  int
	CachedResults int
}

// Metrics snapshots the counters.
func (s *Service) Metrics() Metrics {
	return Metrics{
		Requests:           s.ctr.requests.Load(),
		Errors:             s.ctr.errors.Load(),
		InFlight:           s.ctr.inFlight.Load(),
		PeakInFlight:       s.ctr.peakInFlight.Load(),
		GraphHits:          s.ctr.graphHits.Load(),
		GraphMisses:        s.ctr.graphMisses.Load(),
		KernelBuilds:       s.ctr.kernelBuilds.Load(),
		PoolBuilds:         s.ctr.poolBuilds.Load(),
		PoolHits:           s.ctr.poolHits.Load(),
		ChurnBuilds:        s.ctr.churnBuilds.Load(),
		ResultHits:         s.ctr.resultHits.Load(),
		ResultMisses:       s.ctr.resultMisses.Load(),
		SingleflightShared: s.ctr.sfShared.Load(),
		ResultEvictions:    s.ctr.resultEvictions.Load(),
		ResultBytes:        s.ctr.resultBytes.Load(),
		Batches:            s.ctr.batches.Load(),
		Queued:             s.ctr.queued.Load(),
		RunnerPanics:       s.ctr.runnerPanics.Load(),
		ShedRequests:       s.ctr.shedRequests.Load(),
		TokenRetries:       s.ctr.tokenRetries.Load(),
		ClusterRuns:        s.ctr.clusterRuns.Load(),
		WireBytes:          s.ctr.wireBytes.Load(),
		FramesSent:         s.ctr.framesSent.Load(),
		FramesRecv:         s.ctr.framesRecv.Load(),
		CachedGraphs:       s.cache.len(),
		CachedResults:      s.results.len(),
	}
}
