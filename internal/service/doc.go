// Package service is the job layer: one spec-driven request path for every
// oracle, sweep, and dynamic run in the repository.
//
// A Request pairs a spec.GraphSpec (which graph) with a spec.TaskSpec
// (which computation). Run resolves the task kind through a Registry of
// runners — each runner wraps exactly one facade entry-point family of the
// root localmix package — against a GraphCache entry holding the built
// graph plus its lazily-built walk kernel, warm core.SweepPool workers,
// and churn providers, all keyed by the graph spec's canonical key. A
// semaphore bounds concurrent runs (admission control), and requests that
// omit a seed get a deterministic per-request seed derived from the
// service's base seed and the request content.
//
// Because every computation is deterministic given (graph key, normalized
// task key, resolved seed), finished Responses are memoized in an LRU
// ResultCache keyed by that triple: an identical repeat is served from
// memory without touching a runner, and concurrent identical requests are
// collapsed by a singleflight group into one computation whose result all
// waiters share. Schedule-only knobs (Workers, SweepWorkers, DeadlineMS)
// are zeroed out of the key because they never change the answer. Failed
// runs are never cached. RunBatch runs many tasks against one graph
// through the same path, so duplicate specs inside a batch dedup too.
// A TaskSpec may carry a DeadlineMS budget; Run wraps the context so
// overrunning computations abort cooperatively with a timeout error.
//
// Equivalence contract: for every registered kind, Run's result is
// byte-identical (reflect.DeepEqual) to the corresponding direct facade
// call — the facade itself delegates through the same runners via Call and
// a cache-less DirectEnv, so there is exactly one code path. The cache
// only changes *when* graphs and kernels are built, never what a runner
// computes; this is enforced by internal/service's tests.
//
// Concurrency: Run is safe for concurrent use. Cached sweep pools are
// serialized per pool key (a core.SweepPool is single-sweep at a time);
// kernels and graphs are immutable and shared freely.
package service
