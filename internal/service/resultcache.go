package service

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/spec"
)

// ResultCache memoizes completed Responses: an LRU keyed by the canonical
// request key, fronted by a singleflight group so N concurrent identical
// requests cost one runner invocation and N−1 waiters. Every request the
// service accepts is deterministic once its seed is resolved — a
// (graph key, normalized task key) pair has exactly one answer — so a hit
// may serve the stored result verbatim, with no graph build, no kernel, and
// no oracle run behind it.
//
// Only successful results are stored. Errors — including deadline
// cancellations, which abort a run midway, and recovered runner panics —
// complete their flight and are returned to that flight's waiters, but
// never enter the LRU: the cache cannot be poisoned by a partial or failed
// computation. A panicking leader still completes its flight (lead's
// deferred cleanup), so waiters can never be stranded on a crashed
// computation.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *resultEntry
	items   map[string]*list.Element
	flights map[string]*flight
	ctr     *counters
}

// resultEntry is one memoized result under its canonical key.
type resultEntry struct {
	key string
	val *cachedResult
}

// cachedResult is the stored portion of a Response: the runner's result,
// the run-graph descriptor for churned runs, and the JSON-encoded size used
// for the bytes gauge.
type cachedResult struct {
	result   any
	runGraph *GraphInfo
	bytes    int64
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  *cachedResult
	err  error
}

// newResultCache builds a cache holding at most capEntries results.
func newResultCache(capEntries int, ctr *counters) *ResultCache {
	return &ResultCache{
		cap:     capEntries,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
		ctr:     ctr,
	}
}

// resultKey renders the canonical key of a normalized task over a graph.
// The task must already carry its resolved seed and filled defaults
// (Service.normalize); the schedule-only fields — Workers, SweepWorkers,
// DeadlineMS, Cluster — are zeroed out, exactly as the derived-seed hashing
// zeroes them, because they never change a completed result (for Cluster,
// that is the determinism contract of internal/cluster).
func resultKey(graphKey string, t spec.TaskSpec) string {
	t.Workers, t.SweepWorkers, t.DeadlineMS = 0, 0, 0
	t.Cluster = nil
	return graphKey + "|" + t.Key()
}

// lookup serves a memoized result if one exists, refreshing its LRU
// position and counting the hit. Misses are not counted here — do counts
// them when a computation actually starts, so a fast-path miss that falls
// through to do is one miss, not two.
func (c *ResultCache) lookup(key string) (*cachedResult, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	c.ctr.resultHits.Add(1)
	return el.Value.(*resultEntry).val, true
}

// join attaches to an in-progress identical computation, if any. The caller
// must then wait on the returned flight (bounded by its own context); a
// successful flight's value may be served, a failed one must be recomputed
// by the caller (typically by falling through to the admitted do path).
func (c *ResultCache) join(key string) (*flight, bool) {
	c.mu.Lock()
	f, ok := c.flights[key]
	c.mu.Unlock()
	if ok {
		c.ctr.sfShared.Add(1)
	}
	return f, ok
}

// do is the singleflight entry point: serve the memoized result, else join
// an in-flight identical computation, else lead one by calling compute.
// shared reports that the result came from another request's flight. A
// failed flight is never served to other requests — its waiters loop and
// recompute with their own context, so one request's deadline abort cannot
// fail an identical request that had the budget to finish. The one
// exception is a panicked leader (ErrRunnerPanic): the waiters fail with
// the same tagged error instead of re-running a computation that crashes.
func (c *ResultCache) do(ctx context.Context, key string, compute func() (*cachedResult, error)) (val *cachedResult, hit, shared bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.mu.Unlock()
			c.ctr.resultHits.Add(1)
			return el.Value.(*resultEntry).val, true, false, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			c.ctr.sfShared.Add(1)
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, true, ctx.Err()
			}
			if f.err == nil {
				return f.val, false, true, nil
			}
			if errors.Is(f.err, ErrRunnerPanic) {
				// The request is deterministic: a leader that panicked on it
				// would panic for us too. Fail with the leader's tagged error
				// instead of recomputing the crash.
				return nil, false, true, f.err
			}
			continue // the leader failed (e.g. its own deadline); retry under our own context
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		c.ctr.resultMisses.Add(1)
		c.lead(key, f, compute)
		return f.val, false, false, f.err
	}
}

// lead runs one computation as the flight's leader. The flight completes on
// every exit path — including a compute panic escaping its own recovery —
// via the deferred cleanup: the panic is converted to an ErrRunnerPanic
// error first, then the flight is deleted, a success is memoized, and done
// is closed, so waiters always unblock and a crashed leader leaks nothing.
func (c *ResultCache) lead(key string, f *flight, compute func() (*cachedResult, error)) {
	panicked := true
	defer func() {
		if panicked {
			f.val, f.err = nil, fmt.Errorf("%w: %v", ErrRunnerPanic, recover())
		}
		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil {
			c.insertLocked(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	panicked = false
}

// insertLocked stores a completed result and evicts from the LRU tail past
// capacity. Caller holds mu.
func (c *ResultCache) insertLocked(key string, val *cachedResult) {
	if val.bytes == 0 {
		if b, err := json.Marshal(val.result); err == nil {
			val.bytes = int64(len(b))
		}
	}
	c.items[key] = c.ll.PushFront(&resultEntry{key: key, val: val})
	c.ctr.resultBytes.Add(val.bytes)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*resultEntry)
		delete(c.items, e.key)
		c.ctr.resultBytes.Add(-e.val.bytes)
		c.ctr.resultEvictions.Add(1)
	}
}

// len reports the number of memoized results.
func (c *ResultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
