package service

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/exact"
	"repro/internal/spec"
	"repro/internal/spread"
)

// TauResult wraps the scalar answer of the mixing-time oracles so every
// runner returns a JSON-marshalable struct.
type TauResult struct {
	// Tau is the computed (local) mixing time in walk steps.
	Tau int
}

// RoundsResult wraps the scalar answer of round-counting tasks (leader
// election).
type RoundsResult struct {
	// Rounds is the number of gossip rounds executed.
	Rounds int
}

// registerBuiltins registers one runner per facade entry-point family.
// Each description names the equivalent localmix facade call — the
// equivalence the service tests enforce with reflect.DeepEqual.
func registerBuiltins(r *Registry) {
	r.Register(spec.KindOracleMixing,
		"centralized exact mixing time τ_mix_s(ε) (= localmix.MixingTime)",
		runOracleMixing)
	r.Register(spec.KindOracleLocal,
		"centralized exact local mixing time τ_s(β,ε) with witness set (= localmix.LocalMixingTime)",
		runOracleLocal)
	r.Register(spec.KindOracleGraphMixing,
		"centralized batched all-sources mixing time τ_mix(ε) (= localmix.GraphMixingTime)",
		runOracleGraphMixing)
	r.Register(spec.KindOracleGraphLocal,
		"centralized graph-wide local mixing time τ(β,ε) (= localmix.GraphLocalMixingTime)",
		runOracleGraphLocal)
	r.Register(spec.KindMixing,
		"distributed [18]-style mixing time (= localmix.DistributedMixingTime)",
		runMixing)
	r.Register(spec.KindLocal,
		"distributed Algorithm 2 / §3.2-exact local mixing time (= localmix.Distributed(Exact)LocalMixingTime)",
		runLocal)
	r.Register(spec.KindSweep,
		"parallel multi-source distributed sweep, warm pools (= localmix.DistributedGraph*MixingTime)",
		runSweep)
	r.Register(spec.KindDynamic,
		"distributed run on a churned network (= localmix.Dynamic(Local)MixingTime)",
		runDynamic)
	r.Register(spec.KindWalk,
		"token-forwarding random walk, one hop per round (= localmix.DynamicWalk)",
		runWalk)
	r.Register(spec.KindEstimate,
		"Algorithm 1 fixed-point walk-distribution estimate (= localmix.EstimateRWProbability)",
		runEstimate)
	r.Register(spec.KindSpread,
		"push–pull gossip (§4): local, congest, or engine transport (= localmix.PushPull*)",
		runSpread)
	r.Register(spec.KindLeader,
		"min-id leader election over gossip (= localmix.LeaderElection)",
		runLeader)
	r.Register(spec.KindCoverage,
		"distributed maximum coverage via partial spreading (= localmix.DistributedMaxCoverage)",
		runCoverage)
}

// taskOptions renders the spec's engine knobs as the facade's functional
// options. Zero spec fields emit no option, so a facade invocation (all
// knobs in Invocation.Opts, zero Task fields) composes to exactly the
// caller's option list.
func taskOptions(t spec.TaskSpec) []core.Option {
	var o []core.Option
	if t.Lazy {
		o = append(o, core.WithLazy())
	}
	if t.Seed != 0 {
		o = append(o, core.WithSeed(t.Seed))
	}
	if t.C != 0 {
		o = append(o, core.WithC(t.C))
	}
	if t.MaxLength != 0 {
		o = append(o, core.WithMaxLength(t.MaxLength))
	}
	if t.Irregular {
		o = append(o, core.WithIrregular())
	}
	if t.Workers != 0 {
		o = append(o, core.WithWorkers(t.Workers))
	}
	if t.TieBreakBits != 0 {
		o = append(o, core.WithRandomTieBreak(t.TieBreakBits))
	}
	if t.MaxRounds != 0 {
		o = append(o, core.WithMaxRounds(t.MaxRounds))
	}
	if t.RetryBudget != 0 {
		o = append(o, core.WithRetryBudget(t.RetryBudget))
	}
	return o
}

// distOptions merges the Task-derived options with the facade overrides
// and the resolved churn provider.
func distOptions(inv *Invocation) []core.Option {
	opts := append(taskOptions(inv.Task), inv.Opts...)
	if inv.Churn != nil {
		opts = append(opts, core.WithTopology(inv.Churn))
	}
	return opts
}

// localOptions renders the centralized-oracle options from the spec, or
// the facade override verbatim.
func localOptions(inv *Invocation) exact.LocalOptions {
	if inv.Local != nil {
		return *inv.Local
	}
	t := inv.Task
	return exact.LocalOptions{
		Lazy:    t.Lazy,
		MaxT:    t.MaxT,
		Grid:    !t.FullScan,
		Workers: t.Workers,
	}
}

func runOracleMixing(inv *Invocation) (any, error) {
	t := inv.Task
	g := inv.Env.Graph()
	if err := exact.ValidateMixingParams(g, t.Eps, t.Lazy); err != nil {
		return nil, err
	}
	k, err := inv.Env.kernel(t.Workers)
	if err != nil {
		return nil, err
	}
	tau, err := exact.MixingTimeKernel(inv.Context(), g, k, t.Source, t.Eps, t.Lazy, t.MaxT)
	if err != nil {
		return nil, err
	}
	return &TauResult{Tau: tau}, nil
}

func runOracleLocal(inv *Invocation) (any, error) {
	t := inv.Task
	g := inv.Env.Graph()
	o := localOptions(inv)
	if err := exact.ValidateLocalParams(g, t.Beta, t.Eps, o); err != nil {
		return nil, err
	}
	k, err := inv.Env.kernel(o.Workers)
	if err != nil {
		return nil, err
	}
	return exact.LocalMixingKernel(inv.Context(), g, k, t.Source, t.Beta, t.Eps, o)
}

func runOracleGraphMixing(inv *Invocation) (any, error) {
	t := inv.Task
	g := inv.Env.Graph()
	if err := exact.ValidateMixingParams(g, t.Eps, t.Lazy); err != nil {
		return nil, err
	}
	k, err := inv.Env.kernel(t.Workers)
	if err != nil {
		return nil, err
	}
	tau, err := exact.GraphMixingTimeKernel(inv.Context(), g, k, t.Eps, t.Lazy, t.MaxT)
	if err != nil {
		return nil, err
	}
	return &TauResult{Tau: tau}, nil
}

func runOracleGraphLocal(inv *Invocation) (any, error) {
	t := inv.Task
	g := inv.Env.Graph()
	o := localOptions(inv)
	if err := exact.ValidateLocalParams(g, t.Beta, t.Eps, o); err != nil {
		return nil, err
	}
	k, err := inv.Env.kernel(o.Workers)
	if err != nil {
		return nil, err
	}
	return exact.GraphLocalMixingKernel(inv.Context(), g, k, t.Beta, t.Eps, o, t.Sources)
}

func runMixing(inv *Invocation) (any, error) {
	t := inv.Task
	return core.MixingTime(inv.Env.Graph(), t.Source, t.Eps, distOptions(inv)...)
}

func runLocal(inv *Invocation) (any, error) {
	t := inv.Task
	if t.Exact {
		return core.ExactLocalMixingTime(inv.Env.Graph(), t.Source, t.Beta, t.Eps, distOptions(inv)...)
	}
	return core.ApproxLocalMixingTime(inv.Env.Graph(), t.Source, t.Beta, t.Eps, distOptions(inv)...)
}

func runDynamic(inv *Invocation) (any, error) {
	t := inv.Task
	opts := append(taskOptions(t), inv.Opts...)
	if t.Mode == "mixing" {
		return core.DynamicMixingTime(inv.Env.Graph(), t.Source, t.Eps, inv.Churn, opts...)
	}
	return core.DynamicLocalMixingTime(inv.Env.Graph(), t.Source, t.Beta, t.Eps, inv.Churn, opts...)
}

func runWalk(inv *Invocation) (any, error) {
	t := inv.Task
	res, err := core.TokenWalk(inv.Env.Graph(), t.Source, t.Steps, distOptions(inv)...)
	if err != nil {
		return nil, err
	}
	if inv.ctr != nil {
		inv.ctr.tokenRetries.Add(int64(res.Retries))
	}
	return res, nil
}

func runEstimate(inv *Invocation) (any, error) {
	t := inv.Task
	return core.EstimateRWProbability(inv.Env.Graph(), t.Source, t.Steps, core.Config{Lazy: t.Lazy})
}

// sweepMode resolves the sweep kind's per-source algorithm.
func sweepMode(mode string) (core.Mode, error) {
	switch mode {
	case "", "approx":
		return core.ApproxLocal, nil
	case "exact":
		return core.ExactLocal, nil
	case "mixing":
		return core.MixTime, nil
	default:
		return 0, fmt.Errorf("service: unknown sweep mode %q", mode)
	}
}

func runSweep(inv *Invocation) (any, error) {
	t := inv.Task
	mode, err := sweepMode(t.Mode)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Mode: mode, Beta: t.Beta, Eps: t.Eps}
	for _, op := range append(taskOptions(t), inv.Opts...) {
		op(&cfg)
	}
	if inv.Churn != nil {
		cfg.Engine.Topology = inv.Churn
	}
	o := core.SweepOptions{Workers: t.SweepWorkers, Sources: t.Sources, Sample: t.Sample}
	if inv.SweepOpts != nil {
		o = *inv.SweepOpts
	}
	if o.Ctx == nil {
		o.Ctx = inv.Ctx
	}
	sw, err := inv.Env.sweepPool(poolKey(cfg, inv.churnKey, o.Workers), cfg, o.Workers)
	if err != nil {
		return nil, err
	}
	return sw.Sweep(o)
}

// poolKey renders the canonical key of a warm sweep pool: everything in
// the resolved config that selects the pool's algorithm, parameters, and
// seeds — but not the per-sweep source selection, so repeated sweeps with
// different samples share one pool.
func poolKey(cfg core.Config, churnKey string, workers int) string {
	return fmt.Sprintf("m=%v/b=%g/e=%g/lazy=%t/c=%d/ml=%d/tb=%d/irr=%t/seed=%d/ew=%d/mr=%d/bw=%d/model=%v/churn=%s/w=%d",
		cfg.Mode, cfg.Beta, cfg.Eps, cfg.Lazy, cfg.C, cfg.MaxLength, cfg.TieBreakBits,
		cfg.AllowIrregular, cfg.Engine.Seed, cfg.Engine.Workers, cfg.Engine.MaxRounds,
		cfg.Engine.BandwidthBits, cfg.Engine.Model, churnKey, workers)
}

func runSpread(inv *Invocation) (any, error) {
	t := inv.Task
	cfg := spread.Config{
		Beta:          t.Beta,
		MaxRounds:     t.MaxRounds,
		Seed:          t.Seed,
		StopAtPartial: t.StopAtPartial,
		FixedRounds:   t.FixedRounds,
		Workers:       t.Workers,
	}
	if inv.Spread != nil {
		cfg = *inv.Spread
	}
	switch t.Transport {
	case "", "local":
		return spread.Run(inv.Env.Graph(), cfg)
	case "congest":
		return spread.RunCongest(inv.Env.Graph(), cfg)
	case "engine":
		return spread.RunOnEngine(inv.Env.Graph(), cfg)
	default:
		return nil, fmt.Errorf("service: unknown spread transport %q", t.Transport)
	}
}

func runLeader(inv *Invocation) (any, error) {
	t := inv.Task
	rounds, err := spread.LeaderElection(inv.Env.Graph(), t.Seed, t.MaxRounds)
	if err != nil {
		return nil, err
	}
	return &RoundsResult{Rounds: rounds}, nil
}

func runCoverage(inv *Invocation) (any, error) {
	t := inv.Task
	inst := inv.Instance
	engine := t.Coverage != nil && t.Coverage.Engine
	if inst == nil {
		c := t.Coverage
		if c == nil {
			return nil, fmt.Errorf("service: coverage task needs an instance spec")
		}
		var err error
		inst, err = coverage.RandomInstance(inv.Env.Graph().N(), c.Universe, c.PerNode, c.K,
			rand.New(rand.NewSource(c.Seed)))
		if err != nil {
			return nil, err
		}
	}
	if engine {
		return coverage.DistributedEngine(inv.Env.Graph(), inst, t.Beta, t.Seed)
	}
	return coverage.Distributed(inv.Env.Graph(), inst, t.Beta, t.Seed)
}
