package service

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/dyngraph"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/walkkernel"
)

// counters are the service's atomic metrics, shared with the cache entries
// so kernel/pool builds are counted where they happen. Every field is an
// independent atomic: increments are race-free under -race, but a Metrics
// snapshot reads them one by one, so cross-counter invariants (e.g.
// hits+misses == lookups) may be off by in-flight requests at the instant
// of the read. That is the documented contract — per-counter exactness,
// not a globally consistent cut.
type counters struct {
	requests        atomic.Int64
	errors          atomic.Int64
	inFlight        atomic.Int64
	peakInFlight    atomic.Int64
	graphHits       atomic.Int64
	graphMisses     atomic.Int64
	kernelBuilds    atomic.Int64
	poolBuilds      atomic.Int64
	poolHits        atomic.Int64
	churnBuilds     atomic.Int64
	resultHits      atomic.Int64
	resultMisses    atomic.Int64
	sfShared        atomic.Int64
	resultEvictions atomic.Int64
	resultBytes     atomic.Int64
	batches         atomic.Int64
	queued          atomic.Int64
	runnerPanics    atomic.Int64
	shedRequests    atomic.Int64
	tokenRetries    atomic.Int64
	clusterRuns     atomic.Int64
	wireBytes       atomic.Int64
	framesSent      atomic.Int64
	framesRecv      atomic.Int64
}

// GraphCache is a thread-safe LRU of built graphs keyed by the canonical
// GraphSpec key. Each entry also owns the graph's derived artifacts — the
// walk kernel, warm sweep pools, churn providers — so a warm repeated
// request allocates none of them.
type GraphCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *cacheEntry
	items map[string]*list.Element
	ctr   *counters
}

// newGraphCache builds a cache holding at most capEntries graphs.
func newGraphCache(capEntries int, ctr *counters) *GraphCache {
	return &GraphCache{cap: capEntries, ll: list.New(), items: make(map[string]*list.Element), ctr: ctr}
}

// get returns the entry for gs, building the graph at most once per cached
// key even under concurrent first access. hit reports whether the entry
// already existed.
func (c *GraphCache) get(gs spec.GraphSpec) (*cacheEntry, bool, error) {
	key := gs.Key()
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		c.ctr.graphHits.Add(1)
		e.build()
		return e, true, e.err
	}
	e := &cacheEntry{key: key, spec: gs, ctr: c.ctr}
	c.items[key] = c.ll.PushFront(e)
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()
	c.ctr.graphMisses.Add(1)
	e.build()
	return e, false, e.err
}

// peek returns the already-cached entry for key without building anything
// and without touching the hit/miss counters (the caller decides whether
// its overall request counts as a graph hit — see Service.Run's fast
// path). If the entry's graph build is still in progress the call waits for
// it, which is at most as long as the slow path would wait.
func (c *GraphCache) peek(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	e.build()
	return e, true
}

// len reports the number of cached entries.
func (c *GraphCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheEntry owns one cached graph and its derived artifacts. The graph is
// built once (buildOnce); the kernel, pools, and churn models are built
// lazily under mu on first use and reused by every later request.
type cacheEntry struct {
	key       string
	spec      spec.GraphSpec
	ctr       *counters
	buildOnce sync.Once
	g         *graph.Graph
	err       error

	mu      sync.Mutex
	kern    *walkkernel.Kernel
	kernErr error
	pools   map[string]*pooledSweep
	churns  map[string]*churnVal
}

func (e *cacheEntry) build() {
	e.buildOnce.Do(func() { e.g, e.err = e.spec.Build() })
}

// kernel returns the entry's shared walk kernel, building it on first use
// with the default worker count (oracle results are invariant under it).
func (e *cacheEntry) kernel() (*walkkernel.Kernel, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.kern == nil && e.kernErr == nil {
		e.kern, e.kernErr = exact.NewKernel(e.g, 0)
		e.ctr.kernelBuilds.Add(1)
	}
	return e.kern, e.kernErr
}

// pool returns the warm sweep pool for key, building it on first use on
// the given run graph (the spec graph, or a snapshot-churn superset).
func (e *cacheEntry) pool(key string, g *graph.Graph, cfg core.Config, workers int) (*pooledSweep, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.pools[key]; ok {
		e.ctr.poolHits.Add(1)
		return p, nil
	}
	sp, err := core.NewSweepPool(g, cfg, workers)
	if err != nil {
		return nil, err
	}
	e.ctr.poolBuilds.Add(1)
	if e.pools == nil {
		e.pools = make(map[string]*pooledSweep)
	}
	p := &pooledSweep{sp: sp}
	e.pools[key] = p
	return p, nil
}

// churnVal is a resolved churn model: the provider plus the graph the
// network must be built on (the spec graph, or the rotating-regular
// superset for snapshot models).
type churnVal struct {
	prov congest.TopologyProvider
	runG *graph.Graph
	key  string
}

// churn resolves (and caches) the task's churn model. The effective model
// seed falls back to the task seed, matching cmd/lmt's -churnseed 0
// semantics.
func (e *cacheEntry) churn(t spec.TaskSpec) (*churnVal, error) {
	cs := *t.Churn
	if cs.Seed == 0 {
		cs.Seed = t.Seed
	}
	key := churnKey(cs)
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.churns[key]; ok {
		return v, nil
	}
	prov, runG, err := buildChurn(e.g, cs)
	if err != nil {
		return nil, err
	}
	e.ctr.churnBuilds.Add(1)
	if e.churns == nil {
		e.churns = make(map[string]*churnVal)
	}
	v := &churnVal{prov: prov, runG: runG, key: key}
	e.churns[key] = v
	return v, nil
}

// churnKey renders the canonical key of a fully-resolved churn spec.
func churnKey(cs spec.ChurnSpec) string {
	return fmt.Sprintf("%s/r=%g/on=%g/ev=%d/sn=%d/d=%d/bu=%d/dn=%d/seed=%d",
		cs.Model, cs.Rate, cs.On, cs.Every, cs.Snapshots, cs.Degree, cs.Budget, cs.Down, cs.Seed)
}

// buildChurn constructs the provider named by a resolved churn spec over
// the superset g. Rate, On, Every, Budget and Down are passed verbatim —
// On = 0 is the legitimate "edges never reactivate" chain and a missing
// Every (or crash Down) is the model's own validation error, exactly as
// the dyngraph constructors have always behaved. Only the snapshot count
// and degree, which have no prior CLI semantics, carry defaults (3 samples
// of degree 4).
func buildChurn(g *graph.Graph, cs spec.ChurnSpec) (congest.TopologyProvider, *graph.Graph, error) {
	switch cs.Model {
	case "markov":
		prov, err := dyngraph.NewEdgeMarkov(g, cs.Seed, cs.Rate, cs.On)
		return prov, g, err
	case "interval":
		prov, err := dyngraph.NewInterval(g, cs.Seed, cs.Every, 1-cs.Rate)
		return prov, g, err
	case "snapshot":
		count := cs.Snapshots
		if count == 0 {
			count = 3
		}
		deg := cs.Degree
		if deg == 0 {
			deg = 4
		}
		prov, super, err := dyngraph.NewRotatingRegular(g.N(), deg, count, cs.Every, cs.Seed)
		if err != nil {
			return nil, nil, err
		}
		return prov, super, nil
	case "chaser":
		prov, err := dyngraph.NewTokenChaser(g, cs.Seed, cs.Budget)
		return prov, g, err
	case "cutter":
		prov, err := dyngraph.NewUniformCutter(g, cs.Seed, cs.Budget)
		return prov, g, err
	case "crash":
		prov, err := dyngraph.NewCrashRestart(g, cs.Seed, cs.Rate, cs.Down)
		return prov, g, err
	default:
		return nil, nil, fmt.Errorf("service: unknown churn model %q", cs.Model)
	}
}

// pooledSweep serializes sweeps on one warm core.SweepPool (a pool's
// worker networks are single-sweep at a time).
type pooledSweep struct {
	mu sync.Mutex
	sp *core.SweepPool
}

// Sweep runs one sweep on the warm pool.
func (p *pooledSweep) Sweep(o core.SweepOptions) (*core.MultiResult, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sp.Sweep(o)
}

// sweeper abstracts the warm (cached) and one-shot (facade) sweep paths.
type sweeper interface {
	Sweep(o core.SweepOptions) (*core.MultiResult, error)
}

// Env is a runner's execution environment: the run graph plus, for cached
// requests, the entry providing shared kernels and warm pools. A nil entry
// (DirectEnv) builds everything fresh — the facade's historical behavior.
type Env struct {
	g     *graph.Graph
	entry *cacheEntry
}

// DirectEnv wraps an already-built graph with no cache behind it: every
// kernel and pool is built fresh, exactly as the direct facade calls
// always did.
func DirectEnv(g *graph.Graph) *Env { return &Env{g: g} }

// Graph returns the run graph.
func (e *Env) Graph() *graph.Graph { return e.g }

// kernel returns a walk kernel for the run graph: the entry's shared one
// when cached, or a fresh build with the requested worker count.
func (e *Env) kernel(workers int) (*walkkernel.Kernel, error) {
	if e.entry == nil || e.entry.g != e.g {
		return exact.NewKernel(e.g, workers)
	}
	return e.entry.kernel()
}

// sweepPool returns a sweeper for cfg: the entry's warm pool under key
// when cached, or a one-shot pool (the facade path).
func (e *Env) sweepPool(key string, cfg core.Config, workers int) (sweeper, error) {
	if e.entry == nil {
		return core.NewSweepPool(e.g, cfg, workers)
	}
	return e.entry.pool(key, e.g, cfg, workers)
}
