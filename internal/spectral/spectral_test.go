package spectral

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/graph"
)

// lazyLambda2 converts a known simple-chain eigenvalue to its lazy version.
func lazyLambda2(simple float64) float64 { return (1 + simple) / 2 }

func TestLambda2CompleteGraph(t *testing.T) {
	const n = 32
	g, _ := gen.Complete(n)
	got, err := SecondEigenvalue(g, Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	want := lazyLambda2(-1.0 / (n - 1))
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("K%d λ₂ = %v, want %v", n, got, want)
	}
}

func TestLambda2Cycle(t *testing.T) {
	const n = 24
	g, _ := gen.Cycle(n)
	got, err := SecondEigenvalue(g, Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	want := lazyLambda2(math.Cos(2 * math.Pi / n))
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("C%d λ₂ = %v, want %v", n, got, want)
	}
}

func TestLambda2Hypercube(t *testing.T) {
	const dim = 5
	g, _ := gen.Hypercube(dim)
	got, err := SecondEigenvalue(g, Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	want := lazyLambda2(float64(dim-2) / float64(dim)) // (d−2)/d for Q_d
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("Q%d λ₂ = %v, want %v", dim, got, want)
	}
}

func TestLambda2Disconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := SecondEigenvalue(b.Build(), Options{Lazy: true}); err == nil {
		t.Error("disconnected accepted")
	}
}

// TestRelaxationSandwich: 1/(1−λ₂) − 1 ≤ τ_mix(ε) ≤ ln(n/ε)/(1−λ₂) on
// several graphs, with τ_mix from the exact oracle (lazy chain).
func TestRelaxationSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	graphs := []*graph.Graph{}
	if g, err := gen.RandomRegular(64, 4, rng); err == nil {
		graphs = append(graphs, g)
	}
	g2, _ := gen.Cycle(32)
	g3, _ := gen.Complete(24)
	graphs = append(graphs, g2, g3)
	const eps = 0.05
	for _, g := range graphs {
		l2, err := SecondEigenvalue(g, Options{Lazy: true})
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		lower, upper := RelaxationBounds(l2, g.N(), eps)
		tmix, err := exact.GraphMixingTime(g, eps, true, 1<<20)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		// The classical bounds are for total-variation = L1/2; our τ uses
		// L1 < ε. Allow the standard factor-2 slack on both sides.
		if float64(tmix) < lower/4-2 {
			t.Errorf("%s: τ_mix=%d below relaxation lower bound %v", g.Name(), tmix, lower)
		}
		if float64(tmix) > 4*upper+8 {
			t.Errorf("%s: τ_mix=%d above relaxation upper bound %v", g.Name(), tmix, upper)
		}
	}
}

func TestSweepCutFindsBarbellBridge(t *testing.T) {
	g, err := gen.Dumbbell(12, 0)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := Conductance(g, Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	// The optimal cut is the single bridge: φ = 1/(12·11) ≈ 0.0076.
	want := 1.0 / (12*11 + 1)
	if phi > 3*want {
		t.Errorf("dumbbell conductance %v, want ≈ %v (the bridge cut)", phi, want)
	}
}

// TestCheegerInequality: Φ²/2 ≤ 1−λ₂ ≤ 2Φ for the lazy chain (the paper's
// §1 relation, in Cheeger form).
func TestCheegerInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, build := range []func() (*graph.Graph, error){
		func() (*graph.Graph, error) { return gen.Cycle(20) },
		func() (*graph.Graph, error) { return gen.Complete(16) },
		func() (*graph.Graph, error) { return gen.RandomRegular(40, 4, rng) },
		func() (*graph.Graph, error) { return gen.Dumbbell(8, 0) },
	} {
		g, err := build()
		if err != nil {
			t.Fatal(err)
		}
		l2, err := SecondEigenvalue(g, Options{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		gap := 1 - l2
		phiHat, err := Conductance(g, Options{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		// φ̂ overestimates Φ, so gap ≤ 2Φ ≤ 2φ̂ must hold; and the sweep of
		// the true eigenvector guarantees φ̂ ≤ sqrt(2·gap) (lazy chain).
		if gap > 2*phiHat*2+1e-9 { // slack 2 for the lazy halving
			t.Errorf("%s: gap %v > 2Φ̂=%v", g.Name(), gap, 2*phiHat)
		}
		if phiHat > math.Sqrt(2*gap)*2+1e-9 {
			t.Errorf("%s: Φ̂=%v above Cheeger sqrt bound %v", g.Name(), phiHat, math.Sqrt(2*gap))
		}
	}
}

func TestSweepCutValidation(t *testing.T) {
	g, _ := gen.Complete(5)
	if _, _, err := SweepCut(g, []float64{1, 2}); err == nil {
		t.Error("wrong score length accepted")
	}
}

// TestWeakConductanceBarbell: the weak conductance of a barbell is large
// (the clique communities mix internally) even though the global
// conductance is tiny — the [4] separation the paper builds on.
func TestWeakConductanceBarbell(t *testing.T) {
	g, err := gen.Barbell(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := WeakConductance(g, 0, 6, 1.0/(8*math.E), false, 2000)
	if err != nil {
		t.Fatal(err)
	}
	global, err := Conductance(g, Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if wc.Phi < 5*global {
		t.Errorf("weak conductance %v not ≫ global %v", wc.Phi, global)
	}
	if wc.LocalTau > 10 {
		t.Errorf("witness local mixing time %d, want O(1)", wc.LocalTau)
	}
}
