// Package spectral provides the spectral quantities the paper's
// introduction relates to mixing: the second-largest eigenvalue λ₂ of the
// (lazy) transition matrix via deflated power iteration, the relaxation-time
// bounds 1/(1−λ₂) ≤ τ_mix ≤ O(log n)/(1−λ₂), sweep-cut conductance profiles
// (Cheeger), and a heuristic for the weak conductance Φ_β of Censor-Hillel &
// Shachnai — the parameter the paper conjectures is tightly related to the
// local mixing time (§5, open problems; experiments E10/E11).
//
// The power iteration runs on the shared walk kernel with a fixed
// deterministic start vector and tolerance schedule — no randomness — so
// every bound reported here is reproducible bit for bit.
package spectral
