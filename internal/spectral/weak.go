package spectral

import (
	"errors"
	"fmt"

	"repro/internal/exact"
	"repro/internal/graph"
)

// WeakConductanceResult reports the heuristic Φ_β estimate at one vertex.
type WeakConductanceResult struct {
	// Phi is the internal conductance estimate of the witness community.
	Phi float64
	// Set is the witness community containing the vertex.
	Set []int
	// LocalTau is the local mixing time used to find the witness.
	LocalTau int
}

// WeakConductance heuristically estimates the weak conductance Φ_β(G) at a
// vertex v, in the sense of Censor-Hillel & Shachnai [4]: the best internal
// conductance of a set S ∋ v with |S| ≥ n/β. Exact computation is
// intractable (it minimizes over exponentially many sets and needs the
// conductance *of the induced subgraph*), so we use the natural relaxation
// the paper's conjecture suggests: take the witness local-mixing set of v —
// the set the walk from v spreads over — and measure the spectral
// conductance of the subgraph it induces.
//
// The paper leaves the τ_s(β) ↔ Φ_β relationship as an open problem; the
// E11 experiment uses this estimator to study it empirically.
func WeakConductance(g *graph.Graph, v int, beta, eps float64, lazy bool, maxT int) (*WeakConductanceResult, error) {
	res, err := exact.LocalMixing(g, v, beta, eps, exact.LocalOptions{
		Lazy: lazy,
		MaxT: maxT,
		Grid: true,
	})
	if err != nil {
		return nil, fmt.Errorf("spectral: weak conductance witness: %w", err)
	}
	sub, _ := g.Induced(res.Set)
	if !sub.IsConnected() {
		// Fall back to the largest component of the witness.
		comp := sub.ComponentOf(0)
		best := comp
		seen := make([]bool, sub.N())
		for _, u := range comp {
			seen[u] = true
		}
		for u := 0; u < sub.N(); u++ {
			if !seen[u] {
				c := sub.ComponentOf(u)
				for _, w := range c {
					seen[w] = true
				}
				if len(c) > len(best) {
					best = c
				}
			}
		}
		sub, _ = sub.Induced(best)
	}
	if sub.N() < 3 {
		return nil, errors.New("spectral: witness community too small")
	}
	phi, err := Conductance(sub, Options{Lazy: true})
	if err != nil {
		return nil, err
	}
	return &WeakConductanceResult{Phi: phi, Set: res.Set, LocalTau: res.T}, nil
}
