package spectral

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/walkkernel"
)

// Options controls the eigen computation.
type Options struct {
	// Lazy analyses the lazy chain (spectrum shifted to [0,1]; always
	// convergent). Recommended and default for SecondEigenvalue.
	Lazy bool
	// MaxIter bounds the power iterations (default 10·n + 2000).
	MaxIter int
	// Tol is the convergence tolerance on the eigenvalue (default 1e-10).
	Tol float64
	// Seed makes the start vector deterministic.
	Seed int64
}

func (o Options) withDefaults(n int) Options {
	if o.MaxIter == 0 {
		o.MaxIter = 10*n + 2000
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	return o
}

// applyWalk computes y = P^T x for the (lazy) walk matrix: the same operator
// the walk distributions evolve under, evaluated by the shared pull kernel
// (division-free, parallel over vertex blocks, worker-count invariant).
func applyWalk(k *walkkernel.Kernel, lazy bool, x, y []float64) {
	k.Apply(y, x, lazy)
}

// SecondEigenvalue estimates λ₂ of the transition matrix by power iteration
// on the space orthogonal (in the π-weighted inner product) to the principal
// eigenvector. For the reversible chain the eigenvalues are real; for the
// lazy chain they lie in [0, 1], so the power method converges to λ₂.
func SecondEigenvalue(g *graph.Graph, o Options) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, errors.New("spectral: need at least 2 vertices")
	}
	if !g.IsConnected() {
		return 0, graph.ErrNotConnected
	}
	o = o.withDefaults(n)

	// Work with the symmetrized operator S = D^{1/2} P D^{-1/2}: same
	// spectrum as P, orthogonal eigenvectors in the ordinary inner product.
	// S's principal eigenvector is v1(u) = sqrt(d(u)).
	sqrtd := make([]float64, n)
	norm1 := 0.0
	for u := 0; u < n; u++ {
		sqrtd[u] = math.Sqrt(float64(g.Degree(u)))
		norm1 += float64(g.Degree(u))
	}
	norm1 = math.Sqrt(norm1)
	for u := range sqrtd {
		sqrtd[u] /= norm1 // unit principal eigenvector
	}

	// Deterministic pseudo-random start vector.
	x := make([]float64, n)
	st := uint64(o.Seed)*0x9E3779B97F4A7C15 + 0x12345
	for u := range x {
		st ^= st << 13
		st ^= st >> 7
		st ^= st << 17
		x[u] = float64(st%2048)/1024 - 1
	}
	y := make([]float64, n)
	tmp := make([]float64, n)
	kern := walkkernel.New(g, 0)

	applyS := func(in, out []float64) {
		// out = S·in with S = D^{-1/2} A D^{-1/2} (the symmetrization of the
		// walk operator; same spectrum, orthogonal eigenvectors). applyWalk
		// computes A D^{-1}·z, so S·in = D^{-1/2}·applyWalk(D^{1/2}·in).
		// The global 1/norm1 factor in sqrtd cancels between the two stages.
		for u := 0; u < n; u++ {
			tmp[u] = in[u] * sqrtd[u]
		}
		applyWalk(kern, o.Lazy, tmp, out)
		for u := 0; u < n; u++ {
			out[u] /= sqrtd[u]
		}
	}

	deflate := func(v []float64) {
		dot := 0.0
		for u := range v {
			dot += v[u] * sqrtd[u]
		}
		for u := range v {
			v[u] -= dot * sqrtd[u]
		}
	}

	normalize := func(v []float64) float64 {
		s := 0.0
		for _, a := range v {
			s += a * a
		}
		s = math.Sqrt(s)
		if s == 0 {
			return 0
		}
		for u := range v {
			v[u] /= s
		}
		return s
	}

	deflate(x)
	if normalize(x) == 0 {
		return 0, errors.New("spectral: degenerate start vector")
	}
	lambda, prev := 0.0, math.Inf(1)
	for it := 0; it < o.MaxIter; it++ {
		applyS(x, y)
		deflate(y)
		lambda = 0
		for u := range y {
			lambda += y[u] * x[u] // Rayleigh quotient (x is unit)
		}
		if normalize(y) == 0 {
			return 0, nil // orthogonal complement annihilated: λ₂ = 0
		}
		x, y = y, x
		if math.Abs(lambda-prev) < o.Tol {
			break
		}
		prev = lambda
	}
	return lambda, nil
}

// RelaxationBounds returns the classical sandwich on the ε-mixing time
// implied by λ₂ (paper §1): t_rel = 1/(1−λ₂) and the upper bound
// t_rel·ln(n/ε) that holds for the lazy chain.
func RelaxationBounds(lambda2 float64, n int, eps float64) (lower, upper float64) {
	gap := 1 - lambda2
	if gap <= 0 {
		return math.Inf(1), math.Inf(1)
	}
	trel := 1 / gap
	return trel - 1, trel * math.Log(float64(n)/eps)
}

// SweepCut computes the minimum-conductance sweep cut of the given score
// vector: vertices are sorted by score/degree and prefixes are evaluated.
// Returns the best conductance and the witness prefix. This is the standard
// Cheeger rounding used with the second eigenvector or a diffused walk
// vector.
func SweepCut(g *graph.Graph, score []float64) (float64, []int, error) {
	n := g.N()
	if len(score) != n {
		return 0, nil, fmt.Errorf("spectral: score length %d, want %d", len(score), n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va := score[order[a]] / float64(g.Degree(order[a]))
		vb := score[order[b]] / float64(g.Degree(order[b]))
		if va != vb {
			return va > vb
		}
		return order[a] < order[b]
	})
	members := make([]bool, n)
	vol, cut := 0, 0
	twoM := 2 * g.M()
	best := math.Inf(1)
	bestK := 0
	for k := 0; k < n-1; k++ {
		u := order[k]
		members[u] = true
		vol += g.Degree(u)
		for _, v := range g.Neighbors(u) {
			if members[v] {
				cut -= 1
			} else {
				cut += 1
			}
		}
		den := vol
		if twoM-vol < den {
			den = twoM - vol
		}
		if den == 0 {
			continue
		}
		phi := float64(cut) / float64(den)
		if phi < best {
			best = phi
			bestK = k + 1
		}
	}
	if math.IsInf(best, 1) {
		return 0, nil, errors.New("spectral: no valid sweep cut")
	}
	set := make([]int, bestK)
	copy(set, order[:bestK])
	sort.Ints(set)
	return best, set, nil
}

// Conductance estimates the graph conductance Φ(G) by sweeping the second
// eigenvector (Cheeger rounding): the returned value Φ̂ satisfies
// Φ(G) ≤ Φ̂ ≤ sqrt(2·(1−λ₂)) ≤ sqrt(4·Φ(G)) for the lazy chain.
func Conductance(g *graph.Graph, o Options) (float64, error) {
	vec, err := secondEigenvector(g, o)
	if err != nil {
		return 0, err
	}
	phi, _, err := SweepCut(g, vec)
	return phi, err
}

// secondEigenvector returns (an approximation of) the eigenvector of λ₂,
// mapped back from the symmetric operator.
func secondEigenvector(g *graph.Graph, o Options) ([]float64, error) {
	n := g.N()
	if !g.IsConnected() {
		return nil, graph.ErrNotConnected
	}
	o = o.withDefaults(n)
	sqrtd := make([]float64, n)
	norm1 := 0.0
	for u := 0; u < n; u++ {
		sqrtd[u] = math.Sqrt(float64(g.Degree(u)))
		norm1 += float64(g.Degree(u))
	}
	norm1 = math.Sqrt(norm1)
	for u := range sqrtd {
		sqrtd[u] /= norm1
	}
	x := make([]float64, n)
	st := uint64(o.Seed)*0x9E3779B97F4A7C15 + 0xABCDE
	for u := range x {
		st ^= st << 13
		st ^= st >> 7
		st ^= st << 17
		x[u] = float64(st%2048)/1024 - 1
	}
	y := make([]float64, n)
	tmp := make([]float64, n)
	kern := walkkernel.New(g, 0)
	for it := 0; it < o.MaxIter; it++ {
		// Deflate against the principal eigenvector.
		dot := 0.0
		for u := range x {
			dot += x[u] * sqrtd[u]
		}
		for u := range x {
			x[u] -= dot * sqrtd[u]
		}
		s := 0.0
		for _, a := range x {
			s += a * a
		}
		s = math.Sqrt(s)
		if s == 0 {
			return nil, errors.New("spectral: eigenvector collapsed")
		}
		for u := range x {
			x[u] /= s
		}
		for u := 0; u < n; u++ {
			tmp[u] = x[u] * sqrtd[u]
		}
		applyWalk(kern, o.Lazy, tmp, y)
		for u := 0; u < n; u++ {
			y[u] /= sqrtd[u]
		}
		x, y = y, x
	}
	// Map back: eigenvector of P^T is D^{1/2} v; for sweep cuts we want the
	// P-eigenvector D^{-1/2} v, whose sweep order is v(u)/sqrt(d(u)) — the
	// division by degree in SweepCut then matches the standard normalized
	// sweep. Return v directly with that contract in mind.
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		out[u] = x[u] * math.Sqrt(float64(g.Degree(u)))
	}
	return out, nil
}
