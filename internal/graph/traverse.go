package graph

// Unreachable is the distance value reported by BFS for vertices that are
// not reachable from the source (or beyond the depth limit).
const Unreachable = -1

// BFS returns the vector of hop distances from src; unreachable vertices get
// Unreachable.
func (g *Graph) BFS(src int) []int {
	return g.BFSLimited(src, g.N())
}

// BFSLimited runs breadth-first search from src but does not explore beyond
// the given depth. Vertices farther than depth hops get Unreachable.
func (g *Graph) BFSLimited(src, depth int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	frontier := []int32{int32(src)}
	var next []int32
	for d := 0; d < depth && len(frontier) > 0; d++ {
		next = next[:0]
		for _, u := range frontier {
			for _, v := range g.Neighbors(int(u)) {
				if dist[v] == Unreachable {
					dist[v] = d + 1
					next = append(next, v)
				}
			}
		}
		frontier, next = next, frontier
	}
	return dist
}

// Eccentricity returns the maximum distance from u to any vertex. It returns
// ErrNotConnected if some vertex is unreachable.
func (g *Graph) Eccentricity(u int) (int, error) {
	dist := g.BFS(u)
	ecc := 0
	for _, d := range dist {
		if d == Unreachable {
			return 0, ErrNotConnected
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, nil
}

// IsConnected reports whether the graph is connected. The empty graph is
// considered connected. A shard answers for the whole graph from its Meta.
func (g *Graph) IsConnected() bool {
	if g.meta != nil {
		return g.meta.Connected
	}
	n := g.N()
	if n == 0 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// IsBipartite reports whether the graph is 2-colorable. Mixing of the simple
// (non-lazy) random walk is undefined on bipartite graphs (paper footnote 5);
// callers use this to decide whether laziness is required. A shard answers
// for the whole graph from its Meta.
func (g *Graph) IsBipartite() bool {
	if g.meta != nil {
		return g.meta.Bipartite
	}
	n := g.N()
	color := make([]int8, n) // 0 = uncolored, 1 / 2 = sides
	var queue []int32
	for s := 0; s < n; s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(int(u)) {
				if color[v] == 0 {
					color[v] = 3 - color[u]
					queue = append(queue, v)
				} else if color[v] == color[u] {
					return false
				}
			}
		}
	}
	return true
}

// Diameter computes the exact diameter by running BFS from every vertex.
// O(n·m); intended for the small-to-medium graphs used in tests and
// experiments. Returns ErrNotConnected for disconnected graphs.
func (g *Graph) Diameter() (int, error) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	diam := 0
	for u := 0; u < n; u++ {
		ecc, err := g.Eccentricity(u)
		if err != nil {
			return 0, err
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// DiameterApprox lower-bounds the diameter with a double BFS sweep
// (exact on trees, within a factor 2 in general, and usually exact on the
// structured families used here). O(m). Returns ErrNotConnected for
// disconnected graphs.
func (g *Graph) DiameterApprox() (int, error) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	dist := g.BFS(0)
	far, fd := 0, 0
	for u, d := range dist {
		if d == Unreachable {
			return 0, ErrNotConnected
		}
		if d > fd {
			far, fd = u, d
		}
	}
	ecc, err := g.Eccentricity(far)
	if err != nil {
		return 0, err
	}
	return ecc, nil
}

// ComponentOf returns the vertices in the connected component containing u,
// in increasing vertex order.
func (g *Graph) ComponentOf(u int) []int {
	dist := g.BFS(u)
	var comp []int
	for v, d := range dist {
		if d != Unreachable {
			comp = append(comp, v)
		}
	}
	return comp
}
