package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBFSPath(t *testing.T) {
	g := pathGraph(6)
	dist := g.BFS(0)
	for v, d := range dist {
		if d != v {
			t.Errorf("dist[%d] = %d, want %d", v, d, v)
		}
	}
}

func TestBFSLimited(t *testing.T) {
	g := pathGraph(6)
	dist := g.BFSLimited(0, 2)
	want := []int{0, 1, 2, Unreachable, Unreachable, Unreachable}
	for v := range want {
		if dist[v] != want[v] {
			t.Errorf("limited dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestBFSOutOfRangeSource(t *testing.T) {
	g := pathGraph(3)
	dist := g.BFS(-1)
	for _, d := range dist {
		if d != Unreachable {
			t.Fatal("out-of-range source should reach nothing")
		}
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := pathGraph(7)
	ecc, err := g.Eccentricity(3)
	if err != nil || ecc != 3 {
		t.Errorf("ecc(3) = %d, %v; want 3", ecc, err)
	}
	d, err := g.Diameter()
	if err != nil || d != 6 {
		t.Errorf("diameter = %d, %v; want 6", d, err)
	}
	da, err := g.DiameterApprox()
	if err != nil || da != 6 {
		t.Errorf("approx diameter = %d, %v; want 6 (exact on paths)", da, err)
	}
}

func TestConnectivity(t *testing.T) {
	g := pathGraph(4)
	if !g.IsConnected() {
		t.Error("path should be connected")
	}
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	h := b.Build()
	if h.IsConnected() {
		t.Error("two components reported connected")
	}
	if _, err := h.Diameter(); err == nil {
		t.Error("diameter of disconnected graph should error")
	}
	if _, err := h.Eccentricity(0); err == nil {
		t.Error("eccentricity in disconnected graph should error")
	}
	empty := NewBuilder(0).Build()
	if !empty.IsConnected() {
		t.Error("empty graph should be connected by convention")
	}
}

func TestBipartite(t *testing.T) {
	cases := []struct {
		g    *Graph
		want bool
	}{
		{pathGraph(5), true},
		{triangle(), false},
		{cycleGraph(6), true},
		{cycleGraph(7), false},
	}
	for i, c := range cases {
		if got := c.g.IsBipartite(); got != c.want {
			t.Errorf("case %d: IsBipartite = %v, want %v", i, got, c.want)
		}
	}
}

func cycleGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func TestComponentOf(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	comp := g.ComponentOf(1)
	if len(comp) != 3 || comp[0] != 0 || comp[2] != 2 {
		t.Errorf("component %v", comp)
	}
}

// TestBFSTriangleInequality property-checks BFS distances on random
// connected graphs: |d(s,u) − d(s,v)| ≤ 1 for every edge {u,v}.
func TestBFSTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 1; i < n; i++ { // random spanning tree keeps it connected
			b.AddEdge(i, rng.Intn(i))
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		dist := g.BFS(rng.Intn(n))
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				diff := dist[u] - dist[v]
				if diff < -1 || diff > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDiameterApproxBounds: the double sweep is a lower bound on the true
// diameter and never exceeds it.
func TestDiameterApproxBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		b := NewBuilder(n)
		for i := 1; i < n; i++ {
			b.AddEdge(i, rng.Intn(i))
		}
		for i := 0; i < n/2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		exact, err1 := g.Diameter()
		approx, err2 := g.DiameterApprox()
		if err1 != nil || err2 != nil {
			return false
		}
		return approx <= exact && approx*2 >= exact && approx >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
