package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func triangle() *Graph {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	return b.Build()
}

func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := triangle()
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("triangle: n=%d m=%d", g.N(), g.M())
	}
	for u := 0; u < 3; u++ {
		if g.Degree(u) != 2 {
			t.Errorf("degree(%d) = %d, want 2", u, g.Degree(u))
		}
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Error("missing edge 0-2")
	}
	if g.HasEdge(0, 0) {
		t.Error("phantom self-loop")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("m=%d, want 2 after dedup", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Errorf("degrees after dedup: %d, %d", g.Degree(0), g.Degree(1))
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self-loop did not panic")
		}
	}()
	b := NewBuilder(2)
	b.AddEdge(1, 1)
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge did not panic")
		}
	}()
	b := NewBuilder(2)
	b.AddEdge(0, 5)
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(4, 0)
	b.AddEdge(4, 2)
	b.AddEdge(4, 1)
	b.AddEdge(4, 3)
	g := b.Build()
	row := g.Neighbors(4)
	for i := 1; i < len(row); i++ {
		if row[i-1] >= row[i] {
			t.Fatalf("row not sorted: %v", row)
		}
	}
}

func TestFromAdjacency(t *testing.T) {
	g := FromAdjacency("tri", [][]int{{1, 2}, {0, 2}, {0, 1}})
	if g.M() != 3 || g.Name() != "tri" {
		t.Fatalf("FromAdjacency: m=%d name=%q", g.M(), g.Name())
	}
}

func TestRegular(t *testing.T) {
	if d, ok := triangle().Regular(); !ok || d != 2 {
		t.Errorf("triangle Regular() = %d,%v", d, ok)
	}
	if _, ok := pathGraph(4).Regular(); ok {
		t.Error("path should not be regular")
	}
	empty := NewBuilder(0).Build()
	if _, ok := empty.Regular(); !ok {
		t.Error("empty graph is vacuously regular")
	}
}

func TestMinMaxDegree(t *testing.T) {
	p := pathGraph(5)
	if p.MinDegree() != 1 || p.MaxDegree() != 2 {
		t.Errorf("path degrees: min=%d max=%d", p.MinDegree(), p.MaxDegree())
	}
}

func TestVolumeAndCut(t *testing.T) {
	g := pathGraph(4) // 0-1-2-3
	if v := g.Volume([]int{0, 1}); v != 3 {
		t.Errorf("volume({0,1}) = %d, want 3", v)
	}
	members := g.Members([]int{0, 1})
	if c := g.CutSize(members); c != 1 {
		t.Errorf("cut({0,1}) = %d, want 1", c)
	}
	phi, err := g.Conductance(members)
	if err != nil {
		t.Fatal(err)
	}
	if phi != 1.0/3 {
		t.Errorf("conductance = %v, want 1/3", phi)
	}
}

func TestConductanceErrors(t *testing.T) {
	g := pathGraph(3)
	if _, err := g.Conductance(make([]bool, 3)); err == nil {
		t.Error("empty side should error")
	}
	if _, err := g.Conductance(make([]bool, 5)); err == nil {
		t.Error("wrong length should error")
	}
	all := []bool{true, true, true}
	if _, err := g.Conductance(all); err == nil {
		t.Error("full set should error")
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := pathGraph(5).DegreeHistogram()
	if h[1] != 2 || h[2] != 3 {
		t.Errorf("histogram %v", h)
	}
}

func TestClone(t *testing.T) {
	g := triangle()
	c := g.Clone("copy")
	if c.Name() != "copy" || c.M() != g.M() || c.N() != g.N() {
		t.Error("clone mismatch")
	}
}

// TestBuildRandomInvariants property-checks the builder: for random edge
// lists, the built graph has sorted deduplicated rows, symmetric adjacency
// and consistent degree sums.
func TestBuildRandomInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < rng.Intn(80); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		total := 0
		for u := 0; u < n; u++ {
			row := g.Neighbors(u)
			total += len(row)
			for i, v := range row {
				if i > 0 && row[i-1] >= v {
					return false // unsorted or duplicate
				}
				if !g.HasEdge(int(v), u) {
					return false // asymmetric
				}
				if int(v) == u {
					return false // self-loop
				}
			}
		}
		return total == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestInduced(t *testing.T) {
	g := pathGraph(5)
	sub, orig := g.Induced([]int{1, 2, 3})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced: n=%d m=%d", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[2] != 3 {
		t.Errorf("orig mapping %v", orig)
	}
	// Non-adjacent selection.
	sub2, _ := g.Induced([]int{0, 2, 4})
	if sub2.M() != 0 {
		t.Errorf("induced of independent set has %d edges", sub2.M())
	}
}

func TestInducedPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate vertex did not panic")
		}
	}()
	pathGraph(4).Induced([]int{1, 1})
}
