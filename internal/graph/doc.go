// Package graph provides the static undirected-graph substrate used by every
// other module: a compact CSR (compressed sparse row) adjacency structure,
// construction via Builder, and the structural queries (BFS, diameter,
// connectivity, bipartiteness, cuts, conductance) that the paper's
// definitions are stated in terms of — µ(S), φ(S) and the conductance
// machinery of §2.2 live here.
//
// Graphs are simple (no self-loops, no parallel edges), undirected and
// unweighted, matching the network model of the paper (§1.1), and immutable
// once built: every layer above (walk kernel, congest engine, generators)
// shares the same CSR arrays read-only, which is what makes lock-free
// parallel stepping safe. All operations are deterministic — adjacency rows
// are sorted at Build time, so iteration order is canonical for every
// caller.
package graph
