package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := triangle()
	var sb strings.Builder
	if err := g.WriteDOT(&sb, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"0 -- 1;", "0 -- 2;", "1 -- 2;", "0 [style=filled", "2 [style=filled"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "1 [style=filled") {
		t.Error("unhighlighted vertex was filled")
	}
}

func TestWriteDOTValidation(t *testing.T) {
	g := triangle()
	var sb strings.Builder
	if err := g.WriteDOT(&sb, []int{7}); err == nil {
		t.Error("out-of-range highlight accepted")
	}
}

func TestWriteDOTDeterministic(t *testing.T) {
	g := pathGraph(6)
	var a, b strings.Builder
	if err := g.WriteDOT(&a, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteDOT(&b, nil); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("nondeterministic DOT output")
	}
}
