package graph

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT emits the graph in Graphviz DOT format. highlight (optional) is
// a vertex set to color — the tools use it to visualize witness
// local-mixing sets. Deterministic output: edges are emitted in sorted
// order.
func (g *Graph) WriteDOT(w io.Writer, highlight []int) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n  node [shape=circle];\n", dotName(g.name)); err != nil {
		return err
	}
	if len(highlight) > 0 {
		hl := append([]int(nil), highlight...)
		sort.Ints(hl)
		for _, v := range hl {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("graph: WriteDOT highlight vertex %d out of range", v)
			}
			if _, err := fmt.Fprintf(w, "  %d [style=filled, fillcolor=lightblue];\n", v); err != nil {
				return err
			}
		}
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				if _, err := fmt.Fprintf(w, "  %d -- %d;\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func dotName(name string) string {
	if name == "" {
		return "graph"
	}
	return name
}
