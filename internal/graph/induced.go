package graph

import "fmt"

// Induced returns the subgraph induced by the given vertex set, along with
// the mapping from new ids to original ids. Vertices keep their relative
// order. Duplicate vertices in set are a caller bug and panic.
func (g *Graph) Induced(set []int) (*Graph, []int) {
	inv := make(map[int]int, len(set))
	orig := make([]int, len(set))
	for i, v := range set {
		if v < 0 || v >= g.N() {
			panic(fmt.Sprintf("graph: Induced vertex %d out of range", v))
		}
		if _, dup := inv[v]; dup {
			panic(fmt.Sprintf("graph: Induced duplicate vertex %d", v))
		}
		inv[v] = i
		orig[i] = v
	}
	b := NewBuilder(len(set))
	b.SetName(g.name + "/induced")
	for i, v := range set {
		for _, w := range g.Neighbors(v) {
			if j, ok := inv[int(w)]; ok && j > i {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build(), orig
}
