package graph

import (
	"fmt"
	"slices"
)

// Meta carries the whole-graph facts a shard cannot recompute from its
// materialized rows. Generators with closed-form structure (torus, grid,
// cycle, ring of cliques) know these analytically; BuildShard attaches them
// so the global accessors on Graph keep answering for the full graph.
type Meta struct {
	// M is the undirected edge count of the whole graph.
	M int
	// MinDeg and MaxDeg bound the whole graph's degrees.
	MinDeg, MaxDeg int
	// RegularDeg is the common degree when the graph is regular, else -1.
	RegularDeg int
	// Connected reports whole-graph connectivity.
	Connected bool
	// Bipartite reports whether the whole graph is 2-colorable.
	Bipartite bool
}

// RowFunc produces the sorted adjacency row of vertex u, appending into
// buf[:0] (which may be nil). The returned slice must be ascending and
// duplicate-free — byte-equal to the full Builder CSR row — and is only
// read before the next call, so implementations can reuse buf.
type RowFunc func(u int, buf []int32) []int32

// Sharder is a closed-form row generator for one graph: enough to build any
// contiguous CSR shard without materializing the rest. Generators in
// internal/gen provide these for the coordinate-structured families.
type Sharder struct {
	// Name labels the graph exactly as the full build would (so shard
	// results are indistinguishable from full-build results).
	Name string
	// N is the vertex count.
	N int
	// Meta holds the whole-graph facts served by the shard's accessors.
	Meta Meta
	// Row materializes one adjacency row.
	Row RowFunc
}

// ShardRange returns the contiguous vertex range [lo, hi) owned by peer p of
// P: the canonical cluster partition lo = p·n/P, hi = (p+1)·n/P. Ranges are
// contiguous, disjoint, and cover [0, n) for every P ≥ 1 (empty ranges are
// legal when n < P).
func ShardRange(n, p, P int) (lo, hi int) {
	return p * n / P, (p + 1) * n / P
}

// BuildShard materializes the CSR shard owned by peer p of P: the rows of
// the owned range ShardRange(n, p, P) plus every halo row (a remote vertex
// adjacent to an owned one). All other rows are empty; offsets keeps its
// full length n+1 so vertex ids, N(), and the engine's owner arithmetic are
// unchanged. The shard's global accessors (M, degrees, connectivity,
// bipartiteness) answer from s.Meta.
func BuildShard(s Sharder, p, P int) (*Graph, error) {
	if s.Row == nil || s.N <= 0 {
		return nil, fmt.Errorf("graph: BuildShard: sharder %q has no rows", s.Name)
	}
	if P < 1 || p < 0 || p >= P {
		return nil, fmt.Errorf("graph: BuildShard: peer %d of %d out of range", p, P)
	}
	n := s.N
	lo, hi := ShardRange(n, p, P)

	// Pass 1: owned degrees and the halo set (remote endpoints of owned rows).
	deg := make([]int32, n)
	var halo []int32
	inHalo := make(map[int32]bool)
	var buf []int32
	for u := lo; u < hi; u++ {
		row := s.Row(u, buf[:0])
		buf = row
		deg[u] = int32(len(row))
		for _, v := range row {
			if (int(v) < lo || int(v) >= hi) && !inHalo[v] {
				inHalo[v] = true
				halo = append(halo, v)
			}
		}
	}
	slices.Sort(halo)
	for _, v := range halo {
		deg[v] = int32(len(s.Row(int(v), buf[:0])))
	}

	offsets := make([]int32, n+1)
	for u := 0; u < n; u++ {
		offsets[u+1] = offsets[u] + deg[u]
	}
	edges := make([]int32, offsets[n])
	for u := lo; u < hi; u++ {
		copy(edges[offsets[u]:offsets[u+1]], s.Row(u, buf[:0]))
	}
	for _, v := range halo {
		copy(edges[offsets[v]:offsets[v+1]], s.Row(int(v), buf[:0]))
	}
	meta := s.Meta
	return &Graph{name: s.Name, offsets: offsets, edges: edges, meta: &meta}, nil
}

// BuildFull materializes the whole graph from the sharder — the one-peer
// shard. It is the reference the shard property tests compare against and
// a closed-form fast path for full builds of sharded families.
func BuildFull(s Sharder) (*Graph, error) {
	return BuildShard(s, 0, 1)
}

// ResidentBytes reports the graph's CSR footprint in bytes — what a peer
// actually holds resident. Shards of the same graph shrink roughly as 1/P
// (the offsets array stays full-length; the edge slab is shard-local).
func (g *Graph) ResidentBytes() int64 {
	return int64(len(g.offsets)+len(g.edges)) * 4
}

// Sharded reports whether this graph is a shard (only part of its rows are
// materialized and global facts come from a Meta).
func (g *Graph) Sharded() bool { return g.meta != nil }
