package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR form.
// The zero value is the empty graph.
//
// A graph normally materializes every adjacency row. A shard built by
// BuildShard materializes only its owned rows plus halo rows and carries a
// Meta with the whole-graph facts (edge count, degree bounds, connectivity,
// bipartiteness); the global accessors — M, MinDegree, MaxDegree, Regular,
// IsConnected, IsBipartite — answer from the Meta so shard-local code sees
// the full graph's invariants without holding its edges.
type Graph struct {
	name    string
	offsets []int32 // len n+1; neighbors of u are edges[offsets[u]:offsets[u+1]]
	edges   []int32 // len 2m, sorted within each row
	meta    *Meta   // non-nil only for sharded builds; whole-graph facts
}

// ErrNotConnected is returned by operations that require a connected graph.
var ErrNotConnected = errors.New("graph: not connected")

// N returns the number of vertices.
func (g *Graph) N() int {
	if g.offsets == nil {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of undirected edges of the whole graph. For a shard
// this is the full graph's edge count (from the Meta), not the number of
// materialized rows' edges.
func (g *Graph) M() int {
	if g.meta != nil {
		return g.meta.M
	}
	return len(g.edges) / 2
}

// Name returns the human-readable label attached at construction time
// (for example "barbell(beta=8,k=128)"). It may be empty.
func (g *Graph) Name() string { return g.name }

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns the neighbors of u as a shared, sorted, read-only slice.
// Callers must not modify it.
func (g *Graph) Neighbors(u int) []int32 {
	return g.edges[g.offsets[u]:g.offsets[u+1]]
}

// CSR exposes the raw compressed-sparse-row arrays: offsets has length n+1
// and the neighbors of u are edges[offsets[u]:offsets[u+1]], sorted. Both
// slices are the graph's own storage and must be treated as read-only; the
// walk kernel uses them for flat, bounds-check-friendly row access.
func (g *Graph) CSR() (offsets, edges []int32) {
	return g.offsets, g.edges
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	row := g.Neighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// MinDegree returns the minimum degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	if g.meta != nil {
		return g.meta.MinDeg
	}
	if g.N() == 0 {
		return 0
	}
	min := g.Degree(0)
	for u := 1; u < g.N(); u++ {
		if d := g.Degree(u); d < min {
			min = d
		}
	}
	return min
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	if g.meta != nil {
		return g.meta.MaxDeg
	}
	max := 0
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// Regular reports whether every vertex has the same degree, and that degree.
func (g *Graph) Regular() (d int, ok bool) {
	if g.meta != nil {
		if g.meta.RegularDeg >= 0 {
			return g.meta.RegularDeg, true
		}
		return g.meta.MinDeg, false
	}
	if g.N() == 0 {
		return 0, true
	}
	d = g.Degree(0)
	for u := 1; u < g.N(); u++ {
		if g.Degree(u) != d {
			return d, false
		}
	}
	return d, true
}

// Volume returns the sum of degrees of the given vertex set, µ(S) in the
// paper. Vertices may appear at most once; duplicates are the caller's bug.
func (g *Graph) Volume(set []int) int {
	vol := 0
	for _, u := range set {
		vol += g.Degree(u)
	}
	return vol
}

// CutSize returns |E(S, V\S)|, the number of edges crossing the set boundary.
// members must have length n and mark membership of every vertex.
func (g *Graph) CutSize(members []bool) int {
	if len(members) != g.N() {
		panic(fmt.Sprintf("graph: CutSize membership length %d, want %d", len(members), g.N()))
	}
	cut := 0
	for u := 0; u < g.N(); u++ {
		if !members[u] {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if !members[v] {
				cut++
			}
		}
	}
	return cut
}

// Conductance returns φ(S) = |E(S, V\S)| / min{µ(S), µ(V\S)} for the set
// marked by members. It returns an error when either side has zero volume
// (conductance is undefined there).
func (g *Graph) Conductance(members []bool) (float64, error) {
	if len(members) != g.N() {
		return 0, fmt.Errorf("graph: Conductance membership length %d, want %d", len(members), g.N())
	}
	volS := 0
	for u := 0; u < g.N(); u++ {
		if members[u] {
			volS += g.Degree(u)
		}
	}
	volC := 2*g.M() - volS
	if volS == 0 || volC == 0 {
		return 0, errors.New("graph: conductance undefined for empty side")
	}
	cut := g.CutSize(members)
	den := volS
	if volC < den {
		den = volC
	}
	return float64(cut) / float64(den), nil
}

// Members converts a vertex list to a membership mask of length n.
func (g *Graph) Members(set []int) []bool {
	m := make([]bool, g.N())
	for _, u := range set {
		m[u] = true
	}
	return m
}

// Builder accumulates edges and produces a Graph. Self-loops are rejected;
// duplicate edges are deduplicated at Build time.
type Builder struct {
	n    int
	name string
	us   []int32
	vs   []int32
}

// NewBuilder creates a builder for a graph with n vertices labelled 0..n-1.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// SetName attaches a label to the graph under construction.
func (b *Builder) SetName(name string) { b.name = name }

// AddEdge records the undirected edge {u, v}. It panics on out-of-range
// vertices or self-loops: those are programming errors in generators, not
// runtime conditions.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
}

// HasEdgeSlow reports whether the edge was already added (either direction).
// It is linear in the number of edges and intended for generator retry loops
// on small graphs; generators on large graphs should track their own sets.
func (b *Builder) HasEdgeSlow(u, v int) bool {
	for i := range b.us {
		if (b.us[i] == int32(u) && b.vs[i] == int32(v)) || (b.us[i] == int32(v) && b.vs[i] == int32(u)) {
			return true
		}
	}
	return false
}

// Build finalizes the graph, sorting adjacency rows and removing duplicate
// edges. The builder can be reused afterwards only by adding more edges.
func (b *Builder) Build() *Graph {
	n := b.n
	deg := make([]int32, n+1)
	for i := range b.us {
		deg[b.us[i]+1]++
		deg[b.vs[i]+1]++
	}
	for u := 0; u < n; u++ {
		deg[u+1] += deg[u]
	}
	edges := make([]int32, len(b.us)*2)
	cursor := make([]int32, n)
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		edges[deg[u]+cursor[u]] = v
		cursor[u]++
		edges[deg[v]+cursor[v]] = u
		cursor[v]++
	}
	// Sort each row; rebuild performs deduplication. slices.Sort avoids the
	// per-row closure allocation sort.Slice would pay.
	for u := 0; u < n; u++ {
		slices.Sort(edges[deg[u]:deg[u+1]])
	}
	return rebuild(n, b.name, edges, deg)
}

// rebuild produces the final CSR from per-row sorted (possibly duplicated)
// adjacency data.
func rebuild(n int, name string, edges []int32, rowOff []int32) *Graph {
	offsets := make([]int32, n+1)
	total := int32(0)
	for u := 0; u < n; u++ {
		row := edges[rowOff[u]:rowOff[u+1]]
		var prev int32 = -1
		cnt := int32(0)
		for _, v := range row {
			if v != prev {
				cnt++
				prev = v
			}
		}
		offsets[u+1] = offsets[u] + cnt
		total += cnt
	}
	final := make([]int32, total)
	for u := 0; u < n; u++ {
		row := edges[rowOff[u]:rowOff[u+1]]
		w := offsets[u]
		var prev int32 = -1
		for _, v := range row {
			if v != prev {
				final[w] = v
				w++
				prev = v
			}
		}
	}
	return &Graph{name: name, offsets: offsets, edges: final}
}

// FromAdjacency builds a graph directly from an adjacency list. Used by
// tests and by generators that construct adjacency explicitly. Rows are
// copied; self-loops panic; duplicates are removed.
func FromAdjacency(name string, adj [][]int) *Graph {
	b := NewBuilder(len(adj))
	b.SetName(name)
	for u, row := range adj {
		for _, v := range row {
			if v > u { // add each undirected edge once
				b.AddEdge(u, v)
			} else if v == u {
				panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
			}
		}
	}
	return b.Build()
}

// Clone returns a deep copy with a new name.
func (g *Graph) Clone(name string) *Graph {
	off := make([]int32, len(g.offsets))
	copy(off, g.offsets)
	ed := make([]int32, len(g.edges))
	copy(ed, g.edges)
	var meta *Meta
	if g.meta != nil {
		m := *g.meta
		meta = &m
	}
	return &Graph{name: name, offsets: off, edges: ed, meta: meta}
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree. Useful in tests of generators.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.N(); u++ {
		h[g.Degree(u)]++
	}
	return h
}
