package exact

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/walkkernel"
)

// Walk evolves the probability distribution of a random walk from a single
// source. It implements exactly the chain the paper analyzes: the simple
// walk P(u,v) = 1/d(u) for neighbors, or the lazy walk that stays put with
// probability 1/2 (footnote 5; required on bipartite graphs).
type Walk struct {
	inner *walkkernel.Walk
}

// NewWalk starts a walk at source: p_0 = e_source.
func NewWalk(g *graph.Graph, source int, lazy bool) (*Walk, error) {
	return NewWalkWorkers(g, source, lazy, 0)
}

// NewWalkWorkers is NewWalk with an explicit kernel worker count (≤ 0 means
// GOMAXPROCS). The worker count never changes the computed distributions.
func NewWalkWorkers(g *graph.Graph, source int, lazy bool, workers int) (*Walk, error) {
	k, err := walkKernel(g, workers)
	if err != nil {
		return nil, err
	}
	return newWalkOn(g, k, source, lazy)
}

// walkKernel validates the graph and builds a walk kernel for it.
func walkKernel(g *graph.Graph, workers int) (*walkkernel.Kernel, error) {
	if g.N() > 0 && g.MinDegree() == 0 {
		return nil, errors.New("exact: graph has isolated vertices")
	}
	return walkkernel.New(g, workers), nil
}

// newWalkOn starts a walk on an already-built kernel (shared across sources
// by the multi-source oracles).
func newWalkOn(g *graph.Graph, k *walkkernel.Kernel, source int, lazy bool) (*Walk, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("exact: source %d out of range [0,%d)", source, g.N())
	}
	return &Walk{inner: k.NewWalk(source, lazy)}, nil
}

// T returns the number of steps taken so far.
func (w *Walk) T() int { return w.inner.T() }

// Lazy reports whether this is the lazy chain.
func (w *Walk) Lazy() bool { return w.inner.Lazy() }

// P returns the current distribution p_t. The slice is owned by the walk and
// is invalidated by Step; callers who retain it must copy.
func (w *Walk) P() []float64 { return w.inner.P() }

// SetDist overwrites the current distribution (for tests and replays).
func (w *Walk) SetDist(p []float64) { w.inner.SetDist(p) }

// Step advances the walk one step.
func (w *Walk) Step() { w.inner.Step() }

// StepN advances the walk k steps.
func (w *Walk) StepN(k int) { w.inner.StepN(k) }

// Stationary returns π(v) = d(v)/2m, the stationary distribution of both the
// simple and the lazy walk on a connected graph.
func Stationary(g *graph.Graph) []float64 {
	pi := make([]float64, g.N())
	twoM := float64(2 * g.M())
	for v := 0; v < g.N(); v++ {
		pi[v] = float64(g.Degree(v)) / twoM
	}
	return pi
}

// L1 returns ‖a − b‖₁.
func L1(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("exact: L1 length mismatch")
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// RestrictedL1 returns ‖p_S − target_S‖₁ over the vertices marked in
// members: Σ_{v∈S} |p(v) − target(v)|. This is the Definition 2 distance
// when target is π_S.
func RestrictedL1(p, target []float64, members []bool) float64 {
	s := 0.0
	for v, in := range members {
		if in {
			s += math.Abs(p[v] - target[v])
		}
	}
	return s
}

// ErrNoMixing is returned when the walk does not reach the requested L1
// threshold within the step budget.
var ErrNoMixing = errors.New("exact: walk did not mix within the step budget")

// ErrBipartiteNonLazy rejects the simple (non-lazy) walk on a bipartite
// graph up front: its distribution oscillates between the two sides forever
// and never converges to π (the paper's footnote 5 prescribes the lazy
// walk), so without the guard a mixing search burns its whole step budget
// and then misreports the structural impossibility as ErrNoMixing. Every
// oracle entry point fails fast with this error instead.
var ErrBipartiteNonLazy = errors.New("exact: simple walk does not mix on a bipartite graph; use lazy=true (footnote 5)")

// checkLazyChain is the shared guard.
func checkLazyChain(g *graph.Graph, lazy bool) error {
	if !lazy && g.IsBipartite() {
		return ErrBipartiteNonLazy
	}
	return nil
}

// MixingTime returns τ_mix_s(ε) = min{t : ‖p_t − π‖₁ < ε} (Definition 1),
// searching up to maxT steps. Lemma 1 guarantees the distance is monotone,
// so the first hit is the answer.
func MixingTime(g *graph.Graph, source int, eps float64, lazy bool, maxT int) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("exact: MixingTime needs ε ∈ (0,1), got %g", eps)
	}
	if err := checkLazyChain(g, lazy); err != nil {
		return 0, err
	}
	w, err := NewWalk(g, source, lazy)
	if err != nil {
		return 0, err
	}
	pi := Stationary(g)
	for t := 0; t <= maxT; t++ {
		if L1(w.P(), pi) < eps {
			return t, nil
		}
		w.Step()
	}
	return 0, fmt.Errorf("%w (maxT=%d, source=%d)", ErrNoMixing, maxT, source)
}

// GraphMixingTime returns τ_mix(ε) = max_s τ_mix_s(ε) over all sources.
// Sources are evolved in batches of walkkernel.BatchWidth lanes — one edge
// pass advances a whole batch — instead of n serial walks. Per batch only
// the predicate "has the slowest lane mixed?" is evaluated per step: by
// Lemma 1 every lane's distance is monotone, so the first step at which all
// lanes are below ε is exactly max_b τ_b.
func GraphMixingTime(g *graph.Graph, eps float64, lazy bool, maxT int) (int, error) {
	return GraphMixingTimeWorkers(g, eps, lazy, maxT, 0)
}

// GraphMixingTimeWorkers is GraphMixingTime with an explicit kernel worker
// count (≤ 0 means GOMAXPROCS); the result is identical for every count.
func GraphMixingTimeWorkers(g *graph.Graph, eps float64, lazy bool, maxT, workers int) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("exact: MixingTime needs ε ∈ (0,1), got %g", eps)
	}
	if g.N() == 0 {
		return 0, nil
	}
	if err := checkLazyChain(g, lazy); err != nil {
		return 0, err
	}
	k, err := walkKernel(g, workers)
	if err != nil {
		return 0, err
	}
	return graphMixingTimeOn(context.Background(), g, k, eps, lazy, maxT)
}

// graphMixingTimeOn is the batched sweep on an already-validated kernel
// (fresh above, or cached by internal/service's GraphCache). The context is
// checked once per walk step — each step is a full batched SpMV, so
// cancellation (a service deadline) lands within one edge pass.
func graphMixingTimeOn(ctx context.Context, g *graph.Graph, k *walkkernel.Kernel, eps float64, lazy bool, maxT int) (int, error) {
	n := g.N()
	pi := Stationary(g)
	width := walkkernel.BatchWidth
	if width > n {
		width = n
	}
	mw := k.NewMultiWalk(width, lazy)
	sources := make([]int, width)
	dist := make([]float64, width)
	worst := 0
	for lo := 0; lo < n; lo += width {
		for b := 0; b < width; b++ {
			s := lo + b
			if s >= n {
				s = lo // pad the final batch with duplicate lanes
			}
			sources[b] = s
		}
		mw.Reset(sources)
		mixed := false
		for t := 0; t <= maxT; t++ {
			if err := ctx.Err(); err != nil {
				return 0, fmt.Errorf("exact: graph mixing sweep cancelled at source batch %d, step %d: %w", lo, t, err)
			}
			if mw.AllBelow(pi, eps) {
				if t > worst {
					worst = t
				}
				mixed = true
				break
			}
			if t < maxT {
				mw.Step()
			}
		}
		if !mixed {
			// Identify a witness lane for the error message.
			mw.L1ToTarget(pi, dist)
			for b := 0; b < width; b++ {
				if dist[b] >= eps {
					return 0, fmt.Errorf("%w (maxT=%d, source=%d)", ErrNoMixing, maxT, sources[b])
				}
			}
		}
	}
	return worst, nil
}
