// Package exact provides centralized ground-truth oracles for everything the
// distributed algorithms estimate: the random-walk probability distribution
// p_t (float64 power iteration), the stationary distribution π, the mixing
// time τ_mix_s(ε) (Definition 1), the local mixing time τ_s(β, ε)
// (Definition 2) together with a witness local-mixing set, and the Lemma 4
// escape-probability quantities.
//
// These oracles are used by the test suite to validate the CONGEST
// algorithms and by the benchmark harness to report paper-vs-measured
// numbers.
package exact

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
)

// Walk evolves the probability distribution of a random walk from a single
// source. It implements exactly the chain the paper analyzes: the simple
// walk P(u,v) = 1/d(u) for neighbors, or the lazy walk that stays put with
// probability 1/2 (footnote 5; required on bipartite graphs).
type Walk struct {
	g    *graph.Graph
	lazy bool
	t    int
	p    []float64
	next []float64
}

// NewWalk starts a walk at source: p_0 = e_source.
func NewWalk(g *graph.Graph, source int, lazy bool) (*Walk, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("exact: source %d out of range [0,%d)", source, g.N())
	}
	if g.MinDegree() == 0 {
		return nil, errors.New("exact: graph has isolated vertices")
	}
	w := &Walk{
		g:    g,
		lazy: lazy,
		p:    make([]float64, g.N()),
		next: make([]float64, g.N()),
	}
	w.p[source] = 1
	return w, nil
}

// T returns the number of steps taken so far.
func (w *Walk) T() int { return w.t }

// Lazy reports whether this is the lazy chain.
func (w *Walk) Lazy() bool { return w.lazy }

// P returns the current distribution p_t. The slice is owned by the walk and
// is invalidated by Step; callers who retain it must copy.
func (w *Walk) P() []float64 { return w.p }

// Step advances the walk one step.
func (w *Walk) Step() {
	g := w.g
	n := g.N()
	next := w.next
	if w.lazy {
		for v := 0; v < n; v++ {
			next[v] = w.p[v] / 2
		}
	} else {
		for v := 0; v < n; v++ {
			next[v] = 0
		}
	}
	for u := 0; u < n; u++ {
		pu := w.p[u]
		if pu == 0 {
			continue
		}
		share := pu / float64(g.Degree(u))
		if w.lazy {
			share /= 2
		}
		for _, v := range g.Neighbors(u) {
			next[v] += share
		}
	}
	w.p, w.next = next, w.p
	w.t++
}

// StepN advances the walk k steps.
func (w *Walk) StepN(k int) {
	for i := 0; i < k; i++ {
		w.Step()
	}
}

// Stationary returns π(v) = d(v)/2m, the stationary distribution of both the
// simple and the lazy walk on a connected graph.
func Stationary(g *graph.Graph) []float64 {
	pi := make([]float64, g.N())
	twoM := float64(2 * g.M())
	for v := 0; v < g.N(); v++ {
		pi[v] = float64(g.Degree(v)) / twoM
	}
	return pi
}

// L1 returns ‖a − b‖₁.
func L1(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("exact: L1 length mismatch")
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// RestrictedL1 returns ‖p_S − target_S‖₁ over the vertices marked in
// members: Σ_{v∈S} |p(v) − target(v)|. This is the Definition 2 distance
// when target is π_S.
func RestrictedL1(p, target []float64, members []bool) float64 {
	s := 0.0
	for v, in := range members {
		if in {
			s += math.Abs(p[v] - target[v])
		}
	}
	return s
}

// ErrNoMixing is returned when the walk does not reach the requested L1
// threshold within the step budget.
var ErrNoMixing = errors.New("exact: walk did not mix within the step budget")

// MixingTime returns τ_mix_s(ε) = min{t : ‖p_t − π‖₁ < ε} (Definition 1),
// searching up to maxT steps. Lemma 1 guarantees the distance is monotone,
// so the first hit is the answer.
func MixingTime(g *graph.Graph, source int, eps float64, lazy bool, maxT int) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("exact: MixingTime needs ε ∈ (0,1), got %g", eps)
	}
	if !lazy && g.IsBipartite() {
		return 0, errors.New("exact: simple walk does not mix on a bipartite graph; use lazy=true")
	}
	w, err := NewWalk(g, source, lazy)
	if err != nil {
		return 0, err
	}
	pi := Stationary(g)
	for t := 0; t <= maxT; t++ {
		if L1(w.P(), pi) < eps {
			return t, nil
		}
		w.Step()
	}
	return 0, fmt.Errorf("%w (maxT=%d, source=%d)", ErrNoMixing, maxT, source)
}

// GraphMixingTime returns τ_mix(ε) = max_s τ_mix_s(ε) over all sources.
// O(n) walks; intended for small graphs.
func GraphMixingTime(g *graph.Graph, eps float64, lazy bool, maxT int) (int, error) {
	worst := 0
	for s := 0; s < g.N(); s++ {
		t, err := MixingTime(g, s, eps, lazy, maxT)
		if err != nil {
			return 0, err
		}
		if t > worst {
			worst = t
		}
	}
	return worst, nil
}
