package exact

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fixedpoint"
	"repro/internal/gen"
)

// TestBipartiteNonLazyFastFail: every oracle entry point must reject the
// simple walk on a bipartite graph immediately with ErrBipartiteNonLazy —
// not burn its whole step budget and misreport ErrNoMixing (the walk
// oscillates between the two sides forever, footnote 5).
func TestBipartiteNonLazyFastFail(t *testing.T) {
	g, err := gen.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	// A budget large enough that burning it would take far longer than the
	// guard: the pre-guard behavior of the local oracles was a full 2^20
	// step scan ending in ErrNoMixing.
	const hugeT = 1 << 20
	opts := LocalOptions{MaxT: hugeT, Grid: true}
	cases := []struct {
		name string
		call func() error
	}{
		{"MixingTime", func() error {
			_, err := MixingTime(g, 0, 0.1, false, hugeT)
			return err
		}},
		{"GraphMixingTime", func() error {
			_, err := GraphMixingTime(g, 0.1, false, hugeT)
			return err
		}},
		{"LocalMixing", func() error {
			_, err := LocalMixing(g, 0, 4, 0.1, opts)
			return err
		}},
		{"LocalMixingProfile", func() error {
			_, err := LocalMixingProfile(g, 0, 4, 0.1, opts)
			return err
		}},
		{"GraphLocalMixing", func() error {
			_, err := GraphLocalMixing(g, 4, 0.1, opts, nil)
			return err
		}},
		{"FixedLocalMixing", func() error {
			scale := fixedpoint.MustScaleFor(g.N(), fixedpoint.DefaultC)
			_, err := FixedLocalMixing(g, 0, scale, 4, 0.1, false, Units(hugeT))
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			err := tc.call()
			if err == nil {
				t.Fatal("non-lazy walk on a bipartite graph accepted")
			}
			if !errors.Is(err, ErrBipartiteNonLazy) {
				t.Fatalf("error is %v, want ErrBipartiteNonLazy", err)
			}
			if errors.Is(err, ErrNoMixing) {
				t.Fatal("guard still reports the misleading ErrNoMixing")
			}
			if d := time.Since(start); d > time.Second {
				t.Errorf("fast-fail took %v — budget was burned before rejecting", d)
			}
		})
	}
	// The lazy chain on the same graph must pass every guard.
	if _, err := MixingTime(g, 0, 0.5, true, hugeT); err != nil {
		t.Errorf("lazy MixingTime on hypercube: %v", err)
	}
	if _, err := LocalMixing(g, 0, 4, 0.25, LocalOptions{MaxT: hugeT, Grid: true, Lazy: true}); err != nil {
		t.Errorf("lazy LocalMixing on hypercube: %v", err)
	}
}
