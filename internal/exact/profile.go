package exact

import (
	"fmt"

	"repro/internal/graph"
)

// MixingProfile returns ‖p_t − π‖₁ for t = 0..maxT — the global convergence
// trace. By Lemma 1 it is non-increasing (the property tests rely on this);
// contrast with the restricted distance of a fixed set, which is not (see
// LocalMixingProfile and examples/figure1).
func MixingProfile(g *graph.Graph, source int, lazy bool, maxT int) ([]float64, error) {
	return MixingProfileWorkers(g, source, lazy, maxT, 0)
}

// MixingProfileWorkers is MixingProfile with an explicit kernel worker count
// (≤ 0 means GOMAXPROCS); the trace is identical for every count.
func MixingProfileWorkers(g *graph.Graph, source int, lazy bool, maxT, workers int) ([]float64, error) {
	if maxT < 0 {
		return nil, fmt.Errorf("exact: MixingProfile needs maxT ≥ 0")
	}
	w, err := NewWalkWorkers(g, source, lazy, workers)
	if err != nil {
		return nil, err
	}
	pi := Stationary(g)
	prof := make([]float64, maxT+1)
	for t := 0; t <= maxT; t++ {
		prof[t] = L1(w.P(), pi)
		w.Step()
	}
	return prof, nil
}
