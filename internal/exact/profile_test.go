package exact

import (
	"testing"

	"repro/internal/gen"
)

func TestMixingProfileMonotone(t *testing.T) {
	g, err := gen.Dumbbell(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := MixingProfile(g, 0, true, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 501 {
		t.Fatalf("profile length %d", len(prof))
	}
	for i := 1; i < len(prof); i++ {
		if prof[i] > prof[i-1]+1e-12 {
			t.Fatalf("Lemma 1 violated at t=%d: %v > %v", i, prof[i], prof[i-1])
		}
	}
	if prof[0] < 1 {
		t.Errorf("initial distance %v, want ≈ 2(1−π(s))", prof[0])
	}
	if prof[500] > prof[0]/2 {
		t.Errorf("no visible convergence: %v → %v", prof[0], prof[500])
	}
}

func TestMixingProfileValidation(t *testing.T) {
	g, _ := gen.Complete(4)
	if _, err := MixingProfile(g, 0, false, -1); err == nil {
		t.Error("negative maxT accepted")
	}
	if _, err := MixingProfile(g, 9, false, 5); err == nil {
		t.Error("bad source accepted")
	}
}
