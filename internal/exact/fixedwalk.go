package exact

import (
	"fmt"
	"slices"

	"repro/internal/fixedpoint"
	"repro/internal/graph"
)

// FixedWalk is the centralized twin of the distributed Algorithm 1
// (ESTIMATE-RW-PROBABILITY): it evolves the walk on the fixed-point grid
// with *identical* integer arithmetic — per-neighbor shares are floored and
// the sender keeps the remainder — so the distributed flooding must produce
// byte-identical mass vectors. The test suite exploits this for exact
// cross-validation, and the harness uses it to measure the Lemma 2 rounding
// error against the float64 walk.
type FixedWalk struct {
	g     *graph.Graph
	scale fixedpoint.Scale
	lazy  bool
	t     int
	w     []int64
	next  []int64
}

// NewFixedWalk starts the fixed-point walk at source with mass One.
func NewFixedWalk(g *graph.Graph, source int, scale fixedpoint.Scale, lazy bool) (*FixedWalk, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("exact: source %d out of range [0,%d)", source, g.N())
	}
	f := &FixedWalk{
		g:     g,
		scale: scale,
		lazy:  lazy,
		w:     make([]int64, g.N()),
		next:  make([]int64, g.N()),
	}
	f.w[source] = scale.One
	return f, nil
}

// T returns the number of steps taken.
func (f *FixedWalk) T() int { return f.t }

// Scale returns the fixed-point grid.
func (f *FixedWalk) Scale() fixedpoint.Scale { return f.scale }

// W returns the current mass vector (owned by the walk; copy to retain).
func (f *FixedWalk) W() []int64 { return f.w }

// TotalMass returns Σw, which is invariant (= One) under Step.
func (f *FixedWalk) TotalMass() int64 {
	var s int64
	for _, v := range f.w {
		s += v
	}
	return s
}

// Step advances one flooding step. Simple walk: each node sends ⌊w/d⌋ to
// every neighbor and keeps the remainder. Lazy walk: each node holds back
// ⌈w/2⌉ and distributes the rest the same way.
func (f *FixedWalk) Step() {
	g := f.g
	n := g.N()
	for v := 0; v < n; v++ {
		f.next[v] = 0
	}
	for u := 0; u < n; u++ {
		w := f.w[u]
		if w == 0 {
			continue
		}
		avail := w
		var hold int64
		if f.lazy {
			hold = w - w/2 // ⌈w/2⌉ stays
			avail = w / 2
		}
		d := int64(g.Degree(u))
		share := avail / d
		rem := avail - d*share
		f.next[u] += hold + rem
		if share > 0 {
			for _, v := range g.Neighbors(u) {
				f.next[v] += share
			}
		}
	}
	f.w, f.next = f.next, f.w
	f.t++
}

// StepN advances k steps.
func (f *FixedWalk) StepN(k int) {
	for i := 0; i < k; i++ {
		f.Step()
	}
}

// Float returns the current mass vector as float64 probabilities.
func (f *FixedWalk) Float() []float64 {
	p := make([]float64, len(f.w))
	for i, v := range f.w {
		p[i] = f.scale.Float(v)
	}
	return p
}

// SumRSmallest returns the sum of the R smallest values of xs — the quantity
// Algorithm 2's source computes via distributed binary search. Reference
// implementation by sorting; used by the centralized twins and as the test
// oracle for the distributed k-smallest-sum protocol.
func SumRSmallest(xs []int64, r int) int64 {
	if r < 0 || r > len(xs) {
		panic(fmt.Sprintf("exact: SumRSmallest r=%d of %d", r, len(xs)))
	}
	tmp := make([]int64, len(xs))
	copy(tmp, xs)
	slices.Sort(tmp)
	var s int64
	for i := 0; i < r; i++ {
		s += tmp[i]
	}
	return s
}

// FixedLocalCheck evaluates Algorithm 2's per-length test on a fixed-point
// mass vector: for each candidate size R it computes x_u = |w_u − ⌊One/R⌋|
// for every node and tests whether the R smallest sum below threshold.
// It returns the first passing size, its sum, and ok.
func FixedLocalCheck(w []int64, scale fixedpoint.Scale, sizes []int, threshold int64) (r int, sum int64, ok bool) {
	xs := make([]int64, len(w))
	for _, R := range sizes {
		target := scale.One / int64(R)
		for i, wv := range w {
			xs[i] = fixedpoint.Abs(wv, target)
		}
		s := SumRSmallest(xs, R)
		if s < threshold {
			return R, s, true
		}
	}
	return 0, 0, false
}

// FixedLocalResult reports a centralized fixed-point local-mixing run.
type FixedLocalResult struct {
	Tau int   // the length at which the check first passed
	R   int   // the passing set size
	Sum int64 // the achieved fixed-point sum (< threshold)
}

// FixedLocalMixing is the centralized twin of the distributed algorithms in
// internal/core: it steps the fixed-point walk and applies Algorithm 2's
// 4ε grid check at every length in lengths (ascending). The distributed
// exact algorithm must agree with lengths = 1,2,3,…; the distributed approx
// algorithm must agree with lengths = 1,2,4,8,… (deterministic flooding
// restarted at length ℓ equals the continued walk at time ℓ, so doubling
// with restarts is equivalent to checkpointing one continuous walk).
func FixedLocalMixing(g *graph.Graph, source int, scale fixedpoint.Scale, beta, eps float64, lazy bool, lengths []int) (*FixedLocalResult, error) {
	if err := checkLazyChain(g, lazy); err != nil {
		return nil, err
	}
	fw, err := NewFixedWalk(g, source, scale, lazy)
	if err != nil {
		return nil, err
	}
	sizes := CandidateSizes(g.N(), beta, true, eps)
	threshold := scale.FromFloat(4 * eps)
	for _, ell := range lengths {
		if ell < fw.T() {
			return nil, fmt.Errorf("exact: FixedLocalMixing lengths must be ascending")
		}
		fw.StepN(ell - fw.T())
		if r, sum, ok := FixedLocalCheck(fw.W(), scale, sizes, threshold); ok {
			return &FixedLocalResult{Tau: ell, R: r, Sum: sum}, nil
		}
	}
	return nil, fmt.Errorf("%w (fixed local, lengths up to %d)", ErrNoMixing, lengths[len(lengths)-1])
}

// Doublings returns 1, 2, 4, …, capped at max (inclusive of the first value
// ≥ max to mirror Algorithm 2's final probe).
func Doublings(max int) []int {
	var out []int
	for l := 1; ; l *= 2 {
		out = append(out, l)
		if l >= max {
			return out
		}
	}
}

// Units returns 1, 2, 3, …, max.
func Units(max int) []int {
	out := make([]int, max)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// FixedMixingCheck evaluates the [18]-style global test on a fixed-point
// vector: Σ_u |w_u − ⌊One·d(u)/2m⌋| < threshold.
func FixedMixingCheck(g *graph.Graph, w []int64, scale fixedpoint.Scale, threshold int64) (int64, bool) {
	twoM := int64(2 * g.M())
	var s int64
	for u, wv := range w {
		target := scale.One * int64(g.Degree(u)) / twoM
		s += fixedpoint.Abs(wv, target)
	}
	return s, s < threshold
}
