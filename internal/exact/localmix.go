package exact

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// LocalOptions configures the exact local-mixing-time oracle.
type LocalOptions struct {
	// Lazy selects the lazy chain (needed on bipartite graphs).
	Lazy bool
	// MaxT is the step budget; the oracle fails with ErrNoMixing beyond it.
	MaxT int
	// Grid restricts the candidate set sizes to the (1+GridStep)-geometric
	// grid starting at ⌈n/β⌉, exactly like Algorithm 2's loop over R. When
	// false every integer size in [⌈n/β⌉, n] is examined (the literal
	// Definition 2 minimum).
	Grid bool
	// GridStep is the grid ratio minus one (defaults to Eps when zero).
	GridStep float64
	// ThresholdMult scales the acceptance threshold: the test is
	// Σ < ThresholdMult·ε. Algorithm 2 uses 4 (Lemma 3); the plain
	// definition uses 1. Defaults to 1.
	ThresholdMult float64
	// RequireSource forces the witness set to contain the source, per the
	// letter of Definition 2. Algorithm 2 omits the constraint (it takes the
	// R smallest differences over all nodes); the default matches the
	// algorithm. Enabling it costs an extra O(n log n) per (t, R).
	RequireSource bool
}

// LocalResult reports an exact local-mixing-time computation.
type LocalResult struct {
	// T is the local mixing time τ_s(β, ε): the first step at which some
	// admissible set passes the L1 test.
	T int
	// R is the size of the witness set.
	R int
	// Dist is the restricted L1 distance achieved by the witness set.
	Dist float64
	// Set is the witness local-mixing set (vertex ids, ascending).
	Set []int
}

// LocalMixing computes the local mixing time τ_s(β, ε) of Definition 2 with
// the uniform target 1/|S| (the regular-graph form, which is also precisely
// the quantity Algorithm 2 computes on any graph). For each step t it asks:
// does there exist a set size R ≥ ⌈n/β⌉ whose R best-matching vertices have
// Σ_{v∈S} |p_t(v) − 1/R| below threshold?
func LocalMixing(g *graph.Graph, source int, beta float64, eps float64, o LocalOptions) (*LocalResult, error) {
	if beta < 1 {
		return nil, fmt.Errorf("exact: LocalMixing needs β ≥ 1, got %g", beta)
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("exact: LocalMixing needs ε ∈ (0,1), got %g", eps)
	}
	if o.MaxT <= 0 {
		return nil, fmt.Errorf("exact: LocalMixing needs MaxT > 0, got %d", o.MaxT)
	}
	w, err := NewWalk(g, source, o.Lazy)
	if err != nil {
		return nil, err
	}
	threshold := eps
	if o.ThresholdMult > 0 {
		threshold = eps * o.ThresholdMult
	}
	sizes := CandidateSizes(g.N(), beta, o.Grid, gridStep(eps, o))
	scratch := newWindowScratch(g.N())
	for t := 0; t <= o.MaxT; t++ {
		if res := checkLocalAt(w.P(), source, sizes, threshold, o.RequireSource, scratch); res != nil {
			res.T = t
			return res, nil
		}
		w.Step()
	}
	return nil, fmt.Errorf("%w (local, maxT=%d, source=%d, β=%g)", ErrNoMixing, o.MaxT, source, beta)
}

// LocalMixingProfile returns, for each t in [0, maxT], the best restricted
// L1 distance achievable by any admissible set size (used by experiments to
// plot convergence; the local distance is *not* monotone in t, unlike
// Lemma 1's global distance, which this makes observable).
func LocalMixingProfile(g *graph.Graph, source int, beta float64, eps float64, o LocalOptions) ([]float64, error) {
	if o.MaxT <= 0 {
		return nil, fmt.Errorf("exact: LocalMixingProfile needs MaxT > 0")
	}
	w, err := NewWalk(g, source, o.Lazy)
	if err != nil {
		return nil, err
	}
	sizes := CandidateSizes(g.N(), beta, o.Grid, gridStep(eps, o))
	scratch := newWindowScratch(g.N())
	prof := make([]float64, o.MaxT+1)
	for t := 0; t <= o.MaxT; t++ {
		scratch.load(w.P())
		best := math.Inf(1)
		for _, r := range sizes {
			d, _ := bestSetDist(w.P(), source, r, o.RequireSource, scratch, false)
			if d < best {
				best = d
			}
		}
		prof[t] = best
		w.Step()
	}
	return prof, nil
}

func gridStep(eps float64, o LocalOptions) float64 {
	if o.GridStep > 0 {
		return o.GridStep
	}
	return eps
}

// CandidateSizes enumerates the set sizes examined: either every integer in
// [⌈n/β⌉, n], or the geometric grid ⌈(n/β)(1+step)^i⌉ capped at n
// (Algorithm 2's schedule), deduplicated and ascending.
func CandidateSizes(n int, beta float64, grid bool, step float64) []int {
	lo := int(math.Ceil(float64(n) / beta))
	if lo < 1 {
		lo = 1
	}
	if lo > n {
		lo = n
	}
	if !grid {
		sizes := make([]int, 0, n-lo+1)
		for r := lo; r <= n; r++ {
			sizes = append(sizes, r)
		}
		return sizes
	}
	est := int(math.Log(float64(n)/float64(lo))/math.Log1p(step)) + 3
	sizes := make([]int, 0, est)
	f := float64(lo)
	prev := -1
	for {
		r := int(math.Ceil(f))
		if r > n {
			break
		}
		if r != prev {
			sizes = append(sizes, r)
			prev = r
		}
		f *= 1 + step
	}
	if len(sizes) == 0 || sizes[len(sizes)-1] != n {
		sizes = append(sizes, n)
	}
	return sizes
}

// windowScratch holds the reusable buffers for the sliding-window search.
type windowScratch struct {
	order  []int     // vertex ids sorted by p value
	sorted []float64 // p in ascending order
	prefix []float64 // prefix sums of sorted
	dists  []float64 // distances buffer for RequireSource mode
	sorter orderByP  // reusable sort.Interface (avoids a closure per load)
}

// orderByP sorts the order permutation by ascending p value.
type orderByP struct {
	order []int
	p     []float64
}

func (b *orderByP) Len() int           { return len(b.order) }
func (b *orderByP) Less(i, j int) bool { return b.p[b.order[i]] < b.p[b.order[j]] }
func (b *orderByP) Swap(i, j int)      { b.order[i], b.order[j] = b.order[j], b.order[i] }

func newWindowScratch(n int) *windowScratch {
	return &windowScratch{
		order:  make([]int, n),
		sorted: make([]float64, n),
		prefix: make([]float64, n+1),
		dists:  make([]float64, 0, n),
	}
}

func (s *windowScratch) load(p []float64) {
	n := len(p)
	for i := 0; i < n; i++ {
		s.order[i] = i
	}
	s.sorter.order, s.sorter.p = s.order[:n], p
	sort.Sort(&s.sorter)
	for i, v := range s.order {
		s.sorted[i] = p[v]
	}
	s.prefix[0] = 0
	for i := 0; i < n; i++ {
		s.prefix[i+1] = s.prefix[i] + s.sorted[i]
	}
}

// checkLocalAt tests whether any size in sizes passes the threshold for the
// current distribution p; it returns the witness with the smallest size that
// passes (matching Algorithm 2, which scans sizes in increasing order), or
// nil.
func checkLocalAt(p []float64, source int, sizes []int, threshold float64, requireSource bool, s *windowScratch) *LocalResult {
	s.load(p)
	for _, r := range sizes {
		// Evaluate without materializing the witness; only the (rare)
		// passing size pays for building its set.
		d, _ := bestSetDist(p, source, r, requireSource, s, false)
		if d < threshold {
			_, set := bestSetDist(p, source, r, requireSource, s, true)
			sort.Ints(set)
			return &LocalResult{R: r, Dist: d, Set: set}
		}
	}
	return nil
}

// bestSetDist returns the minimum of Σ_{v∈S} |p(v) − 1/R| over sets S of
// size exactly R (optionally constrained to contain source), together with
// the witness set when wantSet is set. The scratch must have been loaded
// with p (checkLocalAt does this; standalone callers must call s.load(p)).
//
// For the unconstrained case the optimal S is the R values closest to 1/R,
// which form a contiguous window of the value-sorted vertices; the window
// cost is evaluated in O(1) with prefix sums.
func bestSetDist(p []float64, source, r int, requireSource bool, s *windowScratch, wantSet bool) (float64, []int) {
	n := len(p)
	if r < 1 || r > n {
		return math.Inf(1), nil
	}
	tau := 1 / float64(r)
	if requireSource {
		return bestSetDistWithSource(p, source, r, tau, s, wantSet)
	}
	// firstGE = first sorted index with value ≥ τ.
	firstGE := sort.SearchFloat64s(s.sorted[:n], tau)
	best := math.Inf(1)
	bestStart := 0
	for i := 0; i+r <= n; i++ {
		k := firstGE
		if k < i {
			k = i
		}
		if k > i+r {
			k = i + r
		}
		below := tau*float64(k-i) - (s.prefix[k] - s.prefix[i])
		above := (s.prefix[i+r] - s.prefix[k]) - tau*float64(i+r-k)
		cost := below + above
		if cost < best {
			best = cost
			bestStart = i
		}
	}
	if !wantSet {
		return best, nil
	}
	set := make([]int, r)
	copy(set, s.order[bestStart:bestStart+r])
	return best, set
}

// bestSetDistWithSource forces the source into the set: cost =
// |p(s) − τ| + sum of the R−1 smallest distances among the rest.
func bestSetDistWithSource(p []float64, source, r int, tau float64, s *windowScratch, wantSet bool) (float64, []int) {
	s.dists = s.dists[:0]
	type dv struct {
		d float64
		v int
	}
	pairs := make([]dv, 0, len(p)-1)
	for v := range p {
		if v == source {
			continue
		}
		pairs = append(pairs, dv{math.Abs(p[v] - tau), v})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].d < pairs[b].d })
	cost := math.Abs(p[source] - tau)
	var set []int
	if wantSet {
		set = make([]int, 0, r)
		set = append(set, source)
	}
	for i := 0; i < r-1; i++ {
		cost += pairs[i].d
		if wantSet {
			set = append(set, pairs[i].v)
		}
	}
	return cost, set
}
