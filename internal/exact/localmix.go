package exact

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/walkkernel"
)

// LocalOptions configures the exact local-mixing-time oracle.
type LocalOptions struct {
	// Lazy selects the lazy chain (needed on bipartite graphs).
	Lazy bool
	// MaxT is the step budget; the oracle fails with ErrNoMixing beyond it.
	MaxT int
	// Grid restricts the candidate set sizes to the (1+GridStep)-geometric
	// grid starting at ⌈n/β⌉, exactly like Algorithm 2's loop over R. When
	// false every integer size in [⌈n/β⌉, n] is examined (the literal
	// Definition 2 minimum).
	Grid bool
	// GridStep is the grid ratio minus one (defaults to Eps when zero).
	GridStep float64
	// ThresholdMult scales the acceptance threshold: the test is
	// Σ < ThresholdMult·ε. Algorithm 2 uses 4 (Lemma 3); the plain
	// definition uses 1. Defaults to 1.
	ThresholdMult float64
	// RequireSource forces the witness set to contain the source, per the
	// letter of Definition 2. Algorithm 2 omits the constraint (it takes the
	// R smallest differences over all nodes); the default matches the
	// algorithm. Enabling it costs an extra O(n log n) per (t, R).
	RequireSource bool
	// Workers sets the walk-kernel parallelism and the width of the
	// candidate-size scan (≤ 0 means GOMAXPROCS). It never changes results:
	// the kernel's vertex blocks and the size scan's chunk grid are
	// schedule-independent.
	Workers int
}

// LocalResult reports an exact local-mixing-time computation.
type LocalResult struct {
	// T is the local mixing time τ_s(β, ε): the first step at which some
	// admissible set passes the L1 test.
	T int
	// R is the size of the witness set.
	R int
	// Dist is the restricted L1 distance achieved by the witness set.
	Dist float64
	// Set is the witness local-mixing set (vertex ids, ascending).
	Set []int
}

// LocalMixing computes the local mixing time τ_s(β, ε) of Definition 2 with
// the uniform target 1/|S| (the regular-graph form, which is also precisely
// the quantity Algorithm 2 computes on any graph). For each step t it asks:
// does there exist a set size R ≥ ⌈n/β⌉ whose R best-matching vertices have
// Σ_{v∈S} |p_t(v) − 1/R| below threshold?
func LocalMixing(g *graph.Graph, source int, beta float64, eps float64, o LocalOptions) (*LocalResult, error) {
	k, err := localKernel(g, beta, eps, o)
	if err != nil {
		return nil, err
	}
	return localMixingOn(context.Background(), g, k, source, beta, eps, o)
}

// localKernel validates the common oracle parameters and builds the shared
// walk kernel.
func localKernel(g *graph.Graph, beta, eps float64, o LocalOptions) (*walkkernel.Kernel, error) {
	if err := validateLocal(g, beta, eps, o); err != nil {
		return nil, err
	}
	return walkKernel(g, o.Workers)
}

// validateLocal is localKernel's parameter check, shared with the
// kernel-reusing entry points that skip the kernel build.
func validateLocal(g *graph.Graph, beta, eps float64, o LocalOptions) error {
	if beta < 1 {
		return fmt.Errorf("exact: LocalMixing needs β ≥ 1, got %g", beta)
	}
	if eps <= 0 || eps >= 1 {
		return fmt.Errorf("exact: LocalMixing needs ε ∈ (0,1), got %g", eps)
	}
	if o.MaxT <= 0 {
		return fmt.Errorf("exact: LocalMixing needs MaxT > 0, got %d", o.MaxT)
	}
	return checkLazyChain(g, o.Lazy)
}

// localMixingOn is LocalMixing on an already-validated shared kernel. The
// context is checked once per walk step (each step pays a sort plus the
// candidate-size scan), so a service deadline aborts within one step.
func localMixingOn(ctx context.Context, g *graph.Graph, k *walkkernel.Kernel, source int, beta, eps float64, o LocalOptions) (*LocalResult, error) {
	w, err := newWalkOn(g, k, source, o.Lazy)
	if err != nil {
		return nil, err
	}
	threshold := eps
	if o.ThresholdMult > 0 {
		threshold = eps * o.ThresholdMult
	}
	sizes := CandidateSizes(g.N(), beta, o.Grid, gridStep(eps, o))
	scratch := newWindowScratch(g.N(), scanWorkers(o.Workers, k))
	for t := 0; t <= o.MaxT; t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("exact: local mixing cancelled at step %d (source=%d): %w", t, source, err)
		}
		if res := checkLocalAt(w.P(), source, sizes, threshold, o.RequireSource, scratch); res != nil {
			res.T = t
			return res, nil
		}
		w.Step()
	}
	return nil, fmt.Errorf("%w (local, maxT=%d, source=%d, β=%g)", ErrNoMixing, o.MaxT, source, beta)
}

// scanWorkers resolves the candidate-size scan width from the option and the
// kernel's block count (which already folds in GOMAXPROCS).
func scanWorkers(workers int, k *walkkernel.Kernel) int {
	if workers == 1 {
		return 1
	}
	return k.Blocks()
}

// LocalMixingProfile returns, for each t in [0, maxT], the best restricted
// L1 distance achievable by any admissible set size (used by experiments to
// plot convergence; the local distance is *not* monotone in t, unlike
// Lemma 1's global distance, which this makes observable).
func LocalMixingProfile(g *graph.Graph, source int, beta float64, eps float64, o LocalOptions) ([]float64, error) {
	k, err := localKernel(g, beta, eps, o)
	if err != nil {
		return nil, err
	}
	w, err := newWalkOn(g, k, source, o.Lazy)
	if err != nil {
		return nil, err
	}
	sizes := CandidateSizes(g.N(), beta, o.Grid, gridStep(eps, o))
	scratch := newWindowScratch(g.N(), scanWorkers(o.Workers, k))
	prof := make([]float64, o.MaxT+1)
	for t := 0; t <= o.MaxT; t++ {
		scratch.load(w.P())
		best := math.Inf(1)
		for _, r := range sizes {
			d, _ := bestSetDist(w.P(), source, r, o.RequireSource, scratch, false)
			if d < best {
				best = d
			}
		}
		prof[t] = best
		w.Step()
	}
	return prof, nil
}

func gridStep(eps float64, o LocalOptions) float64 {
	if o.GridStep > 0 {
		return o.GridStep
	}
	return eps
}

// CandidateSizes enumerates the set sizes examined: either every integer in
// [⌈n/β⌉, n], or the geometric grid ⌈(n/β)(1+step)^i⌉ capped at n
// (Algorithm 2's schedule), deduplicated and ascending.
func CandidateSizes(n int, beta float64, grid bool, step float64) []int {
	lo := int(math.Ceil(float64(n) / beta))
	if lo < 1 {
		lo = 1
	}
	if lo > n {
		lo = n
	}
	if !grid {
		sizes := make([]int, 0, n-lo+1)
		for r := lo; r <= n; r++ {
			sizes = append(sizes, r)
		}
		return sizes
	}
	est := int(math.Log(float64(n)/float64(lo))/math.Log1p(step)) + 3
	sizes := make([]int, 0, est)
	f := float64(lo)
	prev := -1
	for {
		r := int(math.Ceil(f))
		if r > n {
			break
		}
		if r != prev {
			sizes = append(sizes, r)
			prev = r
		}
		f *= 1 + step
	}
	if len(sizes) == 0 || sizes[len(sizes)-1] != n {
		sizes = append(sizes, n)
	}
	return sizes
}

// pid is one packed (probability, vertex id) pair of the sliding-window
// order. 16 bytes, so the sort moves one cache-friendly unit instead of
// chasing the permutation through p.
type pid struct {
	p  float64
	id int32
}

// cmpPid orders pairs by probability, breaking ties by vertex id so the
// order (and therefore any witness set cut at a tie) is canonical.
func cmpPid(a, b pid) int {
	switch {
	case a.p < b.p:
		return -1
	case a.p > b.p:
		return 1
	case a.id < b.id:
		return -1
	case a.id > b.id:
		return 1
	}
	return 0
}

// windowScratch holds the reusable buffers for the sliding-window search.
type windowScratch struct {
	pairs  []pid     // (p, id) packed, ascending by (p, id) after load
	sorted []float64 // p in ascending order (pairs[i].p, for binary search)
	prefix []float64 // prefix sums of sorted
	spairs []pid     // (|p−τ|, id) scratch for RequireSource mode
	seeded bool      // pairs carry the previous step's order

	// Size-scan parallelism (checkLocalAt): fixed-grain chunks over the
	// candidate sizes, evaluated on the shared pool. Chunk results are
	// merged by minimum passing size — an exact comparison — so the scan is
	// schedule-independent.
	workers  int
	scan     scanJob
	scanWG   sync.WaitGroup
	scanBest []scanHit
}

func newWindowScratch(n, workers int) *windowScratch {
	if workers < 1 {
		workers = 1
	}
	return &windowScratch{
		pairs:   make([]pid, n),
		sorted:  make([]float64, n),
		prefix:  make([]float64, n+1),
		workers: workers,
	}
}

// load sorts the vertices by p value. The previous load's order seeds the
// pairs: one walk step perturbs p only locally, so the sequence is nearly
// sorted and pdqsort (slices.SortFunc) finishes in near-linear time,
// replacing the full interface-based sort.Sort of every step.
func (s *windowScratch) load(p []float64) {
	n := len(p)
	pairs := s.pairs[:n]
	if s.seeded {
		for i := range pairs {
			pairs[i].p = p[pairs[i].id]
		}
	} else {
		for i := range pairs {
			pairs[i] = pid{p: p[i], id: int32(i)}
		}
		s.seeded = true
	}
	slices.SortFunc(pairs, cmpPid)
	for i := range pairs {
		s.sorted[i] = pairs[i].p
	}
	s.prefix[0] = 0
	for i := 0; i < n; i++ {
		s.prefix[i+1] = s.prefix[i] + s.sorted[i]
	}
}

// scanChunk is the candidate-size grain of the parallel scan; chunks are
// fixed-size so the grid never depends on the worker count.
const scanChunk = 64

// scanHit records the best (smallest) passing size found in one chunk.
type scanHit struct {
	r int
	d float64
}

// scanJob evaluates a chunk range of candidate sizes against the threshold.
type scanJob struct {
	s         *windowScratch
	p         []float64
	sizes     []int
	threshold float64
}

func (j *scanJob) RunRange(lo, hi int32) {
	ci := int(lo) / scanChunk
	hit := scanHit{r: -1}
	for _, r := range j.sizes[lo:hi] {
		d, _ := bestSetDist(j.p, 0, r, false, j.s, false)
		if d < j.threshold {
			hit = scanHit{r: r, d: d}
			break // sizes ascend; the first pass in a chunk is its smallest
		}
	}
	j.s.scanBest[ci] = hit
}

// checkLocalAt tests whether any size in sizes passes the threshold for the
// current distribution p; it returns the witness with the smallest size that
// passes (matching Algorithm 2, which scans sizes in increasing order), or
// nil. In non-grid mode the size loop is O(n²) per step, so chunks of sizes
// are evaluated in parallel (the window evaluations only read the scratch).
func checkLocalAt(p []float64, source int, sizes []int, threshold float64, requireSource bool, s *windowScratch) *LocalResult {
	s.load(p)
	r, d := -1, math.Inf(1)
	if !requireSource && s.workers > 1 && len(sizes) >= 2*scanChunk {
		chunks := (len(sizes) + scanChunk - 1) / scanChunk
		if cap(s.scanBest) < chunks {
			s.scanBest = make([]scanHit, chunks)
		}
		s.scanBest = s.scanBest[:chunks]
		s.scan = scanJob{s: s, p: p, sizes: sizes, threshold: threshold}
		walkkernel.ParallelFor(&s.scanWG, &s.scan, len(sizes), scanChunk, s.workers)
		for _, hit := range s.scanBest {
			if hit.r >= 0 {
				r, d = hit.r, hit.d
				break // chunk order is size order; first hit is smallest
			}
		}
	} else {
		for _, rr := range sizes {
			// Evaluate without materializing the witness; only the (rare)
			// passing size pays for building its set.
			dd, _ := bestSetDist(p, source, rr, requireSource, s, false)
			if dd < threshold {
				r, d = rr, dd
				break
			}
		}
	}
	if r < 0 {
		return nil
	}
	_, set := bestSetDist(p, source, r, requireSource, s, true)
	sort.Ints(set)
	return &LocalResult{R: r, Dist: d, Set: set}
}

// bestSetDist returns the minimum of Σ_{v∈S} |p(v) − 1/R| over sets S of
// size exactly R (optionally constrained to contain source), together with
// the witness set when wantSet is set. The scratch must have been loaded
// with p (checkLocalAt does this; standalone callers must call s.load(p)).
//
// For the unconstrained case the optimal S is the R values closest to 1/R,
// which form a contiguous window of the value-sorted vertices; the window
// cost is evaluated in O(1) with prefix sums. The unconstrained path only
// reads the scratch, so concurrent evaluations of different sizes may share
// one loaded scratch.
func bestSetDist(p []float64, source, r int, requireSource bool, s *windowScratch, wantSet bool) (float64, []int) {
	n := len(p)
	if r < 1 || r > n {
		return math.Inf(1), nil
	}
	tau := 1 / float64(r)
	if requireSource {
		return bestSetDistWithSource(p, source, r, tau, s, wantSet)
	}
	// firstGE = first sorted index with value ≥ τ.
	firstGE := sort.SearchFloat64s(s.sorted[:n], tau)
	best := math.Inf(1)
	bestStart := 0
	for i := 0; i+r <= n; i++ {
		k := firstGE
		if k < i {
			k = i
		}
		if k > i+r {
			k = i + r
		}
		below := tau*float64(k-i) - (s.prefix[k] - s.prefix[i])
		above := (s.prefix[i+r] - s.prefix[k]) - tau*float64(i+r-k)
		cost := below + above
		if cost < best {
			best = cost
			bestStart = i
		}
	}
	if !wantSet {
		return best, nil
	}
	set := make([]int, r)
	for i := range set {
		set[i] = int(s.pairs[bestStart+i].id)
	}
	return best, set
}

// bestSetDistWithSource forces the source into the set: cost =
// |p(s) − τ| + sum of the R−1 smallest distances among the rest. The
// (distance, id) pairs are built in the reusable spairs scratch.
func bestSetDistWithSource(p []float64, source, r int, tau float64, s *windowScratch, wantSet bool) (float64, []int) {
	if cap(s.spairs) < len(p) {
		s.spairs = make([]pid, 0, len(p))
	}
	pairs := s.spairs[:0]
	for v := range p {
		if v == source {
			continue
		}
		pairs = append(pairs, pid{p: math.Abs(p[v] - tau), id: int32(v)})
	}
	slices.SortFunc(pairs, cmpPid)
	s.spairs = pairs
	cost := math.Abs(p[source] - tau)
	var set []int
	if wantSet {
		set = make([]int, 0, r)
		set = append(set, source)
	}
	for i := 0; i < r-1; i++ {
		cost += pairs[i].p
		if wantSet {
			set = append(set, int(pairs[i].id))
		}
	}
	return cost, set
}
