package exact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

const eps = 1.0 / (8 * math.E) // the paper's running accuracy choice

func TestWalkIsDistribution(t *testing.T) {
	g, _ := gen.RingOfCliques(3, 5)
	for _, lazy := range []bool{false, true} {
		w, err := NewWalk(g, 2, lazy)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 30; step++ {
			sum, min := 0.0, math.Inf(1)
			for _, p := range w.P() {
				sum += p
				if p < min {
					min = p
				}
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("lazy=%v t=%d: Σp = %v", lazy, step, sum)
			}
			if min < 0 {
				t.Fatalf("lazy=%v t=%d: negative probability", lazy, step)
			}
			w.Step()
		}
	}
}

func TestStationaryIsFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, _ := gen.ErdosRenyi(30, 0.2, rng)
	pi := Stationary(g)
	// One step from π must return π (for both chains).
	for _, lazy := range []bool{false, true} {
		w, _ := NewWalk(g, 0, lazy)
		w.SetDist(pi)
		w.Step()
		if d := L1(w.P(), pi); d > 1e-12 {
			t.Errorf("lazy=%v: ‖Pπ − π‖₁ = %v", lazy, d)
		}
	}
}

// TestLemma1Monotonicity: ‖p_{t+1} − π‖₁ ≤ ‖p_t − π‖₁ on random graphs.
func TestLemma1Monotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		d := 3 + rng.Intn(3)
		if n*d%2 == 1 {
			n++
		}
		g, err := gen.RandomRegular(n, d, rng)
		if err != nil {
			return true // skip unlucky parameter combos
		}
		w, _ := NewWalk(g, rng.Intn(n), true)
		pi := Stationary(g)
		prev := L1(w.P(), pi)
		for step := 0; step < 40; step++ {
			w.Step()
			cur := L1(w.P(), pi)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMixingTimeCompleteIsOne(t *testing.T) {
	g, _ := gen.Complete(64)
	tm, err := MixingTime(g, 0, eps, false, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tm != 1 {
		t.Errorf("K64 mixing time %d, want 1 (§2.3 a)", tm)
	}
}

func TestMixingTimeRejectsBipartiteSimpleWalk(t *testing.T) {
	g, _ := gen.Hypercube(3)
	if _, err := MixingTime(g, 0, eps, false, 100); err == nil {
		t.Error("bipartite + simple walk should be rejected")
	}
	if _, err := MixingTime(g, 0, eps, true, 10000); err != nil {
		t.Errorf("lazy walk should mix: %v", err)
	}
}

func TestMixingTimeBudget(t *testing.T) {
	g, _ := gen.Path(200)
	if _, err := MixingTime(g, 0, eps, true, 10); err == nil {
		t.Error("tiny budget should fail with ErrNoMixing")
	}
}

func TestMixingTimeBadEps(t *testing.T) {
	g, _ := gen.Complete(8)
	for _, e := range []float64{0, 1, -0.5, 2} {
		if _, err := MixingTime(g, 0, e, false, 10); err == nil {
			t.Errorf("ε=%v accepted", e)
		}
	}
}

// TestExpanderMixesInLogTime: random regular graphs mix in O(log n) (§2.3 b).
func TestExpanderMixesInLogTime(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := gen.RandomRegular(256, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := MixingTime(g, 0, eps, true, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if tm > 12*8 { // generous c·log₂(256)
		t.Errorf("expander mixing time %d looks super-logarithmic", tm)
	}
}

// TestPathMixingQuadratic: on P_n the mixing time grows ~n² (§2.3 c).
func TestPathMixingQuadratic(t *testing.T) {
	t32, err := MixingTime(mustPath(t, 32), 0, 0.25, true, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	t64, err := MixingTime(mustPath(t, 64), 0, 0.25, true, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(t64) / float64(t32)
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("path mixing growth ratio %v, want ≈ 4 (quadratic)", ratio)
	}
}

func mustPath(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := gen.Path(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphMixingTimeIsMax(t *testing.T) {
	g, _ := gen.Lollipop(8, 6)
	worst, err := GraphMixingTime(g, 0.25, true, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	// The far end of the path should be at least as slow as the clique side.
	tClique, _ := MixingTime(g, 0, 0.25, true, 1<<16)
	tTip, _ := MixingTime(g, g.N()-1, 0.25, true, 1<<16)
	if worst < tClique || worst < tTip {
		t.Errorf("graph mixing time %d below per-source times %d, %d", worst, tClique, tTip)
	}
}

func TestRestrictedL1(t *testing.T) {
	p := []float64{0.5, 0.25, 0.25, 0}
	target := []float64{0.5, 0.5, 0, 0}
	members := []bool{true, true, false, false}
	if d := RestrictedL1(p, target, members); math.Abs(d-0.25) > 1e-15 {
		t.Errorf("restricted L1 = %v, want 0.25", d)
	}
}

func TestWalkRejectsBadSource(t *testing.T) {
	g, _ := gen.Complete(4)
	if _, err := NewWalk(g, -1, false); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := NewWalk(g, 4, false); err == nil {
		t.Error("overflow source accepted")
	}
}
