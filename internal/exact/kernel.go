package exact

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/walkkernel"
)

// This file exports kernel-reusing variants of the oracle entry points.
// A walkkernel.Kernel is immutable per graph and its results are invariant
// under the worker count it was built with, so a caller that answers many
// requests over one graph (internal/service's GraphCache) builds the
// kernel once and threads it through these variants; each returns results
// bit-identical to its kernel-building counterpart.
//
// Each variant also takes a context: the step loops check it cooperatively
// (once per walk step — the natural grain, since every step is at least one
// full edge pass), so a serving layer can enforce per-request deadlines on
// the centralized oracles. Cancellation aborts with an error wrapping
// ctx.Err(); it never changes a completed result.

// NewKernel validates the graph and builds the shared walk kernel
// (≤ 0 workers means GOMAXPROCS; the count never changes oracle results).
func NewKernel(g *graph.Graph, workers int) (*walkkernel.Kernel, error) {
	return walkKernel(g, workers)
}

// ValidateMixingParams checks the mixing-oracle parameters without
// building anything. Kernel-reusing callers (internal/service) run it
// before fetching a kernel so invalid requests fail with the same error,
// in the same order, as the kernel-building entry points — and without
// paying an O(n+m) kernel construction.
func ValidateMixingParams(g *graph.Graph, eps float64, lazy bool) error {
	if eps <= 0 || eps >= 1 {
		return fmt.Errorf("exact: MixingTime needs ε ∈ (0,1), got %g", eps)
	}
	return checkLazyChain(g, lazy)
}

// ValidateLocalParams is the local-oracle counterpart of
// ValidateMixingParams: the parameter check LocalMixing runs before its
// kernel build.
func ValidateLocalParams(g *graph.Graph, beta, eps float64, o LocalOptions) error {
	return validateLocal(g, beta, eps, o)
}

// MixingTimeKernel is MixingTime on an already-built kernel.
func MixingTimeKernel(ctx context.Context, g *graph.Graph, k *walkkernel.Kernel, source int, eps float64, lazy bool, maxT int) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("exact: MixingTime needs ε ∈ (0,1), got %g", eps)
	}
	if err := checkLazyChain(g, lazy); err != nil {
		return 0, err
	}
	w, err := newWalkOn(g, k, source, lazy)
	if err != nil {
		return 0, err
	}
	pi := Stationary(g)
	for t := 0; t <= maxT; t++ {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("exact: mixing time cancelled at step %d (source=%d): %w", t, source, err)
		}
		if L1(w.P(), pi) < eps {
			return t, nil
		}
		w.Step()
	}
	return 0, fmt.Errorf("%w (maxT=%d, source=%d)", ErrNoMixing, maxT, source)
}

// GraphMixingTimeKernel is GraphMixingTime on an already-built kernel.
func GraphMixingTimeKernel(ctx context.Context, g *graph.Graph, k *walkkernel.Kernel, eps float64, lazy bool, maxT int) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("exact: MixingTime needs ε ∈ (0,1), got %g", eps)
	}
	if g.N() == 0 {
		return 0, nil
	}
	if err := checkLazyChain(g, lazy); err != nil {
		return 0, err
	}
	return graphMixingTimeOn(ctx, g, k, eps, lazy, maxT)
}

// LocalMixingKernel is LocalMixing on an already-built kernel.
func LocalMixingKernel(ctx context.Context, g *graph.Graph, k *walkkernel.Kernel, source int, beta, eps float64, o LocalOptions) (*LocalResult, error) {
	if err := validateLocal(g, beta, eps, o); err != nil {
		return nil, err
	}
	return localMixingOn(ctx, g, k, source, beta, eps, o)
}

// GraphLocalMixingKernel is GraphLocalMixing on an already-built kernel.
func GraphLocalMixingKernel(ctx context.Context, g *graph.Graph, k *walkkernel.Kernel, beta, eps float64, o LocalOptions, sources []int) (*GraphLocalResult, error) {
	sources, workers, err := graphLocalPlan(g, o, sources)
	if err != nil {
		return nil, err
	}
	if workers > 1 {
		o.Workers = 1
	}
	if err := validateLocal(g, beta, eps, o); err != nil {
		return nil, err
	}
	return graphLocalMixingOn(ctx, g, k, beta, eps, o, sources, workers)
}
