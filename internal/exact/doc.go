// Package exact provides centralized ground-truth oracles for everything the
// distributed algorithms estimate: the random-walk probability distribution
// p_t (float64 power iteration), the stationary distribution π, the mixing
// time τ_mix_s(ε) (Definition 1), the local mixing time τ_s(β, ε)
// (Definition 2) together with a witness local-mixing set, the graph-wide
// τ(β,ε) = max_s τ_s (Definition 2 / footnote 6), and the Lemma 4
// escape-probability quantities.
//
// These oracles are used by the test suite to validate the CONGEST
// algorithms and by the benchmark harness to report paper-vs-measured
// numbers. All walk evolution runs on the shared internal/walkkernel pull
// kernel: steps are division-free, allocation-free in the steady state,
// parallel over vertex blocks, and bit-identical for every worker count —
// so every oracle output (T, R, witness sets, full distributions) is
// deterministic for any LocalOptions.Workers setting (regression-tested).
// Bipartite graphs fail fast with ErrBipartiteNonLazy unless the lazy walk
// is selected, mirroring §2.1's convergence requirement.
package exact
