package exact

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/walkkernel"
)

// GraphLocalResult reports the graph-wide local mixing time
// τ(β, ε) = max_v τ_v(β, ε) (Definition 2's final clause, the quantity
// Theorem 3's push–pull bound is stated in).
type GraphLocalResult struct {
	// Tau is max over the examined sources.
	Tau int
	// ArgMax is a source attaining it.
	ArgMax int
	// PerSource lists (source, τ_source) for every examined source,
	// ascending by source id.
	PerSource []SourceTau
}

// SourceTau pairs a source with its local mixing time.
type SourceTau struct {
	Source int
	Tau    int
}

// GraphLocalMixing computes τ(β, ε) over the given sources (all vertices
// when sources is nil — the paper notes this costs an n-factor; the sources
// parameter is its suggested sampling mitigation). Sources are processed in
// parallel by a worker pool of goroutines, one independent walk each, all
// sharing one immutable walk kernel; the per-source walks run serially
// (o.Workers is overridden to 1) since the source pool already saturates
// the CPUs.
func GraphLocalMixing(g *graph.Graph, beta, eps float64, o LocalOptions, sources []int) (*GraphLocalResult, error) {
	sources, workers, err := graphLocalPlan(g, o, sources)
	if err != nil {
		return nil, err
	}
	if workers > 1 {
		o.Workers = 1
	}
	kern, err := localKernel(g, beta, eps, o)
	if err != nil {
		return nil, err
	}
	return graphLocalMixingOn(context.Background(), g, kern, beta, eps, o, sources, workers)
}

// graphLocalPlan resolves and validates the source list and the
// source-pool width (shared with the kernel-reusing entry point).
func graphLocalPlan(g *graph.Graph, o LocalOptions, sources []int) ([]int, int, error) {
	if sources == nil {
		sources = make([]int, g.N())
		for i := range sources {
			sources[i] = i
		}
	}
	if len(sources) == 0 {
		return nil, 0, fmt.Errorf("exact: GraphLocalMixing needs at least one source")
	}
	for _, s := range sources {
		if s < 0 || s >= g.N() {
			return nil, 0, fmt.Errorf("exact: source %d out of range [0,%d)", s, g.N())
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if o.Workers > 0 {
		workers = o.Workers
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	return sources, workers, nil
}

// graphLocalMixingOn runs the source pool on an already-built kernel. The
// caller has forced o.Workers to 1 when the pool is parallel (the source
// pool already saturates the CPUs; results are worker-invariant either
// way).
func graphLocalMixingOn(ctx context.Context, g *graph.Graph, kern *walkkernel.Kernel, beta, eps float64, o LocalOptions, sources []int, workers int) (*GraphLocalResult, error) {
	type outcome struct {
		src int
		tau int
		err error
	}
	in := make(chan int)
	out := make(chan outcome, len(sources))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for s := range in {
				// Cancellation propagates into each per-source step loop;
				// the first cancelled source surfaces the context error.
				res, err := localMixingOn(ctx, g, kern, s, beta, eps, o)
				if err != nil {
					out <- outcome{src: s, err: err}
					continue
				}
				out <- outcome{src: s, tau: res.T}
			}
		}()
	}
	go func() {
		for _, s := range sources {
			in <- s
		}
		close(in)
		wg.Wait()
		close(out)
	}()
	res := &GraphLocalResult{Tau: -1}
	for oc := range out {
		if oc.err != nil {
			return nil, fmt.Errorf("exact: GraphLocalMixing source %d: %w", oc.src, oc.err)
		}
		res.PerSource = append(res.PerSource, SourceTau{Source: oc.src, Tau: oc.tau})
		if oc.tau > res.Tau {
			res.Tau = oc.tau
			res.ArgMax = oc.src
		}
	}
	sort.Slice(res.PerSource, func(i, j int) bool { return res.PerSource[i].Source < res.PerSource[j].Source })
	return res, nil
}
