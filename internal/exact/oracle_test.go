package exact

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestCandidateSizesEdgeProfile pins the documented edge cases: β ≈ 1 and
// β = 1 collapse to the single size n, β > n floors at 1, a huge grid step
// collapses the ladder to two sizes, and the last element is always n.
func TestCandidateSizesEdgeProfile(t *testing.T) {
	if s := CandidateSizes(100, 1, true, 0.25); len(s) != 1 || s[0] != 100 {
		t.Errorf("β=1 grid: %v, want [100]", s)
	}
	if s := CandidateSizes(100, 1.0000001, true, 0.25); len(s) != 1 || s[0] != 100 {
		t.Errorf("β≈1 grid should still be [n]: %v", s)
	}
	if s := CandidateSizes(100, 1, false, 0); len(s) != 1 || s[0] != 100 {
		t.Errorf("β=1 full: %v, want [100]", s)
	}
	if s := CandidateSizes(7, 1e9, false, 0); s[0] != 1 || len(s) != 7 {
		t.Errorf("β≫n full should enumerate 1..n: %v", s)
	}
	if s := CandidateSizes(7, 1e9, true, 0.5); s[0] != 1 || s[len(s)-1] != 7 {
		t.Errorf("β≫n grid must start at 1 and end at n: %v", s)
	}
	// A grid step so large the geometric ladder jumps straight past n: the
	// schedule must still include n itself (Algorithm 2's final probe).
	if s := CandidateSizes(1000, 10, true, 1e6); len(s) != 2 || s[0] != 100 || s[1] != 1000 {
		t.Errorf("huge step should collapse to [n/β, n]: %v", s)
	}
	for _, n := range []int{1, 2, 17, 1000} {
		for _, beta := range []float64{1, 1.5, 4, 1e12} {
			for _, step := range []float64{0.01, 0.3, 7} {
				for _, grid := range []bool{false, true} {
					s := CandidateSizes(n, beta, grid, step)
					if len(s) == 0 || s[len(s)-1] != n {
						t.Fatalf("n=%d β=%g step=%g grid=%v: last size of %v is not n", n, beta, step, grid, s)
					}
					for i := 1; i < len(s); i++ {
						if s[i] <= s[i-1] {
							t.Fatalf("n=%d β=%g step=%g grid=%v: not increasing: %v", n, beta, step, grid, s)
						}
					}
				}
			}
		}
	}
}

// TestOracleWorkerDeterminism: the complete oracle outputs — T, R, Dist and
// the witness Set of LocalMixing (grid and non-grid, the latter exercising
// the parallel candidate-size scan), GraphMixingTime, and the full walk
// distribution — are identical for Workers ∈ {1, 2, GOMAXPROCS}. This is
// the acceptance contract of the parallel kernel.
func TestOracleWorkerDeterminism(t *testing.T) {
	torus, err := gen.Torus(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	roc, err := gen.RingOfCliques(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}

	runLocal := func(w int, grid bool) LocalResult {
		t.Helper()
		g, beta := torus, 8.0
		if !grid {
			g, beta = roc, 6.0
		}
		res, err := LocalMixing(g, 3, beta, 0.2, LocalOptions{MaxT: 1 << 14, Grid: grid, Lazy: true, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d grid=%v: %v", w, grid, err)
		}
		return *res
	}
	for _, grid := range []bool{true, false} {
		ref := runLocal(counts[0], grid)
		for _, w := range counts[1:] {
			if got := runLocal(w, grid); !reflect.DeepEqual(got, ref) {
				t.Errorf("LocalMixing grid=%v workers=%d: %+v != %+v", grid, w, got, ref)
			}
		}
	}

	refGM, err := GraphMixingTimeWorkers(torus, 0.4, true, 1<<14, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range counts[1:] {
		gm, err := GraphMixingTimeWorkers(torus, 0.4, true, 1<<14, w)
		if err != nil {
			t.Fatal(err)
		}
		if gm != refGM {
			t.Errorf("GraphMixingTime workers=%d: %d != %d", w, gm, refGM)
		}
	}

	refWalk, err := NewWalkWorkers(torus, 7, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	refWalk.StepN(200)
	for _, w := range counts[1:] {
		wk, err := NewWalkWorkers(torus, 7, true, w)
		if err != nil {
			t.Fatal(err)
		}
		wk.StepN(200)
		for v, pv := range wk.P() {
			if pv != refWalk.P()[v] {
				t.Fatalf("walk workers=%d: p[%d] = %x, want %x", w, v, pv, refWalk.P()[v])
			}
		}
	}
}

// TestGraphMixingTimeMatchesPerSource cross-validates the batched sweep
// against a loop of single-source MixingTime calls on irregular graphs.
func TestGraphMixingTimeMatchesPerSource(t *testing.T) {
	lolli, err := gen.Lollipop(8, 6)
	if err != nil {
		t.Fatal(err)
	}
	dumb, err := gen.Dumbbell(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.Graph{lolli, dumb} {
		batched, err := GraphMixingTime(g, 0.25, true, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0
		for s := 0; s < g.N(); s++ {
			ts, err := MixingTime(g, s, 0.25, true, 1<<16)
			if err != nil {
				t.Fatal(err)
			}
			if ts > worst {
				worst = ts
			}
		}
		if batched != worst {
			t.Errorf("%s: batched τ_mix = %d, per-source max = %d", g.Name(), batched, worst)
		}
	}
}
