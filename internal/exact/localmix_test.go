package exact

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

func TestCandidateSizesFull(t *testing.T) {
	sizes := CandidateSizes(10, 2.5, false, 0)
	if sizes[0] != 4 || sizes[len(sizes)-1] != 10 || len(sizes) != 7 {
		t.Errorf("full sizes %v", sizes)
	}
}

func TestCandidateSizesGrid(t *testing.T) {
	sizes := CandidateSizes(1000, 10, true, 0.5)
	if sizes[0] != 100 {
		t.Errorf("grid starts at %d, want 100", sizes[0])
	}
	if sizes[len(sizes)-1] != 1000 {
		t.Errorf("grid ends at %d, want n", sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Errorf("grid not increasing: %v", sizes)
		}
	}
	// Ratio between consecutive interior sizes ≈ 1.5.
	for i := 1; i+1 < len(sizes); i++ {
		r := float64(sizes[i]) / float64(sizes[i-1])
		if r > 1.51+1e-9 {
			t.Errorf("grid ratio %v too large at %d", r, i)
		}
	}
}

func TestCandidateSizesEdgeCases(t *testing.T) {
	if s := CandidateSizes(5, 1, true, 0.1); len(s) != 1 || s[0] != 5 {
		t.Errorf("β=1 grid %v, want [n]", s)
	}
	if s := CandidateSizes(5, 100, false, 0); s[0] != 1 {
		t.Errorf("huge β should floor at 1, got %v", s)
	}
}

// TestBestSetDistAgainstBruteForce: the sliding-window optimum equals the
// brute-force "R smallest |p − 1/R|" sum.
func TestBestSetDistAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		p := make([]float64, n)
		sum := 0.0
		for i := range p {
			p[i] = rng.Float64()
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		s := newWindowScratch(n, 1)
		s.load(p)
		for _, r := range []int{1, n / 3, n / 2, n} {
			if r < 1 {
				continue
			}
			got, set := bestSetDist(p, 0, r, false, s, true)
			// Brute force.
			tau := 1 / float64(r)
			d := make([]float64, n)
			for i := range p {
				d[i] = math.Abs(p[i] - tau)
			}
			sort.Float64s(d)
			want := 0.0
			for i := 0; i < r; i++ {
				want += d[i]
			}
			if math.Abs(got-want) > 1e-12 {
				return false
			}
			if len(set) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBestSetDistWithSource: forcing the source costs at least as much as
// the unconstrained optimum and includes the source.
func TestBestSetDistWithSource(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		src := rng.Intn(n)
		p := make([]float64, n)
		sum := 0.0
		for i := range p {
			p[i] = rng.Float64()
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		s := newWindowScratch(n, 1)
		s.load(p)
		r := 2 + rng.Intn(n-2)
		free, _ := bestSetDist(p, src, r, false, s, false)
		forced, set := bestSetDist(p, src, r, true, s, true)
		if forced+1e-15 < free {
			return false
		}
		found := false
		for _, v := range set {
			if v == src {
				found = true
			}
		}
		return found && len(set) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBarbellLocalMixingConstant reproduces §2.3(d): on the β-barbell the
// local mixing time is O(1) — the walk mixes inside the source clique —
// while the global mixing time is large.
func TestBarbellLocalMixingConstant(t *testing.T) {
	g, err := gen.Barbell(8, 16) // n = 128, β = 8
	if err != nil {
		t.Fatal(err)
	}
	res, err := LocalMixing(g, 0, 8, eps, LocalOptions{MaxT: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.T > 10 {
		t.Errorf("barbell local mixing time %d, want O(1)", res.T)
	}
	if res.R < 16 {
		t.Errorf("witness size %d below n/β = 16", res.R)
	}
	// The witness set should be (essentially) the source clique.
	inClique := 0
	for _, v := range res.Set {
		if v < 16 {
			inClique++
		}
	}
	if inClique < res.R*3/4 {
		t.Errorf("witness set has only %d/%d vertices in the source clique", inClique, res.R)
	}
	gm, err := MixingTime(g, 0, eps, false, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if gm < 10*res.T {
		t.Errorf("expected large gap: local %d vs global %d", res.T, gm)
	}
}

// TestCompleteLocalEqualsGlobal: on K_n both quantities are 1 (§2.3 a).
func TestCompleteLocalEqualsGlobal(t *testing.T) {
	g, _ := gen.Complete(64)
	res, err := LocalMixing(g, 0, 4, eps, LocalOptions{MaxT: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 1 {
		t.Errorf("K64 local mixing time %d, want 1", res.T)
	}
}

// TestLocalMixingMonotoneInBeta: τ_s(β₁) ≤ τ_s(β₂) for β₁ ≥ β₂ (§2.3).
func TestLocalMixingMonotoneInBeta(t *testing.T) {
	g, err := gen.Path(96)
	if err != nil {
		t.Fatal(err)
	}
	opts := LocalOptions{MaxT: 1 << 16, Lazy: true}
	prev := math.MaxInt
	for _, beta := range []float64{2, 4, 8, 16} {
		res, err := LocalMixing(g, 0, beta, 0.25, opts)
		if err != nil {
			t.Fatalf("β=%v: %v", beta, err)
		}
		if res.T > prev {
			t.Errorf("τ(β=%v) = %d exceeds τ at smaller β (%d)", beta, res.T, prev)
		}
		prev = res.T
	}
}

// TestLocalMixingBetaOneIsMixing: τ_s(1, ε) = τ_mix_s(ε) by definition.
func TestLocalMixingBetaOneIsMixing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := gen.RandomRegular(40, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LocalMixing(g, 0, 1, eps, LocalOptions{MaxT: 1 << 14, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := MixingTime(g, 0, eps, true, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	// With β=1 the only admissible size is n, and on a regular graph the
	// 1/n target is exactly π, so the two definitions coincide.
	if res.T != tm {
		t.Errorf("τ_s(1) = %d but τ_mix = %d", res.T, tm)
	}
}

func TestLocalMixingValidation(t *testing.T) {
	g, _ := gen.Complete(8)
	if _, err := LocalMixing(g, 0, 0.5, eps, LocalOptions{MaxT: 10}); err == nil {
		t.Error("β < 1 accepted")
	}
	if _, err := LocalMixing(g, 0, 2, 0, LocalOptions{MaxT: 10}); err == nil {
		t.Error("ε = 0 accepted")
	}
	if _, err := LocalMixing(g, 0, 2, eps, LocalOptions{}); err == nil {
		t.Error("MaxT = 0 accepted")
	}
}

// TestRestrictedDistanceNonMonotone: the paper stresses that, unlike
// Lemma 1's global distance, the restricted distance ‖p_{t,S} − π_S‖₁ for a
// *fixed* set S is not monotone in t — this is why binary search over ℓ
// fails and Algorithm 2 must double. Witness: the source clique of a
// barbell. The distance dips below ε when the walk saturates the clique,
// then rises permanently as mass leaks over the bridge.
func TestRestrictedDistanceNonMonotone(t *testing.T) {
	g, err := gen.Barbell(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LocalMixing(g, 0, 4, eps, LocalOptions{MaxT: 300})
	if err != nil {
		t.Fatal(err)
	}
	members := g.Members(res.Set)
	target := UniformOn(g.N(), members)
	w, _ := NewWalk(g, 0, false)
	w.StepN(res.T)
	early := RestrictedL1(w.P(), target, members)
	w.StepN(4000) // long after global mixing
	late := RestrictedL1(w.P(), target, members)
	if early >= eps {
		t.Fatalf("distance at τ = %v, want < ε", early)
	}
	if late <= early {
		t.Errorf("restricted distance should rise after mass escapes: early %v, late %v", early, late)
	}
	if late < 2*eps {
		t.Errorf("late distance %v unexpectedly small — no escape observed", late)
	}
}

func TestLocalMixingProfileComputes(t *testing.T) {
	g, err := gen.Barbell(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := LocalMixingProfile(g, 0, 4, eps, LocalOptions{MaxT: 60, Grid: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 61 {
		t.Fatalf("profile length %d", len(prof))
	}
	if prof[0] < 1 {
		t.Errorf("profile at t=0 should be near 2(1−1/R), got %v", prof[0])
	}
	min := prof[0]
	for _, v := range prof {
		if v < min {
			min = v
		}
	}
	if min >= eps {
		t.Errorf("profile never dips below ε: min %v", min)
	}
}

func TestLemma4OnBarbell(t *testing.T) {
	g, err := gen.Barbell(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Lemma4Measure(g, 0, 8, eps, LocalOptions{MaxT: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DistAtL >= eps {
		t.Errorf("distance at ℓ = %v, should be < ε", rep.DistAtL)
	}
	if rep.DistAt2L > rep.Bound+1e-9 {
		t.Errorf("Lemma 4 violated: dist at 2ℓ = %v > bound %v", rep.DistAt2L, rep.Bound)
	}
	if rep.Phi <= 0 || rep.Phi >= 1 {
		t.Errorf("witness conductance %v out of range", rep.Phi)
	}
}
