package exact

import (
	"testing"

	"repro/internal/gen"
)

func TestGraphLocalMixingBarbell(t *testing.T) {
	g, err := gen.Barbell(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GraphLocalMixing(g, 4, eps, LocalOptions{MaxT: 1 << 18, Grid: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSource) != g.N() {
		t.Fatalf("per-source results: %d, want %d", len(res.PerSource), g.N())
	}
	if res.Tau > 10 {
		t.Errorf("graph-wide τ = %d, want O(1) on the barbell", res.Tau)
	}
	// The max must actually be the max of the per-source values.
	maxSeen := 0
	for _, st := range res.PerSource {
		if st.Tau > maxSeen {
			maxSeen = st.Tau
		}
	}
	if maxSeen != res.Tau {
		t.Errorf("Tau=%d but per-source max is %d", res.Tau, maxSeen)
	}
}

// TestGraphLocalMixingMatchesSequential: the parallel worker pool must give
// the same per-source values as direct sequential calls.
func TestGraphLocalMixingMatchesSequential(t *testing.T) {
	g, err := gen.RingOfCliques(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	opts := LocalOptions{MaxT: 1 << 18, Grid: true}
	res, err := GraphLocalMixing(g, 3, eps, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.PerSource {
		single, err := LocalMixing(g, st.Source, 3, eps, opts)
		if err != nil {
			t.Fatal(err)
		}
		if single.T != st.Tau {
			t.Errorf("source %d: parallel %d vs sequential %d", st.Source, st.Tau, single.T)
		}
	}
}

func TestGraphLocalMixingSampledSources(t *testing.T) {
	g, err := gen.Barbell(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GraphLocalMixing(g, 4, eps, LocalOptions{MaxT: 1 << 18, Grid: true}, []int{0, 9, 39})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSource) != 3 {
		t.Fatalf("sampled run returned %d sources", len(res.PerSource))
	}
	if res.PerSource[0].Source != 0 || res.PerSource[2].Source != 39 {
		t.Errorf("sources not sorted: %+v", res.PerSource)
	}
}

func TestGraphLocalMixingValidation(t *testing.T) {
	g, _ := gen.Complete(8)
	if _, err := GraphLocalMixing(g, 2, eps, LocalOptions{MaxT: 10}, []int{}); err == nil {
		t.Error("empty source list accepted")
	}
	if _, err := GraphLocalMixing(g, 2, eps, LocalOptions{MaxT: 10}, []int{99}); err == nil {
		t.Error("out-of-range source accepted")
	}
}
