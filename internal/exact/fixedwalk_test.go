package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixedpoint"
	"repro/internal/gen"
)

// TestFixedWalkConservesMass: the defining invariant of the fixed-point
// flooding — total mass is exactly One forever, both chains.
func TestFixedWalkConservesMass(t *testing.T) {
	g, err := gen.Barbell(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	scale := fixedpoint.MustScaleFor(g.N(), 6)
	for _, lazy := range []bool{false, true} {
		fw, err := NewFixedWalk(g, 3, scale, lazy)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if m := fw.TotalMass(); m != scale.One {
				t.Fatalf("lazy=%v t=%d: mass %d ≠ %d", lazy, i, m, scale.One)
			}
			fw.Step()
		}
	}
}

// TestLemma2ErrorBound: the fixed-point estimate tracks the float64 walk
// within t·d_max·ulp per coordinate (the power-of-two analogue of Lemma 2).
func TestLemma2ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := gen.RandomRegular(60, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	scale := fixedpoint.MustScaleFor(g.N(), 6)
	fw, _ := NewFixedWalk(g, 0, scale, false)
	w, _ := NewWalk(g, 0, false)
	for step := 1; step <= 120; step++ {
		fw.Step()
		w.Step()
		bound := float64(step) * float64(g.MaxDegree()) * scale.Ulp()
		for u, wantP := range w.P() {
			got := scale.Float(fw.W()[u])
			if diff := absf(got - wantP); diff > bound {
				t.Fatalf("t=%d node %d: |p̃−p| = %g > bound %g", step, u, diff, bound)
			}
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestSumRSmallest(t *testing.T) {
	xs := []int64{5, 1, 4, 1, 9}
	if s := SumRSmallest(xs, 3); s != 6 {
		t.Errorf("sum of 3 smallest = %d, want 6", s)
	}
	if s := SumRSmallest(xs, 0); s != 0 {
		t.Errorf("r=0 sum = %d", s)
	}
	if s := SumRSmallest(xs, 5); s != 20 {
		t.Errorf("r=n sum = %d", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("r>n should panic")
		}
	}()
	SumRSmallest(xs, 6)
}

// TestSumRSmallestAgainstThresholdFormula mirrors the driver's threshold
// arithmetic: sum of R smallest = sum(x ≤ T) − (count(x ≤ T) − R)·T where T
// is the R-th smallest. Property-checked on random multisets (including
// ties, which the formula must handle exactly).
func TestSumRSmallestAgainstThresholdFormula(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(10)) // small range forces ties
		}
		r := 1 + rng.Intn(n)
		want := SumRSmallest(xs, r)
		// Find T = r-th smallest via the count function, as the driver does.
		lo, hi := int64(0), int64(9)
		count := func(mid int64) (c, s int64) {
			for _, x := range xs {
				if x <= mid {
					c++
					s += x
				}
			}
			return
		}
		for lo < hi {
			mid := lo + (hi-lo)/2
			c, _ := count(mid)
			if c >= int64(r) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		cT, sT := count(lo)
		got := sT - (cT-int64(r))*lo
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestFixedLocalCheckMatchesFloatOracle(t *testing.T) {
	// On a well-mixed barbell clique the fixed-point check and the float
	// oracle agree about passing.
	g, err := gen.Barbell(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	scale := fixedpoint.MustScaleFor(g.N(), 6)
	res, err := FixedLocalMixing(g, 0, scale, 6, eps, false, Units(500))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau > 12 {
		t.Errorf("fixed local mixing on barbell = %d, want small", res.Tau)
	}
	// Float oracle with the algorithm's semantics (grid, 4ε) as reference.
	fres, err := LocalMixing(g, 0, 6, eps, LocalOptions{MaxT: 500, Grid: true, ThresholdMult: 4})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Tau - fres.T; diff < -1 || diff > 1 {
		t.Errorf("fixed τ=%d vs float τ=%d differ by more than rounding slack", res.Tau, fres.T)
	}
}

func TestDoublingsAndUnits(t *testing.T) {
	d := Doublings(10)
	want := []int{1, 2, 4, 8, 16}
	if len(d) != len(want) {
		t.Fatalf("doublings %v", d)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("doublings %v", d)
		}
	}
	u := Units(4)
	if len(u) != 4 || u[0] != 1 || u[3] != 4 {
		t.Errorf("units %v", u)
	}
}

func TestFixedLocalMixingRejectsDescendingLengths(t *testing.T) {
	// A path is slow to mix, so the check fails at ℓ=2 and the descending
	// ℓ=1 must be detected rather than silently skipped.
	g, _ := gen.Path(32)
	scale := fixedpoint.MustScaleFor(32, 6)
	if _, err := FixedLocalMixing(g, 0, scale, 1, eps, true, []int{2, 1}); err == nil {
		t.Error("descending lengths accepted")
	}
}

func TestFixedMixingCheck(t *testing.T) {
	g, _ := gen.Complete(16)
	scale := fixedpoint.MustScaleFor(16, 6)
	fw, _ := NewFixedWalk(g, 0, scale, false)
	threshold := scale.FromFloat(eps)
	if _, ok := FixedMixingCheck(g, fw.W(), scale, threshold); ok {
		t.Error("point mass should not pass the mixing check")
	}
	fw.StepN(3)
	if sum, ok := FixedMixingCheck(g, fw.W(), scale, threshold); !ok {
		t.Errorf("K16 not mixed after 3 steps (sum %d)", sum)
	}
}
