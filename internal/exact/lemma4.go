package exact

import (
	"context"
	"fmt"

	"repro/internal/graph"
)

// Lemma4Report quantifies the Lemma 4 argument on a concrete graph: if the
// walk locally mixes in S at time ℓ, the probability mass escaping S over
// the next ℓ steps is at most ℓ·φ(S), so the restricted distance at 2ℓ is at
// most ℓ·φ(S) + ε.
type Lemma4Report struct {
	L           int     // ℓ = τ_s(β, ε)
	R           int     // witness set size
	Phi         float64 // φ(S) of the witness set
	DistAtL     float64 // ‖p_{ℓ,S} − 1/|S|‖₁ (< ε by construction)
	DistAt2L    float64 // ‖p_{2ℓ,S} − 1/|S|‖₁ (measured)
	EscapedMass float64 // mass(S, ℓ) − mass(S, 2ℓ), clamped at 0
	Bound       float64 // ℓ·φ(S) + ε, the Lemma 4 guarantee on DistAt2L
}

// MassOn returns Σ_{v∈S} p(v).
func MassOn(p []float64, members []bool) float64 {
	s := 0.0
	for v, in := range members {
		if in {
			s += p[v]
		}
	}
	return s
}

// UniformOn returns the vector that is 1/|S| on S and 0 elsewhere (the
// restricted stationary distribution of a regular graph).
func UniformOn(n int, members []bool) []float64 {
	cnt := 0
	for _, in := range members {
		if in {
			cnt++
		}
	}
	u := make([]float64, n)
	if cnt == 0 {
		return u
	}
	for v, in := range members {
		if in {
			u[v] = 1 / float64(cnt)
		}
	}
	return u
}

// Lemma4Measure finds the local mixing time and witness set, then advances
// the walk to 2ℓ and reports the measured escape against the ℓ·φ(S) + ε
// bound. The bound holds under the paper's assumption τ_s·φ(S) = o(1).
// The local-mixing search and the replay walk share one kernel.
func Lemma4Measure(g *graph.Graph, source int, beta, eps float64, o LocalOptions) (*Lemma4Report, error) {
	k, err := localKernel(g, beta, eps, o)
	if err != nil {
		return nil, err
	}
	res, err := localMixingOn(context.Background(), g, k, source, beta, eps, o)
	if err != nil {
		return nil, err
	}
	members := g.Members(res.Set)
	phi, err := g.Conductance(members)
	if err != nil {
		return nil, fmt.Errorf("exact: Lemma4Measure conductance: %w", err)
	}
	w, err := newWalkOn(g, k, source, o.Lazy)
	if err != nil {
		return nil, err
	}
	w.StepN(res.T)
	target := UniformOn(g.N(), members)
	distL := RestrictedL1(w.P(), target, members)
	massL := MassOn(w.P(), members)
	w.StepN(res.T)
	dist2L := RestrictedL1(w.P(), target, members)
	mass2L := MassOn(w.P(), members)
	escaped := massL - mass2L
	if escaped < 0 {
		escaped = 0
	}
	return &Lemma4Report{
		L:           res.T,
		R:           res.R,
		Phi:         phi,
		DistAtL:     distL,
		DistAt2L:    dist2L,
		EscapedMass: escaped,
		Bound:       float64(res.T)*phi + eps,
	}, nil
}
