package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
)

// probe is a tiny CONGEST protocol that is sensitive to both the engine
// seed and the message schedule: every node broadcasts one RNG draw, the
// source folds its inbox (canonical order) into an accumulator, everyone
// halts after one step.
type probe struct {
	id, source int
	val        int64
}

func (p *probe) Init(ctx *congest.Context) {
	v := ctx.Rand().Int63n(1 << 20)
	if p.id == p.source {
		p.val = v
	}
	ctx.Broadcast(congest.Message{Kind: 1, Value: v, Bits: 32})
}

func (p *probe) Step(ctx *congest.Context) {
	if p.id == p.source {
		for _, m := range ctx.Inbox() {
			p.val = p.val*1000003 + m.Value
		}
	}
	ctx.Halt()
}

// probeResult is the per-source outcome used by the scheduler tests.
type probeResult struct {
	Source int
	Seed   int64
	Val    int64
	Rounds int
	Msgs   int64
}

func probeRunner(net *congest.Network) (Runner[probeResult], error) {
	g := net.Graph()
	procs := make([]probe, g.N()) // per-worker scratch, reused across sources
	return func(net *congest.Network, source int, seed int64) (probeResult, error) {
		var src *probe
		stats, err := net.Run(func(id int) congest.Process {
			pr := &procs[id]
			*pr = probe{id: id, source: source}
			if id == source {
				src = pr
			}
			return pr
		})
		if err != nil {
			return probeResult{}, err
		}
		return probeResult{Source: source, Seed: seed, Val: src.val, Rounds: stats.Rounds, Msgs: stats.Messages}, nil
	}, nil
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDeriveSeedDistinctAndReproducible(t *testing.T) {
	const base = 12345
	seen := map[int64]int{}
	for s := 0; s < 10_000; s++ {
		seed := DeriveSeed(base, s)
		if prev, dup := seen[seed]; dup {
			t.Fatalf("seed collision: sources %d and %d both derive %d", prev, s, seed)
		}
		seen[seed] = s
		if seed != DeriveSeed(base, s) {
			t.Fatalf("DeriveSeed not deterministic at source %d", s)
		}
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("distinct base seeds derive identical per-source seeds")
	}
	if DeriveSeed(base, 0) == base {
		t.Error("source 0 passes the base seed through unmixed")
	}
}

// TestSweepDeterministicAcrossWorkers is the core scheduler invariant:
// identical Outcome (sources, per-source values, stats) for every pool size.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	g := testGraph(t)
	eng := congest.Config{Seed: 99}
	ref, err := Run(g, eng, Options{Workers: 1}, probeRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Sources) != g.N() || len(ref.Results) != g.N() {
		t.Fatalf("all-sources sweep covered %d/%d sources", len(ref.Sources), g.N())
	}
	for i, r := range ref.Results {
		if r.Source != ref.Sources[i] {
			t.Fatalf("result %d is for source %d, slot says %d", i, r.Source, ref.Sources[i])
		}
		if r.Seed != DeriveSeed(99, r.Source) {
			t.Fatalf("source %d ran with seed %d, want derived %d", r.Source, r.Seed, DeriveSeed(99, r.Source))
		}
	}
	for _, w := range []int{2, 3, runtime.GOMAXPROCS(0)} {
		got, err := Run(g, eng, Options{Workers: w}, probeRunner)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: outcome diverged from workers=1", w)
		}
	}
}

// TestPoolBackToBackSweeps reuses one pool (warm networks) for consecutive
// sweeps and demands identical outcomes — the network-reuse correctness
// test at the scheduler level.
func TestPoolBackToBackSweeps(t *testing.T) {
	g := testGraph(t)
	pool := NewPool(g, congest.Config{Seed: 7}, 3, probeRunner)
	first, err := pool.Sweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := pool.Sweep(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("back-to-back sweeps on one pool diverged")
	}
	// A sub-sweep on the warm pool must agree with the full sweep's slots.
	sub, err := pool.Sweep(Options{Sources: []int{3, 1, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.Sources; !reflect.DeepEqual(got, []int{3, 1, 20}) {
		t.Fatalf("explicit source order not preserved: %v", got)
	}
	for i, s := range sub.Sources {
		if sub.Results[i] != first.Results[s] {
			t.Errorf("warm sub-sweep result for source %d diverged from full sweep", s)
		}
	}
}

func TestSeedsUncorrelatedAcrossSources(t *testing.T) {
	g := testGraph(t)
	out, err := Run(g, congest.Config{Seed: 5}, Options{}, probeRunner)
	if err != nil {
		t.Fatal(err)
	}
	// With per-source derived seeds, the source-local RNG draw folded into
	// Val must differ across sources (the old correlated-seed bug made node
	// u's draw identical in every per-source run).
	vals := map[int64]bool{}
	for _, r := range out.Results {
		vals[r.Val] = true
	}
	if len(vals) < len(out.Results)/2 {
		t.Errorf("per-source values collapse to %d distinct of %d — seeds correlated?", len(vals), len(out.Results))
	}
}

func TestSampleSources(t *testing.T) {
	g := testGraph(t)
	o := Options{Sample: 10}
	a, err := Run(g, congest.Config{Seed: 42}, o, probeRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sources) != 10 {
		t.Fatalf("sampled %d sources, want 10", len(a.Sources))
	}
	if !sort.IntsAreSorted(a.Sources) {
		t.Errorf("sample not canonical (ascending): %v", a.Sources)
	}
	seen := map[int]bool{}
	for _, s := range a.Sources {
		if s < 0 || s >= g.N() {
			t.Fatalf("sampled source %d out of range", s)
		}
		if seen[s] {
			t.Fatalf("duplicate sampled source %d", s)
		}
		seen[s] = true
	}
	b, err := Run(g, congest.Config{Seed: 42}, o, probeRunner)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("sampled sweep with a fixed base seed is not reproducible")
	}
	c, err := Run(g, congest.Config{Seed: 43}, o, probeRunner)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Sources, c.Sources) {
		t.Log("note: seeds 42 and 43 drew the same sample (possible, unlikely)")
	}
	// Sample ≥ n degenerates to the full sweep.
	full, err := Run(g, congest.Config{Seed: 42}, Options{Sample: g.N() + 5}, probeRunner)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Sources) != g.N() {
		t.Errorf("oversized sample examined %d sources, want all %d", len(full.Sources), g.N())
	}
}

func TestOptionValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := Run(g, congest.Config{}, Options{Sources: []int{}}, probeRunner); err == nil {
		t.Error("empty source list accepted")
	}
	if _, err := Run(g, congest.Config{}, Options{Sources: []int{g.N()}}, probeRunner); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := Run(g, congest.Config{}, Options{Sources: []int{0}, Sample: 3}, probeRunner); err == nil {
		t.Error("Sample with explicit Sources accepted")
	}
}

func TestSweepErrorNamesSource(t *testing.T) {
	g := testGraph(t)
	boom := errors.New("boom")
	newRunner := func(net *congest.Network) (Runner[int], error) {
		return func(net *congest.Network, source int, seed int64) (int, error) {
			if source == 11 {
				return 0, boom
			}
			return source, nil
		}, nil
	}
	_, err := Run(g, congest.Config{}, Options{Workers: 4}, newRunner)
	if err == nil {
		t.Fatal("failing source did not fail the sweep")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error chain lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "source 11") {
		t.Errorf("error does not name the failing source: %v", err)
	}
	if !strings.Contains(fmt.Sprint(err), "sweep:") {
		t.Errorf("error not package-prefixed: %v", err)
	}
}
