// Package sweep is the parallel multi-source sweep engine for the
// distributed algorithms: it runs one per-source CONGEST computation for
// many sources concurrently on a pool of workers, where each worker owns a
// single reusable congest.Network (plus whatever per-worker scratch the
// runner factory captures). The paper's headline quantity is graph-wide —
// τ(β,ε) = max_v τ_v(β,ε) (Definition 2) — so every experiment sweeps
// sources; before this package the sweep rebuilt the network (edge-slot
// hash, context/RNG slabs, inbox arena) from scratch for each of the n
// sources and ran them serially.
//
// # Determinism
//
// Sweep results are identical for every worker count:
//
//   - Sources are dispatched in fixed-size chunks of the canonical source
//     list; which worker claims which chunk is scheduling, but results are
//     written to the slot of their source index, so the merged output order
//     never depends on the schedule.
//   - Each per-source run executes on a freshly reset network seeded with a
//     seed derived from (base seed, source id) alone — never from worker
//     identity or claim order.
//   - Network reuse is exact: congest.Network.Run rewinds all run state in
//     place — including the dynamic-topology overlay, so churned sweeps
//     replay the same schedule per source — and a warm network reproduces a
//     cold network's results bit for bit (enforced by the congest reuse
//     tests).
//
// # Seed derivation
//
// Per-source engine seeds are derived with a splitmix64 step:
//
//	seed(source) = mix64(base + (source+1)·0x9E3779B97F4A7C15)
//
// where mix64 is the splitmix64 output finalizer. This is exactly the
// splitmix64 stream seeded at the base seed, advanced source+1 increments of
// the golden-ratio gamma: distinct sources land on distinct, statistically
// independent streams, and a fixed base seed reproduces the whole sweep.
// The same DeriveSeed scheme seeds the per-round churn streams of
// internal/dyngraph, so all derived randomness in the repository follows
// one auditable rule. The previous implementation reused the base seed
// verbatim for every source, so all per-source RNG streams were correlated
// — a sweep with randomized tie-breaking (Config.TieBreakBits > 0) made the
// same perturbation decisions at every source.
package sweep
