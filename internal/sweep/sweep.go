package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/congest"
	"repro/internal/graph"
)

// ChunkSize is the dispatch grain: workers claim this many consecutive
// sources of the canonical list at a time. Fixed (never derived from the
// worker count) so the chunk grid is part of the sweep's deterministic
// contract; small enough to balance heavy-tailed per-source costs. The
// cluster coordinator partitions distributed sweeps on the same grid.
const ChunkSize = 8

const chunkSize = ChunkSize

// Options selects the sources and the parallelism of a sweep.
type Options struct {
	// Workers is the worker-pool size: how many per-source runs execute
	// concurrently, each on its own reusable network. ≤ 0 means GOMAXPROCS.
	// The worker count never changes results.
	Workers int
	// Sources lists the sources to examine, in the order results are
	// reported. Nil means every vertex (ascending); empty is an error.
	Sources []int
	// Sample, when > 0 with Sources nil, examines a deterministic random
	// sample of this many distinct vertices instead of all n — the paper's
	// footnote 6 mitigation of the n-factor sweep cost. The sample is drawn
	// from the sweep's base seed, so a fixed seed reproduces it. Values ≥ n
	// clamp to the full all-vertices sweep; ≤ 0 means unset (also all
	// vertices).
	Sample int
	// Ctx, when non-nil, is checked cooperatively between per-source runs:
	// a cancelled context (a service deadline) aborts the sweep with an
	// error wrapping ctx.Err(). It is schedule-only — it can cut a sweep
	// short but never changes a completed sweep's results.
	Ctx context.Context
}

// mix64 is the splitmix64 output finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// DeriveSeed returns the engine seed of the per-source run: the splitmix64
// stream seeded at base, advanced source+1 gamma increments (see the
// package documentation). Distinct sources yield uncorrelated streams; a
// fixed base seed makes the whole sweep reproducible.
func DeriveSeed(base int64, source int) int64 {
	return int64(mix64(uint64(base) + (uint64(source)+1)*0x9E3779B97F4A7C15))
}

// Stream is a splitmix64 generator: successive Next calls advance the state
// by the golden-ratio gamma and finalize with mix64 — the same scheme
// DeriveSeed is one step of. It is exported so every derived-randomness
// consumer in the repository (per-source seeds here, per-round churn in
// internal/dyngraph) shares one implementation of the constants and
// finalizer. (internal/congest keeps its own private copy: it cannot import
// this package without a cycle.)
type Stream struct{ x uint64 }

// NewStream returns a stream seeded with the given state, typically a
// DeriveSeed output.
func NewStream(seed int64) *Stream { return &Stream{x: uint64(seed)} }

// Next returns the next 64 uniform bits.
func (s *Stream) Next() uint64 {
	s.x += 0x9E3779B97F4A7C15
	return mix64(s.x)
}

// Float returns a uniform draw in [0, 1) with 53 random bits.
func (s *Stream) Float() float64 { return float64(s.Next()>>11) / (1 << 53) }

// ResolveSources materializes the canonical source list of a sweep over an
// n-vertex graph: the explicit sources verbatim, a deterministic Sample-sized
// draw from baseSeed, or every vertex ascending. It is exactly the
// resolution Pool.Sweep performs, exported so the cluster coordinator can
// partition a distributed sweep on the same canonical list.
func ResolveSources(n int, baseSeed int64, sources []int, sample int) ([]int, error) {
	return Options{Sources: sources, Sample: sample}.resolve(n, baseSeed)
}

// resolve materializes the canonical source list for an n-vertex graph.
func (o Options) resolve(n int, baseSeed int64) ([]int, error) {
	if o.Sources != nil {
		if len(o.Sources) == 0 {
			return nil, fmt.Errorf("sweep: need at least one source")
		}
		if o.Sample > 0 {
			return nil, fmt.Errorf("sweep: Sample and explicit Sources are mutually exclusive")
		}
		for _, s := range o.Sources {
			if s < 0 || s >= n {
				return nil, fmt.Errorf("sweep: source %d out of range [0,%d)", s, n)
			}
		}
		// Private copy: the outcome's Sources must stay paired with its
		// Results even if the caller mutates or reuses the option slice.
		return append([]int(nil), o.Sources...), nil
	}
	if o.Sample > 0 && o.Sample < n {
		return sampleSources(n, o.Sample, baseSeed), nil
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all, nil
}

// sampleSources draws k distinct vertices from [0,n) with a partial
// Fisher–Yates shuffle over a splitmix64 stream derived from the base seed,
// then sorts ascending — a deterministic, canonical footnote-6 sample.
func sampleSources(n, k int, baseSeed int64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// A dedicated stream (tagged so it never collides with a per-source
	// seed): mix the base with a constant before stepping.
	s := NewStream(int64(mix64(uint64(baseSeed) ^ 0xA5A5A5A55A5A5A5A)))
	for i := 0; i < k; i++ {
		j := i + int(s.Next()%uint64(n-i))
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := perm[:k]
	sort.Ints(out)
	return out
}

// Runner executes the per-source computation for one source on the worker's
// network. The network has already been reset and seeded with the derived
// per-source seed (also passed for record-keeping); the runner just calls
// net.Run with its processes. Runners are invoked from one goroutine at a
// time per worker but concurrently across workers, so any state they share
// beyond the worker scratch must be immutable.
type Runner[R any] func(net *congest.Network, source int, seed int64) (R, error)

// NewRunner builds one worker's runner. It is called at most once per
// worker slot, lazily on the worker's first claimed chunk; the closure
// typically allocates the worker's node-slab scratch and captures it.
type NewRunner[R any] func(net *congest.Network) (Runner[R], error)

// Outcome is a completed sweep: Results[i] is the per-source result of
// Sources[i]. The order is the canonical source order for every worker
// count.
type Outcome[R any] struct {
	Sources []int
	Results []R
}

// Pool is a reusable sweep executor: W worker slots, each lazily building
// one reusable congest.Network plus runner scratch on first use and keeping
// them warm across sweeps. A Pool amortizes network construction both
// within a sweep (n sources, W networks) and across repeated sweeps on the
// same graph. A Pool is safe for sequential reuse; concurrent Sweep calls
// on one Pool are not allowed.
type Pool[R any] struct {
	g         *graph.Graph
	eng       congest.Config
	baseSeed  int64
	newRunner NewRunner[R]
	workers   []poolWorker[R]
}

type poolWorker[R any] struct {
	net *congest.Network
	run Runner[R]
}

// NewPool creates a sweep pool of the given size (≤ 0 means GOMAXPROCS)
// over the graph. eng carries the per-run engine configuration; eng.Seed is
// the sweep's base seed from which every per-source seed is derived.
// Worker networks are built lazily, so an oversized pool costs nothing.
func NewPool[R any](g *graph.Graph, eng congest.Config, workers int, newRunner NewRunner[R]) *Pool[R] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool[R]{
		g:         g,
		eng:       eng,
		baseSeed:  eng.Seed,
		newRunner: newRunner,
		workers:   make([]poolWorker[R], workers),
	}
}

// Workers returns the pool size.
func (p *Pool[R]) Workers() int { return len(p.workers) }

// worker returns slot w's reusable network and runner, building them on
// first use. Only goroutine w touches slot w during a sweep.
func (p *Pool[R]) worker(w int) (*poolWorker[R], error) {
	pw := &p.workers[w]
	if pw.net == nil {
		net, err := congest.NewNetwork(p.g, p.eng)
		if err != nil {
			return nil, err
		}
		run, err := p.newRunner(net)
		if err != nil {
			return nil, err
		}
		pw.net, pw.run = net, run
	}
	return pw, nil
}

// Sweep runs the per-source computation for every source selected by o
// (o.Workers is ignored — the pool's size rules) and merges the results in
// canonical source order. On failure the reported error is the failing
// source's, lowest source index first among the chunks that ran; remaining
// chunks are cancelled.
func (p *Pool[R]) Sweep(o Options) (*Outcome[R], error) {
	sources, err := o.resolve(p.g.N(), p.baseSeed)
	if err != nil {
		return nil, err
	}
	nw := len(p.workers)
	if need := (len(sources) + chunkSize - 1) / chunkSize; nw > need {
		nw = need
	}
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]R, len(sources))
	errs := make([]error, len(sources))
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !failed.Load() {
				lo := int(next.Add(1)-1) * chunkSize
				if lo >= len(sources) {
					return
				}
				hi := lo + chunkSize
				if hi > len(sources) {
					hi = len(sources)
				}
				pw, err := p.worker(w)
				if err != nil {
					errs[lo] = err
					failed.Store(true)
					return
				}
				for i := lo; i < hi; i++ {
					// The cooperative cancellation point: once per source, so
					// a deadline aborts within one per-source run.
					if err := ctx.Err(); err != nil {
						errs[i] = fmt.Errorf("sweep: cancelled before source %d: %w", sources[i], err)
						failed.Store(true)
						return
					}
					s := sources[i]
					seed := DeriveSeed(p.baseSeed, s)
					pw.net.SetSeed(seed)
					r, err := pw.run(pw.net, s, seed)
					if err != nil {
						errs[i] = fmt.Errorf("sweep: source %d: %w", s, err)
						failed.Store(true)
						return
					}
					results[i] = r
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return &Outcome[R]{Sources: sources, Results: results}, nil
}

// Run executes a one-shot sweep: a throwaway pool of o.Workers workers.
// Callers issuing repeated sweeps on one graph should hold a Pool instead.
func Run[R any](g *graph.Graph, eng congest.Config, o Options, newRunner NewRunner[R]) (*Outcome[R], error) {
	return NewPool(g, eng, o.Workers, newRunner).Sweep(o)
}
