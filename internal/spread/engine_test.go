package spread

import (
	"testing"

	"repro/internal/gen"
)

// TestRunOnEngineReachesFullSpreading: the engine-backed LOCAL push–pull
// must achieve full information spreading on a connected graph, with sane
// monotone tallies and engine stats attached.
func TestRunOnEngineReachesFullSpreading(t *testing.T) {
	g, err := gen.Barbell(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnEngine(g, Config{Beta: 4, Seed: 7, MaxRounds: 4096})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	if res.RoundsToFull < 1 {
		t.Fatalf("full spreading not reached: %+v", res)
	}
	if res.MinTokensPerNode != n || res.MinNodesPerToken != n {
		t.Errorf("final tallies %d/%d, want %d/%d", res.MinTokensPerNode, res.MinNodesPerToken, n, n)
	}
	if res.RoundsToPartial < 1 || res.RoundsToPartial > res.RoundsToFull {
		t.Errorf("partial at %d, full at %d", res.RoundsToPartial, res.RoundsToFull)
	}
	if res.Stats == nil || res.Stats.PayloadWords == 0 {
		t.Error("engine stats / payload accounting missing")
	}
}

// TestRunOnEngineDeterministicAcrossWorkers: worker count must not change
// the outcome.
func TestRunOnEngineDeterministicAcrossWorkers(t *testing.T) {
	g, err := gen.RingOfCliques(4, 16) // n = 64 ≥ the engine's parallel threshold
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		res, err := RunOnEngine(g, Config{Beta: 4, Seed: 3, Workers: workers, StopAtPartial: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.RoundsToPartial != b.RoundsToPartial || a.Rounds != b.Rounds || a.Messages != b.Messages ||
		a.MinTokensPerNode != b.MinTokensPerNode || a.MinNodesPerToken != b.MinNodesPerToken {
		t.Errorf("worker count changed the outcome: %+v vs %+v", a, b)
	}
}

// TestRunCongestDeterministicAcrossWorkers: same invariant for the
// bandwidth-constrained variant.
func TestRunCongestDeterministicAcrossWorkers(t *testing.T) {
	g, err := gen.RingOfCliques(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Result {
		res, err := RunCongest(g, Config{Beta: 4, Seed: 3, Workers: workers, StopAtPartial: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.RoundsToPartial != b.RoundsToPartial || a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Errorf("worker count changed the outcome: %+v vs %+v", a, b)
	}
}

// TestRunOnEngineCollecting: the collected sets must match the run's own
// tallies.
func TestRunOnEngineCollecting(t *testing.T) {
	g, err := gen.RingOfCliques(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	col, err := RunOnEngineCollecting(g, Config{Beta: 3, Seed: 1, StopAtPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	minSeen := g.N() + 1
	for _, s := range col.Known {
		if c := s.Count(); c < minSeen {
			minSeen = c
		}
	}
	if minSeen != col.Result.MinTokensPerNode {
		t.Errorf("collected min %d, result says %d", minSeen, col.Result.MinTokensPerNode)
	}
}
