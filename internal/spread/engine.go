package spread

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/congest"
	"repro/internal/graph"
)

// engineParams validates a Config for an engine-backed run and derives the
// round budget and the n/β spreading target.
func engineParams(g *graph.Graph, cfg Config) (maxRounds, target int, err error) {
	n := g.N()
	if n < 2 {
		return 0, 0, errors.New("spread: need at least 2 nodes")
	}
	if !g.IsConnected() {
		return 0, 0, graph.ErrNotConnected
	}
	if cfg.Beta < 1 {
		return 0, 0, fmt.Errorf("spread: need β ≥ 1, got %g", cfg.Beta)
	}
	maxRounds = cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 64*n + 1000
	}
	if cfg.FixedRounds > 0 {
		maxRounds = cfg.FixedRounds
	}
	target = int(float64(n)/cfg.Beta + 0.999999)
	if target < 1 {
		target = 1
	}
	return maxRounds, target, nil
}

// monitor folds the per-node (append-only) token lists into global reach
// counts while the engine is quiescent, and decides when to stop the run.
// It is shared by RunCongest and RunOnEngine.
type monitor struct {
	n, target int
	maxRounds int
	cfg       Config
	res       *Result
	reach     []int // reach[t] = #nodes holding token t
	counted   []int // counted[u] = prefix of u's list already folded in
	list      func(u int) []int32
}

func newMonitor(n, target, maxRounds int, cfg Config, res *Result, list func(u int) []int32) *monitor {
	return &monitor{
		n: n, target: target, maxRounds: maxRounds, cfg: cfg, res: res,
		reach: make([]int, n), counted: make([]int, n), list: list,
	}
}

func (mo *monitor) onRound(round int) bool {
	mo.res.Rounds = round
	minHeld := mo.n + 1
	for u := 0; u < mo.n; u++ {
		l := mo.list(u)
		for ; mo.counted[u] < len(l); mo.counted[u]++ {
			mo.reach[l[mo.counted[u]]]++
		}
		if h := len(l); h < minHeld {
			minHeld = h
		}
	}
	minReach := mo.n + 1
	for _, r := range mo.reach {
		if r < minReach {
			minReach = r
		}
	}
	if mo.res.RoundsToPartial < 0 && minHeld >= mo.target && minReach >= mo.target {
		mo.res.RoundsToPartial = round
		if mo.cfg.StopAtPartial && mo.cfg.FixedRounds == 0 {
			return true
		}
	}
	if minHeld == mo.n && minReach == mo.n {
		mo.res.RoundsToFull = round
		return true
	}
	return round >= mo.maxRounds
}

// finish records the final tallies and enforces the termination contract.
func (mo *monitor) finish(stats *congest.Stats) (*Result, error) {
	mo.res.Messages = stats.Messages
	mo.res.Stats = stats
	minHeld, minReach := mo.n, mo.n
	for u := 0; u < mo.n; u++ {
		if h := len(mo.list(u)); h < minHeld {
			minHeld = h
		}
	}
	for _, r := range mo.reach {
		if r < minReach {
			minReach = r
		}
	}
	mo.res.MinTokensPerNode = minHeld
	mo.res.MinNodesPerToken = minReach
	if mo.cfg.FixedRounds == 0 && mo.res.RoundsToPartial < 0 {
		return mo.res, fmt.Errorf("spread: partial spreading not reached in %d rounds", mo.maxRounds)
	}
	return mo.res, nil
}

// localProc is one node of the LOCAL-model push–pull executed on the
// congest engine: each round it contacts a uniformly random neighbor with
// its full token set (push) and answers every contact from the previous
// round with its full set (pull). Token sets travel as []int32 slabs
// through the engine's payload arena — one copy into flat storage per
// send, no boxing per message — with honest (unbounded, LOCAL) bit
// accounting.
type localProc struct {
	idBits int32
	held   *bitset.Set
	list   []int32 // held token ids, append-only (the monitor relies on it)
}

func (p *localProc) add(tok int32) {
	if !p.held.Contains(int(tok)) {
		p.held.Add(int(tok))
		p.list = append(p.list, tok)
	}
}

func (p *localProc) msgBits() int32 { return 8 + int32(len(p.list))*p.idBits }

func (p *localProc) Init(ctx *congest.Context) {}

func (p *localProc) Step(ctx *congest.Context) {
	for _, m := range ctx.Inbox() {
		for _, t := range ctx.Payload(m) {
			p.add(t)
		}
		if m.Kind == kindPush {
			ctx.SendPayload(int(m.From), congest.Message{Kind: kindReply, Bits: p.msgBits()}, p.list)
		}
	}
	ctx.SendPayload(int(ctx.Neighbors()[ctx.Rand().Intn(ctx.Degree())]),
		congest.Message{Kind: kindPush, Bits: p.msgBits()}, p.list)
}

// RunOnEngine executes LOCAL-model push–pull on the congest engine (LOCAL
// mode: full token sets per exchange, unbounded messages honestly
// accounted). It reports the same Result semantics as Run, with engine
// Stats attached. Unlike Run's direct simulator it inherits the engine's
// per-node RNGs and parallel stepping, so results are deterministic in
// (Seed, graph) but not bit-identical to Run's.
func RunOnEngine(g *graph.Graph, cfg Config) (*Result, error) {
	res, _, err := runOnEngine(g, cfg)
	return res, err
}

// RunOnEngineCollecting is RunOnEngine, additionally returning the final
// per-node token sets (for applications such as max coverage).
func RunOnEngineCollecting(g *graph.Graph, cfg Config) (*Collected, error) {
	res, slab, err := runOnEngine(g, cfg)
	if err != nil {
		return nil, err
	}
	known := make([]*bitset.Set, len(slab))
	for u := range slab {
		known[u] = slab[u].held
	}
	return &Collected{Result: res, Known: known}, nil
}

func runOnEngine(g *graph.Graph, cfg Config) (*Result, []localProc, error) {
	maxRounds, target, err := engineParams(g, cfg)
	if err != nil {
		return nil, nil, err
	}
	n := g.N()
	idBits := int32(bits.Len(uint(n - 1)))
	slab := make([]localProc, n)
	res := &Result{RoundsToPartial: -1, RoundsToFull: -1}
	mo := newMonitor(n, target, maxRounds, cfg, res, func(u int) []int32 { return slab[u].list })
	net, err := congest.NewNetwork(g, congest.Config{
		Model:     congest.LOCAL,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		MaxRounds: maxRounds + 1,
		OnRound:   mo.onRound,
	})
	if err != nil {
		return nil, nil, err
	}
	stats, err := net.Run(func(id int) congest.Process {
		p := &slab[id]
		p.idBits = idBits
		p.held = bitset.New(n)
		p.add(int32(id))
		return p
	})
	if err != nil {
		return nil, nil, err
	}
	out, err := mo.finish(stats)
	return out, slab, err
}
