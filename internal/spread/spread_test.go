package spread

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestFullSpreadingOnComplete(t *testing.T) {
	g, _ := gen.Complete(32)
	res, err := Run(g, Config{Beta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsToFull < 1 {
		t.Fatal("full spreading not reached")
	}
	// Push–pull on K_n completes in O(log n) rounds w.h.p.
	if res.RoundsToFull > 40 {
		t.Errorf("K32 full spreading took %d rounds", res.RoundsToFull)
	}
	if res.MinTokensPerNode != 32 || res.MinNodesPerToken != 32 {
		t.Error("final state not complete")
	}
}

// TestPartialBeforeFull: partial spreading is reached no later than full.
func TestPartialBeforeFull(t *testing.T) {
	g, _ := gen.RingOfCliques(4, 8)
	res, err := Run(g, Config{Beta: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsToPartial < 0 || res.RoundsToFull < 0 {
		t.Fatal("spreading incomplete")
	}
	if res.RoundsToPartial > res.RoundsToFull {
		t.Errorf("partial %d after full %d", res.RoundsToPartial, res.RoundsToFull)
	}
}

// TestBarbellPartialFastFullSlow is the paper's headline application claim
// (§1, §4): on barbell-like graphs partial information spreading is
// dramatically faster than full spreading, because the local mixing time is
// O(1) while the mixing time is Ω(β²).
func TestBarbellPartialFastFullSlow(t *testing.T) {
	g, err := gen.Barbell(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Beta: 8, Seed: 3, MaxRounds: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsToPartial <= 0 {
		t.Fatal("partial spreading not reached")
	}
	logn := math.Log2(float64(g.N()))
	if float64(res.RoundsToPartial) > 12*logn {
		t.Errorf("partial spreading %d rounds, want O(τ log n) = O(log n) on the barbell", res.RoundsToPartial)
	}
	if res.RoundsToFull < 2*res.RoundsToPartial {
		t.Errorf("expected a clear gap: partial %d, full %d", res.RoundsToPartial, res.RoundsToFull)
	}
}

func TestStopAtPartial(t *testing.T) {
	g, _ := gen.RingOfCliques(4, 8)
	res, err := Run(g, Config{Beta: 4, Seed: 4, StopAtPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != res.RoundsToPartial {
		t.Errorf("should stop at partial: rounds=%d partial=%d", res.Rounds, res.RoundsToPartial)
	}
}

// TestFixedRoundsTermination is the Theorem 3 termination rule: run for
// c·τ·log n rounds and verify partial spreading holds.
func TestFixedRoundsTermination(t *testing.T) {
	g, err := gen.Barbell(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	// τ(β,ε) on the barbell is O(1); use τ̂=4 and c=3.
	budget := int(3 * 4 * math.Log2(float64(g.N())))
	res, err := Run(g, Config{Beta: 8, Seed: 5, FixedRounds: budget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != budget {
		t.Errorf("fixed run executed %d rounds, want %d", res.Rounds, budget)
	}
	target := g.N() / 8
	if res.MinTokensPerNode < target || res.MinNodesPerToken < target {
		t.Errorf("termination rule failed: held=%d reach=%d target=%d",
			res.MinTokensPerNode, res.MinNodesPerToken, target)
	}
}

func TestRunCollecting(t *testing.T) {
	g, _ := gen.Complete(16)
	col, err := RunCollecting(g, Config{Beta: 2, Seed: 6, StopAtPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Known) != 16 {
		t.Fatal("missing token sets")
	}
	for u, s := range col.Known {
		if !s.Contains(u) {
			t.Errorf("node %d lost its own token", u)
		}
		if s.Count() < 8 {
			t.Errorf("node %d holds %d tokens, want ≥ 8", u, s.Count())
		}
	}
}

func TestValidation(t *testing.T) {
	g, _ := gen.Complete(8)
	if _, err := Run(g, Config{Beta: 0.5}); err == nil {
		t.Error("β < 1 accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := Run(b.Build(), Config{Beta: 2}); err == nil {
		t.Error("disconnected accepted")
	}
	single := graph.NewBuilder(1).Build()
	if _, err := Run(single, Config{Beta: 1}); err == nil {
		t.Error("singleton accepted")
	}
}

func TestDeterministicSeeds(t *testing.T) {
	g, _ := gen.RingOfCliques(3, 6)
	a, err := Run(g, Config{Beta: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Config{Beta: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.RoundsToPartial != b.RoundsToPartial || a.RoundsToFull != b.RoundsToFull {
		t.Error("same seed, different outcome")
	}
}

func TestLeaderElection(t *testing.T) {
	g, _ := gen.RingOfCliques(4, 8)
	rounds, err := LeaderElection(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 1 {
		t.Error("leader election reported zero rounds")
	}
	full, err := Run(g, Config{Beta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Min-id dissemination is no slower than full spreading of all tokens
	// under the same mechanism (sanity of magnitudes only, seeds differ).
	if rounds > 4*full.RoundsToFull+16 {
		t.Errorf("leader election %d rounds vs full spreading %d", rounds, full.RoundsToFull)
	}
}

func TestLeaderElectionValidation(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := LeaderElection(b.Build(), 1, 0); err == nil {
		t.Error("disconnected accepted")
	}
}
